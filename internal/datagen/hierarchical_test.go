package datagen

import (
	"testing"

	"hsgf/internal/graph"
)

func TestHierarchicalDeterministic(t *testing.T) {
	cfg := DefaultHierarchicalConfig(3000)
	a, err := GenerateHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed produced %v and %v", a.Graph, b.Graph)
	}
	for v := graph.NodeID(0); int(v) < a.Graph.NumNodes(); v++ {
		if a.Graph.Label(v) != b.Graph.Label(v) {
			t.Fatalf("same seed labelled node %d differently", v)
		}
	}
	cfg.Seed++
	c, err := GenerateHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() && c.Graph.NumNodes() == a.Graph.NumNodes() {
		same := true
		for v := graph.NodeID(0); int(v) < a.Graph.NumNodes() && same; v++ {
			same = a.Graph.Label(v) == c.Graph.Label(v)
		}
		if same {
			t.Fatal("different seeds produced an identical graph")
		}
	}
}

func TestHierarchicalShape(t *testing.T) {
	cfg := DefaultHierarchicalConfig(5000)
	h, err := GenerateHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != cfg.Nodes {
		t.Fatalf("generated %d nodes, want %d", g.NumNodes(), cfg.Nodes)
	}
	if len(h.Community) != cfg.Nodes {
		t.Fatalf("community array covers %d of %d nodes", len(h.Community), cfg.Nodes)
	}
	for v, c := range h.Community {
		if c < 0 || int(c) >= cfg.Communities {
			t.Fatalf("node %d assigned community %d of %d", v, c, cfg.Communities)
		}
	}
	// Degree should land near the configured mean (duplicate collapses
	// and skipped stubs shave a little off).
	mean := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if mean < cfg.MeanDegree*0.5 || mean > cfg.MeanDegree*1.3 {
		t.Fatalf("mean degree %.2f far from configured %.2f", mean, cfg.MeanDegree)
	}
	// Every label must actually occur at this scale.
	seen := make([]bool, g.NumLabels())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		seen[g.Label(v)] = true
	}
	for l, ok := range seen {
		if !ok {
			t.Fatalf("label %s never generated", g.Alphabet().Name(graph.Label(l)))
		}
	}
}

// TestHierarchicalLocality checks the community structure is real: with
// PIn+PMid well above the global remainder, intra-community edges must
// dominate what a random partner choice would produce.
func TestHierarchicalLocality(t *testing.T) {
	cfg := DefaultHierarchicalConfig(8000)
	h, err := GenerateHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intra, total := 0, 0
	h.Graph.Edges(func(u, v graph.NodeID) bool {
		total++
		if h.Community[u] == h.Community[v] {
			intra++
		}
		return true
	})
	frac := float64(intra) / float64(total)
	// PIn+PMid = 0.85 of stubs stay within the community; random global
	// stubs land inside occasionally too. Demand well over the ~1/C
	// fraction a community-blind generator would give.
	if frac < 0.6 {
		t.Fatalf("only %.0f%% of edges intra-community; hierarchy not expressed", 100*frac)
	}
}

// TestHierarchicalStarSchema pins the movie profile's structural
// contract: non-movie nodes connect exclusively to movies.
func TestHierarchicalStarSchema(t *testing.T) {
	cfg := MovieHierarchicalProfile()
	cfg.Nodes = 6000
	h, err := GenerateHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Graph
	movie, ok := g.Alphabet().Lookup("movie")
	if !ok {
		t.Fatal("movie label missing")
	}
	violations := 0
	g.Edges(func(u, v graph.NodeID) bool {
		if g.Label(u) != movie && g.Label(v) != movie {
			violations++
		}
		return true
	})
	// Star rows are hard zeros, but the rejection-sampling escape hatch
	// may rarely emit an off-schema edge in a movie-poor scope. Demand
	// the schema holds essentially everywhere.
	if limit := g.NumEdges() / 100; violations > limit {
		t.Fatalf("%d of %d edges violate the star schema (limit %d)", violations, g.NumEdges(), limit)
	}
}

func TestHierarchicalConfigValidation(t *testing.T) {
	bad := []func(*HierarchicalConfig){
		func(c *HierarchicalConfig) { c.Nodes = 0 },
		func(c *HierarchicalConfig) { c.Communities = 0 },
		func(c *HierarchicalConfig) { c.Labels = nil; c.LabelAffinity = nil },
		func(c *HierarchicalConfig) { c.LabelAffinity = c.LabelAffinity[:2] },
		func(c *HierarchicalConfig) { c.LabelAffinity[1] = []float64{0, 0, 0, 0} },
		func(c *HierarchicalConfig) { c.MeanDegree = 0 },
		func(c *HierarchicalConfig) { c.PIn = 0.8; c.PMid = 0.5 },
		func(c *HierarchicalConfig) { c.LabelWeights = []float64{1} },
	}
	for i, mutate := range bad {
		cfg := DefaultHierarchicalConfig(100)
		// Deep-copy the affinity matrix so mutations do not leak.
		aff := make([][]float64, len(cfg.LabelAffinity))
		for j := range aff {
			aff[j] = append([]float64{}, cfg.LabelAffinity[j]...)
		}
		cfg.LabelAffinity = aff
		mutate(&cfg)
		if _, err := GenerateHierarchical(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
