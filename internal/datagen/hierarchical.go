package datagen

import (
	"fmt"
	"math/rand"

	"hsgf/internal/graph"
)

// HierarchicalConfig parameterises the streaming hierarchical community
// generator — the scale ladder's source of million-node heterogeneous
// networks. Nodes are laid out in contiguous community and
// sub-community ranges, each leaf gets a label theme, and every edge
// stub chooses a locality scope (own sub-community, own community, or
// anywhere) before choosing a partner, reproducing the
// community-within-community structure of real information networks at
// whatever node count the ladder asks for.
type HierarchicalConfig struct {
	// Nodes is the total node count; Communities × SubPerCommunity
	// contiguous leaves partition it.
	Nodes           int
	Communities     int
	SubPerCommunity int

	// Labels names the node types; LabelWeights (optional, defaults to
	// uniform) sets their global proportions; LabelAffinity[i][j] is
	// the relative preference of a label-i node for label-j partners.
	// Rows are normalised independently, so star schemas are expressed
	// by zeroing every entry of a row except the hub label's.
	Labels        []string
	LabelWeights  []float64
	LabelAffinity [][]float64

	// ThemeBoost multiplies one leaf-chosen label's weight inside that
	// leaf (<= 1 disables theming), giving communities distinct label
	// mixes like real venues and genres have.
	ThemeBoost float64

	// MeanDegree is the target average degree. Per-node stub counts are
	// exponentially spread around it, and a HubFraction of nodes get
	// their stub count multiplied by HubBoost for a heavy tail.
	MeanDegree  float64
	HubFraction float64
	HubBoost    float64

	// PIn and PMid are the probabilities that a stub stays inside its
	// node's sub-community and community respectively; the remainder
	// roams the whole graph. PIn + PMid must be <= 1.
	PIn, PMid float64

	Seed int64
}

// DefaultHierarchicalConfig returns a citation-shaped configuration at
// the given node count — the ladder rungs scale Nodes and leave the
// shape parameters alone.
func DefaultHierarchicalConfig(nodes int) HierarchicalConfig {
	cfg := CitationHierarchicalProfile()
	cfg.Nodes = nodes
	// Community count grows with the square root of the node count, so
	// community sizes and community counts scale together the way
	// venue-sized clusters do in growing citation corpora.
	c := 4
	for c*c*64 < nodes {
		c *= 2
	}
	cfg.Communities = c
	return cfg
}

// CitationHierarchicalProfile is the citation-network shape: authors,
// papers, venues, and terms, with paper as the connective label
// (papers cite papers, everything else attaches to papers) and
// paper-heavy communities.
func CitationHierarchicalProfile() HierarchicalConfig {
	return HierarchicalConfig{
		Communities:     4,
		SubPerCommunity: 4,
		Labels:          []string{"author", "paper", "venue", "term"},
		LabelWeights:    []float64{3, 4, 0.2, 1},
		LabelAffinity: [][]float64{
			//               author paper venue term
			/* author */ {0.4, 4, 0, 0},
			/* paper  */ {2, 3, 0.5, 1},
			/* venue  */ {0, 4, 0, 0},
			/* term   */ {0, 4, 0, 0.1},
		},
		ThemeBoost:  3,
		MeanDegree:  10,
		HubFraction: 0.01,
		HubBoost:    20,
		PIn:         0.6,
		PMid:        0.25,
		Seed:        1,
	}
}

// MovieHierarchicalProfile is the IMDB star-schema shape: every
// non-movie label connects exclusively to movies, communities are
// genre-like, and people are reused across movies via the hub tail.
func MovieHierarchicalProfile() HierarchicalConfig {
	return HierarchicalConfig{
		Communities:     4,
		SubPerCommunity: 4,
		Labels:          []string{"movie", "actor", "director", "keyword"},
		LabelWeights:    []float64{2, 4, 0.4, 1},
		LabelAffinity: [][]float64{
			//                movie actor director keyword
			/* movie    */ {0, 5, 1, 2},
			/* actor    */ {1, 0, 0, 0},
			/* director */ {1, 0, 0, 0},
			/* keyword  */ {1, 0, 0, 0},
		},
		ThemeBoost:  3,
		MeanDegree:  9,
		HubFraction: 0.02,
		HubBoost:    15,
		PIn:         0.55,
		PMid:        0.25,
		Seed:        2,
	}
}

// Hierarchical is a generated hierarchical community network.
type Hierarchical struct {
	Graph *graph.Graph
	// Community holds each node's community index — ground truth for
	// locality checks and community-aware benchmarks.
	Community []int32
	Config    HierarchicalConfig
}

func (cfg *HierarchicalConfig) validate() error {
	k := len(cfg.Labels)
	switch {
	case cfg.Nodes < 1:
		return fmt.Errorf("datagen: hierarchical config needs Nodes >= 1, got %d", cfg.Nodes)
	case cfg.Communities < 1 || cfg.SubPerCommunity < 1:
		return fmt.Errorf("datagen: hierarchical config needs positive community counts, got %d x %d",
			cfg.Communities, cfg.SubPerCommunity)
	case k < 1:
		return fmt.Errorf("datagen: hierarchical config needs at least one label")
	case cfg.LabelWeights != nil && len(cfg.LabelWeights) != k:
		return fmt.Errorf("datagen: %d label weights for %d labels", len(cfg.LabelWeights), k)
	case len(cfg.LabelAffinity) != k:
		return fmt.Errorf("datagen: affinity matrix has %d rows for %d labels", len(cfg.LabelAffinity), k)
	case cfg.MeanDegree <= 0:
		return fmt.Errorf("datagen: hierarchical config needs MeanDegree > 0, got %v", cfg.MeanDegree)
	case cfg.PIn < 0 || cfg.PMid < 0 || cfg.PIn+cfg.PMid > 1:
		return fmt.Errorf("datagen: locality probabilities PIn=%v PMid=%v invalid", cfg.PIn, cfg.PMid)
	}
	for i, row := range cfg.LabelAffinity {
		if len(row) != k {
			return fmt.Errorf("datagen: affinity row %d has %d entries for %d labels", i, len(row), k)
		}
		total := 0.0
		for j, w := range row {
			if w < 0 {
				return fmt.Errorf("datagen: negative affinity [%d][%d]", i, j)
			}
			total += w
		}
		if total == 0 {
			return fmt.Errorf("datagen: affinity row %d (%s) is all zero", i, cfg.Labels[i])
		}
	}
	return nil
}

// cdf turns weights into a cumulative distribution; sample draws from it.
func cdf(weights []float64) []float64 {
	out := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		out[i] = total
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

func sample(rng *rand.Rand, c []float64) int {
	x := rng.Float64()
	for i, v := range c {
		if x < v {
			return i
		}
	}
	return len(c) - 1
}

// PopulateHierarchical streams the configured network into b — nodes
// first (leaf by contiguous leaf), then edges — and returns each node's
// community index. It is separated from GenerateHierarchical so callers
// timing Builder.Build can measure it apart from generation. Memory
// beyond the Builder's own is O(Nodes) for the label array plus
// O(leaves × labels) for the theme tables; nothing is proportional to
// the edge count.
func PopulateHierarchical(cfg HierarchicalConfig, b *graph.Builder) ([]int32, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := len(cfg.Labels)
	n := cfg.Nodes
	leaves := cfg.Communities * cfg.SubPerCommunity

	// Contiguous leaf ranges: leafStart[L] .. leafStart[L+1]. The
	// remainder of an uneven split lands one node at a time on the
	// earliest leaves.
	leafStart := make([]int, leaves+1)
	base, rem := n/leaves, n%leaves
	for L := 0; L < leaves; L++ {
		size := base
		if L < rem {
			size++
		}
		leafStart[L+1] = leafStart[L] + size
	}

	baseWeights := cfg.LabelWeights
	if baseWeights == nil {
		baseWeights = make([]float64, k)
		for i := range baseWeights {
			baseWeights[i] = 1
		}
	}

	// Per-leaf label CDFs: the base mix with one themed label boosted.
	leafLabelCDF := make([][]float64, leaves)
	for L := range leafLabelCDF {
		w := append([]float64{}, baseWeights...)
		if cfg.ThemeBoost > 1 {
			w[rng.Intn(k)] *= cfg.ThemeBoost
		}
		leafLabelCDF[L] = cdf(w)
	}
	affinityCDF := make([][]float64, k)
	for i, row := range cfg.LabelAffinity {
		affinityCDF[i] = cdf(row)
	}

	// Emit nodes leaf by leaf, remembering labels and community ids for
	// the edge pass.
	labels := make([]graph.Label, n)
	community := make([]int32, n)
	for L := 0; L < leaves; L++ {
		c := int32(L / cfg.SubPerCommunity)
		for v := leafStart[L]; v < leafStart[L+1]; v++ {
			l := graph.Label(sample(rng, leafLabelCDF[L]))
			labels[v] = l
			community[v] = c
			if _, err := b.AddLabeledNode(l); err != nil {
				return nil, err
			}
		}
	}

	// Edge pass. Each node draws an exponentially-spread stub count
	// around MeanDegree/2 (each undirected edge is generated at one
	// endpoint), hubs multiply theirs, and every stub picks scope, then
	// partner label, then a partner of that label by rejection sampling
	// inside the scope's contiguous range.
	half := cfg.MeanDegree / 2
	for u := 0; u < n; u++ {
		L := leafIndex(leafStart, u)
		subLo, subHi := leafStart[L], leafStart[L+1]
		cLo := leafStart[(L/cfg.SubPerCommunity)*cfg.SubPerCommunity]
		cHi := leafStart[(L/cfg.SubPerCommunity+1)*cfg.SubPerCommunity]

		d := rng.ExpFloat64() * half
		if cfg.HubFraction > 0 && rng.Float64() < cfg.HubFraction {
			d *= cfg.HubBoost
		}
		stubs := int(d)
		if rng.Float64() < d-float64(stubs) {
			stubs++
		}
		row := affinityCDF[labels[u]]
		for s := 0; s < stubs; s++ {
			lo, hi := 0, n
			switch x := rng.Float64(); {
			case x < cfg.PIn:
				lo, hi = subLo, subHi
			case x < cfg.PIn+cfg.PMid:
				lo, hi = cLo, cHi
			}
			if hi-lo < 2 {
				lo, hi = 0, n
			}
			want := graph.Label(sample(rng, row))
			v := -1
			// Rejection sampling: scopes are label-mixed, so a match
			// lands quickly; after a bounded number of tries take any
			// non-self partner rather than looping on a label the
			// scope lacks.
			for try := 0; try < 32; try++ {
				cand := lo + rng.Intn(hi-lo)
				if cand != u && labels[cand] == want {
					v = cand
					break
				}
			}
			if v < 0 {
				for try := 0; try < 8 && v < 0; try++ {
					if cand := lo + rng.Intn(hi-lo); cand != u {
						v = cand
					}
				}
				if v < 0 {
					continue
				}
			}
			if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
				return nil, err
			}
		}
	}
	return community, nil
}

// leafIndex locates v's leaf by binary search over the range table.
func leafIndex(leafStart []int, v int) int {
	lo, hi := 0, len(leafStart)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if leafStart[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// GenerateHierarchical builds the configured network.
func GenerateHierarchical(cfg HierarchicalConfig) (*Hierarchical, error) {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet(cfg.Labels...))
	community, err := PopulateHierarchical(cfg, b)
	if err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Hierarchical{Graph: g, Community: community, Config: cfg}, nil
}
