package datagen

import (
	"fmt"
	"math/rand"

	"hsgf/internal/graph"
	"hsgf/internal/typed"
)

// Citation-role identifiers for the directed-features experiment.
const (
	RoleRegular = iota // cites a normal amount, moderately cited
	RoleSurvey         // cites very many papers, rarely cited
	RoleClassic        // cites few papers, heavily cited
	NumRoles
)

// RoleNames maps role ids to display names.
var RoleNames = []string{"regular", "survey", "classic"}

// CitationConfig parameterises the directed citation network used to
// evaluate the paper's §5 conjecture that directed subgraph features
// outperform undirected ones on directed networks.
type CitationConfig struct {
	Papers       int
	SurveyFrac   float64 // fraction of survey papers
	ClassicFrac  float64 // fraction of classic papers
	RegularCites [2]int  // citations made by regular papers {min, max}
	SurveyCites  [2]int  // citations made by surveys
	ClassicCites [2]int  // citations made by classics
	Seed         int64
}

// DefaultCitationConfig returns a laptop-scale configuration.
func DefaultCitationConfig() CitationConfig {
	// The citation budgets and attractiveness weights below are tuned so
	// the *expected total degree* of the three roles nearly coincides
	// (~30): surveys reach it through out-edges, classics through
	// in-edges, regulars through a mix. An undirected census then sees
	// three barely separable degree profiles, while the directed census
	// separates them trivially — isolating the value of edge directions.
	return CitationConfig{
		Papers:       800,
		SurveyFrac:   0.15,
		ClassicFrac:  0.15,
		RegularCites: [2]int{12, 18},
		SurveyCites:  [2]int{28, 36},
		ClassicCites: [2]int{1, 4},
		Seed:         17,
	}
}

// CitationNetwork is the generated directed citation network. Every node
// carries the same node label ("paper"), so the prediction target — the
// paper's role — is invisible to node-label-based features and only
// recoverable from citation *directions*: surveys have high out-degree,
// classics high in-degree, regulars neither. An undirected census sees
// only total degrees, which surveys and classics share by construction.
type CitationNetwork struct {
	Graph  *typed.Graph
	Roles  []int // role per paper, aligned with node ids
	Config CitationConfig
}

// GenerateCitation builds the network. Citations point from newer papers
// (higher ids) to older papers; classics attract citations preferentially.
func GenerateCitation(cfg CitationConfig) (*CitationNetwork, error) {
	if cfg.Papers < 10 {
		return nil, fmt.Errorf("datagen: citation network needs >= 10 papers, got %d", cfg.Papers)
	}
	if cfg.SurveyFrac < 0 || cfg.ClassicFrac < 0 || cfg.SurveyFrac+cfg.ClassicFrac >= 1 {
		return nil, fmt.Errorf("datagen: invalid role fractions %v + %v", cfg.SurveyFrac, cfg.ClassicFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := typed.NewBuilder(true)
	if err := b.DeclareNodeLabels("paper"); err != nil {
		return nil, err
	}
	if err := b.DeclareEdgeLabels("cites"); err != nil {
		return nil, err
	}

	n := cfg.Papers
	roles := make([]int, n)
	for i := 0; i < n; i++ {
		if _, err := b.AddNode("paper"); err != nil {
			return nil, err
		}
		r := rng.Float64()
		switch {
		case r < cfg.SurveyFrac:
			roles[i] = RoleSurvey
		case r < cfg.SurveyFrac+cfg.ClassicFrac:
			roles[i] = RoleClassic
		default:
			roles[i] = RoleRegular
		}
	}

	// Citation attractiveness: classics are strongly preferred targets,
	// surveys weak ones; regulars in between. Matching total degrees
	// between surveys (high out, low in) and classics (low out, high in)
	// is what makes the undirected census blind to the roles.
	weight := func(j int) float64 {
		switch roles[j] {
		case RoleClassic:
			return 2.5
		case RoleSurvey:
			return 0.08
		default:
			return 1
		}
	}
	citeRange := func(role int) [2]int {
		switch role {
		case RoleSurvey:
			return cfg.SurveyCites
		case RoleClassic:
			return cfg.ClassicCites
		default:
			return cfg.RegularCites
		}
	}
	for i := 10; i < n; i++ { // the first few papers only receive citations
		r := citeRange(roles[i])
		cites := r[0]
		if r[1] > r[0] {
			cites += rng.Intn(r[1] - r[0] + 1)
		}
		if cites > i {
			cites = i
		}
		seen := map[int]bool{}
		for c := 0; c < cites; c++ {
			// Weighted sampling among older papers by rejection.
			var target int
			for tries := 0; tries < 50; tries++ {
				target = rng.Intn(i)
				if seen[target] {
					continue
				}
				if rng.Float64() < weight(target)/2.5 {
					break
				}
			}
			if seen[target] {
				continue
			}
			seen[target] = true
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(target), "cites"); err != nil {
				return nil, err
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &CitationNetwork{Graph: g, Roles: roles, Config: cfg}, nil
}

// Undirected collapses the citation network into a plain undirected
// node-labelled graph (every node "paper"), the input an undirected
// census would see.
func (c *CitationNetwork) Undirected() (*graph.Graph, error) {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("paper"))
	for i := 0; i < c.Graph.NumNodes(); i++ {
		if _, err := b.AddNode("paper"); err != nil {
			return nil, err
		}
	}
	for e := graph.EdgeID(0); int(e) < c.Graph.NumEdges(); e++ {
		u, v := c.Graph.EdgeEndpoints(e)
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
