// Package datagen generates the three synthetic evaluation networks that
// stand in for the paper's proprietary data sets (see DESIGN.md §1):
//
//   - PublicationNetwork replaces the Microsoft Academic Graph subset and
//     the KDD-Cup-2016 institution-relevance ground truth,
//   - CooccurrenceNetwork replaces the LOAD entity co-occurrence network,
//   - MovieNetwork replaces the IMDB Golden-Age movie network.
//
// Each generator is deterministic given its Seed and reproduces the
// structural regime its original exercises: label connectivity shape,
// density, degree skew, and — crucially — a causal coupling between a
// node's class/success and its typed neighbourhood, so the paper's
// predictive tasks remain learnable for the same reasons.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hsgf/internal/graph"
)

// Publication label names, mirroring Figure 2 (left/right).
const (
	LabelInstitution = "institution"
	LabelAuthor      = "author"
	LabelPaper       = "paper"
	LabelConference  = "conference"
	LabelJournal     = "journal"
	LabelField       = "field"
)

// DefaultConferences mirrors the paper's five target conferences.
var DefaultConferences = []string{"KDD", "FSE", "ICML", "MM", "MOBICOM"}

// PublicationConfig parameterises the synthetic publication network.
type PublicationConfig struct {
	Institutions      int      // number of institutions
	Conferences       []string // conference names (one node each)
	Years             []int    // consecutive publication years
	PapersPerConfYear int      // accepted papers per conference and year
	FullPaperFrac     float64  // fraction of accepted papers that are full papers
	Journals          int      // journal venues for referenced papers
	Fields            int      // fields of study
	ExternalPapers    int      // referenced non-conference papers
	MaxAuthors        int      // maximum authors per paper
	CrossInstProb     float64  // probability of a cross-institution coauthor
	Seed              int64
}

// DefaultPublicationConfig returns a laptop-scale configuration whose
// label connectivity graph and skew match the paper's MAG subsets.
func DefaultPublicationConfig() PublicationConfig {
	years := make([]int, 9)
	for i := range years {
		years[i] = 2007 + i
	}
	return PublicationConfig{
		Institutions:      100,
		Conferences:       DefaultConferences,
		Years:             years,
		PapersPerConfYear: 50,
		FullPaperFrac:     0.7,
		Journals:          25,
		Fields:            30,
		ExternalPapers:    1500,
		MaxAuthors:        5,
		CrossInstProb:     0.3,
		Seed:              1,
	}
}

// PaperMeta records everything the feature engineering pipelines need to
// know about one accepted conference paper.
type PaperMeta struct {
	Node       graph.NodeID
	Conference string
	Year       int
	Full       bool           // full paper (counts toward relevance) vs short/demo
	Authors    []graph.NodeID // author nodes; the last author is the senior author
	Title      []string
	Keywords   int
}

// Publication is the generated scientific publication network plus its
// ground-truth metadata.
type Publication struct {
	Graph        *graph.Graph
	Config       PublicationConfig
	Institutions []graph.NodeID                // institution nodes
	ConfNodes    map[string]graph.NodeID       // conference name -> node
	Papers       []PaperMeta                   // accepted conference papers
	AuthorInst   map[graph.NodeID]graph.NodeID // author -> institution
	Strength     map[graph.NodeID]float64      // latent institution strength (for diagnostics)
}

// titleVocabulary is the shared word pool for synthetic titles. The first
// words of each conference's topic slice act as its characteristic top
// words.
var titleVocabulary = []string{
	"learning", "graph", "network", "deep", "model", "data", "mining",
	"neural", "inference", "optimization", "software", "testing", "fault",
	"program", "analysis", "code", "kernel", "bound", "convex", "bandit",
	"regret", "video", "image", "multimedia", "retrieval", "audio",
	"wireless", "mobile", "spectrum", "sensing", "protocol", "energy",
	"efficient", "scalable", "robust", "online", "distributed", "framework",
	"approach", "system", "evaluation", "empirical", "study", "towards",
	"adaptive", "dynamic", "structure", "feature", "embedding", "prediction",
}

// GeneratePublication builds the network. Generation is deterministic in
// cfg.Seed.
func GeneratePublication(cfg PublicationConfig) (*Publication, error) {
	if cfg.Institutions < 2 || len(cfg.Conferences) == 0 || len(cfg.Years) < 2 {
		return nil, fmt.Errorf("datagen: publication config needs >=2 institutions, >=1 conference, >=2 years")
	}
	if cfg.PapersPerConfYear < 1 || cfg.MaxAuthors < 1 {
		return nil, fmt.Errorf("datagen: publication config needs positive paper and author budgets")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alpha := graph.MustAlphabet(LabelInstitution, LabelAuthor, LabelPaper,
		LabelConference, LabelJournal, LabelField)
	b := graph.NewBuilderWithAlphabet(alpha)

	pub := &Publication{
		Config:     cfg,
		ConfNodes:  make(map[string]graph.NodeID),
		AuthorInst: make(map[graph.NodeID]graph.NodeID),
		Strength:   make(map[graph.NodeID]float64),
	}

	// Institutions with heavy-tailed latent strength. Strength drives
	// how many authors an institution employs, how productive they are,
	// and therefore its relevance — the causal chain the ranking task
	// must learn from topology.
	type inst struct {
		node     graph.NodeID
		strength float64
		authors  []graph.NodeID
		confAff  []float64 // per-conference affinity
	}
	insts := make([]inst, cfg.Institutions)
	for i := range insts {
		node, _ := b.AddNamedNode(LabelInstitution, fmt.Sprintf("inst-%03d", i))
		strength := math.Exp(rng.NormFloat64() * 0.9)
		aff := make([]float64, len(cfg.Conferences))
		for c := range aff {
			aff[c] = rng.Float64() + 0.1
		}
		insts[i] = inst{node: node, strength: strength, confAff: aff}
		pub.Institutions = append(pub.Institutions, node)
		pub.Strength[node] = strength
	}
	// Authors per institution scale with strength.
	for i := range insts {
		n := 2 + int(insts[i].strength*6)
		if n > 60 {
			n = 60
		}
		for a := 0; a < n; a++ {
			author, _ := b.AddNode(LabelAuthor)
			b.AddEdge(insts[i].node, author)
			insts[i].authors = append(insts[i].authors, author)
			pub.AuthorInst[author] = insts[i].node
		}
	}

	for _, name := range cfg.Conferences {
		node, _ := b.AddNamedNode(LabelConference, name)
		pub.ConfNodes[name] = node
	}
	journals := make([]graph.NodeID, cfg.Journals)
	for j := range journals {
		journals[j], _ = b.AddNamedNode(LabelJournal, fmt.Sprintf("journal-%02d", j))
	}
	fields := make([]graph.NodeID, cfg.Fields)
	for f := range fields {
		fields[f], _ = b.AddNamedNode(LabelField, fmt.Sprintf("field-%02d", f))
	}

	// External (referenced) papers, attached to journals and fields.
	external := make([]graph.NodeID, cfg.ExternalPapers)
	for e := range external {
		p, _ := b.AddNode(LabelPaper)
		external[e] = p
		if len(journals) > 0 {
			b.AddEdge(p, journals[rng.Intn(len(journals))])
		}
		nf := 1 + rng.Intn(2)
		for k := 0; k < nf && len(fields) > 0; k++ {
			b.AddEdge(p, fields[rng.Intn(len(fields))])
		}
	}

	// Per-conference topic slice of the vocabulary.
	confTopic := func(conf int) []string {
		start := (conf * 9) % len(titleVocabulary)
		topic := make([]string, 0, 18)
		for i := 0; i < 18; i++ {
			topic = append(topic, titleVocabulary[(start+i)%len(titleVocabulary)])
		}
		return topic
	}

	// Institution sampling weights per conference.
	pickInst := func(conf int) int {
		var total float64
		for i := range insts {
			total += insts[i].strength * insts[i].confAff[conf]
		}
		r := rng.Float64() * total
		for i := range insts {
			r -= insts[i].strength * insts[i].confAff[conf]
			if r <= 0 {
				return i
			}
		}
		return len(insts) - 1
	}

	// Conference papers year by year. Citations are preferential toward
	// already-cited papers and always point to earlier work.
	citations := make(map[graph.NodeID]int)
	var citable []graph.NodeID
	citable = append(citable, external...)
	for _, p := range external {
		citations[p] = 1
	}

	for _, year := range cfg.Years {
		for ci, conf := range cfg.Conferences {
			topic := confTopic(ci)
			n := cfg.PapersPerConfYear + rng.Intn(cfg.PapersPerConfYear/4+1) - cfg.PapersPerConfYear/8
			if n < 1 {
				n = 1
			}
			for k := 0; k < n; k++ {
				pnode, _ := b.AddNode(LabelPaper)
				b.AddEdge(pnode, pub.ConfNodes[conf])

				lead := pickInst(ci)
				nAuthors := 1 + rng.Intn(cfg.MaxAuthors)
				authorSet := map[graph.NodeID]bool{}
				var authors []graph.NodeID
				for a := 0; a < nAuthors; a++ {
					src := lead
					if a > 0 && rng.Float64() < cfg.CrossInstProb {
						src = pickInst(ci)
					}
					pool := insts[src].authors
					author := pool[rng.Intn(len(pool))]
					if authorSet[author] {
						continue
					}
					authorSet[author] = true
					authors = append(authors, author)
					b.AddEdge(pnode, author)
				}

				// Citations to earlier papers (preferential attachment).
				nCites := 2 + rng.Intn(5)
				for c := 0; c < nCites && len(citable) > 0; c++ {
					target := sampleCitable(rng, citable, citations)
					if target != pnode {
						b.AddEdge(pnode, target)
						citations[target]++
					}
				}

				// Fields.
				nf := 1 + rng.Intn(3)
				for f := 0; f < nf && len(fields) > 0; f++ {
					b.AddEdge(pnode, fields[rng.Intn(len(fields))])
				}

				// Synthetic title: mostly topic words, some global noise.
				tlen := 4 + rng.Intn(7)
				title := make([]string, tlen)
				for w := range title {
					if rng.Float64() < 0.7 {
						title[w] = topic[rng.Intn(len(topic))]
					} else {
						title[w] = titleVocabulary[rng.Intn(len(titleVocabulary))]
					}
				}

				pub.Papers = append(pub.Papers, PaperMeta{
					Node:       pnode,
					Conference: conf,
					Year:       year,
					Full:       rng.Float64() < cfg.FullPaperFrac,
					Authors:    authors,
					Title:      title,
					Keywords:   3 + rng.Intn(4),
				})
				citable = append(citable, pnode)
				citations[pnode] = citations[pnode] + 1
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	pub.Graph = g
	return pub, nil
}

// sampleCitable draws a paper preferentially by citation count.
func sampleCitable(rng *rand.Rand, citable []graph.NodeID, citations map[graph.NodeID]int) graph.NodeID {
	// Two-step approximation of preferential attachment: with
	// probability 1/2 pick uniformly, otherwise pick proportional to a
	// small sample's citation counts.
	if rng.Intn(2) == 0 {
		return citable[rng.Intn(len(citable))]
	}
	best := citable[rng.Intn(len(citable))]
	for i := 0; i < 3; i++ {
		cand := citable[rng.Intn(len(citable))]
		if citations[cand] > citations[best] {
			best = cand
		}
	}
	return best
}

// Relevance computes the ground-truth institution relevance for one
// conference and year by the three KDD-Cup directives: every accepted
// full paper carries one vote, split equally among its authors; each
// author credits their institution (single affiliations in this
// generator). Institutions without contributions are absent from the map.
func (p *Publication) Relevance(conference string, year int) map[graph.NodeID]float64 {
	rel := make(map[graph.NodeID]float64)
	for _, paper := range p.Papers {
		if paper.Conference != conference || paper.Year != year || !paper.Full {
			continue
		}
		if len(paper.Authors) == 0 {
			continue
		}
		share := 1.0 / float64(len(paper.Authors))
		for _, a := range paper.Authors {
			rel[p.AuthorInst[a]] += share
		}
	}
	return rel
}

// Subnetwork induces the institution/author/paper subgraph for one
// conference restricted to the given years, mirroring the paper's rank
// prediction data preparation (§4.2.2): papers of the target conference
// and years, their authors and institutions, plus papers referenced within
// distance 2 of the selected papers. It returns the induced graph and the
// positions of the institutions inside it (institution node -> induced
// node).
func (p *Publication) Subnetwork(conference string, years []int) (*graph.Graph, map[graph.NodeID]graph.NodeID) {
	yearSet := make(map[int]bool, len(years))
	for _, y := range years {
		yearSet[y] = true
	}
	keep := make(map[graph.NodeID]bool)
	var frontier []graph.NodeID
	for _, paper := range p.Papers {
		if paper.Conference != conference || !yearSet[paper.Year] {
			continue
		}
		keep[paper.Node] = true
		frontier = append(frontier, paper.Node)
		for _, a := range paper.Authors {
			keep[a] = true
			keep[p.AuthorInst[a]] = true
		}
	}
	// Referenced papers within distance 2 through citation edges.
	paperLabel, _ := p.Graph.Alphabet().Lookup(LabelPaper)
	for hop := 0; hop < 2; hop++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range p.Graph.Neighbors(v) {
				if p.Graph.Label(w) == paperLabel && !keep[w] {
					keep[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}

	nodes := make([]graph.NodeID, 0, len(keep))
	for v := range keep {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sub, orig := graph.Induced(p.Graph, nodes)
	instMap := make(map[graph.NodeID]graph.NodeID)
	for newID, origID := range orig {
		if p.Graph.Label(origID) == mustLabel(p.Graph, LabelInstitution) {
			instMap[origID] = graph.NodeID(newID)
		}
	}
	return sub, instMap
}

func mustLabel(g *graph.Graph, name string) graph.Label {
	l, ok := g.Alphabet().Lookup(name)
	if !ok {
		panic("datagen: missing label " + name)
	}
	return l
}
