package datagen

import (
	"math"
	"testing"

	"hsgf/internal/graph"
)

func TestGeneratePublicationShape(t *testing.T) {
	cfg := DefaultPublicationConfig()
	cfg.PapersPerConfYear = 20
	cfg.ExternalPapers = 300
	pub, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := pub.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumLabels() != 6 {
		t.Fatalf("labels = %d, want 6", g.NumLabels())
	}
	if len(pub.Institutions) != cfg.Institutions {
		t.Errorf("institutions = %d, want %d", len(pub.Institutions), cfg.Institutions)
	}
	if len(pub.Papers) == 0 {
		t.Fatal("no conference papers generated")
	}

	// Label connectivity must match Figure 2: I-A, A-P, P-P, P-C, P-J,
	// P-F; no I-P, no I-I, no A-A.
	lc := graph.LabelConnectivityOf(g)
	lbl := func(name string) graph.Label {
		l, ok := g.Alphabet().Lookup(name)
		if !ok {
			t.Fatalf("missing label %s", name)
		}
		return l
	}
	I, A, P := lbl(LabelInstitution), lbl(LabelAuthor), lbl(LabelPaper)
	C, J, F := lbl(LabelConference), lbl(LabelJournal), lbl(LabelField)
	mustConn := [][2]graph.Label{{I, A}, {A, P}, {P, P}, {P, C}, {P, J}, {P, F}}
	for _, pr := range mustConn {
		if !lc.Connected(pr[0], pr[1]) {
			t.Errorf("expected connectivity between labels %d and %d", pr[0], pr[1])
		}
	}
	mustNot := [][2]graph.Label{{I, P}, {I, I}, {A, A}, {I, C}, {A, C}, {C, C}}
	for _, pr := range mustNot {
		if lc.Connected(pr[0], pr[1]) {
			t.Errorf("unexpected connectivity between labels %d and %d", pr[0], pr[1])
		}
	}
	if !lc.HasSelfLoop() {
		t.Error("citations must induce a P-P self loop")
	}
}

func TestGeneratePublicationDeterministic(t *testing.T) {
	cfg := DefaultPublicationConfig()
	cfg.PapersPerConfYear = 10
	cfg.ExternalPapers = 100
	a, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed must generate the same network")
	}
	if len(a.Papers) != len(b.Papers) {
		t.Fatal("paper lists differ")
	}
	cfg.Seed = 99
	c, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() && c.Graph.NumNodes() == a.Graph.NumNodes() && len(c.Papers) == len(a.Papers) {
		// Sizes could rarely coincide; require some difference in structure.
		same := true
		for i := range a.Papers {
			if len(a.Papers[i].Authors) != len(c.Papers[i].Authors) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical-looking networks")
		}
	}
}

func TestPublicationRelevanceDirectives(t *testing.T) {
	cfg := DefaultPublicationConfig()
	cfg.PapersPerConfYear = 15
	cfg.ExternalPapers = 100
	pub, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf := cfg.Conferences[0]
	year := cfg.Years[len(cfg.Years)-1]
	rel := pub.Relevance(conf, year)

	// Directive check: total relevance equals the number of full papers
	// at that conference and year (each full paper carries one vote).
	var fullPapers int
	for _, p := range pub.Papers {
		if p.Conference == conf && p.Year == year && p.Full && len(p.Authors) > 0 {
			fullPapers++
		}
	}
	var total float64
	for _, v := range rel {
		total += v
	}
	if math.Abs(total-float64(fullPapers)) > 1e-9 {
		t.Errorf("total relevance %v != full papers %d", total, fullPapers)
	}
	// Short papers contribute nothing: recompute by hand for one paper.
	for _, p := range pub.Papers {
		if p.Conference == conf && p.Year == year && !p.Full {
			// No assertion needed beyond the total above, but ensure
			// the metadata is present.
			if p.Node < 0 {
				t.Error("invalid paper node")
			}
			break
		}
	}
}

func TestPublicationStrengthDrivesRelevance(t *testing.T) {
	// The latent coupling must hold: over all conferences and years,
	// stronger institutions accumulate more relevance (rank correlation
	// clearly positive).
	cfg := DefaultPublicationConfig()
	cfg.PapersPerConfYear = 30
	cfg.ExternalPapers = 200
	pub, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totals := make(map[graph.NodeID]float64)
	for _, conf := range cfg.Conferences {
		for _, y := range cfg.Years {
			for inst, v := range pub.Relevance(conf, y) {
				totals[inst] += v
			}
		}
	}
	var cov, vs, vr float64
	var ms, mr float64
	n := float64(len(pub.Institutions))
	for _, inst := range pub.Institutions {
		ms += pub.Strength[inst]
		mr += totals[inst]
	}
	ms /= n
	mr /= n
	for _, inst := range pub.Institutions {
		ds := pub.Strength[inst] - ms
		dr := totals[inst] - mr
		cov += ds * dr
		vs += ds * ds
		vr += dr * dr
	}
	corr := cov / math.Sqrt(vs*vr+1e-12)
	if corr < 0.5 {
		t.Errorf("strength-relevance correlation = %v, want > 0.5", corr)
	}
}

func TestPublicationSubnetwork(t *testing.T) {
	cfg := DefaultPublicationConfig()
	cfg.PapersPerConfYear = 15
	cfg.ExternalPapers = 150
	pub, err := GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf := cfg.Conferences[1]
	years := cfg.Years[:3]
	sub, instMap := pub.Subnetwork(conf, years)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() == 0 || sub.NumNodes() >= pub.Graph.NumNodes() {
		t.Fatalf("subnetwork size %d out of range", sub.NumNodes())
	}
	if len(instMap) == 0 {
		t.Fatal("no institutions in subnetwork")
	}
	// Only I, A, P labels carry nodes in the subnetwork.
	counts := sub.CountLabels()
	for name, want := range map[string]bool{
		LabelInstitution: true, LabelAuthor: true, LabelPaper: true,
		LabelConference: false, LabelJournal: false, LabelField: false,
	} {
		l, _ := sub.Alphabet().Lookup(name)
		if want && counts[l] == 0 {
			t.Errorf("label %s missing from subnetwork", name)
		}
		if !want && counts[l] != 0 {
			t.Errorf("label %s unexpectedly present (%d nodes)", name, counts[l])
		}
	}
	// Mapped institutions have the right label.
	for orig, induced := range instMap {
		if pub.Graph.Alphabet().Name(pub.Graph.Label(orig)) != LabelInstitution {
			t.Error("instMap key is not an institution")
		}
		if sub.Alphabet().Name(sub.Label(induced)) != LabelInstitution {
			t.Error("instMap value is not an institution in the subnetwork")
		}
	}
}

func TestGeneratePublicationValidation(t *testing.T) {
	bad := DefaultPublicationConfig()
	bad.Institutions = 1
	if _, err := GeneratePublication(bad); err == nil {
		t.Error("too few institutions must fail")
	}
	bad = DefaultPublicationConfig()
	bad.Years = []int{2015}
	if _, err := GeneratePublication(bad); err == nil {
		t.Error("single year must fail")
	}
	bad = DefaultPublicationConfig()
	bad.PapersPerConfYear = 0
	if _, err := GeneratePublication(bad); err == nil {
		t.Error("zero papers must fail")
	}
}

func TestGenerateCooccurrenceShape(t *testing.T) {
	cfg := DefaultCooccurrenceConfig()
	cfg.Documents = 1500
	co, err := GenerateCooccurrence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := co.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumLabels() != 4 {
		t.Fatalf("labels = %d, want 4", g.NumLabels())
	}
	// LOAD's label connectivity graph is (nearly) complete with self
	// loops: every pair of the four types co-occurs somewhere.
	lc := graph.LabelConnectivityOf(g)
	for a := 0; a < 4; a++ {
		for b := a; b < 4; b++ {
			if !lc.Connected(graph.Label(a), graph.Label(b)) {
				t.Errorf("labels %d and %d not connected; LOAD regime requires a dense connectivity graph", a, b)
			}
		}
	}
	if !lc.HasSelfLoop() {
		t.Error("co-occurrence network must have same-type edges")
	}
	// Dense regime: clearly more edges than nodes.
	if g.NumEdges() < 4*g.NumNodes() {
		t.Errorf("density %0.1f edges/node too low for the LOAD regime",
			float64(g.NumEdges())/float64(g.NumNodes()))
	}
}

func TestGenerateCooccurrenceValidation(t *testing.T) {
	bad := DefaultCooccurrenceConfig()
	bad.ZipfS = 1.0
	if _, err := GenerateCooccurrence(bad); err == nil {
		t.Error("ZipfS <= 1 must fail")
	}
	bad = DefaultCooccurrenceConfig()
	bad.Actors = 0
	if _, err := GenerateCooccurrence(bad); err == nil {
		t.Error("zero entities must fail")
	}
	bad = DefaultCooccurrenceConfig()
	bad.Documents = 0
	if _, err := GenerateCooccurrence(bad); err == nil {
		t.Error("zero documents must fail")
	}
}

func TestGenerateMovieShape(t *testing.T) {
	cfg := DefaultMovieConfig()
	cfg.Movies = 300
	mv, err := GenerateMovie(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := mv.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumLabels() != 6 {
		t.Fatalf("labels = %d, want 6", g.NumLabels())
	}
	if len(mv.Movies) != cfg.Movies {
		t.Errorf("movies = %d, want %d", len(mv.Movies), cfg.Movies)
	}
	// Star structure: movie label connects to all others; nothing else
	// connects, and there are no self loops.
	lc := graph.LabelConnectivityOf(g)
	movie, _ := g.Alphabet().Lookup(LabelMovie)
	for l := 0; l < 6; l++ {
		if graph.Label(l) == movie {
			continue
		}
		if !lc.Connected(movie, graph.Label(l)) {
			t.Errorf("movie label not connected to label %d", l)
		}
		for l2 := l; l2 < 6; l2++ {
			if graph.Label(l2) == movie {
				continue
			}
			if lc.Connected(graph.Label(l), graph.Label(l2)) {
				t.Errorf("non-movie labels %d and %d connected; star schema violated", l, l2)
			}
		}
	}
	if lc.HasSelfLoop() {
		t.Error("movie network must be loop-free")
	}
	// Sparse regime.
	density := float64(g.NumEdges()) / float64(g.NumNodes())
	if density < 2 || density > 8 {
		t.Errorf("density %0.1f outside IMDB's sparse regime", density)
	}
}

func TestGenerateMovieValidation(t *testing.T) {
	bad := DefaultMovieConfig()
	bad.Composers = 0
	if _, err := GenerateMovie(bad); err == nil {
		t.Error("zero composers must fail")
	}
	bad = DefaultMovieConfig()
	bad.ZipfS = 0.5
	if _, err := GenerateMovie(bad); err == nil {
		t.Error("ZipfS <= 1 must fail")
	}
}

func TestDefaultsProduceDistinctRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("full default generation is slow; run without -short")
	}
	co, err := GenerateCooccurrence(DefaultCooccurrenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	mv, err := GenerateMovie(DefaultMovieConfig())
	if err != nil {
		t.Fatal(err)
	}
	dCo := float64(co.Graph.NumEdges()) / float64(co.Graph.NumNodes())
	dMv := float64(mv.Graph.NumEdges()) / float64(mv.Graph.NumNodes())
	if dCo <= 2*dMv {
		t.Errorf("co-occurrence density %0.1f should clearly exceed movie density %0.1f", dCo, dMv)
	}
}
