package datagen

import (
	"fmt"
	"math/rand"

	"hsgf/internal/graph"
)

// LOAD-style label names (locations, organizations, actors, dates).
const (
	LabelLocation     = "location"
	LabelOrganization = "organization"
	LabelActor        = "actor"
	LabelDate         = "date"
)

// CooccurrenceConfig parameterises the LOAD-style entity co-occurrence
// network: overlapping document cliques over four entity types with
// type-dependent popularity skew and mixing.
type CooccurrenceConfig struct {
	Locations     int
	Organizations int
	Actors        int
	Dates         int
	Documents     int     // co-occurrence contexts (sentence windows)
	ZipfS         float64 // popularity skew within each type (> 1)
	Seed          int64
}

// DefaultCooccurrenceConfig returns a laptop-scale configuration in
// LOAD's density regime: a complete label connectivity graph with self
// loops and roughly 20 edges per node.
func DefaultCooccurrenceConfig() CooccurrenceConfig {
	return CooccurrenceConfig{
		Locations:     500,
		Organizations: 400,
		Actors:        900,
		Dates:         300,
		Documents:     6000,
		ZipfS:         1.3,
		Seed:          2,
	}
}

// Cooccurrence is the generated entity co-occurrence network.
type Cooccurrence struct {
	Graph  *graph.Graph
	Config CooccurrenceConfig
}

// GenerateCooccurrence builds the network. Each document samples a
// type-count profile (actors cluster, dates attach broadly, locations
// anchor events), draws entities Zipf-skewed within each type, and
// connects all co-occurring entities pairwise — so an entity's typed
// neighbourhood composition is characteristic of its own type, which is
// exactly the signal heterogeneous subgraph features exploit and
// label-blind embeddings cannot.
func GenerateCooccurrence(cfg CooccurrenceConfig) (*Cooccurrence, error) {
	if cfg.Locations < 1 || cfg.Organizations < 1 || cfg.Actors < 1 || cfg.Dates < 1 {
		return nil, fmt.Errorf("datagen: co-occurrence config needs positive entity counts")
	}
	if cfg.Documents < 1 {
		return nil, fmt.Errorf("datagen: co-occurrence config needs positive document count")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("datagen: ZipfS must exceed 1, got %v", cfg.ZipfS)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alpha := graph.MustAlphabet(LabelLocation, LabelOrganization, LabelActor, LabelDate)
	b := graph.NewBuilderWithAlphabet(alpha)

	types := []struct {
		label string
		count int
	}{
		{LabelLocation, cfg.Locations},
		{LabelOrganization, cfg.Organizations},
		{LabelActor, cfg.Actors},
		{LabelDate, cfg.Dates},
	}
	pools := make([][]graph.NodeID, len(types))
	zipfs := make([]*rand.Zipf, len(types))
	for t, tt := range types {
		pools[t] = make([]graph.NodeID, tt.count)
		for i := 0; i < tt.count; i++ {
			pools[t][i], _ = b.AddNode(tt.label)
		}
		zipfs[t] = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(tt.count-1))
	}

	// Per-document type-count profiles. Three document archetypes with
	// different mixes keep the typed co-occurrence profiles of the four
	// entity types distinct:
	//   battle reports:  locations + dates + some organizations
	//   biography:       actors + actors + a location
	//   politics:        organizations + actors + a date
	profiles := [][4][2]int{ // [type] -> {min, max} entities per document
		{{2, 4}, {0, 2}, {0, 2}, {1, 3}}, // battle report
		{{0, 2}, {0, 1}, {2, 5}, {0, 1}}, // biography
		{{0, 1}, {2, 4}, {1, 3}, {1, 2}}, // politics
	}

	for d := 0; d < cfg.Documents; d++ {
		profile := profiles[rng.Intn(len(profiles))]
		var members []graph.NodeID
		for t := range types {
			lo, hi := profile[t][0], profile[t][1]
			n := lo
			if hi > lo {
				n += rng.Intn(hi - lo + 1)
			}
			for i := 0; i < n; i++ {
				members = append(members, pools[t][int(zipfs[t].Uint64())])
			}
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if members[i] != members[j] {
					b.AddEdge(members[i], members[j])
				}
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Cooccurrence{Graph: g, Config: cfg}, nil
}
