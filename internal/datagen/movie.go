package datagen

import (
	"fmt"
	"math/rand"

	"hsgf/internal/graph"
)

// IMDB-style label names.
const (
	LabelMovie    = "movie"
	LabelMActor   = "actor"
	LabelDirector = "director"
	LabelWriter   = "writer"
	LabelComposer = "composer"
	LabelKeyword  = "keyword"
)

// MovieConfig parameterises the IMDB-style star-schema movie network.
type MovieConfig struct {
	Movies    int
	Actors    int
	Directors int
	Writers   int
	Composers int
	Keywords  int
	ZipfS     float64 // reuse skew of people and keywords across movies
	Seed      int64
}

// DefaultMovieConfig returns a laptop-scale configuration in IMDB's
// regime: a sparse star label connectivity graph (all non-movie labels
// connect only to movies) at roughly 4-5 edges per node.
func DefaultMovieConfig() MovieConfig {
	return MovieConfig{
		Movies:    900,
		Actors:    2200,
		Directors: 160,
		Writers:   350,
		Composers: 120,
		Keywords:  450,
		ZipfS:     1.4,
		Seed:      3,
	}
}

// Movie is the generated movie network.
type Movie struct {
	Graph  *graph.Graph
	Config MovieConfig
	Movies []graph.NodeID
}

// GenerateMovie builds the network: every movie connects to a cast of
// actors, one or two directors, writers, a composer, and keywords; no
// other edges exist, reproducing IMDB's relational-record star structure
// (Figure 2, right). People and keywords are reused across movies with a
// Zipf skew, so non-movie nodes have broad degree spread while every
// movie's degree is moderate — the structural signature that makes IMDB
// the hardest of the paper's label prediction data sets.
func GenerateMovie(cfg MovieConfig) (*Movie, error) {
	if cfg.Movies < 1 || cfg.Actors < 1 || cfg.Directors < 1 ||
		cfg.Writers < 1 || cfg.Composers < 1 || cfg.Keywords < 1 {
		return nil, fmt.Errorf("datagen: movie config needs positive entity counts")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("datagen: ZipfS must exceed 1, got %v", cfg.ZipfS)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Sample movie rosters over abstract pool indices first; only pool
	// entries that actually appear in some movie become nodes (the IMDB
	// lists, likewise, contain no people without credits).
	type poolRef struct {
		kind int // index into kinds
		id   int
	}
	kinds := []struct {
		label string
		size  int
	}{
		{LabelMActor, cfg.Actors},
		{LabelDirector, cfg.Directors},
		{LabelWriter, cfg.Writers},
		{LabelComposer, cfg.Composers},
		{LabelKeyword, cfg.Keywords},
	}
	zipfs := make([]*rand.Zipf, len(kinds))
	for k, kk := range kinds {
		zipfs[k] = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(kk.size-1))
	}
	rosters := make([][]poolRef, cfg.Movies)
	counts := []func() int{
		func() int { return 4 + rng.Intn(9) }, // actors
		func() int { return 1 + rng.Intn(2) }, // directors
		func() int { return 1 + rng.Intn(3) }, // writers
		func() int { return 1 },               // composer
		func() int { return 3 + rng.Intn(5) }, // keywords
	}
	for i := range rosters {
		seen := map[poolRef]bool{}
		for k := range kinds {
			n := counts[k]()
			for j := 0; j < n; j++ {
				ref := poolRef{kind: k, id: int(zipfs[k].Uint64())}
				if !seen[ref] {
					seen[ref] = true
					rosters[i] = append(rosters[i], ref)
				}
			}
		}
	}

	alpha := graph.MustAlphabet(LabelMovie, LabelMActor, LabelDirector,
		LabelWriter, LabelComposer, LabelKeyword)
	b := graph.NewBuilderWithAlphabet(alpha)
	m := &Movie{Config: cfg}
	nodes := make(map[poolRef]graph.NodeID)
	for i, roster := range rosters {
		movie, _ := b.AddNamedNode(LabelMovie, fmt.Sprintf("movie-%04d", i))
		m.Movies = append(m.Movies, movie)
		for _, ref := range roster {
			v, ok := nodes[ref]
			if !ok {
				v, _ = b.AddNode(kinds[ref.kind].label)
				nodes[ref] = v
			}
			b.AddEdge(movie, v)
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	m.Graph = g
	return m, nil
}
