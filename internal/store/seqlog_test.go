package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestSeqLogAssignsContiguousDurableSequences(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.wal")
	l, err := OpenSeqLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("batch-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every assignment survives, in order.
	l2, err := OpenSeqLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := l2.Records()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || string(rec.Payload) != fmt.Sprintf("batch-%d", i+1) {
			t.Fatalf("record %d = seq %d payload %q", i, rec.Seq, rec.Payload)
		}
	}
	if seq, err := l2.Append([]byte("batch-6")); err != nil || seq != 6 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
}

func TestSeqLogSince(t *testing.T) {
	l, err := OpenSeqLog(filepath.Join(t.TempDir(), "seq.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 8; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Since(3, 6)
	if len(got) != 3 || got[0].Seq != 4 || got[2].Seq != 6 {
		t.Fatalf("Since(3,6) = %v", got)
	}
	if open := l.Since(6, 0); len(open) != 2 || open[0].Seq != 7 {
		t.Fatalf("Since(6,0) = %v", open)
	}
	if none := l.Since(8, 0); len(none) != 0 {
		t.Fatalf("Since(8,0) = %v", none)
	}
}

// TestSeqLogTornTailTruncated: garbage appended after the last valid
// frame — the crash window mid-append — is dropped on open; the intact
// prefix survives and appending continues from it.
func TestSeqLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.wal")
	l, err := OpenSeqLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("WREC\x09\x00\x00\x00torn")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenSeqLog(path)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != 3 || len(l2.Records()) != 3 {
		t.Fatalf("recovered LastSeq %d with %d records, want 3/3", l2.LastSeq(), len(l2.Records()))
	}
	if seq, err := l2.Append([]byte{4}); err != nil || seq != 4 {
		t.Fatalf("append after torn-tail recovery: seq %d err %v", seq, err)
	}
}

// TestSeqLogGapIsHardError: a log whose surviving records skip a
// sequence lost acked assignments; OpenSeqLog must refuse it.
func TestSeqLogGapIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.wal")
	wal, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(3, []byte{3}); err != nil { // gap: no seq 2
		t.Fatal(err)
	}
	wal.Close()
	if _, err := OpenSeqLog(path); err == nil {
		t.Fatal("gapped sequencer log opened without error")
	}
}
