//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The returned release func
// unmaps; the caller may close f as soon as mmapFile returns (the
// mapping keeps the pages alive). mapped reports a real mapping, so
// callers can distinguish zero-copy loads from the heap fallback.
func mmapFile(f *os.File, size int) (data []byte, release func() error, mapped bool, err error) {
	if size == 0 {
		// Zero-length mmap is an EINVAL on most kernels; an empty file
		// cannot hold an envelope anyway, so hand back an empty slice
		// and let the parser reject it.
		return nil, func() error { return nil }, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return syscall.Munmap(b) }, true, nil
}
