package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openWAL(t *testing.T, path string) (*WAL, []WALRecord) {
	t.Helper()
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, recs
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, recs := openWAL(t, path)
	if len(recs) != 0 || w.LastSeq() != 0 {
		t.Fatalf("fresh WAL replayed %d records, last seq %d", len(recs), w.LastSeq())
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for i, p := range payloads {
		if err := w.Append(uint64(i+1), p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if w.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", w.LastSeq())
	}
	w.Close()

	w2, recs := openWAL(t, path)
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
	if w2.LastSeq() != 3 {
		t.Fatalf("reopened LastSeq = %d, want 3", w2.LastSeq())
	}
	// Appends continue from the replayed sequence.
	if err := w2.Append(3, []byte("dup")); err == nil {
		t.Fatal("append at replayed seq accepted")
	}
	if err := w2.Append(4, []byte("delta")); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	if err := w.Append(1, []byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate a crash mid-append: half a frame of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("WREC\x01\x02half-a-frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	w2, recs := openWAL(t, path)
	if len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("replay after torn tail gave %d records", len(recs))
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The truncated log accepts new appends and replays cleanly again.
	if err := w2.Append(3, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs = openWAL(t, path)
	if len(recs) != 3 {
		t.Fatalf("replay after recovery append gave %d records, want 3", len(recs))
	}
}

func TestWALBitFlipDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	for i := 1; i <= 3; i++ {
		if err := w.Append(uint64(i), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	secondEnd := w.Size() - int64(walFrameHeader+32+4) // start of frame 3
	w.Close()

	// Flip one payload byte inside the LAST frame: replay keeps the two
	// verified frames and truncates the damaged one.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[int(secondEnd)+walFrameHeader+5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs := openWAL(t, path)
	if len(recs) != 2 || w2.LastSeq() != 2 {
		t.Fatalf("replay kept %d records (last seq %d), want 2", len(recs), w2.LastSeq())
	}
	if w2.Size() != secondEnd {
		t.Fatalf("Size = %d after truncation, want %d", w2.Size(), secondEnd)
	}
}

func TestWALBitFlipMidLogDropsSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	frameLen := 0
	for i := 1; i <= 3; i++ {
		if err := w.Append(uint64(i), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			frameLen = int(w.Size()) - walHeaderSize
		}
	}
	w.Close()

	// Damage frame 2: everything from it on is unusable; frame 1 stays.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderSize+frameLen+walFrameHeader+3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := openWAL(t, path)
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("replay kept %d records, want only the first", len(recs))
	}
}

func TestWALSeqRegressionIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	if err := w.Append(5, []byte("five")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Hand-append a VALID frame with a lower seq: not a torn write, so
	// replay must refuse rather than truncate.
	frame, err := EncodeWALFrame(4, []byte("four"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Close()

	if _, _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenWAL = %v, want ErrCorrupt on sequence regression", err)
	}
}

func TestWALBadHeaderIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL0\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenWAL = %v, want ErrCorrupt on bad header", err)
	}
	// The file must not have been wiped or truncated.
	data, err := os.ReadFile(path)
	if err != nil || len(data) != 12 {
		t.Fatalf("bad-header WAL was modified: %d bytes, %v", len(data), err)
	}
}

func TestWALUnsupportedVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	hdr := append([]byte(walMagic), 0xff, 0, 0, 0)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("OpenWAL = %v, want ErrUnsupportedVersion", err)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	for i := 1; i <= 4; i++ {
		if err := w.Append(uint64(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != int64(walHeaderSize) {
		t.Fatalf("Size after Reset = %d, want %d", w.Size(), walHeaderSize)
	}
	// Sequence numbers survive the reset: 4 is taken, 5 is next.
	if err := w.Append(4, []byte("y")); err == nil {
		t.Fatal("append at pre-reset seq accepted")
	}
	if err := w.Append(5, []byte("y")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs := openWAL(t, path)
	if len(recs) != 1 || recs[0].Seq != 5 {
		t.Fatalf("replay after reset gave %v", recs)
	}
}

// TestWALAppendFailureRollsBack: a failed append that left partial
// frame bytes in the file must roll them back. If they stayed, a later
// successful (acked) append would sit beyond them, and recovery — which
// stops at the first undecodable frame — would silently truncate the
// acked record away.
func TestWALAppendFailureRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	if err := w.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	sizeBefore := w.Size()

	// Inject an ENOSPC-style partial write: half the frame lands, then
	// the write errors.
	orig := walWrite
	walWrite = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, errors.New("injected: no space left on device")
	}
	err := w.Append(2, []byte("torn"))
	walWrite = orig
	if err == nil {
		t.Fatal("failed append reported success")
	}
	if w.Size() != sizeBefore {
		t.Fatalf("Size = %d after failed append, want rollback to %d", w.Size(), sizeBefore)
	}
	if fi, statErr := os.Stat(path); statErr != nil || fi.Size() != sizeBefore {
		t.Fatalf("file holds %d bytes after failed append, want %d", fi.Size(), sizeBefore)
	}
	if w.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d after failed append, want 1", w.LastSeq())
	}

	// The log stays usable, and the frame acked after the failure
	// survives recovery — the exact record the torn bytes would have
	// stranded.
	if err := w.Append(2, []byte("acked-after-failure")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs := openWAL(t, path)
	if len(recs) != 2 || !bytes.Equal(recs[1].Payload, []byte("acked-after-failure")) {
		t.Fatalf("replay after rollback: %d records", len(recs))
	}
}

// TestWALPoisonedWhenRollbackFails: when the rollback truncate cannot
// restore the file, the log must refuse every further append — the
// alternative is exactly the stranded-acked-frame hazard above.
func TestWALPoisonedWhenRollbackFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	if err := w.Append(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Closing the file underneath the WAL makes both the append write
	// and the rollback truncate fail.
	w.f.Close()
	if err := w.Append(2, []byte("two")); err == nil {
		t.Fatal("append on a closed file reported success")
	}
	if err := w.Append(3, []byte("three")); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned WAL did not refuse a further append: %v", err)
	}
}

func TestWALRejectsOversizedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := openWAL(t, path)
	if _, err := EncodeWALFrame(1, make([]byte, MaxWALRecord+1)); err == nil {
		t.Fatal("oversized frame encoded")
	}
	// An in-bounds append still works.
	if err := w.Append(1, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
}

// FuzzWALRecord drives the frame decoder with arbitrary bytes: never
// panic, always a typed error on rejection, and canonical round-trip on
// accept (re-encoding the decoded record reproduces the consumed
// bytes).
func FuzzWALRecord(f *testing.F) {
	for _, p := range [][]byte{nil, []byte("payload"), bytes.Repeat([]byte{0xAB}, 300)} {
		frame, err := EncodeWALFrame(7, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-3])
		flip := append([]byte{}, frame...)
		flip[len(flip)/2] ^= 0x10
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("WREC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeWALFrame(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded frame claims %d of %d bytes", n, len(data))
		}
		re, err := EncodeWALFrame(rec.Seq, rec.Payload)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatal("accepted frame is not canonical")
		}
	})
}
