package store

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
)

// AtomicWrite replaces path with the bytes produced by write, surviving
// a crash at any instant: either the old file or the complete new file
// is what a post-crash reader sees, never a mixture. The sequence is
// temp file in the same directory -> write -> fsync(file) -> close ->
// rename -> fsync(parent directory). The final directory fsync is the
// step naive implementations skip; without it the rename itself can be
// lost on power failure, resurrecting the old snapshot or leaving none.
func AtomicWrite(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := syncFile(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// AtomicWriteBytes is AtomicWrite for a fully materialised payload.
func AtomicWriteBytes(path string, data []byte) error {
	return AtomicWrite(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// syncFile flushes f to stable storage, tolerating sinks that cannot
// sync (/dev/null, pipes, some tmpfs mounts report EINVAL/ENOTSUP).
func syncFile(f *os.File) error {
	err := f.Sync()
	if err == nil || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// SyncDir fsyncs a directory so a rename inside it is durable. Like
// syncFile it tolerates filesystems that cannot sync directories.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if closeErr := d.Close(); err == nil {
		err = closeErr
	}
	if err == nil || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}
