package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// faultEnvelope builds a realistically sized snapshot for mutation
// sweeps: a small meta section and a few KB of structured payload.
func faultEnvelope(t *testing.T) []byte {
	t.Helper()
	var body bytes.Buffer
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&body, `{"row":%d,"counts":[%d,%d,%d]}`+"\n", i, i*3, i*5, i*7)
	}
	data, err := EncodeEnvelope([]Section{
		{Name: "meta", Payload: []byte(`{"artifact":"fault","schema":1}`)},
		{Name: "rows", Payload: body.Bytes()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTruncationSweep cuts the envelope at sampled byte offsets — plus
// every boundary-adjacent offset — and requires a typed error, never a
// panic and never a false accept.
func TestTruncationSweep(t *testing.T) {
	data := faultEnvelope(t)
	offsets := map[int]bool{0: true, 1: true, len(data) - 1: true}
	for off := 0; off < len(data); off += 37 {
		offsets[off] = true
	}
	// Boundary offsets: end of header, end of each footer byte.
	for d := 0; d <= footerLen; d++ {
		offsets[len(data)-d] = true
	}
	for off := range offsets {
		if off < 0 || off >= len(data) {
			continue
		}
		_, err := ParseEnvelope(data[:off])
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", off, len(data))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnsupportedVersion) {
			t.Fatalf("truncation at %d: untyped error %v", off, err)
		}
	}
}

// TestBitFlipSweep flips single bits at sampled offsets. Any mutation
// must be caught by the CRC, the SHA manifest, or the framing — the
// parser may never return a silently different envelope.
func TestBitFlipSweep(t *testing.T) {
	data := faultEnvelope(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 512; trial++ {
		off := rng.Intn(len(data))
		bit := byte(1) << rng.Intn(8)
		mut := append([]byte{}, data...)
		mut[off] ^= bit
		_, err := ParseEnvelope(mut)
		if err == nil {
			// Every byte is under the SHA-256 manifest, so no flip may
			// ever be accepted.
			t.Fatalf("bit flip at offset %d bit %02x accepted", off, bit)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnsupportedVersion) {
			t.Fatalf("bit flip at %d: untyped error %v", off, err)
		}
	}
}

// TestPartialRenameSimulation models a crash between the temp-file
// write and the rename: the directory holds a complete older
// generation plus a stray temp file. The loader must serve the old
// generation and never mistake the temp file for a snapshot.
func TestPartialRenameSimulation(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("feat", testSections("stable")); err != nil {
		t.Fatal(err)
	}
	// A crashed writer leaves the next generation only as a temp file —
	// both a complete one and a half-written one.
	full, err := EncodeEnvelope(testSections("half-arrived"))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(s.Path("feat", 2))
	if err := os.WriteFile(filepath.Join(s.Dir(), base+".tmp123"), full, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), base+".tmp456"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	env, gen, err := s.LoadLatest("feat")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("loaded generation %d, want the stable 1", gen)
	}
	if body, _ := env.Section("body"); string(body) != "payload-stable" {
		t.Fatalf("body %q", body)
	}
	// The next write must skip neither forward nor backward because of
	// the strays.
	gen2, err := s.Write("feat", testSections("next"))
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != 2 {
		t.Fatalf("post-crash write got generation %d, want 2", gen2)
	}
}

// TestCrossKindSpliceRejected concatenates halves of two valid
// snapshots — the torn-write shape an unsynced rename can produce — and
// requires a typed rejection.
func TestCrossKindSpliceRejected(t *testing.T) {
	a, err := EncodeEnvelope(testSections("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeEnvelope([]Section{
		{Name: "meta", Payload: []byte(`{"artifact":"other"}`)},
		{Name: "body", Payload: bytes.Repeat([]byte("B"), 300)},
	})
	if err != nil {
		t.Fatal(err)
	}
	splice := append(append([]byte{}, a[:len(a)/2]...), b[len(b)/2:]...)
	if _, err := ParseEnvelope(splice); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("splice: got %v, want ErrCorrupt", err)
	}
}
