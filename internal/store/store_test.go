package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSections(tag string) []Section {
	return []Section{
		{Name: "meta", Payload: []byte(`{"artifact":"test","schema":1}`)},
		{Name: "body", Payload: []byte("payload-" + tag)},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	sections := []Section{
		{Name: "meta", Payload: []byte(`{"k":1}`)},
		{Name: "empty", Payload: nil},
		{Name: "bin", Payload: []byte{0, 1, 2, 255, 254}},
	}
	data, err := EncodeEnvelope(sections)
	if err != nil {
		t.Fatal(err)
	}
	env, err := ParseEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Version != FormatVersion {
		t.Fatalf("version %d, want %d", env.Version, FormatVersion)
	}
	if len(env.Sections) != len(sections) {
		t.Fatalf("%d sections, want %d", len(env.Sections), len(sections))
	}
	for i, s := range sections {
		got := env.Sections[i]
		if got.Name != s.Name || !bytes.Equal(got.Payload, s.Payload) {
			t.Fatalf("section %d: got %q/%q, want %q/%q", i, got.Name, got.Payload, s.Name, s.Payload)
		}
	}
	// Canonical encoding: re-encoding a parsed envelope is byte-identical.
	again, err := EncodeEnvelope(env.Sections)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding a parsed envelope changed the bytes")
	}
}

func TestEnvelopeRejectsBadSections(t *testing.T) {
	if _, err := EncodeEnvelope(nil); err == nil {
		t.Error("empty envelope accepted")
	}
	if _, err := EncodeEnvelope([]Section{{Name: "", Payload: []byte("x")}}); err == nil {
		t.Error("unnamed section accepted")
	}
	if _, err := EncodeEnvelope([]Section{{Name: strings.Repeat("n", maxSectionName+1)}}); err == nil {
		t.Error("oversized section name accepted")
	}
}

func TestParseRejectsUnsupportedVersion(t *testing.T) {
	data, err := EncodeEnvelope(testSections("v"))
	if err != nil {
		t.Fatal(err)
	}
	// The version field sits right after the header magic; bumping it
	// invalidates the manifest, so recompute the footer the way a future
	// writer would.
	data[len(headerMagic)] = FormatVersion + 1
	data = resign(data)
	_, err = ParseEnvelope(data)
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future version: got %v, want ErrUnsupportedVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("future version misclassified as corruption")
	}
}

func TestParseRejectsTrailingGarbage(t *testing.T) {
	data, err := EncodeEnvelope(testSections("t"))
	if err != nil {
		t.Fatal(err)
	}
	// Splice extra bytes between the last section and the footer, then
	// re-sign. The framing, not the digest, must catch this: it models a
	// future writer appending a section this reader does not know about.
	body := data[:len(data)-footerLen]
	extra := append(append([]byte{}, body...), []byte("unknown-trailing-section")...)
	_, err = ParseEnvelope(resign(append(extra, data[len(data)-footerLen:]...)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

// resign recomputes the manifest footer after a deliberate mutation, so
// tests can isolate framing checks from the whole-file digest.
func resign(data []byte) []byte {
	out := append([]byte{}, data[:len(data)-footerLen]...)
	sum := sha256.Sum256(out)
	out = append(out, sum[:]...)
	return append(out, footerMagic...)
}

func TestStoreWriteLoadRotate(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		gen, err := s.Write("feat", testSections(string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i) {
			t.Fatalf("write %d assigned generation %d", i, gen)
		}
	}
	gens, err := s.Generations("feat")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("retention kept generations %v, want [4 5]", gens)
	}
	env, gen, err := s.LoadLatest("feat")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 5 {
		t.Fatalf("latest generation %d, want 5", gen)
	}
	if body, ok := env.Section("body"); !ok || string(body) != "payload-f" {
		t.Fatalf("latest body %q", body)
	}
}

func TestStoreKindsAreIndependent(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("graph", testSections("g")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("featureset", testSections("f")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadLatest("checkpoint"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing kind: got %v, want ErrNotFound", err)
	}
	gens, err := s.Generations("graph")
	if err != nil || len(gens) != 1 {
		t.Fatalf("graph generations %v (err %v)", gens, err)
	}
}

func TestStoreRejectsBadKind(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"", "UPPER", "has space", "../escape", "-lead"} {
		if _, err := s.Write(kind, testSections("x")); err == nil {
			t.Errorf("kind %q accepted", kind)
		}
	}
}

func TestQuarantineFallback(t *testing.T) {
	var logged []string
	s, err := Open(t.TempDir(), Options{Log: func(f string, a ...any) {
		logged = append(logged, f)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("feat", testSections("good")); err != nil {
		t.Fatal(err)
	}
	gen2, err := s.Write("feat", testSections("newer"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest generation on disk.
	path := s.Path("feat", gen2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	env, gen, err := s.LoadLatest("feat")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("fell back to generation %d, want 1", gen)
	}
	if body, _ := env.Section("body"); string(body) != "payload-good" {
		t.Fatalf("fallback body %q", body)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("corrupt generation not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt generation still present under its live name")
	}
	if len(logged) == 0 {
		t.Error("quarantine was not logged")
	}

	// The burned generation number is never reissued.
	gen3, err := s.Write("feat", testSections("after"))
	if err != nil {
		t.Fatal(err)
	}
	if gen3 != gen2+1 {
		t.Fatalf("post-quarantine write got generation %d, want %d", gen3, gen2+1)
	}
}

// TestLoadLatestVerifiedMultiQuarantineFallback walks LoadLatestVerified
// through a store whose newest three generations are all bad — two torn
// on disk, one rejected by the artifact-level verify hook — and checks
// it lands on the oldest good generation, quarantines every failure in
// one pass, and never re-reads quarantined files on later calls.
func TestLoadLatestVerifiedMultiQuarantineFallback(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Retain: 8})
	if err != nil {
		t.Fatal(err)
	}
	var gens []uint64
	for _, tag := range []string{"oldest", "torn-a", "torn-b", "rejected"} {
		gen, err := s.Write("feat", testSections(tag))
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, gen)
	}
	// Generations 2 and 3 fail integrity verification: flip a byte in
	// one, truncate the other. Generation 4 is bit-perfect but carries a
	// payload the caller's verify hook rejects.
	for _, gen := range gens[1:3] {
		path := s.Path("feat", gen)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if gen == gens[1] {
			data[len(data)/3] ^= 0x55
		} else {
			data = data[:len(data)-footerLen/2]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	verifyCalls := 0
	verify := func(env *Envelope) error {
		verifyCalls++
		body, ok := env.Section("body")
		if !ok {
			return errors.New("no body section")
		}
		if strings.Contains(string(body), "rejected") {
			return errors.New("payload fails artifact check")
		}
		return nil
	}

	env, gen, err := s.LoadLatestVerified("feat", verify)
	if err != nil {
		t.Fatal(err)
	}
	if gen != gens[0] {
		t.Fatalf("fell back to generation %d, want %d", gen, gens[0])
	}
	if body, _ := env.Section("body"); string(body) != "payload-oldest" {
		t.Fatalf("fallback body %q", body)
	}
	// The verify hook only sees envelopes that passed integrity checks:
	// the rejected generation and the surviving one. Torn files never
	// reach it.
	if verifyCalls != 2 {
		t.Fatalf("verify hook ran %d times, want 2", verifyCalls)
	}
	// All three failures were renamed aside in the single pass.
	for _, gen := range gens[1:] {
		path := s.Path("feat", gen)
		if _, err := os.Stat(path + quarantineSuffix); err != nil {
			t.Errorf("generation %d not quarantined: %v", gen, err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("generation %d still present under its live name", gen)
		}
	}
	live, err := s.Generations("feat")
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0] != gens[0] {
		t.Fatalf("live generations %v, want [%d]", live, gens[0])
	}

	// A second load must skip the quarantined files without re-reading
	// them: the verify hook fires exactly once more, for the survivor.
	if _, gen, err := s.LoadLatestVerified("feat", verify); err != nil || gen != gens[0] {
		t.Fatalf("second load: gen %d, err %v", gen, err)
	}
	if verifyCalls != 3 {
		t.Fatalf("verify hook ran %d times after second load, want 3", verifyCalls)
	}
}

func TestLoadLatestAllCorrupt(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		gen, err := s.Write("feat", testSections("x"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.Path("feat", gen), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.LoadLatest("feat"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("all-corrupt store: got %v, want ErrNotFound", err)
	}
	// Every generation must have been renamed aside.
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*"+quarantineSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("%d quarantined files, want 3", len(matches))
	}
}

func TestWriteFileVerifyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := WriteFile(path, testSections("one")); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(path); err != nil {
		t.Fatal(err)
	}
	env, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := env.Section("body"); string(body) != "payload-one" {
		t.Fatalf("body %q", body)
	}
}

func TestAtomicWriteReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := AtomicWriteBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new" {
		t.Fatalf("read %q, %v", got, err)
	}
	// The temp file must not linger.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries after atomic write, want 1", len(entries))
	}
}
