package store

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Mapped is a read-only view of one snapshot file, memory-mapped where
// the platform allows (heap-loaded otherwise). Envelopes parsed from it
// alias the mapping, so the Mapped must stay open for as long as any
// slice derived from those sections is reachable — that is what makes
// the graph boot path zero-copy: CSR arrays point straight into the
// page cache.
type Mapped struct {
	data    []byte
	release func() error
	mapped  bool
	closed  atomic.Bool
}

// Data returns the raw file bytes. The slice dies with Close.
func (m *Mapped) Data() []byte { return m.data }

// Mmapped reports whether the view is a true memory mapping (false on
// platforms using the heap fallback, and for empty files).
func (m *Mapped) Mmapped() bool { return m.mapped }

// Close releases the mapping. Idempotent; every slice aliasing the
// mapping is invalid afterwards.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.data = nil
	return m.release()
}

// OpenMapped maps path and fully verifies the envelope inside it. The
// returned envelope's section payloads alias the mapping; close the
// Mapped only when they are no longer reachable. The file descriptor is
// released before returning — the mapping outlives it.
func OpenMapped(path string) (*Mapped, *Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("store: %s: %d bytes exceeds the address space", path, size)
	}
	data, release, mapped, err := mmapFile(f, int(size))
	if err != nil {
		return nil, nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	m := &Mapped{data: data, release: release, mapped: mapped}
	env, err := ParseEnvelope(data)
	if err != nil {
		m.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, env, nil
}

// LoadLatestMapped is LoadLatestVerified over a memory-mapped read: the
// newest generation of kind that passes envelope verification and the
// artifact-level verify hook is returned still mapped, generations that
// fail are quarantined, and the mapping of every rejected generation is
// closed before the next candidate is tried. The caller owns closing
// the returned Mapped.
func (s *Store) LoadLatestMapped(kind string, verify func(*Envelope) error) (*Mapped, *Envelope, uint64, error) {
	gens, err := s.scan(kind)
	if err != nil {
		return nil, nil, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if g.quarantined {
			continue
		}
		m, env, err := OpenMapped(g.path)
		if err == nil && verify != nil {
			if err = verify(env); err != nil {
				m.Close()
			}
		}
		if err == nil {
			return m, env, g.gen, nil
		}
		if quarantineErr := s.Quarantine(g.path); quarantineErr != nil {
			s.logf("store: %s failed verification (%v) and could not be quarantined: %v",
				g.path, err, quarantineErr)
		} else {
			s.logf("store: quarantined %s generation %d: %v", kind, g.gen, err)
		}
	}
	return nil, nil, 0, fmt.Errorf("%w: kind %q in %s", ErrNotFound, kind, s.dir)
}

// PayloadOffset returns the file offset at which section i's payload
// starts inside the envelope EncodeEnvelope would produce for sections.
// Encoders that align data relative to the final file (the binary graph
// codec) call this before encoding their payload; the framing layout is
// part of the format contract, so the arithmetic here must track
// EncodeEnvelope exactly.
func PayloadOffset(sections []Section, i int) int {
	off := headerLen
	for j := 0; j < i; j++ {
		off += 4 + len(sections[j].Name) + 8 + len(sections[j].Payload) + 4
	}
	return off + 4 + len(sections[i].Name) + 8
}
