package store

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// DefaultRetain is the number of good generations kept per artifact
// kind when Options.Retain is zero.
const DefaultRetain = 4

// quarantineSuffix marks a snapshot that failed verification. The file
// is renamed aside — evidence for the operator — and never considered a
// loadable generation again, though its generation number stays burned
// so a later writer cannot silently reuse it.
const quarantineSuffix = ".corrupt"

// kindRE constrains artifact kind names to filename-safe tokens.
var kindRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// snapRE parses "<kind>-g<generation>.snap" file names.
var snapRE = regexp.MustCompile(`^([a-z0-9][a-z0-9-]*)-g(\d{10})\.snap$`)

// Options tunes a Store.
type Options struct {
	// Retain is the number of good generations kept per kind after a
	// successful write; older ones are pruned. <= 0 means DefaultRetain.
	Retain int
	// Log receives operational messages (quarantines, prunes); nil
	// discards them.
	Log func(format string, args ...any)
}

// Store is a directory of generation-numbered, checksummed artifact
// snapshots. All methods are safe for concurrent use by one process;
// cross-process coordination is by atomic rename only (last writer of a
// generation number wins, readers always see whole files).
type Store struct {
	dir    string
	retain int
	logf   func(format string, args ...any)
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	retain := opts.Retain
	if retain <= 0 {
		retain = DefaultRetain
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Store{dir: dir, retain: retain, logf: logf}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the snapshot file for one generation of a kind.
func (s *Store) Path(kind string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-g%010d.snap", kind, gen))
}

// Write persists sections as the next generation of kind and prunes
// generations beyond the retention bound. The returned generation is
// durable (file and directory fsynced) when Write returns nil.
func (s *Store) Write(kind string, sections []Section) (uint64, error) {
	if !kindRE.MatchString(kind) {
		return 0, fmt.Errorf("store: invalid artifact kind %q", kind)
	}
	data, err := EncodeEnvelope(sections)
	if err != nil {
		return 0, err
	}
	gens, err := s.scan(kind)
	if err != nil {
		return 0, err
	}
	gen := uint64(1)
	if n := len(gens); n > 0 {
		gen = gens[n-1].gen + 1
	}
	if err := AtomicWriteBytes(s.Path(kind, gen), data); err != nil {
		return 0, err
	}
	s.prune(kind, gens)
	return gen, nil
}

// LoadLatest returns the newest generation of kind that passes full
// verification. A generation that fails is quarantined (renamed aside
// with the .corrupt suffix) and the next-older one is tried, so one bad
// rotation never takes a consumer down. ErrNotFound when no generation
// survives.
func (s *Store) LoadLatest(kind string) (*Envelope, uint64, error) {
	return s.LoadLatestVerified(kind, nil)
}

// LoadLatestVerified is LoadLatest with an extra artifact-level check:
// verify (when non-nil) runs on each envelope that passed integrity
// verification, and a generation it rejects is quarantined exactly like
// a checksum failure — a snapshot whose payload does not decode is as
// unusable as a torn one.
func (s *Store) LoadLatestVerified(kind string, verify func(*Envelope) error) (*Envelope, uint64, error) {
	gens, err := s.scan(kind)
	if err != nil {
		return nil, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if g.quarantined {
			continue
		}
		env, err := ReadFile(g.path)
		if err == nil && verify != nil {
			err = verify(env)
		}
		if err == nil {
			return env, g.gen, nil
		}
		if quarantineErr := s.Quarantine(g.path); quarantineErr != nil {
			s.logf("store: %s failed verification (%v) and could not be quarantined: %v",
				g.path, err, quarantineErr)
		} else {
			s.logf("store: quarantined %s generation %d: %v", kind, g.gen, err)
		}
	}
	return nil, 0, fmt.Errorf("%w: kind %q in %s", ErrNotFound, kind, s.dir)
}

// Quarantine renames a failed snapshot aside so it is never loaded
// again but stays available for post-mortem inspection.
func (s *Store) Quarantine(path string) error {
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// Generations lists the verifiable-on-disk (non-quarantined) generation
// numbers of kind in ascending order. The files are not re-verified;
// use LoadLatest for a checked read.
func (s *Store) Generations(kind string) ([]uint64, error) {
	gens, err := s.scan(kind)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, len(gens))
	for _, g := range gens {
		if !g.quarantined {
			out = append(out, g.gen)
		}
	}
	return out, nil
}

type generation struct {
	gen         uint64
	path        string
	quarantined bool
}

// scan lists every generation of kind — live and quarantined — in
// ascending generation order. Quarantined files participate so their
// numbers are never reissued; temp files from in-progress or crashed
// writes never match the name pattern and are ignored.
func (s *Store) scan(kind string) ([]generation, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []generation
	for _, e := range entries {
		name := e.Name()
		quarantined := false
		if n, ok := strings.CutSuffix(name, quarantineSuffix); ok {
			name, quarantined = n, true
		}
		m := snapRE.FindStringSubmatch(name)
		if m == nil || m[1] != kind {
			continue
		}
		gen, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, generation{gen: gen, path: filepath.Join(s.dir, e.Name()), quarantined: quarantined})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].gen < gens[j].gen })
	return gens, nil
}

// prune removes live generations beyond the retention bound. gens is
// the pre-write ascending scan, so with the just-written generation the
// newest retain-1 of them survive. Quarantined files are kept: they are
// operator evidence, not rotation members.
func (s *Store) prune(kind string, gens []generation) {
	live := make([]generation, 0, len(gens))
	for _, g := range gens {
		if !g.quarantined {
			live = append(live, g)
		}
	}
	excess := len(live) - (s.retain - 1)
	for i := 0; i < excess; i++ {
		if err := os.Remove(live[i].path); err != nil {
			s.logf("store: pruning %s generation %d: %v", kind, live[i].gen, err)
		}
	}
}

// ReadFile parses and fully verifies one snapshot file.
func ReadFile(path string) (*Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	env, err := ParseEnvelope(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return env, nil
}

// WriteFile atomically writes one standalone snapshot file (no
// generation rotation) — the durability primitive for single-file
// artifacts like census checkpoints.
func WriteFile(path string, sections []Section) error {
	data, err := EncodeEnvelope(sections)
	if err != nil {
		return err
	}
	return AtomicWriteBytes(path, data)
}

// VerifyFile reports whether path holds an intact envelope.
func VerifyFile(path string) error {
	_, err := ReadFile(path)
	return err
}
