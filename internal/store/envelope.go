// Package store is the crash-safe artifact store behind every persisted
// asset in this repository: graphs, FeatureSets, and census checkpoints.
// The census is the expensive half of the paper's compute-once/serve-many
// pipeline, so the artifacts it produces must survive crashes, torn
// writes, and silent media corruption without taking a serving process
// down.
//
// Two layers provide that:
//
//   - A framed envelope (this file): magic, format version, a fixed
//     number of length-prefixed sections each guarded by CRC32C, and a
//     manifest footer carrying a whole-file SHA-256. Decoders verify
//     everything before returning a byte of payload, never panic on
//     hostile input, and report typed errors (ErrCorrupt,
//     ErrUnsupportedVersion) so callers can distinguish "bad file" from
//     "future format".
//
//   - A generation-numbered directory store (store.go): snapshots are
//     written atomically (temp file + fsync + rename + parent-directory
//     fsync), rotate under bounded retention, and a snapshot that fails
//     verification is quarantined — renamed aside — while the loader
//     falls back to the newest good generation instead of failing the
//     process.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Typed failure classes. Every decode error wraps exactly one of these,
// so callers can switch on errors.Is without parsing messages.
var (
	// ErrCorrupt marks an artifact that is structurally damaged: bad
	// magic, torn sections, checksum mismatch, trailing garbage, or an
	// unknown trailing section a decoder does not understand.
	ErrCorrupt = errors.New("store: corrupt artifact")
	// ErrUnsupportedVersion marks an artifact written by a newer (or
	// unknown) format revision. The bytes may be perfectly intact; this
	// reader just must not guess at them.
	ErrUnsupportedVersion = errors.New("store: unsupported artifact format version")
	// ErrNotFound reports that a store holds no good generation of the
	// requested artifact kind.
	ErrNotFound = errors.New("store: no good generation found")
)

// Envelope framing constants. The header and footer magics differ so a
// truncated file can never re-parse as a complete one.
const (
	// FormatVersion is the current envelope revision. Readers refuse
	// anything newer with ErrUnsupportedVersion.
	FormatVersion = 1

	headerMagic = "HSGFSNAP"
	footerMagic = "HSGFSEND"

	// maxSections and maxSectionName bound decoder allocations on
	// hostile input; real artifacts use 2-3 short-named sections.
	maxSections    = 64
	maxSectionName = 255

	headerLen = len(headerMagic) + 4 + 4 // magic + version + section count
	footerLen = sha256.Size + len(footerMagic)
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Section is one named payload inside an envelope. Names identify the
// payload codec to the artifact layer (e.g. "meta", "featureset"); the
// envelope itself treats payloads as opaque bytes.
type Section struct {
	Name    string
	Payload []byte
}

// Envelope is a parsed artifact container: the format version it was
// written under and its sections in file order.
type Envelope struct {
	Version  uint32
	Sections []Section
}

// Section returns the payload of the named section.
func (e *Envelope) Section(name string) ([]byte, bool) {
	for _, s := range e.Sections {
		if s.Name == name {
			return s.Payload, true
		}
	}
	return nil, false
}

// EncodeEnvelope frames sections into the canonical on-disk form:
//
//	"HSGFSNAP" | version u32 | count u32
//	per section: nameLen u32 | name | payloadLen u64 | payload | CRC32C u32
//	manifest footer: SHA-256 of everything above | "HSGFSEND"
//
// All integers are little-endian. The encoding is canonical — parsing
// and re-encoding an accepted envelope reproduces the input bytes —
// which the fuzz harness relies on.
func EncodeEnvelope(sections []Section) ([]byte, error) {
	if len(sections) == 0 {
		return nil, fmt.Errorf("store: envelope needs at least one section")
	}
	if len(sections) > maxSections {
		return nil, fmt.Errorf("store: %d sections exceeds the limit of %d", len(sections), maxSections)
	}
	var buf bytes.Buffer
	buf.WriteString(headerMagic)
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], FormatVersion)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(sections)))
	buf.Write(u32[:])
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > maxSectionName {
			return nil, fmt.Errorf("store: section name %q must be 1-%d bytes", s.Name, maxSectionName)
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(len(s.Name)))
		buf.Write(u32[:])
		buf.WriteString(s.Name)
		binary.LittleEndian.PutUint64(u64[:], uint64(len(s.Payload)))
		buf.Write(u64[:])
		buf.Write(s.Payload)
		binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(s.Payload, crcTable))
		buf.Write(u32[:])
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	buf.WriteString(footerMagic)
	return buf.Bytes(), nil
}

// IsEnvelope reports whether data begins with the envelope magic —
// the cheap test readers use to tell an envelope from a legacy
// (pre-store) artifact file before committing to either decoder.
func IsEnvelope(data []byte) bool {
	return len(data) >= len(headerMagic) && string(data[:len(headerMagic)]) == headerMagic
}

// corruptf wraps ErrCorrupt with positional detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ParseEnvelope verifies and decodes an envelope. Verification is
// complete before it returns: header magic and version, every section
// frame and CRC, the manifest SHA-256, and the absence of trailing
// bytes. Section payloads alias data; callers that mutate must copy.
func ParseEnvelope(data []byte) (*Envelope, error) {
	if len(data) < headerLen+footerLen {
		return nil, corruptf("%d bytes is shorter than an empty envelope", len(data))
	}
	if string(data[:len(headerMagic)]) != headerMagic {
		return nil, corruptf("bad header magic")
	}
	// Verify the manifest first: a whole-file digest catches most damage
	// (truncation, bit flips, splices) in one pass before any framing
	// logic runs.
	foot := data[len(data)-footerLen:]
	if string(foot[sha256.Size:]) != footerMagic {
		return nil, corruptf("bad footer magic (truncated file?)")
	}
	sum := sha256.Sum256(data[:len(data)-footerLen])
	if !bytes.Equal(sum[:], foot[:sha256.Size]) {
		return nil, corruptf("manifest SHA-256 mismatch")
	}

	off := len(headerMagic)
	version := binary.LittleEndian.Uint32(data[off:])
	if version == 0 || version > FormatVersion {
		return nil, fmt.Errorf("%w: file version %d, reader supports <= %d",
			ErrUnsupportedVersion, version, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(data[off+4:])
	if count == 0 || count > maxSections {
		return nil, corruptf("section count %d outside 1..%d", count, maxSections)
	}
	body := data[headerLen : len(data)-footerLen]

	env := &Envelope{Version: version, Sections: make([]Section, 0, count)}
	pos := 0
	for i := uint32(0); i < count; i++ {
		if len(body)-pos < 4 {
			return nil, corruptf("section %d: truncated name length", i)
		}
		nameLen := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if nameLen == 0 || nameLen > maxSectionName || len(body)-pos < nameLen {
			return nil, corruptf("section %d: name length %d out of range", i, nameLen)
		}
		name := string(body[pos : pos+nameLen])
		pos += nameLen
		if len(body)-pos < 8 {
			return nil, corruptf("section %q: truncated payload length", name)
		}
		payLen64 := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		if payLen64 > uint64(len(body)-pos) {
			return nil, corruptf("section %q: payload length %d exceeds remaining %d bytes",
				name, payLen64, len(body)-pos)
		}
		payLen := int(payLen64)
		payload := body[pos : pos+payLen]
		pos += payLen
		if len(body)-pos < 4 {
			return nil, corruptf("section %q: truncated checksum", name)
		}
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(body[pos:]); got != want {
			return nil, corruptf("section %q: CRC32C mismatch (%08x != %08x)", name, got, want)
		}
		pos += 4
		env.Sections = append(env.Sections, Section{Name: name, Payload: payload})
	}
	if pos != len(body) {
		return nil, corruptf("%d trailing bytes after the last declared section", len(body)-pos)
	}
	return env, nil
}
