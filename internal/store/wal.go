package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log for the streaming-ingest subsystem.
//
// Layout:
//
//	header:  "HSGFWAL0" (8 bytes) | version u32 LE        = 12 bytes
//	frame:   "WREC" (4) | seq u64 | payloadLen u32 | payload | crc u32
//
// The CRC is CRC32-C over seq|payloadLen|payload (the same Castagnoli
// table the snapshot envelope uses). Frames carry strictly increasing
// sequence numbers; the payload is opaque to the log (the ingest engine
// stores encoded mutation batches).
//
// Durability contract: Append returns only after the frame has been
// written and fsynced, so a record the caller has acked is on stable
// storage. Recovery (OpenWAL) scans the file front to back, stops at
// the first frame that is truncated or fails its checksum — the torn
// tail a crash mid-append leaves behind — and truncates the file there,
// because nothing after a torn frame was ever acked. A corrupt frame
// *before* a valid one is different: it means acked data was damaged,
// and since everything after it is unusable anyway the log still
// truncates at the damage point; the engine detects the resulting
// sequence gap against its acked watermark if one matters.

const (
	walMagic       = "HSGFWAL0"
	walVersion     = 1
	walHeaderSize  = len(walMagic) + 4
	walFrameMagic  = "WREC"
	walFrameHeader = 4 + 8 + 4 // magic, seq, payloadLen
	// MaxWALRecord bounds a single record's payload; anything larger in
	// a frame header is treated as corruption rather than allocated.
	MaxWALRecord = 64 << 20
)

// WALRecord is one recovered log record.
type WALRecord struct {
	Seq     uint64
	Payload []byte
}

// EncodeWALFrame serialises one frame. Exported for tests and fuzzing;
// production code appends through WAL.Append.
func EncodeWALFrame(seq uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxWALRecord {
		return nil, fmt.Errorf("store: WAL payload of %d bytes exceeds the %d limit", len(payload), MaxWALRecord)
	}
	buf := make([]byte, 0, walFrameHeader+len(payload)+4)
	buf = append(buf, walFrameMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[4:], crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, nil
}

// DecodeWALFrame parses one frame from the front of data, returning the
// record and the number of bytes consumed. It never panics on arbitrary
// input. Failures wrap ErrCorrupt; a frame that is merely incomplete
// (valid prefix, not enough bytes) also reports ErrCorrupt — callers
// that need to distinguish a torn tail do so by position, not by error
// type, since a half-written frame and a damaged one are
// indistinguishable on disk.
func DecodeWALFrame(data []byte) (WALRecord, int, error) {
	if len(data) < walFrameHeader {
		return WALRecord{}, 0, corruptf("WAL frame: %d bytes is shorter than a frame header", len(data))
	}
	if string(data[:4]) != walFrameMagic {
		return WALRecord{}, 0, corruptf("WAL frame: bad magic")
	}
	seq := binary.LittleEndian.Uint64(data[4:])
	payloadLen := binary.LittleEndian.Uint32(data[12:])
	if payloadLen > MaxWALRecord {
		return WALRecord{}, 0, corruptf("WAL frame: payload length %d exceeds the %d limit", payloadLen, MaxWALRecord)
	}
	total := walFrameHeader + int(payloadLen) + 4
	if len(data) < total {
		return WALRecord{}, 0, corruptf("WAL frame: truncated (need %d bytes, have %d)", total, len(data))
	}
	want := binary.LittleEndian.Uint32(data[total-4:])
	got := crc32.Checksum(data[4:total-4], crcTable)
	if got != want {
		return WALRecord{}, 0, corruptf("WAL frame seq %d: CRC mismatch", seq)
	}
	payload := make([]byte, payloadLen)
	copy(payload, data[walFrameHeader:total-4])
	return WALRecord{Seq: seq, Payload: payload}, total, nil
}

// WAL is an append-only, fsync-per-append mutation log. Not safe for
// concurrent use; the ingest engine serialises writers.
type WAL struct {
	f        *os.File
	path     string
	size     int64
	lastSeq  uint64
	poisoned bool
}

// OpenWAL opens (or creates) the log at path and replays it. It returns
// the intact records in order and a WAL positioned for appending.
//
// A torn tail — a final frame that is incomplete or fails its CRC — is
// truncated away and the truncation fsynced, so the next crash cannot
// resurrect it. A valid frame whose sequence number does not increase
// is a hard error (that is never a torn write; it means the file was
// tampered with or two logs were interleaved). A bad header is a hard
// error too: the log is never silently wiped.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}

	w := &WAL{f: f, path: path}
	if len(data) == 0 {
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	if len(data) < walHeaderSize || string(data[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, nil, corruptf("WAL %s: bad header", path)
	}
	if v := binary.LittleEndian.Uint32(data[len(walMagic):]); v != walVersion {
		f.Close()
		return nil, nil, fmt.Errorf("%w: WAL %s: version %d, reader supports %d", ErrUnsupportedVersion, path, v, walVersion)
	}

	var records []WALRecord
	pos := walHeaderSize
	for pos < len(data) {
		rec, n, err := DecodeWALFrame(data[pos:])
		if err != nil {
			// Torn or damaged tail: drop it. Everything before pos was
			// CRC-verified and stays.
			break
		}
		if rec.Seq <= w.lastSeq {
			f.Close()
			return nil, nil, corruptf("WAL %s: sequence regressed from %d to %d", path, w.lastSeq, rec.Seq)
		}
		w.lastSeq = rec.Seq
		records = append(records, rec)
		pos += n
	}
	if pos < len(data) {
		if err := f.Truncate(int64(pos)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := syncFile(f); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(pos), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = int64(pos)
	return w, records, nil
}

func (w *WAL) writeHeader() error {
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, walVersion)
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	if err := syncFile(w.f); err != nil {
		return err
	}
	w.size = int64(walHeaderSize)
	return nil
}

// LastSeq returns the highest sequence number the log has accepted
// (from replay or Append); 0 if none.
func (w *WAL) LastSeq() uint64 { return w.lastSeq }

// Size returns the current file size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// walWrite is a test seam for injecting partial-write failures; it must
// behave exactly like (*os.File).Write in production.
var walWrite = func(f *os.File, b []byte) (int, error) { return f.Write(b) }

// Append writes one record and fsyncs. seq must exceed LastSeq. When
// Append returns nil the record is durable and may be acked.
//
// When Append fails the log is rolled back to its pre-append size. This
// matters: a partial write (say ENOSPC after n>0 bytes) that stayed in
// the file would sit BEFORE any later successful append, and recovery
// stops at the first undecodable frame — so the later, acked frame
// would be silently truncated away, defeating the durability contract.
// If the rollback itself fails the log is poisoned: every further
// Append errors until a restart, where OpenWAL truncates the torn tail
// while it is still the tail.
func (w *WAL) Append(seq uint64, payload []byte) error {
	if w.poisoned {
		return fmt.Errorf("store: WAL %s is poisoned by an earlier failed append; restart to recover", w.path)
	}
	if seq <= w.lastSeq {
		return fmt.Errorf("store: WAL append seq %d not after last seq %d", seq, w.lastSeq)
	}
	frame, err := EncodeWALFrame(seq, payload)
	if err != nil {
		return err
	}
	if _, err := walWrite(w.f, frame); err != nil {
		return w.rollback(err)
	}
	if err := syncFile(w.f); err != nil {
		return w.rollback(err)
	}
	w.size += int64(len(frame))
	w.lastSeq = seq
	return nil
}

// rollback truncates a failed append's partial frame away, restoring
// the pre-append file state, and returns cause. If the truncate (or the
// re-seek/sync after it) fails, the torn bytes may still be on disk, so
// the log flips to poisoned rather than risk stranding a later acked
// frame behind them.
func (w *WAL) rollback(cause error) error {
	err := w.f.Truncate(w.size)
	if err == nil {
		if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			err = serr
		} else {
			err = syncFile(w.f)
		}
	}
	if err != nil {
		w.poisoned = true
		return fmt.Errorf("store: WAL append failed (%v); rollback failed too (%v) — log poisoned until restart", cause, err)
	}
	return cause
}

// Reset truncates the log back to its header after a compaction has
// folded its records into a durable snapshot. The sequence counter is
// NOT reset — sequence numbers are global across compactions, so a
// record appended after Reset still carries a higher seq than anything
// in the snapshot.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(int64(walHeaderSize)); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(walHeaderSize), io.SeekStart); err != nil {
		return err
	}
	if err := syncFile(w.f); err != nil {
		return err
	}
	w.size = int64(walHeaderSize)
	return nil
}

// Close closes the underlying file. The log is already durable; Close
// performs no additional flushing.
func (w *WAL) Close() error { return w.f.Close() }
