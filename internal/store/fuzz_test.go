package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzStoreEnvelope drives the envelope parser with arbitrary bytes:
// it must never panic, every rejection must carry a typed error, and
// every accept must round-trip canonically (re-encoding the parsed
// sections reproduces the input byte for byte).
func FuzzStoreEnvelope(f *testing.F) {
	seed := func(sections []Section) {
		data, err := EncodeEnvelope(sections)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Mutated variants of valid envelopes reach the deep checks.
		trunc := data[:len(data)*2/3]
		f.Add(trunc)
		flip := append([]byte{}, data...)
		flip[len(flip)/3] ^= 0x20
		f.Add(flip)
	}
	seed([]Section{{Name: "meta", Payload: []byte(`{"artifact":"t"}`)}})
	seed([]Section{
		{Name: "meta", Payload: []byte(`{"artifact":"featureset","schema":1}`)},
		{Name: "featureset", Payload: []byte(`{"max_edges":2,"label_slots":0}`)},
	})
	seed([]Section{{Name: "a", Payload: nil}, {Name: "b", Payload: []byte{0, 255}}})
	f.Add([]byte{})
	f.Add([]byte(headerMagic))
	f.Add([]byte("HSGFSNAPgarbage that is long enough to pass the minimum size check....."))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ParseEnvelope(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		re, err := EncodeEnvelope(env.Sections)
		if err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted envelope is not canonical: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}
