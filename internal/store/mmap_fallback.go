//go:build !unix

package store

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the whole file onto
// the heap. Loads still work; they just are not zero-copy, which
// callers can observe through the mapped flag.
func mmapFile(f *os.File, size int) (data []byte, release func() error, mapped bool, err error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return nil }, false, nil
}
