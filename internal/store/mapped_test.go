package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenMappedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sections := []Section{
		{Name: "meta", Payload: []byte(`{"artifact":"graphbin","schema":1}`)},
		{Name: "graphbin", Payload: bytes.Repeat([]byte{0xAB, 0xCD}, 4096)},
	}
	path := filepath.Join(dir, "one.snap")
	if err := WriteFile(path, sections); err != nil {
		t.Fatal(err)
	}
	m, env, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(env.Sections) != 2 {
		t.Fatalf("got %d sections", len(env.Sections))
	}
	for i, want := range sections {
		got := env.Sections[i]
		if got.Name != want.Name || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("section %d mismatch", i)
		}
		// The parsed payload must alias the mapping at exactly the
		// offset PayloadOffset promises — the contract the binary graph
		// encoder's alignment arithmetic is built on.
		off := PayloadOffset(sections, i)
		if len(got.Payload) > 0 && &got.Payload[0] != &m.Data()[off] {
			t.Fatalf("section %d payload does not alias the mapping at offset %d", i, off)
		}
	}
	if m.Close() != nil || m.Close() != nil {
		t.Fatal("Close is not idempotent")
	}
}

func TestOpenMappedRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.snap")
	if err := WriteFile(path, []Section{{Name: "meta", Payload: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenMapped(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted file gave %v, want ErrCorrupt", err)
	}
}

// TestLoadLatestMappedQuarantines damages the newest generation and
// checks the mapped loader behaves exactly like LoadLatestVerified:
// quarantine and fall back to the older good generation.
func TestLoadLatestMappedQuarantines(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write("graphbin", []Section{{Name: "meta", Payload: []byte("good")}}); err != nil {
		t.Fatal(err)
	}
	gen2, err := st.Write("graphbin", []Section{{Name: "meta", Payload: []byte("newer")}})
	if err != nil {
		t.Fatal(err)
	}
	path := st.Path("graphbin", gen2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m, env, gen, err := st.LoadLatestMapped("graphbin", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if gen == gen2 {
		t.Fatal("corrupted newest generation served")
	}
	if p, _ := env.Section("meta"); string(p) != "good" {
		t.Fatalf("fallback served %q", p)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("damaged generation not quarantined: %v", err)
	}
}

// TestLoadLatestMappedVerifyHook rejects a generation at the artifact
// layer and checks its mapping is released and the older one served.
func TestLoadLatestMappedVerifyHook(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range []string{"ok", "poison"} {
		if _, err := st.Write("graphbin", []Section{{Name: "meta", Payload: []byte(payload)}}); err != nil {
			t.Fatal(err)
		}
	}
	m, env, _, err := st.LoadLatestMapped("graphbin", func(e *Envelope) error {
		if p, _ := e.Section("meta"); string(p) == "poison" {
			return errors.New("artifact rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if p, _ := env.Section("meta"); string(p) != "ok" {
		t.Fatalf("served %q, want the older good generation", p)
	}
}

func TestLoadLatestMappedNotFound(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.LoadLatestMapped("absent", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

// TestPayloadOffsetTracksEncoder cross-checks the offset arithmetic
// against the real encoder for a spread of section shapes.
func TestPayloadOffsetTracksEncoder(t *testing.T) {
	cases := [][]Section{
		{{Name: "a", Payload: nil}},
		{{Name: "meta", Payload: []byte("x")}, {Name: "graphbin", Payload: make([]byte, 1000)}},
		{{Name: "m", Payload: make([]byte, 7)}, {Name: "n", Payload: make([]byte, 13)}, {Name: "o", Payload: make([]byte, 1)}},
	}
	for ci, sections := range cases {
		data, err := EncodeEnvelope(sections)
		if err != nil {
			t.Fatal(err)
		}
		env, err := ParseEnvelope(data)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range env.Sections {
			off := PayloadOffset(sections, i)
			if !bytes.Equal(data[off:off+len(s.Payload)], s.Payload) {
				t.Fatalf("case %d section %d: PayloadOffset %d does not locate the payload", ci, i, off)
			}
		}
	}
}
