package store

import (
	"sync"
)

// SeqLog is the router's fleet sequencer: a WAL that assigns the
// monotone fleet sequence number every mutation batch is ordered by,
// and retains all of its records in memory so the router can replay any
// suffix to a shard that reports a gap. It reuses the ingest WAL's
// CRC-framed, fsync-per-append discipline — Append returning nil means
// the record (and with it the sequence assignment) survives a router
// crash, which is what makes the assignment safe to act on: a batch is
// fanned out only after its sequence is durable, so recovery can always
// re-derive exactly which sub-batches were in flight.
//
// Unlike the ingest WAL, the sequencer log is never compacted by the
// log itself: its full history doubles as the replay source for gap
// repair and for rebuilding the router's shard-resolution state on
// boot. Folding the history into a snapshot is the operator's lever
// (documented in DESIGN.md); the log stays correct regardless of size.
//
// SeqLog is safe for concurrent use.
type SeqLog struct {
	mu   sync.Mutex
	wal  *WAL
	recs []WALRecord // all records, ascending contiguous Seq starting at recs[0].Seq
}

// OpenSeqLog opens (or creates) the sequencer log at path, replaying
// and retaining every record. The WAL layer already truncates a torn
// tail (never acked, safe to drop); a sequence gap in what remains
// means acked assignments were lost and is a hard error.
func OpenSeqLog(path string) (*SeqLog, error) {
	wal, recs, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	for i, rec := range recs {
		if want := uint64(i + 1); rec.Seq != want {
			wal.Close()
			return nil, corruptf("sequencer log %s: record %d carries seq %d, want %d — acked sequence assignments are missing", path, i, rec.Seq, want)
		}
	}
	return &SeqLog{wal: wal, recs: recs}, nil
}

// Append assigns the next fleet sequence number to payload and makes
// the assignment durable before returning it.
func (l *SeqLog) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.wal.LastSeq() + 1
	if err := l.wal.Append(seq, payload); err != nil {
		return 0, err
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	l.recs = append(l.recs, WALRecord{Seq: seq, Payload: p})
	return seq, nil
}

// LastSeq returns the highest assigned sequence; 0 if none.
func (l *SeqLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.LastSeq()
}

// Records returns all retained records in sequence order. The returned
// slice is shared; callers must not mutate it.
func (l *SeqLog) Records() []WALRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs[:len(l.recs):len(l.recs)]
}

// Since returns the records with sequence in (after, upTo]; upTo == 0
// means no upper bound. This is the gap-repair read: a shard reporting
// watermark W gets every record it missed replayed in order.
func (l *SeqLog) Since(after, upTo uint64) []WALRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]WALRecord, 0, 8)
	for _, rec := range l.recs {
		if rec.Seq <= after {
			continue
		}
		if upTo != 0 && rec.Seq > upTo {
			break
		}
		out = append(out, rec)
	}
	return out
}

// Size returns the log file's size in bytes.
func (l *SeqLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Size()
}

// Close closes the underlying WAL.
func (l *SeqLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Close()
}
