package ml

import (
	"math"
	"sort"
)

// NDCG computes the normalised discounted cumulative gain at the top n of
// a predicted ranking against ground-truth relevance scores, following
// the paper's formulation (Eq. 6): items are ranked by predicted score,
// the DCG of their true relevances is divided by the ideal DCG of the
// true ranking. Scores lie in [0, 1]; 1 is a perfect ranking.
//
// predicted and relevance are aligned by item index.
func NDCG(predicted, relevance []float64, n int) float64 {
	if len(predicted) != len(relevance) || len(predicted) == 0 {
		return 0
	}
	if n <= 0 || n > len(predicted) {
		n = len(predicted)
	}
	// Rank items by predicted score, descending (stable for ties).
	byPred := argsortDesc(predicted)
	byTrue := argsortDesc(relevance)

	var dcg, idcg float64
	for i := 0; i < n; i++ {
		dcg += relevance[byPred[i]] / math.Log2(float64(i)+2)
		idcg += relevance[byTrue[i]] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func argsortDesc(xs []float64) []int {
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return xs[order[a]] > xs[order[b]] })
	return order
}

// MacroF1 computes the macro-averaged F1 score over classes: the
// unweighted mean of per-class F1 scores, the metric of the paper's label
// prediction evaluation (Eq. 7). Classes absent from both truth and
// prediction are ignored.
func MacroF1(truth, predicted []int) float64 {
	if len(truth) != len(predicted) || len(truth) == 0 {
		return 0
	}
	classes := 0
	for i := range truth {
		if truth[i]+1 > classes {
			classes = truth[i] + 1
		}
		if predicted[i]+1 > classes {
			classes = predicted[i] + 1
		}
	}
	tp := make([]float64, classes)
	fp := make([]float64, classes)
	fn := make([]float64, classes)
	for i := range truth {
		if truth[i] == predicted[i] {
			tp[truth[i]]++
		} else {
			fp[predicted[i]]++
			fn[truth[i]]++
		}
	}
	var sum float64
	active := 0
	for c := 0; c < classes; c++ {
		if tp[c]+fp[c]+fn[c] == 0 {
			continue
		}
		active++
		denom := 2*tp[c] + fp[c] + fn[c]
		if denom > 0 {
			sum += 2 * tp[c] / denom
		}
	}
	if active == 0 {
		return 0
	}
	return sum / float64(active)
}

// Accuracy is the fraction of exact matches.
func Accuracy(truth, predicted []int) float64 {
	if len(truth) != len(predicted) || len(truth) == 0 {
		return 0
	}
	hits := 0
	for i := range truth {
		if truth[i] == predicted[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// MSE is the mean squared error.
func MSE(truth, predicted []float64) float64 {
	if len(truth) != len(predicted) || len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		d := truth[i] - predicted[i]
		s += d * d
	}
	return s / float64(len(truth))
}

// R2 is the coefficient of determination.
func R2(truth, predicted []float64) float64 {
	if len(truth) != len(predicted) || len(truth) == 0 {
		return 0
	}
	tv := variance(truth) * float64(len(truth))
	if tv == 0 {
		return 0
	}
	return 1 - MSE(truth, predicted)*float64(len(truth))/tv
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (float64, float64) {
	return mean(xs), math.Sqrt(variance(xs))
}

// ConfidenceInterval95 returns the half-width of the normal-approximation
// 95% confidence interval for the mean of xs.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	_, sd := MeanStd(xs)
	return 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// Percentile returns the q-th percentile (0..1) of xs using the
// nearest-rank method on a sorted copy.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
