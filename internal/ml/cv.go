package ml

import (
	"fmt"
	"math/rand"
)

// KFold splits indices 0..n-1 into k shuffled folds and returns, for
// each fold, the (train, test) index pair where the fold is the test
// side. Folds differ in size by at most one element.
func KFold(n, k int, rng *rand.Rand) ([][2][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("ml: k-fold needs 2 <= k <= n, got k=%d n=%d", k, n)
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	out := make([][2][]int, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]int{train, folds[f]}
	}
	return out, nil
}

// TuneLogRegC selects the inverse regularisation strength for one-vs-rest
// logistic regression from a grid by k-fold cross-validated Macro F1 on
// the training data — the paper's "we tune the regularization strength"
// step (§4.3.3). Ties resolve to the smaller C (stronger
// regularisation). x should already be standardised.
func TuneLogRegC(x [][]float64, y []int, grid []float64, folds int, rng *rand.Rand) (float64, error) {
	if len(grid) == 0 {
		return 0, fmt.Errorf("ml: empty C grid")
	}
	if len(grid) == 1 {
		return grid[0], nil
	}
	splits, err := KFold(len(x), folds, rng)
	if err != nil {
		return 0, err
	}
	bestC, bestScore := grid[0], -1.0
	for _, c := range grid {
		var total float64
		for _, split := range splits {
			clf := OneVsRest{C: c, MaxIter: 100}
			if err := clf.Fit(Rows(x, split[0]), Ints(y, split[0])); err != nil {
				return 0, err
			}
			total += MacroF1(Ints(y, split[1]), clf.Predict(Rows(x, split[1])))
		}
		score := total / float64(len(splits))
		if score > bestScore+1e-12 {
			bestScore = score
			bestC = c
		}
	}
	return bestC, nil
}
