package ml

import (
	"math"
	"math/rand"
	"testing"
)

func blobs2(rng *rand.Rand, n int, sep float64) ([][]float64, []int) {
	var x [][]float64
	var y []int
	for c := 0; c < 2; c++ {
		for i := 0; i < n; i++ {
			x = append(x, []float64{float64(c)*sep + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	return x, y
}

func TestLogisticRegressionSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs2(rng, 100, 6)
	var m LogisticRegression
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(y, m.Predict(x)); acc < 0.98 {
		t.Errorf("accuracy = %v", acc)
	}
	probs := m.PredictProba(x)
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of range", p)
		}
	}
	// The separating direction is the first axis.
	if math.Abs(m.Coef[0]) < math.Abs(m.Coef[1]) {
		t.Errorf("coef = %v: first feature should dominate", m.Coef)
	}
}

func TestLogisticRegressionRejectsBadLabels(t *testing.T) {
	var m LogisticRegression
	if err := m.Fit([][]float64{{1}, {2}}, []int{0, 2}); err == nil {
		t.Error("labels outside {0,1} must be rejected")
	}
}

func TestLogisticRegressionRegularization(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := blobs2(rng, 50, 8)
	weak := LogisticRegression{C: 100}
	strong := LogisticRegression{C: 0.001}
	if err := weak.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := strong.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var nw, ns float64
	for j := range weak.Coef {
		nw += weak.Coef[j] * weak.Coef[j]
		ns += strong.Coef[j] * strong.Coef[j]
	}
	if ns >= nw {
		t.Errorf("stronger regularisation should shrink weights: %v vs %v", ns, nw)
	}
}

func TestOneVsRestThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {6, 0}, {0, 6}}
	for c, ctr := range centers {
		for i := 0; i < 50; i++ {
			x = append(x, []float64{ctr[0] + rng.NormFloat64(), ctr[1] + rng.NormFloat64()})
			y = append(y, c)
		}
	}
	var m OneVsRest
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d, want 3", m.NumClasses())
	}
	if acc := Accuracy(y, m.Predict(x)); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
	probs := m.PredictProba(x)
	if len(probs[0]) != 3 {
		t.Fatalf("probs width = %d", len(probs[0]))
	}
	if f1 := MacroF1(y, m.Predict(x)); f1 < 0.95 {
		t.Errorf("macro F1 = %v", f1)
	}
}

func TestOneVsRestRejectsNegativeClass(t *testing.T) {
	var m OneVsRest
	if err := m.Fit([][]float64{{1}, {2}}, []int{0, -1}); err == nil {
		t.Error("negative class must be rejected")
	}
}
