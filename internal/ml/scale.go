package ml

import "math"

// StandardScaler standardises features to zero mean and unit variance.
// Constant columns are left centered with scale 1.
type StandardScaler struct {
	Mean  []float64
	Scale []float64
}

// Fit learns per-column means and standard deviations.
func (s *StandardScaler) Fit(x [][]float64) error {
	if err := checkXY(x, -1); err != nil {
		return err
	}
	n := float64(len(x))
	p := len(x[0])
	s.Mean = make([]float64, p)
	s.Scale = make([]float64, p)
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Scale[j] += d * d
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] == 0 {
			s.Scale[j] = 1
		}
	}
	return nil
}

// Transform returns standardised copies of the rows.
func (s *StandardScaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Scale[j]
		}
		out[i] = r
	}
	return out
}

// FitTransform fits the scaler and transforms x in one step.
func (s *StandardScaler) FitTransform(x [][]float64) ([][]float64, error) {
	if err := s.Fit(x); err != nil {
		return nil, err
	}
	return s.Transform(x), nil
}

// Log1p returns a copy of x with log(1+v) applied elementwise — the usual
// variance-stabilising transform for heavy-tailed subgraph counts.
func Log1p(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = math.Log1p(v)
		}
		out[i] = r
	}
	return out
}
