package ml

import "math"

// LinearRegression is ordinary least squares with an intercept, solved via
// the normal equations on centered data. A vanishing ridge jitter is added
// when the Gram matrix is numerically singular (which happens routinely
// for count features with duplicate columns), mirroring the pseudo-inverse
// behaviour of reference implementations closely enough for feature
// comparison studies.
type LinearRegression struct {
	Coef      []float64
	Intercept float64
	fitted    bool
}

// Fit estimates coefficients from X and y.
func (m *LinearRegression) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	p := len(x[0])
	// Center.
	xm := make([]float64, p)
	for _, row := range x {
		for j, v := range row {
			xm[j] += v
		}
	}
	for j := range xm {
		xm[j] /= float64(len(x))
	}
	ym := mean(y)
	xc := make([][]float64, len(x))
	yc := make([]float64, len(y))
	for i, row := range x {
		r := make([]float64, p)
		for j, v := range row {
			r[j] = v - xm[j]
		}
		xc[i] = r
		yc[i] = y[i] - ym
	}

	var coef []float64
	var err error
	for _, ridge := range []float64{0, 1e-8, 1e-4, 1e-1} {
		a, b := gram(xc, yc, ridge*float64(len(x)))
		coef, err = solveSPD(a, b)
		if err == nil {
			break
		}
	}
	if err != nil {
		return err
	}
	m.Coef = coef
	m.Intercept = ym - dot(coef, xm)
	m.fitted = true
	return nil
}

// Predict returns predictions for the rows of X.
func (m *LinearRegression) Predict(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Intercept + dot(m.Coef, row)
	}
	return out
}

// Ridge is L2-regularised least squares with an intercept (the intercept
// is not penalised; data is centered before solving).
type Ridge struct {
	Alpha     float64 // regularisation strength; 1.0 if zero
	Coef      []float64
	Intercept float64
}

// Fit estimates ridge coefficients.
func (m *Ridge) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	alpha := m.Alpha
	if alpha == 0 {
		alpha = 1.0
	}
	p := len(x[0])
	xm := make([]float64, p)
	for _, row := range x {
		for j, v := range row {
			xm[j] += v
		}
	}
	for j := range xm {
		xm[j] /= float64(len(x))
	}
	ym := mean(y)
	xc := make([][]float64, len(x))
	yc := make([]float64, len(y))
	for i, row := range x {
		r := make([]float64, p)
		for j, v := range row {
			r[j] = v - xm[j]
		}
		xc[i] = r
		yc[i] = y[i] - ym
	}
	a, b := gram(xc, yc, alpha)
	coef, err := solveSPD(a, b)
	if err != nil {
		return err
	}
	m.Coef = coef
	m.Intercept = ym - dot(coef, xm)
	return nil
}

// Predict returns predictions for the rows of X.
func (m *Ridge) Predict(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Intercept + dot(m.Coef, row)
	}
	return out
}

// BayesianRidge is Bayesian linear regression with conjugate Gamma
// hyper-priors over the noise precision (alpha) and weight precision
// (lambda), fitted by evidence maximisation — the fixed-point iteration of
// MacKay as implemented in common ML toolkits. The effective ridge
// strength lambda/alpha is thus learned from data rather than supplied.
type BayesianRidge struct {
	MaxIter int     // default 300
	Tol     float64 // convergence tolerance on weights, default 1e-3

	Coef      []float64
	Intercept float64
	Alpha     float64 // learned noise precision
	Lambda    float64 // learned weight precision
}

// Fit runs evidence maximisation.
func (m *BayesianRidge) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 300
	}
	tol := m.Tol
	if tol == 0 {
		tol = 1e-3
	}
	n := len(x)
	p := len(x[0])

	xm := make([]float64, p)
	for _, row := range x {
		for j, v := range row {
			xm[j] += v
		}
	}
	for j := range xm {
		xm[j] /= float64(n)
	}
	ym := mean(y)
	xc := make([][]float64, n)
	yc := make([]float64, n)
	for i, row := range x {
		r := make([]float64, p)
		for j, v := range row {
			r[j] = v - xm[j]
		}
		xc[i] = r
		yc[i] = y[i] - ym
	}

	// Initial hyperparameters (as in standard implementations).
	vy := variance(yc)
	if vy == 0 {
		vy = 1
	}
	alpha := 1.0 / vy
	lambda := 1.0

	coef := make([]float64, p)
	prev := make([]float64, p)
	for iter := 0; iter < maxIter; iter++ {
		// Posterior mean: (XᵀX + (lambda/alpha) I)⁻¹ Xᵀ y.
		a, b := gram(xc, yc, lambda/alpha)
		w, err := solveSPD(a, b)
		if err != nil {
			return err
		}
		copy(coef, w)

		// Effective number of well-determined parameters via the
		// eigen-free approximation gamma = Σ s_i/(s_i + lambda/alpha)
		// computed from the trace identity using the solved system:
		// gamma = p - (lambda/alpha) * trace((XᵀX + (λ/α)I)⁻¹).
		// Approximating the trace by solving against unit vectors is
		// O(p³); instead reuse the Cholesky factor through solveSPD on
		// identity columns for modest p.
		gamma := effectiveParams(xc, lambda/alpha, p)

		// Residual sum of squares.
		var rss float64
		for i, row := range xc {
			r := yc[i] - dot(w, row)
			rss += r * r
		}
		var wss float64
		for _, c := range w {
			wss += c * c
		}
		if wss == 0 {
			wss = 1e-12
		}
		if rss == 0 {
			rss = 1e-12
		}
		lambda = (gamma + 1e-6) / (wss + 1e-6)
		alpha = (float64(n) - gamma + 1e-6) / (rss + 1e-6)

		var delta float64
		for j := range w {
			delta += math.Abs(w[j] - prev[j])
		}
		copy(prev, w)
		if iter > 0 && delta < tol {
			break
		}
	}
	m.Coef = coef
	m.Intercept = ym - dot(coef, xm)
	m.Alpha = alpha
	m.Lambda = lambda
	return nil
}

// effectiveParams computes gamma = p - k·trace((XᵀX + kI)⁻¹) where
// k = lambda/alpha, by solving against identity columns.
func effectiveParams(xc [][]float64, k float64, p int) float64 {
	a, _ := gram(xc, make([]float64, len(xc)), k)
	// Cholesky in place once, then solve p unit vectors.
	n := p
	for j := 0; j < n; j++ {
		d := a[j][j]
		for t := 0; t < j; t++ {
			d -= a[j][t] * a[j][t]
		}
		if d <= 0 {
			return float64(p) // degenerate; fall back to full rank
		}
		a[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for t := 0; t < j; t++ {
				s -= a[i][t] * a[j][t]
			}
			a[i][j] = s / a[j][j]
		}
	}
	var trace float64
	y := make([]float64, n)
	x := make([]float64, n)
	for col := 0; col < n; col++ {
		for i := 0; i < n; i++ {
			var e float64
			if i == col {
				e = 1
			}
			s := e
			for t := 0; t < i; t++ {
				s -= a[i][t] * y[t]
			}
			y[i] = s / a[i][i]
		}
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for t := i + 1; t < n; t++ {
				s -= a[t][i] * x[t]
			}
			x[i] = s / a[i][i]
		}
		trace += x[col]
	}
	gamma := float64(p) - k*trace
	if gamma < 0 {
		gamma = 0
	}
	if gamma > float64(p) {
		gamma = float64(p)
	}
	return gamma
}

// Predict returns predictions for the rows of X.
func (m *BayesianRidge) Predict(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Intercept + dot(m.Coef, row)
	}
	return out
}
