// Package ml is a from-scratch machine-learning substrate for the
// evaluation pipelines of the heterogeneous-subgraph-features
// reproduction: the regressors and classifiers the paper uses (linear
// regression, Bayesian ridge, decision trees, random forests, logistic
// regression), univariate feature selection, preprocessing, metrics
// (NDCG@n, Macro F1) and data splitting. Only the standard library is
// used.
//
// All estimators follow the same contract: Fit consumes a dense row-major
// design matrix X (rows = samples) and targets, Predict maps rows to
// outputs. Stochastic estimators take explicit *rand.Rand sources so
// experiments are reproducible.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotFitted is returned by Predict when Fit has not succeeded.
var ErrNotFitted = errors.New("ml: estimator is not fitted")

// checkXY validates design-matrix and target shapes.
func checkXY(x [][]float64, targets int) error {
	if len(x) == 0 {
		return errors.New("ml: empty design matrix")
	}
	cols := len(x[0])
	for i, row := range x {
		if len(row) != cols {
			return fmt.Errorf("ml: ragged design matrix: row %d has %d columns, want %d", i, len(row), cols)
		}
	}
	if targets >= 0 && targets != len(x) {
		return fmt.Errorf("ml: %d rows but %d targets", len(x), targets)
	}
	return nil
}

// dot returns the inner product of two equal-length vectors.
func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// variance returns the population variance of xs.
func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// solveSPD solves the symmetric positive-definite system A·x = b in place
// via Cholesky decomposition, returning an error when A is not (numerically)
// positive definite. A is row-major n×n and is overwritten.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Cholesky: a becomes L (lower triangular).
	for j := 0; j < n; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= a[j][k] * a[j][k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, errors.New("ml: matrix not positive definite")
		}
		a[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= a[i][k] * a[j][k]
			}
			a[i][j] = s / a[j][j]
		}
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i][k] * y[k]
		}
		y[i] = s / a[i][i]
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= a[k][i] * x[k]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// gram computes Xᵀ·X (+ ridge·I) and Xᵀ·y for centered regression
// problems.
func gram(x [][]float64, y []float64, ridge float64) ([][]float64, []float64) {
	p := len(x[0])
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for r, row := range x {
		for i := 0; i < p; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			b[i] += vi * y[r]
			for j := i; j < p; j++ {
				a[i][j] += vi * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
		a[i][i] += ridge
	}
	return a, b
}
