package ml

import (
	"fmt"
	"math"
)

// LogisticRegression is binary logistic regression with L2 regularisation,
// fitted by full-batch gradient descent with Armijo backtracking on the
// penalised negative log-likelihood. The intercept is not penalised.
//
// Inputs should be standardised (see StandardScaler); the solver is exact
// enough for the paper's evaluation protocol, where logistic regression is
// the shared classifier across all feature families (§4.3.3).
type LogisticRegression struct {
	C       float64 // inverse regularisation strength, default 1.0
	MaxIter int     // default 200
	Tol     float64 // gradient-norm tolerance, default 1e-5

	Coef      []float64
	Intercept float64
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit estimates weights; y must hold 0/1 labels.
func (m *LogisticRegression) Fit(x [][]float64, y []int) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	for _, c := range y {
		if c != 0 && c != 1 {
			return fmt.Errorf("ml: binary logistic regression requires 0/1 labels, got %d", c)
		}
	}
	c := m.C
	if c == 0 {
		c = 1.0
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}
	tol := m.Tol
	if tol == 0 {
		tol = 1e-5
	}
	n := len(x)
	p := len(x[0])
	lambda := 1.0 / (c * float64(n))

	w := make([]float64, p)
	b := 0.0

	loss := func(w []float64, b float64) float64 {
		var l float64
		for i, row := range x {
			z := b + dot(w, row)
			// log(1 + exp(-z·s)) with s in {-1, +1}.
			s := 2*float64(y[i]) - 1
			m := -z * s
			if m > 30 {
				l += m
			} else {
				l += math.Log1p(math.Exp(m))
			}
		}
		l /= float64(n)
		for _, v := range w {
			l += lambda / 2 * v * v
		}
		return l
	}

	gw := make([]float64, p)
	step := 1.0
	cur := loss(w, b)
	for iter := 0; iter < maxIter; iter++ {
		for j := range gw {
			gw[j] = lambda * w[j]
		}
		gb := 0.0
		for i, row := range x {
			pi := sigmoid(b + dot(w, row))
			d := (pi - float64(y[i])) / float64(n)
			gb += d
			for j, v := range row {
				if v != 0 {
					gw[j] += d * v
				}
			}
		}
		gnorm := gb * gb
		for _, g := range gw {
			gnorm += g * g
		}
		if math.Sqrt(gnorm) < tol {
			break
		}
		// Backtracking line search (Armijo).
		step *= 2 // allow recovery after conservative steps
		var next float64
		trial := make([]float64, p)
		var trialB float64
		for {
			for j := range w {
				trial[j] = w[j] - step*gw[j]
			}
			trialB = b - step*gb
			next = loss(trial, trialB)
			if next <= cur-0.5*step*gnorm || step < 1e-12 {
				break
			}
			step /= 2
		}
		copy(w, trial)
		b = trialB
		if cur-next < 1e-12 {
			cur = next
			break
		}
		cur = next
	}
	m.Coef = w
	m.Intercept = b
	return nil
}

// PredictProba returns P(y=1 | row) for every row.
func (m *LogisticRegression) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = sigmoid(m.Intercept + dot(m.Coef, row))
	}
	return out
}

// Predict thresholds PredictProba at 0.5.
func (m *LogisticRegression) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, p := range m.PredictProba(x) {
		if p >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// OneVsRest wraps binary logistic regression into a multiclass classifier
// following the paper's protocol: one classifier per label in a
// one-vs-all setting, predicting the label with the highest probability
// score (§4.3.3).
type OneVsRest struct {
	C       float64 // passed to each binary model
	MaxIter int
	Tol     float64

	models   []*LogisticRegression
	nClasses int
}

// Fit trains one binary model per class.
func (m *OneVsRest) Fit(x [][]float64, y []int) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	m.nClasses = 0
	for _, c := range y {
		if c < 0 {
			return fmt.Errorf("ml: negative class %d", c)
		}
		if c+1 > m.nClasses {
			m.nClasses = c + 1
		}
	}
	m.models = make([]*LogisticRegression, m.nClasses)
	bin := make([]int, len(y))
	for c := 0; c < m.nClasses; c++ {
		for i, v := range y {
			if v == c {
				bin[i] = 1
			} else {
				bin[i] = 0
			}
		}
		lr := &LogisticRegression{C: m.C, MaxIter: m.MaxIter, Tol: m.Tol}
		if err := lr.Fit(x, bin); err != nil {
			return err
		}
		m.models[c] = lr
	}
	return nil
}

// PredictProba returns the per-class probability scores (not normalised
// across classes, exactly as in the one-vs-all protocol).
func (m *OneVsRest) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range out {
		out[i] = make([]float64, m.nClasses)
	}
	for c, lr := range m.models {
		for i, p := range lr.PredictProba(x) {
			out[i][c] = p
		}
	}
	return out
}

// Predict selects the class with the highest probability score.
func (m *OneVsRest) Predict(x [][]float64) []int {
	probs := m.PredictProba(x)
	out := make([]int, len(x))
	for i, p := range probs {
		best := 0
		for c := range p {
			if p[c] > p[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// NumClasses returns the number of classes seen during Fit.
func (m *OneVsRest) NumClasses() int { return m.nClasses }

// Coef returns the weight vector of the binary model for the given
// class, or nil when the model is unfitted or the class unknown. The
// weights refer to the (possibly standardised) inputs passed to Fit.
func (m *OneVsRest) Coef(class int) []float64 {
	if class < 0 || class >= len(m.models) || m.models[class] == nil {
		return nil
	}
	return m.models[class].Coef
}
