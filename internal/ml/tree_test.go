package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestDecisionTreeRegressorStepFunction(t *testing.T) {
	// y = 1 if x0 > 0.5 else 0: one split suffices.
	x := [][]float64{{0.1}, {0.2}, {0.3}, {0.7}, {0.8}, {0.9}}
	y := []float64{0, 0, 0, 1, 1, 1}
	var m DecisionTreeRegressor
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := m.Predict([][]float64{{0.0}, {1.0}})
	if pred[0] != 0 || pred[1] != 1 {
		t.Errorf("pred = %v, want [0 1]", pred)
	}
	if m.Importance[0] < 0.99 {
		t.Errorf("importance = %v, want ~1 on the only feature", m.Importance)
	}
}

func TestDecisionTreeRegressorXOR(t *testing.T) {
	// XOR requires depth 2; linear models fail it.
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 1, 0}
	var m DecisionTreeRegressor
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(x)
	for i := range y {
		if math.Abs(pred[i]-y[i]) > 1e-9 {
			t.Errorf("XOR pred[%d] = %v, want %v", i, pred[i], y[i])
		}
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = x[i][0] * x[i][0]
	}
	shallow := DecisionTreeRegressor{MaxDepth: 1}
	if err := shallow.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	deep := DecisionTreeRegressor{MaxDepth: 8}
	if err := deep.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if MSE(y, deep.Predict(x)) >= MSE(y, shallow.Predict(x)) {
		t.Error("deeper tree should fit training data at least as well")
	}
	// Depth-1 tree has exactly one split: at most 2 distinct outputs.
	vals := map[float64]bool{}
	for _, p := range shallow.Predict(x) {
		vals[p] = true
	}
	if len(vals) > 2 {
		t.Errorf("depth-1 tree produced %d distinct outputs", len(vals))
	}
}

func TestDecisionTreeMinSamplesLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	m := DecisionTreeRegressor{MinSamplesLeaf: 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// No leaf may contain fewer than 2 training samples: count leaf
	// outputs; with 4 samples the tree has at most 2 leaves.
	vals := map[float64]bool{}
	for _, p := range m.Predict(x) {
		vals[p] = true
	}
	if len(vals) > 2 {
		t.Errorf("MinSamplesLeaf=2 with 4 samples: %d leaves", len(vals))
	}
}

func TestDecisionTreeClassifier(t *testing.T) {
	// Three linearly separable blobs.
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {5, 5}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 30; i++ {
			x = append(x, []float64{ctr[0] + rng.NormFloat64()*0.3, ctr[1] + rng.NormFloat64()*0.3})
			y = append(y, c)
		}
	}
	var m DecisionTreeClassifier
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(y, m.Predict(x)); acc < 0.99 {
		t.Errorf("train accuracy = %v", acc)
	}
	probs := m.PredictProba(x)
	for i, p := range probs {
		var s float64
		for _, v := range p {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("proba row %d sums to %v", i, s)
		}
	}
}

func TestDecisionTreePureNodeStops(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	var m DecisionTreeRegressor
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.root.feature != -1 {
		t.Error("pure node should be a leaf")
	}
	if p := m.Predict([][]float64{{9}}); p[0] != 7 {
		t.Errorf("constant prediction = %v, want 7", p[0])
	}
}

func TestRandomForestRegressorBeatsSingleTreeOOS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func(n int) ([][]float64, []float64) {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.Float64() * 4, rng.Float64() * 4}
			y[i] = math.Sin(x[i][0]) + 0.5*x[i][1] + 0.2*rng.NormFloat64()
		}
		return x, y
	}
	xtr, ytr := gen(200)
	xte, yte := gen(200)

	forest := RandomForestRegressor{NumTrees: 50, Seed: 1}
	if err := forest.Fit(xtr, ytr); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(yte, forest.Predict(xte)); r2 < 0.7 {
		t.Errorf("forest out-of-sample R² = %v", r2)
	}
	var s float64
	for _, v := range forest.Importance {
		s += v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Errorf("forest importance sums to %v, want 1", s)
	}
}

func TestRandomForestDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([][]float64, 80)
	y := make([]float64, 80)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = x[i][0] + x[i][1]
	}
	serial := RandomForestRegressor{NumTrees: 20, Seed: 9, Workers: 1}
	parallel := RandomForestRegressor{NumTrees: 20, Seed: 9, Workers: 4}
	if err := serial.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ps := serial.Predict(x)
	pp := parallel.Predict(x)
	for i := range ps {
		if ps[i] != pp[i] {
			t.Fatalf("worker count changed predictions at %d: %v vs %v", i, ps[i], pp[i])
		}
	}
}

func TestRandomForestClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	for c := 0; c < 2; c++ {
		for i := 0; i < 60; i++ {
			x = append(x, []float64{float64(c)*3 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	m := RandomForestClassifier{NumTrees: 30, Seed: 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(y, m.Predict(x)); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
	probs := m.PredictProba(x)
	if len(probs[0]) != 2 {
		t.Fatalf("probs width = %d, want 2", len(probs[0]))
	}
}

func TestRandomForestClassifierRareClass(t *testing.T) {
	// A class with a single sample may vanish from bootstrap resamples;
	// the forest must stay consistent (no panics, aligned probability
	// widths) and still predict the frequent classes.
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		y = append(y, 0)
	}
	for i := 0; i < 40; i++ {
		x = append(x, []float64{6 + rng.NormFloat64()})
		y = append(y, 1)
	}
	x = append(x, []float64{100})
	y = append(y, 2) // singleton class
	m := RandomForestClassifier{NumTrees: 25, Seed: 3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probs := m.PredictProba(x)
	for i, p := range probs {
		if len(p) != 3 {
			t.Fatalf("row %d: proba width %d, want 3", i, len(p))
		}
	}
	pred := m.Predict([][]float64{{0}, {6}})
	if pred[0] != 0 || pred[1] != 1 {
		t.Errorf("frequent classes mispredicted: %v", pred)
	}
}
