package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNDCGPerfectRanking(t *testing.T) {
	rel := []float64{10, 8, 5, 3, 1}
	pred := []float64{100, 90, 50, 20, 5} // same order as rel
	if got := NDCG(pred, rel, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect ranking NDCG = %v, want 1", got)
	}
}

func TestNDCGWorstVsBest(t *testing.T) {
	rel := []float64{10, 0, 0, 0, 0}
	best := []float64{5, 4, 3, 2, 1}
	worst := []float64{1, 2, 3, 4, 5}
	nb := NDCG(best, rel, 5)
	nw := NDCG(worst, rel, 5)
	if nb != 1 {
		t.Errorf("best NDCG = %v", nb)
	}
	// Placing the single relevant item last: DCG = 10/log2(6).
	want := (10 / math.Log2(6)) / 10
	if math.Abs(nw-want) > 1e-12 {
		t.Errorf("worst NDCG = %v, want %v", nw, want)
	}
}

func TestNDCGTopN(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	pred := []float64{1, 2, 3, 4} // reversed ranking
	full := NDCG(pred, rel, 4)
	top2 := NDCG(pred, rel, 2)
	if top2 >= full {
		t.Errorf("reversed ranking should look worse at top-2: %v vs %v", top2, full)
	}
	// n out of range clamps.
	if NDCG(pred, rel, 100) != full {
		t.Error("overlong n should clamp to len")
	}
	if NDCG(pred, rel, 0) != full {
		t.Error("n=0 should mean full length")
	}
}

func TestNDCGDegenerate(t *testing.T) {
	if NDCG(nil, nil, 5) != 0 {
		t.Error("empty input should score 0")
	}
	if NDCG([]float64{1}, []float64{1, 2}, 1) != 0 {
		t.Error("mismatched lengths should score 0")
	}
	if NDCG([]float64{1, 2}, []float64{0, 0}, 2) != 0 {
		t.Error("all-zero relevance should score 0")
	}
}

func TestNDCGBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pred := make([]float64, n)
		rel := make([]float64, n)
		for i := range pred {
			pred[i] = rng.Float64()
			rel[i] = rng.Float64() * 10
		}
		v := NDCG(pred, rel, 1+rng.Intn(n))
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMacroF1(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	if f1 := MacroF1(truth, truth); f1 != 1 {
		t.Errorf("perfect F1 = %v", f1)
	}
	// All predictions class 0: class 0 has P=2/6, R=1 -> F1=0.5;
	// classes 1, 2 have F1=0 -> macro = 0.5/3.
	pred := []int{0, 0, 0, 0, 0, 0}
	want := (2.0 * (2.0 / 6.0) * 1.0 / ((2.0 / 6.0) + 1.0)) / 3.0
	if f1 := MacroF1(truth, pred); math.Abs(f1-want) > 1e-12 {
		t.Errorf("degenerate F1 = %v, want %v", f1, want)
	}
	if MacroF1(nil, nil) != 0 {
		t.Error("empty input F1")
	}
	if MacroF1([]int{0}, []int{0, 1}) != 0 {
		t.Error("length mismatch F1")
	}
}

func TestMacroF1PenalizesMinorityErrors(t *testing.T) {
	// Macro averaging weights classes equally, so failing a small class
	// costs a full share.
	truth := []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1}
	allZero := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	balanced := []int{0, 0, 0, 0, 0, 0, 0, 1, 1, 1}
	if MacroF1(truth, allZero) >= MacroF1(truth, balanced) {
		t.Error("macro F1 should reward getting the minority class right")
	}
}

func TestAccuracyMSER2(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 2, 4}) != 2.0/3.0 {
		t.Error("accuracy")
	}
	if MSE([]float64{1, 2}, []float64{1, 4}) != 2 {
		t.Error("mse")
	}
	if R2([]float64{1, 2, 3}, []float64{1, 2, 3}) != 1 {
		t.Error("perfect R²")
	}
	// Predicting the mean gives R² = 0.
	if r := R2([]float64{1, 2, 3}, []float64{2, 2, 2}); math.Abs(r) > 1e-12 {
		t.Errorf("mean-prediction R² = %v", r)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.2, 1}, {0.4, 2}, {0.8, 4}, {1, 5}, {1.5, 5}}
	for _, tc := range cases {
		if got := Percentile(xs, tc.q); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestMeanStdAndCI(t *testing.T) {
	m, sd := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || sd != 2 {
		t.Errorf("MeanStd = %v, %v, want 5, 2", m, sd)
	}
	if ConfidenceInterval95([]float64{1}) != 0 {
		t.Error("CI of singleton should be 0")
	}
	ci := ConfidenceInterval95([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 1.96 * 2 / math.Sqrt(8)
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
}
