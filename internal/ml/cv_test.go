package ml

import (
	"math/rand"
	"testing"
)

func TestKFoldPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	splits, err := KFold(10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("folds = %d, want 3", len(splits))
	}
	seen := make(map[int]int)
	for _, s := range splits {
		train, test := s[0], s[1]
		if len(train)+len(test) != 10 {
			t.Fatalf("fold does not cover all samples: %d + %d", len(train), len(test))
		}
		inTrain := map[int]bool{}
		for _, i := range train {
			inTrain[i] = true
		}
		for _, i := range test {
			if inTrain[i] {
				t.Fatal("index in both train and test")
			}
			seen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears in %d test folds, want 1", i, seen[i])
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := KFold(5, 1, rng); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := KFold(3, 4, rng); err == nil {
		t.Error("k>n must fail")
	}
}

func TestTuneLogRegCPrefersGoodC(t *testing.T) {
	// Noisy high-dimensional data with few samples: extreme C values
	// (way under- or over-regularised) should lose against a moderate
	// one often enough that tuning returns a finite sensible choice.
	rng := rand.New(rand.NewSource(3))
	n, p := 60, 20
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		if row[0]+0.8*rng.NormFloat64() > 0 {
			y[i] = 1
		}
	}
	grid := []float64{1e-6, 0.1, 1, 10}
	c, err := TuneLogRegC(x, y, grid, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range grid {
		if c == g {
			found = true
		}
	}
	if !found {
		t.Fatalf("returned C %v not in grid", c)
	}
	if c == 1e-6 {
		t.Errorf("tuning picked the degenerate C=1e-6")
	}
}

func TestTuneLogRegCEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{0, 0, 1, 1}
	if _, err := TuneLogRegC(x, y, nil, 2, rng); err == nil {
		t.Error("empty grid must fail")
	}
	c, err := TuneLogRegC(x, y, []float64{7}, 2, rng)
	if err != nil || c != 7 {
		t.Errorf("singleton grid should return its element: %v, %v", c, err)
	}
}
