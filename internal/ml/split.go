package ml

import (
	"fmt"
	"math/rand"
)

// TrainTestSplit shuffles indices 0..n-1 and splits them so the training
// portion holds trainFrac of the samples (at least one sample on each
// side when 0 < trainFrac < 1).
func TrainTestSplit(n int, trainFrac float64, rng *rand.Rand) (train, test []int, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("ml: need at least 2 samples to split, got %d", n)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: trainFrac must be in (0,1), got %v", trainFrac)
	}
	idx := rng.Perm(n)
	cut := int(trainFrac * float64(n))
	if cut < 1 {
		cut = 1
	}
	if cut > n-1 {
		cut = n - 1
	}
	return idx[:cut], idx[cut:], nil
}

// StratifiedSplit splits per class so every class appears on both sides
// whenever it has at least two samples. y holds class indices.
func StratifiedSplit(y []int, trainFrac float64, rng *rand.Rand) (train, test []int, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: trainFrac must be in (0,1), got %v", trainFrac)
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic order before shuffling.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	for _, c := range classes {
		members := byClass[c]
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		cut := int(trainFrac * float64(len(members)))
		if len(members) >= 2 {
			if cut < 1 {
				cut = 1
			}
			if cut > len(members)-1 {
				cut = len(members) - 1
			}
		}
		train = append(train, members[:cut]...)
		test = append(test, members[cut:]...)
	}
	if len(train) == 0 || len(test) == 0 {
		return nil, nil, fmt.Errorf("ml: stratified split produced an empty side")
	}
	return train, test, nil
}

// Rows gathers the rows of x at the given indices.
func Rows(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// Vals gathers the values of y at the given indices.
func Vals(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// Ints gathers the values of y at the given indices.
func Ints(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}
