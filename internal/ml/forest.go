package ml

import (
	"math"
	"math/rand"
	"sync"
)

// RandomForestRegressor is a bagging ensemble of CART regression trees.
// The paper uses 300 trees so that impurity-based feature importances are
// stable enough for the Figure 4 analysis.
type RandomForestRegressor struct {
	NumTrees       int   // default 300 (the paper's setting)
	MaxDepth       int   // 0 = unlimited
	MinSamplesLeaf int   // default 1
	MaxFeatures    int   // 0 = all features (regression default)
	Seed           int64 // deterministic tree seeds derive from this
	Workers        int   // parallel tree fitting; 0 = serial

	trees      []*DecisionTreeRegressor
	Importance []float64 // mean impurity importance over trees
}

// Fit grows the forest on bootstrap resamples.
func (m *RandomForestRegressor) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	n := m.NumTrees
	if n == 0 {
		n = 300
	}
	m.trees = make([]*DecisionTreeRegressor, n)
	p := len(x[0])
	m.Importance = make([]float64, p)

	fitOne := func(t int) error {
		rng := rand.New(rand.NewSource(m.Seed + int64(t)*7919))
		bx, by := bootstrap(x, y, rng)
		tree := &DecisionTreeRegressor{
			MaxDepth:       m.MaxDepth,
			MinSamplesLeaf: m.MinSamplesLeaf,
			MaxFeatures:    m.MaxFeatures,
			Rand:           rng,
		}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		m.trees[t] = tree
		return nil
	}

	if err := forEachTree(n, m.Workers, fitOne); err != nil {
		return err
	}
	for _, tree := range m.trees {
		for j, v := range tree.Importance {
			m.Importance[j] += v
		}
	}
	for j := range m.Importance {
		m.Importance[j] /= float64(n)
	}
	return nil
}

// Predict averages the tree predictions.
func (m *RandomForestRegressor) Predict(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for _, tree := range m.trees {
		for i, v := range tree.Predict(x) {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(m.trees))
	}
	return out
}

// RandomForestClassifier is a bagging ensemble of CART classification
// trees with sqrt(p) feature subsampling by default.
type RandomForestClassifier struct {
	NumTrees       int // default 300
	MaxDepth       int
	MinSamplesLeaf int
	MaxFeatures    int // 0 = round(sqrt(p))
	Seed           int64
	Workers        int

	trees      []*DecisionTreeClassifier
	nClasses   int
	Importance []float64
}

// Fit grows the forest; y holds class indices 0..k-1.
func (m *RandomForestClassifier) Fit(x [][]float64, y []int) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	n := m.NumTrees
	if n == 0 {
		n = 300
	}
	p := len(x[0])
	maxFeatures := m.MaxFeatures
	if maxFeatures == 0 {
		maxFeatures = int(math.Round(math.Sqrt(float64(p))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	for _, c := range y {
		if c+1 > m.nClasses {
			m.nClasses = c + 1
		}
	}
	m.trees = make([]*DecisionTreeClassifier, n)
	m.Importance = make([]float64, p)

	fitOne := func(t int) error {
		rng := rand.New(rand.NewSource(m.Seed + int64(t)*7919))
		bx, by := bootstrapInt(x, y, rng)
		tree := &DecisionTreeClassifier{
			MaxDepth:       m.MaxDepth,
			MinSamplesLeaf: m.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
			Rand:           rng,
		}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		// Bootstrap may miss classes; align nClasses across trees.
		tree.nClasses = m.nClasses
		m.trees[t] = tree
		return nil
	}
	if err := forEachTree(n, m.Workers, fitOne); err != nil {
		return err
	}
	for _, tree := range m.trees {
		for j, v := range tree.Importance {
			m.Importance[j] += v
		}
	}
	for j := range m.Importance {
		m.Importance[j] /= float64(n)
	}
	return nil
}

// PredictProba averages per-tree class distributions.
func (m *RandomForestClassifier) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range out {
		out[i] = make([]float64, m.nClasses)
	}
	for _, tree := range m.trees {
		for i, row := range x {
			leaf := tree.root.walk(row)
			for c, p := range leaf.proba {
				out[i][c] += p
			}
		}
	}
	for i := range out {
		for c := range out[i] {
			out[i][c] /= float64(len(m.trees))
		}
	}
	return out
}

// Predict returns the class with the highest averaged probability.
func (m *RandomForestClassifier) Predict(x [][]float64) []int {
	probs := m.PredictProba(x)
	out := make([]int, len(x))
	for i, p := range probs {
		best := 0
		for c := range p {
			if p[c] > p[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

func bootstrap(x [][]float64, y []float64, rng *rand.Rand) ([][]float64, []float64) {
	n := len(x)
	bx := make([][]float64, n)
	by := make([]float64, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		bx[i] = x[j]
		by[i] = y[j]
	}
	return bx, by
}

func bootstrapInt(x [][]float64, y []int, rng *rand.Rand) ([][]float64, []int) {
	n := len(x)
	bx := make([][]float64, n)
	by := make([]int, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		bx[i] = x[j]
		by[i] = y[j]
	}
	return bx, by
}

// forEachTree runs fitOne for tree indices 0..n-1, optionally across
// workers goroutines. Tree RNGs derive from per-tree seeds, so results are
// identical regardless of parallelism.
func forEachTree(n, workers int, fitOne func(int) error) error {
	if workers <= 1 {
		for t := 0; t < n; t++ {
			if err := fitOne(t); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				if err := fitOne(t); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for t := 0; t < n; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
