package ml_test

import (
	"fmt"

	"hsgf/internal/ml"
)

func ExampleNDCG() {
	// Ground-truth relevances of four institutions and a model's
	// predicted scores. The model swaps the top two.
	relevance := []float64{10, 7, 3, 1}
	predicted := []float64{0.6, 0.9, 0.2, 0.1}
	fmt.Printf("%.3f\n", ml.NDCG(predicted, relevance, 4))
	// A perfect ranking scores 1.
	fmt.Printf("%.3f\n", ml.NDCG(relevance, relevance, 4))
	// Output:
	// 0.932
	// 1.000
}

func ExampleMacroF1() {
	truth := []int{0, 0, 1, 1, 2, 2}
	predicted := []int{0, 0, 1, 1, 2, 1} // one class-2 node missed
	fmt.Printf("%.2f\n", ml.MacroF1(truth, predicted))
	// Output:
	// 0.82
}

func ExampleSelectKBest() {
	// Feature 1 carries the signal; feature 0 is constant noise.
	x := [][]float64{{5, 1}, {5, 2}, {5, 3}, {5, 4}}
	y := []float64{10, 20, 30, 40}
	s := ml.SelectKBest{K: 1}
	if err := s.FitRegression(x, y); err != nil {
		panic(err)
	}
	fmt.Println(s.Support)
	// Output:
	// [1]
}
