package ml

import (
	"math/rand"
	"testing"
)

func TestSelectKBestRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	// Feature 2 is the signal, the rest is noise.
	for i := 0; i < n; i++ {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = 5*row[2] + 0.1*rng.NormFloat64()
	}
	s := SelectKBest{K: 1}
	if err := s.FitRegression(x, y); err != nil {
		t.Fatal(err)
	}
	if len(s.Support) != 1 || s.Support[0] != 2 {
		t.Errorf("Support = %v, want [2]", s.Support)
	}
	xt := s.Transform(x)
	if len(xt[0]) != 1 {
		t.Errorf("transformed width = %d", len(xt[0]))
	}
	if xt[0][0] != x[0][2] {
		t.Error("Transform should project column 2")
	}
}

func TestSelectKBestClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 40; i++ {
			row := make([]float64, 5)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			row[4] += float64(c) * 4 // feature 4 separates classes
			x = append(x, row)
			y = append(y, c)
		}
	}
	s := SelectKBest{K: 2}
	if err := s.FitClassification(x, y); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range s.Support {
		if j == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("Support = %v should include feature 4", s.Support)
	}
	if s.Scores[4] <= s.Scores[0] {
		t.Errorf("signal feature score %v not above noise %v", s.Scores[4], s.Scores[0])
	}
}

func TestSelectKBestKLargerThanP(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []float64{1, 2, 3}
	s := SelectKBest{K: 10}
	if err := s.FitRegression(x, y); err != nil {
		t.Fatal(err)
	}
	if len(s.Support) != 2 {
		t.Errorf("Support = %v, want all 2 features", s.Support)
	}
}

func TestSelectKBestConstantColumn(t *testing.T) {
	x := [][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}}
	y := []float64{1, 2, 3, 4}
	s := SelectKBest{K: 1}
	if err := s.FitRegression(x, y); err != nil {
		t.Fatal(err)
	}
	if s.Support[0] != 0 {
		t.Errorf("constant column selected over signal: %v", s.Support)
	}
	if s.Scores[1] != 0 {
		t.Errorf("constant column score = %v, want 0", s.Scores[1])
	}
}

func TestStandardScaler(t *testing.T) {
	x := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	var s StandardScaler
	xt, err := s.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0: mean 3, std sqrt(8/3).
	for j := 0; j < 3; j++ {
		var m float64
		for i := range xt {
			m += xt[i][j]
		}
		if m > 1e-9 || m < -1e-9 {
			t.Errorf("column %d not centered: mean %v", j, m/3)
		}
	}
	// Constant column untouched beyond centering (scale 1).
	if s.Scale[1] != 1 {
		t.Errorf("constant column scale = %v, want 1", s.Scale[1])
	}
	// Transform of unseen data uses train statistics.
	x2 := s.Transform([][]float64{{3, 10, 7}})
	if x2[0][0] != 0 || x2[0][2] != 0 {
		t.Errorf("mean row should transform to zeros, got %v", x2[0])
	}
}

func TestLog1p(t *testing.T) {
	x := [][]float64{{0, 1}, {2, 3}}
	got := Log1p(x)
	if got[0][0] != 0 {
		t.Error("log1p(0) != 0")
	}
	if got[0][1] <= 0.69 || got[0][1] >= 0.70 {
		t.Errorf("log1p(1) = %v", got[0][1])
	}
	// Original untouched.
	if x[0][1] != 1 {
		t.Error("Log1p must not mutate input")
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train, test, err := TrainTestSplit(10, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 7 || len(test) != 3 {
		t.Errorf("split sizes %d/%d, want 7/3", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Error("split must cover all indices")
	}
	if _, _, err := TrainTestSplit(1, 0.5, rng); err == nil {
		t.Error("n=1 must fail")
	}
	if _, _, err := TrainTestSplit(10, 0, rng); err == nil {
		t.Error("trainFrac=0 must fail")
	}
	if _, _, err := TrainTestSplit(10, 1, rng); err == nil {
		t.Error("trainFrac=1 must fail")
	}
	// Extreme fractions still leave one sample on each side.
	tr, te, err := TrainTestSplit(3, 0.01, rng)
	if err != nil || len(tr) != 1 || len(te) != 2 {
		t.Errorf("tiny trainFrac split: %d/%d, err %v", len(tr), len(te), err)
	}
}

func TestStratifiedSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	train, test, err := StratifiedSplit(y, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	count := func(idx []int, c int) int {
		n := 0
		for _, i := range idx {
			if y[i] == c {
				n++
			}
		}
		return n
	}
	for c := 0; c < 3; c++ {
		if count(train, c) == 0 || count(test, c) == 0 {
			t.Errorf("class %d missing from one side", c)
		}
	}
	if len(train)+len(test) != len(y) {
		t.Error("split must cover all samples")
	}
}

func TestGatherHelpers(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	if got := Rows(x, []int{2, 0}); got[0][0] != 3 || got[1][0] != 1 {
		t.Error("Rows")
	}
	if got := Vals([]float64{1, 2, 3}, []int{1}); got[0] != 2 {
		t.Error("Vals")
	}
	if got := Ints([]int{4, 5, 6}, []int{2, 2}); got[0] != 6 || got[1] != 6 {
		t.Error("Ints")
	}
}
