package ml

import (
	"math"
	"sort"
)

// SelectKBest performs univariate feature selection: it scores every
// feature independently against the target and keeps the k best. The
// paper applies it with k = 5 for linear regression and decision trees
// and k = 60 for Bayesian ridge (§4.2.3).
type SelectKBest struct {
	K int

	Scores  []float64
	Support []int // selected column indices, sorted by column
}

// FitRegression scores features by the F-statistic of the univariate
// linear regression of y on each feature (the "quick linear model" of the
// paper's setup).
func (s *SelectKBest) FitRegression(x [][]float64, y []float64) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	n := len(x)
	p := len(x[0])
	s.Scores = make([]float64, p)
	ym := mean(y)
	var yv float64
	for _, v := range y {
		yv += (v - ym) * (v - ym)
	}
	for j := 0; j < p; j++ {
		var xm float64
		for i := 0; i < n; i++ {
			xm += x[i][j]
		}
		xm /= float64(n)
		var sxy, sxx float64
		for i := 0; i < n; i++ {
			dx := x[i][j] - xm
			sxy += dx * (y[i] - ym)
			sxx += dx * dx
		}
		if sxx == 0 || yv == 0 {
			s.Scores[j] = 0
			continue
		}
		r2 := (sxy * sxy) / (sxx * yv)
		if r2 >= 1 {
			s.Scores[j] = math.Inf(1)
			continue
		}
		// F = r²/(1-r²) · (n-2).
		s.Scores[j] = r2 / (1 - r2) * float64(n-2)
	}
	s.pick(p)
	return nil
}

// FitClassification scores features by the one-way ANOVA F-statistic
// between classes.
func (s *SelectKBest) FitClassification(x [][]float64, y []int) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	n := len(x)
	p := len(x[0])
	classes := 0
	for _, c := range y {
		if c+1 > classes {
			classes = c + 1
		}
	}
	s.Scores = make([]float64, p)
	counts := make([]float64, classes)
	for _, c := range y {
		counts[c]++
	}
	for j := 0; j < p; j++ {
		sums := make([]float64, classes)
		var total float64
		for i := 0; i < n; i++ {
			sums[y[i]] += x[i][j]
			total += x[i][j]
		}
		grand := total / float64(n)
		var ssb, ssw float64
		means := make([]float64, classes)
		for c := 0; c < classes; c++ {
			if counts[c] > 0 {
				means[c] = sums[c] / counts[c]
				d := means[c] - grand
				ssb += counts[c] * d * d
			}
		}
		for i := 0; i < n; i++ {
			d := x[i][j] - means[y[i]]
			ssw += d * d
		}
		dfb := float64(classes - 1)
		dfw := float64(n - classes)
		if ssw == 0 || dfb == 0 || dfw <= 0 {
			if ssb > 0 {
				s.Scores[j] = math.Inf(1)
			}
			continue
		}
		s.Scores[j] = (ssb / dfb) / (ssw / dfw)
	}
	s.pick(p)
	return nil
}

func (s *SelectKBest) pick(p int) {
	k := s.K
	if k <= 0 || k > p {
		k = p
	}
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s.Scores[order[a]] > s.Scores[order[b]] })
	s.Support = append([]int(nil), order[:k]...)
	sort.Ints(s.Support)
}

// Transform projects x onto the selected columns.
func (s *SelectKBest) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(s.Support))
		for j, col := range s.Support {
			r[j] = row[col]
		}
		out[i] = r
	}
	return out
}
