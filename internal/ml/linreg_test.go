package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synthLinear builds y = w·x + b + noise data.
func synthLinear(rng *rand.Rand, n, p int, noise float64) ([][]float64, []float64, []float64, float64) {
	w := make([]float64, p)
	for j := range w {
		w[j] = rng.NormFloat64() * 2
	}
	b := rng.NormFloat64()
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = b + dot(w, row) + noise*rng.NormFloat64()
	}
	return x, y, w, b
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y, w, b := synthLinear(rng, 200, 5, 0)
	var m LinearRegression
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if math.Abs(m.Coef[j]-w[j]) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", j, m.Coef[j], w[j])
		}
	}
	if math.Abs(m.Intercept-b) > 1e-6 {
		t.Errorf("intercept = %v, want %v", m.Intercept, b)
	}
	pred := m.Predict(x)
	if mse := MSE(y, pred); mse > 1e-10 {
		t.Errorf("MSE = %v on noiseless data", mse)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y, _, _ := synthLinear(rng, 500, 8, 0.5)
	var m LinearRegression
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, m.Predict(x)); r2 < 0.9 {
		t.Errorf("R² = %v, want > 0.9", r2)
	}
}

func TestLinearRegressionSingularColumns(t *testing.T) {
	// Duplicate column makes the Gram matrix singular; the jitter path
	// must still produce a usable fit.
	rng := rand.New(rand.NewSource(3))
	x, y, _, _ := synthLinear(rng, 100, 3, 0)
	for i := range x {
		x[i] = append(x[i], x[i][0]) // duplicate first column
	}
	var m LinearRegression
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, m.Predict(x)); r2 < 0.999 {
		t.Errorf("R² = %v on duplicated-column data", r2)
	}
}

func TestLinearRegressionValidation(t *testing.T) {
	var m LinearRegression
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty input must fail")
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged input must fail")
	}
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y, _, _ := synthLinear(rng, 60, 4, 0.1)
	var ols LinearRegression
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	strong := Ridge{Alpha: 1e6}
	if err := strong.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var normOLS, normRidge float64
	for j := range ols.Coef {
		normOLS += ols.Coef[j] * ols.Coef[j]
		normRidge += strong.Coef[j] * strong.Coef[j]
	}
	if normRidge >= normOLS {
		t.Errorf("strong ridge norm %v >= OLS norm %v", normRidge, normOLS)
	}
	// Default alpha applies when unset.
	var def Ridge
	if err := def.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, def.Predict(x)); r2 < 0.8 {
		t.Errorf("default ridge R² = %v", r2)
	}
}

func TestBayesianRidgeRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y, w, _ := synthLinear(rng, 300, 6, 0.3)
	var m BayesianRidge
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if math.Abs(m.Coef[j]-w[j]) > 0.15 {
			t.Errorf("coef[%d] = %v, want ≈ %v", j, m.Coef[j], w[j])
		}
	}
	if m.Alpha <= 0 || m.Lambda <= 0 {
		t.Errorf("hyperparameters not learned: alpha=%v lambda=%v", m.Alpha, m.Lambda)
	}
	// Learned noise precision should approximate 1/0.3² ≈ 11.
	if m.Alpha < 5 || m.Alpha > 25 {
		t.Errorf("alpha = %v, want ≈ 11", m.Alpha)
	}
}

func TestBayesianRidgeRegularizesNoise(t *testing.T) {
	// With many noisy useless features and few samples, Bayesian ridge
	// should generalise better than OLS.
	rng := rand.New(rand.NewSource(6))
	n, p := 40, 30
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = 3*row[0] + 0.2*rng.NormFloat64()
	}
	var br BayesianRidge
	if err := br.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Held-out evaluation.
	xt := make([][]float64, 200)
	yt := make([]float64, 200)
	for i := range xt {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xt[i] = row
		yt[i] = 3 * row[0]
	}
	if r2 := R2(yt, br.Predict(xt)); r2 < 0.8 {
		t.Errorf("Bayesian ridge held-out R² = %v, want > 0.8", r2)
	}
}
