package ml

import (
	"math"
	"math/rand"
	"sort"
)

// treeNode is one node of a CART tree. Leaves have feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64   // mean target (regression) / majority class (classification)
	proba       []float64 // class distribution at the leaf (classification only)
}

// treeConfig collects the hyperparameters shared by trees and forests.
type treeConfig struct {
	maxDepth        int // 0 = unlimited
	minSamplesLeaf  int
	minSamplesSplit int
	maxFeatures     int // 0 = all features
	rng             *rand.Rand
}

func (c *treeConfig) normalize() {
	if c.minSamplesLeaf <= 0 {
		c.minSamplesLeaf = 1
	}
	if c.minSamplesSplit <= 1 {
		c.minSamplesSplit = 2
	}
}

// cart grows a CART tree. classes == 0 selects regression (variance
// criterion); classes > 0 selects classification over that many classes
// (Gini criterion), with y holding class indices. importance, if non-nil,
// accumulates per-feature weighted impurity decreases.
func cart(x [][]float64, y []float64, idx []int, cfg treeConfig, classes int, depth int, importance []float64, total int) *treeNode {
	node := &treeNode{feature: -1}
	if classes > 0 {
		counts := make([]float64, classes)
		for _, i := range idx {
			counts[int(y[i])]++
		}
		node.proba = make([]float64, classes)
		best := 0
		for c := range counts {
			node.proba[c] = counts[c] / float64(len(idx))
			if counts[c] > counts[best] {
				best = c
			}
		}
		node.value = float64(best)
	} else {
		var s float64
		for _, i := range idx {
			s += y[i]
		}
		node.value = s / float64(len(idx))
	}

	if len(idx) < cfg.minSamplesSplit || (cfg.maxDepth > 0 && depth >= cfg.maxDepth) {
		return node
	}
	imp := impurity(y, idx, classes)
	if imp == 0 {
		return node
	}

	p := len(x[0])
	features := make([]int, p)
	for i := range features {
		features[i] = i
	}
	if cfg.maxFeatures > 0 && cfg.maxFeatures < p && cfg.rng != nil {
		cfg.rng.Shuffle(p, func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:cfg.maxFeatures]
	}

	// Like reference CART implementations, a non-pure node is split even
	// when the best achievable gain is zero (e.g. the first level of XOR):
	// children are strictly smaller, so deeper levels can realise the
	// gain. Termination is guaranteed because both children are non-empty.
	bestFeature, bestThreshold, bestGain := -1, 0.0, math.Inf(-1)
	sorted := make([]int, len(idx))
	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })
		gain, threshold, ok := bestSplit(x, y, sorted, f, classes, imp, cfg.minSamplesLeaf)
		if ok && gain > bestGain {
			bestGain, bestFeature, bestThreshold = gain, f, threshold
		}
	}
	if bestFeature < 0 {
		return node
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	if importance != nil {
		importance[bestFeature] += float64(len(idx)) / float64(total) * bestGain
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = cart(x, y, leftIdx, cfg, classes, depth+1, importance, total)
	node.right = cart(x, y, rightIdx, cfg, classes, depth+1, importance, total)
	return node
}

// impurity is variance (regression) or Gini (classification) of the
// samples in idx.
func impurity(y []float64, idx []int, classes int) float64 {
	if classes == 0 {
		var s, ss float64
		for _, i := range idx {
			s += y[i]
			ss += y[i] * y[i]
		}
		n := float64(len(idx))
		m := s / n
		v := ss/n - m*m
		if v < 0 {
			v = 0
		}
		return v
	}
	counts := make([]float64, classes)
	for _, i := range idx {
		counts[int(y[i])]++
	}
	n := float64(len(idx))
	g := 1.0
	for _, c := range counts {
		f := c / n
		g -= f * f
	}
	return g
}

// bestSplit scans all split positions of feature f over the pre-sorted
// sample indices and returns the best impurity gain and threshold.
func bestSplit(x [][]float64, y []float64, sorted []int, f, classes int, parentImp float64, minLeaf int) (gain, threshold float64, ok bool) {
	n := len(sorted)
	gain = math.Inf(-1)
	if classes == 0 {
		var totalSum, totalSq float64
		for _, i := range sorted {
			totalSum += y[i]
			totalSq += y[i] * y[i]
		}
		var leftSum, leftSq float64
		for pos := 1; pos < n; pos++ {
			i := sorted[pos-1]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			if x[sorted[pos-1]][f] == x[sorted[pos]][f] {
				continue
			}
			if pos < minLeaf || n-pos < minLeaf {
				continue
			}
			nl, nr := float64(pos), float64(n-pos)
			ml := leftSum / nl
			mr := (totalSum - leftSum) / nr
			vl := leftSq/nl - ml*ml
			vr := (totalSq-leftSq)/nr - mr*mr
			g := parentImp - (nl*math.Max(vl, 0)+nr*math.Max(vr, 0))/float64(n)
			if g > gain {
				gain = g
				threshold = (x[sorted[pos-1]][f] + x[sorted[pos]][f]) / 2
				ok = true
			}
		}
		return gain, threshold, ok
	}

	totals := make([]float64, classes)
	for _, i := range sorted {
		totals[int(y[i])]++
	}
	left := make([]float64, classes)
	for pos := 1; pos < n; pos++ {
		left[int(y[sorted[pos-1]])]++
		if x[sorted[pos-1]][f] == x[sorted[pos]][f] {
			continue
		}
		if pos < minLeaf || n-pos < minLeaf {
			continue
		}
		nl, nr := float64(pos), float64(n-pos)
		gl, gr := 1.0, 1.0
		for c := 0; c < classes; c++ {
			fl := left[c] / nl
			fr := (totals[c] - left[c]) / nr
			gl -= fl * fl
			gr -= fr * fr
		}
		g := parentImp - (nl*gl+nr*gr)/float64(n)
		if g > gain {
			gain = g
			threshold = (x[sorted[pos-1]][f] + x[sorted[pos]][f]) / 2
			ok = true
		}
	}
	return gain, threshold, ok
}

func (n *treeNode) walk(row []float64) *treeNode {
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// DecisionTreeRegressor is a CART regression tree (variance reduction
// criterion), the DecTree regressor of the paper's ranking evaluation.
type DecisionTreeRegressor struct {
	MaxDepth        int
	MinSamplesLeaf  int
	MinSamplesSplit int
	MaxFeatures     int        // 0 = all
	Rand            *rand.Rand // used only when MaxFeatures narrows the search

	root       *treeNode
	Importance []float64 // impurity-based feature importance, sums to <= 1
}

// Fit grows the tree.
func (m *DecisionTreeRegressor) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	cfg := treeConfig{maxDepth: m.MaxDepth, minSamplesLeaf: m.MinSamplesLeaf,
		minSamplesSplit: m.MinSamplesSplit, maxFeatures: m.MaxFeatures, rng: m.Rand}
	cfg.normalize()
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	m.Importance = make([]float64, len(x[0]))
	m.root = cart(x, y, idx, cfg, 0, 0, m.Importance, len(x))
	normalizeImportance(m.Importance)
	return nil
}

// Predict returns the mean leaf target for every row.
func (m *DecisionTreeRegressor) Predict(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.root.walk(row).value
	}
	return out
}

// DecisionTreeClassifier is a CART classification tree (Gini criterion).
type DecisionTreeClassifier struct {
	MaxDepth        int
	MinSamplesLeaf  int
	MinSamplesSplit int
	MaxFeatures     int
	Rand            *rand.Rand

	root       *treeNode
	nClasses   int
	Importance []float64
}

// Fit grows the tree; y holds class indices 0..k-1.
func (m *DecisionTreeClassifier) Fit(x [][]float64, y []int) error {
	if err := checkXY(x, len(y)); err != nil {
		return err
	}
	yf := make([]float64, len(y))
	classes := 0
	for i, c := range y {
		yf[i] = float64(c)
		if c+1 > classes {
			classes = c + 1
		}
	}
	m.nClasses = classes
	cfg := treeConfig{maxDepth: m.MaxDepth, minSamplesLeaf: m.MinSamplesLeaf,
		minSamplesSplit: m.MinSamplesSplit, maxFeatures: m.MaxFeatures, rng: m.Rand}
	cfg.normalize()
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	m.Importance = make([]float64, len(x[0]))
	m.root = cart(x, yf, idx, cfg, classes, 0, m.Importance, len(x))
	normalizeImportance(m.Importance)
	return nil
}

// Predict returns the majority class of the reached leaf for every row.
func (m *DecisionTreeClassifier) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = int(m.root.walk(row).value)
	}
	return out
}

// PredictProba returns per-class leaf frequencies for every row.
func (m *DecisionTreeClassifier) PredictProba(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		p := make([]float64, m.nClasses)
		copy(p, m.root.walk(row).proba)
		out[i] = p
	}
	return out
}

func normalizeImportance(imp []float64) {
	var s float64
	for _, v := range imp {
		s += v
	}
	if s > 0 {
		for i := range imp {
			imp[i] /= s
		}
	}
}
