package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hsgf/internal/graph"
)

// TestCensusCounterMatchesMapCensusRandomGraphs is the census-level half
// of the counter-table identity: on random graphs, the production census
// (counter-table tallies) must equal, key for key and count for count,
// the brute-force reference census, which tallies into plain Go maps.
// Both key modes and root masking are exercised.
func TestCensusCounterMatchesMapCensusRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		g := randomLabelled(rng, 5+rng.Intn(10), 1+rng.Intn(3), 0.25+rng.Float64()*0.25)
		opts := Options{
			MaxEdges:      1 + rng.Intn(3),
			MaskRootLabel: rng.Intn(2) == 0,
			KeyMode:       KeyMode(rng.Intn(2)),
		}
		e, err := NewExtractor(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			c := e.Census(graph.NodeID(v))
			got, err := CanonicalCounts(e, c)
			if err != nil {
				t.Fatal(err)
			}
			want := ReferenceCensus(g, graph.NodeID(v), opts)
			if len(want) == 0 {
				want = map[string]int64{}
			}
			if len(got) == 0 {
				got = map[string]int64{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d root %d (%+v): counter-table census diverged from map census:\n got %v\nwant %v",
					trial, v, opts, got, want)
			}
			var sum int64
			for _, n := range c.Counts {
				sum += n
			}
			if sum != c.Subgraphs {
				t.Fatalf("trial %d root %d: counts sum %d != subgraphs %d", trial, v, sum, c.Subgraphs)
			}
		}
	}
}

// TestCensusZeroAllocSteadyState asserts the tentpole property: in
// rolling-hash mode a warm worker's census performs no per-emission
// allocation. The only allocations left per root are the Census struct
// and its output map — a small constant unrelated to the thousands of
// emissions the measured root produces.
func TestCensusZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation skews allocation accounting")
	}
	g := denseGraph(t, 120)
	e, err := NewExtractor(g, Options{MaxEdges: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := e.getWorker(censusRun{})
	defer e.putWorker(w)
	warm := w.census(0) // materialises the vocabulary, grows the table
	if warm.Subgraphs < 1000 {
		t.Fatalf("root 0 too small for a steady-state measurement: %d emissions", warm.Subgraphs)
	}

	allocs := testing.AllocsPerRun(10, func() {
		w.census(0)
	})
	// The output map for len(warm.Counts) keys plus the Census struct:
	// comfortably under 32 allocations however the runtime sizes map
	// buckets, and independent of the emission count.
	if allocs > 32 {
		t.Errorf("steady-state census allocates %.0f times per root (distinct keys: %d)", allocs, len(warm.Counts))
	}
	if perEmission := allocs / float64(warm.Subgraphs); perEmission > 0.01 {
		t.Errorf("census allocates %.4f times per emission, want ~0", perEmission)
	}
}

// TestPooledRequestAvoidsWorkerRebuild is the serving-daemon regression:
// a warm extractor must serve CensusAllWithLimits — the per-request
// entry point of internal/serve — without reconstructing the O(V+E)
// worker state. On this graph a single cold worker build allocates
// ~9 KB of nodePos alone plus edgeState; the steady-state request
// path must stay well below one worker rebuild per call.
func TestPooledRequestAvoidsWorkerRebuild(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation skews allocation accounting")
	}
	const n = 20000
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		b.AddLabeledNode(graph.Label(rng.Intn(2)))
	}
	for u := 0; u < n; u++ {
		b.AddEdge(graph.NodeID(u), graph.NodeID((u+1)%n))
		b.AddEdge(graph.NodeID(u), graph.NodeID(rng.Intn(n)))
	}
	g := b.MustBuild()
	e, err := NewExtractor(g, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	roots := []graph.NodeID{0, 1, 2, 3}
	limits := RootLimits{Budget: 10000}
	if _, err := e.CensusAllWithLimits(ctx, roots, 1, limits); err != nil {
		t.Fatal(err)
	}

	const calls = 50
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < calls; i++ {
		if _, err := e.CensusAllWithLimits(ctx, roots, 1, limits); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&m1)
	perCall := (m1.TotalAlloc - m0.TotalAlloc) / calls

	// One cold worker costs > 4*V + E bytes (nodePos int32s + edgeState
	// bytes + arenas). Require the warm request path to stay under half
	// of nodePos alone: impossible if workers were rebuilt per call.
	coldFloor := uint64(4*g.NumNodes()) / 2
	if perCall > coldFloor {
		t.Errorf("request path allocates %d B/call on a %d-node graph; worker state is being rebuilt (cold floor %d B)",
			perCall, g.NumNodes(), coldFloor)
	}
}

// TestWorkerPoolReuseAndOverrideReset pins the pool contract: a returned
// worker is handed out again, and per-run limit overrides are re-derived
// from Options at checkout so they cannot leak across runs.
func TestWorkerPoolReuseAndOverrideReset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomLabelled(rng, 30, 2, 0.2)
	e, err := NewExtractor(g, Options{MaxEdges: 3, MaxSubgraphsPerRoot: 99})
	if err != nil {
		t.Fatal(err)
	}

	run := censusRun{limits: RootLimits{Budget: 7, Deadline: time.Second}}
	reused := false
	for attempt := 0; attempt < 5 && !reused; attempt++ {
		w1 := e.getWorker(run)
		if w1.budget != 7 || w1.deadline != time.Second {
			t.Fatalf("overrides not applied at checkout: budget=%d deadline=%v", w1.budget, w1.deadline)
		}
		e.putWorker(w1)
		w2 := e.getWorker(censusRun{})
		if w2.budget != 99 || w2.deadline != 0 {
			t.Fatalf("overrides leaked across checkouts: budget=%d deadline=%v", w2.budget, w2.deadline)
		}
		if w2.stop != nil || w2.hooks != nil {
			t.Fatal("stop/hooks survived putWorker")
		}
		reused = w1 == w2
		e.putWorker(w2)
	}
	if !reused {
		t.Error("pool never handed back a returned worker across 5 put/get cycles")
	}

	// A dirty worker (unrestored enumeration state) must be dropped.
	wd := e.getWorker(censusRun{})
	wd.edges = 1 // simulate a panic unwind mid-enumeration
	e.putWorker(wd)
	wn := e.getWorker(censusRun{})
	if wn == wd {
		t.Fatal("pool resurrected a dirty worker")
	}
	wn.edges = 0
	e.putWorker(wn)
}

// TestLimitsDoNotLeakAcrossRuns drives the leak check end to end: a
// budget-truncated run followed by an unlimited run over the same
// extractor must return a complete census the second time.
func TestLimitsDoNotLeakAcrossRuns(t *testing.T) {
	g := denseGraph(t, 80)
	e, err := NewExtractor(g, Options{MaxEdges: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	roots := []graph.NodeID{0, 1}

	capped, err := e.CensusAllWithLimits(ctx, roots, 1, RootLimits{Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !capped[0].Truncated {
		t.Fatal("budget 50 should truncate this dense root")
	}
	free, err := e.CensusAllWithLimits(ctx, roots, 1, RootLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if free[0].Truncated {
		t.Fatalf("limit leaked: unlimited run truncated with flags %v", free[0].Flags)
	}
	if free[0].Subgraphs <= capped[0].Subgraphs {
		t.Fatalf("unlimited census (%d) not larger than capped one (%d)", free[0].Subgraphs, capped[0].Subgraphs)
	}
}

// TestCensusLPTOrderMatchesDefault: LPT scheduling is a pure scheduling
// hint — censuses must be identical to the default dispatch, aligned
// with the caller's root order.
func TestCensusLPTOrderMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := randomLabelled(rng, 60, 3, 0.15)
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	plain, err := NewExtractor(g, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := NewExtractor(g, Options{MaxEdges: 3, LPTRootOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	a := plain.CensusAll(roots, 4)
	b := lpt.CensusAll(roots, 4)
	for i := range roots {
		if a[i].Root != b[i].Root {
			t.Fatalf("row %d misaligned under LPT: root %d vs %d", i, a[i].Root, b[i].Root)
		}
		if !reflect.DeepEqual(a[i].Counts, b[i].Counts) {
			t.Fatalf("row %d: LPT changed the census of root %d", i, a[i].Root)
		}
	}
}
