package core

// Fault-injection harness: deterministic panics, artificial slowness and
// cancellation are injected into census workers through the faultHooks
// seam to prove the pool's failure semantics — one pathological root
// degrades its own census, never the run.

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hsgf/internal/graph"
)

// hubGraph builds a graph with one runaway hub (degree ~ n) over a
// sparse periphery, the Table 3 skew in miniature.
func hubGraph(t testing.TB, n int) (*graph.Graph, graph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
	for i := 0; i < n; i++ {
		b.AddLabeledNode(graph.Label(rng.Intn(2)))
	}
	hub := graph.NodeID(0)
	for v := 1; v < n; v++ {
		b.AddEdge(hub, graph.NodeID(v))
	}
	for v := 1; v < n; v++ {
		for k := 0; k < 3; k++ {
			u := 1 + rng.Intn(n-1)
			if u != v {
				b.AddEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	return b.MustBuild(), hub
}

func allRoots(g *graph.Graph) []graph.NodeID {
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	return roots
}

func TestInjectedPanicYieldsFlaggedCensusOthersExact(t *testing.T) {
	g := denseGraph(t, 60)
	roots := allRoots(g)
	victim := graph.NodeID(17)

	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	ex.hooks = &faultHooks{onRootStart: func(root graph.NodeID) {
		if root == victim {
			panic("injected: corrupt adjacency")
		}
	}}
	cs := ex.CensusAll(roots, 4)

	if cs[victim] == nil || cs[victim].Flags&FlagPanicked == 0 {
		t.Fatalf("victim census = %+v, want FlagPanicked", cs[victim])
	}
	if !cs[victim].Truncated || len(cs[victim].Counts) != 0 {
		t.Fatalf("panicked census must be empty and truncated, got %+v", cs[victim])
	}
	panics := ex.Panics()
	if len(panics) != 1 || panics[0].Root != victim {
		t.Fatalf("Panics() = %+v, want one record for root %d", panics, victim)
	}
	if !strings.Contains(panics[0].Value, "injected: corrupt adjacency") || panics[0].Stack == "" {
		t.Fatalf("panic record incomplete: %+v", panics[0])
	}

	// Every other root is byte-for-byte what a healthy extractor produces.
	clean, _ := NewExtractor(g, Options{MaxEdges: 3})
	want := clean.CensusAll(roots, 4)
	for i, c := range cs {
		if graph.NodeID(i) == victim {
			continue
		}
		if c == nil || c.Truncated {
			t.Fatalf("root %d incomplete after another root's panic", i)
		}
		if !reflect.DeepEqual(c.Counts, want[i].Counts) {
			t.Fatalf("root %d census diverged after another root's panic", i)
		}
	}
}

func TestMidEnumerationPanicDoesNotPoisonWorker(t *testing.T) {
	// The panic fires deep inside the enumeration (at a poll point), so
	// the worker's persistent O(V+E) state is dirty when it unwinds. With
	// a single worker every later root reuses the replacement worker —
	// all of them must still be exact.
	g := denseGraph(t, 80)
	roots := allRoots(g)
	victim := graph.NodeID(3)

	var fired atomic.Bool
	ex, _ := NewExtractor(g, Options{MaxEdges: 4})
	ex.hooks = &faultHooks{onStep: func(root graph.NodeID, step uint64) {
		if root == victim && fired.CompareAndSwap(false, true) {
			panic("injected mid-enumeration")
		}
	}}
	cs := ex.CensusAll(roots, 1)

	if !fired.Load() {
		t.Skip("victim census too small to reach a poll point; graph needs to be denser")
	}
	if cs[victim].Flags&FlagPanicked == 0 {
		t.Fatalf("victim census = %+v, want FlagPanicked", cs[victim])
	}
	clean, _ := NewExtractor(g, Options{MaxEdges: 4})
	want := clean.CensusAll(roots, 1)
	for i, c := range cs {
		if graph.NodeID(i) == victim {
			continue
		}
		if !reflect.DeepEqual(c.Counts, want[i].Counts) {
			t.Fatalf("root %d census poisoned by earlier panic unwind", i)
		}
	}
}

func TestRootDeadlineTruncatesOnlySlowRoot(t *testing.T) {
	g := denseGraph(t, 100)
	roots := allRoots(g)

	// Find a root big enough to reach poll points.
	probe, _ := NewExtractor(g, Options{MaxEdges: 4})
	slow := graph.NodeID(-1)
	for _, r := range roots {
		if probe.Census(r).Subgraphs > 3*pollInterval {
			slow = r
			break
		}
	}
	if slow < 0 {
		t.Fatal("no root with a large census in the test graph")
	}

	// The deadline leaves fast roots a wide margin; the injected
	// slowness blows it in a single poll, so the test stays quick.
	ex, _ := NewExtractor(g, Options{MaxEdges: 4, RootDeadline: 2 * time.Second})
	ex.hooks = &faultHooks{onStep: func(root graph.NodeID, step uint64) {
		if root == slow {
			time.Sleep(2100 * time.Millisecond) // artificial slowness: one poll blows the deadline
		}
	}}
	cs := ex.CensusAll(roots, 4)

	c := cs[slow]
	if c.Flags&FlagDeadlineExceeded == 0 || !c.Truncated {
		t.Fatalf("slow root census = flags %v truncated %v, want deadline-exceeded", c.Flags, c.Truncated)
	}
	clean, _ := NewExtractor(g, Options{MaxEdges: 4})
	want := clean.CensusAll(roots, 4)
	for i, cc := range cs {
		if graph.NodeID(i) == slow {
			continue
		}
		if cc.Truncated {
			t.Fatalf("root %d truncated although only root %d was slow (flags %v)", i, slow, cc.Flags)
		}
		if !reflect.DeepEqual(cc.Counts, want[i].Counts) {
			t.Fatalf("root %d census diverged", i)
		}
	}
}

func TestInjectedCancellationFlagsInFlightRoots(t *testing.T) {
	g, hub := hubGraph(t, 600)
	roots := allRoots(g)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ex, _ := NewExtractor(g, Options{MaxEdges: 5})
	// Cancel deterministically the first time any worker starts the
	// runaway hub root.
	ex.hooks = &faultHooks{onRootStart: func(root graph.NodeID) {
		if root == hub {
			cancel()
		}
	}}

	before := runtime.NumGoroutine()
	cs, err := ex.CensusAllContext(ctx, roots, 2)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	var cancelled, pending, done int
	for _, c := range cs {
		switch {
		case c == nil:
			pending++
		case c.Truncated:
			if c.Flags&FlagCancelled == 0 {
				t.Fatalf("in-flight census flags = %v, want FlagCancelled", c.Flags)
			}
			cancelled++
		default:
			done++
		}
	}
	if cancelled == 0 {
		t.Error("expected at least one in-flight census flagged cancelled (the hub)")
	}
	if pending == 0 {
		t.Error("expected pending (nil) roots after cancellation")
	}
	t.Logf("done=%d cancelled=%d pending=%d", done, cancelled, pending)

	// No goroutine leak: the pool and the context watcher must exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines: %d before, %d after cancellation", before, after)
	}
}

func TestPanickedRootsStillCheckpointAndPersist(t *testing.T) {
	// End-to-end through the persistence layer: a panicked root flows
	// into FeatureSet.RowFlags so reports can mark the gap.
	g := denseGraph(t, 40)
	roots := allRoots(g)[:10]
	victim := graph.NodeID(4)

	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	ex.hooks = &faultHooks{onRootStart: func(root graph.NodeID) {
		if root == victim {
			panic("injected")
		}
	}}
	cs := ex.CensusAll(roots, 2)
	fs, err := NewFeatureSet(ex, cs, VocabularyOf(cs))
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Degraded(4) {
		t.Fatal("panicked row not marked degraded in the feature set")
	}
	if fs.Degraded(3) {
		t.Fatal("healthy row wrongly marked degraded")
	}
	if CensusFlag(fs.RowFlags[4])&FlagPanicked == 0 {
		t.Fatalf("row flag = %v, want FlagPanicked", CensusFlag(fs.RowFlags[4]))
	}
}

func TestCensusFlagString(t *testing.T) {
	if got := CensusFlag(0).String(); got != "ok" {
		t.Errorf("zero flags = %q", got)
	}
	f := FlagBudgetExceeded | FlagPanicked
	if got := f.String(); got != "budget-exceeded|panicked" {
		t.Errorf("flag string = %q", got)
	}
}
