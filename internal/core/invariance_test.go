package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hsgf/internal/graph"
)

// TestCensusIsomorphismInvariance is the census's central semantic
// property: relabelling node IDs by any permutation (an isomorphism of
// the network) must leave every root's canonical census unchanged. This
// exercises the order-independence of the encoding, the hash, and the
// enumeration at once.
func TestCensusIsomorphismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(10)
		labels := 1 + rng.Intn(3)
		p := 0.2 + rng.Float64()*0.3

		type edge [2]int
		var edges []edge
		labelOf := make([]int, n)
		for i := range labelOf {
			labelOf[i] = rng.Intn(labels)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					edges = append(edges, edge{u, v})
				}
			}
		}
		perm := rng.Perm(n)

		build := func(remap func(int) int) *graph.Graph {
			names := []string{"a", "b", "c"}[:labels]
			b := graph.NewBuilderWithAlphabet(graph.MustAlphabet(names...))
			// Nodes must be added in ID order of the target graph.
			inv := make([]int, n)
			for orig := 0; orig < n; orig++ {
				inv[remap(orig)] = orig
			}
			for id := 0; id < n; id++ {
				b.AddLabeledNode(graph.Label(labelOf[inv[id]]))
			}
			for _, e := range edges {
				b.AddEdge(graph.NodeID(remap(e[0])), graph.NodeID(remap(e[1])))
			}
			return b.MustBuild()
		}
		g1 := build(func(i int) int { return i })
		g2 := build(func(i int) int { return perm[i] })

		opts := Options{MaxEdges: 1 + rng.Intn(3), MaskRootLabel: rng.Intn(2) == 0}
		e1, err := NewExtractor(g1, opts)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := NewExtractor(g2, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			c1 := e1.Census(graph.NodeID(v))
			c2 := e2.Census(graph.NodeID(perm[v]))
			m1, err := CanonicalCounts(e1, c1)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := CanonicalCounts(e2, c2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m1, m2) {
				t.Fatalf("trial %d: census of node %d changes under relabelling:\n %v\n %v",
					trial, v, m1, m2)
			}
			// Rolling-hash keys are alphabet-slot based and therefore
			// also permutation invariant: the raw maps must agree too.
			if !reflect.DeepEqual(c1.Counts, c2.Counts) {
				t.Fatalf("trial %d: raw hash keys change under relabelling", trial)
			}
		}
	}
}

// TestCensusCountsSumProperty checks Σ counts == Subgraphs over random
// graphs via testing/quick.
func TestCensusCountsSumProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabelled(rng, 4+rng.Intn(10), 1+rng.Intn(3), 0.3)
		e, err := NewExtractor(g, Options{MaxEdges: 1 + rng.Intn(3)})
		if err != nil {
			return false
		}
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		c := e.Census(root)
		var sum int64
		for _, n := range c.Counts {
			sum += n
		}
		return sum == c.Subgraphs
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCensusMonotoneUnderEdgeAddition: adding an edge elsewhere never
// removes subgraphs around an untouched root... it can *add* subgraphs
// (new paths through the new edge), so the census total is monotone
// non-decreasing.
func TestCensusMonotoneUnderEdgeAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(6)
		b1 := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
		b2 := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
		for i := 0; i < n; i++ {
			l := graph.Label(rng.Intn(2))
			b1.AddLabeledNode(l)
			b2.AddLabeledNode(l)
		}
		var free [][2]graph.NodeID
		present := map[[2]graph.NodeID]bool{}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				e := [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)}
				if rng.Float64() < 0.3 {
					b1.AddEdge(e[0], e[1])
					b2.AddEdge(e[0], e[1])
					present[e] = true
				} else {
					free = append(free, e)
				}
			}
		}
		if len(free) == 0 {
			continue
		}
		extra := free[rng.Intn(len(free))]
		b2.AddEdge(extra[0], extra[1])
		g1 := b1.MustBuild()
		g2 := b2.MustBuild()

		e1, _ := NewExtractor(g1, Options{MaxEdges: 3})
		e2, _ := NewExtractor(g2, Options{MaxEdges: 3})
		for v := 0; v < n; v++ {
			c1 := e1.Census(graph.NodeID(v))
			c2 := e2.Census(graph.NodeID(v))
			if c2.Subgraphs < c1.Subgraphs {
				t.Fatalf("trial %d: adding an edge removed subgraphs at node %d (%d -> %d)",
					trial, v, c1.Subgraphs, c2.Subgraphs)
			}
		}
	}
}
