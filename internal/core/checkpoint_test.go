package core

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"hsgf/internal/graph"
)

func checkpointPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "census.ckpt")
}

func TestCheckpointCompleteRunRoundTrips(t *testing.T) {
	g := denseGraph(t, 50)
	roots := allRoots(g)[:20]
	path := checkpointPath(t)

	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	cs, err := ex.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path, Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := NewExtractor(g, Options{MaxEdges: 3})
	want := clean.CensusAll(roots, 2)
	for i := range roots {
		if !reflect.DeepEqual(cs[i].Counts, want[i].Counts) {
			t.Fatalf("root %d census diverged under checkpointing", i)
		}
	}

	total, done, degraded, err := ReadCensusCheckpointInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(roots) || done != len(roots) || degraded != 0 {
		t.Fatalf("checkpoint info = %d/%d done, %d degraded; want %d/%d, 0", done, total, degraded, len(roots), len(roots))
	}
}

func TestCheckpointResumeSkipsCompletedRoots(t *testing.T) {
	g := denseGraph(t, 60)
	roots := allRoots(g)
	path := checkpointPath(t)
	opts := Options{MaxEdges: 3}

	// Run 1 is "killed" (cancelled) once half the roots have started;
	// snapshots every 2 roots plus the final snapshot keep what finished.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	ex1, _ := NewExtractor(g, opts)
	ex1.hooks = &faultHooks{onRootStart: func(graph.NodeID) {
		if started.Add(1) == int64(len(roots)/2) {
			cancel()
		}
	}}
	_, err := ex1.CensusAllCheckpoint(ctx, roots, 2, CheckpointConfig{Path: path, Interval: 2})
	if err != context.Canceled {
		t.Fatalf("first run err = %v, want context.Canceled", err)
	}
	_, doneAfterKill, _, err := ReadCensusCheckpointInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if doneAfterKill == 0 || doneAfterKill >= len(roots) {
		t.Fatalf("checkpoint after kill covers %d/%d roots, want a strict partial", doneAfterKill, len(roots))
	}

	// Run 2 resumes: completed roots must not be re-extracted.
	var reExtracted atomic.Int64
	ex2, _ := NewExtractor(g, opts)
	ex2.hooks = &faultHooks{onRootStart: func(graph.NodeID) { reExtracted.Add(1) }}
	cs, err := ex2.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path, Interval: 2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	// Cancelled-in-flight rows (at most the worker count) are
	// legitimately re-run on resume; everything the snapshot marked
	// complete must be skipped.
	if got := int(reExtracted.Load()); got > len(roots)-doneAfterKill+2 {
		t.Fatalf("resume re-extracted %d roots, snapshot already had %d/%d complete", got, doneAfterKill, len(roots))
	}

	clean, _ := NewExtractor(g, opts)
	want := clean.CensusAll(roots, 2)
	for i := range roots {
		if cs[i] == nil {
			t.Fatalf("root %d nil after resumed run", i)
		}
		if !reflect.DeepEqual(cs[i].Counts, want[i].Counts) {
			t.Fatalf("root %d census diverged across kill/resume", i)
		}
	}

	// The resumed extractor can decode its entire vocabulary, including
	// keys that only occur in rows restored from the snapshot.
	fs, err := NewFeatureSet(ex2, cs, VocabularyOf(cs))
	if err != nil {
		t.Fatalf("feature set after resume: %v", err)
	}
	if len(fs.Rows) != len(roots) {
		t.Fatalf("feature set has %d rows, want %d", len(fs.Rows), len(roots))
	}
}

func TestCheckpointKeepsDeterministicDegradation(t *testing.T) {
	// Budget-truncated rows are deterministic; a resume must keep them
	// rather than burn the budget again.
	g := denseGraph(t, 50)
	roots := allRoots(g)[:10]
	path := checkpointPath(t)
	opts := Options{MaxEdges: 4, MaxSubgraphsPerRoot: 200}

	ex1, _ := NewExtractor(g, opts)
	cs1, err := ex1.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var truncated int
	for _, c := range cs1 {
		if c.Flags&FlagBudgetExceeded != 0 {
			truncated++
		}
	}
	if truncated == 0 {
		t.Fatal("budget too large: no truncated rows to test with")
	}

	var reExtracted atomic.Int64
	ex2, _ := NewExtractor(g, opts)
	ex2.hooks = &faultHooks{onRootStart: func(graph.NodeID) { reExtracted.Add(1) }}
	cs2, err := ex2.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if reExtracted.Load() != 0 {
		t.Fatalf("resume of a complete checkpoint re-extracted %d roots", reExtracted.Load())
	}
	for i := range roots {
		if cs2[i].Flags != cs1[i].Flags {
			t.Fatalf("root %d flags %v after resume, want %v", i, cs2[i].Flags, cs1[i].Flags)
		}
		if !reflect.DeepEqual(cs2[i].Counts, cs1[i].Counts) {
			t.Fatalf("root %d counts diverged across resume", i)
		}
	}
}

func TestCheckpointRejectsMismatchedRun(t *testing.T) {
	g := denseGraph(t, 40)
	roots := allRoots(g)[:8]
	path := checkpointPath(t)

	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	if _, err := ex.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		opts  Options
		roots []graph.NodeID
		want  string
	}{
		{"different emax", Options{MaxEdges: 4}, roots, "emax"},
		{"different dmax", Options{MaxEdges: 3, MaxDegree: 5}, roots, "dmax"},
		{"different masking", Options{MaxEdges: 3, MaskRootLabel: true}, roots, "mask_root_label"},
		{"different root count", Options{MaxEdges: 3}, roots[:4], "roots"},
		{"diverged root list", Options{MaxEdges: 3}, append([]graph.NodeID{9}, roots[1:]...), "diverges"},
	}
	for _, tc := range cases {
		ex2, err := NewExtractor(g, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ex2.CensusAllCheckpoint(context.Background(), tc.roots, 2, CheckpointConfig{Path: path, Resume: true})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// A different graph is rejected too.
	g2 := denseGraph(t, 41)
	ex3, _ := NewExtractor(g2, Options{MaxEdges: 3})
	if _, err := ex3.CensusAllCheckpoint(context.Background(), allRoots(g2)[:8], 2, CheckpointConfig{Path: path, Resume: true}); err == nil {
		t.Error("snapshot from a different graph accepted")
	}
}

func TestCheckpointMissingFileStartsFresh(t *testing.T) {
	g := denseGraph(t, 30)
	roots := allRoots(g)[:5]
	path := checkpointPath(t)
	ex, _ := NewExtractor(g, Options{MaxEdges: 2})
	cs, err := ex.CensusAllCheckpoint(context.Background(), roots, 1, CheckpointConfig{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		if c == nil || c.Truncated {
			t.Fatalf("root %d incomplete on fresh resume run", i)
		}
	}
}

func TestCheckpointEmptyPathRejected(t *testing.T) {
	g := denseGraph(t, 10)
	ex, _ := NewExtractor(g, Options{MaxEdges: 2})
	if _, err := ex.CensusAllCheckpoint(context.Background(), allRoots(g), 1, CheckpointConfig{}); err == nil {
		t.Fatal("empty checkpoint path accepted")
	}
}
