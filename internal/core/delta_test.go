package core

import (
	"testing"

	"hsgf/internal/graph"
)

// pathGraph builds 0-1-2-...-(n-1) with a single label.
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for i := 0; i < n; i++ {
		if _, err := b.AddNode("x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func nodeIDs(vs ...int) []graph.NodeID {
	out := make([]graph.NodeID, len(vs))
	for i, v := range vs {
		out[i] = graph.NodeID(v)
	}
	return out
}

func equalIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDirtyRootsPath(t *testing.T) {
	g := pathGraph(t, 9)
	cases := []struct {
		seeds  []graph.NodeID
		radius int
		want   []graph.NodeID
	}{
		{nodeIDs(4), 0, nodeIDs(4)},
		{nodeIDs(4), 1, nodeIDs(3, 4, 5)},
		{nodeIDs(4), 2, nodeIDs(2, 3, 4, 5, 6)},
		{nodeIDs(4), 100, nodeIDs(0, 1, 2, 3, 4, 5, 6, 7, 8)},
		// Ball clipped at the graph edge.
		{nodeIDs(0), 2, nodeIDs(0, 1, 2)},
		{nodeIDs(8), 3, nodeIDs(5, 6, 7, 8)},
		// Multi-source with overlap.
		{nodeIDs(2, 4), 1, nodeIDs(1, 2, 3, 4, 5)},
		// Out-of-range seeds ignored.
		{nodeIDs(4, 99, -1), 1, nodeIDs(3, 4, 5)},
		{nil, 3, nil},
	}
	for i, tc := range cases {
		got := DirtyRoots(g, tc.seeds, tc.radius)
		if !equalIDs(got, tc.want) {
			t.Errorf("case %d: DirtyRoots = %v, want %v", i, got, tc.want)
		}
	}
	if got := DirtyRoots(g, nodeIDs(4), -1); got != nil {
		t.Errorf("negative radius gave %v", got)
	}
}

func TestDirtyRootsStar(t *testing.T) {
	// Star: hub 0 connected to 1..5. Radius 1 from a leaf covers the
	// leaf and the hub; radius 2 covers everything.
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for i := 0; i < 6; i++ {
		if _, err := b.AddNode("x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 6; i++ {
		if err := b.AddEdge(0, graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	if got := DirtyRoots(g, nodeIDs(3), 1); !equalIDs(got, nodeIDs(0, 3)) {
		t.Errorf("radius 1 from leaf = %v", got)
	}
	if got := DirtyRoots(g, nodeIDs(3), 2); !equalIDs(got, nodeIDs(0, 1, 2, 3, 4, 5)) {
		t.Errorf("radius 2 from leaf = %v", got)
	}
}

func TestDirtySetUnionsOldAndNew(t *testing.T) {
	// Old graph: 0-1-2  3-4 (edge 2-3 absent). New graph: 0-1-2-3-4.
	// Touched = {2,3} (the endpoints of the added edge). With radius 1,
	// the old graph contributes {1,2,3,4} and the new contributes
	// {1,2,3,4} as well; with radius 2 the new graph's ball crosses the
	// new edge to reach 0 from 2's side and 4 from 3's side.
	bOld := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	bNew := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for i := 0; i < 5; i++ {
		bOld.AddNode("x")
		bNew.AddNode("x")
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}} {
		if err := bOld.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if err := bNew.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bNew.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	oldG, newG := bOld.MustBuild(), bNew.MustBuild()

	if got := DirtySet(oldG, newG, nodeIDs(2, 3), 1); !equalIDs(got, nodeIDs(1, 2, 3, 4)) {
		t.Errorf("radius 1 union = %v", got)
	}
	if got := DirtySet(oldG, newG, nodeIDs(2, 3), 2); !equalIDs(got, nodeIDs(0, 1, 2, 3, 4)) {
		t.Errorf("radius 2 union = %v", got)
	}
}

func TestDirtySetBridgeRemoval(t *testing.T) {
	// Path 0..5 with the bridge 2-3 removed. When BOTH endpoints of
	// every changed edge are seeded — the engine's invariant — the old-
	// and new-graph balls provably coincide (an old path from a root
	// crosses its first removed edge at a seeded endpoint, and the
	// prefix before that edge survives into the new graph), so the union
	// equals either side. The union in DirtySet is a safety net for
	// callers that seed partially, which the next test exercises.
	old6 := pathGraph(t, 6)
	bNew := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for i := 0; i < 6; i++ {
		bNew.AddNode("x")
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if err := bNew.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	newG := bNew.MustBuild()

	union := DirtySet(old6, newG, nodeIDs(2, 3), 2)
	oldBall := DirtyRoots(old6, nodeIDs(2, 3), 2)
	newBall := DirtyRoots(newG, nodeIDs(2, 3), 2)
	if !equalIDs(union, oldBall) || !equalIDs(union, newBall) {
		t.Errorf("fully-seeded balls diverge: union %v, old %v, new %v", union, oldBall, newBall)
	}
	if !equalIDs(union, nodeIDs(0, 1, 2, 3, 4, 5)) {
		t.Errorf("union = %v, want all of the 6-node path", union)
	}
}

func TestDirtySetPartialSeeding(t *testing.T) {
	// Seed only ONE endpoint of the removed bridge 2-3 of path 0..5.
	// The new-graph ball around {2} cannot cross the gone edge, so the
	// old-graph side of the union is what reaches nodes 3 and 4.
	old6 := pathGraph(t, 6)
	bNew := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for i := 0; i < 6; i++ {
		bNew.AddNode("x")
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if err := bNew.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	newG := bNew.MustBuild()

	newOnly := DirtyRoots(newG, nodeIDs(2), 2)
	if !equalIDs(newOnly, nodeIDs(0, 1, 2)) {
		t.Fatalf("new-graph ball = %v, want [0 1 2]", newOnly)
	}
	got := DirtySet(old6, newG, nodeIDs(2), 2)
	if !equalIDs(got, nodeIDs(0, 1, 2, 3, 4)) {
		t.Errorf("union = %v, want [0 1 2 3 4] (old graph reaches across the removed bridge)", got)
	}
}

func TestDirtySetNilGraphs(t *testing.T) {
	g := pathGraph(t, 4)
	if got := DirtySet(nil, g, nodeIDs(1), 1); !equalIDs(got, nodeIDs(0, 1, 2)) {
		t.Errorf("nil old: %v", got)
	}
	if got := DirtySet(g, nil, nodeIDs(1), 1); !equalIDs(got, nodeIDs(0, 1, 2)) {
		t.Errorf("nil new: %v", got)
	}
	if got := DirtySet(nil, nil, nodeIDs(1), 1); got != nil {
		t.Errorf("both nil: %v", got)
	}
}
