package core

import (
	"sort"

	"hsgf/internal/graph"
)

// Dirty-set derivation for delta-aware census maintenance.
//
// A census row for root r aggregates connected subgraphs of at most
// emax edges that contain r. Any such subgraph is connected and has at
// most emax edges, so every node it contains lies within graph distance
// emax of r. Contrapositive: a mutation whose touched nodes are all
// farther than emax from r cannot add, remove, or relabel anything in
// any subgraph counted for r — r's census row is unchanged. The dirty
// root set after a mutation batch is therefore the union of
// distance-≤emax balls around the touched nodes (edge endpoints,
// relabelled nodes, added nodes).
//
// The radius emax is tight in both directions: a path subgraph of emax
// edges reaches a node at distance exactly emax (so radius emax-1 would
// miss real changes), and no emax-edge connected subgraph reaches
// distance emax+1 (so radius emax+1 recomputes rows that cannot have
// changed).
//
// Edge removals need the ball in the PRE-mutation graph (the removed
// edge may have been the only path from r to the touched region);
// additions need it in the POST-mutation graph. DirtySet takes both and
// unions them.

// DirtyRoots returns all nodes within distance radius of any seed, in
// ascending order: a multi-source BFS truncated at depth radius. Seeds
// outside the graph's node range are ignored (a seed may exist only in
// the other generation of a mutation pair). A negative radius returns
// nil; radius 0 returns the in-range seeds themselves.
func DirtyRoots(g *graph.Graph, seeds []graph.NodeID, radius int) []graph.NodeID {
	if radius < 0 {
		return nil
	}
	marks := make(map[graph.NodeID]struct{}, len(seeds))
	frontier := make([]graph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumNodes() {
			continue
		}
		if _, ok := marks[s]; !ok {
			marks[s] = struct{}{}
			frontier = append(frontier, s)
		}
	}
	for depth := 0; depth < radius && len(frontier) > 0; depth++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if _, ok := marks[w]; !ok {
					marks[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	out := make([]graph.NodeID, 0, len(marks))
	for v := range marks {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtySet returns the union of the distance-≤radius balls around the
// touched nodes in both the pre-mutation and post-mutation graphs, in
// ascending order. Either graph may be nil (e.g. oldG on a cold start),
// in which case only the other contributes.
func DirtySet(oldG, newG *graph.Graph, touched []graph.NodeID, radius int) []graph.NodeID {
	var a, b []graph.NodeID
	if oldG != nil {
		a = DirtyRoots(oldG, touched, radius)
	}
	if newG != nil {
		b = DirtyRoots(newG, touched, radius)
	}
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	// Merge two ascending slices, dropping duplicates.
	out := make([]graph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
