package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hsgf/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testFeatureSet(t *testing.T) *FeatureSet {
	t.Helper()
	g := denseGraph(t, 30)
	ex, err := NewExtractor(g, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	roots := allRoots(g)[:10]
	censuses := ex.CensusAll(roots, 2)
	fs, err := NewFeatureSet(ex, censuses, VocabularyOf(censuses))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFeatureSetSnapshotRoundTrip(t *testing.T) {
	st := testStore(t)
	fs := testFeatureSet(t)
	gen, err := SaveFeatureSetSnapshot(st, fs)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first snapshot got generation %d", gen)
	}
	got, gotGen, err := LoadFeatureSetSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if gotGen != gen {
		t.Fatalf("loaded generation %d, want %d", gotGen, gen)
	}
	if !reflect.DeepEqual(fs, got) {
		t.Fatal("feature set did not round-trip through the store")
	}
}

func TestGraphSnapshotRoundTrip(t *testing.T) {
	st := testStore(t)
	g := denseGraph(t, 40)
	gen, err := SaveGraphSnapshot(st, g)
	if err != nil {
		t.Fatal(err)
	}
	got, gotGen, err := LoadGraphSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if gotGen != gen {
		t.Fatalf("loaded generation %d, want %d", gotGen, gen)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("graph round-trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
}

// TestSnapshotUnknownTrailingSectionRejected proves a snapshot carrying
// a section this reader does not understand is refused with ErrCorrupt
// instead of silently misparsed — the forward-compat contract for
// same-version writers with extensions.
func TestSnapshotUnknownTrailingSectionRejected(t *testing.T) {
	var buf bytes.Buffer
	fs := testFeatureSet(t)
	if err := fs.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sections, err := artifactSections(ArtifactFeatureSet, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sections = append(sections, store.Section{Name: "future-extension", Payload: []byte("v2 data")})
	env := &store.Envelope{Version: store.FormatVersion, Sections: sections}
	if _, err := artifactPayload(env, ArtifactFeatureSet); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("unknown trailing section: got %v, want ErrCorrupt", err)
	}
}

// TestSnapshotFutureSchemaRejected proves a payload schema from the
// future is refused with ErrUnsupportedVersion, not guessed at.
func TestSnapshotFutureSchemaRejected(t *testing.T) {
	meta, err := json.Marshal(artifactMeta{Artifact: ArtifactFeatureSet, Schema: artifactSchema + 1})
	if err != nil {
		t.Fatal(err)
	}
	env := &store.Envelope{Version: store.FormatVersion, Sections: []store.Section{
		{Name: "meta", Payload: meta},
		{Name: ArtifactFeatureSet, Payload: []byte("{}")},
	}}
	_, err = artifactPayload(env, ArtifactFeatureSet)
	if !errors.Is(err, store.ErrUnsupportedVersion) {
		t.Fatalf("future schema: got %v, want ErrUnsupportedVersion", err)
	}
	if errors.Is(err, store.ErrCorrupt) {
		t.Fatal("future schema misclassified as corruption")
	}
}

// TestSnapshotWrongArtifactRejected proves a renamed snapshot (graph
// bytes under a featureset name) cannot decode as the wrong artifact.
func TestSnapshotWrongArtifactRejected(t *testing.T) {
	sections, err := artifactSections(ArtifactGraph, []byte("t 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	env := &store.Envelope{Version: store.FormatVersion, Sections: sections}
	if _, err := artifactPayload(env, ArtifactFeatureSet); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("wrong artifact: got %v, want ErrCorrupt", err)
	}
}

// TestFeatureSetSnapshotQuarantinesInvalidPayload: a generation whose
// envelope verifies but whose FeatureSet payload fails validation is as
// unusable as a torn file — it must be quarantined and the previous
// generation served.
func TestFeatureSetSnapshotQuarantinesInvalidPayload(t *testing.T) {
	st := testStore(t)
	fs := testFeatureSet(t)
	if _, err := SaveFeatureSetSnapshot(st, fs); err != nil {
		t.Fatal(err)
	}
	// A structurally intact envelope wrapping a semantically broken
	// feature set: row references a column outside the vocabulary.
	bad := []byte(`{"max_edges":2,"label_slots":0,"features":[],"roots":[0],` +
		`"rows":[{"columns":[5],"counts":[1]}]}`)
	sections, err := artifactSections(ArtifactFeatureSet, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(ArtifactFeatureSet, sections); err != nil {
		t.Fatal(err)
	}

	got, gen, err := LoadFeatureSetSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("served generation %d, want fallback to 1", gen)
	}
	if !reflect.DeepEqual(fs, got) {
		t.Fatal("fallback feature set diverged")
	}
	quarantined, err := filepath.Glob(filepath.Join(st.Dir(), "*.corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 {
		t.Fatalf("%d quarantined files, want 1", len(quarantined))
	}
}

// TestCheckpointLegacyJSONStillResumes: checkpoints written before the
// envelope format (bare JSON) must still load, so an upgrade never
// invalidates an in-progress extraction.
func TestCheckpointLegacyJSONStillResumes(t *testing.T) {
	g := denseGraph(t, 40)
	roots := allRoots(g)[:12]
	path := filepath.Join(t.TempDir(), "legacy.ckpt")

	// Produce a complete modern checkpoint, then rewrite it in the
	// legacy bare-JSON layout.
	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	want, err := ex.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := readCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resuming from the legacy file must complete instantly with the
	// same censuses and work for the info reader too.
	ex2, _ := NewExtractor(g, Options{MaxEdges: 3})
	got, err := ex2.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range roots {
		if !reflect.DeepEqual(want[i].Counts, got[i].Counts) {
			t.Fatalf("root %d diverged resuming from a legacy checkpoint", i)
		}
	}
	total, done, _, err := ReadCensusCheckpointInfo(path)
	if err != nil || total != len(roots) || done != len(roots) {
		t.Fatalf("legacy info = %d/%d (err %v)", done, total, err)
	}
}

// TestCheckpointFutureVersionRejected: a checkpoint from a future
// schema revision is refused with a typed ErrUnsupportedVersion on both
// the resume and the info paths.
func TestCheckpointFutureVersionRejected(t *testing.T) {
	g := denseGraph(t, 30)
	roots := allRoots(g)[:8]
	path := filepath.Join(t.TempDir(), "future.ckpt")
	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	if _, err := ex.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path}); err != nil {
		t.Fatal(err)
	}
	snap, err := readCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Version = checkpointVersion + 1
	if err := writeCheckpointFile(path, snap); err != nil {
		t.Fatal(err)
	}

	ex2, _ := NewExtractor(g, Options{MaxEdges: 3})
	_, err = ex2.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path, Resume: true})
	if !errors.Is(err, store.ErrUnsupportedVersion) {
		t.Fatalf("resume from future checkpoint: got %v, want ErrUnsupportedVersion", err)
	}
	if _, _, _, err := ReadCensusCheckpointInfo(path); !errors.Is(err, store.ErrUnsupportedVersion) {
		t.Fatalf("info from future checkpoint: got %v, want ErrUnsupportedVersion", err)
	}
}

// TestCheckpointCorruptEnvelopeTyped: damage to a checkpoint file
// surfaces as typed corruption, never a panic or a misparse.
func TestCheckpointCorruptEnvelopeTyped(t *testing.T) {
	g := denseGraph(t, 30)
	roots := allRoots(g)[:8]
	path := filepath.Join(t.TempDir(), "corrupt.ckpt")
	ex, _ := NewExtractor(g, Options{MaxEdges: 3})
	if _, err := ex.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ex2, _ := NewExtractor(g, Options{MaxEdges: 3})
	_, err = ex2.CensusAllCheckpoint(context.Background(), roots, 2, CheckpointConfig{Path: path, Resume: true})
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("resume from corrupt checkpoint: got %v, want ErrCorrupt", err)
	}
}

// TestGraphSnapshotRotation: repeated graph writes rotate generations
// and the loader always serves the newest good one.
func TestGraphSnapshotRotation(t *testing.T) {
	st := testStore(t)
	sizes := []int{20, 30, 40}
	for _, n := range sizes {
		if _, err := SaveGraphSnapshot(st, denseGraph(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	g, gen, err := LoadGraphSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if gen != uint64(len(sizes)) {
		t.Fatalf("generation %d, want %d", gen, len(sizes))
	}
	if g.NumNodes() != 40 {
		t.Fatalf("latest graph has %d nodes, want 40", g.NumNodes())
	}
}
