package core

import (
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

// These differential tests pin the property the whole sharded serving
// tier rests on: a census extracted inside a shard's halo snapshot is
// byte-equivalent to the census the full graph produces for the same
// root. A subgraph with at most emax edges never leaves the root's
// distance-<=emax ball, so a halo of depth >= emax (>= emax+1 under
// dmax pruning, which consults full-graph degrees) captures everything
// enumeration can touch.

func shardingTestGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("loc", "org", "act"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			u := rng.Intn(n)
			if u != v {
				if err := b.AddEdge(graph.NodeID(v), graph.NodeID(u)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.MustBuild()
}

// decodedCounts renders a census as decoded-encoding -> count, the
// graph-independent comparison key (raw hash keys are also identical
// across extractors, but the decoded form localises failures).
func decodedCounts(ex *Extractor, c *Census) map[string]int64 {
	out := make(map[string]int64, len(c.Counts))
	for key, count := range c.Counts {
		out[ex.EncodingString(key)] += count
	}
	return out
}

func assertShardCensusEquivalence(t *testing.T, g *graph.Graph, opts Options, haloDepth, nShards int) {
	t.Helper()
	fullEx, err := NewExtractor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: nShards, HaloDepth: haloDepth})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidatePartition(g, plans); err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		shardEx, err := NewExtractor(p.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		g2l := p.GlobalToLocal()
		for _, root := range p.OwnedRoots {
			full := fullEx.Census(root)
			shard := shardEx.Census(g2l[root])
			if full.Subgraphs != shard.Subgraphs {
				t.Fatalf("shard %d root %d: %d subgraphs in shard, %d in full graph",
					p.Shard, root, shard.Subgraphs, full.Subgraphs)
			}
			fullC, shardC := decodedCounts(fullEx, full), decodedCounts(shardEx, shard)
			if len(fullC) != len(shardC) {
				t.Fatalf("shard %d root %d: %d encodings in shard, %d in full graph",
					p.Shard, root, len(shardC), len(fullC))
			}
			for enc, n := range fullC {
				if shardC[enc] != n {
					t.Fatalf("shard %d root %d: encoding %s = %d in shard, %d in full graph",
						p.Shard, root, enc, shardC[enc], n)
				}
			}
		}
	}
}

// TestShardCensusEquivalence: halo depth == emax, no dmax — every owned
// root's census over the shard snapshot matches the full graph exactly.
func TestShardCensusEquivalence(t *testing.T) {
	g := shardingTestGraph(t, 220, 5)
	assertShardCensusEquivalence(t, g, Options{MaxEdges: 3}, 3, 4)
}

// TestShardCensusEquivalenceWithDmax: with hub pruning active the halo
// needs one extra hop so boundary nodes keep their true degrees.
func TestShardCensusEquivalenceWithDmax(t *testing.T) {
	g := shardingTestGraph(t, 220, 9)
	dmax := graph.DegreePercentile(g, 0.9)
	assertShardCensusEquivalence(t, g, Options{MaxEdges: 3, MaxDegree: dmax}, 4, 4)
}

// TestShardCensusEquivalenceMaskedRoot: root-label masking rides along
// unchanged through the partition.
func TestShardCensusEquivalenceMaskedRoot(t *testing.T) {
	g := shardingTestGraph(t, 150, 13)
	assertShardCensusEquivalence(t, g, Options{MaxEdges: 2, MaskRootLabel: true}, 2, 5)
}
