package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// Binary graph persistence: the boot-path format for graphs too large
// to re-parse from TSV. Snapshots are written under the "graphbin"
// kind in the same envelope framing as every other artifact, and the
// mapped loader aliases the CSR arrays straight out of a read-only
// memory mapping — load cost is envelope verification, not graph
// reconstruction, and resident cost is page-cache pages shared across
// processes.
//
// TSV ("graph") stays the exchange format. SaveGraphSnapshots writes
// both kinds in lockstep so either loader observes every rotation;
// LoadGraphSnapshotAuto serves whichever kind is newest.

// SaveGraphBinarySnapshot writes g into st as the next "graphbin"
// generation. The binary payload's array sections are aligned relative
// to the enclosing file (via store.PayloadOffset), so a later mapped
// load can alias them without copying.
func SaveGraphBinarySnapshot(st *store.Store, g *graph.Graph) (uint64, error) {
	// Frame with an empty payload first: the payload's file offset
	// depends only on the envelope header and the sections before it,
	// so it is known before the payload is encoded.
	sections, err := artifactSections(ArtifactGraphBin, nil)
	if err != nil {
		return 0, err
	}
	fileBase := store.PayloadOffset(sections, 1)
	payload, err := graph.EncodeBinary(g, fileBase)
	if err != nil {
		return 0, err
	}
	sections[1].Payload = payload
	return st.Write(ArtifactGraphBin, sections)
}

// LoadGraphSnapshotMapped loads the newest "graphbin" generation that
// passes envelope verification and binary decoding, quarantining
// failures like every other loader. When the platform allows, the
// returned graph's CSR arrays alias a read-only memory mapping that the
// graph pins for the remaining process lifetime (accessors return
// sub-slices of the mapped arrays, so no per-object lifetime is sound —
// see graph.PinBacking); callers treat the result exactly like any
// other *graph.Graph.
func LoadGraphSnapshotMapped(st *store.Store) (*graph.Graph, uint64, error) {
	var g *graph.Graph
	var aliased bool
	m, _, gen, err := st.LoadLatestMapped(ArtifactGraphBin, func(env *store.Envelope) error {
		payload, err := artifactPayload(env, ArtifactGraphBin)
		if err != nil {
			return err
		}
		decoded, wasAliased, err := graph.DecodeBinary(payload, true)
		if err != nil {
			return fmt.Errorf("%w: %v", store.ErrCorrupt, err)
		}
		g, aliased = decoded, wasAliased
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if aliased {
		// The graph's slices point into the mapping, and accessors hand
		// out sub-slices that do not keep the graph reachable — a
		// finalizer on the graph could munmap under a live Neighbors
		// result. Pin the mapping instead; it is released at process
		// exit.
		g.PinBacking(m)
	} else {
		// Decode copied everything (alignment or platform fallback);
		// the mapping is no longer referenced.
		m.Close()
	}
	return g, gen, nil
}

// SaveGraphSnapshots writes g as both a TSV "graph" and a binary
// "graphbin" generation. Writing both keeps the two kinds' generation
// clocks advancing together, so LoadGraphSnapshotAuto — and older
// tooling that only understands TSV — both observe the rotation. The
// returned generation is the binary one.
func SaveGraphSnapshots(st *store.Store, g *graph.Graph) (uint64, error) {
	if _, err := SaveGraphSnapshot(st, g); err != nil {
		return 0, err
	}
	return SaveGraphBinarySnapshot(st, g)
}

// LoadGraphSnapshotAuto serves the newest graph snapshot across both
// kinds: binary when its newest generation is at least as new as the
// TSV one (dual-written snapshots tie, and the cheap mapped load
// wins), TSV when it is strictly newer (a writer that only knows TSV
// rotated since the last dual write). If the preferred kind
// quarantines its way below the other kind's newest generation — a
// corrupted binary must not shadow an intact TSV of the same
// rotation — the other kind is tried and the newer loadable
// generation wins.
func LoadGraphSnapshotAuto(st *store.Store) (*graph.Graph, uint64, error) {
	binGens, err := st.Generations(ArtifactGraphBin)
	if err != nil {
		return nil, 0, err
	}
	tsvGens, err := st.Generations(ArtifactGraph)
	if err != nil {
		return nil, 0, err
	}
	newest := func(gens []uint64) uint64 {
		if len(gens) == 0 {
			return 0
		}
		return gens[len(gens)-1]
	}
	first, second := LoadGraphSnapshotMapped, LoadGraphSnapshot
	secondNewest := newest(tsvGens)
	if len(binGens) == 0 || newest(binGens) < newest(tsvGens) {
		first, second = LoadGraphSnapshot, LoadGraphSnapshotMapped
		secondNewest = newest(binGens)
	}
	g, gen, err := first(st)
	if err != nil && !errors.Is(err, store.ErrNotFound) {
		return nil, 0, err
	}
	if err == nil && gen >= secondNewest {
		return g, gen, nil
	}
	// The preferred kind had nothing loadable, or corruption
	// quarantine walked it below the other kind's newest generation.
	g2, gen2, err2 := second(st)
	if err2 == nil && (err != nil || gen2 > gen) {
		return g2, gen2, nil
	}
	if err == nil {
		return g, gen, nil
	}
	if err2 != nil && !errors.Is(err2, store.ErrNotFound) {
		return nil, 0, err2
	}
	return nil, 0, err
}

// ReadGraphFile reads a graph from path in whichever format the bytes
// declare: a store envelope holding a binary or TSV graph artifact, or
// a legacy bare TSV file. This is the import path for CLI `-in` flags,
// so operators can hand any graph artifact to any tool.
func ReadGraphFile(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !store.IsEnvelope(data) {
		return graph.ReadTSV(bytes.NewReader(data))
	}
	env, err := store.ParseEnvelope(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if payload, err := artifactPayload(env, ArtifactGraphBin); err == nil {
		g, _, err := graph.DecodeBinary(payload, false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return g, nil
	}
	payload, err := artifactPayload(env, ArtifactGraph)
	if err != nil {
		return nil, fmt.Errorf("%s: not a graph artifact: %w", path, err)
	}
	return graph.ReadTSV(bytes.NewReader(payload))
}
