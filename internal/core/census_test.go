package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hsgf/internal/graph"
)

func randomLabelled(rng *rand.Rand, n, labels int, p float64) *graph.Graph {
	names := make([]string, labels)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet(names...))
	for i := 0; i < n; i++ {
		b.AddNode(names[rng.Intn(labels)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

// censusAsCanonical runs the optimised census and re-keys it canonically.
func censusAsCanonical(t *testing.T, g *graph.Graph, root graph.NodeID, opts Options) map[string]int64 {
	t.Helper()
	e, err := NewExtractor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Census(root)
	m, err := CanonicalCounts(e, c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCensusTrianglePlusPendant(t *testing.T) {
	// Root a in: triangle a-b-c plus pendant d on c, all label "x".
	// Hand-enumerated connected subgraphs containing a with <= 2 edges:
	//   1 edge:  {ab}, {ac}                                  -> 2 subgraphs
	//   2 edges: {ab,ac}, {ab,bc}, {ac,bc}, {ac,cd}          -> 4 subgraphs
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	a, _ := b.AddNode("x")
	bb, _ := b.AddNode("x")
	c, _ := b.AddNode("x")
	d, _ := b.AddNode("x")
	b.AddEdge(a, bb)
	b.AddEdge(a, c)
	b.AddEdge(bb, c)
	b.AddEdge(c, d)
	g := b.MustBuild()

	e, err := NewExtractor(g, Options{MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	cen := e.Census(a)
	if cen.Subgraphs != 6 {
		t.Errorf("Subgraphs = %d, want 6", cen.Subgraphs)
	}
	var total int64
	for _, n := range cen.Counts {
		total += n
	}
	if total != 6 {
		t.Errorf("sum of counts = %d, want 6", total)
	}
	// Two distinct encodings: single edge (x1 x1) and path (x1 x1 x2
	// variants all identical as all labels equal). Paths of length 2 all
	// share the encoding "two degree-1 nodes + one degree-2 node".
	if len(cen.Counts) != 2 {
		t.Errorf("distinct encodings = %d, want 2", len(cen.Counts))
	}
}

func TestCensusMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := randomLabelled(rng, 3+rng.Intn(9), 1+rng.Intn(3), 0.15+rng.Float64()*0.45)
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		opts := Options{
			MaxEdges:      1 + rng.Intn(4),
			MaskRootLabel: rng.Intn(2) == 0,
		}
		got := censusAsCanonical(t, g, root, opts)
		want := ReferenceCensus(g, root, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%v, root %d, opts %+v):\n got  %v\n want %v",
				trial, g, root, opts, got, want)
		}
	}
}

func TestCensusMatchesReferenceWithDmax(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		g := randomLabelled(rng, 4+rng.Intn(8), 1+rng.Intn(3), 0.2+rng.Float64()*0.4)
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		opts := Options{
			MaxEdges:  1 + rng.Intn(4),
			MaxDegree: 1 + rng.Intn(4),
		}
		got := censusAsCanonical(t, g, root, opts)
		want := ReferenceCensus(g, root, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (root %d, opts %+v):\n got  %v\n want %v",
				trial, root, opts, got, want)
		}
	}
}

func TestCensusKeyModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := randomLabelled(rng, 4+rng.Intn(8), 1+rng.Intn(4), 0.3)
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		base := Options{MaxEdges: 3, MaskRootLabel: trial%2 == 0}

		rolling := base
		rolling.KeyMode = RollingHash
		strMode := base
		strMode.KeyMode = CanonicalString

		got := censusAsCanonical(t, g, root, rolling)
		want := censusAsCanonical(t, g, root, strMode)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: key modes disagree:\n rolling %v\n string  %v", trial, got, want)
		}
	}
}

func TestCensusLeafBatchingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomLabelled(rng, 5+rng.Intn(10), 1+rng.Intn(3), 0.3)
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		on := Options{MaxEdges: 1 + rng.Intn(4)}
		off := on
		off.DisableLeafBatching = true
		got := censusAsCanonical(t, g, root, on)
		want := censusAsCanonical(t, g, root, off)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: leaf batching changes results:\n on  %v\n off %v", trial, got, want)
		}
	}
}

func TestCensusStarLeafBatchingCounts(t *testing.T) {
	// Star with 6 same-labelled leaves, emax = 1: six identical subgraphs
	// counted via the batched path.
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("h", "l"))
	hub, _ := b.AddNode("h")
	for i := 0; i < 6; i++ {
		leaf, _ := b.AddNode("l")
		b.AddEdge(hub, leaf)
	}
	g := b.MustBuild()
	e, _ := NewExtractor(g, Options{MaxEdges: 1})
	c := e.Census(hub)
	if c.Subgraphs != 6 {
		t.Errorf("Subgraphs = %d, want 6", c.Subgraphs)
	}
	if len(c.Counts) != 1 {
		t.Errorf("distinct encodings = %d, want 1", len(c.Counts))
	}
	for key, n := range c.Counts {
		if n != 6 {
			t.Errorf("count = %d, want 6", n)
		}
		if _, ok := e.Decode(key); !ok {
			t.Error("batched key has no representative")
		}
	}
}

func TestCensusDmaxHubIncludedNotExplored(t *testing.T) {
	// root - hub - far: with dmax below the hub degree, subgraphs may
	// include the hub (its label is kept) but never the far node.
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("r", "h", "f"))
	root, _ := b.AddNode("r")
	hub, _ := b.AddNode("h")
	far, _ := b.AddNode("f")
	b.AddEdge(root, hub)
	b.AddEdge(hub, far)
	// Inflate the hub degree.
	for i := 0; i < 5; i++ {
		x, _ := b.AddNode("f")
		b.AddEdge(hub, x)
	}
	g := b.MustBuild()

	e, _ := NewExtractor(g, Options{MaxEdges: 3, MaxDegree: 2})
	c := e.Census(root)
	// Only the single subgraph {root-hub} is reachable.
	if c.Subgraphs != 1 {
		t.Fatalf("Subgraphs = %d, want 1", c.Subgraphs)
	}
	for key := range c.Counts {
		s, _ := e.Decode(key)
		if s.NumNodes() != 2 {
			t.Errorf("subgraph has %d nodes, want 2 (root+hub only)", s.NumNodes())
		}
	}

	// The root itself is exempt: raising dmax above the hub degree but
	// keeping it below the root degree must not block exploration from
	// the root.
	b2 := graph.NewBuilderWithAlphabet(graph.MustAlphabet("r", "l"))
	root2, _ := b2.AddNode("r")
	for i := 0; i < 8; i++ {
		leaf, _ := b2.AddNode("l")
		b2.AddEdge(root2, leaf)
	}
	g2 := b2.MustBuild()
	e2, _ := NewExtractor(g2, Options{MaxEdges: 2, MaxDegree: 3})
	c2 := e2.Census(root2)
	// 8 single edges + C(8,2) cherries = 8 + 28 = 36.
	if c2.Subgraphs != 36 {
		t.Errorf("Subgraphs = %d, want 36 (root exempt from dmax)", c2.Subgraphs)
	}
}

func TestCensusRootMaskingChangesKeysNotCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomLabelled(rng, 12, 3, 0.3)
	root := graph.NodeID(0)
	plain, _ := NewExtractor(g, Options{MaxEdges: 3})
	masked, _ := NewExtractor(g, Options{MaxEdges: 3, MaskRootLabel: true})
	cp := plain.Census(root)
	cm := masked.Census(root)
	if cp.Subgraphs != cm.Subgraphs {
		t.Errorf("masking changed total subgraph count: %d vs %d", cp.Subgraphs, cm.Subgraphs)
	}
	if masked.LabelSlots() != plain.LabelSlots()+1 {
		t.Errorf("masked extractor has %d slots, want %d", masked.LabelSlots(), plain.LabelSlots()+1)
	}
}

func TestCensusAllParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomLabelled(rng, 40, 3, 0.15)
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	e, _ := NewExtractor(g, Options{MaxEdges: 3, MaskRootLabel: true})

	serial := e.CensusAll(roots, 1)
	parallel := e.CensusAll(roots, 4)
	for i := range roots {
		if !reflect.DeepEqual(serial[i].Counts, parallel[i].Counts) {
			t.Fatalf("root %d: parallel census differs from serial", roots[i])
		}
	}
}

func TestCensusAllTimed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomLabelled(rng, 20, 2, 0.2)
	roots := []graph.NodeID{0, 1, 2, 3}
	e, _ := NewExtractor(g, Options{MaxEdges: 3})
	cs, times := e.CensusAllTimed(roots, 2)
	if len(cs) != len(roots) || len(times) != len(roots) {
		t.Fatalf("lengths: %d censuses, %d times, want %d", len(cs), len(times), len(roots))
	}
	for i, c := range cs {
		if c == nil || c.Root != roots[i] {
			t.Errorf("census %d misaligned", i)
		}
		if times[i] < 0 {
			t.Errorf("negative duration at %d", i)
		}
	}
	// Empty root list is fine.
	cs2, times2 := e.CensusAllTimed(nil, 4)
	if len(cs2) != 0 || len(times2) != 0 {
		t.Error("empty roots should produce empty results")
	}
}

func TestCensusIsolatedRoot(t *testing.T) {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a"))
	v, _ := b.AddNode("a")
	g := b.MustBuild()
	e, _ := NewExtractor(g, Options{MaxEdges: 3})
	c := e.Census(v)
	if c.Subgraphs != 0 || len(c.Counts) != 0 {
		t.Errorf("isolated node census should be empty, got %d subgraphs", c.Subgraphs)
	}
}

func TestCensusRepeatedOnSameWorkerStateClean(t *testing.T) {
	// Running censuses for many roots through one extractor must not leak
	// state between roots: compare against fresh extractors.
	rng := rand.New(rand.NewSource(31))
	g := randomLabelled(rng, 15, 2, 0.3)
	e, _ := NewExtractor(g, Options{MaxEdges: 3})
	for v := 0; v < g.NumNodes(); v++ {
		got := e.Census(graph.NodeID(v))
		fresh, _ := NewExtractor(g, Options{MaxEdges: 3})
		want := fresh.Census(graph.NodeID(v))
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Fatalf("root %d: extractor state leaked between censuses", v)
		}
	}
}

func TestNewExtractorValidation(t *testing.T) {
	g := randomLabelled(rand.New(rand.NewSource(1)), 5, 2, 0.5)
	if _, err := NewExtractor(g, Options{MaxEdges: 0}); err == nil {
		t.Error("MaxEdges 0 must be rejected")
	}
	if _, err := NewExtractor(g, Options{MaxEdges: -1}); err == nil {
		t.Error("negative MaxEdges must be rejected")
	}
}

func TestKeyModeString(t *testing.T) {
	if RollingHash.String() != "rolling-hash" {
		t.Error("RollingHash name")
	}
	if CanonicalString.String() != "canonical-string" {
		t.Error("CanonicalString name")
	}
	if KeyMode(9).String() != "KeyMode(9)" {
		t.Error("unknown mode name")
	}
}

func TestEncodingStringUnknownKey(t *testing.T) {
	g := randomLabelled(rand.New(rand.NewSource(1)), 5, 2, 0.5)
	e, _ := NewExtractor(g, Options{MaxEdges: 2})
	if s := e.EncodingString(0xdeadbeef); s == "" {
		t.Error("unknown key should render a placeholder")
	}
}

func TestCensusEmaxGrowsFeatureSpace(t *testing.T) {
	// Larger emax must never shrink the census (paper §3.1: higher emax
	// gives more discriminative features at higher cost).
	rng := rand.New(rand.NewSource(77))
	g := randomLabelled(rng, 14, 3, 0.3)
	root := graph.NodeID(0)
	prevDistinct, prevTotal := 0, int64(0)
	for emax := 1; emax <= 4; emax++ {
		e, _ := NewExtractor(g, Options{MaxEdges: emax})
		c := e.Census(root)
		if len(c.Counts) < prevDistinct {
			t.Errorf("emax %d: distinct encodings shrank from %d to %d", emax, prevDistinct, len(c.Counts))
		}
		if c.Subgraphs < prevTotal {
			t.Errorf("emax %d: total subgraphs shrank", emax)
		}
		prevDistinct, prevTotal = len(c.Counts), c.Subgraphs
	}
}

func ExampleExtractor_Census() {
	// A minimal publication network: one institution, one author, one
	// paper: I - A - P.
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("I", "A", "P"))
	inst, _ := b.AddNode("I")
	auth, _ := b.AddNode("A")
	pap, _ := b.AddNode("P")
	b.AddEdge(inst, auth)
	b.AddEdge(auth, pap)
	g := b.MustBuild()

	e, _ := NewExtractor(g, Options{MaxEdges: 2})
	c := e.Census(inst)
	fmt.Println("subgraphs:", c.Subgraphs)
	fmt.Println("distinct encodings:", len(c.Counts))
	// Output:
	// subgraphs: 2
	// distinct encodings: 2
}
