package core

import (
	"errors"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"testing"

	"hsgf/internal/graph"
	"hsgf/internal/store"
)

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMappedGraphBehavesIdentically is the property test pinning the
// whole binary path: a graph saved as a binary snapshot and loaded back
// through the mapped path must be observationally identical to the
// Builder-built original — same Edges iteration, same alphabet, and
// byte-for-byte the same census rows under the production extractor.
func TestMappedGraphBehavesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		orig := randomLabelled(rng, 8+rng.Intn(24), 1+rng.Intn(3), 0.15+rng.Float64()*0.3)
		st := openTestStore(t)
		if _, err := SaveGraphBinarySnapshot(st, orig); err != nil {
			t.Fatal(err)
		}
		loaded, gen, err := LoadGraphSnapshotMapped(st)
		if err != nil {
			t.Fatal(err)
		}
		if gen != 1 {
			t.Fatalf("generation %d, want 1", gen)
		}
		if loaded.NumNodes() != orig.NumNodes() || loaded.NumEdges() != orig.NumEdges() {
			t.Fatalf("shape changed: %v vs %v", loaded, orig)
		}
		if !reflect.DeepEqual(loaded.Alphabet().Names(), orig.Alphabet().Names()) {
			t.Fatal("alphabet changed across the mapped round trip")
		}
		var origEdges, loadedEdges [][2]graph.NodeID
		orig.Edges(func(u, v graph.NodeID) bool { origEdges = append(origEdges, [2]graph.NodeID{u, v}); return true })
		loaded.Edges(func(u, v graph.NodeID) bool { loadedEdges = append(loadedEdges, [2]graph.NodeID{u, v}); return true })
		if !reflect.DeepEqual(origEdges, loadedEdges) {
			t.Fatal("Edges iteration changed across the mapped round trip")
		}

		opts := Options{MaxEdges: 2, KeyMode: KeyMode(rng.Intn(2)), MaskRootLabel: rng.Intn(2) == 0}
		eo, err := NewExtractor(orig, opts)
		if err != nil {
			t.Fatal(err)
		}
		el, err := NewExtractor(loaded, opts)
		if err != nil {
			t.Fatal(err)
		}
		co := eo.CensusAll(allRoots(orig), 2)
		cl := el.CensusAll(allRoots(loaded), 2)
		for i := range co {
			if co[i].Subgraphs != cl[i].Subgraphs || !reflect.DeepEqual(co[i].Counts, cl[i].Counts) {
				t.Fatalf("trial %d: census of root %d diverged on the mapped graph", trial, i)
			}
		}
	}
}

// TestMappedLoadQuarantinesAndFallsBack damages the newest binary
// generation on disk; the mapped loader must quarantine it and serve
// the older good one, mirroring the TSV loader's crash-safety story.
func TestMappedLoadQuarantinesAndFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gOld := randomLabelled(rng, 12, 2, 0.3)
	gNew := randomLabelled(rng, 20, 2, 0.3)

	for name, damage := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)*2/3] },
		"bit-flip":  func(b []byte) []byte { b[len(b)/3] ^= 0x10; return b },
	} {
		t.Run(name, func(t *testing.T) {
			st := openTestStore(t)
			if _, err := SaveGraphBinarySnapshot(st, gOld); err != nil {
				t.Fatal(err)
			}
			gen2, err := SaveGraphBinarySnapshot(st, gNew)
			if err != nil {
				t.Fatal(err)
			}
			path := st.Path(ArtifactGraphBin, gen2)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage(append([]byte{}, pristine...)), 0o644); err != nil {
				t.Fatal(err)
			}
			g, gen, err := LoadGraphSnapshotMapped(st)
			if err != nil {
				t.Fatal(err)
			}
			if gen == gen2 {
				t.Fatal("damaged generation served")
			}
			if g.NumNodes() != gOld.NumNodes() {
				t.Fatalf("served %d nodes, want the older generation's %d", g.NumNodes(), gOld.NumNodes())
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("damaged generation not quarantined: %v", err)
			}
		})
	}
}

// TestSaveGraphSnapshotsDualWrite checks both kinds rotate together and
// the auto loader prefers the binary side of a dual write.
func TestSaveGraphSnapshotsDualWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomLabelled(rng, 15, 2, 0.3)
	st := openTestStore(t)
	if _, err := SaveGraphSnapshots(st, g); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{ArtifactGraph, ArtifactGraphBin} {
		gens, err := st.Generations(kind)
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) != 1 {
			t.Fatalf("kind %q has generations %v, want exactly one", kind, gens)
		}
	}
	loaded, _, err := LoadGraphSnapshotAuto(st)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Fatal("auto load changed the graph")
	}
}

// TestAutoLoadServesNewerTSV pins the compatibility contract: a writer
// that only knows TSV (an older tool sharing the store) rotates the
// "graph" kind past the last dual write, and the auto loader must serve
// that newer TSV graph, not the stale binary one.
func TestAutoLoadServesNewerTSV(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	gOld := randomLabelled(rng, 10, 2, 0.3)
	gNew := randomLabelled(rng, 30, 2, 0.3)
	st := openTestStore(t)
	if _, err := SaveGraphSnapshots(st, gOld); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveGraphSnapshot(st, gNew); err != nil { // TSV-only writer
		t.Fatal(err)
	}
	loaded, _, err := LoadGraphSnapshotAuto(st)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != gNew.NumNodes() {
		t.Fatalf("auto load served %d nodes, want the newer TSV graph's %d", loaded.NumNodes(), gNew.NumNodes())
	}
}

// TestAutoLoadRecoversNewerTSVAfterBinQuarantine pins the cross-kind
// corruption contract: when the newest binary generation is damaged, a
// dual-written store still holds an intact TSV of the same rotation —
// the auto loader must serve that, not fall back to an older binary
// generation and silently lose the last write.
func TestAutoLoadRecoversNewerTSVAfterBinQuarantine(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	gOld := randomLabelled(rng, 10, 2, 0.3)
	gNew := randomLabelled(rng, 30, 2, 0.3)
	st := openTestStore(t)
	if _, err := SaveGraphSnapshots(st, gOld); err != nil {
		t.Fatal(err)
	}
	binGen, err := SaveGraphSnapshots(st, gNew)
	if err != nil {
		t.Fatal(err)
	}
	path := st.Path(ArtifactGraphBin, binGen)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, gen, err := LoadGraphSnapshotAuto(st)
	if err != nil {
		t.Fatal(err)
	}
	if gen != binGen {
		t.Fatalf("auto load served generation %d, want the intact TSV at %d", gen, binGen)
	}
	if loaded.NumNodes() != gNew.NumNodes() {
		t.Fatalf("auto load served %d nodes, want the newest graph's %d", loaded.NumNodes(), gNew.NumNodes())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged binary generation not quarantined: %v", err)
	}
}

// TestAutoLoadSingleKindFallbacks covers stores holding only one kind.
func TestAutoLoadSingleKindFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := randomLabelled(rng, 10, 2, 0.3)

	tsvOnly := openTestStore(t)
	if _, err := SaveGraphSnapshot(tsvOnly, g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadGraphSnapshotAuto(tsvOnly); err != nil {
		t.Fatalf("tsv-only store: %v", err)
	}

	binOnly := openTestStore(t)
	if _, err := SaveGraphBinarySnapshot(binOnly, g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadGraphSnapshotAuto(binOnly); err != nil {
		t.Fatalf("binary-only store: %v", err)
	}

	if _, _, err := LoadGraphSnapshotAuto(openTestStore(t)); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("empty store gave %v, want ErrNotFound", err)
	}
}

// TestReadGraphFileSniffsFormats feeds every on-disk graph shape through
// the one-call import path.
func TestReadGraphFileSniffsFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := randomLabelled(rng, 12, 2, 0.3)
	st := openTestStore(t)
	tsvGen, err := SaveGraphSnapshot(st, g)
	if err != nil {
		t.Fatal(err)
	}
	binGen, err := SaveGraphBinarySnapshot(st, g)
	if err != nil {
		t.Fatal(err)
	}
	bare := st.Dir() + "/bare.tsv"
	f, err := os.Create(bare)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteTSV(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for name, path := range map[string]string{
		"tsv-envelope":    st.Path(ArtifactGraph, tsvGen),
		"binary-envelope": st.Path(ArtifactGraphBin, binGen),
		"bare-tsv":        bare,
	} {
		loaded, err := ReadGraphFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: graph changed", name)
		}
	}
	if _, err := ReadGraphFile(st.Dir() + "/absent"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestMappedLoadIsZeroCopy asserts the acceptance criterion that the
// mapped boot path allocates O(1) heap for CSR payloads: loading a graph
// whose CSR arrays span megabytes must cost only envelope bookkeeping,
// not bytes proportional to the payload.
func TestMappedLoadIsZeroCopy(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under the race detector")
	}
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("zero-copy mapping is unix-only")
	}
	// ~200k incidences => ~3.2MB of CSR payload.
	rng := rand.New(rand.NewSource(77))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b", "c"))
	const n = 20000
	for i := 0; i < n; i++ {
		b.AddLabeledNode(graph.Label(i % 3))
	}
	for i := 0; i < 5*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	g := b.MustBuild()
	st := openTestStore(t)
	if _, err := SaveGraphBinarySnapshot(st, g); err != nil {
		t.Fatal(err)
	}
	payloadBytes := 4 * (len(allRoots(g)) + 6*g.NumEdges()) // labels + 3×incidence arrays, roughly

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	loaded, _, err := LoadGraphSnapshotMapped(st)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	heap := int(after.TotalAlloc - before.TotalAlloc)
	if heap > payloadBytes/16 {
		t.Fatalf("mapped load allocated %d heap bytes for a ~%d byte CSR payload; the zero-copy path is not engaging", heap, payloadBytes)
	}
	runtime.KeepAlive(loaded)
}
