package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hsgf/internal/graph"
)

func TestFeatureSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomLabelled(rng, 20, 3, 0.25)
	roots := []graph.NodeID{0, 1, 2, 3, 4}
	ex, err := NewExtractor(g, Options{MaxEdges: 3, MaskRootLabel: true})
	if err != nil {
		t.Fatal(err)
	}
	censuses := ex.CensusAll(roots, 2)
	vocab := VocabularyOf(censuses)

	fs, err := NewFeatureSet(ex, censuses, vocab)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Features) != vocab.Len() {
		t.Fatalf("features = %d, want %d", len(fs.Features), vocab.Len())
	}
	if fs.SlotNames[len(fs.SlotNames)-1] != MaskedLabelName {
		t.Errorf("last slot = %q, want masked marker", fs.SlotNames[len(fs.SlotNames)-1])
	}

	var buf bytes.Buffer
	if err := fs.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fs2, err := ReadFeatureSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, fs2) {
		t.Fatal("feature set round trip mismatch")
	}

	// Dense expansion agrees with Matrix.
	want := Matrix(censuses, vocab)
	got := fs2.Dense()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Dense() disagrees with Matrix()")
	}
	// Rows are column sorted.
	for _, row := range fs2.Rows {
		for i := 1; i < len(row.Columns); i++ {
			if row.Columns[i-1] >= row.Columns[i] {
				t.Fatal("row columns not strictly ascending")
			}
		}
	}
}

func TestFeatureSetNilCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomLabelled(rng, 10, 2, 0.3)
	ex, _ := NewExtractor(g, Options{MaxEdges: 2})
	censuses := []*Census{ex.Census(0), nil, ex.Census(1)}
	vocab := VocabularyOf(censuses)
	fs, err := NewFeatureSet(ex, censuses, vocab)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Roots[1] != -1 {
		t.Errorf("nil census root = %d, want -1", fs.Roots[1])
	}
	if len(fs.Rows[1].Columns) != 0 {
		t.Error("nil census row should be empty")
	}
}

func TestReadFeatureSetRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"roots":[1],"rows":[]}`,
		`{"roots":[1],"rows":[{"columns":[0],"counts":[]}]}`,
		`{"roots":[1],"rows":[{"columns":[5],"counts":[1]}],"features":[]}`,
		`{"label_slots":2,"features":[{"key":1,"sequence":[0,0]}],"roots":[],"rows":[]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadFeatureSet(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestFilterRootsByDegree(t *testing.T) {
	// Star: hub should be dropped at the 95% policy.
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("h", "l"))
	hub, _ := b.AddNode("h")
	var roots []graph.NodeID
	roots = append(roots, hub)
	for i := 0; i < 19; i++ {
		leaf, _ := b.AddNode("l")
		b.AddEdge(hub, leaf)
		roots = append(roots, leaf)
	}
	g := b.MustBuild()

	kept := FilterRootsByDegree(g, roots, 0.95)
	if len(kept) != 19 {
		t.Fatalf("kept %d roots, want 19 (hub dropped)", len(kept))
	}
	for _, v := range kept {
		if v == hub {
			t.Fatal("hub survived the filter")
		}
	}
	// Degenerate percentiles keep everything.
	if got := FilterRootsByDegree(g, roots, 0); len(got) != len(roots) {
		t.Error("percentile 0 must keep all roots")
	}
	if got := FilterRootsByDegree(g, roots, 1); len(got) != len(roots) {
		t.Error("percentile 1 must keep all roots")
	}
}

func TestSampleRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomLabelled(rng, 50, 3, 0.1)
	roots := SampleRoots(g, 5, rand.New(rand.NewSource(1)))
	perLabel := make(map[graph.Label]int)
	seen := make(map[graph.NodeID]bool)
	for _, v := range roots {
		if seen[v] {
			t.Fatal("duplicate root sampled")
		}
		seen[v] = true
		perLabel[g.Label(v)]++
	}
	for l, c := range perLabel {
		if c > 5 {
			t.Errorf("label %d: %d roots, cap 5", l, c)
		}
	}
	// Deterministic under the same seed.
	again := SampleRoots(g, 5, rand.New(rand.NewSource(1)))
	if !reflect.DeepEqual(roots, again) {
		t.Error("sampling not deterministic under fixed seed")
	}
}

func TestCanonicalCountsUnknownKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomLabelled(rng, 8, 2, 0.4)
	ex, _ := NewExtractor(g, Options{MaxEdges: 2})
	fake := &Census{Counts: map[uint64]int64{0xdeadbeef: 1}}
	if _, err := CanonicalCounts(ex, fake); err == nil {
		t.Fatal("unknown key must error, not decode silently")
	}
}
