// Tracked census micro-benchmarks over the synthetic publication
// network (the paper's MAG stand-in, DESIGN.md §1). These are the
// benchmarks behind `make bench` / BENCH_census.json: BenchmarkCensusRoot
// measures the single-root hot path a serving daemon pays per request
// row, BenchmarkCensusAll the parallel full-network extraction of the
// reproduction pipeline. Both report allocations — the allocs/root
// trajectory is the tentpole metric of the zero-allocation census work.
package core_test

import (
	"sync/atomic"
	"testing"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
)

// benchPublication builds a reduced but structurally faithful
// publication network: same label connectivity and skew as the default
// configuration, scaled so a benchmark iteration stays in milliseconds.
func benchPublication(tb testing.TB) *graph.Graph {
	tb.Helper()
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return pub.Graph
}

// benchRoots samples roots evenly across the node ID space, so the mix
// of label classes (institutions, authors, papers, venues, ...) matches
// the network's composition rather than any one class.
func benchRoots(g *graph.Graph, n int) []graph.NodeID {
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	roots := make([]graph.NodeID, n)
	stride := g.NumNodes() / n
	for i := range roots {
		roots[i] = graph.NodeID(i * stride)
	}
	return roots
}

func benchExtractor(tb testing.TB, g *graph.Graph, opts core.Options) *core.Extractor {
	tb.Helper()
	ex, err := core.NewExtractor(g, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return ex
}

// BenchmarkCensusRoot measures the steady-state single-root census: the
// per-row cost of a serving-daemon request. One op = one root.
func BenchmarkCensusRoot(b *testing.B) {
	g := benchPublication(b)
	ex := benchExtractor(b, g, core.Options{MaxEdges: 3, MaskRootLabel: true})
	roots := benchRoots(g, 64)
	// Warm the vocabulary (and, post-pooling, the worker pool) so the
	// loop measures steady state, not first-sight materialisation.
	var warm int64
	for _, r := range roots {
		warm += ex.Census(r).Subgraphs
	}
	if warm == 0 {
		b.Fatal("benchmark roots produced no subgraphs")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var subgraphs int64
	for i := 0; i < b.N; i++ {
		subgraphs += ex.Census(roots[i%len(roots)]).Subgraphs
	}
	b.ReportMetric(float64(subgraphs)/b.Elapsed().Seconds(), "subgraphs/sec")
}

// BenchmarkCensusAll measures the parallel full-sample extraction (the
// reproduction pipeline's workload). One op = len(roots) roots.
func BenchmarkCensusAll(b *testing.B) {
	g := benchPublication(b)
	ex := benchExtractor(b, g, core.Options{MaxEdges: 3, MaskRootLabel: true})
	roots := benchRoots(g, 256)
	for _, c := range ex.CensusAll(roots[:8], 0) {
		_ = c
	}
	b.ReportAllocs()
	b.ResetTimer()
	var subgraphs atomic.Int64
	for i := 0; i < b.N; i++ {
		for _, c := range ex.CensusAll(roots, 0) {
			subgraphs.Add(c.Subgraphs)
		}
	}
	b.ReportMetric(float64(subgraphs.Load())/b.Elapsed().Seconds(), "subgraphs/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(roots)), "ns/root")
}

// BenchmarkCensusAllLPT is BenchmarkCensusAll with longest-processing-
// time root ordering, the skew-mitigation knob for heavy-tailed degree
// distributions.
func BenchmarkCensusAllLPT(b *testing.B) {
	g := benchPublication(b)
	ex := benchExtractor(b, g, core.Options{MaxEdges: 3, MaskRootLabel: true, LPTRootOrder: true})
	roots := benchRoots(g, 256)
	for _, c := range ex.CensusAll(roots[:8], 0) {
		_ = c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.CensusAll(roots, 0)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(roots)), "ns/root")
}
