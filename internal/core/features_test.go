package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hsgf/internal/graph"
)

func TestVocabularyBasics(t *testing.T) {
	v := NewVocabulary()
	if v.Len() != 0 {
		t.Fatal("new vocabulary must be empty")
	}
	i1 := v.Add(42)
	i2 := v.Add(7)
	i3 := v.Add(42) // duplicate
	if i1 != 0 || i2 != 1 || i3 != 0 {
		t.Errorf("indices = %d,%d,%d, want 0,1,0", i1, i2, i3)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	if v.Key(0) != 42 || v.Key(1) != 7 {
		t.Error("Key lookup mismatch")
	}
	if idx, ok := v.Index(7); !ok || idx != 1 {
		t.Error("Index(7) mismatch")
	}
	if _, ok := v.Index(999); ok {
		t.Error("Index of absent key should fail")
	}
}

func TestVocabularyDeterministicOrder(t *testing.T) {
	c := &Census{Counts: map[uint64]int64{9: 1, 3: 2, 7: 5, 1: 4}}
	v1 := NewVocabulary()
	v1.AddCensus(c)
	v2 := NewVocabulary()
	v2.AddCensus(c)
	if !reflect.DeepEqual(v1.keys, v2.keys) {
		t.Error("AddCensus order must be deterministic")
	}
	// Ascending key order.
	for i := 1; i < v1.Len(); i++ {
		if v1.Key(i-1) >= v1.Key(i) {
			t.Error("keys not ascending")
		}
	}
}

func TestMatrixProjection(t *testing.T) {
	train := &Census{Counts: map[uint64]int64{1: 3, 2: 5}}
	test := &Census{Counts: map[uint64]int64{2: 7, 99: 1}} // 99 unseen in train
	vocab := VocabularyOf([]*Census{train})

	m := Matrix([]*Census{train, test, nil}, vocab)
	if len(m) != 3 {
		t.Fatalf("rows = %d, want 3", len(m))
	}
	if len(m[0]) != 2 {
		t.Fatalf("cols = %d, want 2", len(m[0]))
	}
	col1, _ := vocab.Index(1)
	col2, _ := vocab.Index(2)
	if m[0][col1] != 3 || m[0][col2] != 5 {
		t.Errorf("train row = %v", m[0])
	}
	if m[1][col2] != 7 {
		t.Errorf("test row should project key 2, got %v", m[1])
	}
	if m[1][col1] != 0 {
		t.Errorf("test row key 1 should be absent, got %v", m[1])
	}
	// Unseen key 99 dropped.
	sum := m[1][0] + m[1][1]
	if sum != 7 {
		t.Errorf("unseen keys must be dropped, row sums to %v", sum)
	}
	// nil census row is all zeros.
	if m[2][0] != 0 || m[2][1] != 0 {
		t.Errorf("nil census row = %v, want zeros", m[2])
	}
}

func TestMatrixEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomLabelled(rng, 25, 3, 0.2)
	roots := []graph.NodeID{0, 1, 2, 3, 4}
	e, _ := NewExtractor(g, Options{MaxEdges: 3, MaskRootLabel: true})
	cs := e.CensusAll(roots, 2)
	vocab := VocabularyOf(cs)
	m := Matrix(cs, vocab)
	for r, c := range cs {
		var want float64
		for _, n := range c.Counts {
			want += float64(n)
		}
		var got float64
		for _, x := range m[r] {
			got += x
		}
		if got != want {
			t.Errorf("row %d: matrix sum %v != census sum %v", r, got, want)
		}
	}
}
