package core

import (
	"math/rand"

	"hsgf/internal/graph"
)

// FilterRootsByDegree drops roots whose degree exceeds the given
// percentile of the graph's degree distribution. The paper observes
// (§4.3.5) that extraction outliers are starting nodes that are
// themselves hubs — the dmax heuristic never applies to the root — and
// that skipping the top 5% of nodes by degree does not reduce prediction
// performance. A percentile of 0.95 reproduces that policy.
func FilterRootsByDegree(g *graph.Graph, roots []graph.NodeID, percentile float64) []graph.NodeID {
	if percentile <= 0 || percentile >= 1 {
		return append([]graph.NodeID(nil), roots...)
	}
	cutoff := graph.DegreePercentile(g, percentile)
	out := make([]graph.NodeID, 0, len(roots))
	for _, v := range roots {
		if g.Degree(v) <= cutoff {
			out = append(out, v)
		}
	}
	return out
}

// SampleRoots draws up to perLabel roots of every label uniformly at
// random, the paper's evaluation sampling protocol (§4.3.2: "we select
// 250 nodes of each label"). The returned slice is grouped by label in
// ascending label order; sampling is deterministic in rng.
func SampleRoots(g *graph.Graph, perLabel int, rng *rand.Rand) []graph.NodeID {
	var out []graph.NodeID
	for l := 0; l < g.NumLabels(); l++ {
		members := g.NodesWithLabel(graph.Label(l))
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		n := perLabel
		if n > len(members) {
			n = len(members)
		}
		out = append(out, members[:n]...)
	}
	return out
}
