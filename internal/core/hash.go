package core

import "hash/fnv"

// The rolling hash of paper §3.2 ("Hashing Optimization"): every label l
// has its own base b_l, and the raw rolling value of a subgraph node v
// with per-node sequence (t0, t1, ..., tk) is
//
//	h(s_v) = Σ_{i=1..k} t_i · b_{λ(v)}^i  (mod 2^64),
//
// maintained incrementally with precomputed powers exactly as in the
// paper. The paper sums the raw h(s_v) directly; because that sum is
// linear in the typed degrees, structurally common subgraph pairs collide
// (e.g. a claw and a path over the same labels aggregate to the same sum),
// which the paper resolves by comparing encodings inside hash buckets.
// This implementation instead finalises each node's raw value through a
// SplitMix64 mix, salted by the node's label, before summing:
//
//	H(G') = Σ_v mix(h(s_v) ⊕ salt_{λ(v)}).
//
// The mixed sum is still order independent and still updates in O(1) per
// edge (subtract the two endpoints' old mixed contributions, adjust their
// raw values, add the new mixed contributions), but equals for two
// subgraphs only if the multisets of per-node sequences agree — i.e. iff
// the encodings are identical — up to a ~2^-64 accidental collision, so
// the mixed hash can serve directly as the census key.

// hashSeed seeds the deterministic generation of per-label bases. Bases
// are fixed across runs so feature keys are stable artifacts.
const hashSeed = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 mixing function, used to derive
// deterministic pseudo-random odd bases.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// powerTable precomputes b_l^i for every label slot l and exponent
// i in 0..k, where k is the number of label slots, along with the
// per-label salts used by the mixed finalisation.
type powerTable struct {
	k    int
	pow  [][]uint64 // pow[l][i] = base_l^i mod 2^64
	salt []uint64   // salt[l] xor-ed into raw values before mixing
}

func newPowerTable(k int) *powerTable {
	t := &powerTable{k: k, pow: make([][]uint64, k), salt: make([]uint64, k)}
	for l := 0; l < k; l++ {
		base := splitmix64(hashSeed+uint64(l)) | 1 // odd => full period mod 2^64
		row := make([]uint64, k+1)
		row[0] = 1
		for i := 1; i <= k; i++ {
			row[i] = row[i-1] * base
		}
		t.pow[l] = row
		t.salt[l] = splitmix64(hashSeed ^ (0xabcd<<32 + uint64(l)))
	}
	return t
}

// term returns the raw rolling-value contribution of one unit of
// t_{neighbor+1} for a node with label slot nodeLabel, i.e.
// b_{nodeLabel}^{neighborLabel+1}.
func (t *powerTable) term(nodeLabel, neighborLabel int32) uint64 {
	return t.pow[nodeLabel][neighborLabel+1]
}

// mix finalises a node's raw rolling value into its contribution to the
// subgraph hash.
func (t *powerTable) mix(raw uint64, nodeLabel int32) uint64 {
	return splitmix64(raw ^ t.salt[nodeLabel])
}

// hashSequence computes the mixed subgraph hash of a canonical sequence
// from scratch. The census never calls this in its hot path; it exists so
// tests can verify that incremental maintenance matches a from-scratch
// computation.
func (t *powerTable) hashSequence(s Sequence) uint64 {
	stride := s.K + 1
	var h uint64
	for n := 0; n < s.NumNodes(); n++ {
		row := s.Values[n*stride : (n+1)*stride]
		var raw uint64
		for l := int32(0); l < int32(s.K); l++ {
			c := row[1+l]
			if c != 0 {
				raw += uint64(c) * t.term(row[0], l)
			}
		}
		h += t.mix(raw, row[0])
	}
	return h
}

// fnvSequence hashes the canonical byte rendering of a sequence with
// FNV-64a. This is the "string hashing" alternative the paper describes as
// the straightforward but slower strategy; it is kept as the comparator
// for the hashing ablation.
func fnvSequence(s Sequence) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range s.Values {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}
