package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// FeatureSet is the portable form of extracted features: the vocabulary
// of encodings (decoded to canonical sequences so they stay interpretable
// without the extractor) and one sparse count row per root. It
// serialises to a stable JSON document, so features can be computed once
// and consumed by external tooling.
type FeatureSet struct {
	// MaxEdges, MaskRootLabel, MaxDegree document the extraction.
	MaxEdges      int  `json:"max_edges"`
	MaxDegree     int  `json:"max_degree,omitempty"`
	MaskRootLabel bool `json:"mask_root_label,omitempty"`

	// LabelSlots is the encoding's label-slot count; SlotNames its
	// display names (last one "*" when the root is masked).
	LabelSlots int      `json:"label_slots"`
	SlotNames  []string `json:"slot_names"`

	// Features holds one entry per vocabulary column.
	Features []FeatureDef `json:"features"`
	// Rows holds one sparse row per root, aligned with Roots.
	Roots []int64      `json:"roots"`
	Rows  []FeatureRow `json:"rows"`
	// RowFlags, when present, is aligned with Rows and carries each
	// row's CensusFlag taxonomy (truncation, deadline, cancellation,
	// panic), so degraded rows stay identifiable after persistence.
	// Empty means every row is complete.
	RowFlags []uint8 `json:"row_flags,omitempty"`
}

// Degraded reports whether row i was extracted incompletely (its census
// carried a non-zero flag set).
func (fs *FeatureSet) Degraded(i int) bool {
	return i < len(fs.RowFlags) && fs.RowFlags[i] != 0
}

// FeatureDef is one subgraph feature: its key, its canonical sequence
// values and a rendered form.
type FeatureDef struct {
	Key      uint64  `json:"key"`
	Sequence []int32 `json:"sequence"`
	Encoding string  `json:"encoding"`
}

// FeatureRow is a sparse count vector: parallel column/count slices.
type FeatureRow struct {
	Columns []int   `json:"columns"`
	Counts  []int64 `json:"counts"`
}

// NewFeatureSet packages censuses and their vocabulary for
// serialisation, decoding every vocabulary key through the extractor.
func NewFeatureSet(ex *Extractor, censuses []*Census, vocab *Vocabulary) (*FeatureSet, error) {
	opts := ex.Options()
	fs := &FeatureSet{
		MaxEdges:      opts.MaxEdges,
		MaxDegree:     opts.MaxDegree,
		MaskRootLabel: opts.MaskRootLabel,
		LabelSlots:    ex.LabelSlots(),
	}
	for l := 0; l < ex.LabelSlots(); l++ {
		fs.SlotNames = append(fs.SlotNames, ex.SlotName(l))
	}
	for c := 0; c < vocab.Len(); c++ {
		key := vocab.Key(c)
		seq, ok := ex.Decode(key)
		if !ok {
			return nil, fmt.Errorf("core: vocabulary key %x has no representative", key)
		}
		fs.Features = append(fs.Features, FeatureDef{
			Key:      key,
			Sequence: seq.Values,
			Encoding: seq.String(ex.SlotName),
		})
	}
	flags := make([]uint8, 0, len(censuses))
	anyFlag := false
	for _, cen := range censuses {
		var row FeatureRow
		var flag uint8
		if cen != nil {
			fs.Roots = append(fs.Roots, int64(cen.Root))
			for key, n := range cen.Counts {
				if col, ok := vocab.Index(key); ok {
					row.Columns = append(row.Columns, col)
					row.Counts = append(row.Counts, n)
				}
			}
			sortRow(&row)
			flag = uint8(cen.Flags)
		} else {
			// A nil census is a root the run never reached (cancelled
			// before assignment); mark it so consumers can tell it from
			// a genuinely empty census.
			fs.Roots = append(fs.Roots, -1)
			flag = uint8(FlagCancelled)
		}
		fs.Rows = append(fs.Rows, row)
		flags = append(flags, flag)
		anyFlag = anyFlag || flag != 0
	}
	if anyFlag {
		fs.RowFlags = flags
	}
	return fs, nil
}

func sortRow(r *FeatureRow) {
	// Insertion sort by column; rows are short relative to sort.Sort
	// overhead and this keeps the function allocation free.
	for i := 1; i < len(r.Columns); i++ {
		for j := i; j > 0 && r.Columns[j] < r.Columns[j-1]; j-- {
			r.Columns[j], r.Columns[j-1] = r.Columns[j-1], r.Columns[j]
			r.Counts[j], r.Counts[j-1] = r.Counts[j-1], r.Counts[j]
		}
	}
}

// Write serialises the feature set as JSON.
func (fs *FeatureSet) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fs); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFeatureSet parses a feature set written by Write.
func ReadFeatureSet(r io.Reader) (*FeatureSet, error) {
	var fs FeatureSet
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&fs); err != nil {
		return nil, err
	}
	if err := fs.validate(); err != nil {
		return nil, err
	}
	return &fs, nil
}

// validate checks the structural invariants of a deserialised feature
// set before any consumer indexes into it: row/root alignment, parallel
// column/count slices, in-range sorted unique columns, non-negative
// counts, consistent slot metadata, and unique feature keys. Hand-edited
// or truncated files fail here with a descriptive error instead of an
// index panic downstream.
func (fs *FeatureSet) validate() error {
	if fs.MaxEdges < 1 {
		return fmt.Errorf("core: feature set has max_edges %d, want >= 1", fs.MaxEdges)
	}
	if fs.LabelSlots < 0 {
		return fmt.Errorf("core: negative label_slots %d", fs.LabelSlots)
	}
	if len(fs.SlotNames) != 0 && len(fs.SlotNames) != fs.LabelSlots {
		return fmt.Errorf("core: %d slot names for %d label slots", len(fs.SlotNames), fs.LabelSlots)
	}
	if len(fs.Roots) != len(fs.Rows) {
		return fmt.Errorf("core: %d roots but %d rows", len(fs.Roots), len(fs.Rows))
	}
	if len(fs.RowFlags) != 0 && len(fs.RowFlags) != len(fs.Rows) {
		return fmt.Errorf("core: %d row flags for %d rows", len(fs.RowFlags), len(fs.Rows))
	}
	for i, r := range fs.Roots {
		if r < -1 {
			return fmt.Errorf("core: root %d has invalid node id %d", i, r)
		}
	}
	for i, row := range fs.Rows {
		if len(row.Columns) != len(row.Counts) {
			return fmt.Errorf("core: row %d has %d columns but %d counts", i, len(row.Columns), len(row.Counts))
		}
		for j, c := range row.Columns {
			if c < 0 || c >= len(fs.Features) {
				return fmt.Errorf("core: row %d references column %d outside %d features", i, c, len(fs.Features))
			}
			if j > 0 && c <= row.Columns[j-1] {
				return fmt.Errorf("core: row %d columns not strictly ascending at position %d (%d after %d)",
					i, j, c, row.Columns[j-1])
			}
		}
		for j, n := range row.Counts {
			if n < 0 {
				return fmt.Errorf("core: row %d has negative count %d in column %d", i, n, row.Columns[j])
			}
		}
	}
	seen := make(map[uint64]int, len(fs.Features))
	for i, f := range fs.Features {
		if fs.LabelSlots > 0 && len(f.Sequence)%(fs.LabelSlots+1) != 0 {
			return fmt.Errorf("core: feature %d sequence length %d not divisible by stride %d",
				i, len(f.Sequence), fs.LabelSlots+1)
		}
		if prev, dup := seen[f.Key]; dup {
			return fmt.Errorf("core: features %d and %d share key %x", prev, i, f.Key)
		}
		seen[f.Key] = i
	}
	return nil
}

// SaveFeatureSetSnapshot writes fs into st as the next checksummed
// "featureset" generation. The write is atomic and durable (fsynced
// file and directory) when it returns.
func SaveFeatureSetSnapshot(st *store.Store, fs *FeatureSet) (uint64, error) {
	var buf bytes.Buffer
	if err := fs.Write(&buf); err != nil {
		return 0, err
	}
	sections, err := artifactSections(ArtifactFeatureSet, buf.Bytes())
	if err != nil {
		return 0, err
	}
	return st.Write(ArtifactFeatureSet, sections)
}

// LoadFeatureSetSnapshot loads the newest feature-set generation that
// passes both envelope verification and FeatureSet validation; a
// generation failing either is quarantined and the next-older one is
// tried.
func LoadFeatureSetSnapshot(st *store.Store) (*FeatureSet, uint64, error) {
	var fs *FeatureSet
	_, gen, err := st.LoadLatestVerified(ArtifactFeatureSet, func(env *store.Envelope) error {
		payload, err := artifactPayload(env, ArtifactFeatureSet)
		if err != nil {
			return err
		}
		decoded, err := ReadFeatureSet(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("%w: %v", store.ErrCorrupt, err)
		}
		fs = decoded
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return fs, gen, nil
}

// SaveGraphSnapshot writes g into st as the next checksummed "graph"
// generation; the payload is the TSV exchange format, so a snapshot
// stays readable by every existing tool.
func SaveGraphSnapshot(st *store.Store, g *graph.Graph) (uint64, error) {
	var buf bytes.Buffer
	if err := graph.WriteTSV(&buf, g); err != nil {
		return 0, err
	}
	sections, err := artifactSections(ArtifactGraph, buf.Bytes())
	if err != nil {
		return 0, err
	}
	return st.Write(ArtifactGraph, sections)
}

// LoadGraphSnapshot loads the newest graph generation that passes
// envelope verification and TSV parsing, quarantining failures.
func LoadGraphSnapshot(st *store.Store) (*graph.Graph, uint64, error) {
	var g *graph.Graph
	_, gen, err := st.LoadLatestVerified(ArtifactGraph, func(env *store.Envelope) error {
		payload, err := artifactPayload(env, ArtifactGraph)
		if err != nil {
			return err
		}
		decoded, err := graph.ReadTSV(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("%w: %v", store.ErrCorrupt, err)
		}
		g = decoded
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return g, gen, nil
}

// Dense expands the sparse rows into a dense row-major matrix aligned
// with Roots.
func (fs *FeatureSet) Dense() [][]float64 {
	out := make([][]float64, len(fs.Rows))
	for i, row := range fs.Rows {
		r := make([]float64, len(fs.Features))
		for j, col := range row.Columns {
			r[col] = float64(row.Counts[j])
		}
		out[i] = r
	}
	return out
}
