package core

import (
	"encoding/json"
	"fmt"

	"hsgf/internal/store"
)

// Artifact kinds this package persists through the store. The kind
// doubles as the generation filename prefix and the payload section
// name, and is cross-checked against the embedded meta section so a
// renamed file can never be decoded as the wrong artifact.
const (
	ArtifactGraph      = "graph"
	ArtifactGraphBin   = "graphbin"
	ArtifactFeatureSet = "featureset"
	ArtifactCheckpoint = "checkpoint"
)

// artifactSchema versions the payload encodings beneath the envelope.
// The envelope's own FormatVersion guards the framing; this guards what
// the framed bytes mean.
const artifactSchema = 1

// artifactMeta is the first section of every snapshot: what the
// artifact is and which payload schema wrote it.
type artifactMeta struct {
	Artifact string `json:"artifact"`
	Schema   int    `json:"schema"`
}

// artifactSections frames one payload as the canonical two-section
// snapshot: a meta section naming the artifact, then the payload under
// the artifact's own section name.
func artifactSections(artifact string, payload []byte) ([]store.Section, error) {
	meta, err := json.Marshal(artifactMeta{Artifact: artifact, Schema: artifactSchema})
	if err != nil {
		return nil, err
	}
	return []store.Section{
		{Name: "meta", Payload: meta},
		{Name: artifact, Payload: payload},
	}, nil
}

// artifactPayload validates an envelope's shape against the expected
// artifact and returns the payload bytes. The section list must be
// exactly [meta, artifact]: a snapshot with sections this reader does
// not understand is rejected (ErrCorrupt) rather than silently
// misparsed, and a meta schema from the future is refused with
// ErrUnsupportedVersion.
func artifactPayload(env *store.Envelope, artifact string) ([]byte, error) {
	if len(env.Sections) != 2 {
		return nil, fmt.Errorf("%w: %d sections, want [meta %s]", store.ErrCorrupt, len(env.Sections), artifact)
	}
	if env.Sections[0].Name != "meta" {
		return nil, fmt.Errorf("%w: first section %q, want meta", store.ErrCorrupt, env.Sections[0].Name)
	}
	var meta artifactMeta
	if err := json.Unmarshal(env.Sections[0].Payload, &meta); err != nil {
		return nil, fmt.Errorf("%w: undecodable meta section: %v", store.ErrCorrupt, err)
	}
	if meta.Artifact != artifact {
		return nil, fmt.Errorf("%w: artifact %q, want %q", store.ErrCorrupt, meta.Artifact, artifact)
	}
	if meta.Schema > artifactSchema {
		return nil, fmt.Errorf("%w: %s schema %d, reader supports <= %d",
			store.ErrUnsupportedVersion, artifact, meta.Schema, artifactSchema)
	}
	if env.Sections[1].Name != artifact {
		return nil, fmt.Errorf("%w: unknown section %q, want %q", store.ErrCorrupt, env.Sections[1].Name, artifact)
	}
	return env.Sections[1].Payload, nil
}
