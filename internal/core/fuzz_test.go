package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFeatureSet checks the feature-set parser never panics and
// that anything it accepts is internally consistent.
func FuzzReadFeatureSet(f *testing.F) {
	f.Add(`{"max_edges":2,"label_slots":1,"slot_names":["a"],` +
		`"features":[{"key":1,"sequence":[0,1,0,1],"encoding":"a1a1"}],` +
		`"roots":[0],"rows":[{"columns":[0],"counts":[2]}]}`)
	f.Add(`{}`)
	f.Add(`{"roots":[1]}`)
	f.Add(`not json at all`)
	// Seed a genuine extraction round-trip so the corpus starts from a
	// fully populated, accepted document rather than minimal literals.
	{
		g := denseGraph(f, 20)
		ex, err := NewExtractor(g, Options{MaxEdges: 3})
		if err != nil {
			f.Fatal(err)
		}
		censuses := ex.CensusAll(allRoots(g)[:6], 2)
		fs, err := NewFeatureSet(ex, censuses, VocabularyOf(censuses))
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fs.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Fuzz(func(t *testing.T, input string) {
		fs, err := ReadFeatureSet(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted sets must expand without panicking and stay in shape.
		dense := fs.Dense()
		if len(dense) != len(fs.Rows) {
			t.Fatalf("dense rows %d != sparse rows %d", len(dense), len(fs.Rows))
		}
		for _, row := range dense {
			if len(row) != len(fs.Features) {
				t.Fatal("dense width mismatch")
			}
		}
	})
}

// FuzzParseCompact checks the compact-encoding parser never panics and
// that accepted encodings re-render to an equivalent canonical form.
func FuzzParseCompact(f *testing.F) {
	f.Add("z010z010y002", 3)
	f.Add("a1a1", 1)
	f.Add("", 2)
	f.Add("b0", 1)
	f.Fuzz(func(t *testing.T, enc string, k int) {
		if k < 1 || k > 6 {
			return
		}
		names := []string{"a", "b", "c", "x", "y", "z"}[:k]
		idx := func(n string) (int, bool) {
			for i, v := range names {
				if v == n {
					return i, true
				}
			}
			return 0, false
		}
		s, err := ParseCompact(enc, k, idx)
		if err != nil {
			return
		}
		rendered := s.String(func(l int) string { return names[l] })
		s2, err := ParseCompact(rendered, k, idx)
		if err != nil {
			t.Fatalf("re-render of accepted encoding rejected: %q -> %q: %v", enc, rendered, err)
		}
		if !s.Equal(s2) {
			t.Fatalf("re-render changed sequence: %q vs %q", enc, rendered)
		}
	})
}
