package core

import "sort"

// Vocabulary assigns dense column indices to encoding keys so censuses of
// many nodes can be assembled into a feature matrix. Columns are assigned
// in first-seen order; AddCensus inserts a census's keys in ascending key
// order so vocabularies built from the same censuses are identical
// regardless of map iteration order.
type Vocabulary struct {
	keys  []uint64
	index map[uint64]int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[uint64]int)}
}

// Add inserts key if absent and returns its column index.
func (v *Vocabulary) Add(key uint64) int {
	if i, ok := v.index[key]; ok {
		return i
	}
	i := len(v.keys)
	v.keys = append(v.keys, key)
	v.index[key] = i
	return i
}

// AddCensus inserts all keys of c, in ascending key order.
func (v *Vocabulary) AddCensus(c *Census) {
	keys := make([]uint64, 0, len(c.Counts))
	for k := range c.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		v.Add(k)
	}
}

// Len returns the number of columns.
func (v *Vocabulary) Len() int { return len(v.keys) }

// Key returns the encoding key of column i.
func (v *Vocabulary) Key(i int) uint64 { return v.keys[i] }

// Index returns the column of key, if present.
func (v *Vocabulary) Index(key uint64) (int, bool) {
	i, ok := v.index[key]
	return i, ok
}

// VocabularyOf builds a vocabulary covering all keys in the given
// censuses.
func VocabularyOf(censuses []*Census) *Vocabulary {
	v := NewVocabulary()
	for _, c := range censuses {
		if c != nil {
			v.AddCensus(c)
		}
	}
	return v
}

// Matrix assembles census count vectors into a dense row-major feature
// matrix aligned with censuses; keys outside the vocabulary are dropped
// (this is how test-set features are projected onto a train-set
// vocabulary).
func Matrix(censuses []*Census, vocab *Vocabulary) [][]float64 {
	rows := make([][]float64, len(censuses))
	for r, c := range censuses {
		row := make([]float64, vocab.Len())
		if c != nil {
			for key, n := range c.Counts {
				if col, ok := vocab.Index(key); ok {
					row[col] = float64(n)
				}
			}
		}
		rows[r] = row
	}
	return rows
}
