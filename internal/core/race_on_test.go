//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// accounting is skewed by its instrumentation, so byte-level regression
// assertions skip themselves under -race.
const raceEnabled = true
