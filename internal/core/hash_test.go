package core

import (
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

func TestIncrementalHashMatchesFromScratch(t *testing.T) {
	// Every key the census produces in rolling mode must equal the
	// from-scratch hash of its decoded canonical sequence.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		g := randomLabelled(rng, 6+rng.Intn(8), 1+rng.Intn(3), 0.35)
		opts := Options{MaxEdges: 1 + rng.Intn(4), MaskRootLabel: trial%2 == 0}
		e, err := NewExtractor(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			c := e.Census(graph.NodeID(v))
			for key := range c.Counts {
				s, ok := e.Decode(key)
				if !ok {
					t.Fatalf("key %x has no representative", key)
				}
				if got := e.pows.hashSequence(s); got != key {
					t.Fatalf("trial %d root %d: incremental key %x != from-scratch %x for %v",
						trial, v, key, got, s.Values)
				}
			}
		}
	}
}

func TestHashDistinguishesLinearCollisions(t *testing.T) {
	// The raw (unmixed) rolling sum of the paper's Eq. (5) cannot tell a
	// claw apart from a path when all nodes share one label: both have
	// typed-degree multiset sums 1+1+1+3 = 1+1+2+2. The mixed hash must
	// distinguish them.
	pows := newPowerTable(1)
	claw := Sequence{K: 1, Values: []int32{0, 3, 0, 1, 0, 1, 0, 1}}
	path := Sequence{K: 1, Values: []int32{0, 2, 0, 2, 0, 1, 0, 1}}
	if pows.hashSequence(claw) == pows.hashSequence(path) {
		t.Fatal("mixed hash failed to separate claw from path")
	}
}

func TestHashLabelSensitivity(t *testing.T) {
	// Same shape, different node labels must hash differently.
	pows := newPowerTable(2)
	e1 := Sequence{K: 2, Values: []int32{0, 0, 1, 1, 1, 0}} // a-b edge
	e2 := Sequence{K: 2, Values: []int32{0, 1, 0, 0, 0, 1}} // a-a edge... wait, keep simple:
	if pows.hashSequence(e1) == pows.hashSequence(e2) {
		t.Fatal("hash ignores labels")
	}
}

func TestFnvSequenceDistinct(t *testing.T) {
	s1 := Sequence{K: 1, Values: []int32{0, 1, 0, 1}}
	s2 := Sequence{K: 1, Values: []int32{0, 1, 0, 2}}
	if fnvSequence(s1) == fnvSequence(s2) {
		t.Error("fnv digest should differ for different sequences")
	}
	if fnvSequence(s1) != fnvSequence(Sequence{K: 1, Values: []int32{0, 1, 0, 1}}) {
		t.Error("fnv digest must be deterministic")
	}
}

func TestSplitmix64Deterministic(t *testing.T) {
	if splitmix64(1) != splitmix64(1) {
		t.Error("splitmix64 not deterministic")
	}
	if splitmix64(1) == splitmix64(2) {
		t.Error("splitmix64(1) == splitmix64(2): suspicious")
	}
}
