package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsgf/internal/graph"
)

// figure1B builds the paper's Figure 1B example: a path z–y–z over the
// alphabet {x, y, z}.
func figure1B(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x", "y", "z"))
	z1, _ := b.AddNode("z")
	y, _ := b.AddNode("y")
	z2, _ := b.AddNode("z")
	if err := b.AddEdge(z1, y); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(y, z2); err != nil {
		t.Fatal(err)
	}
	return b.MustBuild(), []graph.NodeID{z1, y, z2}
}

func TestSequencePaperExample(t *testing.T) {
	g, nodes := figure1B(t)
	edges := [][2]graph.NodeID{{nodes[0], nodes[1]}, {nodes[1], nodes[2]}}
	s := SequenceOf(g, nodes, edges, g.NumLabels(), -1, -1)

	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", s.NumNodes())
	}
	if s.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", s.NumEdges())
	}
	// The paper's encoding for this subgraph is z010 z010 y002.
	got := s.String(func(l int) string { return []string{"x", "y", "z"}[l] })
	if got != "z010z010y002" {
		t.Errorf("encoding = %q, want z010z010y002", got)
	}
}

func TestSequenceOrderInvariance(t *testing.T) {
	g, nodes := figure1B(t)
	edges := [][2]graph.NodeID{{nodes[0], nodes[1]}, {nodes[1], nodes[2]}}
	s1 := SequenceOf(g, nodes, edges, 3, -1, -1)
	// Present the same subgraph with permuted node and edge order.
	perm := []graph.NodeID{nodes[2], nodes[0], nodes[1]}
	edgesPerm := [][2]graph.NodeID{{nodes[2], nodes[1]}, {nodes[1], nodes[0]}}
	s2 := SequenceOf(g, perm, edgesPerm, 3, -1, -1)
	if !s1.Equal(s2) {
		t.Errorf("sequences differ under node/edge permutation: %v vs %v", s1.Values, s2.Values)
	}
}

func TestSequenceRootMasking(t *testing.T) {
	g, nodes := figure1B(t)
	edges := [][2]graph.NodeID{{nodes[0], nodes[1]}, {nodes[1], nodes[2]}}
	k := g.NumLabels() + 1
	masked := SequenceOf(g, nodes, edges, k, nodes[0], graph.Label(3))
	plain := SequenceOf(g, nodes, edges, k, -1, -1)
	if masked.Equal(plain) {
		t.Error("masking the root label must change the encoding")
	}
	// The masked slot must appear exactly once as a node label.
	count := 0
	for i := 0; i < masked.NumNodes(); i++ {
		if masked.Node(i)[0] == 3 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("masked label appears %d times, want 1", count)
	}
}

func TestSequenceStringFallback(t *testing.T) {
	g, nodes := figure1B(t)
	edges := [][2]graph.NodeID{{nodes[0], nodes[1]}, {nodes[1], nodes[2]}}
	s := SequenceOf(g, nodes, edges, 3, -1, -1)
	long := s.String(func(l int) string { return []string{"ex", "why", "zed"}[l] })
	if long == "" || long == "z010z010y002" {
		t.Errorf("multi-char label rendering should use delimited form, got %q", long)
	}
}

func TestParseCompactRoundTrip(t *testing.T) {
	g, nodes := figure1B(t)
	edges := [][2]graph.NodeID{{nodes[0], nodes[1]}, {nodes[1], nodes[2]}}
	s := SequenceOf(g, nodes, edges, 3, -1, -1)
	names := []string{"x", "y", "z"}
	enc := s.String(func(l int) string { return names[l] })
	parsed, err := ParseCompact(enc, 3, func(n string) (int, bool) {
		for i, v := range names {
			if v == n {
				return i, true
			}
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(s) {
		t.Errorf("round trip mismatch: %v vs %v", parsed.Values, s.Values)
	}
}

func TestParseCompactErrors(t *testing.T) {
	idx := func(n string) (int, bool) {
		if n == "a" {
			return 0, true
		}
		return 0, false
	}
	if _, err := ParseCompact("a0a", 1, idx); err == nil {
		t.Error("expected length error")
	}
	if _, err := ParseCompact("b0", 1, idx); err == nil {
		t.Error("expected unknown label error")
	}
	if _, err := ParseCompact("ax", 1, idx); err == nil {
		t.Error("expected bad digit error")
	}
}

func TestRollingHashMatchesSequenceHash(t *testing.T) {
	// Property: the rolling hash computed from any canonical sequence is
	// invariant under permutations of the per-node rows (the sum is order
	// independent).
	rng := rand.New(rand.NewSource(5))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	pows := newPowerTable(4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		vals := make([]int32, 0, n*5)
		for i := 0; i < n; i++ {
			vals = append(vals, int32(r.Intn(4)))
			for j := 0; j < 4; j++ {
				vals = append(vals, int32(r.Intn(5)))
			}
		}
		s := Sequence{K: 4, Values: append([]int32(nil), vals...)}
		h1 := pows.hashSequence(s)
		// Shuffle rows.
		rows := make([][]int32, n)
		for i := 0; i < n; i++ {
			rows[i] = vals[i*5 : (i+1)*5]
		}
		r.Shuffle(n, func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
		shuffled := make([]int32, 0, len(vals))
		for _, row := range rows {
			shuffled = append(shuffled, row...)
		}
		h2 := pows.hashSequence(Sequence{K: 4, Values: shuffled})
		return h1 == h2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPowerTableDistinctBases(t *testing.T) {
	pows := newPowerTable(8)
	seen := make(map[uint64]bool)
	for l := 0; l < 8; l++ {
		b := pows.pow[l][1]
		if b%2 == 0 {
			t.Errorf("base for label %d is even: %d", l, b)
		}
		if seen[b] {
			t.Errorf("duplicate base %d", b)
		}
		seen[b] = true
	}
	// Deterministic across constructions.
	pows2 := newPowerTable(8)
	for l := 0; l < 8; l++ {
		if pows.pow[l][3] != pows2.pow[l][3] {
			t.Error("power table not deterministic")
		}
	}
}
