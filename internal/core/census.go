package core

import (
	"math"
	"strings"
	"sync/atomic"
	"time"

	"hsgf/internal/graph"
)

// CensusFlag records why the enumeration of one root stopped early. A
// census may carry several flags (a root can hit its deadline while the
// run is being cancelled); a zero value means the census is complete.
type CensusFlag uint8

const (
	// FlagBudgetExceeded: the root hit Options.MaxSubgraphsPerRoot and
	// Counts is a prefix census.
	FlagBudgetExceeded CensusFlag = 1 << iota
	// FlagDeadlineExceeded: the root's wall-clock Options.RootDeadline
	// elapsed mid-enumeration.
	FlagDeadlineExceeded
	// FlagCancelled: the whole extraction run was cancelled (context
	// cancellation) while this root was in flight.
	FlagCancelled
	// FlagPanicked: the census worker panicked on this root. Counts is
	// empty; the panic is recorded on the extractor (Extractor.Panics).
	FlagPanicked
	// FlagShardUnavailable: in the sharded serving tier, the shard that
	// owns this root was unreachable past retries and failover, so the
	// row is empty. Set only by the router (internal/router) — a
	// single-process extraction never produces it. Distinct from
	// FlagCancelled so clients can tell "the fleet is degraded, retry
	// this root" from "my own deadline expired".
	FlagShardUnavailable
)

// String renders the flag set as a "|"-joined list, or "ok" when empty.
func (f CensusFlag) String() string {
	if f == 0 {
		return "ok"
	}
	var parts []string
	if f&FlagBudgetExceeded != 0 {
		parts = append(parts, "budget-exceeded")
	}
	if f&FlagDeadlineExceeded != 0 {
		parts = append(parts, "deadline-exceeded")
	}
	if f&FlagCancelled != 0 {
		parts = append(parts, "cancelled")
	}
	if f&FlagPanicked != 0 {
		parts = append(parts, "panicked")
	}
	if f&FlagShardUnavailable != 0 {
		parts = append(parts, "shard-unavailable")
	}
	return strings.Join(parts, "|")
}

// Census is the result of enumerating all connected subgraphs with at most
// emax edges around one root node: a count per subgraph type.
type Census struct {
	// Root is the node the census was extracted for.
	Root graph.NodeID
	// Counts maps an encoding key to the number of distinct subgraphs
	// around Root whose encoding has that key. In the default rolling-hash
	// key mode, the key is the rolling hash of the characteristic
	// sequence; in canonical-string mode it is an FNV-64a digest of the
	// canonical sequence. Use Extractor.Decode to recover the sequence.
	Counts map[uint64]int64
	// Subgraphs is the total number of subgraph occurrences counted,
	// i.e. the sum over Counts.
	Subgraphs int64
	// Truncated reports that enumeration stopped early — the root hit
	// Options.MaxSubgraphsPerRoot or Options.RootDeadline, the extraction
	// context was cancelled, or the worker panicked — so Counts is a
	// prefix census, not the full one. Flags carries the precise cause.
	Truncated bool
	// Flags is the structured stop-cause taxonomy; zero when complete.
	Flags CensusFlag
}

// edge state bits used by the census worker.
const (
	stateInSubgraph uint8 = 1 << iota
	stateBanned
	stateListed
)

// cand is a candidate extension edge: id names the undirected edge, from is
// the endpoint that was inside the subgraph when the candidate was listed,
// and to is the other endpoint (which may or may not have joined the
// subgraph since).
type cand struct {
	from, to graph.NodeID
	id       graph.EdgeID
}

// seg is a half-open window [lo, hi) into the shared candidate stack.
type seg struct{ lo, hi int }

// worker holds the per-goroutine mutable state of the census. Per the
// paper's parallel space analysis (§3.2), each worker needs O(V) private
// state while the O(E) adjacency structure is shared read-only; this
// implementation additionally keeps one byte per edge of private state in
// exchange for O(1) candidate bookkeeping.
type worker struct {
	g    *graph.Graph
	opts Options
	k    int
	pows *powerTable

	maxEdges int
	dmax     int

	nodePos   []int32 // node -> position in subgraph arrays, -1 if absent
	edgeState []uint8

	// Subgraph under construction. Positions 0..len(nodes)-1 are live.
	nodes   []graph.NodeID
	slabels []int32  // label slot per subgraph position (root may be masked)
	tv      []int32  // typed degrees, stride k, aligned with nodes
	rv      []uint64 // raw rolling values, aligned with nodes
	hash    uint64   // Σ mix(rv) over subgraph nodes
	edges   int

	// ext is a shared candidate stack. A frame's candidate window is a
	// list of [lo, hi) segments of ext: the unprocessed remainders of all
	// ancestor windows plus the frame's own freshly listed edges. Sharing
	// segments instead of copying keeps frame setup O(depth) even at
	// high-degree nodes. segArena[d] is the reusable segment list for the
	// frame at depth d.
	ext      []cand
	segArena [][]seg

	root graph.NodeID
	// tab is the reusable open-addressing census counter, epoch-cleared
	// per root; the per-root Counts map is materialised from it once at
	// census end, so the emission hot path never touches a Go map.
	tab *counterTable
	// zeroRow is a k-wide all-zero row appended into tv when a node
	// joins the subgraph; appending from it avoids the temp-slice
	// allocation of make([]int32, k) per fresh node.
	zeroRow    []int32
	repr       map[uint64]Sequence // first-seen canonical form per key
	reprMerged int                 // len(repr) at the last flush into the extractor
	emissions  int64

	budget    int64         // per-root emission cap, 0 = unlimited
	deadline  time.Duration // per-root wall-clock budget, 0 = unlimited
	rootStart time.Time     // census start, set when deadline > 0
	stop      *atomic.Bool  // cooperative cancellation, may be nil
	hooks     *faultHooks   // fault-injection seam, nil outside tests
	steps     uint64        // candidate steps since census start
	aborted   bool
	abortWhy  CensusFlag
}

// faultHooks is the deterministic fault-injection seam threaded into
// census workers by tests: onRootStart fires once per root before
// enumeration, onStep at every periodic poll point (every pollInterval
// candidate steps). Either hook may panic, sleep, or cancel to simulate
// worker faults exactly where they would occur in production.
type faultHooks struct {
	onRootStart func(root graph.NodeID)
	onStep      func(root graph.NodeID, step uint64)
}

// pollInterval is the candidate-step period of the expensive abort
// checks (cross-goroutine stop flag, wall clock, injected faults).
const pollInterval = 1024

// shouldAbort is polled at every candidate step; the (cheap) budget
// check runs always, the cross-goroutine stop flag, the per-root
// deadline clock and the fault seam only periodically.
func (w *worker) shouldAbort() bool {
	if w.aborted {
		return true
	}
	if w.budget > 0 && w.emissions >= w.budget {
		w.abort(FlagBudgetExceeded)
		return true
	}
	w.steps++
	if w.steps&(pollInterval-1) != 0 {
		return false
	}
	if w.hooks != nil && w.hooks.onStep != nil {
		w.hooks.onStep(w.root, w.steps)
	}
	if w.stop != nil && w.stop.Load() {
		w.abort(FlagCancelled)
		return true
	}
	if w.deadline > 0 && time.Since(w.rootStart) > w.deadline {
		w.abort(FlagDeadlineExceeded)
		return true
	}
	return false
}

func (w *worker) abort(why CensusFlag) {
	w.aborted = true
	w.abortWhy |= why
}

func newWorker(g *graph.Graph, opts Options, k int, pows *powerTable) *worker {
	w := &worker{
		g:        g,
		opts:     opts,
		k:        k,
		pows:     pows,
		maxEdges: opts.MaxEdges,
		dmax:     opts.MaxDegree,
		budget:   opts.MaxSubgraphsPerRoot,
		deadline: opts.RootDeadline,
	}
	if w.dmax <= 0 {
		w.dmax = math.MaxInt
	}
	w.nodePos = make([]int32, g.NumNodes())
	for i := range w.nodePos {
		w.nodePos[i] = -1
	}
	w.edgeState = make([]uint8, g.NumEdges())
	maxNodes := opts.MaxEdges + 1
	w.nodes = make([]graph.NodeID, 0, maxNodes)
	w.slabels = make([]int32, 0, maxNodes)
	w.tv = make([]int32, 0, maxNodes*k)
	w.rv = make([]uint64, 0, maxNodes)
	w.zeroRow = make([]int32, k)
	w.tab = newCounterTable(counterMinSize)
	w.repr = make(map[uint64]Sequence)
	w.segArena = make([][]seg, opts.MaxEdges+1)
	for d := range w.segArena {
		w.segArena[d] = make([]seg, 0, opts.MaxEdges+2)
	}
	return w
}

// clean reports whether the worker's reusable state is back at its
// between-roots invariant: no subgraph edges, an empty candidate stack,
// and at most the last root left in the arenas with its nodePos entry
// released. census restores (or wholesale rebuilds) the O(V+E) arrays
// itself on every exit path except a panic unwind, and any panic inside
// the enumeration leaves live candidates behind, so these O(1) checks
// distinguish a healthy worker from one that must not be pooled.
func (w *worker) clean() bool {
	if w.edges != 0 || len(w.ext) != 0 || len(w.nodes) > 1 {
		return false
	}
	for _, v := range w.nodes { // at most one entry
		if w.nodePos[v] >= 0 {
			return false
		}
	}
	return true
}

// census runs the full enumeration for one root and returns its counts.
func (w *worker) census(root graph.NodeID) *Census {
	w.root = root
	w.tab.reset()
	w.emissions = 0
	w.steps = 0
	w.aborted = false
	w.abortWhy = 0
	if w.deadline > 0 {
		w.rootStart = time.Now()
	}
	if w.hooks != nil && w.hooks.onRootStart != nil {
		w.hooks.onRootStart(root)
	}

	// Install the root as subgraph position 0.
	slot := int32(w.g.Label(root))
	if w.opts.MaskRootLabel {
		slot = int32(w.k - 1)
	}
	w.nodePos[root] = 0
	w.nodes = append(w.nodes[:0], root)
	w.slabels = append(w.slabels[:0], slot)
	w.tv = append(w.tv[:0], w.zeroRow...)
	w.rv = append(w.rv[:0], 0)
	w.hash = w.pows.mix(0, slot)
	w.edges = 0

	// Initial candidates: all edges incident to the root. The maximum
	// degree heuristic never applies to the root itself (§4.3.5).
	w.ext = w.ext[:0]
	adj := w.g.Neighbors(root)
	eids := w.g.IncidentEdges(root)
	for i, to := range adj {
		w.edgeState[eids[i]] |= stateListed
		w.ext = append(w.ext, cand{from: root, to: to, id: eids[i]})
	}

	rootSegs := w.segArena[0][:0]
	if len(w.ext) > 0 {
		rootSegs = append(rootSegs, seg{0, len(w.ext)})
	}
	w.grow(rootSegs)

	if w.aborted {
		// The enumeration unwound without its usual bookkeeping; rebuild
		// the persistent state wholesale (O(V+E), once per truncated
		// root) so subsequent censuses start clean.
		for i := range w.edgeState {
			w.edgeState[i] = 0
		}
		for _, v := range w.nodes {
			w.nodePos[v] = -1
		}
		w.nodes = w.nodes[:0]
		w.slabels = w.slabels[:0]
		w.tv = w.tv[:0]
		w.rv = w.rv[:0]
	} else {
		// Restore global state.
		for _, c := range w.ext {
			w.edgeState[c.id] &^= stateListed
		}
	}
	w.nodePos[root] = -1
	w.ext = w.ext[:0]

	// Materialise the census once, from the flat counter table. This is
	// the only per-root map work left: O(distinct keys), not O(emissions).
	counts := make(map[uint64]int64, w.tab.len())
	w.tab.forEach(func(k uint64, n int64) { counts[k] = n })
	return &Census{Root: root, Counts: counts, Subgraphs: w.emissions, Truncated: w.aborted, Flags: w.abortWhy}
}

// grow enumerates every connected subgraph extension reachable from the
// frame's candidate window, given as segments of the shared candidate
// stack (the unprocessed remainders of all ancestor windows plus this
// frame's fresh candidates). Each candidate is processed exactly once per
// branch context: it is added (counted, and recursed into if the edge
// budget allows), removed, and then banned so that later branches in this
// frame cannot regenerate subgraphs containing it — the exclusion
// discipline that makes the enumeration duplicate-free.
func (w *worker) grow(segs []seg) {
	for si := 0; si < len(segs); si++ {
		lo, hi := segs[si].lo, segs[si].hi
		for p := lo; p < hi; p++ {
			if w.shouldAbort() {
				return
			}
			c := w.ext[p]

			// Leaf batching (the paper's heterogeneous optimization
			// heuristic): when the next edge exhausts the budget, all
			// consecutive candidates that attach a fresh node of the same
			// label to the same subgraph node produce identical encodings,
			// so they are counted in one step without materialising each
			// subgraph. The run's candidates are never recursed into, so
			// their ban/unban cycle is a no-op and can be skipped.
			if w.edges+1 == w.maxEdges && !w.opts.DisableLeafBatching {
				if j := w.leafRun(p, hi); j > p {
					pa := w.nodePos[c.from]
					la, lb := w.slabels[pa], w.labelSlot(c.to)
					h := w.hash -
						w.pows.mix(w.rv[pa], la) +
						w.pows.mix(w.rv[pa]+w.pows.term(la, lb), la) +
						w.pows.mix(w.pows.term(lb, la), lb)
					n := int64(j - p)
					if w.opts.KeyMode == CanonicalString {
						w.addEdge(c)
						s := w.sequence()
						h = fnvSequence(s)
						if w.tab.add(h, n) {
							if _, ok := w.repr[h]; !ok {
								w.repr[h] = s
							}
						}
						w.removeEdge(c)
					} else if w.tab.add(h, n) {
						// First sight this root; materialise the batch's
						// representative only if the worker has never
						// decoded this key before.
						if _, ok := w.repr[h]; !ok {
							w.addEdge(c)
							w.repr[h] = w.sequence()
							w.removeEdge(c)
						}
					}
					w.emissions += n
					p = j - 1
					continue
				}
			}

			newNode := w.nodePos[c.to] < 0
			w.addEdge(c)
			w.count()

			if w.edges < w.maxEdges {
				extraStart := len(w.ext)
				if newNode && int(w.g.Degree(c.to)) <= w.dmax {
					// List the new node's incident edges as fresh
					// candidates: discoveries of further nodes or cycle
					// closures, except edges already in the subgraph,
					// banned in this branch context, or already listed
					// elsewhere on this path. Hub nodes (degree > dmax)
					// join subgraphs but are never explored beyond
					// (topological optimization heuristic, §3.2).
					adj := w.g.Neighbors(c.to)
					eids := w.g.IncidentEdges(c.to)
					for ai, to2 := range adj {
						if w.edgeState[eids[ai]]&(stateInSubgraph|stateBanned|stateListed) != 0 {
							continue
						}
						w.edgeState[eids[ai]] |= stateListed
						w.ext = append(w.ext, cand{from: c.to, to: to2, id: eids[ai]})
					}
				}
				child := w.segArena[w.edges][:0]
				if p+1 < hi {
					child = append(child, seg{p + 1, hi})
				}
				child = append(child, segs[si+1:]...)
				if extraStart < len(w.ext) {
					child = append(child, seg{extraStart, len(w.ext)})
				}
				w.grow(child)
				if w.aborted {
					return
				}
				for _, x := range w.ext[extraStart:] {
					w.edgeState[x.id] &^= stateListed
				}
				w.ext = w.ext[:extraStart]
			}

			w.removeEdge(c)
			w.edgeState[c.id] |= stateBanned
		}
	}
	for _, s := range segs {
		for p := s.lo; p < s.hi; p++ {
			w.edgeState[w.ext[p].id] &^= stateBanned
		}
	}
}

// leafRun returns the exclusive end j of the maximal run ext[p:j) of
// candidates that share c.from, attach currently-absent nodes, and agree on
// the attached node's label slot. Runs of length 1 still profit from the
// batched counting path.
func (w *worker) leafRun(p, hi int) int {
	c := w.ext[p]
	if w.nodePos[c.to] >= 0 {
		return p
	}
	slot := w.labelSlot(c.to)
	j := p + 1
	for j < hi {
		n := w.ext[j]
		if n.from != c.from || w.nodePos[n.to] >= 0 || w.labelSlot(n.to) != slot {
			break
		}
		j++
	}
	return j
}

// labelSlot returns the encoding label slot of node v as a non-subgraph
// node (root masking never applies: the root is always in the subgraph).
func (w *worker) labelSlot(v graph.NodeID) int32 {
	return int32(w.g.Label(v))
}

// addEdge installs candidate c's edge into the subgraph, adding the far
// endpoint as a new node if necessary, and updates typed degrees and the
// rolling hash incrementally.
func (w *worker) addEdge(c cand) {
	pa := w.nodePos[c.from]
	pb := w.nodePos[c.to]
	fresh := pb < 0
	if fresh {
		pb = int32(len(w.nodes))
		w.nodePos[c.to] = pb
		w.nodes = append(w.nodes, c.to)
		w.slabels = append(w.slabels, w.labelSlot(c.to))
		w.tv = append(w.tv, w.zeroRow...)
		w.rv = append(w.rv, 0)
	}
	la, lb := w.slabels[pa], w.slabels[pb]
	w.tv[int(pa)*w.k+int(lb)]++
	w.tv[int(pb)*w.k+int(la)]++

	w.hash -= w.pows.mix(w.rv[pa], la)
	w.rv[pa] += w.pows.term(la, lb)
	w.hash += w.pows.mix(w.rv[pa], la)

	if fresh {
		w.rv[pb] = w.pows.term(lb, la)
		w.hash += w.pows.mix(w.rv[pb], lb)
	} else {
		w.hash -= w.pows.mix(w.rv[pb], lb)
		w.rv[pb] += w.pows.term(lb, la)
		w.hash += w.pows.mix(w.rv[pb], lb)
	}

	w.edges++
	w.edgeState[c.id] |= stateInSubgraph
}

// removeEdge undoes addEdge. The far endpoint is dropped if this edge was
// its only connection — which is always the case for the endpoint that
// addEdge created, because enumeration removes edges in LIFO order.
func (w *worker) removeEdge(c cand) {
	pa := w.nodePos[c.from]
	pb := w.nodePos[c.to]
	la, lb := w.slabels[pa], w.slabels[pb]
	w.tv[int(pa)*w.k+int(lb)]--
	w.tv[int(pb)*w.k+int(la)]--

	w.hash -= w.pows.mix(w.rv[pa], la)
	w.rv[pa] -= w.pows.term(la, lb)
	w.hash += w.pows.mix(w.rv[pa], la)

	w.edges--
	w.edgeState[c.id] &^= stateInSubgraph

	// Drop the far node if it just became isolated and is the most
	// recently added node (LIFO discipline guarantees this for nodes the
	// matching addEdge created).
	dropped := false
	if int(pb) == len(w.nodes)-1 {
		row := w.tv[int(pb)*w.k : (int(pb)+1)*w.k]
		isolated := true
		for _, t := range row {
			if t != 0 {
				isolated = false
				break
			}
		}
		if isolated {
			w.hash -= w.pows.mix(w.rv[pb], lb)
			w.nodePos[c.to] = -1
			w.nodes = w.nodes[:pb]
			w.slabels = w.slabels[:pb]
			w.tv = w.tv[:int(pb)*w.k]
			w.rv = w.rv[:pb]
			dropped = true
		}
	}
	if !dropped {
		w.hash -= w.pows.mix(w.rv[pb], lb)
		w.rv[pb] -= w.pows.term(lb, la)
		w.hash += w.pows.mix(w.rv[pb], lb)
	}
}

// count registers the current subgraph in the census: one counter-table
// probe per emission, with the canonical sequence materialised only the
// first time this root (and this worker's lifetime) sees the key. In
// rolling-hash mode the steady state — warm table, known vocabulary —
// performs no allocation and no map operation at all.
func (w *worker) count() {
	if w.opts.KeyMode == CanonicalString {
		s := w.sequence()
		key := fnvSequence(s)
		if w.tab.add(key, 1) {
			if _, ok := w.repr[key]; !ok {
				w.repr[key] = s
			}
		}
	} else if w.tab.add(w.hash, 1) {
		if _, ok := w.repr[w.hash]; !ok {
			w.repr[w.hash] = w.sequence()
		}
	}
	w.emissions++
}

// sequence materialises the canonical characteristic sequence of the
// current subgraph.
func (w *worker) sequence() Sequence {
	n := len(w.nodes)
	vals := make([]int32, 0, n*(w.k+1))
	for i := 0; i < n; i++ {
		vals = append(vals, w.slabels[i])
		vals = append(vals, w.tv[i*w.k:(i+1)*w.k]...)
	}
	s := Sequence{K: w.k, Values: vals}
	s.normalize()
	return s
}
