package core

import "hsgf/internal/graph"

// FaultHooks is the exported face of the deterministic fault-injection
// seam threaded into census workers. It exists so packages layered on
// top of the extractor (the serving daemon, future pipeline stages) can
// exercise their own failure semantics against real census faults —
// slow roots, panicking roots, runaway roots — at exactly the points
// where production faults occur. Hooks run on census worker goroutines;
// they may sleep or panic, but must not touch worker state.
//
// Intended for tests only: a nil hook set (the default) costs one
// pointer check per poll interval.
type FaultHooks struct {
	// OnRootStart fires once per root, before enumeration begins.
	OnRootStart func(root graph.NodeID)
	// OnStep fires at every periodic poll point (every pollInterval
	// candidate steps) with the running step count.
	OnStep func(root graph.NodeID, step uint64)
}

// SetFaultHooks installs (or, with nil, removes) the fault-injection
// hooks on workers checked out of the pool after the call. Not safe to
// call concurrently with an extraction.
func (e *Extractor) SetFaultHooks(h *FaultHooks) {
	if h == nil {
		e.hooks = nil
		return
	}
	e.hooks = &faultHooks{onRootStart: h.OnRootStart, onStep: h.OnStep}
}
