package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hsgf/internal/graph"
)

// denseGraph builds a graph whose censuses are large enough to exercise
// truncation and cancellation.
func denseGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(404))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
	for i := 0; i < n; i++ {
		b.AddLabeledNode(graph.Label(rng.Intn(2)))
	}
	for u := 0; u < n; u++ {
		for k := 0; k < 8; k++ {
			v := rng.Intn(n)
			if v != u {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

func TestMaxSubgraphsPerRootTruncates(t *testing.T) {
	g := denseGraph(t, 100)
	full, _ := NewExtractor(g, Options{MaxEdges: 4})
	cFull := full.Census(0)
	if cFull.Truncated {
		t.Fatal("unbounded census must not be truncated")
	}
	if cFull.Subgraphs < 1000 {
		t.Fatalf("test graph too sparse: %d subgraphs", cFull.Subgraphs)
	}

	budget := int64(500)
	capped, _ := NewExtractor(g, Options{MaxEdges: 4, MaxSubgraphsPerRoot: budget})
	c := capped.Census(0)
	if !c.Truncated {
		t.Fatal("capped census must be flagged truncated")
	}
	// Budget is enforced up to one leaf-batch of slack.
	if c.Subgraphs < budget || c.Subgraphs > budget+int64(g.MaxDegree()) {
		t.Fatalf("truncated at %d subgraphs, want ≈ %d", c.Subgraphs, budget)
	}
	var sum int64
	for _, n := range c.Counts {
		sum += n
	}
	if sum != c.Subgraphs {
		t.Fatal("truncated counts inconsistent with total")
	}
}

func TestTruncationLeavesWorkerStateClean(t *testing.T) {
	// After a truncated root, further censuses through the same
	// extractor must be exact: compare against a fresh extractor.
	g := denseGraph(t, 60)
	ex, _ := NewExtractor(g, Options{MaxEdges: 3, MaxSubgraphsPerRoot: 100})
	_ = ex.Census(0) // truncated

	// Pick a low-degree node whose census fits the budget.
	small := graph.NodeID(-1)
	for v := 0; v < g.NumNodes(); v++ {
		probe, _ := NewExtractor(g, Options{MaxEdges: 3})
		if probe.Census(graph.NodeID(v)).Subgraphs < 100 {
			small = graph.NodeID(v)
			break
		}
	}
	if small < 0 {
		t.Skip("no node with a small census in this graph")
	}
	got := ex.Census(small)
	fresh, _ := NewExtractor(g, Options{MaxEdges: 3})
	want := fresh.Census(small)
	if got.Truncated {
		t.Fatal("small census should not be truncated")
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatal("state leaked from the truncated root into the next census")
	}
}

func TestCensusAllContextCancellation(t *testing.T) {
	g := denseGraph(t, 400)
	ex, _ := NewExtractor(g, Options{MaxEdges: 5})
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cs, err := ex.CensusAllContext(ctx, roots, 2)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	var done, truncated, pending int
	for _, c := range cs {
		switch {
		case c == nil:
			pending++
		case c.Truncated:
			truncated++
		default:
			done++
		}
	}
	if pending == 0 {
		t.Error("expected pending roots after early cancellation")
	}
	t.Logf("done=%d truncated=%d pending=%d in %v", done, truncated, pending, elapsed)
}

func TestCensusAllContextCompletesWithoutCancel(t *testing.T) {
	g := denseGraph(t, 30)
	ex, _ := NewExtractor(g, Options{MaxEdges: 2})
	roots := []graph.NodeID{0, 1, 2}
	cs, err := ex.CensusAllContext(context.Background(), roots, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		if c == nil || c.Truncated {
			t.Fatalf("root %d incomplete without cancellation", i)
		}
	}
	// Results match plain CensusAll.
	plain := ex.CensusAll(roots, 1)
	for i := range roots {
		if !reflect.DeepEqual(cs[i].Counts, plain[i].Counts) {
			t.Fatal("context path disagrees with plain path")
		}
	}
}
