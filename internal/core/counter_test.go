package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// drainTable materialises a counter table's live entries as a map.
func drainTable(t *counterTable) map[uint64]int64 {
	out := make(map[uint64]int64, t.len())
	t.forEach(func(k uint64, n int64) { out[k] = n })
	return out
}

// TestCounterTableMatchesMapRandom drives the counter table and a plain
// map[uint64]int64 with identical operation streams across many epochs —
// small key domains (forcing heavy duplication), large random keys, and
// clustered keys that collide under the probe hash — and requires the
// drained table to equal the map exactly after every epoch. This is the
// data-structure half of the "counter table == map census" guarantee;
// the census-level half rides on the reference-oracle suite.
func TestCounterTableMatchesMapRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	tab := newCounterTable(4) // deliberately undersized: exercise growth
	for epoch := 0; epoch < 200; epoch++ {
		tab.reset()
		want := make(map[uint64]int64)
		ops := rng.Intn(2000)
		mode := epoch % 4
		for op := 0; op < ops; op++ {
			var key uint64
			switch mode {
			case 0: // tiny domain: mostly increments of existing keys
				key = uint64(rng.Intn(8))
			case 1: // uniform random keys
				key = rng.Uint64()
			case 2: // clustered keys: consecutive values probe-collide
				key = 0xdeadbeef0000 + uint64(rng.Intn(64))
			default: // mixture, with occasional zero key
				if rng.Intn(10) == 0 {
					key = 0
				} else {
					key = uint64(rng.Intn(200))
				}
			}
			delta := int64(1 + rng.Intn(5))
			_, existed := want[key]
			isNew := tab.add(key, delta)
			if isNew == existed {
				t.Fatalf("epoch %d op %d: add(%#x) reported new=%v, map says existed=%v",
					epoch, op, key, isNew, existed)
			}
			want[key] += delta
		}
		if got := drainTable(tab); !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d (mode %d): table diverged from map: %d vs %d entries",
				epoch, mode, len(got), len(want))
		}
		if tab.len() != len(want) {
			t.Fatalf("epoch %d: len() = %d, want %d", epoch, tab.len(), len(want))
		}
	}
}

// TestCounterTableEpochWrap forces the 32-bit epoch to wrap and checks
// that entries from the pre-wrap generation cannot alias as live.
func TestCounterTableEpochWrap(t *testing.T) {
	tab := newCounterTable(4)
	tab.add(42, 7)
	tab.epoch = ^uint32(0) // jump to the last epoch value
	tab.reset()            // wraps: must clear and restart at epoch 1
	if tab.epoch != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", tab.epoch)
	}
	if tab.len() != 0 {
		t.Fatalf("post-wrap table has %d live entries, want 0", tab.len())
	}
	if n, ok := tab.get(42); ok {
		t.Fatalf("key 42 survived the epoch wrap with count %d", n)
	}
	if !tab.add(42, 3) {
		t.Fatal("add after wrap must report a new key")
	}
	if n, _ := tab.get(42); n != 3 {
		t.Fatalf("post-wrap count = %d, want 3 (stale pre-wrap count leaked)", n)
	}
}

// TestCounterTableGrowthPreservesCounts fills one epoch far past the
// initial capacity so the table grows repeatedly mid-epoch.
func TestCounterTableGrowthPreservesCounts(t *testing.T) {
	tab := newCounterTable(1)
	want := make(map[uint64]int64)
	rng := rand.New(rand.NewSource(5))
	tab.reset()
	for i := 0; i < 100000; i++ {
		key := uint64(rng.Intn(50000))
		tab.add(key, 1)
		want[key]++
	}
	if got := drainTable(tab); !reflect.DeepEqual(got, want) {
		t.Fatalf("table diverged after growth: %d vs %d entries", len(got), len(want))
	}
}

// FuzzCounterTable interprets fuzz bytes as an op stream over the table
// and a shadow map: byte pairs form keys, a zero byte resets the epoch.
// The table must agree with the map at every reset and at the end.
func FuzzCounterTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 1, 2})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{0, 0, 1, 0, 255, 254, 253})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := newCounterTable(2)
		want := make(map[uint64]int64)
		check := func() {
			if got := drainTable(tab); !reflect.DeepEqual(got, want) {
				t.Fatalf("table diverged from shadow map: %v vs %v", got, want)
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			if data[i] == 0 {
				check()
				tab.reset()
				want = make(map[uint64]int64)
				continue
			}
			// Mix the byte pair so keys spread over the full domain while
			// still colliding often for small inputs.
			key := splitmix64(uint64(data[i])<<8 | uint64(data[i+1]))
			if data[i+1]%3 == 0 {
				key &= 0xff // force duplicates
			}
			_, existed := want[key]
			if isNew := tab.add(key, 1); isNew == existed {
				t.Fatalf("add(%#x) new=%v, map existed=%v", key, isNew, existed)
			}
			want[key]++
		}
		check()
	})
}
