// Package core implements heterogeneous subgraph features: the
// characteristic-sequence encoding, the rolling hash, and the rooted
// subgraph census of Spitz et al., "Heterogeneous Subgraph Features for
// Information Networks" (GRADES-NDA'18), §3.
//
// The census enumerates, for a root node v, every connected subgraph of the
// network that contains v and has at most emax edges, and counts the
// occurrences of each subgraph type. Subgraph types are identified by a
// pseudo-canonical encoding — the labelled degree sequence of the subgraph —
// rather than by exact isomorphism, which makes the equality test O(1) via
// hashing. The resulting count vector is the node's feature.
package core

import (
	"fmt"
	"sort"
	"strings"

	"hsgf/internal/graph"
)

// Sequence is the characteristic sequence of a heterogeneous subgraph
// (paper §3.1): the concatenation of per-node sequences, each of length
// k+1 where k is the number of label slots. A per-node sequence is
// (t0, t1, ..., tk) with t0 the node's label and tl the number of the
// node's subgraph-neighbours carrying label l-1. Node sequences are sorted
// in descending lexicographic order, so the Sequence is a canonical form of
// the encoding: two subgraphs have equal encodings iff their Sequences are
// equal.
type Sequence struct {
	K      int     // number of label slots (graph labels, +1 if the root label is masked)
	Values []int32 // len = NumNodes * (K+1)
}

// NumNodes returns the number of nodes in the encoded subgraph.
func (s Sequence) NumNodes() int {
	if s.K == 0 {
		return 0
	}
	return len(s.Values) / (s.K + 1)
}

// NumEdges returns the number of edges in the encoded subgraph (half the
// sum of all typed degrees).
func (s Sequence) NumEdges() int {
	sum := 0
	stride := s.K + 1
	for n := 0; n < s.NumNodes(); n++ {
		for l := 1; l <= s.K; l++ {
			sum += int(s.Values[n*stride+l])
		}
	}
	return sum / 2
}

// Node returns the i-th per-node sequence (label, typed degrees). The
// returned slice aliases s.Values.
func (s Sequence) Node(i int) []int32 {
	stride := s.K + 1
	return s.Values[i*stride : (i+1)*stride]
}

// Equal reports whether two sequences encode the same subgraph type.
func (s Sequence) Equal(o Sequence) bool {
	if s.K != o.K || len(s.Values) != len(o.Values) {
		return false
	}
	for i, v := range s.Values {
		if v != o.Values[i] {
			return false
		}
	}
	return true
}

// normalize sorts the per-node sequences in descending lexicographic order,
// establishing the canonical form. It mutates s in place.
func (s *Sequence) normalize() {
	stride := s.K + 1
	n := s.NumNodes()
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i] = s.Values[i*stride : (i+1)*stride]
	}
	sort.Slice(rows, func(a, b int) bool { return lexGreater(rows[a], rows[b]) })
	out := make([]int32, 0, len(s.Values))
	for _, r := range rows {
		out = append(out, r...)
	}
	s.Values = out
}

func lexGreater(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// MaskedLabelName is the display name used for the artificial root label
// when root-label masking is enabled (paper §4.3.2).
const MaskedLabelName = "*"

// String renders the sequence in the paper's compact notation when
// possible (single-character label names and single-digit counts, e.g.
// "z010z010y002"), falling back to an unambiguous delimited form otherwise.
// labelName maps a label slot to its display name; slot K-1 may be the
// masked root label.
func (s Sequence) String(labelName func(int) string) string {
	stride := s.K + 1
	compact := true
	for i := 0; i < s.K; i++ {
		if len(labelName(i)) != 1 {
			compact = false
			break
		}
	}
	if compact {
		for _, v := range s.Values {
			if v > 9 {
				compact = false
				break
			}
		}
	}
	var b strings.Builder
	for n := 0; n < s.NumNodes(); n++ {
		row := s.Values[n*stride : (n+1)*stride]
		if compact {
			b.WriteString(labelName(int(row[0])))
			for _, t := range row[1:] {
				fmt.Fprintf(&b, "%d", t)
			}
		} else {
			if n > 0 {
				b.WriteByte(';')
			}
			b.WriteString(labelName(int(row[0])))
			b.WriteByte('|')
			for j, t := range row[1:] {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", t)
			}
		}
	}
	return b.String()
}

// SequenceOf computes the canonical characteristic sequence of an explicit
// subgraph of g, given by its node set and edge set (pairs of nodes). It is
// the reference implementation used to validate the incremental census and
// to encode user-supplied subgraphs. rootLabelOverride, if >= 0, replaces
// the label of root (root-label masking); pass root < 0 to disable.
//
// k is the number of label slots the encoding should use; it must be at
// least g.NumLabels(), and at least rootLabelOverride+1.
func SequenceOf(g *graph.Graph, nodes []graph.NodeID, edges [][2]graph.NodeID, k int, root graph.NodeID, rootLabelOverride graph.Label) Sequence {
	stride := k + 1
	idx := make(map[graph.NodeID]int, len(nodes))
	vals := make([]int32, len(nodes)*stride)
	labelOf := func(v graph.NodeID) graph.Label {
		if rootLabelOverride >= 0 && v == root {
			return rootLabelOverride
		}
		return g.Label(v)
	}
	for i, v := range nodes {
		idx[v] = i
		vals[i*stride] = int32(labelOf(v))
	}
	for _, e := range edges {
		a, b := idx[e[0]], idx[e[1]]
		vals[a*stride+1+int(labelOf(e[1]))]++
		vals[b*stride+1+int(labelOf(e[0]))]++
	}
	s := Sequence{K: k, Values: vals}
	s.normalize()
	return s
}

// ParseCompact parses a sequence in the compact notation produced by
// String for single-character alphabets (e.g. "z010z010y002"). It is the
// inverse used by tooling that round-trips feature names. labelIndex maps
// a single-character label name to its slot.
func ParseCompact(enc string, k int, labelIndex func(string) (int, bool)) (Sequence, error) {
	stride := k + 1
	if len(enc)%stride != 0 {
		return Sequence{}, fmt.Errorf("core: encoding %q length %d not divisible by node width %d", enc, len(enc), stride)
	}
	n := len(enc) / stride
	vals := make([]int32, 0, n*stride)
	for i := 0; i < n; i++ {
		chunk := enc[i*stride : (i+1)*stride]
		l, ok := labelIndex(chunk[:1])
		if !ok {
			return Sequence{}, fmt.Errorf("core: unknown label %q in encoding %q", chunk[:1], enc)
		}
		vals = append(vals, int32(l))
		for _, c := range chunk[1:] {
			if c < '0' || c > '9' {
				return Sequence{}, fmt.Errorf("core: bad count digit %q in encoding %q", c, enc)
			}
			vals = append(vals, int32(c-'0'))
		}
	}
	s := Sequence{K: k, Values: vals}
	s.normalize()
	return s, nil
}
