package core

import (
	"fmt"
	"sort"
	"strings"

	"hsgf/internal/graph"
)

// ReferenceCensus enumerates the rooted subgraph census by brute force:
// it explores all connected edge subsets containing root with at most
// opts.MaxEdges edges, deduplicating subsets via their sorted edge-id key,
// and tallies canonical characteristic sequences. Its cost is exponential
// in the neighbourhood size; it exists as a correctness oracle for the
// optimised census and for the isomorphism audit, not for production use.
//
// The result maps the canonical sequence rendering (label slots and counts
// joined by commas) to occurrence counts. opts.KeyMode and
// opts.DisableLeafBatching are ignored.
func ReferenceCensus(g *graph.Graph, root graph.NodeID, opts Options) map[string]int64 {
	k := g.NumLabels()
	maskSlot := graph.Label(-1)
	if opts.MaskRootLabel {
		maskSlot = graph.Label(k)
		k++
	}
	dmax := opts.MaxDegree
	if dmax <= 0 {
		dmax = int(^uint(0) >> 1)
	}

	counts := make(map[string]int64)
	seen := make(map[string]bool)

	// expandable reports whether edges incident to node x (inside the
	// subgraph) may be used to extend it: the root always may, other
	// nodes only if they are not hubs.
	expandable := func(x graph.NodeID) bool {
		return x == root || g.Degree(x) <= dmax
	}

	var rec func(edgeIDs []graph.EdgeID, nodes map[graph.NodeID]bool)
	rec = func(edgeIDs []graph.EdgeID, nodes map[graph.NodeID]bool) {
		key := edgeSetKey(edgeIDs)
		if seen[key] {
			return
		}
		seen[key] = true

		nodeList := make([]graph.NodeID, 0, len(nodes))
		for v := range nodes {
			nodeList = append(nodeList, v)
		}
		edges := make([][2]graph.NodeID, len(edgeIDs))
		for i, id := range edgeIDs {
			a, b := g.EdgeEndpoints(id)
			edges[i] = [2]graph.NodeID{a, b}
		}
		s := SequenceOf(g, nodeList, edges, k, root, maskSlot)
		counts[canonicalKey(s)]++

		if len(edgeIDs) == opts.MaxEdges {
			return
		}
		inSet := make(map[graph.EdgeID]bool, len(edgeIDs))
		for _, id := range edgeIDs {
			inSet[id] = true
		}
		tried := make(map[graph.EdgeID]bool)
		for v := range nodes {
			if !expandable(v) {
				continue
			}
			eids := g.IncidentEdges(v)
			adj := g.Neighbors(v)
			for i, id := range eids {
				if inSet[id] || tried[id] {
					continue
				}
				tried[id] = true
				w := adj[i]
				newNodes := nodes
				if !nodes[w] {
					newNodes = make(map[graph.NodeID]bool, len(nodes)+1)
					for x := range nodes {
						newNodes[x] = true
					}
					newNodes[w] = true
				}
				rec(append(append([]graph.EdgeID(nil), edgeIDs...), id), newNodes)
			}
		}
	}

	// Seed with each edge incident to the root.
	eids := g.IncidentEdges(root)
	adj := g.Neighbors(root)
	for i, id := range eids {
		rec([]graph.EdgeID{id}, map[graph.NodeID]bool{root: true, adj[i]: true})
	}
	return counts
}

func edgeSetKey(ids []graph.EdgeID) string {
	sorted := append([]graph.EdgeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for _, id := range sorted {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// canonicalKey renders a canonical sequence as an alphabet-independent
// comparison key.
func canonicalKey(s Sequence) string {
	var b strings.Builder
	for i, v := range s.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// CanonicalCounts re-keys a census by the alphabet-independent canonical
// rendering of each encoding, using the extractor's decode table. It is
// the bridge between the optimised census and the reference enumerator in
// tests, and a convenient stable representation for serialization.
func CanonicalCounts(e *Extractor, c *Census) (map[string]int64, error) {
	out := make(map[string]int64, len(c.Counts))
	for key, n := range c.Counts {
		s, ok := e.Decode(key)
		if !ok {
			return nil, fmt.Errorf("core: census key %x has no decoded representative", key)
		}
		out[canonicalKey(s)] += n
	}
	return out, nil
}
