package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// checkpointVersion guards the snapshot schema; a reader that meets a
// different version refuses the file instead of misinterpreting it.
const checkpointVersion = 1

// DefaultCheckpointInterval is the number of completed roots between
// snapshots when CheckpointConfig.Interval is zero.
const DefaultCheckpointInterval = 64

// CheckpointConfig drives CensusAllCheckpoint: where the snapshot lives,
// how often it is refreshed, and whether an existing snapshot should
// seed the run.
type CheckpointConfig struct {
	// Path is the snapshot file, written as a checksummed store envelope
	// via temp file + fsync + rename + parent-directory fsync, so a
	// crash mid-snapshot never corrupts (or un-persists) the previous
	// snapshot. Legacy bare-JSON checkpoints are still readable.
	Path string
	// Interval is the number of completed roots between snapshots;
	// <= 0 selects DefaultCheckpointInterval.
	Interval int
	// Resume loads the snapshot at Path (when present) and skips every
	// root it already covers. A snapshot extracted under different
	// options, over a different graph, or for a different root list is
	// rejected with a descriptive error rather than silently mixed in.
	Resume bool
}

// censusSnapshot is the on-disk form of a partially completed CensusAll
// run: the extraction fingerprint, the completed rows, and the canonical
// sequences behind every key they reference (so a resumed extractor can
// still decode its whole vocabulary).
type censusSnapshot struct {
	Version       int     `json:"version"`
	MaxEdges      int     `json:"max_edges"`
	MaxDegree     int     `json:"max_degree,omitempty"`
	MaskRootLabel bool    `json:"mask_root_label,omitempty"`
	KeyMode       int     `json:"key_mode,omitempty"`
	GraphNodes    int     `json:"graph_nodes"`
	GraphEdges    int     `json:"graph_edges"`
	Roots         []int64 `json:"roots"`

	Rows []snapshotRow  `json:"rows"`
	Repr []snapshotRepr `json:"repr"`
}

// snapshotRow is one completed census: its position in the run's root
// list and its counts as parallel key/count slices in ascending key
// order (deterministic output for byte-identical re-snapshots).
type snapshotRow struct {
	Index     int      `json:"index"`
	Root      int64    `json:"root"`
	Keys      []uint64 `json:"keys"`
	Counts    []int64  `json:"counts"`
	Subgraphs int64    `json:"subgraphs"`
	Flags     uint8    `json:"flags,omitempty"`
}

// snapshotRepr is one decoded vocabulary entry.
type snapshotRepr struct {
	Key    uint64  `json:"key"`
	K      int     `json:"k"`
	Values []int32 `json:"values"`
}

// CensusAllCheckpoint is CensusAllContext with crash resilience: every
// cfg.Interval completed roots (and once more when the run ends, whether
// it finished or was cancelled) the completed rows are snapshotted to
// cfg.Path, and a run started with cfg.Resume skips roots the snapshot
// already covers. Returns the full census slice aligned with roots;
// pending roots are nil when the context was cancelled, and the error is
// ctx.Err() or the first snapshot I/O failure.
func (e *Extractor) CensusAllCheckpoint(ctx context.Context, roots []graph.NodeID, workers int, cfg CheckpointConfig) ([]*Census, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("core: checkpoint path must not be empty")
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}

	col := &checkpointCollector{
		e:        e,
		path:     cfg.Path,
		interval: interval,
		roots:    roots,
		done:     make(map[int]*Census),
	}
	if cfg.Resume {
		if err := col.load(); err != nil {
			return nil, err
		}
	}

	// Split off the roots the snapshot already covers.
	pending := make([]int, 0, len(roots))
	for i := range roots {
		if _, ok := col.done[i]; !ok {
			pending = append(pending, i)
		}
	}
	out := make([]*Census, len(roots))
	for i, c := range col.done {
		out[i] = c
	}
	if len(pending) == 0 {
		return out, ctx.Err()
	}

	pendingRoots := make([]graph.NodeID, len(pending))
	for j, i := range pending {
		pendingRoots[j] = roots[i]
	}

	var stop atomic.Bool
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()

	sub, _ := e.censusAll(pendingRoots, workers, censusRun{
		stop: &stop,
		done: func(j int, c *Census) { col.add(pending[j], c) },
	})
	for j, i := range pending {
		out[i] = sub[j]
	}
	// Final snapshot: a finished run leaves a complete checkpoint, a
	// cancelled one keeps everything completed so far.
	if err := col.snapshot(); err != nil {
		return out, err
	}
	if err := col.err(); err != nil {
		return out, err
	}
	return out, ctx.Err()
}

// checkpointCollector owns the completed-row map and the snapshot file.
// Workers deliver rows through add; snapshots are taken synchronously
// under the collector lock so a row is never half-recorded.
type checkpointCollector struct {
	e        *Extractor
	path     string
	interval int
	roots    []graph.NodeID

	mu        sync.Mutex
	done      map[int]*Census
	sinceSnap int
	ioErr     error // first snapshot failure; sticky
}

func (c *checkpointCollector) add(i int, cen *Census) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[i] = cen
	c.sinceSnap++
	if c.sinceSnap >= c.interval && c.ioErr == nil {
		c.ioErr = c.writeLocked()
		c.sinceSnap = 0
	}
}

func (c *checkpointCollector) snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ioErr != nil {
		return c.ioErr
	}
	c.ioErr = c.writeLocked()
	return c.ioErr
}

func (c *checkpointCollector) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ioErr
}

// writeLocked assembles and atomically replaces the snapshot file.
func (c *checkpointCollector) writeLocked() error {
	opts := c.e.Options()
	snap := censusSnapshot{
		Version:       checkpointVersion,
		MaxEdges:      opts.MaxEdges,
		MaxDegree:     opts.MaxDegree,
		MaskRootLabel: opts.MaskRootLabel,
		KeyMode:       int(opts.KeyMode),
		GraphNodes:    c.e.g.NumNodes(),
		GraphEdges:    c.e.g.NumEdges(),
	}
	snap.Roots = make([]int64, len(c.roots))
	for i, r := range c.roots {
		snap.Roots[i] = int64(r)
	}

	indices := make([]int, 0, len(c.done))
	for i := range c.done {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	need := make(map[uint64]bool)
	for _, i := range indices {
		cen := c.done[i]
		row := snapshotRow{
			Index:     i,
			Root:      int64(cen.Root),
			Subgraphs: cen.Subgraphs,
			Flags:     uint8(cen.Flags),
		}
		row.Keys = make([]uint64, 0, len(cen.Counts))
		for k := range cen.Counts {
			row.Keys = append(row.Keys, k)
			need[k] = true
		}
		sort.Slice(row.Keys, func(a, b int) bool { return row.Keys[a] < row.Keys[b] })
		row.Counts = make([]int64, len(row.Keys))
		for j, k := range row.Keys {
			row.Counts[j] = cen.Counts[k]
		}
		snap.Rows = append(snap.Rows, row)
	}

	// Snapshot only the vocabulary the completed rows reference; workers
	// merge their repr before delivering a row, so every key resolves.
	keys := make([]uint64, 0, len(need))
	for k := range need {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, k := range keys {
		seq, ok := c.e.Decode(k)
		if !ok {
			return fmt.Errorf("core: checkpoint key %x has no representative", k)
		}
		snap.Repr = append(snap.Repr, snapshotRepr{Key: k, K: seq.K, Values: seq.Values})
	}

	return writeCheckpointFile(c.path, &snap)
}

// writeCheckpointFile persists one checkpoint as a checksummed envelope
// through the store's crash-safe write path.
func writeCheckpointFile(path string, snap *censusSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	sections, err := artifactSections(ArtifactCheckpoint, payload)
	if err != nil {
		return err
	}
	return store.WriteFile(path, sections)
}

// readCheckpointFile reads a checkpoint written by writeCheckpointFile,
// falling back to the legacy bare-JSON layout for files produced before
// the envelope format. Envelope damage and format mismatches surface as
// typed store errors.
func readCheckpointFile(path string) (*censusSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap censusSnapshot
	if store.IsEnvelope(data) {
		env, err := store.ParseEnvelope(data)
		if err != nil {
			return nil, err
		}
		payload, err := artifactPayload(env, ArtifactCheckpoint)
		if err != nil {
			return nil, err
		}
		data = payload
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %v", store.ErrCorrupt, err)
	}
	return &snap, nil
}

// load reads the snapshot at c.path, validates it against this run, and
// fills c.done. A missing file is not an error: the run starts fresh.
func (c *checkpointCollector) load() error {
	snap, err := readCheckpointFile(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", c.path, err)
	}
	if err := c.validate(snap); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", c.path, err)
	}

	seqs := make(map[uint64]Sequence, len(snap.Repr))
	for _, r := range snap.Repr {
		seqs[r.Key] = Sequence{K: r.K, Values: r.Values}
	}
	c.e.mergeRepr(seqs)

	for _, row := range snap.Rows {
		// Transiently incomplete rows — cut short by the cancellation
		// that ended the previous run, or by a worker panic — are
		// re-extracted on resume. Deterministically degraded rows
		// (budget, deadline) are kept: re-running them would only spend
		// the same budget again.
		if CensusFlag(row.Flags)&(FlagCancelled|FlagPanicked) != 0 {
			continue
		}
		cen := &Census{
			Root:      graph.NodeID(row.Root),
			Counts:    make(map[uint64]int64, len(row.Keys)),
			Subgraphs: row.Subgraphs,
			Flags:     CensusFlag(row.Flags),
			Truncated: CensusFlag(row.Flags) != 0,
		}
		for j, k := range row.Keys {
			cen.Counts[k] = row.Counts[j]
		}
		c.done[row.Index] = cen
	}
	return nil
}

func (c *checkpointCollector) validate(snap *censusSnapshot) error {
	if snap.Version != checkpointVersion {
		return fmt.Errorf("%w: snapshot version %d, want %d", store.ErrUnsupportedVersion, snap.Version, checkpointVersion)
	}
	opts := c.e.Options()
	switch {
	case snap.MaxEdges != opts.MaxEdges:
		return fmt.Errorf("snapshot extracted with emax=%d, run uses %d", snap.MaxEdges, opts.MaxEdges)
	case snap.MaxDegree != opts.MaxDegree:
		return fmt.Errorf("snapshot extracted with dmax=%d, run uses %d", snap.MaxDegree, opts.MaxDegree)
	case snap.MaskRootLabel != opts.MaskRootLabel:
		return fmt.Errorf("snapshot mask_root_label=%v, run uses %v", snap.MaskRootLabel, opts.MaskRootLabel)
	case snap.KeyMode != int(opts.KeyMode):
		return fmt.Errorf("snapshot key mode %v, run uses %v", KeyMode(snap.KeyMode), opts.KeyMode)
	case snap.GraphNodes != c.e.g.NumNodes() || snap.GraphEdges != c.e.g.NumEdges():
		return fmt.Errorf("snapshot graph has %d nodes / %d edges, run's graph has %d / %d",
			snap.GraphNodes, snap.GraphEdges, c.e.g.NumNodes(), c.e.g.NumEdges())
	case len(snap.Roots) != len(c.roots):
		return fmt.Errorf("snapshot covers %d roots, run has %d", len(snap.Roots), len(c.roots))
	}
	for i, r := range snap.Roots {
		if r != int64(c.roots[i]) {
			return fmt.Errorf("snapshot root list diverges at index %d: %d vs %d", i, r, c.roots[i])
		}
	}
	for _, row := range snap.Rows {
		if row.Index < 0 || row.Index >= len(c.roots) {
			return fmt.Errorf("snapshot row index %d outside %d roots", row.Index, len(c.roots))
		}
		if row.Root != int64(c.roots[row.Index]) {
			return fmt.Errorf("snapshot row %d is for root %d, run expects %d", row.Index, row.Root, c.roots[row.Index])
		}
		if len(row.Keys) != len(row.Counts) {
			return fmt.Errorf("snapshot row %d has %d keys but %d counts", row.Index, len(row.Keys), len(row.Counts))
		}
	}
	return nil
}

// ReadCensusCheckpointInfo summarises a checkpoint file without needing
// the extractor it belongs to: total roots, completed rows, and how many
// of those are degraded (non-zero flags). Intended for tooling and
// progress reporting.
func ReadCensusCheckpointInfo(path string) (total, done, degraded int, err error) {
	snap, err := readCheckpointFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if snap.Version != checkpointVersion {
		return 0, 0, 0, fmt.Errorf("core: checkpoint %s: %w: version %d, want %d",
			path, store.ErrUnsupportedVersion, snap.Version, checkpointVersion)
	}
	for _, row := range snap.Rows {
		if row.Flags != 0 {
			degraded++
		}
	}
	return len(snap.Roots), len(snap.Rows), degraded, nil
}
