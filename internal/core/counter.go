package core

// counterTable is the census hot-path counter: an open-addressing
// (linear-probing, power-of-two sized) uint64 -> int64 table with
// epoch-based clearing, owned by one census worker and reused across
// every root that worker processes.
//
// It replaces the per-root map[uint64]int64 for two reasons:
//
//   - Allocation discipline. A map is rebuilt per root, and a map insert
//     may allocate; the table's slot arrays persist across roots and are
//     "cleared" by bumping a 32-bit epoch, so a steady-state census
//     performs zero allocations per emission (the flat-array memory
//     discipline of the motif-counting engines, cf. ESCAPE/PGD).
//   - One probe per emission. add reports whether the key is new in the
//     current epoch, which folds the census's two map operations per
//     emission (counts increment + repr membership probe) into a single
//     probe: the caller materialises the canonical sequence only when
//     add says "first sight".
//
// Census keys are already avalanche-mixed (SplitMix64 sums or FNV-64a
// digests), but the table still scrambles them with a Fibonacci multiply
// before taking the top bits, so it stays robust if a future key scheme
// is less uniform.
type counterTable struct {
	keys   []uint64
	counts []int64
	epochs []uint32
	epoch  uint32
	shift  uint // 64 - log2(len(keys))
	n      int  // live entries this epoch
}

// counterMinSize is the smallest slot count; a power of two.
const counterMinSize = 256

// fibMul is 2^64 / phi, the Fibonacci-hashing multiplier.
const fibMul = 0x9e3779b97f4a7c15

func newCounterTable(hint int) *counterTable {
	size := counterMinSize
	for size < hint*2 {
		size *= 2
	}
	t := &counterTable{epoch: 1}
	t.alloc(size)
	return t
}

func (t *counterTable) alloc(size int) {
	t.keys = make([]uint64, size)
	t.counts = make([]int64, size)
	t.epochs = make([]uint32, size)
	shift := uint(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	t.shift = shift
}

// reset begins a new epoch: every slot becomes logically empty in O(1).
// When the 32-bit epoch wraps, the epoch array is zeroed once so a slot
// written four billion roots ago cannot alias as live.
func (t *counterTable) reset() {
	t.n = 0
	t.epoch++
	if t.epoch == 0 {
		clear(t.epochs)
		t.epoch = 1
	}
}

// add increments key's counter by delta and reports whether the key is
// new in the current epoch. It never allocates unless the table must
// grow (past 3/4 load), which happens only until the table has seen the
// graph's working vocabulary size.
func (t *counterTable) add(key uint64, delta int64) (isNew bool) {
	mask := len(t.keys) - 1
	i := int((key * fibMul) >> t.shift)
	for {
		if t.epochs[i] != t.epoch {
			t.keys[i] = key
			t.counts[i] = delta
			t.epochs[i] = t.epoch
			t.n++
			if t.n*4 > len(t.keys)*3 {
				t.grow()
			}
			return true
		}
		if t.keys[i] == key {
			t.counts[i] += delta
			return false
		}
		i = (i + 1) & mask
	}
}

// get returns key's count in the current epoch, for tests and debugging.
func (t *counterTable) get(key uint64) (int64, bool) {
	mask := len(t.keys) - 1
	i := int((key * fibMul) >> t.shift)
	for {
		if t.epochs[i] != t.epoch {
			return 0, false
		}
		if t.keys[i] == key {
			return t.counts[i], true
		}
		i = (i + 1) & mask
	}
}

// len returns the number of live entries in the current epoch.
func (t *counterTable) len() int { return t.n }

// grow doubles the table and reinserts the live entries. Stale slots
// (old epochs) are dropped, so growth also compacts.
func (t *counterTable) grow() {
	oldKeys, oldCounts, oldEpochs, oldEpoch := t.keys, t.counts, t.epochs, t.epoch
	t.alloc(2 * len(oldKeys))
	mask := len(t.keys) - 1
	for j, e := range oldEpochs {
		if e != oldEpoch {
			continue
		}
		key := oldKeys[j]
		i := int((key * fibMul) >> t.shift)
		for t.epochs[i] == t.epoch {
			i = (i + 1) & mask
		}
		t.keys[i] = key
		t.counts[i] = oldCounts[j]
		t.epochs[i] = t.epoch
	}
}

// forEach visits every live (key, count) pair of the current epoch in
// unspecified order.
func (t *counterTable) forEach(fn func(key uint64, count int64)) {
	for i, e := range t.epochs {
		if e == t.epoch {
			fn(t.keys[i], t.counts[i])
		}
	}
}
