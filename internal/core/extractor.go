package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hsgf/internal/graph"
)

// KeyMode selects how census keys are derived from subgraph encodings.
type KeyMode int

const (
	// RollingHash keys the census by the incrementally maintained rolling
	// hash of the characteristic sequence (paper §3.2). This is the
	// default and the fast path.
	RollingHash KeyMode = iota
	// CanonicalString materialises the canonical sequence at every
	// emission and keys the census by a digest of it. This is the
	// "convert to string and hash the string" strategy the paper improves
	// upon; it is retained as the comparator for the hashing ablation and
	// as a correctness oracle in tests.
	CanonicalString
)

func (m KeyMode) String() string {
	switch m {
	case RollingHash:
		return "rolling-hash"
	case CanonicalString:
		return "canonical-string"
	default:
		return fmt.Sprintf("KeyMode(%d)", int(m))
	}
}

// Options configures subgraph feature extraction.
type Options struct {
	// MaxEdges is emax, the maximum number of edges per enumerated
	// subgraph. The paper uses 5 or 6. Required, must be >= 1.
	MaxEdges int
	// MaxDegree is dmax, the hub cutoff: nodes with degree > MaxDegree
	// are added to subgraphs when discovered but never explored beyond.
	// <= 0 means unlimited (the paper's dmax = ∞).
	MaxDegree int
	// MaskRootLabel replaces the root's label with an artificial label
	// during extraction so the feature does not leak the root's own class
	// (paper §4.3.2). The artificial label occupies one extra label slot.
	MaskRootLabel bool
	// KeyMode selects rolling-hash (default) or canonical-string keys.
	KeyMode KeyMode
	// DisableLeafBatching turns off the heterogeneous optimization
	// heuristic that counts same-labelled leaf attachments in one step.
	// Only useful for ablation benchmarks; results are identical.
	DisableLeafBatching bool
	// MaxSubgraphsPerRoot, when positive, truncates a root's census once
	// that many subgraph occurrences have been counted. Runaway roots —
	// typically hubs, to which the dmax heuristic does not apply — then
	// return partial censuses flagged Truncated instead of stalling the
	// extraction (the Table 3 outlier mitigation as a hard bound).
	MaxSubgraphsPerRoot int64
	// RootDeadline, when positive, bounds the wall-clock enumeration time
	// of each individual root. A root that exceeds it returns its partial
	// census flagged FlagDeadlineExceeded while the rest of the run
	// proceeds — the per-root analogue of whole-run context cancellation,
	// sized for the heavy right tail of the paper's Table 3 distribution.
	RootDeadline time.Duration
	// LPTRootOrder dispatches roots to parallel census workers in
	// descending-degree order (longest-processing-time-first list
	// scheduling, with degree as the cost proxy). On skewed graphs this
	// keeps one late-arriving hub root from serialising the tail of a
	// parallel extraction. Results are unaffected — output stays aligned
	// with the caller's root order — so this is purely a scheduling hint.
	LPTRootOrder bool
}

// DefaultOptions returns the paper's label-prediction configuration:
// emax = 5, no hub cutoff, root label masked.
func DefaultOptions() Options {
	return Options{MaxEdges: 5, MaskRootLabel: true}
}

// Extractor computes heterogeneous subgraph features over one graph. It is
// safe for concurrent use; per-goroutine state lives in workers.
type Extractor struct {
	g    *graph.Graph
	opts Options
	k    int // label slots (graph labels + 1 if masking)
	pows *powerTable

	mu     sync.Mutex
	repr   map[uint64]Sequence
	strs   map[uint64]string // memoised EncodingString renders
	panics []PanicRecord

	// pool recycles census workers across roots, calls, and — via the
	// serving daemon — requests. A worker carries O(V+E) persistent
	// state (nodePos, edgeState) plus its counter table and arenas;
	// rebuilding that per call is exactly the per-request O(V+E) cost
	// the pool amortises away. Checked-out workers get the run's limit
	// overrides applied in getWorker and are verified clean in putWorker.
	pool sync.Pool

	hooks *faultHooks // fault-injection seam, nil outside tests
}

// PanicRecord describes one recovered census-worker panic: the root it
// occurred on, the panic value, and the goroutine stack at recovery.
type PanicRecord struct {
	Root  graph.NodeID
	Value string
	Stack string
}

// NewExtractor validates opts and returns an extractor for g.
func NewExtractor(g *graph.Graph, opts Options) (*Extractor, error) {
	if opts.MaxEdges < 1 {
		return nil, fmt.Errorf("core: MaxEdges must be >= 1, got %d", opts.MaxEdges)
	}
	if g.NumLabels() == 0 && g.NumNodes() > 0 {
		return nil, fmt.Errorf("core: graph has nodes but no label alphabet")
	}
	k := g.NumLabels()
	if opts.MaskRootLabel {
		k++
	}
	return &Extractor{
		g:    g,
		opts: opts,
		k:    k,
		pows: newPowerTable(k),
		// Pre-sized: vocabularies of real networks run to hundreds of
		// distinct encodings, so early merges should not rehash.
		repr: make(map[uint64]Sequence, 256),
		strs: make(map[uint64]string, 256),
	}, nil
}

// Graph returns the graph the extractor operates on.
func (e *Extractor) Graph() *graph.Graph { return e.g }

// Options returns the extraction options.
func (e *Extractor) Options() Options { return e.opts }

// LabelSlots returns the number of label slots in the encoding: the
// graph's label count, plus one for the artificial root label when
// masking is enabled.
func (e *Extractor) LabelSlots() int { return e.k }

// SlotName returns the display name of encoding label slot l, which is
// either a graph label name or the masked-root marker.
func (e *Extractor) SlotName(l int) string {
	if l == e.g.NumLabels() && e.opts.MaskRootLabel {
		return MaskedLabelName
	}
	return e.g.Alphabet().Name(graph.Label(l))
}

// Census extracts the subgraph census for a single root node. Unlike the
// parallel CensusAll variants it does not isolate panics: a fault in the
// enumeration propagates to the caller (and the worker, whose state is
// then suspect, is deliberately not returned to the pool).
func (e *Extractor) Census(root graph.NodeID) *Census {
	w := e.getWorker(censusRun{})
	c := w.census(root)
	e.putWorker(w)
	return c
}

// CensusAll extracts censuses for all roots using the given number of
// parallel workers (<= 0 selects GOMAXPROCS). Results are aligned with
// roots. Enumeration is embarrassingly parallel by root node: workers
// share the read-only graph and keep private O(V + E) state.
func (e *Extractor) CensusAll(roots []graph.NodeID, workers int) []*Census {
	cs, _ := e.censusAll(roots, workers, censusRun{})
	return cs
}

// CensusAllTimed is CensusAll but additionally reports the wall-clock
// extraction time of each root, for runtime evaluations (paper Table 3).
func (e *Extractor) CensusAllTimed(roots []graph.NodeID, workers int) ([]*Census, []time.Duration) {
	return e.censusAll(roots, workers, censusRun{timed: true})
}

// CensusAllContext is CensusAll with cooperative cancellation: when ctx
// is cancelled, in-flight censuses stop at their next enumeration step
// and are returned truncated (Census.Truncated, FlagCancelled), pending
// roots are left nil, and ctx.Err() is returned. Workers poll the
// cancellation flag, so even a single runaway hub root stops promptly.
func (e *Extractor) CensusAllContext(ctx context.Context, roots []graph.NodeID, workers int) ([]*Census, error) {
	var stop atomic.Bool
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()
	cs, _ := e.censusAll(roots, workers, censusRun{stop: &stop})
	return cs, ctx.Err()
}

// RootLimits is a per-call override of the extractor's per-root
// enumeration bounds, for callers that serve heterogeneous request
// classes over one shared extractor (the serving daemon): a zero field
// keeps the corresponding Options value.
type RootLimits struct {
	// Budget overrides Options.MaxSubgraphsPerRoot when > 0.
	Budget int64
	// Deadline overrides Options.RootDeadline when > 0.
	Deadline time.Duration
}

// CensusAllWithLimits is CensusAllContext with per-call root limits:
// every root of this extraction is bounded by limits (falling back to
// the extractor's Options for zero fields) without rebuilding the
// extractor or discarding its decoded vocabulary. Truncation is
// reported per root through the usual CensusFlag taxonomy.
func (e *Extractor) CensusAllWithLimits(ctx context.Context, roots []graph.NodeID, workers int, limits RootLimits) ([]*Census, error) {
	var stop atomic.Bool
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()
	cs, _ := e.censusAll(roots, workers, censusRun{stop: &stop, limits: limits})
	return cs, ctx.Err()
}

// censusRun bundles the optional behaviours of a pooled extraction.
type censusRun struct {
	timed  bool         // record per-root wall-clock times
	stop   *atomic.Bool // cooperative cancellation flag, may be nil
	limits RootLimits   // per-run override of per-root bounds
	// done, when non-nil, is invoked from worker goroutines after each
	// root completes (the checkpoint collector). The worker's repr is
	// merged before the callback, so every key of the delivered census is
	// already decodable via Extractor.Decode.
	done func(i int, c *Census)
}

func (e *Extractor) censusAll(roots []graph.NodeID, workers int, run censusRun) ([]*Census, []time.Duration) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	out := make([]*Census, len(roots))
	var times []time.Duration
	if run.timed {
		times = make([]time.Duration, len(roots))
	}
	if len(roots) == 0 {
		return out, times
	}

	// Dispatch is a chunked atomic counter over a root order, not a
	// channel: claiming work is one atomic add per chunk instead of a
	// channel send/receive per root, and the producer goroutine (and its
	// per-root scheduler wakeups) disappears entirely. order == nil means
	// identity; under LPT it is the indices sorted by descending degree,
	// claimed one at a time so the largest roots start first.
	order := e.lptOrder(roots, workers)
	chunk := 1
	if order == nil {
		chunk = dispatchChunk(len(roots), workers)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := e.getWorker(run)
		claim:
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(roots) {
					break
				}
				hi := lo + chunk
				if hi > len(roots) {
					hi = len(roots)
				}
				for pos := lo; pos < hi; pos++ {
					if run.stop != nil && run.stop.Load() {
						break claim // stop claiming; pending roots stay nil
					}
					i := pos
					if order != nil {
						i = order[pos]
					}
					start := time.Now()
					c := e.safeCensus(w, roots[i])
					if c.Flags&FlagPanicked != 0 {
						// The worker's persistent state is suspect after an
						// unwound enumeration; keep what it learned but
						// replace it wholesale (it never re-enters the pool).
						e.flushRepr(w)
						w = e.getWorker(run)
					}
					out[i] = c
					if run.timed {
						times[i] = time.Since(start)
					}
					if run.done != nil {
						e.flushRepr(w)
						run.done(i, c)
					}
				}
			}
			e.putWorker(w)
		}()
	}
	wg.Wait()
	return out, times
}

// dispatchChunk sizes the atomic-counter claim: large enough to amortise
// the shared-counter contention over many roots, small enough that the
// run's tail is not serialised behind one worker's oversized last chunk.
func dispatchChunk(roots, workers int) int {
	c := roots / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > 64 {
		return 64
	}
	return c
}

// lptOrder returns the longest-processing-time dispatch order — root
// indices sorted by descending degree — or nil when LPT is disabled or
// cannot help (a single worker processes in order regardless).
func (e *Extractor) lptOrder(roots []graph.NodeID, workers int) []int {
	if !e.opts.LPTRootOrder || workers <= 1 {
		return nil
	}
	order := make([]int, len(roots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := e.g.Degree(roots[order[a]]), e.g.Degree(roots[order[b]])
		if da != db {
			return da > db
		}
		return order[a] < order[b] // stable for equal degrees
	})
	return order
}

// getWorker checks a warm census worker out of the pool (or builds the
// first one), then applies this run's overrides: cancellation flag,
// fault hooks, and per-root limits, re-derived from Options so an
// override from a previous checkout can never leak into this one.
func (e *Extractor) getWorker(run censusRun) *worker {
	w, _ := e.pool.Get().(*worker)
	if w == nil {
		w = newWorker(e.g, e.opts, e.k, e.pows)
	}
	w.stop = run.stop
	w.hooks = e.hooks
	w.budget = e.opts.MaxSubgraphsPerRoot
	w.deadline = e.opts.RootDeadline
	if run.limits.Budget > 0 {
		w.budget = run.limits.Budget
	}
	if run.limits.Deadline > 0 {
		w.deadline = run.limits.Deadline
	}
	return w
}

// putWorker flushes the worker's decoded vocabulary and returns it to
// the pool — unless its state is visibly dirty (an enumeration unwound
// without restoring its invariants), in which case it is dropped: a
// fresh worker is cheaper than a corrupted census.
func (e *Extractor) putWorker(w *worker) {
	e.flushRepr(w)
	if !w.clean() {
		return
	}
	w.stop = nil
	w.hooks = nil
	e.pool.Put(w)
}

// flushRepr merges the worker's decoded vocabulary into the extractor.
// repr only grows, so when nothing was added since the last flush the
// whole merge (and its lock) is skipped — the steady-state case once a
// worker has seen the graph's vocabulary.
func (e *Extractor) flushRepr(w *worker) {
	if len(w.repr) == w.reprMerged {
		return
	}
	e.mergeRepr(w.repr)
	w.reprMerged = len(w.repr)
}

// safeCensus runs one root's census with panic isolation: a panicking
// root is recovered, recorded on the extractor with its root ID and
// stack, and returned as an empty census flagged FlagPanicked so the
// pool keeps draining the remaining roots.
func (e *Extractor) safeCensus(w *worker, root graph.NodeID) (c *Census) {
	defer func() {
		if r := recover(); r != nil {
			e.recordPanic(PanicRecord{
				Root:  root,
				Value: fmt.Sprint(r),
				Stack: string(debug.Stack()),
			})
			c = &Census{
				Root:      root,
				Counts:    map[uint64]int64{},
				Truncated: true,
				Flags:     FlagPanicked,
			}
		}
	}()
	return w.census(root)
}

func (e *Extractor) recordPanic(p PanicRecord) {
	e.mu.Lock()
	e.panics = append(e.panics, p)
	e.mu.Unlock()
}

// Panics returns the census-worker panics recovered so far, in recovery
// order. A healthy extraction returns an empty slice.
func (e *Extractor) Panics() []PanicRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]PanicRecord(nil), e.panics...)
}

func (e *Extractor) mergeRepr(local map[uint64]Sequence) {
	// Workers whose whole vocabulary is already known merge empty or
	// tiny maps; skipping the lock for the empty case keeps the
	// many-roots path free of needless contention.
	if len(local) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, v := range local {
		if _, ok := e.repr[k]; !ok {
			e.repr[k] = v
		}
	}
}

// Decode returns the canonical characteristic sequence behind a census
// key, if any census produced by this extractor has seen it.
func (e *Extractor) Decode(key uint64) (Sequence, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.repr[key]
	return s, ok
}

// EncodingString renders the sequence behind key in the paper's compact
// notation (e.g. "z010z010y002"), or "?<key>" if unknown. Renders are
// memoised per key: the serving daemon calls this for every count of
// every response row, so steady state is one lock + one map hit, not a
// fresh string build. Unknown keys are not cached — the key may become
// decodable after a later extraction.
func (e *Extractor) EncodingString(key uint64) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if str, ok := e.strs[key]; ok {
		return str
	}
	s, ok := e.repr[key]
	if !ok {
		return fmt.Sprintf("?%x", key)
	}
	str := s.String(e.SlotName)
	e.strs[key] = str
	return str
}
