package embed

import "math/bits"

// This file provides the cheap per-worker random sources the parallel
// walk generator and Hogwild trainers use instead of a shared, mutex-
// guarded *rand.Rand: splitmix64 for seed derivation (one multiply-xor
// chain per derived stream, so seeds that differ in one bit yield
// uncorrelated streams) and xoshiro256++ for the streams themselves.
// Both are the reference algorithms of Blackman & Vigna; neither is
// cryptographic, which is fine — they drive Monte-Carlo sampling, not
// secrets.

// golden64 is 2^64/φ, the Weyl-sequence increment splitmix64 uses.
const golden64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finaliser: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// deriveSeed maps (base, idx) to a stream seed. Consecutive indices land
// on distant points of the splitmix64 Weyl sequence, so per-walk and
// per-worker streams are statistically independent.
func deriveSeed(base uint64, idx int) uint64 {
	return mix64(base + (uint64(idx)+1)*golden64)
}

// frand is a xoshiro256++ generator. The zero value is invalid; call
// seed before use. It is not safe for concurrent use — every worker
// owns one.
type frand struct {
	s0, s1, s2, s3 uint64
}

// seed initialises the state from one 64-bit seed via splitmix64, as
// the xoshiro authors prescribe (guarantees a non-zero state).
func (r *frand) seed(s uint64) {
	z := s
	z += golden64
	r.s0 = mix64(z)
	z += golden64
	r.s1 = mix64(z)
	z += golden64
	r.s2 = mix64(z)
	z += golden64
	r.s3 = mix64(z)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = golden64
	}
}

// Uint64 returns the next 64 random bits.
func (r *frand) Uint64() uint64 {
	res := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return res
}

// Intn returns a uniform int in [0, n) by Lemire's multiply-shift
// reduction. The modulo bias is below n/2^64 — immaterial for sampling
// neighbours and edges.
func (r *frand) Intn(n int) int {
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *frand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}
