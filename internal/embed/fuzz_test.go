package embed

import (
	"context"
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

// fuzzGraph builds a small deterministic graph whose shape is driven by
// the fuzzed shape byte: a path, a clique pair, a star, or a mix with
// isolated nodes — the degenerate topologies walk sharding must handle.
func fuzzGraph(shape byte) *graph.Graph {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("n"))
	n := 8 + int(shape%13)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i], _ = b.AddNode("n")
	}
	switch shape % 4 {
	case 0: // path
		for i := 0; i+1 < n; i++ {
			b.AddEdge(ids[i], ids[i+1])
		}
	case 1: // two cliques with a bridge
		half := n / 2
		for i := 0; i < half; i++ {
			for j := i + 1; j < half; j++ {
				b.AddEdge(ids[i], ids[j])
				b.AddEdge(ids[half+i%(n-half)], ids[half+j%(n-half)])
			}
		}
		b.AddEdge(ids[0], ids[half])
	case 2: // star plus isolated tail
		for i := 1; i < n-2; i++ {
			b.AddEdge(ids[0], ids[i])
		}
	default: // ring
		for i := 0; i < n; i++ {
			b.AddEdge(ids[i], ids[(i+1)%n])
		}
	}
	return b.MustBuild()
}

// FuzzWalkShardDeterminism asserts the tentpole invariant of the
// sharded walk generator over arbitrary configurations: the corpus is
// byte-identical for every worker count, on every graph shape,
// including the biased (node2vec) sampler.
func FuzzWalkShardDeterminism(f *testing.F) {
	f.Add(int64(1), byte(0), byte(3), byte(10), byte(2), false)
	f.Add(int64(42), byte(1), byte(1), byte(80), byte(7), true)
	f.Add(int64(-7), byte(2), byte(4), byte(1), byte(16), true)
	f.Add(int64(99), byte(3), byte(2), byte(0), byte(3), false)
	f.Fuzz(func(t *testing.T, seed int64, shape, walksPerNode, walkLen, workers byte, biased bool) {
		g := fuzzGraph(shape)
		cfg := WalkConfig{
			WalksPerNode: int(walksPerNode % 5),
			WalkLength:   int(walkLen % 33),
			ReturnP:      1,
			InOutQ:       1,
		}
		if biased {
			cfg.ReturnP, cfg.InOutQ = 0.5, 2
		}
		gen := func(w int) [][]graph.NodeID {
			c := cfg
			c.Workers = w
			walks, err := BiasedWalks(context.Background(), g, c, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			return walks
		}
		ref := gen(1)
		if len(ref) != g.NumNodes()*cfg.WalksPerNode {
			t.Fatalf("corpus size %d, want %d", len(ref), g.NumNodes()*cfg.WalksPerNode)
		}
		for _, w := range ref {
			for i := 1; i < len(w); i++ {
				if !g.HasEdge(w[i-1], w[i]) {
					t.Fatal("walk traverses a non-edge")
				}
			}
		}
		if !corporaEqual(ref, gen(2+int(workers%7))) {
			t.Fatalf("corpus differs across worker counts (workers=%d)", 2+int(workers%7))
		}
	})
}
