package embed

// This file pins the Workers<=1 trainers to the pre-parallel
// implementation: goldenTrainSGNS and goldenLINE below are verbatim
// copies of the serial trainers as they existed before the flat-matrix
// Hogwild rewrite (row-pointer [][]float64 matrices, per-call math.Exp
// sigma with the historical double-Exp in the z < -8 branch). The
// rewrite must be a pure representation change for serial training, so
// the outputs are compared for exact bitwise equality, not tolerance.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

func goldenSigma(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return math.Exp(z) / (1 + math.Exp(z))
	}
	return 1 / (1 + math.Exp(-z))
}

func goldenMakeInit(n, dim int, rng *rand.Rand) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for d := range v {
			v[d] = (rng.Float64() - 0.5) / float64(dim)
		}
		vecs[i] = v
	}
	return vecs
}

func goldenTrainSGNS(ctx context.Context, g *graph.Graph, walks [][]graph.NodeID, cfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	cfg.normalize()
	n := g.NumNodes()
	dim := cfg.Dim

	freq := make([]float64, n)
	for _, walk := range walks {
		for _, v := range walk {
			freq[v]++
		}
	}
	for i := range freq {
		freq[i] = math.Pow(freq[i], 0.75)
	}
	neg, err := NewAlias(freq)
	if err != nil {
		return goldenMakeInit(n, dim, rng), nil
	}

	in := goldenMakeInit(n, dim, rng)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}

	totalSteps := cfg.Epochs * len(walks)
	step := 0
	gradIn := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for wi, walk := range walks {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LR*0.0001 {
				lr = cfg.LR * 0.0001
			}
			step++
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				vin := in[center]
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ctxNode := walk[j]
					for d := range gradIn {
						gradIn[d] = 0
					}
					vout := out[ctxNode]
					score := goldenSigma(dotv(vin, vout))
					gpos := lr * (1 - score)
					for d := 0; d < dim; d++ {
						gradIn[d] += gpos * vout[d]
						vout[d] += gpos * vin[d]
					}
					for k := 0; k < cfg.Negatives; k++ {
						nn := neg.Sample(rng)
						if graph.NodeID(nn) == ctxNode {
							continue
						}
						vneg := out[nn]
						score := goldenSigma(dotv(vin, vneg))
						gneg := -lr * score
						for d := 0; d < dim; d++ {
							gradIn[d] += gneg * vneg[d]
							vneg[d] += gneg * vin[d]
						}
					}
					for d := 0; d < dim; d++ {
						vin[d] += gradIn[d]
					}
				}
			}
			for _, v := range walk {
				if !finite(in[v]) {
					return nil, &DivergenceError{Algo: "sgns", Epoch: epoch, Step: wi}
				}
			}
		}
	}
	return in, nil
}

func goldenLINE(ctx context.Context, g *graph.Graph, cfg LINEConfig, rng *rand.Rand) ([][]float64, error) {
	cfg.normalize(g.NumEdges())
	n := g.NumNodes()
	first, err := goldenTrainLINEOrder(ctx, g, cfg, 1, rng)
	if err != nil {
		return nil, err
	}
	second, err := goldenTrainLINEOrder(ctx, g, cfg, 2, rng)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, n)
	for v := 0; v < n; v++ {
		vec := make([]float64, 0, 2*cfg.Dim)
		vec = append(vec, first[v]...)
		vec = append(vec, second[v]...)
		out[v] = vec
	}
	return out, nil
}

func goldenTrainLINEOrder(ctx context.Context, g *graph.Graph, cfg LINEConfig, order int, rng *rand.Rand) ([][]float64, error) {
	n := g.NumNodes()
	dim := cfg.Dim
	vertex := goldenMakeInit(n, dim, rng)
	var context [][]float64
	if order == 2 {
		context = make([][]float64, n)
		for i := range context {
			context[i] = make([]float64, dim)
		}
	}

	m := g.NumEdges()
	if m == 0 {
		return vertex, nil
	}
	degW := make([]float64, n)
	for v := 0; v < n; v++ {
		degW[v] = math.Pow(float64(g.Degree(graph.NodeID(v))), 0.75)
	}
	neg, err := NewAlias(degW)
	if err != nil {
		return vertex, nil
	}

	grad := make([]float64, dim)
	for s := 0; s < cfg.Samples; s++ {
		if s&(linePollInterval-1) == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		lr := cfg.LR * (1 - float64(s)/float64(cfg.Samples+1))
		if lr < cfg.LR*0.0001 {
			lr = cfg.LR * 0.0001
		}
		e := graph.EdgeID(rng.Intn(m))
		u, v := g.EdgeEndpoints(e)
		if rng.Intn(2) == 0 {
			u, v = v, u
		}
		src := vertex[u]
		for d := range grad {
			grad[d] = 0
		}
		for k := 0; k <= cfg.Negatives; k++ {
			var target int
			var label float64
			if k == 0 {
				target = int(v)
				label = 1
			} else {
				target = neg.Sample(rng)
				if target == int(v) {
					continue
				}
				label = 0
			}
			var tvec []float64
			if order == 2 {
				tvec = context[target]
			} else {
				tvec = vertex[target]
			}
			score := goldenSigma(dotv(src, tvec))
			gcoef := lr * (label - score)
			for d := 0; d < dim; d++ {
				grad[d] += gcoef * tvec[d]
				tvec[d] += gcoef * src[d]
			}
		}
		for d := 0; d < dim; d++ {
			src[d] += grad[d]
		}
		if s&(lineGuardInterval-1) == 0 && !finite(src) {
			return nil, &DivergenceError{Algo: "line", Epoch: order, Step: s}
		}
	}
	return vertex, nil
}

// requireBitwiseEqual fails unless both embeddings agree on every bit.
func requireBitwiseEqual(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d length %d, want %d", i, len(got[i]), len(want[i]))
		}
		for d := range want[i] {
			if math.Float64bits(got[i][d]) != math.Float64bits(want[i][d]) {
				t.Fatalf("row %d dim %d: got %x want %x", i, d,
					math.Float64bits(got[i][d]), math.Float64bits(want[i][d]))
			}
		}
	}
}

func TestTrainSGNSSerialMatchesGolden(t *testing.T) {
	g, _, _ := twoClusters(7)
	walks, err := UniformWalks(context.Background(), g,
		WalkConfig{WalksPerNode: 4, WalkLength: 15, Workers: 2}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1} {
		cfg := SGNSConfig{Dim: 12, Window: 4, Negatives: 3, Epochs: 2, Workers: workers}
		got, err := TrainSGNS(context.Background(), g, walks, cfg, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatal(err)
		}
		want, err := goldenTrainSGNS(context.Background(), g, walks, cfg, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, got, want)
	}
}

func TestTrainSGNSDegenerateCorpusMatchesGolden(t *testing.T) {
	g, _, _ := twoClusters(4)
	got, err := TrainSGNS(context.Background(), g, nil, SGNSConfig{Dim: 6}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := goldenTrainSGNS(context.Background(), g, nil, SGNSConfig{Dim: 6}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, got, want)
}

func TestLINESerialMatchesGolden(t *testing.T) {
	g, _, _ := twoClusters(7)
	for _, workers := range []int{0, 1} {
		cfg := LINEConfig{Dim: 10, Negatives: 3, Samples: 6000, Workers: workers}
		got, err := LINE(context.Background(), g, cfg, rand.New(rand.NewSource(44)))
		if err != nil {
			t.Fatal(err)
		}
		want, err := goldenLINE(context.Background(), g, cfg, rand.New(rand.NewSource(44)))
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, got, want)
	}
}
