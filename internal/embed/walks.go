package embed

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"hsgf/internal/graph"
)

// WalkConfig controls random-walk corpus generation.
type WalkConfig struct {
	WalksPerNode int     // r, paper default 10
	WalkLength   int     // l, paper default 80
	ReturnP      float64 // node2vec return parameter p (1 = DeepWalk)
	InOutQ       float64 // node2vec in-out parameter q (1 = DeepWalk)

	// Workers is the number of goroutines generating walks; 0 means
	// GOMAXPROCS. The corpus is byte-identical for every worker count:
	// walk (round r, start node v) has the fixed index r·|V|+v and
	// draws from its own RNG seeded by mixing that index into a base
	// seed taken once from the caller's rng, so sharding changes only
	// which goroutine materialises a walk, never its content.
	Workers int
}

// DefaultWalkConfig returns the paper's recommended parameters
// (r=10, l=80, p=q=1).
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerNode: 10, WalkLength: 80, ReturnP: 1, InOutQ: 1}
}

// walkChunk is how many walks a worker claims per dispatch. It bounds
// both the dispatch overhead (one atomic add per chunk) and the
// cancellation latency: ctx is polled once per chunk, so at most
// Workers·walkChunk walks start after cancellation.
const walkChunk = 256

// runWalks generates every (round, node) walk by calling walkFn with a
// per-walk seeded RNG and an arena-backed buffer of capacity
// cfg.WalkLength. Walks land at their fixed index, so the corpus is
// identical for every worker count; each chunk's walks share one
// contiguous arena allocation instead of one slice per walk.
func runWalks(ctx context.Context, g *graph.Graph, cfg WalkConfig, rng *rand.Rand,
	walkFn func(r *frand, v graph.NodeID, buf []graph.NodeID) []graph.NodeID) ([][]graph.NodeID, error) {
	n := g.NumNodes()
	total := n * cfg.WalksPerNode
	// The base seed is drawn before any work so the rng stream the
	// caller observes is independent of worker count.
	base := rng.Uint64()
	walks := make([][]graph.NodeID, total)
	if total == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return walks, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := (total + walkChunk - 1) / walkChunk; workers > chunks {
		workers = chunks
	}

	var next atomic.Int64
	var stop atomic.Bool
	work := func() {
		var r frand
		for {
			lo := int(next.Add(walkChunk)) - walkChunk
			if lo >= total || stop.Load() {
				return
			}
			select {
			case <-ctx.Done():
				stop.Store(true)
				return
			default:
			}
			hi := lo + walkChunk
			if hi > total {
				hi = total
			}
			arena := make([]graph.NodeID, (hi-lo)*cfg.WalkLength)
			for idx := lo; idx < hi; idx++ {
				r.seed(deriveSeed(base, idx))
				off := (idx - lo) * cfg.WalkLength
				buf := arena[off : off : off+cfg.WalkLength]
				walks[idx] = walkFn(&r, graph.NodeID(idx%n), buf)
			}
		}
	}

	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return walks, nil
}

// UniformWalks generates cfg.WalksPerNode truncated uniform random walks
// from every node (DeepWalk-style). Walks from isolated nodes contain just
// the start node. Generation is sharded across cfg.Workers goroutines;
// the corpus is identical for every worker count. Cancellation is
// honoured between walk chunks and returns ctx.Err().
func UniformWalks(ctx context.Context, g *graph.Graph, cfg WalkConfig, rng *rand.Rand) ([][]graph.NodeID, error) {
	maxLen := cfg.WalkLength
	return runWalks(ctx, g, cfg, rng, func(r *frand, v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
		walk := append(buf, v)
		cur := v
		for len(walk) < maxLen {
			adj := g.Neighbors(cur)
			if len(adj) == 0 {
				break
			}
			cur = adj[r.Intn(len(adj))]
			walk = append(walk, cur)
		}
		return walk
	})
}

// BiasedWalks generates node2vec second-order random walks: from the
// previous step t and current node v, the unnormalised probability of
// moving to neighbour x is 1/p if x == t, 1 if x is adjacent to t, and
// 1/q otherwise. Sampling uses rejection against the maximum of those
// weights, which avoids per-edge alias tables while remaining exact.
// Generation is sharded across cfg.Workers goroutines; the corpus is
// identical for every worker count. Cancellation is honoured between
// walk chunks and returns ctx.Err().
func BiasedWalks(ctx context.Context, g *graph.Graph, cfg WalkConfig, rng *rand.Rand) ([][]graph.NodeID, error) {
	p, q := cfg.ReturnP, cfg.InOutQ
	if p <= 0 {
		p = 1
	}
	if q <= 0 {
		q = 1
	}
	if p == 1 && q == 1 {
		return UniformWalks(ctx, g, cfg, rng)
	}
	maxW := 1.0
	if 1/p > maxW {
		maxW = 1 / p
	}
	if 1/q > maxW {
		maxW = 1 / q
	}
	maxLen := cfg.WalkLength
	return runWalks(ctx, g, cfg, rng, func(r *frand, v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
		walk := append(buf, v)
		adj := g.Neighbors(v)
		if len(adj) > 0 && maxLen > 1 {
			walk = append(walk, adj[r.Intn(len(adj))])
		}
		for len(walk) >= 2 && len(walk) < maxLen {
			cur := walk[len(walk)-1]
			prev := walk[len(walk)-2]
			adj := g.Neighbors(cur)
			if len(adj) == 0 {
				break
			}
			var next graph.NodeID
			for {
				cand := adj[r.Intn(len(adj))]
				var w float64
				switch {
				case cand == prev:
					w = 1 / p
				case g.HasEdge(cand, prev):
					w = 1
				default:
					w = 1 / q
				}
				if r.Float64() < w/maxW {
					next = cand
					break
				}
			}
			walk = append(walk, next)
		}
		return walk
	})
}
