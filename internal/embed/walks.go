package embed

import (
	"context"
	"math/rand"

	"hsgf/internal/graph"
)

// WalkConfig controls random-walk corpus generation.
type WalkConfig struct {
	WalksPerNode int     // r, paper default 10
	WalkLength   int     // l, paper default 80
	ReturnP      float64 // node2vec return parameter p (1 = DeepWalk)
	InOutQ       float64 // node2vec in-out parameter q (1 = DeepWalk)
}

// DefaultWalkConfig returns the paper's recommended parameters
// (r=10, l=80, p=q=1).
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerNode: 10, WalkLength: 80, ReturnP: 1, InOutQ: 1}
}

// UniformWalks generates cfg.WalksPerNode truncated uniform random walks
// from every node (DeepWalk-style). Walks from isolated nodes contain just
// the start node. Cancellation is honoured between walks and returns
// ctx.Err().
func UniformWalks(ctx context.Context, g *graph.Graph, cfg WalkConfig, rng *rand.Rand) ([][]graph.NodeID, error) {
	walks := make([][]graph.NodeID, 0, g.NumNodes()*cfg.WalksPerNode)
	for r := 0; r < cfg.WalksPerNode; r++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			walk := make([]graph.NodeID, 0, cfg.WalkLength)
			walk = append(walk, v)
			cur := v
			for len(walk) < cfg.WalkLength {
				adj := g.Neighbors(cur)
				if len(adj) == 0 {
					break
				}
				cur = adj[rng.Intn(len(adj))]
				walk = append(walk, cur)
			}
			walks = append(walks, walk)
		}
	}
	return walks, nil
}

// BiasedWalks generates node2vec second-order random walks: from the
// previous step t and current node v, the unnormalised probability of
// moving to neighbour x is 1/p if x == t, 1 if x is adjacent to t, and
// 1/q otherwise. Sampling uses rejection against the maximum of those
// weights, which avoids per-edge alias tables while remaining exact.
// Cancellation is honoured between walks and returns ctx.Err().
func BiasedWalks(ctx context.Context, g *graph.Graph, cfg WalkConfig, rng *rand.Rand) ([][]graph.NodeID, error) {
	p, q := cfg.ReturnP, cfg.InOutQ
	if p <= 0 {
		p = 1
	}
	if q <= 0 {
		q = 1
	}
	if p == 1 && q == 1 {
		return UniformWalks(ctx, g, cfg, rng)
	}
	maxW := 1.0
	if 1/p > maxW {
		maxW = 1 / p
	}
	if 1/q > maxW {
		maxW = 1 / q
	}
	walks := make([][]graph.NodeID, 0, g.NumNodes()*cfg.WalksPerNode)
	for r := 0; r < cfg.WalksPerNode; r++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			walk := make([]graph.NodeID, 0, cfg.WalkLength)
			walk = append(walk, v)
			adj := g.Neighbors(v)
			if len(adj) > 0 && cfg.WalkLength > 1 {
				walk = append(walk, adj[rng.Intn(len(adj))])
			}
			for len(walk) >= 2 && len(walk) < cfg.WalkLength {
				cur := walk[len(walk)-1]
				prev := walk[len(walk)-2]
				adj := g.Neighbors(cur)
				if len(adj) == 0 {
					break
				}
				var next graph.NodeID
				for {
					cand := adj[rng.Intn(len(adj))]
					var w float64
					switch {
					case cand == prev:
						w = 1 / p
					case g.HasEdge(cand, prev):
						w = 1
					default:
						w = 1 / q
					}
					if rng.Float64() < w/maxW {
						next = cand
						break
					}
				}
				walk = append(walk, next)
			}
			walks = append(walks, walk)
		}
	}
	return walks, nil
}
