package embed

// Tests for the sharded walk generator and the Hogwild trainers: corpus
// determinism across worker counts, sanctioned-race training under
// -race, downstream embedding quality at Workers>1, cancellation
// latency, divergence detection, and the allocation discipline of the
// arena-backed walk corpus.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hsgf/internal/graph"
)

func corporaEqual(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestWalkCorpusIdenticalAcrossWorkers(t *testing.T) {
	g, _, _ := twoClusters(9)
	for _, tc := range []struct {
		name string
		p, q float64
	}{
		{"uniform", 1, 1},
		{"biased", 0.5, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gen := func(workers int) [][]graph.NodeID {
				cfg := WalkConfig{WalksPerNode: 4, WalkLength: 12, ReturnP: tc.p, InOutQ: tc.q, Workers: workers}
				walks, err := BiasedWalks(context.Background(), g, cfg, rand.New(rand.NewSource(17)))
				if err != nil {
					t.Fatal(err)
				}
				return walks
			}
			ref := gen(1)
			if len(ref) != g.NumNodes()*4 {
				t.Fatalf("corpus size %d, want %d", len(ref), g.NumNodes()*4)
			}
			for _, workers := range []int{2, 3, 8} {
				if !corporaEqual(ref, gen(workers)) {
					t.Fatalf("corpus differs between Workers=1 and Workers=%d", workers)
				}
			}
		})
	}
}

func TestWalkCorpusIndependentOfCallerRNGState(t *testing.T) {
	// The corpus must depend on the caller rng only through the one base
	// seed drawn up front: a second draw from the same rng afterwards
	// sees the same stream position regardless of worker count.
	g, _, _ := twoClusters(5)
	after := func(workers int) int64 {
		rng := rand.New(rand.NewSource(3))
		_, err := UniformWalks(context.Background(), g,
			WalkConfig{WalksPerNode: 2, WalkLength: 8, Workers: workers}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return rng.Int63()
	}
	if after(1) != after(4) {
		t.Fatal("walk generation consumed a worker-count-dependent amount of caller rng state")
	}
}

// hogwildTrain trains DeepWalk embeddings with the given worker count on
// the two-cluster graph and returns the vectors plus the cluster node
// sets.
func hogwildTrain(t *testing.T, workers int, seed int64) ([][]float64, []graph.NodeID, []graph.NodeID) {
	t.Helper()
	g, a, c := twoClusters(8)
	vecs, err := DeepWalk(context.Background(), g,
		WalkConfig{WalksPerNode: 10, WalkLength: 20, Workers: workers},
		SGNSConfig{Dim: 16, Window: 4, Negatives: 5, Epochs: 3, Workers: workers},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return vecs, a, c
}

// TestHogwildSGNSParallelTrains exercises the full Hogwild SGNS path
// with several workers — under `go test -race` this drives the
// sanctioned unsynchronised matrix traffic through the race-build
// atomic accessors while the detector checks the scaffolding around it.
func TestHogwildSGNSParallelTrains(t *testing.T) {
	vecs, a, c := hogwildTrain(t, 4, 51)
	for i, v := range vecs {
		if !finite(v) {
			t.Fatalf("non-finite embedding row %d", i)
		}
	}
	embeddingSeparates(t, vecs, a, c)
}

func TestHogwildLINEParallelTrains(t *testing.T) {
	g, a, c := twoClusters(8)
	vecs, err := LINE(context.Background(), g,
		LINEConfig{Dim: 8, Negatives: 5, Samples: 40000, Workers: 4}, rand.New(rand.NewSource(52)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if !finite(v) {
			t.Fatalf("non-finite embedding row %d", i)
		}
	}
	embeddingSeparates(t, vecs, a, c)
}

// centroidAccuracy scores nearest-centroid classification of the two
// clusters: centroids from the first half of each cluster, accuracy on
// the second half. A usable embedding scores ~1.0.
func centroidAccuracy(vecs [][]float64, a, c []graph.NodeID) float64 {
	dim := len(vecs[0])
	centroid := func(nodes []graph.NodeID) []float64 {
		m := make([]float64, dim)
		for _, v := range nodes {
			for d, x := range vecs[v] {
				m[d] += x
			}
		}
		for d := range m {
			m[d] /= float64(len(nodes))
		}
		return m
	}
	ca := centroid(a[:len(a)/2])
	cc := centroid(c[:len(c)/2])
	dist := func(x, y []float64) float64 {
		var s float64
		for d := range x {
			s += (x[d] - y[d]) * (x[d] - y[d])
		}
		return s
	}
	correct, total := 0, 0
	for _, v := range a[len(a)/2:] {
		if dist(vecs[v], ca) < dist(vecs[v], cc) {
			correct++
		}
		total++
	}
	for _, v := range c[len(c)/2:] {
		if dist(vecs[v], cc) < dist(vecs[v], ca) {
			correct++
		}
		total++
	}
	return float64(correct) / float64(total)
}

// TestParallelEmbeddingQualityWithinTolerance is the downstream-quality
// guard: Hogwild nondeterminism may perturb individual coordinates, but
// on a label-prediction-style task the parallel embedding must match
// the serial one within tolerance.
func TestParallelEmbeddingQualityWithinTolerance(t *testing.T) {
	serial, a, c := hogwildTrain(t, 1, 53)
	parallel, _, _ := hogwildTrain(t, 4, 53)
	accS := centroidAccuracy(serial, a, c)
	accP := centroidAccuracy(parallel, a, c)
	if accS < 0.95 {
		t.Fatalf("serial baseline accuracy %.2f too low for the tolerance check", accS)
	}
	if accP < accS-0.15 {
		t.Errorf("parallel accuracy %.2f more than 0.15 below serial %.2f", accP, accS)
	}
}

func TestParallelTrainingHonoursCancellation(t *testing.T) {
	g, _, _ := twoClusters(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	walks, err := UniformWalks(context.Background(), g, WalkConfig{WalksPerNode: 3, WalkLength: 10}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainSGNS(ctx, g, walks, SGNSConfig{Dim: 8, Window: 3, Negatives: 2, Workers: 4}, rand.New(rand.NewSource(2))); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel TrainSGNS: want context.Canceled, got %v", err)
	}
	if _, err := LINE(ctx, g, LINEConfig{Dim: 8, Negatives: 2, Samples: 10000, Workers: 4}, rand.New(rand.NewSource(3))); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel LINE: want context.Canceled, got %v", err)
	}
}

// TestWalkCancellationLatencyBounded verifies the per-chunk poll keeps
// cancellation responsive: a cancel arriving mid-generation must stop a
// corpus that would otherwise take much longer than the latency bound.
func TestWalkCancellationLatencyBounded(t *testing.T) {
	g, _, _ := twoClusters(30)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A deliberately huge corpus: ~1.8M walks of length 100.
		_, err := UniformWalks(ctx, g, WalkConfig{WalksPerNode: 30000, WalkLength: 100, Workers: 2}, rand.New(rand.NewSource(9)))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("cancellation took %v, want bounded well under 2s", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("walk generation did not stop within 10s of cancellation")
	}
}

func TestParallelSGNSDivergesOnAbsurdLR(t *testing.T) {
	g, _, _ := twoClusters(6)
	walks, err := UniformWalks(context.Background(), g, WalkConfig{WalksPerNode: 4, WalkLength: 15}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainSGNS(context.Background(), g, walks,
		SGNSConfig{Dim: 8, Window: 4, Negatives: 5, Epochs: 2, LR: 1e154, Workers: 4}, rand.New(rand.NewSource(5)))
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if div.Algo != "sgns" {
		t.Errorf("Algo = %q, want sgns", div.Algo)
	}
}

func TestParallelLINEDivergesOnAbsurdLR(t *testing.T) {
	g, _, _ := twoClusters(6)
	_, err := LINE(context.Background(), g,
		LINEConfig{Dim: 8, Negatives: 5, Samples: 20000, LR: 1e154, Workers: 4}, rand.New(rand.NewSource(6)))
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if div.Algo != "line" {
		t.Errorf("Algo = %q, want line", div.Algo)
	}
	if div.Epoch != 1 && div.Epoch != 2 {
		t.Errorf("Epoch (proximity order) = %d, want 1 or 2", div.Epoch)
	}
}

// TestWalkAllocationsAmortised pins the arena design: allocations must
// scale with the number of dispatch chunks, not the number of walks.
func TestWalkAllocationsAmortised(t *testing.T) {
	g, _, _ := twoClusters(50) // 100 nodes
	cfg := WalkConfig{WalksPerNode: 20, WalkLength: 30, Workers: 1}
	rng := rand.New(rand.NewSource(14))
	total := g.NumNodes() * cfg.WalksPerNode // 2000 walks
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := UniformWalks(context.Background(), g, cfg, rng); err != nil {
			t.Fatal(err)
		}
	})
	// One corpus slice + one arena per 256-walk chunk (8) + small
	// constant overhead. The old implementation paid one allocation per
	// walk (2000+).
	chunks := (total + walkChunk - 1) / walkChunk
	if limit := float64(2*chunks + 8); allocs > limit {
		t.Errorf("UniformWalks did %.0f allocs for %d walks, want <= %.0f (arena regression)", allocs, total, limit)
	}
}

// TestSigmaLUTApproximatesSigma bounds the quantisation error of the
// table-lookup sigmoid the Hogwild paths use.
func TestSigmaLUTApproximatesSigma(t *testing.T) {
	for z := -12.0; z <= 12.0; z += 0.001 {
		exact := sigma(z)
		lut := sigmaLUT(z)
		if diff := lut - exact; diff > 5e-4 || diff < -5e-4 {
			t.Fatalf("sigmaLUT(%v) = %v, exact %v (|diff| > 5e-4)", z, lut, exact)
		}
	}
	if sigmaLUT(100) != 1 {
		t.Error("sigmaLUT must saturate to 1")
	}
	if v := sigmaLUT(-100); v < 0 || v > 1e-3 {
		t.Errorf("sigmaLUT(-100) = %v, want tiny non-negative", v)
	}
}
