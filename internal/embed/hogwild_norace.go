//go:build !race

package embed

// Hogwild training (Recht et al., NIPS 2011) updates the shared
// embedding matrices from many goroutines with NO synchronisation: the
// occasional lost update is statistically harmless for SGD over sparse
// gradients, and any locking would serialise the hot loop. Those racy
// float64 reads and writes are *sanctioned*, so the inner loops access
// matrix elements exclusively through hogLoad/hogStore. In normal
// builds (this file) they compile to plain loads and stores and inline
// to nothing. Under -race the sibling file hogwild_race.go swaps in
// atomic accesses, which the race detector treats as synchronised —
// the detector then checks everything around the Hogwild matrices
// (dispatch, error propagation, worker lifecycle) without drowning in
// reports about the one data race we chose on purpose.

func hogLoad(p *float64) float64 { return *p }

func hogStore(p *float64, v float64) { *p = v }
