//go:build race

package embed

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Race-build implementations of the sanctioned Hogwild matrix accessors
// (see hogwild_norace.go for the full rationale). Routing the
// intentionally-unsynchronised float64 traffic through 64-bit atomics
// makes the race detector treat it as synchronised, so `go test -race`
// exercises the parallel trainers end to end and still catches real
// races in the scaffolding around the matrices. The unsafe cast is
// sound: float64 and uint64 share size and alignment, and slice
// elements of 8-byte types are 8-byte aligned.

func hogLoad(p *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(p))))
}

func hogStore(p *float64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(p)), math.Float64bits(v))
}
