package embed

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

func TestAliasUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := NewAlias([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	n := 40000
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	for i, c := range counts {
		f := float64(c) / float64(n)
		if math.Abs(f-0.25) > 0.02 {
			t.Errorf("bucket %d frequency %v, want ≈ 0.25", i, f)
		}
	}
}

func TestAliasSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := NewAlias([]float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	n := 40000
	for i := 0; i < n; i++ {
		if a.Sample(rng) == 0 {
			hits++
		}
	}
	if f := float64(hits) / float64(n); math.Abs(f-0.9) > 0.02 {
		t.Errorf("frequency of heavy bucket %v, want ≈ 0.9", f)
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, err := NewAlias([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if a.Sample(rng) == 1 {
			t.Fatal("zero-weight bucket sampled")
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights must fail")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights must fail")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weights must fail")
	}
}

// twoClusters builds two dense clusters joined by a single bridge edge.
func twoClusters(size int) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("n"))
	var a, c []graph.NodeID
	for i := 0; i < size; i++ {
		v, _ := b.AddNode("n")
		a = append(a, v)
	}
	for i := 0; i < size; i++ {
		v, _ := b.AddNode("n")
		c = append(c, v)
	}
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			b.AddEdge(a[i], a[j])
			b.AddEdge(c[i], c[j])
		}
	}
	b.AddEdge(a[0], c[0])
	return b.MustBuild(), a, c
}

func TestUniformWalks(t *testing.T) {
	g, _, _ := twoClusters(5)
	rng := rand.New(rand.NewSource(4))
	cfg := WalkConfig{WalksPerNode: 3, WalkLength: 10}
	walks, err := UniformWalks(context.Background(), g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != g.NumNodes()*3 {
		t.Fatalf("got %d walks, want %d", len(walks), g.NumNodes()*3)
	}
	for _, w := range walks {
		if len(w) == 0 || len(w) > 10 {
			t.Fatalf("walk length %d out of range", len(w))
		}
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Fatal("walk traverses a non-edge")
			}
		}
	}
}

func TestUniformWalksIsolatedNode(t *testing.T) {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("n"))
	b.AddNode("n")
	g := b.MustBuild()
	walks, err := UniformWalks(context.Background(), g, WalkConfig{WalksPerNode: 2, WalkLength: 5}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != 2 {
		t.Fatalf("want 2 walks, got %d", len(walks))
	}
	for _, w := range walks {
		if len(w) != 1 {
			t.Errorf("isolated walk length %d, want 1", len(w))
		}
	}
}

func TestBiasedWalksValidEdges(t *testing.T) {
	g, _, _ := twoClusters(5)
	rng := rand.New(rand.NewSource(5))
	cfg := WalkConfig{WalksPerNode: 2, WalkLength: 12, ReturnP: 0.5, InOutQ: 2}
	walks, err := BiasedWalks(context.Background(), g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != g.NumNodes()*2 {
		t.Fatalf("got %d walks", len(walks))
	}
	for _, w := range walks {
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Fatal("biased walk traverses a non-edge")
			}
		}
	}
}

func TestBiasedWalksLowQExplores(t *testing.T) {
	// Low q (in-out) favours moving away; high q keeps walks local.
	// On a long path graph, low-q walks should reach farther on average.
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("n"))
	n := 40
	for i := 0; i < n; i++ {
		b.AddNode("n")
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.MustBuild()

	reach := func(q float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		cfg := WalkConfig{WalksPerNode: 30, WalkLength: 15, ReturnP: 1, InOutQ: q}
		walks, err := BiasedWalks(context.Background(), g, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		var count int
		for _, w := range walks {
			if w[0] != 0 {
				continue
			}
			maxDist := 0
			for _, v := range w {
				if int(v) > maxDist {
					maxDist = int(v)
				}
			}
			total += float64(maxDist)
			count++
		}
		return total / float64(count)
	}
	if reach(0.25, 6) <= reach(4, 6) {
		t.Error("low q should explore farther than high q on a path")
	}
}

func embeddingSeparates(t *testing.T, vecs [][]float64, a, c []graph.NodeID) {
	t.Helper()
	cos := func(x, y []float64) float64 {
		return dotv(x, y) / (math.Sqrt(dotv(x, x))*math.Sqrt(dotv(y, y)) + 1e-12)
	}
	var within, across float64
	var nw, na int
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			within += cos(vecs[a[i]], vecs[a[j]])
			within += cos(vecs[c[i]], vecs[c[j]])
			nw += 2
		}
		for j := range c {
			across += cos(vecs[a[i]], vecs[c[j]])
			na++
		}
	}
	if within/float64(nw) <= across/float64(na) {
		t.Errorf("within-cluster similarity %v not above across-cluster %v",
			within/float64(nw), across/float64(na))
	}
}

func TestDeepWalkSeparatesClusters(t *testing.T) {
	g, a, c := twoClusters(8)
	rng := rand.New(rand.NewSource(7))
	vecs, err := DeepWalk(context.Background(), g, WalkConfig{WalksPerNode: 10, WalkLength: 20},
		SGNSConfig{Dim: 16, Window: 4, Negatives: 5, Epochs: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != g.NumNodes() || len(vecs[0]) != 16 {
		t.Fatalf("embedding shape %dx%d", len(vecs), len(vecs[0]))
	}
	embeddingSeparates(t, vecs, a, c)
}

func TestNode2VecSeparatesClusters(t *testing.T) {
	g, a, c := twoClusters(8)
	rng := rand.New(rand.NewSource(8))
	vecs, err := Node2Vec(context.Background(), g, WalkConfig{WalksPerNode: 10, WalkLength: 20, ReturnP: 1, InOutQ: 0.5},
		SGNSConfig{Dim: 16, Window: 4, Negatives: 5, Epochs: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	embeddingSeparates(t, vecs, a, c)
}

func TestLINESeparatesClusters(t *testing.T) {
	g, a, c := twoClusters(8)
	rng := rand.New(rand.NewSource(9))
	vecs, err := LINE(context.Background(), g, LINEConfig{Dim: 8, Negatives: 5, Samples: 40000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs[0]) != 16 {
		t.Fatalf("LINE output dim %d, want 16 (two concatenated orders)", len(vecs[0]))
	}
	embeddingSeparates(t, vecs, a, c)
}

func TestEmbeddingsDeterministic(t *testing.T) {
	g, _, _ := twoClusters(5)
	run := func() [][]float64 {
		vecs, err := DeepWalk(context.Background(), g, WalkConfig{WalksPerNode: 2, WalkLength: 8},
			SGNSConfig{Dim: 8, Window: 3, Negatives: 2, Epochs: 1}, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return vecs
	}
	v1, v2 := run(), run()
	for i := range v1 {
		for d := range v1[i] {
			if v1[i][d] != v2[i][d] {
				t.Fatal("embedding not deterministic under fixed seed")
			}
		}
	}
}

func TestSGNSDivergesOnAbsurdLR(t *testing.T) {
	// A learning rate of 1e154 overflows the update arithmetic within the
	// first walks: saturated sigmoids multiply zero gradients into Inf
	// vector components, producing NaN. Training must stop with a typed
	// DivergenceError instead of returning a corrupt matrix.
	g, _, _ := twoClusters(6)
	rng := rand.New(rand.NewSource(10))
	_, err := DeepWalk(context.Background(), g, WalkConfig{WalksPerNode: 4, WalkLength: 15},
		SGNSConfig{Dim: 8, Window: 4, Negatives: 5, Epochs: 2, LR: 1e154}, rng)
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if div.Algo != "sgns" {
		t.Errorf("Algo = %q, want sgns", div.Algo)
	}
	if div.Epoch < 0 || div.Epoch >= 2 {
		t.Errorf("Epoch = %d, want in [0,2)", div.Epoch)
	}
}

func TestLINEDivergesOnAbsurdLR(t *testing.T) {
	g, _, _ := twoClusters(6)
	rng := rand.New(rand.NewSource(11))
	_, err := LINE(context.Background(), g, LINEConfig{Dim: 8, Negatives: 5, Samples: 20000, LR: 1e154}, rng)
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if div.Algo != "line" {
		t.Errorf("Algo = %q, want line", div.Algo)
	}
	if div.Epoch != 1 && div.Epoch != 2 {
		t.Errorf("Epoch (proximity order) = %d, want 1 or 2", div.Epoch)
	}
}

func TestTrainingHonoursCancellation(t *testing.T) {
	g, _, _ := twoClusters(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every loop must exit at its first poll

	if _, err := UniformWalks(ctx, g, WalkConfig{WalksPerNode: 3, WalkLength: 10}, rand.New(rand.NewSource(1))); !errors.Is(err, context.Canceled) {
		t.Errorf("UniformWalks: want context.Canceled, got %v", err)
	}
	if _, err := BiasedWalks(ctx, g, WalkConfig{WalksPerNode: 3, WalkLength: 10, ReturnP: 0.5, InOutQ: 2}, rand.New(rand.NewSource(2))); !errors.Is(err, context.Canceled) {
		t.Errorf("BiasedWalks: want context.Canceled, got %v", err)
	}
	walks, err := UniformWalks(context.Background(), g, WalkConfig{WalksPerNode: 3, WalkLength: 10}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainSGNS(ctx, g, walks, SGNSConfig{Dim: 8, Window: 3, Negatives: 2, Epochs: 1}, rand.New(rand.NewSource(4))); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainSGNS: want context.Canceled, got %v", err)
	}
	if _, err := LINE(ctx, g, LINEConfig{Dim: 8, Negatives: 2, Samples: 10000}, rand.New(rand.NewSource(5))); !errors.Is(err, context.Canceled) {
		t.Errorf("LINE: want context.Canceled, got %v", err)
	}
}

func TestDefaultConfigs(t *testing.T) {
	w := DefaultWalkConfig()
	if w.WalksPerNode != 10 || w.WalkLength != 80 || w.ReturnP != 1 || w.InOutQ != 1 {
		t.Errorf("walk defaults %+v do not match the paper", w)
	}
	s := DefaultSGNSConfig()
	if s.Dim != 128 || s.Window != 10 || s.Negatives != 5 {
		t.Errorf("SGNS defaults %+v do not match the paper", s)
	}
	l := DefaultLINEConfig()
	if l.Negatives != 5 {
		t.Errorf("LINE defaults %+v", l)
	}
}
