package embed

// Tracked embedding benchmarks (`make bench-all`, exercised briefly by
// `make bench-smoke`; cmd/embedbench runs the same workloads and writes
// BENCH_embed.json). Sub-benchmarks sweep the worker count so scaling
// and allocation discipline are visible in one -bench run.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

// benchEmbedGraph is a deterministic sparse random graph sized so one
// walk corpus fits comfortably in cache-unfriendly territory.
func benchEmbedGraph(n, avgDeg int) *graph.Graph {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("n"))
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i], _ = b.AddNode("n")
	}
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < n*avgDeg/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(ids[u], ids[v])
		}
	}
	return b.MustBuild()
}

func benchWorkerCounts() []int {
	return []int{1, 2, 4}
}

func BenchmarkUniformWalks(b *testing.B) {
	g := benchEmbedGraph(2000, 8)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := WalkConfig{WalksPerNode: 5, WalkLength: 40, Workers: workers}
			rng := rand.New(rand.NewSource(7))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := UniformWalks(context.Background(), g, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.NumNodes()*cfg.WalksPerNode*b.N)/b.Elapsed().Seconds(), "walks/sec")
		})
	}
}

func BenchmarkBiasedWalks(b *testing.B) {
	g := benchEmbedGraph(2000, 8)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := WalkConfig{WalksPerNode: 5, WalkLength: 40, ReturnP: 0.5, InOutQ: 2, Workers: workers}
			rng := rand.New(rand.NewSource(7))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BiasedWalks(context.Background(), g, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.NumNodes()*cfg.WalksPerNode*b.N)/b.Elapsed().Seconds(), "walks/sec")
		})
	}
}

// sgnsUpdates counts the nominal pair updates (positive + negative
// samples per skip-gram pair) one pass over the corpus performs.
func sgnsUpdates(walks [][]graph.NodeID, window, negatives, epochs int) int64 {
	var pairs int64
	for _, w := range walks {
		for i := range w {
			lo := i - window
			if lo < 0 {
				lo = 0
			}
			hi := i + window
			if hi >= len(w) {
				hi = len(w) - 1
			}
			pairs += int64(hi - lo)
		}
	}
	return pairs * int64(1+negatives) * int64(epochs)
}

func BenchmarkTrainSGNS(b *testing.B) {
	g := benchEmbedGraph(2000, 8)
	walks, err := UniformWalks(context.Background(), g,
		WalkConfig{WalksPerNode: 5, WalkLength: 40, Workers: 1}, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := SGNSConfig{Dim: 64, Window: 5, Negatives: 5, Epochs: 1, Workers: workers}
			updates := sgnsUpdates(walks, cfg.Window, cfg.Negatives, cfg.Epochs)
			rng := rand.New(rand.NewSource(8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := TrainSGNS(context.Background(), g, walks, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(updates*int64(b.N))/b.Elapsed().Seconds(), "updates/sec")
		})
	}
}

func BenchmarkLINE(b *testing.B) {
	g := benchEmbedGraph(2000, 8)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := LINEConfig{Dim: 32, Negatives: 5, Samples: 10 * g.NumEdges(), Workers: workers}
			updates := int64(cfg.Samples) * int64(1+cfg.Negatives) * 2 // both orders
			rng := rand.New(rand.NewSource(9))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := LINE(context.Background(), g, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(updates*int64(b.N))/b.Elapsed().Seconds(), "updates/sec")
		})
	}
}
