package embed

import "math"

// sigma is the logistic function with clamping for numerical stability.
// The z < -8 branch uses the exp(z)/(1+exp(z)) form, which keeps full
// precision where exp(-z) would overflow toward 1/Inf.
func sigma(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		e := math.Exp(z)
		return e / (1 + e)
	}
	return 1 / (1 + math.Exp(-z))
}

// The Hogwild inner loops replace per-call math.Exp with a precomputed
// sigmoid table, the standard word2vec trick: scores only steer
// stochastic gradients, so quantising σ to ~2^-12 of its range changes
// nothing measurable while removing the most expensive instruction from
// the hot loop. The serial (Workers<=1) paths keep the exact sigma so
// their output stays bitwise-identical to the original implementation.
const (
	sigTableSize = 1 << 13 // 8192 buckets over (-sigMaxZ, +sigMaxZ)
	sigMaxZ      = 8.0
	sigScale     = sigTableSize / (2 * sigMaxZ)
)

var sigTable = func() *[sigTableSize]float64 {
	var t [sigTableSize]float64
	for i := range t {
		z := (float64(i)+0.5)/sigScale - sigMaxZ // bucket midpoint
		t[i] = sigma(z)
	}
	return &t
}()

// sigmaLUT is the table-lookup logistic function used by the parallel
// trainers. Outside (-8, 8) it saturates exactly like sigma's clamps; a
// NaN score propagates as NaN so the divergence guard can catch it.
func sigmaLUT(z float64) float64 {
	if z > -sigMaxZ && z < sigMaxZ {
		return sigTable[int((z+sigMaxZ)*sigScale)]
	}
	if z >= sigMaxZ {
		return 1
	}
	if z <= -sigMaxZ {
		return sigTable[0]
	}
	return z // NaN
}
