package embed

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"hsgf/internal/graph"
)

// LINEConfig controls LINE training (Tang et al., WWW 2015).
type LINEConfig struct {
	Dim       int     // dimension of EACH order; the output concatenates both
	Negatives int     // negative samples per edge, paper default 5
	Samples   int     // edge samples per order; default 100 × |E|
	LR        float64 // initial learning rate, default 0.025

	// Workers is the number of Hogwild training goroutines. Values <= 1
	// run the exact serial trainer (bitwise-identical to the original
	// implementation under a fixed rng); values > 1 partition the edge
	// samples across goroutines doing unsynchronised gradient updates.
	Workers int
}

// DefaultLINEConfig returns defaults matching the reference
// implementation at small scale: 64+64 dimensions (concatenated to 128,
// the paper's d), 5 negatives.
func DefaultLINEConfig() LINEConfig {
	return LINEConfig{Dim: 64, Negatives: 5, LR: 0.025}
}

func (c *LINEConfig) normalize(edges int) {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Samples <= 0 {
		c.Samples = 100 * edges
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
}

// linePollInterval is how many edge samples pass between cooperative
// cancellation checks; lineGuardInterval is how many pass between
// divergence scans of the last-updated source vector. Both are powers of
// two so the hot loop tests them with a mask. The parallel trainer uses
// linePollInterval as its dispatch chunk, so cancellation latency stays
// bounded by Workers·linePollInterval samples.
const (
	linePollInterval  = 512
	lineGuardInterval = 64
)

// LINE learns LINE embeddings: first-order proximity (direct neighbours
// embed closely) and second-order proximity (nodes with shared
// neighbourhoods embed closely, via separate context vectors), each
// trained by edge sampling with negative sampling; the two halves are
// concatenated into the final representation, as the paper prescribes.
// The returned rows are views into one flat backing array.
//
// With cfg.Workers > 1 each order's edge samples are partitioned across
// Hogwild goroutines (see LINEConfig.Workers). Cancellation is honoured
// every linePollInterval edge samples and returns ctx.Err(). Gradient
// updates are guarded against divergence: a non-finite embedding value
// (learning-rate blowup) stops training with a *DivergenceError whose
// Epoch field carries the proximity order.
func LINE(ctx context.Context, g *graph.Graph, cfg LINEConfig, rng *rand.Rand) ([][]float64, error) {
	cfg.normalize(g.NumEdges())
	n := g.NumNodes()
	first, err := trainLINEOrder(ctx, g, cfg, 1, rng)
	if err != nil {
		return nil, err
	}
	second, err := trainLINEOrder(ctx, g, cfg, 2, rng)
	if err != nil {
		return nil, err
	}
	dim := cfg.Dim
	out := make([]float64, n*2*dim)
	for v := 0; v < n; v++ {
		copy(out[v*2*dim:], first[v*dim:(v+1)*dim])
		copy(out[v*2*dim+dim:], second[v*dim:(v+1)*dim])
	}
	return rowsOf(out, n, 2*dim), nil
}

// trainLINEOrder trains one proximity order over flat matrices. Edges
// are sampled uniformly (the network is unweighted); negatives come
// from the degree^0.75 distribution.
func trainLINEOrder(ctx context.Context, g *graph.Graph, cfg LINEConfig, order int, rng *rand.Rand) ([]float64, error) {
	n := g.NumNodes()
	dim := cfg.Dim
	vertex := makeInitFlat(n, dim, rng)
	var context []float64
	if order == 2 {
		context = make([]float64, n*dim)
	}

	m := g.NumEdges()
	if m == 0 {
		return vertex, nil
	}
	degW := make([]float64, n)
	for v := 0; v < n; v++ {
		degW[v] = math.Pow(float64(g.Degree(graph.NodeID(v))), 0.75)
	}
	neg, err := NewAlias(degW)
	if err != nil {
		return vertex, nil
	}

	if cfg.Workers > 1 {
		if err := trainLINEOrderParallel(ctx, g, cfg, order, vertex, context, neg, rng); err != nil {
			return nil, err
		}
		return vertex, nil
	}

	// Serial path: the exact original trainer (bit-for-bit, pinned by
	// the golden test in golden_test.go).
	grad := make([]float64, dim)
	for s := 0; s < cfg.Samples; s++ {
		if s&(linePollInterval-1) == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		lr := cfg.LR * (1 - float64(s)/float64(cfg.Samples+1))
		if lr < cfg.LR*0.0001 {
			lr = cfg.LR * 0.0001
		}
		e := graph.EdgeID(rng.Intn(m))
		u, v := g.EdgeEndpoints(e)
		if rng.Intn(2) == 0 {
			u, v = v, u // undirected: train both directions
		}
		src := vertex[int(u)*dim : (int(u)+1)*dim]
		for d := range grad {
			grad[d] = 0
		}
		// Positive target plus negatives.
		for k := 0; k <= cfg.Negatives; k++ {
			var target int
			var label float64
			if k == 0 {
				target = int(v)
				label = 1
			} else {
				target = neg.Sample(rng)
				if target == int(v) {
					continue
				}
				label = 0
			}
			var tvec []float64
			if order == 2 {
				tvec = context[target*dim : (target+1)*dim]
			} else {
				tvec = vertex[target*dim : (target+1)*dim]
			}
			score := sigma(dotv(src, tvec))
			gcoef := lr * (label - score)
			for d := 0; d < dim; d++ {
				grad[d] += gcoef * tvec[d]
				tvec[d] += gcoef * src[d]
			}
		}
		for d := 0; d < dim; d++ {
			src[d] += grad[d]
		}
		// Divergence guard: a blowup first appears in the vector just
		// updated, so a periodic scan of src catches it within
		// lineGuardInterval samples of the corruption.
		if s&(lineGuardInterval-1) == 0 && !finite(src) {
			return nil, &DivergenceError{Algo: "line", Epoch: order, Step: s}
		}
	}
	return vertex, nil
}

// trainLINEOrderParallel partitions cfg.Samples across cfg.Workers
// Hogwild goroutines. Samples are claimed in linePollInterval-sized
// chunks by atomic counter (which also bounds cancellation latency);
// each worker owns a cheap xoshiro RNG, matrix traffic goes through the
// sanctioned hogLoad/hogStore, and the learning rate decays on the
// globally-claimed sample index, approximating the serial schedule.
func trainLINEOrderParallel(ctx context.Context, g *graph.Graph, cfg LINEConfig, order int, vertex, context []float64, neg *Alias, rng *rand.Rand) error {
	dim := cfg.Dim
	m := g.NumEdges()
	base := rng.Uint64()
	var next atomic.Int64
	var fails trainFail
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			var r frand
			r.seed(deriveSeed(base, order*cfg.Workers+wid))
			grad := make([]float64, dim)
			for {
				lo := int(next.Add(linePollInterval)) - linePollInterval
				if lo >= cfg.Samples || fails.stop.Load() {
					return
				}
				select {
				case <-ctx.Done():
					fails.fail(ctx.Err())
					return
				default:
				}
				hi := lo + linePollInterval
				if hi > cfg.Samples {
					hi = cfg.Samples
				}
				for s := lo; s < hi; s++ {
					lr := cfg.LR * (1 - float64(s)/float64(cfg.Samples+1))
					if lr < cfg.LR*0.0001 {
						lr = cfg.LR * 0.0001
					}
					e := graph.EdgeID(r.Intn(m))
					u, v := g.EdgeEndpoints(e)
					if r.Intn(2) == 0 {
						u, v = v, u // undirected: train both directions
					}
					sb := int(u) * dim
					for d := range grad {
						grad[d] = 0
					}
					for k := 0; k <= cfg.Negatives; k++ {
						var target int
						var label float64
						if k == 0 {
							target = int(v)
							label = 1
						} else {
							target = neg.sampleFast(&r)
							if target == int(v) {
								continue
							}
							label = 0
						}
						tvec := vertex
						if order == 2 {
							tvec = context
						}
						tb := target * dim
						var dot float64
						for d := 0; d < dim; d++ {
							dot += hogLoad(&vertex[sb+d]) * hogLoad(&tvec[tb+d])
						}
						gcoef := lr * (label - sigmaLUT(dot))
						for d := 0; d < dim; d++ {
							tv := hogLoad(&tvec[tb+d])
							grad[d] += gcoef * tv
							hogStore(&tvec[tb+d], tv+gcoef*hogLoad(&vertex[sb+d]))
						}
					}
					for d := 0; d < dim; d++ {
						hogStore(&vertex[sb+d], hogLoad(&vertex[sb+d])+grad[d])
					}
					if s&(lineGuardInterval-1) == 0 && !finiteShared(vertex[sb:sb+dim]) {
						fails.fail(&DivergenceError{Algo: "line", Epoch: order, Step: s})
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return fails.err
}
