// Package embed implements the three neural node-embedding baselines the
// paper compares against (§4.2.2): DeepWalk (uniform truncated random
// walks + skip-gram), node2vec (second-order biased walks + skip-gram) and
// LINE (first- and second-order proximity with edge sampling). All three
// share a skip-gram-with-negative-sampling trainer and produce dense
// per-node feature vectors. Implementations are deliberately faithful to
// the published algorithms at laptop scale; they take explicit random
// sources so experiments are reproducible.
package embed

import (
	"fmt"
	"math/rand"
)

// Alias is a Walker alias-method sampler over a discrete distribution:
// O(n) setup, O(1) sampling.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("embed: empty weight vector")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("embed: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("embed: all weights zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws one index from the distribution.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// sampleFast is Sample over the mutex-free per-worker generator the
// Hogwild trainers use.
func (a *Alias) sampleFast(r *frand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
