package embed

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"hsgf/internal/graph"
)

// SGNSConfig controls skip-gram-with-negative-sampling training over a
// walk corpus.
type SGNSConfig struct {
	Dim       int     // embedding dimension d, paper default 128
	Window    int     // context size k, paper default 10
	Negatives int     // negative samples K, paper default 5
	Epochs    int     // passes over the corpus, default 1
	LR        float64 // initial learning rate, default 0.025
}

// DefaultSGNSConfig returns the paper's recommended parameters
// (d=128, k=10, K=5).
func DefaultSGNSConfig() SGNSConfig {
	return SGNSConfig{Dim: 128, Window: 10, Negatives: 5, Epochs: 1, LR: 0.025}
}

func (c *SGNSConfig) normalize() {
	if c.Dim <= 0 {
		c.Dim = 128
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
}

// DivergenceError reports that a training loop produced a non-finite
// (NaN/Inf) embedding value — almost always a learning-rate blowup —
// identifying where training was when the corruption was detected, so
// callers can bisect the schedule instead of silently persisting a
// corrupt embedding matrix.
type DivergenceError struct {
	// Algo is the training algorithm: "sgns" or "line".
	Algo string
	// Epoch locates the divergence: the corpus pass for SGNS, the
	// proximity order (1 or 2) for LINE.
	Epoch int
	// Step is the walk index within the epoch (SGNS) or the edge
	// sample index (LINE) at detection time.
	Step int
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("embed: %s training diverged (non-finite embedding) at epoch %d, step %d; lower the learning rate",
		e.Algo, e.Epoch, e.Step)
}

// sigma is the logistic function with clamping for numerical stability.
func sigma(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return math.Exp(z) / (1 + math.Exp(z))
	}
	return 1 / (1 + math.Exp(-z))
}

// finite reports whether every component of v is a finite float.
func finite(v []float64) bool {
	for _, x := range v {
		// IsNaN || IsInf, branch-free: a finite x satisfies x-x == 0.
		if x-x != 0 {
			return false
		}
	}
	return true
}

// TrainSGNS learns node embeddings from a walk corpus by skip-gram with
// negative sampling. Negative nodes are drawn from the corpus unigram
// distribution raised to the 3/4 power, as in word2vec. Returns one
// Dim-vector per node of g.
//
// The epoch loop is cooperative: ctx cancellation is honoured between
// walks and returns ctx.Err(). Gradient updates are guarded against
// divergence — if an embedding vector turns non-finite (learning-rate
// blowup), training stops with a *DivergenceError naming the epoch
// rather than silently corrupting the matrix.
func TrainSGNS(ctx context.Context, g *graph.Graph, walks [][]graph.NodeID, cfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	cfg.normalize()
	n := g.NumNodes()
	dim := cfg.Dim

	// Unigram^0.75 negative-sampling table.
	freq := make([]float64, n)
	for _, walk := range walks {
		for _, v := range walk {
			freq[v]++
		}
	}
	for i := range freq {
		freq[i] = math.Pow(freq[i], 0.75)
	}
	neg, err := NewAlias(freq)
	if err != nil {
		// Corpus is empty or degenerate; return deterministic small
		// random vectors so downstream pipelines still function.
		return makeInit(n, dim, rng), nil
	}

	in := makeInit(n, dim, rng)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}

	totalSteps := cfg.Epochs * len(walks)
	step := 0
	gradIn := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for wi, walk := range walks {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LR*0.0001 {
				lr = cfg.LR * 0.0001
			}
			step++
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				vin := in[center]
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ctxNode := walk[j]
					for d := range gradIn {
						gradIn[d] = 0
					}
					// Positive example.
					vout := out[ctxNode]
					score := sigma(dotv(vin, vout))
					gpos := lr * (1 - score)
					for d := 0; d < dim; d++ {
						gradIn[d] += gpos * vout[d]
						vout[d] += gpos * vin[d]
					}
					// Negative examples.
					for k := 0; k < cfg.Negatives; k++ {
						nn := neg.Sample(rng)
						if graph.NodeID(nn) == ctxNode {
							continue
						}
						vneg := out[nn]
						score := sigma(dotv(vin, vneg))
						gneg := -lr * score
						for d := 0; d < dim; d++ {
							gradIn[d] += gneg * vneg[d]
							vneg[d] += gneg * vin[d]
						}
					}
					for d := 0; d < dim; d++ {
						vin[d] += gradIn[d]
					}
				}
			}
			// Divergence guard: a blowup propagates through every vector
			// the walk touched, so checking the walk's input vectors each
			// walk detects it promptly and deterministically.
			for _, v := range walk {
				if !finite(in[v]) {
					return nil, &DivergenceError{Algo: "sgns", Epoch: epoch, Step: wi}
				}
			}
		}
	}
	return in, nil
}

func makeInit(n, dim int, rng *rand.Rand) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for d := range v {
			v[d] = (rng.Float64() - 0.5) / float64(dim)
		}
		vecs[i] = v
	}
	return vecs
}

func dotv(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// DeepWalk learns DeepWalk embeddings: uniform truncated random walks fed
// to skip-gram with negative sampling (Perozzi et al., KDD 2014).
func DeepWalk(ctx context.Context, g *graph.Graph, wcfg WalkConfig, scfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	wcfg.ReturnP, wcfg.InOutQ = 1, 1
	walks, err := UniformWalks(ctx, g, wcfg, rng)
	if err != nil {
		return nil, err
	}
	return TrainSGNS(ctx, g, walks, scfg, rng)
}

// Node2Vec learns node2vec embeddings: second-order biased walks with
// return parameter p and in-out parameter q fed to skip-gram with negative
// sampling (Grover & Leskovec, KDD 2016).
func Node2Vec(ctx context.Context, g *graph.Graph, wcfg WalkConfig, scfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	walks, err := BiasedWalks(ctx, g, wcfg, rng)
	if err != nil {
		return nil, err
	}
	return TrainSGNS(ctx, g, walks, scfg, rng)
}
