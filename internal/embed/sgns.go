package embed

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"hsgf/internal/graph"
)

// SGNSConfig controls skip-gram-with-negative-sampling training over a
// walk corpus.
type SGNSConfig struct {
	Dim       int     // embedding dimension d, paper default 128
	Window    int     // context size k, paper default 10
	Negatives int     // negative samples K, paper default 5
	Epochs    int     // passes over the corpus, default 1
	LR        float64 // initial learning rate, default 0.025

	// Workers is the number of Hogwild training goroutines. Values <= 1
	// run the exact serial trainer, whose output is bitwise-identical
	// to the original implementation under a fixed rng. Values > 1
	// partition the corpus across goroutines doing unsynchronised
	// gradient updates on the shared matrices (Recht et al.; the
	// word2vec training regime), which is nondeterministic but
	// statistically equivalent.
	Workers int
}

// DefaultSGNSConfig returns the paper's recommended parameters
// (d=128, k=10, K=5).
func DefaultSGNSConfig() SGNSConfig {
	return SGNSConfig{Dim: 128, Window: 10, Negatives: 5, Epochs: 1, LR: 0.025}
}

func (c *SGNSConfig) normalize() {
	if c.Dim <= 0 {
		c.Dim = 128
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
}

// DivergenceError reports that a training loop produced a non-finite
// (NaN/Inf) embedding value — almost always a learning-rate blowup —
// identifying where training was when the corruption was detected, so
// callers can bisect the schedule instead of silently persisting a
// corrupt embedding matrix.
type DivergenceError struct {
	// Algo is the training algorithm: "sgns" or "line".
	Algo string
	// Epoch locates the divergence: the corpus pass for SGNS, the
	// proximity order (1 or 2) for LINE.
	Epoch int
	// Step is the walk index within the epoch (SGNS) or the edge
	// sample index (LINE) at detection time.
	Step int
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("embed: %s training diverged (non-finite embedding) at epoch %d, step %d; lower the learning rate",
		e.Algo, e.Epoch, e.Step)
}

// finite reports whether every component of v is a finite float.
func finite(v []float64) bool {
	for _, x := range v {
		// IsNaN || IsInf, branch-free: a finite x satisfies x-x == 0.
		if x-x != 0 {
			return false
		}
	}
	return true
}

// finiteShared is finite over a row of a matrix that Hogwild workers
// are concurrently updating; accesses go through the sanctioned
// hogLoad so -race builds treat them as synchronised.
func finiteShared(v []float64) bool {
	for i := range v {
		if x := hogLoad(&v[i]); x-x != 0 {
			return false
		}
	}
	return true
}

// trainFail collects the first error from a set of training workers and
// flips the shared stop flag the hot loops poll.
type trainFail struct {
	stop atomic.Bool
	mu   sync.Mutex
	err  error
}

func (f *trainFail) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.stop.Store(true)
}

// TrainSGNS learns node embeddings from a walk corpus by skip-gram with
// negative sampling. Negative nodes are drawn from the corpus unigram
// distribution raised to the 3/4 power, as in word2vec. Returns one
// Dim-vector per node of g; the rows are views into one flat backing
// array (cache-friendly, two allocations instead of n+1).
//
// With cfg.Workers > 1 the corpus is partitioned across Hogwild
// goroutines (see SGNSConfig.Workers). Both paths honour ctx
// cancellation and guard against divergence — if an embedding vector
// turns non-finite (learning-rate blowup), training stops with a
// *DivergenceError naming the epoch rather than silently corrupting
// the matrix.
func TrainSGNS(ctx context.Context, g *graph.Graph, walks [][]graph.NodeID, cfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	cfg.normalize()
	n := g.NumNodes()
	dim := cfg.Dim

	// Unigram^0.75 negative-sampling table.
	freq := make([]float64, n)
	for _, walk := range walks {
		for _, v := range walk {
			freq[v]++
		}
	}
	for i := range freq {
		freq[i] = math.Pow(freq[i], 0.75)
	}
	neg, err := NewAlias(freq)
	if err != nil {
		// Corpus is empty or degenerate; return deterministic small
		// random vectors so downstream pipelines still function.
		return makeInit(n, dim, rng), nil
	}

	in := makeInitFlat(n, dim, rng)
	out := make([]float64, n*dim)

	if cfg.Workers > 1 {
		err = trainSGNSParallel(ctx, in, out, walks, cfg, neg, rng)
	} else {
		err = trainSGNSSerial(ctx, in, out, walks, cfg, neg, rng)
	}
	if err != nil {
		return nil, err
	}
	return rowsOf(in, n, dim), nil
}

// trainSGNSSerial is the exact original trainer over flat matrices: the
// operation order, rng consumption and floating-point arithmetic match
// the pre-parallel implementation bit for bit (pinned by the golden
// test in golden_test.go).
func trainSGNSSerial(ctx context.Context, in, out []float64, walks [][]graph.NodeID, cfg SGNSConfig, neg *Alias, rng *rand.Rand) error {
	dim := cfg.Dim
	totalSteps := cfg.Epochs * len(walks)
	step := 0
	gradIn := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for wi, walk := range walks {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LR*0.0001 {
				lr = cfg.LR * 0.0001
			}
			step++
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				vin := in[int(center)*dim : (int(center)+1)*dim]
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ctxNode := walk[j]
					for d := range gradIn {
						gradIn[d] = 0
					}
					// Positive example.
					vout := out[int(ctxNode)*dim : (int(ctxNode)+1)*dim]
					score := sigma(dotv(vin, vout))
					gpos := lr * (1 - score)
					for d := 0; d < dim; d++ {
						gradIn[d] += gpos * vout[d]
						vout[d] += gpos * vin[d]
					}
					// Negative examples.
					for k := 0; k < cfg.Negatives; k++ {
						nn := neg.Sample(rng)
						if graph.NodeID(nn) == ctxNode {
							continue
						}
						vneg := out[nn*dim : (nn+1)*dim]
						score := sigma(dotv(vin, vneg))
						gneg := -lr * score
						for d := 0; d < dim; d++ {
							gradIn[d] += gneg * vneg[d]
							vneg[d] += gneg * vin[d]
						}
					}
					for d := 0; d < dim; d++ {
						vin[d] += gradIn[d]
					}
				}
			}
			// Divergence guard: a blowup propagates through every vector
			// the walk touched, so checking the walk's input vectors each
			// walk detects it promptly and deterministically.
			for _, v := range walk {
				if !finite(in[int(v)*dim : (int(v)+1)*dim]) {
					return &DivergenceError{Algo: "sgns", Epoch: epoch, Step: wi}
				}
			}
		}
	}
	return nil
}

// sgnsChunk is how many walks a Hogwild worker claims per dispatch;
// ctx and the stop flag are polled once per chunk.
const sgnsChunk = 16

// trainSGNSParallel runs cfg.Workers Hogwild goroutines over the
// corpus. Walks are handed out by chunked atomic counter; every worker
// owns a cheap xoshiro RNG seeded from the caller's rng, so no lock is
// taken anywhere in the hot loop. Matrix reads and writes go through
// hogLoad/hogStore (sanctioned unsynchronised access — see
// hogwild_norace.go); the learning rate decays on a shared atomic step
// counter, approximating the serial schedule. The per-call math.Exp of
// the serial path becomes a sigmoid table lookup.
func trainSGNSParallel(ctx context.Context, in, out []float64, walks [][]graph.NodeID, cfg SGNSConfig, neg *Alias, rng *rand.Rand) error {
	dim := cfg.Dim
	base := rng.Uint64()
	totalSteps := cfg.Epochs * len(walks)
	var step atomic.Int64
	var fails trainFail

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				var r frand
				r.seed(deriveSeed(base, epoch*cfg.Workers+wid))
				gradIn := make([]float64, dim)
				for {
					lo := int(next.Add(sgnsChunk)) - sgnsChunk
					if lo >= len(walks) || fails.stop.Load() {
						return
					}
					select {
					case <-ctx.Done():
						fails.fail(ctx.Err())
						return
					default:
					}
					hi := lo + sgnsChunk
					if hi > len(walks) {
						hi = len(walks)
					}
					for wi := lo; wi < hi; wi++ {
						walk := walks[wi]
						s := step.Add(1) - 1
						lr := cfg.LR * (1 - float64(s)/float64(totalSteps+1))
						if lr < cfg.LR*0.0001 {
							lr = cfg.LR * 0.0001
						}
						hogwildWalk(in, out, walk, dim, cfg.Window, cfg.Negatives, lr, neg, &r, gradIn)
						// Per-worker divergence guard, same cadence as the
						// serial trainer.
						for _, v := range walk {
							if !finiteShared(in[int(v)*dim : (int(v)+1)*dim]) {
								fails.fail(&DivergenceError{Algo: "sgns", Epoch: epoch, Step: wi})
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if fails.stop.Load() {
			break
		}
	}
	return fails.err
}

// hogwildWalk applies one walk's skip-gram updates to the shared flat
// matrices. All matrix element accesses go through hogLoad/hogStore;
// gradIn is worker-local scratch.
func hogwildWalk(in, out []float64, walk []graph.NodeID, dim, window, negatives int, lr float64, neg *Alias, r *frand, gradIn []float64) {
	for i, center := range walk {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi >= len(walk) {
			hi = len(walk) - 1
		}
		cb := int(center) * dim
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			ctxNode := walk[j]
			for d := range gradIn {
				gradIn[d] = 0
			}
			// Positive example.
			ob := int(ctxNode) * dim
			var dot float64
			for d := 0; d < dim; d++ {
				dot += hogLoad(&in[cb+d]) * hogLoad(&out[ob+d])
			}
			gpos := lr * (1 - sigmaLUT(dot))
			for d := 0; d < dim; d++ {
				vo := hogLoad(&out[ob+d])
				gradIn[d] += gpos * vo
				hogStore(&out[ob+d], vo+gpos*hogLoad(&in[cb+d]))
			}
			// Negative examples.
			for k := 0; k < negatives; k++ {
				nn := neg.sampleFast(r)
				if graph.NodeID(nn) == ctxNode {
					continue
				}
				nb := nn * dim
				dot = 0
				for d := 0; d < dim; d++ {
					dot += hogLoad(&in[cb+d]) * hogLoad(&out[nb+d])
				}
				gneg := -lr * sigmaLUT(dot)
				for d := 0; d < dim; d++ {
					vn := hogLoad(&out[nb+d])
					gradIn[d] += gneg * vn
					hogStore(&out[nb+d], vn+gneg*hogLoad(&in[cb+d]))
				}
			}
			for d := 0; d < dim; d++ {
				hogStore(&in[cb+d], hogLoad(&in[cb+d])+gradIn[d])
			}
		}
	}
}

// makeInitFlat fills one flat n×dim matrix with the standard small
// uniform init. The fill order matches the original per-row makeInit,
// so a fixed rng produces bitwise-identical values.
func makeInitFlat(n, dim int, rng *rand.Rand) []float64 {
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = (rng.Float64() - 0.5) / float64(dim)
	}
	return flat
}

// rowsOf returns the n row views of a flat n×dim matrix. Rows are
// capped so an append by a caller cannot bleed into the next row.
func rowsOf(flat []float64, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows
}

func makeInit(n, dim int, rng *rand.Rand) [][]float64 {
	return rowsOf(makeInitFlat(n, dim, rng), n, dim)
}

func dotv(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// DeepWalk learns DeepWalk embeddings: uniform truncated random walks fed
// to skip-gram with negative sampling (Perozzi et al., KDD 2014).
func DeepWalk(ctx context.Context, g *graph.Graph, wcfg WalkConfig, scfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	wcfg.ReturnP, wcfg.InOutQ = 1, 1
	walks, err := UniformWalks(ctx, g, wcfg, rng)
	if err != nil {
		return nil, err
	}
	return TrainSGNS(ctx, g, walks, scfg, rng)
}

// Node2Vec learns node2vec embeddings: second-order biased walks with
// return parameter p and in-out parameter q fed to skip-gram with negative
// sampling (Grover & Leskovec, KDD 2016).
func Node2Vec(ctx context.Context, g *graph.Graph, wcfg WalkConfig, scfg SGNSConfig, rng *rand.Rand) ([][]float64, error) {
	walks, err := BiasedWalks(ctx, g, wcfg, rng)
	if err != nil {
		return nil, err
	}
	return TrainSGNS(ctx, g, walks, scfg, rng)
}
