package sysres

import (
	"runtime"
	"testing"
)

func TestMaxRSSBytes(t *testing.T) {
	got := MaxRSSBytes()
	switch runtime.GOOS {
	case "linux", "darwin":
		// A running Go test binary is resident well past 1MB and well
		// under 1TB; anything outside that window means the unit
		// conversion is wrong for this platform.
		if got < 1<<20 || got > 1<<40 {
			t.Fatalf("MaxRSSBytes() = %d, outside any plausible RSS", got)
		}
	default:
		if got < 0 {
			t.Fatalf("MaxRSSBytes() = %d, want >= 0", got)
		}
	}
}
