//go:build !unix

package sysres

func maxRSSBytes() int64 { return 0 }
