// Package sysres reports process-level resource usage for the tracked
// benchmark harnesses. Go's runtime.MemStats sees only the Go heap; the
// scale ladder also cares about what the OS actually charges the
// process — mmap'd snapshot pages, stacks, the allocator's retained
// spans — which is what peak RSS measures.
package sysres

// MaxRSSBytes returns the process's peak resident set size in bytes,
// or 0 where the platform cannot report it.
func MaxRSSBytes() int64 {
	return maxRSSBytes()
}
