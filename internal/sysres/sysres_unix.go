//go:build unix

package sysres

import (
	"runtime"
	"syscall"
)

// maxRSSBytes reads getrusage(RUSAGE_SELF). ru_maxrss is kilobytes on
// Linux and bytes on macOS; everything else unix-like follows Linux.
func maxRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return ru.Maxrss
	}
	return ru.Maxrss * 1024
}
