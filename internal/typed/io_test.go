package typed

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hsgf/internal/graph"
)

func TestTypedTSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		g := randomTyped(rng, 3+rng.Intn(12), 1+rng.Intn(3), 1+rng.Intn(2), trial%2 == 0, 0.3)
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() ||
			g2.Directed() != g.Directed() {
			t.Fatalf("trial %d: round trip shape mismatch", trial)
		}
		// Censuses must agree: the strongest functional round-trip check.
		if g.NumNodes() == 0 {
			continue
		}
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		e1, _ := NewExtractor(g, Options{MaxEdges: 2})
		e2, _ := NewExtractor(g2, Options{MaxEdges: 2})
		c1, err := CanonicalCounts(e1, e1.Census(root))
		if err != nil {
			t.Fatal(err)
		}
		c2, err := CanonicalCounts(e2, e2.Census(root))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("trial %d: censuses differ after round trip", trial)
		}
	}
}

func TestTypedReadTSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"missing type record", "n\ta\n"},
		{"empty file", ""},
		{"duplicate type", "t\tdirected\nt\tdirected\n"},
		{"bad mode", "t\tsideways\n"},
		{"bad type arity", "t\n"},
		{"bad node line", "t\tdirected\nn\n"},
		{"bad edge arity", "t\tdirected\nn\ta\nn\ta\ne\t0\t1\n"},
		{"bad edge id", "t\tdirected\nn\ta\nn\ta\ne\tx\t1\tr\n"},
		{"bad edge id 2", "t\tdirected\nn\ta\nn\ta\ne\t0\ty\tr\n"},
		{"self loop", "t\tdirected\nn\ta\ne\t0\t0\tr\n"},
		{"unknown record", "t\tdirected\nq\t1\n"},
		{"edge before type", "e\t0\t1\tr\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTypedReadTSVDirectedness(t *testing.T) {
	in := "t\tdirected\nn\tp\nn\tp\ne\t0\t1\tcites\n"
	g, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("mode not honoured")
	}
	u, v := g.EdgeEndpoints(0)
	if u != 0 || v != 1 {
		t.Fatalf("arc direction lost: %d -> %d", u, v)
	}
}
