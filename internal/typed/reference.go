package typed

import (
	"fmt"
	"sort"
	"strings"

	"hsgf/internal/graph"
)

// ReferenceCensus enumerates the typed rooted census by brute force,
// mirroring core.ReferenceCensus: all (weakly) connected edge subsets
// containing root with at most opts.MaxEdges edges, deduplicated by
// sorted edge-id key and tallied by canonical sequence rendering. Used
// as the correctness oracle for the optimised census.
func ReferenceCensus(g *Graph, root graph.NodeID, opts Options) map[string]int64 {
	k := g.NumLabels()
	mask := int32(-1)
	if opts.MaskRootLabel {
		mask = int32(k)
		k++
	}
	m := g.NumIncidenceTypes()
	if m == 0 {
		m = 1
	}
	dmax := opts.MaxDegree
	if dmax <= 0 {
		dmax = int(^uint(0) >> 1)
	}

	counts := make(map[string]int64)
	seen := make(map[string]bool)

	labelOf := func(v graph.NodeID) int32 {
		if mask >= 0 && v == root {
			return mask
		}
		return int32(g.Label(v))
	}
	expandable := func(x graph.NodeID) bool {
		return x == root || g.Degree(x) <= dmax
	}

	encode := func(edgeIDs []graph.EdgeID) string {
		nodeSet := map[graph.NodeID]int{}
		var nodes []graph.NodeID
		addNode := func(v graph.NodeID) {
			if _, ok := nodeSet[v]; !ok {
				nodeSet[v] = len(nodes)
				nodes = append(nodes, v)
			}
		}
		for _, id := range edgeIDs {
			a, b := g.EdgeEndpoints(id)
			addNode(a)
			addNode(b)
		}
		stride := 1 + k*m
		vals := make([]int32, len(nodes)*stride)
		for i, v := range nodes {
			vals[i*stride] = labelOf(v)
		}
		for _, id := range edgeIDs {
			a, b := g.EdgeEndpoints(id)
			// Incidence code from a's side is "outgoing" of the stored
			// orientation.
			ca := g.incidenceCode(g.EdgeLabelOf(id), true)
			cb := g.reverseCode(ca)
			ia, ib := nodeSet[a], nodeSet[b]
			vals[ia*stride+1+int(labelOf(b))*m+int(ca)]++
			vals[ib*stride+1+int(labelOf(a))*m+int(cb)]++
		}
		s := Sequence{K: k, M: m, Values: vals}
		s.normalize()
		var sb strings.Builder
		for i, v := range s.Values {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		return sb.String()
	}

	var rec func(edgeIDs []graph.EdgeID, nodes map[graph.NodeID]bool)
	rec = func(edgeIDs []graph.EdgeID, nodes map[graph.NodeID]bool) {
		key := edgeSetKey(edgeIDs)
		if seen[key] {
			return
		}
		seen[key] = true
		counts[encode(edgeIDs)]++
		if len(edgeIDs) == opts.MaxEdges {
			return
		}
		inSet := make(map[graph.EdgeID]bool, len(edgeIDs))
		for _, id := range edgeIDs {
			inSet[id] = true
		}
		tried := make(map[graph.EdgeID]bool)
		for v := range nodes {
			if !expandable(v) {
				continue
			}
			eids := g.IncidentEdges(v)
			adj := g.Neighbors(v)
			for i, id := range eids {
				if inSet[id] || tried[id] {
					continue
				}
				tried[id] = true
				w := adj[i]
				newNodes := nodes
				if !nodes[w] {
					newNodes = make(map[graph.NodeID]bool, len(nodes)+1)
					for x := range nodes {
						newNodes[x] = true
					}
					newNodes[w] = true
				}
				rec(append(append([]graph.EdgeID(nil), edgeIDs...), id), newNodes)
			}
		}
	}

	eids := g.IncidentEdges(root)
	adj := g.Neighbors(root)
	for i, id := range eids {
		// Both incidences of an edge touch the root's list at most once
		// per id; duplicates across the two directions cannot occur
		// because each id appears once per endpoint.
		rec([]graph.EdgeID{id}, map[graph.NodeID]bool{root: true, adj[i]: true})
	}
	return counts
}

func edgeSetKey(ids []graph.EdgeID) string {
	sorted := append([]graph.EdgeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for _, id := range sorted {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// CanonicalCounts re-keys a census by the canonical rendering of each
// encoding, for comparison against ReferenceCensus.
func CanonicalCounts(e *Extractor, c *Census) (map[string]int64, error) {
	out := make(map[string]int64, len(c.Counts))
	for key, n := range c.Counts {
		s, ok := e.Decode(key)
		if !ok {
			return nil, fmt.Errorf("typed: census key %x has no decoded representative", key)
		}
		var sb strings.Builder
		for i, v := range s.Values {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		out[sb.String()] += n
	}
	return out, nil
}
