// Package typed implements the two extensions the paper names as future
// work (§5): directed subgraph features and edge-heterogeneous
// (multiplex) subgraph features. Both are instances of one
// generalisation — *typed incidences*: every edge endpoint carries an
// incidence type, which is the edge label for undirected multiplex
// networks, the direction (out/in) for directed networks, or the
// (edge label, direction) pair for both at once. The characteristic
// sequence then counts, per subgraph node, its neighbours by
// (neighbour label, incidence type), and the census machinery carries
// over unchanged.
//
// With a single edge label and undirected edges the encoding and census
// coincide exactly with package core's; the test suite verifies this
// equivalence, which anchors the extension to the validated baseline.
package typed

import (
	"fmt"
	"sort"

	"hsgf/internal/graph"
)

// EdgeLabel identifies an edge type within one Graph's edge alphabet.
type EdgeLabel int32

// Graph is an immutable heterogeneous network with labelled nodes,
// labelled edges, and optionally directed edges. Incidences are stored
// CSR-style like graph.Graph, each annotated with an incidence code.
type Graph struct {
	directed bool

	labels []graph.Label

	offsets []int32
	adj     []graph.NodeID
	adjEdge []graph.EdgeID
	adjInc  []int32 // incidence code per entry

	ends       []graph.NodeID // 2 per edge: source, target (directed) or smaller, larger
	edgeLabels []EdgeLabel

	nodeAlpha *graph.Alphabet
	edgeAlpha *graph.Alphabet
	numEdges  int
}

// Directed reports whether edges carry direction.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of edges (arcs when directed).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumLabels returns the node-label alphabet size.
func (g *Graph) NumLabels() int { return g.nodeAlpha.Len() }

// NumEdgeLabels returns the edge-label alphabet size.
func (g *Graph) NumEdgeLabels() int { return g.edgeAlpha.Len() }

// NodeAlphabet returns the node-label alphabet.
func (g *Graph) NodeAlphabet() *graph.Alphabet { return g.nodeAlpha }

// EdgeAlphabet returns the edge-label alphabet.
func (g *Graph) EdgeAlphabet() *graph.Alphabet { return g.edgeAlpha }

// Label returns the label of node v.
func (g *Graph) Label(v graph.NodeID) graph.Label { return g.labels[v] }

// Degree returns the number of incidences at v (in-degree plus
// out-degree when directed).
func (g *Graph) Degree(v graph.NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// NumIncidenceTypes returns the number of distinct incidence codes:
// the edge-label count, doubled when directed.
func (g *Graph) NumIncidenceTypes() int {
	if g.directed {
		return 2 * g.edgeAlpha.Len()
	}
	return g.edgeAlpha.Len()
}

// Incidence codes pack (edge label, direction): label*2+0 for outgoing,
// label*2+1 for incoming. Undirected graphs use the edge label directly.

// incidenceCode returns the code seen from the endpoint that owns the
// adjacency entry.
func (g *Graph) incidenceCode(edgeLabel EdgeLabel, outgoing bool) int32 {
	if !g.directed {
		return int32(edgeLabel)
	}
	c := int32(edgeLabel) * 2
	if !outgoing {
		c++
	}
	return c
}

// reverseCode maps an incidence code to the code seen from the other
// endpoint.
func (g *Graph) reverseCode(c int32) int32 {
	if !g.directed {
		return c
	}
	return c ^ 1
}

// IncidenceName renders an incidence code for interpretation, e.g.
// "cites>" (outgoing) / "cites<" (incoming) / "cites" (undirected).
func (g *Graph) IncidenceName(c int32) string {
	if !g.directed {
		return g.edgeAlpha.Name(graph.Label(c))
	}
	name := g.edgeAlpha.Name(graph.Label(c / 2))
	if c%2 == 0 {
		return name + ">"
	}
	return name + "<"
}

// Neighbors returns v's adjacency (both directions when directed),
// sorted by (neighbour label, incidence code, neighbour id). The slice
// aliases graph storage.
func (g *Graph) Neighbors(v graph.NodeID) []graph.NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdges returns the edge ids aligned with Neighbors(v).
func (g *Graph) IncidentEdges(v graph.NodeID) []graph.EdgeID {
	return g.adjEdge[g.offsets[v]:g.offsets[v+1]]
}

// IncidenceCodes returns the incidence codes aligned with Neighbors(v).
func (g *Graph) IncidenceCodes(v graph.NodeID) []int32 {
	return g.adjInc[g.offsets[v]:g.offsets[v+1]]
}

// EdgeEndpoints returns the endpoints of edge e: (source, target) when
// directed, (smaller, larger) otherwise.
func (g *Graph) EdgeEndpoints(e graph.EdgeID) (graph.NodeID, graph.NodeID) {
	return g.ends[2*e], g.ends[2*e+1]
}

// EdgeLabelOf returns the label of edge e.
func (g *Graph) EdgeLabelOf(e graph.EdgeID) EdgeLabel { return g.edgeLabels[e] }

// Builder accumulates a typed graph. Not safe for concurrent use.
type Builder struct {
	directed  bool
	nodeAlpha *graph.Alphabet
	edgeAlpha *graph.Alphabet
	fixed     bool

	labels []graph.Label
	edges  []typedEdge
	built  bool
}

type typedEdge struct {
	u, v  graph.NodeID
	label EdgeLabel
}

// NewBuilder returns a builder that discovers node and edge alphabets
// from the names passed in. directed selects arc semantics for AddEdge.
func NewBuilder(directed bool) *Builder {
	na, _ := graph.NewAlphabet()
	ea, _ := graph.NewAlphabet()
	return &Builder{directed: directed, nodeAlpha: na, edgeAlpha: ea}
}

// DeclareNodeLabels registers node label names up front, fixing their
// slot order independently of first use. Useful when encodings from
// different graphs must be comparable.
func (b *Builder) DeclareNodeLabels(names ...string) error {
	for _, n := range names {
		if _, ok := b.nodeAlpha.Lookup(n); !ok {
			if _, err := addToAlphabet(b.nodeAlpha, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeclareEdgeLabels registers edge label names up front, fixing their
// incidence-code order independently of first use.
func (b *Builder) DeclareEdgeLabels(names ...string) error {
	for _, n := range names {
		if _, ok := b.edgeAlpha.Lookup(n); !ok {
			if _, err := addToAlphabet(b.edgeAlpha, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddNode adds a node with the given label name.
func (b *Builder) AddNode(labelName string) (graph.NodeID, error) {
	l, ok := b.nodeAlpha.Lookup(labelName)
	if !ok {
		var err error
		l, err = addToAlphabet(b.nodeAlpha, labelName)
		if err != nil {
			return 0, err
		}
	}
	id := graph.NodeID(len(b.labels))
	b.labels = append(b.labels, l)
	return id, nil
}

// AddEdge adds an edge from u to v with the given edge-label name. For
// directed builders the edge is the arc u -> v; for undirected builders
// endpoint order is irrelevant. Self loops are rejected; duplicate
// (endpoints, label, direction) edges are deduplicated at Build time, so
// multiplex graphs may carry parallel edges of distinct labels.
func (b *Builder) AddEdge(u, v graph.NodeID, edgeLabelName string) error {
	if u == v {
		return fmt.Errorf("typed: self loop at node %d", u)
	}
	n := graph.NodeID(len(b.labels))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("typed: edge %d-%d references unknown node", u, v)
	}
	l, ok := b.edgeAlpha.Lookup(edgeLabelName)
	if !ok {
		var err error
		l, err = addToAlphabet(b.edgeAlpha, edgeLabelName)
		if err != nil {
			return err
		}
	}
	if !b.directed && u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, typedEdge{u: u, v: v, label: EdgeLabel(l)})
	return nil
}

// addToAlphabet grows an alphabet through its exported surface.
func addToAlphabet(a *graph.Alphabet, name string) (graph.Label, error) {
	if name == "" {
		return 0, fmt.Errorf("typed: empty label name")
	}
	// graph.Alphabet has no exported add; rebuild via names. Alphabets
	// stay small, so the quadratic growth cost is irrelevant.
	names := append(a.Names(), name)
	na, err := graph.NewAlphabet(names...)
	if err != nil {
		return 0, err
	}
	*a = *na
	l, _ := a.Lookup(name)
	return l, nil
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, fmt.Errorf("typed: Build called twice")
	}
	b.built = true

	sort.Slice(b.edges, func(i, j int) bool {
		a, c := b.edges[i], b.edges[j]
		if a.u != c.u {
			return a.u < c.u
		}
		if a.v != c.v {
			return a.v < c.v
		}
		return a.label < c.label
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}

	n := len(b.labels)
	deg := make([]int32, n)
	for _, e := range dedup {
		deg[e.u]++
		deg[e.v]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	g := &Graph{
		directed:   b.directed,
		labels:     b.labels,
		offsets:    offsets,
		adj:        make([]graph.NodeID, offsets[n]),
		adjEdge:    make([]graph.EdgeID, offsets[n]),
		adjInc:     make([]int32, offsets[n]),
		ends:       make([]graph.NodeID, 2*len(dedup)),
		edgeLabels: make([]EdgeLabel, len(dedup)),
		nodeAlpha:  b.nodeAlpha,
		edgeAlpha:  b.edgeAlpha,
		numEdges:   len(dedup),
	}
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i, e := range dedup {
		id := graph.EdgeID(i)
		g.ends[2*i] = e.u
		g.ends[2*i+1] = e.v
		g.edgeLabels[i] = e.label
		g.adj[cursor[e.u]] = e.v
		g.adjEdge[cursor[e.u]] = id
		g.adjInc[cursor[e.u]] = g.incidenceCode(e.label, true)
		cursor[e.u]++
		g.adj[cursor[e.v]] = e.u
		g.adjEdge[cursor[e.v]] = id
		g.adjInc[cursor[e.v]] = g.incidenceCode(e.label, false)
		cursor[e.v]++
	}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		sort.Sort(&typedAdjSorter{g: g, lo: int(lo), hi: int(hi)})
	}
	return g, nil
}

// typedAdjSorter sorts one adjacency segment by (neighbour label,
// incidence code, neighbour id), keeping edge ids and codes aligned.
type typedAdjSorter struct {
	g      *Graph
	lo, hi int
}

func (s *typedAdjSorter) Len() int { return s.hi - s.lo }
func (s *typedAdjSorter) Less(i, j int) bool {
	g := s.g
	a, b := s.lo+i, s.lo+j
	la, lb := g.labels[g.adj[a]], g.labels[g.adj[b]]
	if la != lb {
		return la < lb
	}
	if g.adjInc[a] != g.adjInc[b] {
		return g.adjInc[a] < g.adjInc[b]
	}
	return g.adj[a] < g.adj[b]
}
func (s *typedAdjSorter) Swap(i, j int) {
	g := s.g
	a, b := s.lo+i, s.lo+j
	g.adj[a], g.adj[b] = g.adj[b], g.adj[a]
	g.adjEdge[a], g.adjEdge[b] = g.adjEdge[b], g.adjEdge[a]
	g.adjInc[a], g.adjInc[b] = g.adjInc[b], g.adjInc[a]
}

// FromUndirected converts a plain node-labelled graph into a typed graph
// with a single undirected edge label. Censuses over the result coincide
// with package core's censuses over the original.
func FromUndirected(src *graph.Graph, edgeLabelName string) (*Graph, error) {
	b := NewBuilder(false)
	// Preserve the source alphabet's slot order so encodings align.
	if err := b.DeclareNodeLabels(src.Alphabet().Names()...); err != nil {
		return nil, err
	}
	for v := 0; v < src.NumNodes(); v++ {
		name := src.Alphabet().Name(src.Label(graph.NodeID(v)))
		if _, err := b.AddNode(name); err != nil {
			return nil, err
		}
	}
	var err error
	src.Edges(func(u, v graph.NodeID) bool {
		err = b.AddEdge(u, v, edgeLabelName)
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build()
}
