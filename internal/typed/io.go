package typed

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hsgf/internal/graph"
)

// The typed TSV exchange format extends the plain format of
// hsgf/internal/graph with a header record and edge labels:
//
//	# comment
//	t	directed|undirected
//	n	<node-label>
//	e	<u>	<v>	<edge-label>
//
// Node IDs are assigned in order of appearance of "n" lines. For
// directed graphs, edge lines are arcs u -> v.

// WriteTSV serialises g in the typed TSV exchange format.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	mode := "undirected"
	if g.Directed() {
		mode = "directed"
	}
	fmt.Fprintf(bw, "# hsgf typed graph: %d nodes, %d edges, %d node labels, %d edge labels\n",
		g.NumNodes(), g.NumEdges(), g.NumLabels(), g.NumEdgeLabels())
	fmt.Fprintf(bw, "t\t%s\n", mode)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "n\t%s\n", g.NodeAlphabet().Name(g.Label(v)))
	}
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(e)
		fmt.Fprintf(bw, "e\t%d\t%d\t%s\n", u, v, g.EdgeAlphabet().Name(graph.Label(g.EdgeLabelOf(e))))
	}
	return bw.Flush()
}

// ReadTSV parses a typed graph in the typed TSV exchange format.
func ReadTSV(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "t":
			if b != nil {
				return nil, fmt.Errorf("typed: line %d: duplicate type record", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("typed: line %d: malformed type record", lineNo)
			}
			switch fields[1] {
			case "directed":
				b = NewBuilder(true)
			case "undirected":
				b = NewBuilder(false)
			default:
				return nil, fmt.Errorf("typed: line %d: unknown mode %q", lineNo, fields[1])
			}
		case "n":
			if b == nil {
				return nil, fmt.Errorf("typed: line %d: node before type record", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("typed: line %d: malformed node line", lineNo)
			}
			if _, err := b.AddNode(fields[1]); err != nil {
				return nil, fmt.Errorf("typed: line %d: %w", lineNo, err)
			}
		case "e":
			if b == nil {
				return nil, fmt.Errorf("typed: line %d: edge before type record", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("typed: line %d: malformed edge line", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("typed: line %d: bad node id %q", lineNo, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("typed: line %d: bad node id %q", lineNo, fields[2])
			}
			if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), fields[3]); err != nil {
				return nil, fmt.Errorf("typed: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("typed: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("typed: missing type record")
	}
	return b.Build()
}
