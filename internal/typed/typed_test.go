package typed

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hsgf/internal/core"
	"hsgf/internal/graph"
)

// randomTyped builds a random typed graph.
func randomTyped(rng *rand.Rand, n, nodeLabels, edgeLabels int, directed bool, p float64) *Graph {
	b := NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('a' + rng.Intn(nodeLabels))))
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (!directed && u > v) {
				continue
			}
			if rng.Float64() < p {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), string(rune('x'+rng.Intn(edgeLabels))))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestBuilderBasicsDirected(t *testing.T) {
	b := NewBuilder(true)
	u, _ := b.AddNode("paper")
	v, _ := b.AddNode("paper")
	if err := b.AddEdge(u, v, "cites"); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumEdges() != 1 || g.NumIncidenceTypes() != 2 {
		t.Fatalf("unexpected graph: directed=%v edges=%d inc=%d", g.Directed(), g.NumEdges(), g.NumIncidenceTypes())
	}
	// u sees an outgoing incidence, v an incoming one.
	if got := g.IncidenceCodes(u)[0]; got != 0 {
		t.Errorf("u incidence = %d, want 0 (cites>)", got)
	}
	if got := g.IncidenceCodes(v)[0]; got != 1 {
		t.Errorf("v incidence = %d, want 1 (cites<)", got)
	}
	if g.IncidenceName(0) != "cites>" || g.IncidenceName(1) != "cites<" {
		t.Errorf("incidence names %q %q", g.IncidenceName(0), g.IncidenceName(1))
	}
	a, bb := g.EdgeEndpoints(0)
	if a != u || bb != v {
		t.Errorf("endpoints (%d,%d), want (%d,%d)", a, bb, u, v)
	}
}

func TestBuilderMultiplexParallelEdges(t *testing.T) {
	// Two edges of different labels between the same endpoints coexist;
	// duplicates of the same label collapse.
	b := NewBuilder(false)
	u, _ := b.AddNode("person")
	v, _ := b.AddNode("person")
	b.AddEdge(u, v, "friend")
	b.AddEdge(v, u, "friend") // duplicate (undirected)
	b.AddEdge(u, v, "colleague")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (friend + colleague)", g.NumEdges())
	}
	if g.NumEdgeLabels() != 2 || g.NumIncidenceTypes() != 2 {
		t.Fatalf("edge labels = %d, incidences = %d", g.NumEdgeLabels(), g.NumIncidenceTypes())
	}
}

func TestBuilderDirectedAntiparallel(t *testing.T) {
	// u->v and v->u are distinct arcs.
	b := NewBuilder(true)
	u, _ := b.AddNode("a")
	v, _ := b.AddNode("a")
	b.AddEdge(u, v, "e")
	b.AddEdge(v, u, "e")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 antiparallel arcs", g.NumEdges())
	}
	if g.Degree(u) != 2 || g.Degree(v) != 2 {
		t.Errorf("degrees = %d,%d, want 2,2", g.Degree(u), g.Degree(v))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(false)
	u, _ := b.AddNode("a")
	if err := b.AddEdge(u, u, "e"); err == nil {
		t.Error("self loop must fail")
	}
	if err := b.AddEdge(u, u+5, "e"); err == nil {
		t.Error("unknown endpoint must fail")
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("double Build must fail")
	}
}

func TestAdjacencySortedByLabelAndIncidence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := randomTyped(rng, 15, 3, 2, trial%2 == 0, 0.3)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			adj := g.Neighbors(v)
			incs := g.IncidenceCodes(v)
			for i := 1; i < len(adj); i++ {
				lp, lc := g.Label(adj[i-1]), g.Label(adj[i])
				if lp > lc {
					t.Fatalf("adjacency not label-sorted at node %d", v)
				}
				if lp == lc && incs[i-1] > incs[i] {
					t.Fatalf("adjacency not incidence-sorted at node %d", v)
				}
			}
		}
	}
}

func TestDirectedEncodingDistinguishesDirection(t *testing.T) {
	// a -> b versus b -> a over the same node labels must differ.
	build := func(forward bool) *Graph {
		b := NewBuilder(true)
		u, _ := b.AddNode("a")
		v, _ := b.AddNode("b")
		if forward {
			b.AddEdge(u, v, "e")
		} else {
			b.AddEdge(v, u, "e")
		}
		g, _ := b.Build()
		return g
	}
	cenOf := func(g *Graph) map[string]int64 {
		e, err := NewExtractor(g, Options{MaxEdges: 1})
		if err != nil {
			t.Fatal(err)
		}
		m, err := CanonicalCounts(e, e.Census(0))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fwd := cenOf(build(true))
	bwd := cenOf(build(false))
	if reflect.DeepEqual(fwd, bwd) {
		t.Fatalf("directed encodings identical for opposite arcs: %v", fwd)
	}
}

func TestMultiplexEncodingDistinguishesEdgeLabels(t *testing.T) {
	build := func(label string) *Graph {
		b := NewBuilder(false)
		// Fix the incidence-code order so encodings of the two graphs
		// are comparable.
		if err := b.DeclareEdgeLabels("friend", "colleague"); err != nil {
			t.Fatal(err)
		}
		u, _ := b.AddNode("a")
		v, _ := b.AddNode("a")
		b.AddEdge(u, v, label)
		g, _ := b.Build()
		return g
	}
	cenOf := func(g *Graph) map[string]int64 {
		e, err := NewExtractor(g, Options{MaxEdges: 1})
		if err != nil {
			t.Fatal(err)
		}
		m, err := CanonicalCounts(e, e.Census(0))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if reflect.DeepEqual(cenOf(build("friend")), cenOf(build("colleague"))) {
		t.Fatal("multiplex encodings identical for different edge labels")
	}
}

func TestTypedCensusMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		directed := trial%2 == 0
		g := randomTyped(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2), directed, 0.15+rng.Float64()*0.35)
		if g.NumNodes() == 0 {
			continue
		}
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		opts := Options{
			MaxEdges:      1 + rng.Intn(3),
			MaskRootLabel: rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			opts.MaxDegree = 1 + rng.Intn(5)
		}
		e, err := NewExtractor(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CanonicalCounts(e, e.Census(root))
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceCensus(g, root, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (directed=%v root=%d opts=%+v):\n got  %v\n want %v",
				trial, directed, root, opts, got, want)
		}
	}
}

func TestTypedLeafBatchingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		g := randomTyped(rng, 5+rng.Intn(8), 2, 2, trial%2 == 0, 0.3)
		root := graph.NodeID(rng.Intn(g.NumNodes()))
		on := Options{MaxEdges: 1 + rng.Intn(3)}
		off := on
		off.DisableLeafBatching = true
		eOn, _ := NewExtractor(g, on)
		eOff, _ := NewExtractor(g, off)
		a, err := CanonicalCounts(eOn, eOn.Census(root))
		if err != nil {
			t.Fatal(err)
		}
		b, err := CanonicalCounts(eOff, eOff.Census(root))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: leaf batching changes typed census", trial)
		}
	}
}

func TestTypedReducesToCore(t *testing.T) {
	// With one undirected edge label the typed census must numerically
	// agree with package core's census on the same underlying graph.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		// Build a plain labelled graph.
		names := []string{"a", "b", "c"}[:1+rng.Intn(3)]
		gb := graph.NewBuilderWithAlphabet(graph.MustAlphabet(names...))
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			gb.AddNode(names[rng.Intn(len(names))])
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					gb.AddEdge(graph.NodeID(u), graph.NodeID(v))
				}
			}
		}
		plain := gb.MustBuild()
		tg, err := FromUndirected(plain, "edge")
		if err != nil {
			t.Fatal(err)
		}

		root := graph.NodeID(rng.Intn(n))
		mask := rng.Intn(2) == 0
		emax := 1 + rng.Intn(3)

		ce, err := core.NewExtractor(plain, core.Options{MaxEdges: emax, MaskRootLabel: mask})
		if err != nil {
			t.Fatal(err)
		}
		coreCounts, err := core.CanonicalCounts(ce, ce.Census(root))
		if err != nil {
			t.Fatal(err)
		}

		te, err := NewExtractor(tg, Options{MaxEdges: emax, MaskRootLabel: mask})
		if err != nil {
			t.Fatal(err)
		}
		typedCounts, err := CanonicalCounts(te, te.Census(root))
		if err != nil {
			t.Fatal(err)
		}

		// Typed sequences have stride 1+k (m=1), exactly like core's; the
		// canonical renderings coincide.
		if !reflect.DeepEqual(coreCounts, typedCounts) {
			t.Fatalf("trial %d (root=%d emax=%d mask=%v):\n core  %v\n typed %v",
				trial, root, emax, mask, coreCounts, typedCounts)
		}
	}
}

func TestTypedIncrementalHashMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		g := randomTyped(rng, 6+rng.Intn(6), 2, 2, trial%2 == 0, 0.3)
		e, err := NewExtractor(g, Options{MaxEdges: 3, MaskRootLabel: trial%3 == 0})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			c := e.Census(graph.NodeID(v))
			for key := range c.Counts {
				s, ok := e.Decode(key)
				if !ok {
					t.Fatal("missing representative")
				}
				if got := e.pows.hashSequence(s); got != key {
					t.Fatalf("incremental %x != from-scratch %x", key, got)
				}
			}
		}
	}
}

func TestTypedCensusAllParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := randomTyped(rng, 30, 3, 2, true, 0.15)
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	e, _ := NewExtractor(g, Options{MaxEdges: 3})
	serial := e.CensusAll(roots, 1)
	parallel := e.CensusAll(roots, 4)
	for i := range roots {
		if !reflect.DeepEqual(serial[i].Counts, parallel[i].Counts) {
			t.Fatalf("root %d: parallel typed census differs", roots[i])
		}
	}
}

func TestSequenceString(t *testing.T) {
	b := NewBuilder(true)
	p1, _ := b.AddNode("p")
	p2, _ := b.AddNode("p")
	b.AddEdge(p1, p2, "cites")
	g, _ := b.Build()
	e, _ := NewExtractor(g, Options{MaxEdges: 1})
	c := e.Census(p1)
	if len(c.Counts) != 1 {
		t.Fatalf("counts = %v", c.Counts)
	}
	for key := range c.Counts {
		s := e.EncodingString(key)
		if !strings.Contains(s, "cites>") || !strings.Contains(s, "cites<") {
			t.Errorf("encoding %q should name both incidence directions", s)
		}
	}
}

func TestExtractorValidation(t *testing.T) {
	g := randomTyped(rand.New(rand.NewSource(1)), 5, 2, 1, false, 0.5)
	if _, err := NewExtractor(g, Options{MaxEdges: 0}); err == nil {
		t.Error("MaxEdges 0 must be rejected")
	}
}

func TestFromUndirectedPreservesStructure(t *testing.T) {
	gb := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x", "y"))
	a, _ := gb.AddNode("x")
	bb, _ := gb.AddNode("y")
	c, _ := gb.AddNode("x")
	gb.AddEdge(a, bb)
	gb.AddEdge(bb, c)
	plain := gb.MustBuild()
	tg, err := FromUndirected(plain, "rel")
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumNodes() != 3 || tg.NumEdges() != 2 || tg.Directed() {
		t.Fatalf("conversion mismatch: %d nodes %d edges directed=%v",
			tg.NumNodes(), tg.NumEdges(), tg.Directed())
	}
	if tg.NumIncidenceTypes() != 1 {
		t.Errorf("incidence types = %d, want 1", tg.NumIncidenceTypes())
	}
}

func ExampleExtractor_Census() {
	// A two-hop citation chain: p1 -> p2 -> p3. Directed features let
	// the census distinguish citing from being cited.
	b := NewBuilder(true)
	p1, _ := b.AddNode("p")
	p2, _ := b.AddNode("p")
	p3, _ := b.AddNode("p")
	b.AddEdge(p1, p2, "cites")
	b.AddEdge(p2, p3, "cites")
	g, _ := b.Build()

	e, _ := NewExtractor(g, Options{MaxEdges: 2})
	c := e.Census(p2)
	fmt.Println("subgraphs:", c.Subgraphs)
	// The two single-arc subgraphs are isomorphic ("p cites p"), since
	// encodings do not mark the root; the chain is the third subgraph.
	fmt.Println("distinct:", len(c.Counts))
	// Output:
	// subgraphs: 3
	// distinct: 2
}

func TestTypedMaxSubgraphsPerRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randomTyped(rng, 60, 2, 2, true, 0.2)
	full, _ := NewExtractor(g, Options{MaxEdges: 3})
	var root graph.NodeID = -1
	for v := 0; v < g.NumNodes(); v++ {
		if full.Census(graph.NodeID(v)).Subgraphs > 500 {
			root = graph.NodeID(v)
			break
		}
	}
	if root < 0 {
		t.Skip("no busy root in this graph")
	}
	capped, _ := NewExtractor(g, Options{MaxEdges: 3, MaxSubgraphsPerRoot: 200})
	c := capped.Census(root)
	if !c.Truncated {
		t.Fatal("census not truncated")
	}
	if c.Subgraphs < 200 || c.Subgraphs > 200+int64(g.NumNodes()) {
		t.Fatalf("truncated at %d, want ≈ 200", c.Subgraphs)
	}
	// State stays clean for the next (small) root.
	small := graph.NodeID(-1)
	for v := 0; v < g.NumNodes(); v++ {
		if full.Census(graph.NodeID(v)).Subgraphs < 200 {
			small = graph.NodeID(v)
			break
		}
	}
	if small < 0 {
		t.Skip("no small root")
	}
	got, err := CanonicalCounts(capped, capped.Census(small))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewExtractor(g, Options{MaxEdges: 3})
	want, err := CanonicalCounts(fresh, fresh.Census(small))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("truncation leaked state into the next census")
	}
}
