package typed

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"hsgf/internal/graph"
)

// The typed encoding generalises the characteristic sequence: a subgraph
// node's row is (node label, t[0], ..., t[k*m-1]) where slot l*m+c counts
// subgraph neighbours with node-label slot l reached over incidence code
// c. Rows are sorted in descending lexicographic order. With m = 1 this
// is exactly the paper's encoding.

// Sequence is the canonical typed characteristic sequence.
type Sequence struct {
	K      int     // node label slots
	M      int     // incidence types
	Values []int32 // len = NumNodes * (1 + K*M)
}

// NumNodes returns the number of encoded nodes.
func (s Sequence) NumNodes() int {
	stride := 1 + s.K*s.M
	if stride == 1 {
		return 0
	}
	return len(s.Values) / stride
}

// Equal reports whether two sequences encode the same subgraph type.
func (s Sequence) Equal(o Sequence) bool {
	if s.K != o.K || s.M != o.M || len(s.Values) != len(o.Values) {
		return false
	}
	for i, v := range s.Values {
		if v != o.Values[i] {
			return false
		}
	}
	return true
}

func (s *Sequence) normalize() {
	stride := 1 + s.K*s.M
	n := s.NumNodes()
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i] = s.Values[i*stride : (i+1)*stride]
	}
	sort.Slice(rows, func(a, b int) bool {
		for x := range rows[a] {
			if rows[a][x] != rows[b][x] {
				return rows[a][x] > rows[b][x]
			}
		}
		return false
	})
	out := make([]int32, 0, len(s.Values))
	for _, r := range rows {
		out = append(out, r...)
	}
	s.Values = out
}

// String renders the sequence with named labels and incidences, e.g.
// "paper|author/cites<:2".
func (s Sequence) String(nodeName func(int) string, incName func(int) string) string {
	stride := 1 + s.K*s.M
	var b strings.Builder
	for n := 0; n < s.NumNodes(); n++ {
		if n > 0 {
			b.WriteByte(';')
		}
		row := s.Values[n*stride : (n+1)*stride]
		b.WriteString(nodeName(int(row[0])))
		b.WriteByte('|')
		first := true
		for i, t := range row[1:] {
			if t == 0 {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			l := i / s.M
			c := i % s.M
			fmt.Fprintf(&b, "%s/%s:%d", nodeName(l), incName(c), t)
		}
	}
	return b.String()
}

// Options configures typed subgraph extraction; the fields mirror
// core.Options.
type Options struct {
	MaxEdges            int
	MaxDegree           int // total (in+out) degree cutoff; <= 0 unlimited
	MaskRootLabel       bool
	DisableLeafBatching bool
	// MaxSubgraphsPerRoot, when positive, truncates a root's census once
	// that many occurrences were counted (mirrors core.Options).
	MaxSubgraphsPerRoot int64
}

// Census is the typed per-root subgraph count table.
type Census struct {
	Root      graph.NodeID
	Counts    map[uint64]int64
	Subgraphs int64
	// Truncated reports that enumeration hit MaxSubgraphsPerRoot and
	// Counts is a prefix census.
	Truncated bool
}

// Extractor computes typed subgraph features over one typed graph. Safe
// for concurrent use.
type Extractor struct {
	g    *Graph
	opts Options
	k    int // node label slots (+1 when masking)
	m    int // incidence types
	pows *powerTable

	repr map[uint64]Sequence
	mu   chan struct{} // 1-slot semaphore guarding repr
}

// NewExtractor validates opts and returns an extractor for g.
func NewExtractor(g *Graph, opts Options) (*Extractor, error) {
	if opts.MaxEdges < 1 {
		return nil, fmt.Errorf("typed: MaxEdges must be >= 1, got %d", opts.MaxEdges)
	}
	if g.NumNodes() > 0 && g.NumLabels() == 0 {
		return nil, fmt.Errorf("typed: graph has nodes but no node alphabet")
	}
	k := g.NumLabels()
	if opts.MaskRootLabel {
		k++
	}
	m := g.NumIncidenceTypes()
	if m == 0 {
		m = 1
	}
	return &Extractor{
		g:    g,
		opts: opts,
		k:    k,
		m:    m,
		pows: newPowerTable(k, m),
		repr: make(map[uint64]Sequence),
		mu:   make(chan struct{}, 1),
	}, nil
}

// LabelSlots returns the number of node-label slots in the encoding.
func (e *Extractor) LabelSlots() int { return e.k }

// IncidenceTypes returns the number of incidence types in the encoding.
func (e *Extractor) IncidenceTypes() int { return e.m }

// SlotName returns the display name of node-label slot l.
func (e *Extractor) SlotName(l int) string {
	if l == e.g.NumLabels() && e.opts.MaskRootLabel {
		return "*"
	}
	return e.g.NodeAlphabet().Name(graph.Label(l))
}

// Decode returns the canonical sequence behind a census key.
func (e *Extractor) Decode(key uint64) (Sequence, bool) {
	e.mu <- struct{}{}
	s, ok := e.repr[key]
	<-e.mu
	return s, ok
}

// EncodingString renders the sequence behind key for interpretation.
func (e *Extractor) EncodingString(key uint64) string {
	s, ok := e.Decode(key)
	if !ok {
		return fmt.Sprintf("?%x", key)
	}
	return s.String(e.SlotName, func(c int) string { return e.g.IncidenceName(int32(c)) })
}

// Census extracts the typed census for one root.
func (e *Extractor) Census(root graph.NodeID) *Census {
	w := newWorker(e)
	c := w.census(root)
	e.mergeRepr(w.repr)
	return c
}

// CensusAll extracts censuses for all roots with the given parallelism
// (<= 0 selects GOMAXPROCS).
func (e *Extractor) CensusAll(roots []graph.NodeID, workers int) []*Census {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	out := make([]*Census, len(roots))
	if len(roots) == 0 {
		return out
	}
	jobs := make(chan int)
	done := make(chan *worker, workers)
	for t := 0; t < workers; t++ {
		go func() {
			w := newWorker(e)
			for i := range jobs {
				out[i] = w.census(roots[i])
			}
			done <- w
		}()
	}
	for i := range roots {
		jobs <- i
	}
	close(jobs)
	for t := 0; t < workers; t++ {
		e.mergeRepr((<-done).repr)
	}
	return out
}

func (e *Extractor) mergeRepr(local map[uint64]Sequence) {
	e.mu <- struct{}{}
	for k, v := range local {
		if _, ok := e.repr[k]; !ok {
			e.repr[k] = v
		}
	}
	<-e.mu
}

// --- rolling hash ---------------------------------------------------

const typedHashSeed = 0x51ed2701fa3c9b15

type powerTable struct {
	k, m int
	pow  [][]uint64 // pow[l][i] = base_l^i, i in 0..k*m
	salt []uint64
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newPowerTable(k, m int) *powerTable {
	t := &powerTable{k: k, m: m, pow: make([][]uint64, k), salt: make([]uint64, k)}
	for l := 0; l < k; l++ {
		base := splitmix64(typedHashSeed+uint64(l)) | 1
		row := make([]uint64, k*m+1)
		row[0] = 1
		for i := 1; i <= k*m; i++ {
			row[i] = row[i-1] * base
		}
		t.pow[l] = row
		t.salt[l] = splitmix64(typedHashSeed ^ (0x77aa<<32 + uint64(l)))
	}
	return t
}

// term is the raw contribution of one (neighbour label, incidence) unit
// at a node with label slot nodeLabel.
func (t *powerTable) term(nodeLabel, neighborLabel, inc int32) uint64 {
	return t.pow[nodeLabel][1+int(neighborLabel)*t.m+int(inc)]
}

func (t *powerTable) mix(raw uint64, nodeLabel int32) uint64 {
	return splitmix64(raw ^ t.salt[nodeLabel])
}

// hashSequence recomputes the mixed hash of a canonical sequence; used
// by tests to validate incremental maintenance.
func (t *powerTable) hashSequence(s Sequence) uint64 {
	stride := 1 + s.K*s.M
	var h uint64
	for n := 0; n < s.NumNodes(); n++ {
		row := s.Values[n*stride : (n+1)*stride]
		var raw uint64
		for i, c := range row[1:] {
			if c != 0 {
				raw += uint64(c) * t.pow[row[0]][1+i]
			}
		}
		h += t.mix(raw, row[0])
	}
	return h
}

// --- census worker ---------------------------------------------------

const (
	stateInSubgraph uint8 = 1 << iota
	stateBanned
	stateListed
)

type cand struct {
	from, to graph.NodeID
	inc      int32 // incidence code from the 'from' side
	id       graph.EdgeID
}

type seg struct{ lo, hi int }

type worker struct {
	g    *Graph
	opts Options
	k, m int
	pows *powerTable

	maxEdges int
	dmax     int

	nodePos   []int32
	edgeState []uint8

	nodes   []graph.NodeID
	slabels []int32
	tv      []int32
	rv      []uint64
	hash    uint64
	edges   int

	ext      []cand
	segArena [][]seg

	counts    map[uint64]int64
	repr      map[uint64]Sequence
	emissions int64

	budget  int64
	aborted bool
}

// shouldAbort enforces the per-root budget.
func (w *worker) shouldAbort() bool {
	if w.aborted {
		return true
	}
	if w.budget > 0 && w.emissions >= w.budget {
		w.aborted = true
		return true
	}
	return false
}

func newWorker(e *Extractor) *worker {
	w := &worker{
		g: e.g, opts: e.opts, k: e.k, m: e.m, pows: e.pows,
		maxEdges: e.opts.MaxEdges, dmax: e.opts.MaxDegree,
		budget: e.opts.MaxSubgraphsPerRoot,
	}
	if w.dmax <= 0 {
		w.dmax = math.MaxInt
	}
	w.nodePos = make([]int32, e.g.NumNodes())
	for i := range w.nodePos {
		w.nodePos[i] = -1
	}
	w.edgeState = make([]uint8, e.g.NumEdges())
	maxNodes := w.maxEdges + 1
	w.nodes = make([]graph.NodeID, 0, maxNodes)
	w.slabels = make([]int32, 0, maxNodes)
	w.tv = make([]int32, 0, maxNodes*w.k*w.m)
	w.rv = make([]uint64, 0, maxNodes)
	w.repr = make(map[uint64]Sequence)
	w.segArena = make([][]seg, w.maxEdges+1)
	for d := range w.segArena {
		w.segArena[d] = make([]seg, 0, w.maxEdges+2)
	}
	return w
}

func (w *worker) stride() int { return w.k * w.m }

func (w *worker) census(root graph.NodeID) *Census {
	w.counts = make(map[uint64]int64)
	w.emissions = 0
	w.aborted = false

	slot := int32(w.g.Label(root))
	if w.opts.MaskRootLabel {
		slot = int32(w.k - 1)
	}
	w.nodePos[root] = 0
	w.nodes = append(w.nodes[:0], root)
	w.slabels = append(w.slabels[:0], slot)
	w.tv = w.tv[:0]
	w.tv = append(w.tv, make([]int32, w.stride())...)
	w.rv = append(w.rv[:0], 0)
	w.hash = w.pows.mix(0, slot)
	w.edges = 0

	w.ext = w.ext[:0]
	adj := w.g.Neighbors(root)
	eids := w.g.IncidentEdges(root)
	incs := w.g.IncidenceCodes(root)
	for i, to := range adj {
		w.edgeState[eids[i]] |= stateListed
		w.ext = append(w.ext, cand{from: root, to: to, inc: incs[i], id: eids[i]})
	}
	rootSegs := w.segArena[0][:0]
	if len(w.ext) > 0 {
		rootSegs = append(rootSegs, seg{0, len(w.ext)})
	}
	w.grow(rootSegs)

	if w.aborted {
		// Rebuild persistent state wholesale after an early unwind.
		for i := range w.edgeState {
			w.edgeState[i] = 0
		}
		for _, v := range w.nodes {
			w.nodePos[v] = -1
		}
		w.nodes = w.nodes[:0]
		w.slabels = w.slabels[:0]
		w.tv = w.tv[:0]
		w.rv = w.rv[:0]
	} else {
		for _, c := range w.ext {
			w.edgeState[c.id] &^= stateListed
		}
	}
	w.nodePos[root] = -1
	w.ext = w.ext[:0]
	return &Census{Root: root, Counts: w.counts, Subgraphs: w.emissions, Truncated: w.aborted}
}

func (w *worker) grow(segs []seg) {
	for si := 0; si < len(segs); si++ {
		lo, hi := segs[si].lo, segs[si].hi
		for p := lo; p < hi; p++ {
			if w.shouldAbort() {
				return
			}
			c := w.ext[p]

			if w.edges+1 == w.maxEdges && !w.opts.DisableLeafBatching {
				if j := w.leafRun(p, hi); j > p {
					pa := w.nodePos[c.from]
					la, lb := w.slabels[pa], int32(w.g.Label(c.to))
					h := w.hash -
						w.pows.mix(w.rv[pa], la) +
						w.pows.mix(w.rv[pa]+w.pows.term(la, lb, c.inc), la) +
						w.pows.mix(w.pows.term(lb, la, w.g.reverseCode(c.inc)), lb)
					n := int64(j - p)
					if _, ok := w.repr[h]; !ok {
						w.addEdge(c)
						w.repr[h] = w.sequence()
						w.removeEdge(c)
					}
					w.counts[h] += n
					w.emissions += n
					p = j - 1
					continue
				}
			}

			newNode := w.nodePos[c.to] < 0
			w.addEdge(c)
			w.count()

			if w.edges < w.maxEdges {
				extraStart := len(w.ext)
				if newNode && w.g.Degree(c.to) <= w.dmax {
					adj := w.g.Neighbors(c.to)
					eids := w.g.IncidentEdges(c.to)
					incs := w.g.IncidenceCodes(c.to)
					for ai, to2 := range adj {
						if w.edgeState[eids[ai]]&(stateInSubgraph|stateBanned|stateListed) != 0 {
							continue
						}
						w.edgeState[eids[ai]] |= stateListed
						w.ext = append(w.ext, cand{from: c.to, to: to2, inc: incs[ai], id: eids[ai]})
					}
				}
				child := w.segArena[w.edges][:0]
				if p+1 < hi {
					child = append(child, seg{p + 1, hi})
				}
				child = append(child, segs[si+1:]...)
				if extraStart < len(w.ext) {
					child = append(child, seg{extraStart, len(w.ext)})
				}
				w.grow(child)
				if w.aborted {
					return
				}
				for _, x := range w.ext[extraStart:] {
					w.edgeState[x.id] &^= stateListed
				}
				w.ext = w.ext[:extraStart]
			}

			w.removeEdge(c)
			w.edgeState[c.id] |= stateBanned
		}
	}
	for _, s := range segs {
		for p := s.lo; p < s.hi; p++ {
			w.edgeState[w.ext[p].id] &^= stateBanned
		}
	}
}

// leafRun extends the batched-leaf run: candidates must share the source
// node, the attached node's label AND the incidence code for their
// encodings to coincide.
func (w *worker) leafRun(p, hi int) int {
	c := w.ext[p]
	if w.nodePos[c.to] >= 0 {
		return p
	}
	lb := w.g.Label(c.to)
	j := p + 1
	for j < hi {
		n := w.ext[j]
		if n.from != c.from || n.inc != c.inc || w.nodePos[n.to] >= 0 || w.g.Label(n.to) != lb {
			break
		}
		j++
	}
	return j
}

func (w *worker) addEdge(c cand) {
	pa := w.nodePos[c.from]
	pb := w.nodePos[c.to]
	fresh := pb < 0
	if fresh {
		pb = int32(len(w.nodes))
		w.nodePos[c.to] = pb
		w.nodes = append(w.nodes, c.to)
		w.slabels = append(w.slabels, int32(w.g.Label(c.to)))
		w.tv = append(w.tv, make([]int32, w.stride())...)
		w.rv = append(w.rv, 0)
	}
	la, lb := w.slabels[pa], w.slabels[pb]
	rev := w.g.reverseCode(c.inc)
	w.tv[int(pa)*w.stride()+int(lb)*w.m+int(c.inc)]++
	w.tv[int(pb)*w.stride()+int(la)*w.m+int(rev)]++

	w.hash -= w.pows.mix(w.rv[pa], la)
	w.rv[pa] += w.pows.term(la, lb, c.inc)
	w.hash += w.pows.mix(w.rv[pa], la)
	if fresh {
		w.rv[pb] = w.pows.term(lb, la, rev)
		w.hash += w.pows.mix(w.rv[pb], lb)
	} else {
		w.hash -= w.pows.mix(w.rv[pb], lb)
		w.rv[pb] += w.pows.term(lb, la, rev)
		w.hash += w.pows.mix(w.rv[pb], lb)
	}
	w.edges++
	w.edgeState[c.id] |= stateInSubgraph
}

func (w *worker) removeEdge(c cand) {
	pa := w.nodePos[c.from]
	pb := w.nodePos[c.to]
	la, lb := w.slabels[pa], w.slabels[pb]
	rev := w.g.reverseCode(c.inc)
	w.tv[int(pa)*w.stride()+int(lb)*w.m+int(c.inc)]--
	w.tv[int(pb)*w.stride()+int(la)*w.m+int(rev)]--

	w.hash -= w.pows.mix(w.rv[pa], la)
	w.rv[pa] -= w.pows.term(la, lb, c.inc)
	w.hash += w.pows.mix(w.rv[pa], la)

	w.edges--
	w.edgeState[c.id] &^= stateInSubgraph

	dropped := false
	if int(pb) == len(w.nodes)-1 {
		row := w.tv[int(pb)*w.stride() : (int(pb)+1)*w.stride()]
		isolated := true
		for _, t := range row {
			if t != 0 {
				isolated = false
				break
			}
		}
		if isolated {
			w.hash -= w.pows.mix(w.rv[pb], lb)
			w.nodePos[c.to] = -1
			w.nodes = w.nodes[:pb]
			w.slabels = w.slabels[:pb]
			w.tv = w.tv[:int(pb)*w.stride()]
			w.rv = w.rv[:pb]
			dropped = true
		}
	}
	if !dropped {
		w.hash -= w.pows.mix(w.rv[pb], lb)
		w.rv[pb] -= w.pows.term(lb, la, rev)
		w.hash += w.pows.mix(w.rv[pb], lb)
	}
}

func (w *worker) count() {
	key := w.hash
	if _, ok := w.repr[key]; !ok {
		w.repr[key] = w.sequence()
	}
	w.counts[key]++
	w.emissions++
}

func (w *worker) sequence() Sequence {
	n := len(w.nodes)
	stride := w.stride()
	vals := make([]int32, 0, n*(1+stride))
	for i := 0; i < n; i++ {
		vals = append(vals, w.slabels[i])
		vals = append(vals, w.tv[i*stride:(i+1)*stride]...)
	}
	s := Sequence{K: w.k, M: w.m, Values: vals}
	s.normalize()
	return s
}
