package motif

import (
	"math"
	"math/rand"
	"testing"

	"hsgf/internal/graph"
)

func triangleWithTail(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for i := 0; i < 4; i++ {
		b.AddNode("x")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	return b.MustBuild()
}

func TestEnumerateSize2CountsEdges(t *testing.T) {
	g := triangleWithTail(t)
	c, err := Enumerate(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != int64(g.NumEdges()) {
		t.Errorf("size-2 census = %d, want %d (one per edge)", c.Total, g.NumEdges())
	}
	if len(c.Counts) != 1 {
		t.Errorf("distinct size-2 classes = %d, want 1 (single label)", len(c.Counts))
	}
}

func TestEnumerateSize3TriangleAndPaths(t *testing.T) {
	// Triangle 0-1-2 with tail 2-3: size-3 connected induced subgraphs:
	// {0,1,2} triangle, {0,2,3} path, {1,2,3} path => 1 triangle + 2 paths.
	g := triangleWithTail(t)
	c, err := Enumerate(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != 3 {
		t.Fatalf("size-3 census = %d, want 3", c.Total)
	}
	if len(c.Counts) != 2 {
		t.Fatalf("distinct classes = %d, want 2 (triangle, path)", len(c.Counts))
	}
	var counts []int64
	for _, n := range c.Counts {
		counts = append(counts, n)
	}
	if !(counts[0] == 1 && counts[1] == 2) && !(counts[0] == 2 && counts[1] == 1) {
		t.Errorf("class counts = %v, want {1, 2}", counts)
	}
}

// bruteForce enumerates size-k connected induced subgraphs by checking
// all node subsets.
func bruteForce(g *graph.Graph, k int) int64 {
	n := g.NumNodes()
	var count int64
	var rec func(start int, chosen []graph.NodeID)
	rec = func(start int, chosen []graph.NodeID) {
		if len(chosen) == k {
			if connectedInduced(g, chosen) {
				count++
			}
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(chosen, graph.NodeID(v)))
		}
	}
	rec(0, nil)
	return count
}

func connectedInduced(g *graph.Graph, nodes []graph.NodeID) bool {
	if len(nodes) == 0 {
		return false
	}
	visited := map[graph.NodeID]bool{nodes[0]: true}
	queue := []graph.NodeID{nodes[0]}
	inSet := map[graph.NodeID]bool{}
	for _, v := range nodes {
		inSet[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if inSet[u] && !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	return len(visited) == len(nodes)
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
		n := 5 + rng.Intn(6)
		for i := 0; i < n; i++ {
			b.AddLabeledNode(graph.Label(rng.Intn(2)))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					b.AddEdge(graph.NodeID(u), graph.NodeID(v))
				}
			}
		}
		g := b.MustBuild()
		for k := 2; k <= 4; k++ {
			c, err := Enumerate(g, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(g, k)
			if c.Total != want {
				t.Fatalf("trial %d k=%d: ESU %d != brute force %d", trial, k, c.Total, want)
			}
		}
	}
}

func TestEnumerateValidation(t *testing.T) {
	g := triangleWithTail(t)
	if _, err := Enumerate(g, 1); err == nil {
		t.Error("k=1 must be rejected")
	}
	if _, err := Enumerate(g, MaxSize+1); err == nil {
		t.Error("oversized k must be rejected")
	}
}

func TestRewirePreservesDegreesAndLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b", "c"))
	n := 40
	for i := 0; i < n; i++ {
		b.AddLabeledNode(graph.Label(rng.Intn(3)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g := b.MustBuild()
	rw, err := Rewire(g, 4*g.NumEdges(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if rw.NumEdges() != g.NumEdges() || rw.NumNodes() != g.NumNodes() {
		t.Fatalf("rewire changed sizes: %v vs %v", rw, g)
	}
	changed := false
	for v := 0; v < n; v++ {
		if rw.Degree(graph.NodeID(v)) != g.Degree(graph.NodeID(v)) {
			t.Fatalf("degree of %d changed: %d -> %d", v, g.Degree(graph.NodeID(v)), rw.Degree(graph.NodeID(v)))
		}
		if rw.Label(graph.NodeID(v)) != g.Label(graph.NodeID(v)) {
			t.Fatalf("label of %d changed", v)
		}
		if !changed {
			for i, u := range g.Neighbors(graph.NodeID(v)) {
				if rw.Neighbors(graph.NodeID(v))[i] != u {
					changed = true
					break
				}
			}
		}
	}
	if !changed {
		t.Error("rewiring left the network identical; swaps did not apply")
	}
	if err := rw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMotifsFindPlantedMotif(t *testing.T) {
	// A network of many triangles sharing no edges has far more
	// triangles than its degree-preserving null model: the triangle
	// class must get a clearly positive z-score.
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x"))
	for tIdx := 0; tIdx < 20; tIdx++ {
		a, _ := b.AddNode("x")
		bb, _ := b.AddNode("x")
		c, _ := b.AddNode("x")
		b.AddEdge(a, bb)
		b.AddEdge(bb, c)
		b.AddEdge(a, c)
	}
	// Sprinkle random edges to connect the components.
	n := 60
	for i := 0; i < 30; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	g := b.MustBuild()

	sig, err := Motifs(g, 3, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) == 0 {
		t.Fatal("no significance results")
	}
	// Find the triangle class: 3 nodes, 3 edges.
	foundTriangle := false
	for _, s := range sig {
		if s.Example.N == 3 && s.Example.NumEdges() == 3 {
			foundTriangle = true
			if !(s.Z > 1) && !math.IsInf(s.Z, 1) {
				t.Errorf("triangle z-score = %v, want clearly positive", s.Z)
			}
			if s.Real <= int64(s.RandMean) {
				t.Errorf("triangle count %d not above null mean %v", s.Real, s.RandMean)
			}
		}
	}
	if !foundTriangle {
		t.Fatal("triangle class missing from significance output")
	}
	// Sorted by |z| descending.
	for i := 1; i < len(sig); i++ {
		if math.Abs(sig[i-1].Z) < math.Abs(sig[i].Z) {
			t.Fatal("results not sorted by |z|")
		}
	}
}

func TestDescribe(t *testing.T) {
	g := triangleWithTail(t)
	c, err := Enumerate(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range c.Reps {
		d := Describe(rep, g.Alphabet())
		if d == "" || d == "(no edges)" {
			t.Errorf("bad description %q", d)
		}
	}
}
