// Package motif implements classical network-motif analysis — the
// approach the paper contrasts heterogeneous subgraph features against
// (§2, "Network Motifs"): Wernicke's ESU algorithm for the exhaustive
// enumeration of size-k connected node-induced subgraphs, a
// degree-preserving random rewiring null model, and motif significance
// z-scores (Milo et al.).
//
// The package exists for the comparison the paper draws: a *global*
// census enumerates every subgraph of the network once, which is
// prohibitively expensive beyond small sizes and answers a different
// question than the *rooted* census of package core, which counts
// subgraphs around selected nodes and is what the feature extraction
// needs. The cmd/motifbench tool and the benchmarks quantify the
// difference.
package motif

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hsgf/internal/graph"
	"hsgf/internal/iso"
)

// MaxSize is the largest supported motif size (limited by the exact
// canonicaliser's permutation search).
const MaxSize = 6

// Census enumerates every connected node-induced subgraph of g with
// exactly k nodes, exactly once, using the ESU algorithm, and tallies
// them by canonical labelled class. The returned map is keyed by the
// canonical certificate; Reps maps each class to one representative for
// rendering.
type Census struct {
	K      int
	Counts map[string]int64
	Reps   map[string]iso.Small
	Total  int64
}

// Enumerate runs the ESU census for subgraph size k (2 <= k <= MaxSize).
func Enumerate(g *graph.Graph, k int) (*Census, error) {
	if k < 2 || k > MaxSize {
		return nil, fmt.Errorf("motif: size %d outside [2, %d]", k, MaxSize)
	}
	c := &Census{K: k, Counts: make(map[string]int64), Reps: make(map[string]iso.Small)}

	n := g.NumNodes()
	inSub := make([]bool, n)
	inExt := make([]bool, n)
	sub := make([]graph.NodeID, 0, k)

	var extend func(ext []graph.NodeID, root graph.NodeID)
	extend = func(ext []graph.NodeID, root graph.NodeID) {
		if len(sub) == k {
			c.record(g, sub)
			return
		}
		// ESU: pop candidates one by one; each pop owns the extensions
		// reachable through it exclusively.
		for len(ext) > 0 {
			w := ext[len(ext)-1]
			ext = ext[:len(ext)-1]
			inExt[w] = false

			// New candidates: exclusive neighbours of w (not adjacent
			// to the current subgraph, id greater than the root).
			var added []graph.NodeID
			for _, u := range g.Neighbors(w) {
				if u <= root || inSub[u] || inExt[u] {
					continue
				}
				adjacentToSub := false
				for _, s := range sub {
					if g.HasEdge(u, s) {
						adjacentToSub = true
						break
					}
				}
				if adjacentToSub {
					continue
				}
				inExt[u] = true
				added = append(added, u)
			}
			sub = append(sub, w)
			inSub[w] = true
			child := make([]graph.NodeID, 0, len(ext)+len(added))
			child = append(child, ext...)
			child = append(child, added...)
			extend(child, root)
			inSub[w] = false
			sub = sub[:len(sub)-1]
			for _, u := range added {
				inExt[u] = false
			}
		}
	}

	for v := graph.NodeID(0); int(v) < n; v++ {
		var ext []graph.NodeID
		for _, u := range g.Neighbors(v) {
			if u > v {
				inExt[u] = true
				ext = append(ext, u)
			}
		}
		sub = append(sub[:0], v)
		inSub[v] = true
		extend(ext, v)
		inSub[v] = false
		for _, u := range ext {
			inExt[u] = false
		}
	}
	return c, nil
}

// record classifies the current node set by canonical labelled form.
func (c *Census) record(g *graph.Graph, nodes []graph.NodeID) {
	var s iso.Small
	for _, v := range nodes {
		s.AddNode(int(g.Label(v)))
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				s.AddEdge(i, j)
			}
		}
	}
	cert := s.Canonical()
	if _, ok := c.Reps[cert]; !ok {
		c.Reps[cert] = s
	}
	c.Counts[cert]++
	c.Total++
}

// Rewire produces a degree-preserving randomisation of g: the standard
// double-edge-swap Markov chain, running `swaps` accepted swaps (a
// common choice is several times the edge count). Node labels are
// untouched, so the joint (label, degree) distribution is preserved —
// the null model used for heterogeneous motif significance.
func Rewire(g *graph.Graph, swaps int, rng *rand.Rand) (*graph.Graph, error) {
	type edge [2]graph.NodeID
	var edges []edge
	has := make(map[edge]bool)
	g.Edges(func(u, v graph.NodeID) bool {
		e := edge{u, v}
		edges = append(edges, e)
		has[e] = true
		return true
	})
	norm := func(a, b graph.NodeID) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	if len(edges) >= 2 {
		attempts := 0
		accepted := 0
		maxAttempts := swaps * 20
		for accepted < swaps && attempts < maxAttempts {
			attempts++
			i := rng.Intn(len(edges))
			j := rng.Intn(len(edges))
			if i == j {
				continue
			}
			a, b := edges[i][0], edges[i][1]
			c, d := edges[j][0], edges[j][1]
			// Swap to (a,d), (c,b).
			if a == d || c == b {
				continue
			}
			e1, e2 := norm(a, d), norm(c, b)
			if has[e1] || has[e2] {
				continue
			}
			delete(has, edges[i])
			delete(has, edges[j])
			edges[i], edges[j] = e1, e2
			has[e1] = true
			has[e2] = true
			accepted++
		}
	}

	b := graph.NewBuilderWithAlphabet(g.Alphabet())
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := b.AddLabeledNode(g.Label(graph.NodeID(v))); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Significance is one subgraph class with its motif statistics.
type Significance struct {
	Class    string
	Example  iso.Small
	Real     int64
	RandMean float64
	RandStd  float64
	Z        float64 // (Real - RandMean) / RandStd; ±Inf when RandStd == 0
}

// Motifs runs the full Milo-style analysis: census the real network,
// census `samples` degree-preserving randomisations, and report a
// z-score per subgraph class, sorted by descending |z|. The class set is
// the union over real and random networks.
func Motifs(g *graph.Graph, k, samples int, rng *rand.Rand) ([]Significance, error) {
	real, err := Enumerate(g, k)
	if err != nil {
		return nil, err
	}
	randCounts := make(map[string][]float64)
	reps := make(map[string]iso.Small)
	for cert, rep := range real.Reps {
		reps[cert] = rep
	}
	for s := 0; s < samples; s++ {
		rg, err := Rewire(g, 4*g.NumEdges(), rng)
		if err != nil {
			return nil, err
		}
		rc, err := Enumerate(rg, k)
		if err != nil {
			return nil, err
		}
		for cert, n := range rc.Counts {
			randCounts[cert] = append(randCounts[cert], float64(n))
			if _, ok := reps[cert]; !ok {
				reps[cert] = rc.Reps[cert]
			}
		}
	}

	classes := make(map[string]bool)
	for cert := range real.Counts {
		classes[cert] = true
	}
	for cert := range randCounts {
		classes[cert] = true
	}
	var out []Significance
	for cert := range classes {
		counts := randCounts[cert]
		// Classes absent from a sample count as zero there.
		for len(counts) < samples {
			counts = append(counts, 0)
		}
		var mean float64
		for _, v := range counts {
			mean += v
		}
		if samples > 0 {
			mean /= float64(samples)
		}
		var variance float64
		for _, v := range counts {
			variance += (v - mean) * (v - mean)
		}
		if samples > 0 {
			variance /= float64(samples)
		}
		std := math.Sqrt(variance)
		realN := real.Counts[cert]
		z := 0.0
		switch {
		case std > 0:
			z = (float64(realN) - mean) / std
		case float64(realN) != mean:
			z = math.Inf(1)
			if float64(realN) < mean {
				z = math.Inf(-1)
			}
		}
		out = append(out, Significance{
			Class: cert, Example: reps[cert],
			Real: realN, RandMean: mean, RandStd: std, Z: z,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Z), math.Abs(out[j].Z)
		if ai != aj {
			return ai > aj
		}
		return out[i].Class < out[j].Class
	})
	return out, nil
}

// Describe renders a subgraph class for human consumption using the
// graph's label names: "a-b a-c" style edge lists.
func Describe(s iso.Small, alpha *graph.Alphabet) string {
	out := ""
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			if s.HasEdge(i, j) {
				if out != "" {
					out += " "
				}
				out += alpha.Name(graph.Label(s.Labels[i])) + "-" + alpha.Name(graph.Label(s.Labels[j]))
			}
		}
	}
	if out == "" {
		out = "(no edges)"
	}
	return out
}
