package ingest

import (
	"fmt"
	"strconv"
	"strings"

	"hsgf/internal/graph"
)

// Fleet batch IDs.
//
// The router sequences every fleet mutation batch through its sequencer
// WAL and rewrites the client's batch ID into the composite form
//
//	f<fleetSeq>.<clientID>
//
// before fanning sub-batches out to shards. The composite ID is what
// each shard's engine records in its applied index, which gives the
// fleet two properties for free:
//
//   - cross-shard idempotency keyed by (fleet batch, shard): a
//     duplicate fan-out — client retry through the router, router
//     crash-replay, or gap repair — hits the engine's existing replay
//     path and acks without re-applying;
//   - a durable per-shard fleet watermark: the highest fleet sequence
//     parsed out of the applied index, maintained incrementally as
//     batches apply and reconstructed from the snapshot on restart.
//
// A uint64 sequence needs at most 20 decimal digits, so with the "f"
// and "." framing a client ID of up to MaxFleetClientID bytes keeps the
// composite within graph.MaxBatchID.
const MaxFleetClientID = graph.MaxBatchID - 22 // "f" + 20 digits + "."

// FleetMaxBatchMutations is the engine mutation cap for fleet-follower
// daemons, and the router's default per-shard sub-batch bound. It is
// deliberately above DefaultMaxBatchMutations: a router-sequenced
// sub-batch carries halo repair (a pulled node's full adjacency), so a
// small client batch can legitimately expand well past the direct-
// client cap. The two sides must stay aligned — the router refuses any
// client batch whose sub-batches would exceed the followers' limits
// BEFORE sequencing it, because a follower rejecting an already-
// sequenced sub-batch as oversized would permanently poison fleet
// ingest (the sequence is durable and replays on every boot).
const FleetMaxBatchMutations = 1 << 16

// FleetBatchID builds the composite batch ID for a sequenced fleet
// batch.
func FleetBatchID(fleetSeq uint64, clientID string) string {
	return fmt.Sprintf("f%d.%s", fleetSeq, clientID)
}

// ParseFleetSeq extracts the fleet sequence from a composite fleet
// batch ID. It returns false for ordinary (non-fleet) batch IDs; a
// plain-client ID that happens to start with "f" but lacks the
// "f<digits>." frame is not mistaken for a fleet one.
func ParseFleetSeq(batchID string) (uint64, bool) {
	if len(batchID) < 3 || batchID[0] != 'f' {
		return 0, false
	}
	dot := strings.IndexByte(batchID, '.')
	if dot < 2 || dot == len(batchID)-1 {
		return 0, false
	}
	seq, err := strconv.ParseUint(batchID[1:dot], 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	// Reject leading zeros so every sequence has exactly one encoding
	// and the idempotency index cannot alias "f01.x" with "f1.x".
	if batchID[1] == '0' {
		return 0, false
	}
	return seq, true
}

// noteFleetSeq advances the fleet watermark if batchID is a fleet
// batch ID beyond it. Caller holds e.mu (or is inside Open, before the
// engine is shared).
func (e *Engine) noteFleetSeq(batchID string) {
	if seq, ok := ParseFleetSeq(batchID); ok && seq > e.fleetSeq {
		e.fleetSeq = seq
	}
}

// FleetWatermark returns the highest fleet sequence this engine has
// applied, or 0 if it has never seen a fleet batch. A shard refuses a
// fleet sub-batch whose predecessor sequence is not this watermark and
// reports the watermark back so the router can replay the gap.
func (e *Engine) FleetWatermark() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fleetSeq
}

// HasApplied reports whether batchID is still present in the engine's
// applied (idempotency) index. False for an old fleet batch may mean
// "applied but evicted" — callers deciding replay-vs-apply must combine
// this with FleetWatermark, not treat false as "never applied".
func (e *Engine) HasApplied(batchID string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.applied[batchID]
	return ok
}
