package ingest

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// Defaults for Config fields left zero.
const (
	DefaultCompactEvery      = 64
	DefaultMaxBatchMutations = 4096
	DefaultMaxIndexEntries   = 65536
)

// ErrBatchInvalid marks a batch rejected by validation before anything
// was written: the WAL, the graph, and the feature set are untouched
// and the batch was not acked.
var ErrBatchInvalid = errors.New("ingest: invalid batch")

// Config configures an Engine.
type Config struct {
	// Store persists compacted ingest snapshots. Required.
	Store *store.Store
	// WALPath is the write-ahead log file; defaults to "ingest.wal"
	// inside the store directory.
	WALPath string
	// Opts is the census extraction configuration; Opts.MaxEdges is
	// also the dirty-ball radius.
	Opts core.Options
	// Workers bounds the census workers used per recompute; <= 0 means
	// GOMAXPROCS (the Extractor's own default).
	Workers int
	// CompactEvery folds the WAL into a snapshot generation after this
	// many applied batches; <= 0 means DefaultCompactEvery.
	CompactEvery int
	// MaxBatchMutations bounds one batch; <= 0 means
	// DefaultMaxBatchMutations.
	MaxBatchMutations int
	// MaxIndexEntries bounds the applied-batch idempotency index;
	// oldest sequences are evicted first. <= 0 means
	// DefaultMaxIndexEntries.
	MaxIndexEntries int
	// Log receives operational messages; nil discards them.
	Log func(format string, args ...any)
}

// Result describes one Apply outcome. For a replayed batch, Seq is the
// sequence the batch was originally applied at and DirtyRoots is nil;
// the state fields carry the current generation either way.
type Result struct {
	Seq        uint64
	BatchID    string
	Replayed   bool
	DirtyRoots []graph.NodeID
	NewColumns int
	Elapsed    time.Duration

	Graph      *graph.Graph
	Extractor  *core.Extractor
	Features   *core.FeatureSet
	Generation uint64
}

// Stats is a point-in-time snapshot of engine counters for
// /debug/stats and benchmarks.
type Stats struct {
	LastSeq          uint64 `json:"last_seq"`
	Applied          uint64 `json:"applied"`
	Replayed         uint64 `json:"replayed"`
	Rejected         uint64 `json:"rejected"`
	Compactions      uint64 `json:"compactions"`
	Generation       uint64 `json:"generation"`
	RecoveredRecords uint64 `json:"recovered_records"`
	WALBytes         int64  `json:"wal_bytes"`
	IndexEntries     int    `json:"index_entries"`
	// Failed reports a post-durability apply failure: the engine rejects
	// all further batches until a restart replays the WAL.
	Failed         bool    `json:"failed,omitempty"`
	LastDirtyRoots int     `json:"last_dirty_roots"`
	MaxDirtyRoots  int     `json:"max_dirty_roots"`
	ApplyP50MS     float64 `json:"apply_p50_ms"`
	ApplyP99MS     float64 `json:"apply_p99_ms"`
}

// Engine is the single-writer streaming-ingest core: it owns the
// mutable graph + feature state, the WAL, and the compaction cycle.
// Apply serialises writers behind one mutex; readers never take it —
// they consume the immutable (Graph, Extractor, FeatureSet) triple the
// publish hook hands out, RCU-style.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	g       *graph.Graph
	ex      *core.Extractor
	fs      *core.FeatureSet
	vocab   *core.Vocabulary
	wal     *store.WAL
	lastSeq uint64
	gen     uint64
	applied map[string]uint64
	// appliedOrder holds the applied-index batch IDs in ascending
	// sequence order, so eviction pops the oldest in O(1) instead of
	// scanning the whole map under the writer lock.
	appliedOrder []string
	since        int // batches since last compaction
	publish      func(Result)
	closed       bool
	// failed latches when an apply fails after its WAL record is durable:
	// the in-memory state and the log have diverged, and only a restart
	// (which replays the record) reconverges them.
	failed bool
	// fleetSeq is the highest router-assigned fleet sequence this engine
	// has applied (0 if none): the shard's gap-detection watermark. It is
	// derived from fleet batch IDs, which the snapshot's applied index
	// persists in full, so it survives compaction, eviction (oldest-first,
	// never the max), and restart.
	fleetSeq uint64

	stats        Stats
	applyLatency []time.Duration // ring, latencyRingSize entries
	latencyNext  int
	latencyFill  int
}

const latencyRingSize = 1024

// Open loads (or seeds) the ingest state and replays the WAL tail.
//
// Recovery order: newest verified ingest snapshot (corrupt generations
// are quarantined and older ones tried), else seed() plus a full census
// build persisted as generation 1; then every WAL record with a
// sequence above the snapshot's watermark is re-applied. Records at or
// below the watermark are already folded — the crash window between a
// compaction's snapshot write and its WAL reset leaves them behind
// harmlessly. A sequence gap above the watermark means acked data was
// lost and is a hard error, not a silent skip.
func Open(cfg Config, seed func() (*graph.Graph, error)) (*Engine, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("ingest: Config.Store is required")
	}
	if cfg.WALPath == "" {
		cfg.WALPath = filepath.Join(cfg.Store.Dir(), "ingest.wal")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	if cfg.MaxBatchMutations <= 0 {
		cfg.MaxBatchMutations = DefaultMaxBatchMutations
	}
	if cfg.MaxIndexEntries <= 0 {
		cfg.MaxIndexEntries = DefaultMaxIndexEntries
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}

	e := &Engine{
		cfg:          cfg,
		applied:      make(map[string]uint64),
		applyLatency: make([]time.Duration, latencyRingSize),
	}

	state, gen, err := loadSnapshot(cfg.Store)
	switch {
	case err == nil:
		e.g, e.fs, e.gen, e.lastSeq = state.g, state.fs, gen, state.meta.LastSeq
		for id, seq := range state.meta.Batches {
			e.applied[id] = seq
			e.appliedOrder = append(e.appliedOrder, id)
			e.noteFleetSeq(id)
		}
		sort.Slice(e.appliedOrder, func(i, j int) bool {
			return e.applied[e.appliedOrder[i]] < e.applied[e.appliedOrder[j]]
		})
	case errors.Is(err, store.ErrNotFound):
		if seed == nil {
			return nil, fmt.Errorf("ingest: no snapshot and no seed source")
		}
		g, err := seed()
		if err != nil {
			return nil, fmt.Errorf("ingest: seed: %w", err)
		}
		if err := e.buildFromGraph(g); err != nil {
			return nil, err
		}
		if err := e.writeSnapshot(); err != nil {
			return nil, fmt.Errorf("ingest: persist seed snapshot: %w", err)
		}
		cfg.Log("ingest: seeded generation %d from scratch (%s)", e.gen, g)
	default:
		return nil, err
	}

	if e.ex == nil {
		ex, err := core.NewExtractor(e.g, cfg.Opts)
		if err != nil {
			return nil, err
		}
		e.ex = ex
	}
	if e.fs.MaxEdges != cfg.Opts.MaxEdges || e.fs.MaskRootLabel != cfg.Opts.MaskRootLabel || e.fs.MaxDegree != cfg.Opts.MaxDegree {
		return nil, fmt.Errorf("ingest: snapshot was extracted with emax=%d dmax=%d mask=%v, config wants emax=%d dmax=%d mask=%v (rebuild required)",
			e.fs.MaxEdges, e.fs.MaxDegree, e.fs.MaskRootLabel, cfg.Opts.MaxEdges, cfg.Opts.MaxDegree, cfg.Opts.MaskRootLabel)
	}
	e.vocab = core.NewVocabulary()
	for _, f := range e.fs.Features {
		e.vocab.Add(f.Key)
	}

	wal, records, err := store.OpenWAL(cfg.WALPath)
	if err != nil {
		return nil, err
	}
	e.wal = wal
	for _, rec := range records {
		if rec.Seq <= e.lastSeq {
			continue // already folded into the snapshot
		}
		if rec.Seq != e.lastSeq+1 {
			wal.Close()
			return nil, fmt.Errorf("%w: WAL skips from sequence %d to %d — acked records are missing", store.ErrCorrupt, e.lastSeq, rec.Seq)
		}
		batchID, muts, err := graph.DecodeMutations(rec.Payload)
		if err != nil {
			// CRC-valid but undecodable: this was acked, so refusing to
			// start beats silently dropping it.
			wal.Close()
			return nil, fmt.Errorf("%w: WAL record %d does not decode: %v", store.ErrCorrupt, rec.Seq, err)
		}
		if _, err := e.applyLocked(batchID, muts, rec.Seq); err != nil {
			wal.Close()
			return nil, fmt.Errorf("ingest: replaying WAL record %d (batch %q): %w", rec.Seq, batchID, err)
		}
		e.stats.RecoveredRecords++
		e.since++
	}
	if e.stats.RecoveredRecords > 0 {
		cfg.Log("ingest: replayed %d WAL records, watermark %d", e.stats.RecoveredRecords, e.lastSeq)
	}
	return e, nil
}

// buildFromGraph computes the full census feature set for a seed graph.
func (e *Engine) buildFromGraph(g *graph.Graph) error {
	ex, err := core.NewExtractor(g, e.cfg.Opts)
	if err != nil {
		return err
	}
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	censuses := ex.CensusAll(roots, e.cfg.Workers)
	vocab := core.VocabularyOf(censuses)
	fs, err := core.NewFeatureSet(ex, censuses, vocab)
	if err != nil {
		return err
	}
	e.g, e.ex, e.fs, e.vocab = g, ex, fs, vocab
	return nil
}

// SetPublish installs the hook that receives each Apply's Result while
// the engine mutex is held — successive publishes are therefore ordered
// by sequence number, which is what lets a server swap serving
// snapshots without ever publishing a stale one over a fresher one.
// Call before serving traffic.
//
// Contract: a replayed ack (Result.Replayed) carries the engine's
// CURRENT state pointers — the identical Extractor/Features the hook
// saw on the last genuine publish, never a rebuilt copy. Subscribers
// use that pointer identity to recognise a no-op republish and keep
// derived state (the serving layer's feature-row cache above all)
// intact through duplicate-replay storms.
func (e *Engine) SetPublish(fn func(Result)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publish = fn
}

// State returns the current (graph, extractor, features, generation,
// watermark) under the engine lock.
func (e *Engine) State() (*graph.Graph, *core.Extractor, *core.FeatureSet, uint64, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.g, e.ex, e.fs, e.gen, e.lastSeq
}

// Apply validates, logs, and applies one mutation batch, returning
// after the batch is durable and visible to the publish hook.
//
// Semantics:
//   - A batch ID already in the idempotency index is acked as Replayed
//     without touching anything.
//   - A batch with any invalid mutation is rejected whole
//     (ErrBatchInvalid); nothing is written, nothing is acked.
//   - Otherwise the batch is appended to the WAL and fsynced (the ack
//     point — a crash after Apply returns cannot lose it), then the
//     graph is rebuilt, the dirty ball recomputed, and the new state
//     published.
//
// Writers are serialised; the context is only consulted before the
// durability point (once the record is fsynced the apply always
// finishes, otherwise the WAL and the in-memory state would diverge).
func (e *Engine) Apply(ctx context.Context, batchID string, muts []graph.Mutation) (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Result{}, fmt.Errorf("ingest: engine closed")
	}
	if e.failed {
		return Result{}, fmt.Errorf("ingest: engine failed after a durable append and requires a restart (boot replay reconverges the WAL and the in-memory state)")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if batchID == "" || len(batchID) > graph.MaxBatchID {
		e.stats.Rejected++
		return Result{}, fmt.Errorf("%w: batch id must be 1-%d bytes", ErrBatchInvalid, graph.MaxBatchID)
	}
	if len(muts) == 0 || len(muts) > e.cfg.MaxBatchMutations {
		e.stats.Rejected++
		return Result{}, fmt.Errorf("%w: batch must carry 1-%d mutations, got %d", ErrBatchInvalid, e.cfg.MaxBatchMutations, len(muts))
	}
	if seq, ok := e.applied[batchID]; ok {
		e.stats.Replayed++
		res := e.currentResult(batchID, seq)
		res.Replayed = true
		if e.publish != nil {
			// Replays publish too: after recovery the server may not
			// have seen any state yet.
			e.publish(res)
		}
		return res, nil
	}

	start := time.Now()
	// Stage against the current graph first: a batch that fails
	// validation must leave no trace, including in the WAL.
	overlay := graph.NewOverlay(e.g)
	for i, m := range muts {
		if err := overlay.Apply(m); err != nil {
			e.stats.Rejected++
			return Result{}, fmt.Errorf("%w: mutation %d: %v", ErrBatchInvalid, i, err)
		}
	}
	payload, err := graph.EncodeMutations(batchID, muts)
	if err != nil {
		e.stats.Rejected++
		return Result{}, fmt.Errorf("%w: %v", ErrBatchInvalid, err)
	}

	seq := e.lastSeq + 1
	if err := e.wal.Append(seq, payload); err != nil {
		return Result{}, fmt.Errorf("ingest: WAL append: %w", err)
	}
	// Durability point: from here the batch is acked-able and the apply
	// must complete.
	res, err := e.applyOverlay(batchID, overlay, seq)
	if err != nil {
		// The staged overlay validated, so a failure here is resource
		// exhaustion or a bug. The WAL record is durable but was not
		// applied: e.lastSeq and wal.LastSeq have diverged, so latch the
		// failure instead of wedging every later Apply on the WAL's
		// seq-monotonicity check with a misleading error. Restart replays
		// the record and recovers.
		e.failed = true
		return Result{}, fmt.Errorf("ingest: apply after durable append (engine requires a restart; WAL record %d replays on boot): %w", seq, err)
	}
	res.Elapsed = time.Since(start)
	e.observeApply(res)
	if e.since++; e.since >= e.cfg.CompactEvery {
		if err := e.compactLocked(); err != nil {
			// Compaction failure is not batch failure: the WAL still
			// holds everything. Log and carry on.
			e.cfg.Log("ingest: compaction failed (WAL keeps growing): %v", err)
		}
	}
	res.Generation = e.gen
	if e.publish != nil {
		e.publish(res)
	}
	return res, nil
}

// LatchFailure forces the engine into its post-durability failed state:
// every later Apply is refused and Stats/readiness report the failure
// until a restart replays the WAL. It exists so fault-injection tests
// (the serving tier's readiness path above all) can exercise the
// latched state without arranging a real post-durability apply failure;
// production code never calls it.
func (e *Engine) LatchFailure() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failed = true
}

// applyLocked stages and applies an already-durable batch (WAL replay).
func (e *Engine) applyLocked(batchID string, muts []graph.Mutation, seq uint64) (Result, error) {
	overlay := graph.NewOverlay(e.g)
	for i, m := range muts {
		if err := overlay.Apply(m); err != nil {
			return Result{}, fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	return e.applyOverlay(batchID, overlay, seq)
}

// applyOverlay materialises the staged overlay, recomputes the dirty
// ball, and installs the new state. Caller holds e.mu and has made the
// batch durable.
func (e *Engine) applyOverlay(batchID string, overlay *graph.Overlay, seq uint64) (Result, error) {
	oldG := e.g
	newG, err := overlay.Materialize()
	if err != nil {
		return Result{}, err
	}
	ex, err := core.NewExtractor(newG, e.cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	dirty := core.DirtySet(oldG, newG, overlay.Touched(), e.cfg.Opts.MaxEdges)
	fs, newCols, err := e.patchFeatures(ex, dirty, newG.NumNodes())
	if err != nil {
		return Result{}, err
	}

	e.g, e.ex, e.fs = newG, ex, fs
	e.lastSeq = seq
	e.applied[batchID] = seq
	e.appliedOrder = append(e.appliedOrder, batchID)
	e.noteFleetSeq(batchID)
	e.evictIndex()
	e.stats.Applied++
	e.stats.LastDirtyRoots = len(dirty)
	if len(dirty) > e.stats.MaxDirtyRoots {
		e.stats.MaxDirtyRoots = len(dirty)
	}
	return Result{
		Seq:        seq,
		BatchID:    batchID,
		DirtyRoots: dirty,
		NewColumns: newCols,
		Graph:      newG,
		Extractor:  ex,
		Features:   fs,
		Generation: e.gen,
	}, nil
}

// patchFeatures recomputes the census rows for the dirty roots and
// splices them into a copy-on-write clone of the feature set. The
// previous FeatureSet (shared with in-flight readers of the old serving
// snapshot) is never mutated: outer slices are copied, untouched
// FeatureRow values are shared, dirty rows get fresh slices. The
// vocabulary only ever appends columns, so existing sparse rows stay
// valid verbatim.
func (e *Engine) patchFeatures(ex *core.Extractor, dirty []graph.NodeID, numNodes int) (*core.FeatureSet, int, error) {
	censuses := ex.CensusAll(dirty, e.cfg.Workers)
	oldCols := e.vocab.Len()
	for _, c := range censuses {
		if c != nil {
			e.vocab.AddCensus(c)
		}
	}
	newCols := e.vocab.Len() - oldCols

	old := e.fs
	fs := &core.FeatureSet{
		MaxEdges:      old.MaxEdges,
		MaxDegree:     old.MaxDegree,
		MaskRootLabel: old.MaskRootLabel,
		LabelSlots:    old.LabelSlots,
		SlotNames:     old.SlotNames,
	}
	fs.Features = make([]core.FeatureDef, e.vocab.Len())
	copy(fs.Features, old.Features)
	for c := oldCols; c < e.vocab.Len(); c++ {
		key := e.vocab.Key(c)
		seqv, ok := ex.Decode(key)
		if !ok {
			return nil, 0, fmt.Errorf("ingest: new vocabulary key %x has no representative", key)
		}
		fs.Features[c] = core.FeatureDef{Key: key, Sequence: seqv.Values, Encoding: seqv.String(ex.SlotName)}
	}

	fs.Roots = make([]int64, numNodes)
	fs.Rows = make([]core.FeatureRow, numNodes)
	for i := range fs.Roots {
		fs.Roots[i] = int64(i)
	}
	copy(fs.Rows, old.Rows)

	needFlags := len(old.RowFlags) > 0
	for _, c := range censuses {
		if c != nil && c.Flags != 0 {
			needFlags = true
		}
	}
	if needFlags {
		fs.RowFlags = make([]uint8, numNodes)
		copy(fs.RowFlags, old.RowFlags)
	}

	for i, c := range censuses {
		root := int(dirty[i])
		if c == nil {
			continue
		}
		var row core.FeatureRow
		if n := len(c.Counts); n > 0 {
			row.Columns = make([]int, 0, n)
			row.Counts = make([]int64, 0, n)
			keys := make([]uint64, 0, n)
			for k := range c.Counts {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool {
				ca, _ := e.vocab.Index(keys[a])
				cb, _ := e.vocab.Index(keys[b])
				return ca < cb
			})
			for _, k := range keys {
				col, ok := e.vocab.Index(k)
				if !ok {
					return nil, 0, fmt.Errorf("ingest: census key %x missing from vocabulary", k)
				}
				row.Columns = append(row.Columns, col)
				row.Counts = append(row.Counts, c.Counts[k])
			}
		}
		fs.Rows[root] = row
		if needFlags {
			fs.RowFlags[root] = uint8(c.Flags)
		}
	}
	return fs, newCols, nil
}

// currentResult packages the current state for a replayed ack. Caller
// holds e.mu.
func (e *Engine) currentResult(batchID string, seq uint64) Result {
	return Result{
		Seq:        seq,
		BatchID:    batchID,
		Graph:      e.g,
		Extractor:  e.ex,
		Features:   e.fs,
		Generation: e.gen,
	}
}

// evictIndex bounds the idempotency index, dropping oldest sequences
// first. appliedOrder is maintained in ascending sequence order, so
// each eviction is O(1) — a full-map scan here would run under the
// writer lock on every applied batch once the index is at capacity.
// Caller holds e.mu.
func (e *Engine) evictIndex() {
	for len(e.applied) > e.cfg.MaxIndexEntries && len(e.appliedOrder) > 0 {
		id := e.appliedOrder[0]
		e.appliedOrder[0] = "" // release the string to GC
		e.appliedOrder = e.appliedOrder[1:]
		delete(e.applied, id)
	}
}

// writeSnapshot persists the current state as the next ingest
// generation. Caller holds e.mu (or is still single-threaded in Open).
func (e *Engine) writeSnapshot() error {
	batches := make(map[string]uint64, len(e.applied))
	for id, seq := range e.applied {
		batches[id] = seq
	}
	sections, err := snapshotSections(&ingestState{
		meta: ingestMeta{Schema: ingestSchema, LastSeq: e.lastSeq, Batches: batches},
		g:    e.g,
		fs:   e.fs,
	})
	if err != nil {
		return err
	}
	gen, err := e.cfg.Store.Write(ArtifactIngest, sections)
	if err != nil {
		return err
	}
	e.gen = gen
	return nil
}

// compactLocked folds the WAL into a fresh snapshot generation, then
// truncates the log. Crash-safe in both windows: before the snapshot
// rename the old snapshot + full WAL recover everything; between the
// rename and the WAL reset, replay skips the already-folded records by
// watermark.
func (e *Engine) compactLocked() error {
	if err := e.writeSnapshot(); err != nil {
		return err
	}
	if err := e.wal.Reset(); err != nil {
		return err
	}
	e.since = 0
	e.stats.Compactions++
	e.cfg.Log("ingest: compacted through sequence %d into generation %d", e.lastSeq, e.gen)
	return nil
}

// observeApply records latency and ring stats. Caller holds e.mu.
func (e *Engine) observeApply(res Result) {
	e.applyLatency[e.latencyNext] = res.Elapsed
	e.latencyNext = (e.latencyNext + 1) % latencyRingSize
	if e.latencyFill < latencyRingSize {
		e.latencyFill++
	}
}

// Stats returns a point-in-time copy of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.LastSeq = e.lastSeq
	s.Generation = e.gen
	s.WALBytes = e.wal.Size()
	s.IndexEntries = len(e.applied)
	s.Failed = e.failed
	if e.latencyFill > 0 {
		lat := make([]time.Duration, e.latencyFill)
		copy(lat, e.applyLatency[:e.latencyFill])
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.ApplyP50MS = float64(lat[e.latencyFill/2].Microseconds()) / 1000
		s.ApplyP99MS = float64(lat[(e.latencyFill*99)/100].Microseconds()) / 1000
	}
	return s
}

// Close closes the WAL. Everything acked is already durable; Close
// performs no final compaction (boot replay finishes the job), so a
// crash and a clean shutdown recover identically.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.wal.Close()
}
