package ingest

import (
	"context"
	"testing"

	"hsgf/internal/graph"
)

func TestParseFleetSeq(t *testing.T) {
	cases := []struct {
		id  string
		seq uint64
		ok  bool
	}{
		{FleetBatchID(1, "client-a"), 1, true},
		{FleetBatchID(18446744073709551615, "x"), 18446744073709551615, true},
		{"f42.retry.1", 42, true}, // client IDs may themselves contain dots
		{"plain-batch", 0, false},
		{"f", 0, false},
		{"f1", 0, false},     // no separator
		{"f1.", 0, false},    // empty client ID
		{"f.x", 0, false},    // no digits
		{"fabc.x", 0, false}, // non-numeric
		{"f0.x", 0, false},   // sequence numbers start at 1
		{"f01.x", 0, false},  // leading zero would alias f1.x
		{"F1.x", 0, false},   // case-sensitive frame
		{"flight.x", 0, false},
	}
	for _, c := range cases {
		seq, ok := ParseFleetSeq(c.id)
		if seq != c.seq || ok != c.ok {
			t.Errorf("ParseFleetSeq(%q) = (%d, %v), want (%d, %v)", c.id, seq, ok, c.seq, c.ok)
		}
	}
}

func TestFleetBatchIDFitsLimit(t *testing.T) {
	id := FleetBatchID(18446744073709551615, string(make([]byte, MaxFleetClientID)))
	if len(id) > graph.MaxBatchID {
		t.Fatalf("worst-case composite ID is %d bytes, limit %d", len(id), graph.MaxBatchID)
	}
}

// TestFleetWatermarkTracksAppliesAndSurvivesRestart: the watermark
// advances only on fleet batches, ignores plain ones, and is rebuilt
// from the snapshot's applied index after compaction + restart — the
// property gap detection relies on.
func TestFleetWatermarkTracksAppliesAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.CompactEvery = 2 // force a compaction mid-stream
	e := openEngine(t, cfg)

	if w := e.FleetWatermark(); w != 0 {
		t.Fatalf("fresh engine watermark = %d", w)
	}
	ctx := context.Background()
	muts := func(u, v graph.NodeID) []graph.Mutation {
		return []graph.Mutation{{Op: graph.OpAddEdge, U: u, V: v}}
	}
	if _, err := e.Apply(ctx, FleetBatchID(1, "c"), muts(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(ctx, "plain", muts(0, 3)); err != nil {
		t.Fatal(err)
	}
	if w := e.FleetWatermark(); w != 1 {
		t.Fatalf("watermark after fleet seq 1 + plain batch = %d, want 1", w)
	}
	if _, err := e.Apply(ctx, FleetBatchID(2, "c"), nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := e.Apply(ctx, FleetBatchID(2, "c"), muts(1, 1)); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if w := e.FleetWatermark(); w != 1 {
		t.Fatalf("rejected batches moved the watermark to %d", w)
	}
	if _, err := e.Apply(ctx, FleetBatchID(2, "c"), []graph.Mutation{{Op: graph.OpAddNode, Label: "loc"}}); err != nil {
		t.Fatal(err)
	}
	if !e.HasApplied(FleetBatchID(2, "c")) || e.HasApplied(FleetBatchID(3, "c")) {
		t.Fatal("HasApplied misreports the applied index")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// CompactEvery=2 snapshotted at least once; reopen must restore the
	// watermark from the persisted applied index either way.
	e2 := openEngine(t, testConfig(t, dir))
	if w := e2.FleetWatermark(); w != 2 {
		t.Fatalf("watermark after restart = %d, want 2", w)
	}
	if !e2.HasApplied(FleetBatchID(2, "c")) {
		t.Fatal("applied index lost across restart")
	}
}

// TestFleetWatermarkSurvivesIndexEviction: eviction drops the oldest
// applied entries, so the maximum fleet sequence — the watermark —
// must be unaffected even when the batch that set it is long evicted
// from the idempotency index.
func TestFleetWatermarkSurvivesIndexEviction(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.MaxIndexEntries = 2
	e := openEngine(t, cfg)

	ctx := context.Background()
	for i := uint64(1); i <= 5; i++ {
		id := FleetBatchID(i, "c")
		m := []graph.Mutation{{Op: graph.OpAddNode, Label: "act"}}
		if _, err := e.Apply(ctx, id, m); err != nil {
			t.Fatalf("apply %s: %v", id, err)
		}
	}
	if e.HasApplied(FleetBatchID(1, "c")) {
		t.Fatal("oldest entry not evicted with MaxIndexEntries=2")
	}
	if !e.HasApplied(FleetBatchID(5, "c")) {
		t.Fatal("newest entry evicted")
	}
	if w := e.FleetWatermark(); w != 5 {
		t.Fatalf("watermark = %d after evictions, want 5", w)
	}
}

func TestFleetBatchIDDistinctPerClient(t *testing.T) {
	seen := map[string]bool{}
	for seq := uint64(1); seq <= 3; seq++ {
		for _, client := range []string{"a", "b", "a.b"} {
			id := FleetBatchID(seq, client)
			if seen[id] {
				t.Fatalf("duplicate composite ID %q", id)
			}
			seen[id] = true
			got, ok := ParseFleetSeq(id)
			if !ok || got != seq {
				t.Fatalf("round trip %q: (%d, %v)", id, got, ok)
			}
		}
	}
}
