package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// seedGraph builds 0(loc)-1(org)-2(act)-3(loc), 1-3.
func seedGraph() (*graph.Graph, error) {
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("loc", "org", "act"))
	for _, l := range []string{"loc", "org", "act", "loc"} {
		if _, err := b.AddNode(l); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {1, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func testConfig(t *testing.T, dir string) Config {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Store: st,
		Opts:  core.Options{MaxEdges: 2},
	}
}

func openEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg, seedGraph)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// rowCounts extracts root's row as an encoding-key -> count map, the
// column-order-independent canonical form.
func rowCounts(fs *core.FeatureSet, root int) map[uint64]int64 {
	out := make(map[uint64]int64)
	row := fs.Rows[root]
	for i, col := range row.Columns {
		out[fs.Features[col].Key] = row.Counts[i]
	}
	return out
}

func sameCounts(a, b map[uint64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// assertEqualStates compares two engines' graphs and feature rows.
func assertEqualStates(t *testing.T, a, b *Engine) {
	t.Helper()
	ga, _, fsa, _, seqA := a.State()
	gb, _, fsb, _, seqB := b.State()
	if seqA != seqB {
		t.Fatalf("watermarks differ: %d vs %d", seqA, seqB)
	}
	if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
		t.Fatalf("graphs differ: %s vs %s", ga, gb)
	}
	for v := 0; v < ga.NumNodes(); v++ {
		if ga.Label(graph.NodeID(v)) != gb.Label(graph.NodeID(v)) {
			t.Fatalf("node %d label differs", v)
		}
	}
	equal := true
	ga.Edges(func(u, v graph.NodeID) bool {
		equal = gb.HasEdge(u, v)
		return equal
	})
	if !equal {
		t.Fatal("edge sets differ")
	}
	if len(fsa.Rows) != len(fsb.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(fsa.Rows), len(fsb.Rows))
	}
	for v := range fsa.Rows {
		if !sameCounts(rowCounts(fsa, v), rowCounts(fsb, v)) {
			t.Fatalf("census row %d differs", v)
		}
	}
}

func TestEngineSeedAndApply(t *testing.T) {
	e := openEngine(t, testConfig(t, t.TempDir()))
	g, _, fs, gen, seq := e.State()
	if g.NumNodes() != 4 || len(fs.Rows) != 4 || gen != 1 || seq != 0 {
		t.Fatalf("seed state: %s, %d rows, gen %d, seq %d", g, len(fs.Rows), gen, seq)
	}

	res, err := e.Apply(context.Background(), "b1", []graph.Mutation{
		{Op: graph.OpAddNode, Label: "org", Name: "n4"},
		{Op: graph.OpAddEdge, U: 4, V: 0},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Seq != 1 || res.Replayed {
		t.Fatalf("result %+v", res)
	}
	if res.Graph.NumNodes() != 5 || !res.Graph.HasEdge(0, 4) {
		t.Fatalf("mutated graph %s", res.Graph)
	}
	if len(res.Features.Rows) != 5 {
		t.Fatalf("feature set has %d rows", len(res.Features.Rows))
	}
	// The new node and its neighbourhood are dirty; with emax=2 the
	// ball around {0,4} covers 0,1,4 plus 0's and 1's neighbours.
	found := false
	for _, r := range res.DirtyRoots {
		if r == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("added node missing from dirty roots %v", res.DirtyRoots)
	}
}

func TestEngineRejectsInvalidBatchAtomically(t *testing.T) {
	e := openEngine(t, testConfig(t, t.TempDir()))
	before := e.Stats()
	// Second mutation is invalid (self loop): the whole batch must be
	// rejected with nothing written.
	_, err := e.Apply(context.Background(), "bad", []graph.Mutation{
		{Op: graph.OpAddEdge, U: 0, V: 2},
		{Op: graph.OpAddEdge, U: 1, V: 1},
	})
	if !errors.Is(err, ErrBatchInvalid) {
		t.Fatalf("err = %v, want ErrBatchInvalid", err)
	}
	after := e.Stats()
	if after.LastSeq != before.LastSeq || after.WALBytes != before.WALBytes {
		t.Fatalf("rejected batch left traces: %+v -> %+v", before, after)
	}
	g, _, _, _, _ := e.State()
	if g.HasEdge(0, 2) {
		t.Fatal("first mutation of rejected batch was applied")
	}
	if _, err := e.Apply(context.Background(), "bad", []graph.Mutation{
		{Op: graph.OpAddEdge, U: 0, V: 2},
	}); err != nil || e.Stats().LastSeq != 1 {
		t.Fatalf("batch id of a rejected batch must stay usable: %v", err)
	}
	// Empty and oversized batches are rejected up front.
	if _, err := e.Apply(context.Background(), "empty", nil); !errors.Is(err, ErrBatchInvalid) {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestEngineIdempotency(t *testing.T) {
	e := openEngine(t, testConfig(t, t.TempDir()))
	muts := []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 2}}
	first, err := e.Apply(context.Background(), "b1", muts)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := e.Apply(context.Background(), "b1", muts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !replay.Replayed || replay.Seq != first.Seq {
		t.Fatalf("replay result %+v", replay)
	}
	if s := e.Stats(); s.Applied != 1 || s.Replayed != 1 || s.LastSeq != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEngineRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	e := openEngine(t, cfg)
	ctx := context.Background()
	if _, err := e.Apply(ctx, "b1", []graph.Mutation{{Op: graph.OpAddNode, Label: "loc"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(ctx, "b2", []graph.Mutation{{Op: graph.OpAddEdge, U: 4, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(ctx, "b3", []graph.Mutation{{Op: graph.OpRelabel, U: 0, Label: "act"}}); err != nil {
		t.Fatal(err)
	}
	e.Close() // no compaction ran (CompactEvery default 64): state lives in seed snapshot + WAL

	e2 := openEngine(t, cfg)
	if s := e2.Stats(); s.RecoveredRecords != 3 {
		t.Fatalf("recovered %d records, want 3", s.RecoveredRecords)
	}
	assertEqualStates(t, e, e2)
	// Replays of recovered batches are recognised.
	res, err := e2.Apply(ctx, "b2", []graph.Mutation{{Op: graph.OpAddEdge, U: 4, V: 1}})
	if err != nil || !res.Replayed {
		t.Fatalf("post-recovery replay: %+v, %v", res, err)
	}
}

func TestEngineCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.CompactEvery = 2
	e := openEngine(t, cfg)
	ctx := context.Background()
	if _, err := e.Apply(ctx, "b1", []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Compactions != 0 {
		t.Fatalf("compacted early: %+v", s)
	}
	if _, err := e.Apply(ctx, "b2", []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Compactions != 1 || s.Generation < 2 {
		t.Fatalf("stats after compaction %+v", s)
	}
	// WAL folded away: only the header remains.
	fi, err := os.Stat(filepath.Join(dir, "ingest.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 12 {
		t.Fatalf("WAL is %d bytes after compaction, want header only", fi.Size())
	}
	e.Close()

	// Recovery from the compacted snapshot alone.
	e2 := openEngine(t, cfg)
	if s := e2.Stats(); s.RecoveredRecords != 0 || s.LastSeq != 2 {
		t.Fatalf("post-compaction recovery stats %+v", s)
	}
	assertEqualStates(t, e, e2)
	// Idempotency survives compaction: the applied index was persisted.
	res, err := e2.Apply(ctx, "b1", []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 2}})
	if err != nil || !res.Replayed {
		t.Fatalf("replay across compaction: %+v, %v", res, err)
	}
}

func TestEngineTornWALTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	e := openEngine(t, cfg)
	ctx := context.Background()
	if _, err := e.Apply(ctx, "b1", []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	walPath := filepath.Join(dir, "ingest.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("WREC\x07torn"))
	f.Close()

	e2 := openEngine(t, cfg)
	if s := e2.Stats(); s.RecoveredRecords != 1 || s.LastSeq != 1 {
		t.Fatalf("stats after torn-tail recovery %+v", s)
	}
	g, _, _, _, _ := e2.State()
	if !g.HasEdge(0, 2) {
		t.Fatal("acked batch lost to torn tail")
	}
}

func TestEngineIndexEviction(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	cfg.MaxIndexEntries = 2
	e := openEngine(t, cfg)
	ctx := context.Background()
	batches := []graph.Mutation{
		{Op: graph.OpAddEdge, U: 0, V: 2},
		{Op: graph.OpAddEdge, U: 0, V: 3},
		{Op: graph.OpAddNode, Label: "loc"},
	}
	for i, m := range batches {
		if _, err := e.Apply(ctx, string(rune('a'+i)), []graph.Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.IndexEntries != 2 {
		t.Fatalf("index holds %d entries, want 2", s.IndexEntries)
	}
	// The two newest batches are still recognised; the oldest fell out.
	if res, err := e.Apply(ctx, "c", []graph.Mutation{batches[2]}); err != nil || !res.Replayed {
		t.Fatalf("newest batch not recognised: %v", err)
	}
	if _, err := e.Apply(ctx, "a", []graph.Mutation{batches[0]}); !errors.Is(err, ErrBatchInvalid) {
		// Evicted, so it is treated as new — and its duplicate edge now
		// fails validation rather than double-applying.
		t.Fatalf("evicted batch replay: %v", err)
	}
}

func TestEngineRefusesOptionMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	e := openEngine(t, cfg)
	e.Close()

	cfg2 := cfg
	cfg2.Opts.MaxEdges = 3
	if _, err := Open(cfg2, seedGraph); err == nil {
		t.Fatal("engine opened over a snapshot extracted with different options")
	}
}

func TestEngineSnapshotRoundTripValidation(t *testing.T) {
	// A corrupted ingest snapshot is quarantined and the older
	// generation loads instead.
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.CompactEvery = 1
	e := openEngine(t, cfg)
	ctx := context.Background()
	if _, err := e.Apply(ctx, "b1", []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	_, _, _, gen, _ := e.State()
	e.Close()

	path := cfg.Store.Path(ArtifactIngest, gen)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := openEngine(t, cfg)
	// Generation gen is quarantined; the WAL was reset at compaction, so
	// recovery falls back to generation 1 WITHOUT the batch — but the
	// batch was compacted, so this is the documented double-fault case:
	// losing the newest snapshot after its WAL reset loses what was
	// folded into it. The engine must still come up clean on gen 1.
	g, _, _, gen2, _ := e2.State()
	if gen2 != 1 {
		t.Fatalf("recovered generation %d, want fallback to 1", gen2)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("fallback graph %s", g)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged snapshot not quarantined: %v", err)
	}
}

// TestReplayPublishesIdenticalState pins the SetPublish replay
// contract: a replayed ack hands the hook the engine's CURRENT state
// pointers — the identical Extractor/Features the last genuine publish
// carried — so subscribers can recognise the no-op by pointer identity
// and keep derived state (the serving layer's row cache) intact.
func TestReplayPublishesIdenticalState(t *testing.T) {
	e := openEngine(t, testConfig(t, t.TempDir()))
	var published []Result
	e.SetPublish(func(res Result) { published = append(published, res) })

	muts := []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 2}}
	first, err := e.Apply(context.Background(), "dup", muts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Apply(context.Background(), "dup", muts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed || !second.Replayed || second.Seq != first.Seq {
		t.Fatalf("acks = %+v / %+v, want second replayed with the first's seq", first, second)
	}
	if len(published) != 2 {
		t.Fatalf("published %d results, want 2 (replays publish too)", len(published))
	}
	if published[1].Extractor != published[0].Extractor || published[1].Features != published[0].Features {
		t.Fatal("replay published rebuilt state pointers; subscribers cannot detect the no-op")
	}
	if !published[1].Replayed {
		t.Error("replayed publish not flagged Replayed")
	}
}
