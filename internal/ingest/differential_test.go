package ingest

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// fullRebuildCounts extracts every root's census from scratch on g and
// returns the canonical per-root key -> count maps.
func fullRebuildCounts(t *testing.T, g *graph.Graph, opts core.Options) []map[uint64]int64 {
	t.Helper()
	ex, err := core.NewExtractor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	roots := make([]graph.NodeID, g.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	censuses := ex.CensusAll(roots, 0)
	out := make([]map[uint64]int64, len(censuses))
	for i, c := range censuses {
		m := make(map[uint64]int64, len(c.Counts))
		for k, v := range c.Counts {
			m[k] = v
		}
		out[i] = m
	}
	return out
}

// randomBatch builds 1..4 random mutations that are valid against g in
// sequence (staged on a scratch overlay exactly like the engine does).
func randomBatch(rng *rand.Rand, g *graph.Graph) []graph.Mutation {
	overlay := graph.NewOverlay(g)
	var edges [][2]graph.NodeID
	g.Edges(func(u, v graph.NodeID) bool {
		edges = append(edges, [2]graph.NodeID{u, v})
		return true
	})
	labels := g.Alphabet().Names()
	var muts []graph.Mutation
	n := 1 + rng.Intn(4)
	for len(muts) < n {
		var m graph.Mutation
		switch rng.Intn(10) {
		case 0: // add_node, rare so the graph stays connected-ish
			m = graph.Mutation{Op: graph.OpAddNode, Label: labels[rng.Intn(len(labels))]}
		case 1, 2: // remove_edge
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			m = graph.Mutation{Op: graph.OpRemoveEdge, U: e[0], V: e[1]}
		case 3, 4, 5: // relabel
			v := graph.NodeID(rng.Intn(overlay.NumNodes()))
			m = graph.Mutation{Op: graph.OpRelabel, U: v, Label: labels[rng.Intn(len(labels))]}
		default: // add_edge
			u := graph.NodeID(rng.Intn(overlay.NumNodes()))
			v := graph.NodeID(rng.Intn(overlay.NumNodes()))
			m = graph.Mutation{Op: graph.OpAddEdge, U: u, V: v}
		}
		if overlay.Apply(m) == nil {
			muts = append(muts, m)
		}
	}
	return muts
}

// TestDifferentialRandomStream drives random mutation batches through
// the engine on a datagen publication graph and, after every batch,
// (1) proves the incremental feature set equals a from-scratch
// CensusAll over the whole mutated graph, and (2) proves rows outside
// the dirty ball were NOT recomputed — they share their backing arrays
// with the previous generation's rows, which a recompute (always
// allocating fresh slices) cannot.
func TestDifferentialRandomStream(t *testing.T) {
	cfg := datagen.PublicationConfig{
		Institutions:      8,
		Conferences:       []string{"conf-a", "conf-b"},
		Years:             []int{2016, 2017},
		PapersPerConfYear: 6,
		FullPaperFrac:     0.7,
		Journals:          3,
		Fields:            5,
		ExternalPapers:    40,
		MaxAuthors:        3,
		CrossInstProb:     0.3,
		Seed:              7,
	}
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{MaxEdges: 2}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Store: st, Opts: opts, CompactEvery: 5}, func() (*graph.Graph, error) {
		return pub.Graph, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	_, _, prevFS, _, _ := e.State()
	for batch := 0; batch < 12; batch++ {
		muts := randomBatch(rng, func() *graph.Graph { g, _, _, _, _ := e.State(); return g }())
		res, err := e.Apply(ctx, fmt.Sprintf("diff-%d", batch), muts)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}

		want := fullRebuildCounts(t, res.Graph, opts)
		if len(res.Features.Rows) != len(want) {
			t.Fatalf("batch %d: %d rows for %d nodes", batch, len(res.Features.Rows), len(want))
		}
		for v := range want {
			if got := rowCounts(res.Features, v); !sameCounts(got, want[v]) {
				t.Fatalf("batch %d: root %d incremental census != full rebuild\nincremental: %v\nrebuild:     %v",
					batch, v, got, want[v])
			}
		}

		// Clean roots must not have been recomputed.
		dirty := make(map[graph.NodeID]bool, len(res.DirtyRoots))
		for _, r := range res.DirtyRoots {
			dirty[r] = true
		}
		for v := 0; v < len(prevFS.Rows); v++ {
			if dirty[graph.NodeID(v)] {
				continue
			}
			oldRow, newRow := prevFS.Rows[v], res.Features.Rows[v]
			if len(oldRow.Columns) != len(newRow.Columns) {
				t.Fatalf("batch %d: clean root %d changed shape", batch, v)
			}
			if len(newRow.Columns) > 0 && &newRow.Columns[0] != &oldRow.Columns[0] {
				t.Fatalf("batch %d: clean root %d was recomputed (fresh backing array)", batch, v)
			}
		}
		prevFS = res.Features
	}
	if e.Stats().Compactions == 0 {
		t.Fatal("stream never exercised compaction")
	}
}

// TestDifferentialEmaxBoundary pins the dirty-ball radius on a path
// graph: a relabel at distance exactly emax from a root changes that
// root's census (the ball must include it), while distance emax+1
// cannot (the ball must exclude it) — including where the ball clips
// the end of the path.
func TestDifferentialEmaxBoundary(t *testing.T) {
	const emax = 3
	const n = 10 // path 0-1-...-9
	build := func(relabeled graph.NodeID) *graph.Graph {
		b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("x", "y"))
		for i := 0; i < n; i++ {
			l := "x"
			if graph.NodeID(i) == relabeled {
				l = "y"
			}
			if _, err := b.AddNode(l); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n-1; i++ {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		return b.MustBuild()
	}
	opts := core.Options{MaxEdges: emax}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(Config{Store: st, Opts: opts}, func() (*graph.Graph, error) {
		return build(-1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Relabel node 9 (the path's end: its ball clips the graph edge).
	const touched = 9
	res, err := e.Apply(context.Background(), "boundary", []graph.Mutation{
		{Op: graph.OpRelabel, U: touched, Label: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}

	dirty := make(map[graph.NodeID]bool)
	for _, r := range res.DirtyRoots {
		dirty[r] = true
	}
	// Exactly the distance-≤emax ball: {9-emax, ..., 9}.
	for v := graph.NodeID(0); v < n; v++ {
		want := v >= touched-emax
		if dirty[v] != want {
			t.Errorf("node %d (distance %d): dirty=%v, want %v", v, touched-v, dirty[v], want)
		}
	}

	// The radius is semantically tight: against a full rebuild, the root
	// at distance exactly emax has a CHANGED census and the root at
	// emax+1 an unchanged one.
	before := fullRebuildCounts(t, build(-1), opts)
	after := fullRebuildCounts(t, build(touched), opts)
	atEmax, beyond := touched-emax, touched-emax-1
	if sameCounts(before[atEmax], after[atEmax]) {
		t.Errorf("census of root at distance emax did not change; radius emax-1 would have sufficed")
	}
	if !sameCounts(before[beyond], after[beyond]) {
		t.Errorf("census of root at distance emax+1 changed; radius emax is too small")
	}
	// And the incremental rows equal the rebuild everywhere.
	for v := 0; v < n; v++ {
		if got := rowCounts(res.Features, v); !sameCounts(got, after[v]) {
			t.Errorf("root %d: incremental != rebuild", v)
		}
	}
}
