// Package ingest implements crash-safe streaming mutation of a served
// graph: a write-ahead log makes each acked batch durable, a compactor
// periodically folds the log into a snapshot generation, and a
// delta-aware maintainer recomputes only the census rows a batch could
// have changed (the distance-≤emax dirty ball; see internal/core's
// DirtySet).
package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// ArtifactIngest is the store kind of the compacted ingest state: one
// snapshot holding the graph, its feature set, and the ingest watermark
// (last folded sequence plus the applied-batch index), written
// atomically so recovery always sees a consistent triple.
const ArtifactIngest = "ingest"

const ingestSchema = 1

// ingestMeta is the watermark section of an ingest snapshot.
type ingestMeta struct {
	Schema  int    `json:"schema"`
	LastSeq uint64 `json:"last_seq"`
	// Batches is the applied-batch idempotency index at snapshot time:
	// batch ID -> sequence it was applied at. Persisting it means a
	// batch replayed AFTER its records were compacted out of the WAL is
	// still recognised and acked instead of re-applied. Bounded by
	// Config.MaxIndexEntries (oldest sequences evicted first), so only
	// replays older than the whole retained window can slip past — and
	// those arrive with a batch the WAL no longer knows either way.
	Batches map[string]uint64 `json:"batches"`
}

// ingestState is the decoded form of one ingest snapshot.
type ingestState struct {
	meta ingestMeta
	g    *graph.Graph
	fs   *core.FeatureSet
}

// snapshotSections frames the ingest state as store sections:
// [meta, ingestmeta, graph, featureset].
func snapshotSections(st *ingestState) ([]store.Section, error) {
	kindMeta, err := json.Marshal(struct {
		Artifact string `json:"artifact"`
		Schema   int    `json:"schema"`
	}{ArtifactIngest, ingestSchema})
	if err != nil {
		return nil, err
	}
	watermark, err := json.Marshal(st.meta)
	if err != nil {
		return nil, err
	}
	var gbuf bytes.Buffer
	if err := graph.WriteTSV(&gbuf, st.g); err != nil {
		return nil, err
	}
	var fbuf bytes.Buffer
	if err := st.fs.Write(&fbuf); err != nil {
		return nil, err
	}
	return []store.Section{
		{Name: "meta", Payload: kindMeta},
		{Name: "ingestmeta", Payload: watermark},
		{Name: "graph", Payload: gbuf.Bytes()},
		{Name: "featureset", Payload: fbuf.Bytes()},
	}, nil
}

// parseSnapshot decodes and structurally validates an ingest envelope.
// Every failure wraps store.ErrCorrupt (or ErrUnsupportedVersion) so
// LoadLatestVerified quarantines the generation and falls back to an
// older one.
func parseSnapshot(env *store.Envelope) (*ingestState, error) {
	names := []string{"meta", "ingestmeta", "graph", "featureset"}
	if len(env.Sections) != len(names) {
		return nil, fmt.Errorf("%w: ingest snapshot has %d sections, want %d", store.ErrCorrupt, len(env.Sections), len(names))
	}
	for i, want := range names {
		if env.Sections[i].Name != want {
			return nil, fmt.Errorf("%w: ingest snapshot section %d is %q, want %q", store.ErrCorrupt, i, env.Sections[i].Name, want)
		}
	}
	var kindMeta struct {
		Artifact string `json:"artifact"`
		Schema   int    `json:"schema"`
	}
	if err := json.Unmarshal(env.Sections[0].Payload, &kindMeta); err != nil {
		return nil, fmt.Errorf("%w: undecodable ingest meta: %v", store.ErrCorrupt, err)
	}
	if kindMeta.Artifact != ArtifactIngest {
		return nil, fmt.Errorf("%w: artifact %q, want %q", store.ErrCorrupt, kindMeta.Artifact, ArtifactIngest)
	}
	if kindMeta.Schema > ingestSchema {
		return nil, fmt.Errorf("%w: ingest schema %d, reader supports <= %d", store.ErrUnsupportedVersion, kindMeta.Schema, ingestSchema)
	}
	st := &ingestState{}
	if err := json.Unmarshal(env.Sections[1].Payload, &st.meta); err != nil {
		return nil, fmt.Errorf("%w: undecodable ingest watermark: %v", store.ErrCorrupt, err)
	}
	var err error
	if st.g, err = graph.ReadTSV(bytes.NewReader(env.Sections[2].Payload)); err != nil {
		return nil, fmt.Errorf("%w: ingest graph: %v", store.ErrCorrupt, err)
	}
	if st.fs, err = core.ReadFeatureSet(bytes.NewReader(env.Sections[3].Payload)); err != nil {
		return nil, fmt.Errorf("%w: ingest feature set: %v", store.ErrCorrupt, err)
	}
	// Cross-section invariants: the feature set must cover exactly the
	// graph's nodes, row i belonging to root i.
	if len(st.fs.Rows) != st.g.NumNodes() {
		return nil, fmt.Errorf("%w: ingest snapshot has %d feature rows for %d nodes", store.ErrCorrupt, len(st.fs.Rows), st.g.NumNodes())
	}
	for i, r := range st.fs.Roots {
		if r != int64(i) {
			return nil, fmt.Errorf("%w: ingest feature row %d claims root %d", store.ErrCorrupt, i, r)
		}
	}
	for id, seq := range st.meta.Batches {
		if id == "" || seq == 0 || seq > st.meta.LastSeq {
			return nil, fmt.Errorf("%w: ingest batch index entry %q -> %d outside watermark %d", store.ErrCorrupt, id, seq, st.meta.LastSeq)
		}
	}
	return st, nil
}

// loadSnapshot returns the newest ingest generation that passes full
// validation, quarantining failures; store.ErrNotFound when none
// exists.
func loadSnapshot(st *store.Store) (*ingestState, uint64, error) {
	var state *ingestState
	_, gen, err := st.LoadLatestVerified(ArtifactIngest, func(env *store.Envelope) error {
		parsed, err := parseSnapshot(env)
		if err != nil {
			return err
		}
		state = parsed
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return state, gen, nil
}
