package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDoubles(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: JitterNone}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffCapDoesNotOverflow(t *testing.T) {
	p := Policy{BaseDelay: time.Second, MaxDelay: time.Minute}
	if got := p.Backoff(200); got != time.Minute {
		t.Fatalf("Backoff(200) = %v, want the cap", got)
	}
}

// TestFullJitterBounds draws many delays and asserts every one lies in
// [0, Backoff(i)] — the full-jitter contract — and that the draws are
// not all identical (the jitter actually jitters).
func TestFullJitterBounds(t *testing.T) {
	p := Policy{
		BaseDelay: 80 * time.Millisecond,
		MaxDelay:  time.Second,
		Rand:      rand.New(rand.NewSource(1)),
	}
	for retry := 0; retry < 4; retry++ {
		ub := p.Backoff(retry)
		distinct := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := p.Delay(retry)
			if d < 0 || d > ub {
				t.Fatalf("Delay(%d) = %v outside [0, %v]", retry, d, ub)
			}
			distinct[d] = true
		}
		if len(distinct) < 2 {
			t.Errorf("Delay(%d): 200 draws produced %d distinct values; jitter is not jittering", retry, len(distinct))
		}
	}
}

func TestJitterNoneIsDeterministic(t *testing.T) {
	p := Policy{BaseDelay: 50 * time.Millisecond, Jitter: JitterNone}
	for i := 0; i < 3; i++ {
		if p.Delay(i) != p.Backoff(i) {
			t.Fatalf("JitterNone Delay(%d) = %v, want %v", i, p.Delay(i), p.Backoff(i))
		}
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		Jitter:      JitterNone,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	err := p.Do(context.Background(), func(context.Context, int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do: err %v after %d calls, want success on call 3", err, calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	sentinel := errors.New("boom")
	err := p.Do(context.Background(), func(context.Context, int) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("Do: err %v after %d calls, want sentinel after 3", err, calls)
	}
}

// TestDoCancelledMidSleep cancels the context while Do is sleeping and
// asserts Do returns promptly with both the context error and the last
// attempt error in the chain.
func TestDoCancelledMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 4, BaseDelay: time.Hour, Jitter: JitterNone}
	sentinel := errors.New("transient")
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(context.Context, int) error { return sentinel })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want context.Canceled in chain", err)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("err %v lost the last attempt error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation despite an hour-long backoff")
	}
}

func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{}.Do(ctx, func(context.Context, int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err %v after %d calls, want immediate cancellation with 0 calls", err, calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("bad request")
	err := Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}.
		Do(context.Background(), func(context.Context, int) error {
			calls++
			return Permanent(sentinel)
		})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err %v after %d calls, want sentinel after exactly 1", err, calls)
	}
	if !IsPermanent(err) {
		t.Fatal("permanence not preserved through the error chain")
	}
}

// TestDoHonoursServerHint asserts a Retry-After style hint larger than
// the computed backoff wins, and a smaller one is ignored.
func TestDoHonoursServerHint(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		Jitter:      JitterNone,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context, int) error {
		calls++
		switch calls {
		case 1:
			return WithHint(errors.New("shed"), 500*time.Millisecond) // > 10ms backoff
		case 2:
			return WithHint(errors.New("shed"), time.Microsecond) // < 20ms backoff
		}
		return nil
	})
	if len(slept) != 2 || slept[0] != 500*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("slept %v, want [500ms 20ms]", slept)
	}
}

func TestHintRoundTrip(t *testing.T) {
	if _, ok := Hint(errors.New("plain")); ok {
		t.Fatal("plain error reported a hint")
	}
	err := WithHint(errors.New("shed"), 3*time.Second)
	if hint, ok := Hint(err); !ok || hint != 3*time.Second {
		t.Fatalf("Hint = %v, %v", hint, ok)
	}
	if WithHint(nil, time.Second) != nil {
		t.Fatal("WithHint(nil) must stay nil")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

// TestDoMaxElapsed stops retrying once the elapsed budget cannot cover
// the next wait.
func TestDoMaxElapsed(t *testing.T) {
	p := Policy{
		MaxAttempts: 100,
		BaseDelay:   40 * time.Millisecond,
		Jitter:      JitterNone,
		MaxElapsed:  60 * time.Millisecond,
	}
	calls := 0
	start := time.Now()
	err := p.Do(context.Background(), func(context.Context, int) error { calls++; return errors.New("x") })
	if err == nil {
		t.Fatal("want failure")
	}
	if calls >= 5 {
		t.Fatalf("%d attempts despite a 60ms elapsed cap on 40ms backoffs", calls)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do ran %v, elapsed cap did not bound it", elapsed)
	}
}
