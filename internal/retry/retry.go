// Package retry is the shared bounded-retry policy used everywhere the
// system re-attempts failable work: reproduction stages, router calls to
// shard replicas, and any future client of a flaky dependency. One
// policy object answers "should I try again, and after how long?" with
// exponential backoff, optional full jitter (the AWS architecture-blog
// scheme: sleep uniformly in [0, cap]), hard caps on both attempt count
// and total elapsed time, and first-class support for server-supplied
// backoff hints (Retry-After) that override the computed delay.
//
// The package is context-aware: Do never sleeps past ctx cancellation,
// and a cancelled wait is reported as the context's error joined with
// the last attempt's error so callers keep the failure cause.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy describes one bounded retry schedule. The zero value is usable:
// every field has a conservative default.
type Policy struct {
	// MaxAttempts bounds the total number of attempts (first try
	// included); <= 0 selects 3.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry, doubling
	// (times Multiplier) per further retry; <= 0 selects 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter exponential growth; <= 0 selects 30s.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor; values <= 1 select 2.
	Multiplier float64
	// MaxElapsed bounds the total time spent across attempts and waits;
	// once exceeded no further retry is scheduled. <= 0 means unbounded.
	MaxElapsed time.Duration
	// Jitter selects the randomisation scheme applied to each delay.
	// JitterFull (the default) draws uniformly from [0, delay] —
	// decorrelating a fleet of clients that failed at the same instant —
	// while JitterNone keeps the deterministic doubling schedule
	// (reproduction stages want reproducible timing).
	Jitter Jitter

	// Rand is the jitter source; nil selects a process-wide seeded
	// source. Injectable for deterministic tests.
	Rand *rand.Rand
	// Sleep is the wait clock, replaceable in tests; nil selects a
	// context-aware timer sleep.
	Sleep func(context.Context, time.Duration) error
}

// Jitter selects how a computed backoff delay is randomised.
type Jitter int

const (
	// JitterFull sleeps uniformly in [0, delay] (AWS "full jitter").
	JitterFull Jitter = iota
	// JitterNone sleeps exactly the computed exponential delay.
	JitterNone
)

// globalRand is the default jitter source. rand.Rand is not safe for
// concurrent use, so the fallback is guarded; callers that care about
// contention inject their own source.
var (
	globalMu   sync.Mutex
	globalRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p Policy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return 30 * time.Second
	}
	return p.MaxDelay
}

func (p Policy) mult() float64 {
	if p.Multiplier <= 1 {
		return 2
	}
	return p.Multiplier
}

// Backoff returns the pre-jitter exponential delay before retry number
// retryIdx (0 = first retry): min(BaseDelay * Multiplier^retryIdx,
// MaxDelay).
func (p Policy) Backoff(retryIdx int) time.Duration {
	d := float64(p.base())
	capD := float64(p.cap())
	for i := 0; i < retryIdx; i++ {
		d *= p.mult()
		if d >= capD {
			return p.cap()
		}
	}
	if d >= capD {
		return p.cap()
	}
	return time.Duration(d)
}

// Delay returns the post-jitter wait before retry number retryIdx:
// Backoff(retryIdx) under JitterNone, a uniform draw from
// [0, Backoff(retryIdx)] under JitterFull.
func (p Policy) Delay(retryIdx int) time.Duration {
	d := p.Backoff(retryIdx)
	if p.Jitter == JitterNone || d <= 0 {
		return d
	}
	if p.Rand != nil {
		return time.Duration(p.Rand.Int63n(int64(d) + 1))
	}
	globalMu.Lock()
	defer globalMu.Unlock()
	return time.Duration(globalRand.Int63n(int64(d) + 1))
}

// hintError carries a server-supplied backoff hint alongside the cause.
type hintError struct {
	err  error
	hint time.Duration
}

func (h *hintError) Error() string { return h.err.Error() }
func (h *hintError) Unwrap() error { return h.err }

// WithHint wraps err with a server-supplied backoff hint (e.g. a parsed
// Retry-After header). Do waits max(hint, computed delay) before the
// next attempt, so a loaded server's explicit guidance is never
// undercut. A nil err returns nil.
func WithHint(err error, hint time.Duration) error {
	if err == nil {
		return nil
	}
	return &hintError{err: err, hint: hint}
}

// Hint extracts the backoff hint from an error chain, if any.
func Hint(err error) (time.Duration, bool) {
	var h *hintError
	if errors.As(err, &h) {
		return h.hint, true
	}
	return 0, false
}

// Permanent wraps err so Do stops immediately instead of retrying —
// for outcomes where another attempt cannot help (validation errors,
// budget exhaustion).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// IsPermanent reports whether err was marked Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// sleepCtx waits d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn up to MaxAttempts times, sleeping the jittered backoff
// (or a larger server hint) between attempts. It returns nil on the
// first success; otherwise the last attempt's error. Retries stop early
// when ctx is cancelled (the context error is joined with the last
// attempt error), when fn returns a Permanent error, or when MaxElapsed
// is exhausted. fn receives the attempt number (1-based) for logging.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context, attempt int) error) error {
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= p.attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return joinCtx(err, lastErr)
		}
		lastErr = fn(ctx, attempt)
		if lastErr == nil {
			return nil
		}
		if IsPermanent(lastErr) || attempt == p.attempts() {
			return lastErr
		}
		d := p.Delay(attempt - 1)
		if hint, ok := Hint(lastErr); ok && hint > d {
			d = hint
		}
		if p.MaxElapsed > 0 && time.Since(start)+d > p.MaxElapsed {
			return lastErr
		}
		if err := sleep(ctx, d); err != nil {
			return joinCtx(err, lastErr)
		}
	}
	return lastErr
}

// joinCtx pairs a context cancellation with the failure it interrupted.
func joinCtx(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return errors.Join(ctxErr, lastErr)
}
