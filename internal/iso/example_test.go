package iso_test

import (
	"fmt"

	"hsgf/internal/iso"
)

func ExampleAudit() {
	// Re-derive the paper's §3.1 bound for label connectivity with
	// loops: the encoding stays collision-free through 4 edges and first
	// collides at 5.
	for e := 4; e <= 5; e++ {
		r := iso.Audit(e, 1, false)
		fmt.Printf("e=%d: %d graphs, %d encodings, unique=%v\n",
			e, r.Graphs, r.Encodings, r.Unique())
	}
	// Output:
	// e=4: 5 graphs, 5 encodings, unique=true
	// e=5: 12 graphs, 10 encodings, unique=false
}

func ExampleIsomorphic() {
	// Two labelled paths: a-b-a versus b-a-a.
	var p1 iso.Small
	p1.AddNode(0)
	p1.AddNode(1)
	p1.AddNode(0)
	p1.AddEdge(0, 1)
	p1.AddEdge(1, 2)

	var p2 iso.Small
	p2.AddNode(1)
	p2.AddNode(0)
	p2.AddNode(0)
	p2.AddEdge(0, 1)
	p2.AddEdge(1, 2)

	fmt.Println(iso.Isomorphic(p1, p2))
	// Output:
	// false
}
