// Package iso provides exact isomorphism testing and exhaustive
// enumeration for small labelled graphs. It is the audit machinery behind
// the paper's encoding-uniqueness claims (§3.1): the characteristic
// sequence distinguishes heterogeneous subgraphs up to isomorphism as long
// as they have at most emax = 5 edges when the label connectivity graph is
// loop-free, and at most emax = 4 edges otherwise. Package core relies on
// these bounds; this package re-derives them from first principles by
// enumerating every non-isomorphic labelled graph and checking encodings
// pairwise.
package iso

import (
	"fmt"
	"sort"
	"strings"
)

// MaxNodes is the largest supported graph size. Subgraphs with e <= 7
// edges have at most 8 nodes.
const MaxNodes = 8

// Small is a small undirected labelled graph with adjacency stored as one
// bitmask row per node. The zero value is the empty graph.
type Small struct {
	N      int            // number of nodes
	Labels [MaxNodes]int8 // Labels[i] is the label of node i
	Adj    [MaxNodes]byte // Adj[i] has bit j set iff edge i-j exists
}

// AddNode appends a node with the given label and returns its index.
func (g *Small) AddNode(label int) int {
	if g.N >= MaxNodes {
		panic("iso: graph too large")
	}
	g.Labels[g.N] = int8(label)
	g.N++
	return g.N - 1
}

// AddEdge inserts the undirected edge i-j. Self loops are not allowed.
func (g *Small) AddEdge(i, j int) {
	if i == j {
		panic("iso: self loop")
	}
	g.Adj[i] |= 1 << uint(j)
	g.Adj[j] |= 1 << uint(i)
}

// HasEdge reports whether the edge i-j exists.
func (g Small) HasEdge(i, j int) bool {
	return g.Adj[i]&(1<<uint(j)) != 0
}

// NumEdges returns the number of undirected edges.
func (g Small) NumEdges() int {
	n := 0
	for i := 0; i < g.N; i++ {
		n += popcount(g.Adj[i])
	}
	return n / 2
}

// Degree returns the degree of node i.
func (g Small) Degree(i int) int { return popcount(g.Adj[i]) }

func popcount(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// Connected reports whether the graph is connected (the empty graph and
// single nodes count as connected).
func (g Small) Connected() bool {
	if g.N <= 1 {
		return true
	}
	var visited byte = 1
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := 0; w < g.N; w++ {
			bit := byte(1) << uint(w)
			if g.Adj[v]&bit != 0 && visited&bit == 0 {
				visited |= bit
				queue = append(queue, w)
			}
		}
	}
	return popcount(visited) == g.N
}

// HasSameLabelEdge reports whether any edge connects two nodes with equal
// labels — i.e. whether the graph induces a self loop in the label
// connectivity graph.
func (g Small) HasSameLabelEdge() bool {
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.HasEdge(i, j) && g.Labels[i] == g.Labels[j] {
				return true
			}
		}
	}
	return false
}

// MaxLabel returns the largest label value used (or -1 for the empty
// graph).
func (g Small) MaxLabel() int {
	max := -1
	for i := 0; i < g.N; i++ {
		if int(g.Labels[i]) > max {
			max = int(g.Labels[i])
		}
	}
	return max
}

// permute returns the graph relabelled by node permutation p: node i of
// the result corresponds to node p[i] of g.
func (g Small) permute(p []int) Small {
	var out Small
	out.N = g.N
	for i := 0; i < g.N; i++ {
		out.Labels[i] = g.Labels[p[i]]
	}
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.HasEdge(p[i], p[j]) {
				out.AddEdge(i, j)
			}
		}
	}
	return out
}

// certBytes renders the graph as a fixed comparison certificate: label
// vector followed by the upper-triangle adjacency bits.
func (g Small) certBytes() []byte {
	out := make([]byte, 0, g.N+g.N*g.N/2)
	for i := 0; i < g.N; i++ {
		out = append(out, byte(g.Labels[i]))
	}
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.HasEdge(i, j) {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// Canonical returns a canonical certificate: the lexicographically
// smallest certBytes over all node permutations. Two labelled graphs are
// isomorphic iff their canonical certificates are equal.
func (g Small) Canonical() string {
	best := ""
	perm := make([]int, g.N)
	for i := range perm {
		perm[i] = i
	}
	forEachPermutation(perm, func(p []int) {
		c := string(g.permute(p).certBytes())
		if best == "" || c < best {
			best = c
		}
	})
	return best
}

// Isomorphic reports whether a and b are isomorphic as labelled graphs:
// there is an edge-preserving bijection of nodes that also preserves
// labels.
func Isomorphic(a, b Small) bool {
	if a.N != b.N || a.NumEdges() != b.NumEdges() {
		return false
	}
	// Cheap invariant: multiset of (label, degree).
	inv := func(g Small) string {
		xs := make([]string, g.N)
		for i := 0; i < g.N; i++ {
			xs[i] = fmt.Sprintf("%d:%d", g.Labels[i], g.Degree(i))
		}
		sort.Strings(xs)
		return strings.Join(xs, ",")
	}
	if inv(a) != inv(b) {
		return false
	}
	target := string(b.certBytes())
	found := false
	perm := make([]int, a.N)
	for i := range perm {
		perm[i] = i
	}
	forEachPermutation(perm, func(p []int) {
		if found {
			return
		}
		if string(a.permute(p).certBytes()) == target {
			found = true
		}
	})
	return found
}

// forEachPermutation invokes fn with every permutation of p (Heap's
// algorithm; p is mutated during iteration and restored afterwards only up
// to permutation).
func forEachPermutation(p []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	if len(p) == 0 {
		return
	}
	rec(len(p))
}

// Encoding returns the canonical characteristic sequence of g over k label
// slots, rendered as a comparison string: per-node rows (label, typed
// degree counts), sorted descending. This mirrors core.Sequence for the
// audit without importing the census machinery.
func Encoding(g Small, k int) string {
	rows := make([][]int, g.N)
	for i := 0; i < g.N; i++ {
		row := make([]int, k+1)
		row[0] = int(g.Labels[i])
		for j := 0; j < g.N; j++ {
			if g.HasEdge(i, j) {
				row[1+int(g.Labels[j])]++
			}
		}
		rows[i] = row
	}
	sort.Slice(rows, func(a, b int) bool {
		for x := range rows[a] {
			if rows[a][x] != rows[b][x] {
				return rows[a][x] > rows[b][x]
			}
		}
		return false
	})
	var b strings.Builder
	for _, row := range rows {
		for _, v := range row {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	return b.String()
}
