package iso

import (
	"math/rand"
	"testing"
)

func path(n int, labels ...int) Small {
	var g Small
	for i := 0; i < n; i++ {
		l := 0
		if i < len(labels) {
			l = labels[i]
		}
		g.AddNode(l)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestSmallBasics(t *testing.T) {
	g := path(3)
	if g.N != 3 || g.NumEdges() != 2 {
		t.Fatalf("path(3): %d nodes %d edges", g.N, g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("edge queries wrong")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Error("degrees wrong")
	}
	if !g.Connected() {
		t.Error("path must be connected")
	}
	var disc Small
	disc.AddNode(0)
	disc.AddNode(0)
	if disc.Connected() {
		t.Error("two isolated nodes are not connected")
	}
	var empty Small
	if !empty.Connected() {
		t.Error("empty graph counts as connected")
	}
}

func TestHasSameLabelEdge(t *testing.T) {
	g := path(3, 0, 1, 0)
	if g.HasSameLabelEdge() {
		t.Error("0-1-0 path has no same-label edge")
	}
	h := path(3, 0, 0, 1)
	if !h.HasSameLabelEdge() {
		t.Error("0-0-1 path has a same-label edge")
	}
}

func TestIsomorphicBasic(t *testing.T) {
	// Same path, different node orders.
	a := path(4)
	var b Small
	for i := 0; i < 4; i++ {
		b.AddNode(0)
	}
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	b.AddEdge(3, 1)
	if !Isomorphic(a, b) {
		t.Error("reordered path must be isomorphic")
	}

	// Path vs star on 4 nodes: same node and edge count, different shape.
	var star Small
	for i := 0; i < 4; i++ {
		star.AddNode(0)
	}
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if Isomorphic(a, star) {
		t.Error("path and star are not isomorphic")
	}

	// Labels must be preserved.
	c := path(3, 0, 1, 0)
	d := path(3, 1, 0, 0)
	if Isomorphic(c, d) {
		t.Error("0-1-0 and 1-0-0 paths differ as labelled graphs")
	}
	e := path(3, 0, 1, 0)
	if !Isomorphic(c, e) {
		t.Error("identical labelled paths must be isomorphic")
	}
}

func TestCanonicalAgreesWithIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		var a Small
		for i := 0; i < n; i++ {
			a.AddNode(rng.Intn(2))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					a.AddEdge(i, j)
				}
			}
		}
		// A random permutation of a.
		perm := rng.Perm(n)
		b := a.permute(perm)
		if a.Canonical() != b.Canonical() {
			t.Fatalf("canonical differs under permutation: %+v perm %v", a, perm)
		}
		if !Isomorphic(a, b) {
			t.Fatalf("permuted graph not isomorphic: %+v perm %v", a, perm)
		}
		// A random different graph usually has a different certificate;
		// verify consistency of the two predicates instead of difference.
		var c Small
		for i := 0; i < n; i++ {
			c.AddNode(rng.Intn(2))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					c.AddEdge(i, j)
				}
			}
		}
		if (a.Canonical() == c.Canonical()) != Isomorphic(a, c) {
			t.Fatalf("canonical equality disagrees with isomorphism: %+v vs %+v", a, c)
		}
	}
}

func TestEncodingMatchesDegreeSequenceSingleLabel(t *testing.T) {
	// With one label the encoding reduces to the degree sequence.
	p := path(4)
	var star Small
	for i := 0; i < 4; i++ {
		star.AddNode(0)
	}
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if Encoding(p, 1) == Encoding(star, 1) {
		t.Error("P4 and K1,3 have different degree sequences")
	}
	// C4-with-pendant vs triangle-with-P2-tail: the classic 5-edge
	// degree-sequence collision (3,2,2,2,1).
	var tadpole4 Small // C4 + pendant
	for i := 0; i < 5; i++ {
		tadpole4.AddNode(0)
	}
	tadpole4.AddEdge(0, 1)
	tadpole4.AddEdge(1, 2)
	tadpole4.AddEdge(2, 3)
	tadpole4.AddEdge(3, 0)
	tadpole4.AddEdge(0, 4)
	var tadpole3 Small // C3 + path of length 2
	for i := 0; i < 5; i++ {
		tadpole3.AddNode(0)
	}
	tadpole3.AddEdge(0, 1)
	tadpole3.AddEdge(1, 2)
	tadpole3.AddEdge(2, 0)
	tadpole3.AddEdge(0, 3)
	tadpole3.AddEdge(3, 4)
	if Isomorphic(tadpole4, tadpole3) {
		t.Fatal("tadpoles should not be isomorphic")
	}
	if Encoding(tadpole4, 1) != Encoding(tadpole3, 1) {
		t.Error("the two 5-edge tadpoles share a degree sequence and must collide")
	}
}

func TestEnumerateConnectedUnlabeledCounts(t *testing.T) {
	// Known counts of non-isomorphic connected graphs with e edges
	// (any number of nodes): e=1: 1, e=2: 1, e=3: 3, e=4: 5, e=5: 12.
	// (The e<=4 values are easy to verify by hand: with 3 edges the
	// connected graphs are P4, K1,3 and C3.)
	want := map[int]int{1: 1, 2: 1, 3: 3, 4: 5, 5: 12}
	for e, n := range want {
		got := EnumerateConnectedUnlabeled(e)
		if len(got) != n {
			t.Errorf("e=%d: %d graphs, want %d", e, len(got), n)
		}
		for _, g := range got {
			if g.NumEdges() != e {
				t.Errorf("e=%d: graph with %d edges generated", e, g.NumEdges())
			}
			if !g.Connected() {
				t.Errorf("e=%d: disconnected graph generated", e)
			}
		}
		// Pairwise non-isomorphic.
		for i := 0; i < len(got); i++ {
			for j := i + 1; j < len(got); j++ {
				if Isomorphic(got[i], got[j]) {
					t.Errorf("e=%d: graphs %d and %d isomorphic", e, i, j)
				}
			}
		}
	}
}

func TestEnumerateConnectedLabeledLoopFree(t *testing.T) {
	// One edge, two labels, loop-free: only the 0-1 edge.
	got := EnumerateConnectedLabeled(1, 2, true)
	if len(got) != 1 {
		t.Fatalf("loop-free 1-edge 2-label graphs: %d, want 1", len(got))
	}
	// Allowing loops adds 0-0 and 1-1.
	all := EnumerateConnectedLabeled(1, 2, false)
	if len(all) != 3 {
		t.Fatalf("1-edge 2-label graphs: %d, want 3", len(all))
	}
	for _, g := range all {
		if !g.Connected() || g.NumEdges() != 1 {
			t.Error("bad enumerated graph")
		}
	}
}

func TestAuditPaperBounds(t *testing.T) {
	// With same-label edges allowed (label connectivity has loops), the
	// encoding is unique through emax = 4 and first collides at 5 edges.
	maxLoopy, results := MaxUniqueEdges(5, 1, false)
	if maxLoopy != 4 {
		for _, r := range results {
			t.Logf("e=%d: graphs=%d encodings=%d collisions=%d", r.Edges, r.Graphs, r.Encodings, len(r.Collisions))
		}
		t.Fatalf("loopy bound = %d, want 4", maxLoopy)
	}
	final := results[len(results)-1]
	for _, col := range final.Collisions {
		if Isomorphic(col.A, col.B) {
			t.Error("reported collision pair is isomorphic")
		}
		if Encoding(col.A, 1) != Encoding(col.B, 1) {
			t.Error("reported collision pair has different encodings")
		}
	}
}

func TestAuditLoopFreeNoCollisionThroughFive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive audit is slow; run without -short")
	}
	// Loop-free label connectivity: unique through emax = 5.
	max, _ := MaxUniqueEdges(5, 2, true)
	if max != 5 {
		t.Fatalf("loop-free bound through 5 edges = %d, want 5", max)
	}
}

func TestAuditLoopFreeCollidesAtSix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive audit is slow; run without -short")
	}
	r := Audit(6, 2, true)
	if r.Unique() {
		t.Fatal("expected loop-free collisions at 6 edges")
	}
	col := r.Collisions[0]
	if Isomorphic(col.A, col.B) || Encoding(col.A, 2) != Encoding(col.B, 2) {
		t.Error("bad collision witness")
	}
}
