package graph

import (
	"math/rand"
	"testing"
)

func TestInduced(t *testing.T) {
	// Triangle a-b-c plus pendant d attached to c.
	b := NewBuilder()
	a, _ := b.AddNode("x")
	bb, _ := b.AddNode("y")
	c, _ := b.AddNode("x")
	d, _ := b.AddNode("z")
	b.AddEdge(a, bb)
	b.AddEdge(bb, c)
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	g := b.MustBuild()

	sub, orig := Induced(g, []NodeID{a, bb, c})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle = %d nodes %d edges, want 3/3", sub.NumNodes(), sub.NumEdges())
	}
	if len(orig) != 3 {
		t.Fatalf("mapping length %d, want 3", len(orig))
	}
	for i, ov := range orig {
		if sub.Label(NodeID(i)) != g.Label(ov) {
			t.Errorf("label mismatch at induced node %d", i)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}

	// Duplicates collapse.
	sub2, _ := Induced(g, []NodeID{a, a, bb, bb})
	if sub2.NumNodes() != 2 || sub2.NumEdges() != 1 {
		t.Errorf("induced with duplicates = %d/%d, want 2/1", sub2.NumNodes(), sub2.NumEdges())
	}
}

func TestKHop(t *testing.T) {
	// Path 0-1-2-3-4.
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("a")
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.MustBuild()

	for _, tc := range []struct {
		k    int
		want int
	}{{-1, 0}, {0, 1}, {1, 2}, {2, 3}, {4, 5}, {10, 5}} {
		got := KHop(g, 0, tc.k)
		if len(got) != tc.want {
			t.Errorf("KHop(0,%d) = %d nodes, want %d", tc.k, len(got), tc.want)
		}
	}
	// From the middle, 1 hop reaches 3 nodes.
	if got := KHop(g, 2, 1); len(got) != 3 {
		t.Errorf("KHop(2,1) = %d nodes, want 3", len(got))
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 7; i++ {
		b.AddNode("a")
	}
	// Component {0,1,2}, component {3,4}, isolates 5, 6.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	comps := ConnectedComponents(g)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d,%d, want 3,2", len(comps[0]), len(comps[1]))
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 7 {
		t.Errorf("components cover %d nodes, want 7", total)
	}
}

func TestDegreePercentile(t *testing.T) {
	// Star: hub degree 9, nine leaves degree 1.
	b := NewBuilder()
	hub, _ := b.AddNode("h")
	for i := 0; i < 9; i++ {
		leaf, _ := b.AddNode("l")
		b.AddEdge(hub, leaf)
	}
	g := b.MustBuild()

	if d := DegreePercentile(g, 0.90); d != 1 {
		t.Errorf("p90 = %d, want 1", d)
	}
	if d := DegreePercentile(g, 1.0); d != 9 {
		t.Errorf("p100 = %d, want 9", d)
	}
	if d := DegreePercentile(g, 0.0); d != 1 {
		t.Errorf("p0 = %d, want 1 (min degree)", d)
	}
	empty := NewBuilder().MustBuild()
	if d := DegreePercentile(empty, 0.5); d != 0 {
		t.Errorf("empty p50 = %d, want 0", d)
	}
}

func TestDegreePercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 3, 0.1)
	prev := -1
	for p := 0.1; p <= 1.0; p += 0.1 {
		d := DegreePercentile(g, p)
		if d < prev {
			t.Fatalf("percentile not monotone at p=%.1f: %d < %d", p, d, prev)
		}
		prev = d
	}
}

func TestLabelConnectivity(t *testing.T) {
	// Publication micro-network from Figure 1A: institutions I, authors A,
	// papers P, with I-A, A-P and P-P (citation) edges.
	b := NewBuilderWithAlphabet(MustAlphabet("I", "A", "P"))
	i1, _ := b.AddNode("I")
	a1, _ := b.AddNode("A")
	a2, _ := b.AddNode("A")
	p1, _ := b.AddNode("P")
	p2, _ := b.AddNode("P")
	b.AddEdge(i1, a1)
	b.AddEdge(i1, a2)
	b.AddEdge(a1, p1)
	b.AddEdge(a2, p1)
	b.AddEdge(p1, p2)
	g := b.MustBuild()

	lc := LabelConnectivityOf(g)
	I, A, P := Label(0), Label(1), Label(2)
	if !lc.Connected(I, A) || !lc.Connected(A, I) {
		t.Error("I-A must be connected")
	}
	if !lc.Connected(A, P) {
		t.Error("A-P must be connected")
	}
	if lc.Connected(I, P) {
		t.Error("I-P must not be connected")
	}
	if !lc.Connected(P, P) {
		t.Error("P-P self loop expected (citations)")
	}
	if !lc.HasSelfLoop() {
		t.Error("HasSelfLoop should be true")
	}
	if lc.EdgeCount(I, A) != 2 {
		t.Errorf("EdgeCount(I,A) = %d, want 2", lc.EdgeCount(I, A))
	}
	if lc.EdgeCount(P, P) != 1 {
		t.Errorf("EdgeCount(P,P) = %d, want 1", lc.EdgeCount(P, P))
	}
	if lc.NumConnections() != 3 {
		t.Errorf("NumConnections = %d, want 3 (I-A, A-P, P-P)", lc.NumConnections())
	}
	if lc.NumLabels() != 3 {
		t.Errorf("NumLabels = %d, want 3", lc.NumLabels())
	}

	// A star network (IMDB-like) has no self loops.
	b2 := NewBuilderWithAlphabet(MustAlphabet("M", "A"))
	m, _ := b2.AddNode("M")
	x, _ := b2.AddNode("A")
	b2.AddEdge(m, x)
	lc2 := LabelConnectivityOf(b2.MustBuild())
	if lc2.HasSelfLoop() {
		t.Error("star network must have no self loops")
	}
}
