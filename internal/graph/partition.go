package graph

import (
	"fmt"
	"sort"
)

// This file implements the root-based shard partitioner of the serving
// tier. The census of a root only ever touches the root's
// distance-<=emax neighbourhood — an enumerated subgraph has at most
// emax edges, so every node it contains lies within emax hops of the
// root — which means the graph partitions cleanly by root: a shard that
// owns a set of roots plus the halo of their distance-<=HaloDepth
// neighbourhoods answers census requests for those roots with exactly
// the counts the full graph would produce, and no request ever crosses
// a shard boundary.

// RootShard assigns a root to one of nShards shards by rendezvous
// (highest-random-weight) hashing: the shard whose keyed hash of the
// root is largest wins. Rendezvous hashing gives the consistency
// property the routing tier needs — when the shard count changes, only
// roots whose winning shard disappeared move — without any ring state
// to persist or synchronise; the partitioner and the router just call
// the same pure function. nShards must be >= 1.
func RootShard(root NodeID, nShards int) int {
	if nShards <= 1 {
		return 0
	}
	best, bestW := 0, rendezvousWeight(uint64(root), 0)
	for s := 1; s < nShards; s++ {
		if w := rendezvousWeight(uint64(root), uint64(s)); w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// rendezvousWeight mixes (root, shard) through a splitmix64-style
// finaliser — cheap, stateless and uniform enough that shard loads stay
// within a few percent of each other on dense ID spaces.
func rendezvousWeight(root, shard uint64) uint64 {
	x := root*0x9E3779B97F4A7C15 ^ shard*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ShardPlan is one shard's self-contained serving universe: the induced
// subgraph over the shard's owned roots plus their halo, and the ID
// mappings the router needs to translate between global and shard-local
// node IDs.
type ShardPlan struct {
	// Shard is this plan's index in [0, NumShards).
	Shard int
	// Graph is the induced subgraph over owned roots + halo. Local node
	// IDs are dense; LocalToGlobal maps them back.
	Graph *Graph
	// OwnedRoots lists the global IDs of the roots this shard answers
	// for, ascending. Halo nodes are present in Graph but never owned.
	OwnedRoots []NodeID
	// LocalToGlobal maps shard-local node IDs to global IDs (ascending,
	// because Induced sorts its node set).
	LocalToGlobal []NodeID
}

// GlobalToLocal returns the inverse mapping of LocalToGlobal. Nodes not
// present in the shard are absent from the map.
func (p *ShardPlan) GlobalToLocal() map[NodeID]NodeID {
	m := make(map[NodeID]NodeID, len(p.LocalToGlobal))
	for local, global := range p.LocalToGlobal {
		m[global] = NodeID(local)
	}
	return m
}

// PartitionConfig tunes PartitionByRoot.
type PartitionConfig struct {
	// NumShards is the shard count; must be >= 1.
	NumShards int
	// HaloDepth is the neighbourhood radius materialised around every
	// owned root. For exact census equivalence it must be >= the serving
	// emax (Options.MaxEdges); when dmax pruning (Options.MaxDegree) is
	// in use it must be >= emax+1, so that every node that can enter a
	// subgraph keeps its full-graph degree inside the shard. Must be
	// >= 1.
	HaloDepth int
}

// PartitionByRoot splits g into NumShards self-contained shard
// universes: every node is owned by exactly one shard (RootShard), and
// each shard's graph is the subgraph induced by its owned roots plus
// all nodes within HaloDepth hops of any of them. The union of
// OwnedRoots across shards is exactly the node set of g; halo nodes are
// duplicated across shards by design — that duplication is what keeps
// census extraction local.
func PartitionByRoot(g *Graph, cfg PartitionConfig) ([]*ShardPlan, error) {
	if cfg.NumShards < 1 {
		return nil, fmt.Errorf("graph: NumShards must be >= 1, got %d", cfg.NumShards)
	}
	if cfg.HaloDepth < 1 {
		return nil, fmt.Errorf("graph: HaloDepth must be >= 1, got %d", cfg.HaloDepth)
	}
	n := g.NumNodes()
	owned := make([][]NodeID, cfg.NumShards)
	for v := NodeID(0); int(v) < n; v++ {
		s := RootShard(v, cfg.NumShards)
		owned[s] = append(owned[s], v)
	}

	plans := make([]*ShardPlan, cfg.NumShards)
	// visited is reused across shards as an epoch array: visited[v] == epoch
	// marks v as collected for the current shard without a per-shard
	// clear of the whole array.
	visited := make([]int, n)
	for i := range visited {
		visited[i] = -1
	}
	frontier := make([]NodeID, 0, 1024)
	next := make([]NodeID, 0, 1024)
	for s := 0; s < cfg.NumShards; s++ {
		members := make([]NodeID, 0, len(owned[s])*2)
		frontier = frontier[:0]
		for _, r := range owned[s] {
			visited[r] = s
			members = append(members, r)
			frontier = append(frontier, r)
		}
		// Multi-source BFS from all owned roots at once: a node at
		// distance d from its nearest owned root is collected in round d.
		for depth := 0; depth < cfg.HaloDepth && len(frontier) > 0; depth++ {
			next = next[:0]
			for _, u := range frontier {
				for _, w := range g.Neighbors(u) {
					if visited[w] != s {
						visited[w] = s
						members = append(members, w)
						next = append(next, w)
					}
				}
			}
			frontier, next = next, frontier
		}
		sub, localToGlobal := Induced(g, members)
		plans[s] = &ShardPlan{
			Shard:         s,
			Graph:         sub,
			OwnedRoots:    owned[s],
			LocalToGlobal: localToGlobal,
		}
	}
	return plans, nil
}

// ValidatePartition cross-checks a set of shard plans against the graph
// they were cut from: every node owned exactly once, ownership matching
// RootShard, and every owned root present in its shard's graph. It is
// the partitioner's self-audit before shard snapshots are written.
func ValidatePartition(g *Graph, plans []*ShardPlan) error {
	n := g.NumNodes()
	seen := make([]bool, n)
	for _, p := range plans {
		g2l := p.GlobalToLocal()
		if !sort.SliceIsSorted(p.OwnedRoots, func(i, j int) bool { return p.OwnedRoots[i] < p.OwnedRoots[j] }) {
			return fmt.Errorf("graph: shard %d owned roots not ascending", p.Shard)
		}
		for _, r := range p.OwnedRoots {
			if int(r) < 0 || int(r) >= n {
				return fmt.Errorf("graph: shard %d owns out-of-range root %d", p.Shard, r)
			}
			if seen[r] {
				return fmt.Errorf("graph: root %d owned by more than one shard", r)
			}
			seen[r] = true
			if want := RootShard(r, len(plans)); want != p.Shard {
				return fmt.Errorf("graph: root %d owned by shard %d, RootShard says %d", r, p.Shard, want)
			}
			local, ok := g2l[r]
			if !ok {
				return fmt.Errorf("graph: shard %d owns root %d but its graph does not contain it", p.Shard, r)
			}
			if p.Graph.Label(local) != g.Label(r) {
				return fmt.Errorf("graph: root %d label mismatch in shard %d", r, p.Shard)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("graph: node %d owned by no shard", v)
		}
	}
	return nil
}
