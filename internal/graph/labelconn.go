package graph

// LabelConnectivity is the label connectivity graph of a heterogeneous
// network (paper §3, Figure 1A): all nodes sharing a label are aggregated
// into one super-node, and two labels are connected iff the network contains
// at least one edge between nodes of those labels. The connectivity graph
// has a self loop at label l iff the network contains an edge between two
// nodes that both carry l.
type LabelConnectivity struct {
	numLabels int
	counts    []int // flattened L×L matrix of edge counts, symmetric
}

// LabelConnectivityOf computes the label connectivity graph of g.
func LabelConnectivityOf(g *Graph) *LabelConnectivity {
	k := g.NumLabels()
	lc := &LabelConnectivity{numLabels: k, counts: make([]int, k*k)}
	g.Edges(func(u, v NodeID) bool {
		lu, lv := g.Label(u), g.Label(v)
		lc.counts[int(lu)*k+int(lv)]++
		if lu != lv {
			lc.counts[int(lv)*k+int(lu)]++
		}
		return true
	})
	return lc
}

// NumLabels returns the number of labels (super-nodes).
func (lc *LabelConnectivity) NumLabels() int { return lc.numLabels }

// EdgeCount returns the number of network edges between labels a and b
// (between two a-labelled nodes when a == b).
func (lc *LabelConnectivity) EdgeCount(a, b Label) int {
	return lc.counts[int(a)*lc.numLabels+int(b)]
}

// Connected reports whether the connectivity graph has an edge between
// labels a and b.
func (lc *LabelConnectivity) Connected(a, b Label) bool {
	return lc.EdgeCount(a, b) > 0
}

// HasSelfLoop reports whether any label has a self loop, i.e. whether the
// network contains an edge between two same-labelled nodes. The paper's
// encoding-uniqueness bound depends on this property: emax = 5 without
// loops, emax = 4 with loops (§3.1).
func (lc *LabelConnectivity) HasSelfLoop() bool {
	for l := 0; l < lc.numLabels; l++ {
		if lc.counts[l*lc.numLabels+l] > 0 {
			return true
		}
	}
	return false
}

// NumConnections returns the number of distinct label pairs (including self
// loops) that are connected.
func (lc *LabelConnectivity) NumConnections() int {
	n := 0
	for a := 0; a < lc.numLabels; a++ {
		for b := a; b < lc.numLabels; b++ {
			if lc.counts[a*lc.numLabels+b] > 0 {
				n++
			}
		}
	}
	return n
}
