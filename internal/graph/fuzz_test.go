package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV checks that arbitrary input never panics the parser and
// that anything it accepts is a valid graph that round-trips.
func FuzzReadTSV(f *testing.F) {
	f.Add("n\tauthor\nn\tpaper\ne\t0\t1\n")
	f.Add("# comment\nn\ta\tnamed node\n\nn\ta\ne\t0\t1\n")
	f.Add("e\t0\t1\n")
	f.Add("n\t\n")
	f.Add("x\n")
	f.Add(strings.Repeat("n\ta\n", 50) + "e\t0\t49\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to serialise: %v", err)
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}
