package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV checks that arbitrary input never panics the parser and
// that anything it accepts is a valid graph that round-trips.
func FuzzReadTSV(f *testing.F) {
	f.Add("n\tauthor\nn\tpaper\ne\t0\t1\n")
	f.Add("# comment\nn\ta\tnamed node\n\nn\ta\ne\t0\t1\n")
	f.Add("e\t0\t1\n")
	f.Add("n\t\n")
	f.Add("x\n")
	f.Add(strings.Repeat("n\ta\n", 50) + "e\t0\t49\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to serialise: %v", err)
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}

// FuzzDecodeGraphBinary checks that arbitrary bytes never panic the
// binary decoder and that anything it accepts is safe to traverse and
// re-encodes to a decodable payload.
func FuzzDecodeGraphBinary(f *testing.F) {
	// Seed with real encodings so the fuzzer starts inside the format.
	b := NewBuilderWithAlphabet(MustAlphabet("author", "paper"))
	for i := 0; i < 8; i++ {
		b.AddLabeledNode(Label(i % 2))
	}
	b.SetName(3, "named")
	for _, e := range [][2]NodeID{{0, 1}, {0, 3}, {2, 5}, {4, 7}, {1, 6}} {
		b.AddEdge(e[0], e[1])
	}
	seedGraph := b.MustBuild()
	if payload, err := EncodeBinary(seedGraph, 0); err == nil {
		f.Add(payload)
		f.Add(payload[:len(payload)/2])
	}
	if payload, err := EncodeBinary(NewBuilder().MustBuild(), 0); err == nil {
		f.Add(payload)
	}
	f.Add([]byte(binMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := DecodeBinary(data, false)
		if err != nil {
			return
		}
		// Accepted payloads must be safe to traverse in full...
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			g.Label(v)
			g.Name(v)
			g.Neighbors(v)
			g.IncidentEdges(v)
			g.NeighborLabelRuns(v)
		}
		g.Edges(func(u, v NodeID) bool { return true })
		// ...and survive a re-encode/decode cycle unchanged in shape.
		payload, err := EncodeBinary(g, 0)
		if err != nil {
			t.Fatalf("accepted graph fails to re-encode: %v", err)
		}
		g2, _, err := DecodeBinary(payload, false)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() || g2.NumLabels() != g.NumLabels() {
			t.Fatalf("re-encode changed shape: %v vs %v", g2, g)
		}
	})
}
