package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// failAfterWriter accepts the first n bytes and then fails every write
// with errDiskFull, simulating a device filling up mid-export.
var errDiskFull = errors.New("synthetic disk full")

type failAfterWriter struct {
	remaining int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errDiskFull
	}
	if len(p) <= w.remaining {
		w.remaining -= len(p)
		return len(p), nil
	}
	n := w.remaining
	w.remaining = 0
	return n, errDiskFull
}

// TestWriteTSVSurfacesWriteErrors sweeps the failure point across the
// whole output; every failure must surface errDiskFull wrapped with
// graph-level context, never a silent success.
func TestWriteTSVSurfacesWriteErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomSnapGraph(t, rng, 200)
	var full strings.Builder
	if err := WriteTSV(&full, g); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	for _, cut := range []int{0, 1, total / 4, total / 2, total - 1} {
		err := WriteTSV(&failAfterWriter{remaining: cut}, g)
		if err == nil {
			t.Fatalf("cut=%d: write into failing writer succeeded", cut)
		}
		if !errors.Is(err, errDiskFull) {
			t.Fatalf("cut=%d: error %v does not wrap the writer failure", cut, err)
		}
		if !strings.HasPrefix(err.Error(), "graph: ") {
			t.Fatalf("cut=%d: error %q lacks graph context", cut, err)
		}
	}
}

// failAfterReader yields the first n bytes of src and then fails,
// simulating an input stream dying mid-parse.
type failAfterReader struct {
	src       string
	remaining int
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, errDiskFull
	}
	n := copy(p, r.src[:r.remaining])
	r.src = r.src[n:]
	r.remaining -= n
	return n, nil
}

// TestReadTSVSurfacesScannerError pins satellite (a): a stream failure
// mid-parse must be reported as an input-stream error wrapping the
// underlying cause, not swallowed into a truncated-but-valid graph.
func TestReadTSVSurfacesScannerError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomSnapGraph(t, rng, 50)
	var buf strings.Builder
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	_, err := ReadTSV(&failAfterReader{src: text, remaining: len(text) / 2})
	if err == nil {
		t.Fatal("ReadTSV succeeded on a dying stream")
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("error %v does not wrap the stream failure", err)
	}
	if !strings.Contains(err.Error(), "reading input after line") {
		t.Fatalf("error %q does not identify the stream failure point", err)
	}
}

// TestReadTSVOversizedLine verifies the scanner's token limit is
// surfaced as a stream error rather than a panic or silent truncation.
func TestReadTSVOversizedLine(t *testing.T) {
	line := "n\t" + strings.Repeat("x", 17*1024*1024) + "\n"
	_, err := ReadTSV(strings.NewReader(line))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "reading input") {
		t.Fatalf("error %q does not name the input stream", err)
	}
}
