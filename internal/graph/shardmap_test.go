package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// applyGlobal applies muts to g through an overlay, returning the
// mutated graph — the from-scratch oracle's input.
func applyGlobal(t *testing.T, g *Graph, muts []Mutation) *Graph {
	t.Helper()
	o := NewOverlay(g)
	for i, m := range muts {
		if err := o.Apply(m); err != nil {
			t.Fatalf("global mutation %d (%v): %v", i, m.Op, err)
		}
	}
	out, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// maintainedShard tracks one shard the way a fleet replica would: the
// shard graph evolved by applying each ShardDelta sub-batch through an
// overlay, plus the local->global mapping grown from NewNodes.
type maintainedShard struct {
	g   *Graph
	l2g []NodeID
}

func newMaintainedShards(t *testing.T, g *Graph, cfg PartitionConfig) []*maintainedShard {
	t.Helper()
	plans, err := PartitionByRoot(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*maintainedShard, len(plans))
	for i, p := range plans {
		l2g := make([]NodeID, len(p.LocalToGlobal))
		copy(l2g, p.LocalToGlobal)
		out[i] = &maintainedShard{g: p.Graph, l2g: l2g}
	}
	return out
}

func (ms *maintainedShard) apply(t *testing.T, d ShardDelta) {
	t.Helper()
	o := NewOverlay(ms.g)
	for i, m := range d.Muts {
		if err := o.Apply(m); err != nil {
			t.Fatalf("shard %d sub-batch mutation %d (%v %d-%d): %v", d.Shard, i, m.Op, m.U, m.V, err)
		}
	}
	g, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != len(ms.l2g)+len(d.NewNodes) {
		t.Fatalf("shard %d grew to %d nodes, delta promised %d new over %d", d.Shard, g.NumNodes(), len(d.NewNodes), len(ms.l2g))
	}
	ms.g = g
	ms.l2g = append(ms.l2g, d.NewNodes...)
}

// edgeSet returns the graph's edges as global-ID keys via l2g.
func (ms *maintainedShard) edgeSet() map[[2]NodeID]struct{} {
	out := make(map[[2]NodeID]struct{}, ms.g.NumEdges())
	ms.g.Edges(func(u, v NodeID) bool {
		out[edgeKey(ms.l2g[u], ms.l2g[v])] = struct{}{}
		return true
	})
	return out
}

// randomMutationStream generates batches of valid mutations against an
// evolving overlay view. withRemovals also deletes random edges.
func randomMutationStream(t *testing.T, g *Graph, rng *rand.Rand, batches, perBatch int, withRemovals bool) [][]Mutation {
	t.Helper()
	labels := g.Alphabet().Names()
	// Track the evolving combined state just enough to generate valid
	// mutations: node count and the live edge set.
	nodes := g.NumNodes()
	edges := make(map[[2]NodeID]struct{})
	g.Edges(func(u, v NodeID) bool {
		edges[edgeKey(u, v)] = struct{}{}
		return true
	})
	live := make([][2]NodeID, 0, len(edges))
	for k := range edges {
		live = append(live, k)
	}

	var out [][]Mutation
	for b := 0; b < batches; b++ {
		var batch []Mutation
		for m := 0; m < perBatch; m++ {
			switch op := rng.Intn(10); {
			case op == 0:
				batch = append(batch, Mutation{Op: OpAddNode, Label: labels[rng.Intn(len(labels))], Name: fmt.Sprintf("n%d", nodes)})
				nodes++
			case op == 1:
				batch = append(batch, Mutation{Op: OpRelabel, U: NodeID(rng.Intn(nodes)), Label: labels[rng.Intn(len(labels))]})
			case withRemovals && op == 2 && len(live) > 0:
				i := rng.Intn(len(live))
				k := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				delete(edges, k)
				batch = append(batch, Mutation{Op: OpRemoveEdge, U: k[0], V: k[1]})
			default:
				for try := 0; try < 32; try++ {
					u, v := NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes))
					if u == v {
						continue
					}
					k := edgeKey(u, v)
					if _, dup := edges[k]; dup {
						continue
					}
					edges[k] = struct{}{}
					live = append(live, k)
					batch = append(batch, Mutation{Op: OpAddEdge, U: u, V: v})
					break
				}
			}
		}
		if len(batch) > 0 {
			out = append(out, batch)
		}
	}
	return out
}

// TestShardMapInitialStateMatchesManifest: the local-ID assignment of a
// freshly built ShardMap must agree with PartitionByRoot + Induced —
// the manifest the fleet was provisioned from.
func TestShardMapInitialStateMatchesManifest(t *testing.T) {
	g := partitionTestGraph(t, 250, 11)
	cfg := PartitionConfig{NumShards: 4, HaloDepth: 3}
	plans, err := PartitionByRoot(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewShardMap(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumNodes() != g.NumNodes() || sm.NumEdges() != g.NumEdges() {
		t.Fatalf("shard map reports %d nodes %d edges, graph has %d/%d", sm.NumNodes(), sm.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, p := range plans {
		if sm.ShardSize(p.Shard) != len(p.LocalToGlobal) {
			t.Fatalf("shard %d: map has %d members, plan has %d", p.Shard, sm.ShardSize(p.Shard), len(p.LocalToGlobal))
		}
		for local, global := range p.LocalToGlobal {
			got, ok := sm.LocalID(p.Shard, global)
			if !ok || got != NodeID(local) {
				t.Fatalf("shard %d: global %d -> local %d (present %v), plan says %d", p.Shard, global, got, ok, local)
			}
		}
	}
}

// TestShardMapHaloRepairMatchesRepartition is the halo-invariant
// property test: apply a random add-only mutation stream through the
// ShardMap (maintaining per-shard graphs from its sub-batches) and the
// result must be IDENTICAL — same global node sets, same global edge
// sets, same labels — to repartitioning the mutated graph from scratch.
func TestShardMapHaloRepairMatchesRepartition(t *testing.T) {
	for _, tc := range []struct {
		seed   int64
		shards int
		halo   int
	}{
		{seed: 1, shards: 3, halo: 2},
		{seed: 2, shards: 4, halo: 3},
		{seed: 3, shards: 2, halo: 4},
		{seed: 4, shards: 5, halo: 2},
	} {
		t.Run(fmt.Sprintf("seed%d_s%d_h%d", tc.seed, tc.shards, tc.halo), func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			g := partitionTestGraph(t, 120+rng.Intn(120), tc.seed)
			cfg := PartitionConfig{NumShards: tc.shards, HaloDepth: tc.halo}
			sm, err := NewShardMap(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			shards := newMaintainedShards(t, g, cfg)
			stream := randomMutationStream(t, g, rng, 12, 8, false)

			var all []Mutation
			for _, batch := range stream {
				deltas, err := sm.Apply(batch)
				if err != nil {
					t.Fatalf("Apply: %v", err)
				}
				for _, d := range deltas {
					shards[d.Shard].apply(t, d)
				}
				all = append(all, batch...)
			}

			mutated := applyGlobal(t, g, all)
			plans, err := PartitionByRoot(mutated, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for s, p := range plans {
				ms := shards[s]
				if len(ms.l2g) != len(p.LocalToGlobal) {
					t.Fatalf("shard %d: maintained %d members, from-scratch %d", s, len(ms.l2g), len(p.LocalToGlobal))
				}
				want := make(map[NodeID]struct{}, len(p.LocalToGlobal))
				for _, v := range p.LocalToGlobal {
					want[v] = struct{}{}
				}
				for local, global := range ms.l2g {
					if _, ok := want[global]; !ok {
						t.Fatalf("shard %d: maintained member %d absent from from-scratch partition", s, global)
					}
					if ms.g.Label(NodeID(local)) != mutated.Label(global) {
						t.Fatalf("shard %d: node %d label diverged", s, global)
					}
				}
				wantEdges := make(map[[2]NodeID]struct{}, p.Graph.NumEdges())
				p.Graph.Edges(func(u, v NodeID) bool {
					wantEdges[edgeKey(p.LocalToGlobal[u], p.LocalToGlobal[v])] = struct{}{}
					return true
				})
				gotEdges := ms.edgeSet()
				if len(gotEdges) != len(wantEdges) {
					t.Fatalf("shard %d: maintained %d edges, from-scratch %d", s, len(gotEdges), len(wantEdges))
				}
				for k := range wantEdges {
					if _, ok := gotEdges[k]; !ok {
						t.Fatalf("shard %d: edge %d-%d missing from maintained graph", s, k[0], k[1])
					}
				}
			}
		})
	}
}

// TestShardMapRemovalKeepsSupersetInvariant: with removals in the
// stream, membership never shrinks, so the maintained shard must be a
// SUPERSET of the from-scratch partition — and still an exact induced
// subgraph of the mutated global graph, which is what preserves census
// correctness for owned roots.
func TestShardMapRemovalKeepsSupersetInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := partitionTestGraph(t, 200, 99)
	cfg := PartitionConfig{NumShards: 4, HaloDepth: 3}
	sm, err := NewShardMap(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards := newMaintainedShards(t, g, cfg)
	stream := randomMutationStream(t, g, rng, 15, 8, true)

	var all []Mutation
	for _, batch := range stream {
		deltas, err := sm.Apply(batch)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		for _, d := range deltas {
			shards[d.Shard].apply(t, d)
		}
		all = append(all, batch...)
	}

	mutated := applyGlobal(t, g, all)
	plans, err := PartitionByRoot(mutated, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range plans {
		ms := shards[s]
		members := make(map[NodeID]NodeID, len(ms.l2g)) // global -> local
		for local, global := range ms.l2g {
			members[global] = NodeID(local)
		}
		// Superset: every from-scratch member is maintained.
		for _, global := range p.LocalToGlobal {
			if _, ok := members[global]; !ok {
				t.Fatalf("shard %d: from-scratch member %d missing from maintained superset", s, global)
			}
		}
		// Exact induced subgraph: edge present in the shard iff both
		// endpoints are members and the edge exists globally.
		gotEdges := ms.edgeSet()
		wantEdges := make(map[[2]NodeID]struct{})
		for global := range members {
			for _, w := range mutated.Neighbors(global) {
				if _, ok := members[w]; ok {
					wantEdges[edgeKey(global, w)] = struct{}{}
				}
			}
		}
		if len(gotEdges) != len(wantEdges) {
			t.Fatalf("shard %d: maintained %d edges, induced wants %d", s, len(gotEdges), len(wantEdges))
		}
		for k := range wantEdges {
			if _, ok := gotEdges[k]; !ok {
				t.Fatalf("shard %d: induced edge %d-%d missing", s, k[0], k[1])
			}
		}
		// Labels track the global graph.
		for global, local := range members {
			if ms.g.Label(local) != mutated.Label(global) {
				t.Fatalf("shard %d: node %d label diverged", s, global)
			}
		}
	}
}

// TestShardMapApplyDeterministic: two ShardMaps fed the same stream
// must emit byte-identical sub-batches — local-ID assignment included —
// because a router crash-replay regenerates sub-batches from scratch
// and live replicas already applied the originals.
func TestShardMapApplyDeterministic(t *testing.T) {
	g := partitionTestGraph(t, 150, 7)
	cfg := PartitionConfig{NumShards: 3, HaloDepth: 3}
	stream := randomMutationStream(t, g, rand.New(rand.NewSource(7)), 10, 6, true)

	run := func() [][]ShardDelta {
		sm, err := NewShardMap(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]ShardDelta
		for _, batch := range stream {
			deltas, err := sm.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, deltas)
		}
		return out
	}
	a, b := run(), run()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("two identical Apply streams produced different sub-batches")
	}
}

// shardMapFingerprint renders every observable piece of ShardMap state
// — global labels/names/adjacency and each shard's (global, local,
// dist) membership — into a canonical string, so rollback tests can
// assert exact restoration.
func shardMapFingerprint(sm *ShardMap) string {
	var b []byte
	b = append(b, fmt.Sprintf("n=%d e=%d\n", len(sm.labels), sm.numEdges)...)
	for v := 0; v < len(sm.labels); v++ {
		b = append(b, fmt.Sprintf("v%d l%d %q adj%v\n", v, sm.labels[v], sm.names[v], sm.sortedNeighbors(NodeID(v)))...)
	}
	for s, sv := range sm.shards {
		b = append(b, fmt.Sprintf("shard %d count %d\n", s, sv.count)...)
		for _, v := range sm.Members(s) {
			b = append(b, fmt.Sprintf("  %d->%d d%d\n", v, sv.g2l[v], sv.dist[v])...)
		}
	}
	return string(b)
}

// TestShardMapApplyStagedRollback drives a random mutation stream
// through the stage/rollback path: every batch is staged, rolled back
// (state must be byte-identical to before), staged again (deltas must
// be byte-identical to the first staging), and kept. The surviving
// state and deltas must match a second ShardMap fed the same stream
// through plain Apply.
func TestShardMapApplyStagedRollback(t *testing.T) {
	g := partitionTestGraph(t, 150, 9)
	cfg := PartitionConfig{NumShards: 3, HaloDepth: 2}
	stream := randomMutationStream(t, g, rand.New(rand.NewSource(9)), 12, 6, true)

	staged, err := NewShardMap(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewShardMap(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, batch := range stream {
		before := shardMapFingerprint(staged)
		first, undo, err := staged.ApplyStaged(batch)
		if err != nil {
			t.Fatalf("batch %d stage: %v", i, err)
		}
		undo()
		if after := shardMapFingerprint(staged); after != before {
			t.Fatalf("batch %d: rollback did not restore the pre-batch state\nbefore:\n%s\nafter:\n%s", i, before, after)
		}
		second, _, err := staged.ApplyStaged(batch)
		if err != nil {
			t.Fatalf("batch %d restage: %v", i, err)
		}
		if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", second) {
			t.Fatalf("batch %d: deltas differ after rollback\nfirst:  %+v\nsecond: %+v", i, first, second)
		}
		ref, err := plain.Apply(batch)
		if err != nil {
			t.Fatalf("batch %d plain apply: %v", i, err)
		}
		if fmt.Sprintf("%+v", second) != fmt.Sprintf("%+v", ref) {
			t.Fatalf("batch %d: staged deltas differ from plain Apply", i)
		}
	}
	if shardMapFingerprint(staged) != shardMapFingerprint(plain) {
		t.Fatal("staged and plain ShardMaps diverged over the stream")
	}
}

// TestShardMapValidateRejectsAndLeavesStateIntact: invalid batches are
// rejected whole, and the shard map is untouched afterwards.
func TestShardMapValidateRejectsAndLeavesStateIntact(t *testing.T) {
	g := partitionTestGraph(t, 60, 3)
	cfg := PartitionConfig{NumShards: 2, HaloDepth: 2}
	sm, err := NewShardMap(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var existing Mutation
	found := false
	g.Edges(func(u, v NodeID) bool {
		existing = Mutation{Op: OpAddEdge, U: u, V: v}
		found = true
		return false
	})
	if !found {
		t.Fatal("test graph has no edges")
	}
	nodes, edges := sm.NumNodes(), sm.NumEdges()
	bad := [][]Mutation{
		{{Op: OpAddEdge, U: 0, V: 0}},             // self loop
		{{Op: OpAddEdge, U: 0, V: NodeID(nodes)}}, // out of range
		{existing}, // duplicate edge
		{{Op: OpRemoveEdge, U: 0, V: NodeID(nodes) - 1}}, // likely absent; validated below
		{{Op: OpAddNode, Label: "no-such-label"}},        // unknown label
		{{Op: OpRelabel, U: NodeID(nodes), Label: "a"}},  // unknown node
		{{Op: OpAddEdge, U: 1, V: 2}, existing},          // later mutation invalid -> whole batch
		{{Op: Mutation{}.Op, U: 1, V: 2}},                // unknown op
	}
	for i, batch := range bad {
		if i == 3 && g.HasEdge(0, NodeID(nodes)-1) {
			continue // the random graph happens to have this edge; skip
		}
		if _, err := sm.Apply(batch); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		if sm.NumNodes() != nodes || sm.NumEdges() != edges {
			t.Fatalf("bad batch %d mutated shard map state", i)
		}
	}
}
