package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Binary graph snapshots.
//
// EncodeBinary lays the Graph's CSR arrays out as little-endian sections
// in one flat payload, each 8-byte aligned relative to the *file* (the
// encoder is told the file offset its payload will start at), so a
// loader that mmaps the enclosing snapshot can alias the arrays straight
// out of the mapping without copying a byte. DecodeBinary does exactly
// that when the payload is suitably aligned and aliasing is requested,
// and falls back to heap copies otherwise — same Graph either way.
//
// Layout (all integers little-endian):
//
//	magic "HSGFGB01" (8 bytes)
//	u64 numNodes | u64 numEdges | u64 numLabels | u64 flags
//	section table: binSections × { u64 byteOffset, u64 elemCount }
//	padding + section data
//
// Sections, in table order:
//
//	labels    []int32  numNodes        node labels
//	offsets   []int32  numNodes+1      CSR offsets
//	adj       []int32  2*numEdges      CSR adjacency, (label,id)-sorted
//	adjEdge   []int32  2*numEdges      edge id per incidence
//	ends      []int32  2*numEdges      edge endpoints, smaller first
//	alphaOffs []int32  numLabels+1     byte offsets into alphaBlob
//	alphaBlob []byte                   concatenated label names
//	nameOffs  []int32  numNodes+1      byte offsets into nameBlob (flagNames)
//	nameBlob  []byte                   concatenated node names   (flagNames)
//
// Byte offsets are relative to the payload start. TSV stays the exchange
// format; this is the boot-path format for graphs too large to re-parse.

const (
	binMagic = "HSGFGB01"
	// binSections is the fixed section-table length; absent sections
	// (names on an anonymous graph) carry offset 0, count 0.
	binSections  = 9
	binHeaderLen = len(binMagic) + 4*8 + binSections*16

	flagNames = 1 << 0
)

// section-table indices.
const (
	secLabels = iota
	secOffsets
	secAdj
	secAdjEdge
	secEnds
	secAlphaOffs
	secAlphaBlob
	secNameOffs
	secNameBlob
)

// align8 returns the smallest d >= 0 such that (off+d) % 8 == 0.
func align8(off int) int {
	return (8 - off%8) % 8
}

// EncodeBinary serialises g as a binary graph payload. fileBase is the
// offset within the final file at which the payload's first byte will
// land (see store.PayloadOffset); every array section is padded so its
// file offset — and therefore its address in a page-aligned mapping —
// is 8-byte aligned. Pass 0 for a standalone payload.
func EncodeBinary(g *Graph, fileBase int) ([]byte, error) {
	n, m, k := g.NumNodes(), g.NumEdges(), g.NumLabels()
	if n > math.MaxInt32 || m > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d nodes / %d edges exceed the int32 binary format bounds", n, m)
	}
	var flags uint64
	if g.names != nil {
		flags |= flagNames
	}

	var alphaNames []string
	if g.alphabet != nil {
		alphaNames = g.alphabet.names
	}
	alphaOffs, alphaBlob, err := packStrings(alphaNames)
	if err != nil {
		return nil, fmt.Errorf("graph: label alphabet: %w", err)
	}
	var nameOffs []int32
	var nameBlob []byte
	if flags&flagNames != 0 {
		if nameOffs, nameBlob, err = packStrings(g.names); err != nil {
			return nil, fmt.Errorf("graph: node names: %w", err)
		}
	}

	type sec struct {
		bytes int // payload size
		align bool
	}
	secs := [binSections]sec{
		secLabels:    {4 * n, true},
		secOffsets:   {4 * (n + 1), true},
		secAdj:       {4 * 2 * m, true},
		secAdjEdge:   {4 * 2 * m, true},
		secEnds:      {4 * 2 * m, true},
		secAlphaOffs: {4 * len(alphaOffs), true},
		secAlphaBlob: {len(alphaBlob), false},
		secNameOffs:  {4 * len(nameOffs), true},
		secNameBlob:  {len(nameBlob), false},
	}
	counts := [binSections]uint64{
		secLabels:    uint64(n),
		secOffsets:   uint64(n + 1),
		secAdj:       uint64(2 * m),
		secAdjEdge:   uint64(2 * m),
		secEnds:      uint64(2 * m),
		secAlphaOffs: uint64(len(alphaOffs)),
		secAlphaBlob: uint64(len(alphaBlob)),
		secNameOffs:  uint64(len(nameOffs)),
		secNameBlob:  uint64(len(nameBlob)),
	}

	offs := [binSections]int{}
	pos := binHeaderLen
	for i, s := range secs {
		if s.bytes == 0 {
			continue
		}
		if s.align {
			pos += align8(fileBase + pos)
		}
		offs[i] = pos
		pos += s.bytes
	}

	buf := make([]byte, pos)
	copy(buf, binMagic)
	le := binary.LittleEndian
	le.PutUint64(buf[8:], uint64(n))
	le.PutUint64(buf[16:], uint64(m))
	le.PutUint64(buf[24:], uint64(k))
	le.PutUint64(buf[32:], flags)
	for i := 0; i < binSections; i++ {
		le.PutUint64(buf[40+16*i:], uint64(offs[i]))
		le.PutUint64(buf[48+16*i:], counts[i])
	}
	putInt32s(buf[offs[secLabels]:], g.labels)
	putInt32s(buf[offs[secOffsets]:], g.offsets)
	putInt32s(buf[offs[secAdj]:], g.adj)
	putInt32s(buf[offs[secAdjEdge]:], g.adjEdge)
	putInt32s(buf[offs[secEnds]:], g.ends)
	putInt32s(buf[offs[secAlphaOffs]:], alphaOffs)
	copy(buf[offs[secAlphaBlob]:], alphaBlob)
	putInt32s(buf[offs[secNameOffs]:], nameOffs)
	copy(buf[offs[secNameBlob]:], nameBlob)
	return buf, nil
}

// packStrings concatenates strs into one blob with a cumulative byte
// offset table (len(strs)+1 entries). Blobs past the int32 offset range
// are an error — mirroring EncodeBinary's node/edge bound — since a
// wrapped offset would write a silently corrupt table.
func packStrings(strs []string) ([]int32, []byte, error) {
	total := 0
	for _, s := range strs {
		total += len(s)
	}
	if total > math.MaxInt32 {
		return nil, nil, fmt.Errorf("string blob of %d bytes exceeds the int32 binary format bounds", total)
	}
	offs := make([]int32, len(strs)+1)
	pos := 0
	for i, s := range strs {
		offs[i] = int32(pos)
		pos += len(s)
	}
	offs[len(strs)] = int32(pos)
	blob := make([]byte, 0, total)
	for _, s := range strs {
		blob = append(blob, s...)
	}
	return offs, blob, nil
}

// putInt32s writes vals little-endian into dst. On little-endian
// hardware this compiles to a memmove-width loop; correctness does not
// depend on host byte order.
func putInt32s[T ~int32](dst []byte, vals []T) {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

// DecodeBinary parses a binary graph payload. With alias true, int32
// array sections whose addresses are 4-byte aligned are aliased directly
// out of data — the zero-copy mmap path; the caller then owns keeping
// data's backing memory mapped for the Graph's lifetime. Misaligned
// sections (or alias false) are copied to the heap. The returned bool
// reports whether any section was aliased.
//
// Every structural property later code indexes on is validated before
// returning: section bounds, offset monotonicity, label/neighbour/edge-id
// ranges, and per-node (label, id) adjacency order. Hostile input gets an
// error, never a panic.
func DecodeBinary(data []byte, alias bool) (*Graph, bool, error) {
	if len(data) < binHeaderLen || string(data[:len(binMagic)]) != binMagic {
		return nil, false, fmt.Errorf("graph: not a binary graph payload")
	}
	le := binary.LittleEndian
	n64 := le.Uint64(data[8:])
	m64 := le.Uint64(data[16:])
	k64 := le.Uint64(data[24:])
	flags := le.Uint64(data[32:])
	if n64 > math.MaxInt32 || m64 > math.MaxInt32 || k64 > math.MaxInt32 {
		return nil, false, fmt.Errorf("graph: binary header counts out of range (%d nodes, %d edges, %d labels)", n64, m64, k64)
	}
	n, m, k := int(n64), int(m64), int(k64)

	var offs, counts [binSections]int
	for i := 0; i < binSections; i++ {
		o, c := le.Uint64(data[40+16*i:]), le.Uint64(data[48+16*i:])
		if o > uint64(len(data)) || c > uint64(len(data)) {
			return nil, false, fmt.Errorf("graph: binary section %d out of bounds", i)
		}
		offs[i], counts[i] = int(o), int(c)
	}
	wantCounts := [binSections]int{
		secLabels: n, secOffsets: n + 1, secAdj: 2 * m, secAdjEdge: 2 * m, secEnds: 2 * m,
		secAlphaOffs: k + 1, secAlphaBlob: counts[secAlphaBlob],
		secNameOffs: 0, secNameBlob: counts[secNameBlob],
	}
	if flags&flagNames != 0 {
		wantCounts[secNameOffs] = n + 1
	}
	for i, want := range wantCounts {
		if counts[i] != want {
			return nil, false, fmt.Errorf("graph: binary section %d holds %d elements, want %d", i, counts[i], want)
		}
		width := 4
		if i == secAlphaBlob || i == secNameBlob {
			width = 1
		}
		if counts[i] > 0 && (offs[i] < binHeaderLen || offs[i]+width*counts[i] > len(data)) {
			return nil, false, fmt.Errorf("graph: binary section %d [%d, +%d) outside payload of %d bytes", i, offs[i], width*counts[i], len(data))
		}
	}

	aliased := false
	i32 := func(sec int) []int32 {
		s, ok := int32sOf[int32](data, offs[sec], counts[sec], alias)
		aliased = aliased || ok
		return s
	}
	labels, lok := int32sOf[Label](data, offs[secLabels], counts[secLabels], alias)
	adjS, aok := int32sOf[NodeID](data, offs[secAdj], counts[secAdj], alias)
	adjE, eok := int32sOf[EdgeID](data, offs[secAdjEdge], counts[secAdjEdge], alias)
	endsS, nok := int32sOf[NodeID](data, offs[secEnds], counts[secEnds], alias)
	offsets := i32(secOffsets)
	aliased = aliased || lok || aok || eok || nok

	// Alphabet and names always materialise on the heap: Go strings
	// cannot alias foreign memory safely. Both are O(labels) and
	// O(named nodes) — not CSR payload.
	alphaOffs := i32(secAlphaOffs)
	alphabet, err := unpackAlphabet(alphaOffs, data[offs[secAlphaBlob]:offs[secAlphaBlob]+counts[secAlphaBlob]])
	if err != nil {
		return nil, false, err
	}
	if alphabet.Len() != k {
		return nil, false, fmt.Errorf("graph: alphabet decoded %d labels, header says %d", alphabet.Len(), k)
	}
	var names []string
	if flags&flagNames != 0 {
		nameOffs := i32(secNameOffs)
		names, err = unpackStrings(nameOffs, data[offs[secNameBlob]:offs[secNameBlob]+counts[secNameBlob]])
		if err != nil {
			return nil, false, fmt.Errorf("graph: node names: %w", err)
		}
	}

	g := &Graph{
		labels: labels, names: names,
		offsets: offsets, adj: adjS, adjEdge: adjE, ends: endsS,
		alphabet: alphabet, numEdges: m,
	}
	if err := validateDecoded(g, n, m, k); err != nil {
		return nil, false, err
	}
	return g, aliased, nil
}

// validateDecoded bounds-checks every index a decoded graph will be
// dereferenced through, plus the (label, id) adjacency order the census
// heuristics rely on. One linear pass over the CSR arrays.
func validateDecoded(g *Graph, n, m, k int) error {
	if len(g.offsets) != n+1 || g.offsets[0] != 0 || int(g.offsets[n]) != 2*m {
		return fmt.Errorf("graph: binary offsets malformed")
	}
	for _, l := range g.labels {
		if int(l) < 0 || int(l) >= k {
			return fmt.Errorf("graph: binary label %d outside alphabet of %d", l, k)
		}
	}
	// Bound every offset before any slicing: monotonicity alone does not
	// cap an intermediate entry until the walk reaches the pinned last
	// one, and slicing through an unchecked entry would panic.
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] || int(g.offsets[v+1]) > 2*m {
			return fmt.Errorf("graph: binary offsets malformed at node %d", v)
		}
	}
	for i := 0; i < m; i++ {
		u, v := g.ends[2*i], g.ends[2*i+1]
		if int(u) < 0 || int(v) >= n || u >= v {
			return fmt.Errorf("graph: binary edge %d endpoints (%d, %d) invalid", i, u, v)
		}
	}
	// One walk covers every incidence (offsets[n] == 2m is pinned above),
	// so this subsumes a separate adjEdge range pass. Each incidence's
	// edge id must round-trip through ends to the same node pair —
	// in-bounds but disagreeing tables would make IncidentEdges and
	// EdgeEndpoints silently contradict each other.
	for v := 0; v < n; v++ {
		adj := g.adj[g.offsets[v]:g.offsets[v+1]]
		eids := g.adjEdge[g.offsets[v]:g.offsets[v+1]]
		for i, w := range adj {
			if int(w) < 0 || int(w) >= n || w == NodeID(v) {
				return fmt.Errorf("graph: binary adjacency of node %d holds invalid neighbour %d", v, w)
			}
			if i > 0 {
				p := adj[i-1]
				if g.labels[p] > g.labels[w] || (g.labels[p] == g.labels[w] && p >= w) {
					return fmt.Errorf("graph: binary adjacency of node %d not (label,id)-sorted", v)
				}
			}
			e := eids[i]
			if int(e) < 0 || int(e) >= m {
				return fmt.Errorf("graph: binary incidence references edge %d of %d", e, m)
			}
			lo, hi := NodeID(v), w
			if lo > hi {
				lo, hi = hi, lo
			}
			if g.ends[2*e] != lo || g.ends[2*e+1] != hi {
				return fmt.Errorf("graph: binary incidence (%d, %d) carries edge %d whose endpoints are (%d, %d)",
					v, w, e, g.ends[2*e], g.ends[2*e+1])
			}
		}
	}
	return nil
}

// int32sOf views n little-endian int32 values at data[off:] as a []T.
// When alias is set and the address is int32-aligned it aliases data
// directly (true); otherwise it copies (false). Only correct on
// little-endian hosts for the alias path; the copy path byte-swaps as
// needed and is the implicit fallback on big-endian hardware.
func int32sOf[T ~int32](data []byte, off, n int, alias bool) ([]T, bool) {
	if n == 0 {
		return nil, false
	}
	src := data[off : off+4*n]
	if alias && littleEndianHost && uintptr(unsafe.Pointer(&src[0]))%4 == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&src[0])), n), true
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(int32(binary.LittleEndian.Uint32(src[4*i:]))) //nolint:gosec // bounds checked above
	}
	return out, false
}

// littleEndianHost is computed once; the alias fast path is only valid
// when the file byte order matches the host's.
var littleEndianHost = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// unpackAlphabet rebuilds the label alphabet from its offset table and
// blob, re-running NewAlphabet's duplicate/empty validation.
func unpackAlphabet(offs []int32, blob []byte) (*Alphabet, error) {
	names, err := unpackStrings(offs, blob)
	if err != nil {
		return nil, fmt.Errorf("graph: label alphabet: %w", err)
	}
	a, err := NewAlphabet(names...)
	if err != nil {
		return nil, fmt.Errorf("graph: binary alphabet: %w", err)
	}
	return a, nil
}

// unpackStrings splits blob at the cumulative offsets. Empty entries
// share the empty string, so anonymous nodes cost nothing.
func unpackStrings(offs []int32, blob []byte) ([]string, error) {
	if len(offs) == 0 {
		return nil, fmt.Errorf("missing offset table")
	}
	out := make([]string, len(offs)-1)
	for i := range out {
		lo, hi := offs[i], offs[i+1]
		if lo < 0 || lo > hi || int(hi) > len(blob) {
			return nil, fmt.Errorf("offset table entry %d [%d, %d) outside blob of %d bytes", i, lo, hi, len(blob))
		}
		if lo != hi {
			out[i] = string(blob[lo:hi])
		}
	}
	if int(offs[len(offs)-1]) != len(blob) {
		return nil, fmt.Errorf("offset table covers %d of %d blob bytes", offs[len(offs)-1], len(blob))
	}
	return out, nil
}
