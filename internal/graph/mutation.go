package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// This file is the mutation layer of the streaming-ingest subsystem: a
// typed Mutation record, a compact binary codec for batches of them
// (the payload the write-ahead log frames), and an Overlay — a mutable
// view over the immutable CSR Graph that validates each mutation
// against the combined base+delta state with the same invariants
// Graph.Validate enforces (no self loops, no parallel edges, in-range
// endpoints, known labels) and freezes back into a Graph on demand.

// MutationOp enumerates the streaming graph mutations.
type MutationOp uint8

const (
	// OpAddNode appends a node carrying Label (and optional Name).
	OpAddNode MutationOp = iota + 1
	// OpAddEdge inserts the undirected edge U-V.
	OpAddEdge
	// OpRemoveEdge deletes the undirected edge U-V.
	OpRemoveEdge
	// OpRelabel changes node U's label to Label.
	OpRelabel
)

// String returns the wire name of the operation (the JSON "op" field of
// the ingest API).
func (op MutationOp) String() string {
	switch op {
	case OpAddNode:
		return "add_node"
	case OpAddEdge:
		return "add_edge"
	case OpRemoveEdge:
		return "remove_edge"
	case OpRelabel:
		return "relabel"
	default:
		return fmt.Sprintf("MutationOp(%d)", uint8(op))
	}
}

// ParseMutationOp inverts MutationOp.String.
func ParseMutationOp(s string) (MutationOp, error) {
	switch s {
	case "add_node":
		return OpAddNode, nil
	case "add_edge":
		return OpAddEdge, nil
	case "remove_edge":
		return OpRemoveEdge, nil
	case "relabel":
		return OpRelabel, nil
	default:
		return 0, fmt.Errorf("graph: unknown mutation op %q", s)
	}
}

// Mutation is one streaming graph mutation.
type Mutation struct {
	Op MutationOp
	// U, V are the endpoints for OpAddEdge/OpRemoveEdge; U is the
	// target node for OpRelabel. Both are unused for OpAddNode (the new
	// node's ID is assigned by application order).
	U, V NodeID
	// Label is the label name for OpAddNode and OpRelabel.
	Label string
	// Name is the optional node name for OpAddNode.
	Name string
}

// Mutation-batch codec limits. Bounds exist so the decoder never
// allocates proportionally to attacker-controlled lengths it has not
// yet verified against the remaining input.
const (
	mutationCodecVersion = 1
	// MaxBatchID bounds the client idempotency key.
	MaxBatchID = 128
	// maxMutationString bounds label and node names inside a batch.
	maxMutationString = 4096
)

// ErrBadMutationBatch marks a mutation-batch payload that does not
// decode; every DecodeMutations failure wraps it.
var ErrBadMutationBatch = errors.New("graph: bad mutation batch")

func badBatchf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadMutationBatch, fmt.Sprintf(format, args...))
}

// EncodeMutations serialises a batch — the client's idempotency key and
// its mutations, in application order — into the canonical binary
// payload framed by the write-ahead log:
//
//	version u8 | idLen u16 | batchID | count u32
//	per mutation: op u8 | fields
//	  add_node:    labelLen u16 | label | nameLen u16 | name
//	  add_edge:    u u32 | v u32
//	  remove_edge: u u32 | v u32
//	  relabel:     u u32 | labelLen u16 | label
//
// All integers are little-endian. The encoding is canonical: decoding
// and re-encoding an accepted payload reproduces the input bytes,
// which the WAL fuzz harness relies on.
func EncodeMutations(batchID string, muts []Mutation) ([]byte, error) {
	if batchID == "" || len(batchID) > MaxBatchID {
		return nil, fmt.Errorf("graph: batch id must be 1-%d bytes, got %d", MaxBatchID, len(batchID))
	}
	buf := make([]byte, 0, 8+len(batchID)+len(muts)*10)
	buf = append(buf, mutationCodecVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(batchID)))
	buf = append(buf, batchID...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(muts)))
	appendString := func(s string) error {
		if len(s) > maxMutationString {
			return fmt.Errorf("graph: mutation string of %d bytes exceeds the %d limit", len(s), maxMutationString)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
		return nil
	}
	for i, m := range muts {
		buf = append(buf, byte(m.Op))
		switch m.Op {
		case OpAddNode:
			if m.Label == "" {
				return nil, fmt.Errorf("graph: mutation %d: add_node needs a label", i)
			}
			if err := appendString(m.Label); err != nil {
				return nil, err
			}
			if err := appendString(m.Name); err != nil {
				return nil, err
			}
		case OpAddEdge, OpRemoveEdge:
			if m.U < 0 || m.V < 0 {
				return nil, fmt.Errorf("graph: mutation %d: negative endpoint", i)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(m.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(m.V))
		case OpRelabel:
			if m.U < 0 {
				return nil, fmt.Errorf("graph: mutation %d: negative node", i)
			}
			if m.Label == "" {
				return nil, fmt.Errorf("graph: mutation %d: relabel needs a label", i)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(m.U))
			if err := appendString(m.Label); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("graph: mutation %d: unknown op %d", i, m.Op)
		}
	}
	return buf, nil
}

// DecodeMutations parses a payload written by EncodeMutations. It
// never panics on arbitrary input: every length is checked against the
// remaining bytes before use, unknown ops and trailing garbage are
// errors, and all failures wrap ErrBadMutationBatch.
func DecodeMutations(data []byte) (batchID string, muts []Mutation, err error) {
	pos := 0
	need := func(n int) bool { return len(data)-pos >= n }
	if !need(3) {
		return "", nil, badBatchf("%d bytes is shorter than the smallest batch header", len(data))
	}
	if v := data[pos]; v != mutationCodecVersion {
		return "", nil, badBatchf("codec version %d, reader supports %d", v, mutationCodecVersion)
	}
	pos++
	idLen := int(binary.LittleEndian.Uint16(data[pos:]))
	pos += 2
	if idLen == 0 || idLen > MaxBatchID || !need(idLen) {
		return "", nil, badBatchf("batch id length %d out of range", idLen)
	}
	batchID = string(data[pos : pos+idLen])
	pos += idLen
	if !need(4) {
		return "", nil, badBatchf("truncated mutation count")
	}
	count := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	// Every mutation occupies at least one op byte; anything claiming
	// more mutations than remaining bytes is corrupt, and the bound
	// keeps the slice allocation honest.
	if count > len(data)-pos {
		return "", nil, badBatchf("mutation count %d exceeds remaining %d bytes", count, len(data)-pos)
	}
	readString := func(what string) (string, error) {
		if !need(2) {
			return "", badBatchf("truncated %s length", what)
		}
		n := int(binary.LittleEndian.Uint16(data[pos:]))
		pos += 2
		if n > maxMutationString || !need(n) {
			return "", badBatchf("%s length %d out of range", what, n)
		}
		s := string(data[pos : pos+n])
		pos += n
		return s, nil
	}
	muts = make([]Mutation, 0, count)
	for i := 0; i < count; i++ {
		if !need(1) {
			return "", nil, badBatchf("mutation %d: truncated op", i)
		}
		m := Mutation{Op: MutationOp(data[pos])}
		pos++
		switch m.Op {
		case OpAddNode:
			if m.Label, err = readString("label"); err != nil {
				return "", nil, err
			}
			if m.Label == "" {
				return "", nil, badBatchf("mutation %d: empty add_node label", i)
			}
			if m.Name, err = readString("name"); err != nil {
				return "", nil, err
			}
		case OpAddEdge, OpRemoveEdge:
			if !need(8) {
				return "", nil, badBatchf("mutation %d: truncated endpoints", i)
			}
			m.U = NodeID(binary.LittleEndian.Uint32(data[pos:]))
			m.V = NodeID(binary.LittleEndian.Uint32(data[pos+4:]))
			pos += 8
			if m.U < 0 || m.V < 0 {
				return "", nil, badBatchf("mutation %d: endpoint outside NodeID range", i)
			}
		case OpRelabel:
			if !need(4) {
				return "", nil, badBatchf("mutation %d: truncated node", i)
			}
			m.U = NodeID(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if m.U < 0 {
				return "", nil, badBatchf("mutation %d: node outside NodeID range", i)
			}
			if m.Label, err = readString("label"); err != nil {
				return "", nil, err
			}
			if m.Label == "" {
				return "", nil, badBatchf("mutation %d: empty relabel label", i)
			}
		default:
			return "", nil, badBatchf("mutation %d: unknown op %d", i, uint8(m.Op))
		}
		muts = append(muts, m)
	}
	if pos != len(data) {
		return "", nil, badBatchf("%d trailing bytes after the last mutation", len(data)-pos)
	}
	return batchID, muts, nil
}

// Overlay is a mutable delta over an immutable base Graph: added nodes,
// added and removed edges, and relabels, validated mutation by mutation
// against the combined state. An Overlay is not safe for concurrent
// use. Materialize freezes the combined state into a fresh immutable
// Graph; the base is never modified.
//
// The overlay deliberately cannot grow the label alphabet: the census
// encoding's label-slot count k is part of feature semantics (and of
// every persisted FeatureSet), so a label unknown to the base graph's
// alphabet is a validation error, exactly like Builder with a fixed
// alphabet.
type Overlay struct {
	base *Graph

	// labels/names cover all nodes, base and added; base prefixes are
	// copied once at construction (O(V), far below Materialize's cost).
	labels []Label
	names  []string

	added   map[[2]NodeID]struct{} // normalised u < v
	removed map[[2]NodeID]struct{}

	touched map[NodeID]struct{}
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base *Graph) *Overlay {
	o := &Overlay{
		base:    base,
		labels:  make([]Label, base.NumNodes()),
		names:   make([]string, base.NumNodes()),
		added:   make(map[[2]NodeID]struct{}),
		removed: make(map[[2]NodeID]struct{}),
		touched: make(map[NodeID]struct{}),
	}
	for v := 0; v < base.NumNodes(); v++ {
		o.labels[v] = base.Label(NodeID(v))
		o.names[v] = base.Name(NodeID(v))
	}
	return o
}

// NumNodes returns the node count of the combined state.
func (o *Overlay) NumNodes() int { return len(o.labels) }

// NumEdges returns the edge count of the combined state.
func (o *Overlay) NumEdges() int { return o.base.NumEdges() - len(o.removed) + len(o.added) }

// Label returns node v's effective label.
func (o *Overlay) Label(v NodeID) Label { return o.labels[v] }

// HasEdge reports adjacency in the combined state.
func (o *Overlay) HasEdge(u, v NodeID) bool {
	if u == v || int(u) >= o.NumNodes() || int(v) >= o.NumNodes() || u < 0 || v < 0 {
		return false
	}
	k := edgeKey(u, v)
	if _, ok := o.added[k]; ok {
		return true
	}
	if _, ok := o.removed[k]; ok {
		return false
	}
	if int(u) >= o.base.NumNodes() || int(v) >= o.base.NumNodes() {
		return false
	}
	return o.base.HasEdge(u, v)
}

func edgeKey(u, v NodeID) [2]NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]NodeID{u, v}
}

// AddNode appends a node with the given label name (which must exist in
// the base alphabet) and optional name, returning its ID.
func (o *Overlay) AddNode(labelName, nodeName string) (NodeID, error) {
	l, ok := o.base.Alphabet().Lookup(labelName)
	if !ok {
		return 0, fmt.Errorf("graph: unknown label %q", labelName)
	}
	id := NodeID(len(o.labels))
	o.labels = append(o.labels, l)
	o.names = append(o.names, nodeName)
	o.touched[id] = struct{}{}
	return id, nil
}

// checkEndpoints validates an edge mutation's endpoints against the
// combined state, mirroring Builder.AddEdge and Graph.Validate.
func (o *Overlay) checkEndpoints(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	n := NodeID(len(o.labels))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge %d-%d references unknown node (have %d nodes)", u, v, n)
	}
	return nil
}

// AddEdge inserts the undirected edge u-v. A duplicate of an existing
// edge is an error — a streaming source re-sending an edge is a bug the
// caller must surface, not silently coalesce (batch-level idempotency
// lives in the write-ahead log, not here).
func (o *Overlay) AddEdge(u, v NodeID) error {
	if err := o.checkEndpoints(u, v); err != nil {
		return err
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge %d-%d", u, v)
	}
	k := edgeKey(u, v)
	if _, ok := o.removed[k]; ok {
		delete(o.removed, k) // re-adding a removed base edge
	} else {
		o.added[k] = struct{}{}
	}
	o.touched[u] = struct{}{}
	o.touched[v] = struct{}{}
	return nil
}

// RemoveEdge deletes the undirected edge u-v; removing an absent edge
// is an error.
func (o *Overlay) RemoveEdge(u, v NodeID) error {
	if err := o.checkEndpoints(u, v); err != nil {
		return err
	}
	if !o.HasEdge(u, v) {
		return fmt.Errorf("graph: edge %d-%d does not exist", u, v)
	}
	k := edgeKey(u, v)
	if _, ok := o.added[k]; ok {
		delete(o.added, k) // removing an overlay-added edge
	} else {
		o.removed[k] = struct{}{}
	}
	o.touched[u] = struct{}{}
	o.touched[v] = struct{}{}
	return nil
}

// Relabel changes node v's label. Relabelling to the node's current
// label is a no-op (and does not mark v touched).
func (o *Overlay) Relabel(v NodeID, labelName string) error {
	if v < 0 || int(v) >= len(o.labels) {
		return fmt.Errorf("graph: relabel of unknown node %d (have %d nodes)", v, len(o.labels))
	}
	l, ok := o.base.Alphabet().Lookup(labelName)
	if !ok {
		return fmt.Errorf("graph: unknown label %q", labelName)
	}
	if o.labels[v] == l {
		return nil
	}
	o.labels[v] = l
	o.touched[v] = struct{}{}
	return nil
}

// Apply dispatches one Mutation. On error the overlay is unchanged.
func (o *Overlay) Apply(m Mutation) error {
	switch m.Op {
	case OpAddNode:
		_, err := o.AddNode(m.Label, m.Name)
		return err
	case OpAddEdge:
		return o.AddEdge(m.U, m.V)
	case OpRemoveEdge:
		return o.RemoveEdge(m.U, m.V)
	case OpRelabel:
		return o.Relabel(m.U, m.Label)
	default:
		return fmt.Errorf("graph: unknown mutation op %d", uint8(m.Op))
	}
}

// Dirty reports whether any mutation changed the combined state.
func (o *Overlay) Dirty() bool { return len(o.touched) > 0 }

// Touched returns the nodes whose incident structure or label changed —
// edge endpoints, relabelled nodes, added nodes — in ascending order.
// This is the seed set of the delta-census dirty ball.
func (o *Overlay) Touched() []NodeID {
	out := make([]NodeID, 0, len(o.touched))
	for v := range o.touched {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Materialize freezes the combined state into a fresh immutable Graph
// with the base's alphabet. The overlay remains usable afterwards.
func (o *Overlay) Materialize() (*Graph, error) {
	b := NewBuilderWithAlphabet(o.base.Alphabet())
	for v := range o.labels {
		if _, err := b.AddLabeledNode(o.labels[v]); err != nil {
			return nil, err
		}
		b.SetName(NodeID(v), o.names[v])
	}
	var err error
	o.base.Edges(func(u, v NodeID) bool {
		if _, gone := o.removed[edgeKey(u, v)]; gone {
			return true
		}
		err = b.AddEdge(u, v)
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	for k := range o.added {
		if err := b.AddEdge(k[0], k[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
