package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTSVRoundTrip(t *testing.T) {
	b := NewBuilder()
	a, _ := b.AddNamedNode("author", "alice")
	p, _ := b.AddNamedNode("paper", "kdd-2014-17")
	v, _ := b.AddNode("venue")
	b.AddEdge(a, p)
	b.AddEdge(p, v)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	for i := NodeID(0); int(i) < g.NumNodes(); i++ {
		if g2.Name(i) != g.Name(i) {
			t.Errorf("node %d name %q, want %q", i, g2.Name(i), g.Name(i))
		}
		if g2.Alphabet().Name(g2.Label(i)) != g.Alphabet().Name(g.Label(i)) {
			t.Errorf("node %d label mismatch", i)
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTSVRoundTripRandomProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 1+rng.Intn(30), 1+rng.Intn(4), rng.Float64()*0.4)
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			return false
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		// Edge sets must agree.
		ok := true
		g.Edges(func(u, v NodeID) bool {
			if !g2.HasEdge(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok && g2.Validate() == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"unknown record", "x\t0\t1\n"},
		{"bad node line", "n\n"},
		{"node line too long", "n\ta\tb\tc\n"},
		{"bad edge arity", "e\t0\n"},
		{"bad edge id", "n\ta\nn\ta\ne\tzero\t1\n"},
		{"bad edge id 2", "n\ta\nn\ta\ne\t0\tone\n"},
		{"edge to missing node", "n\ta\ne\t0\t5\n"},
		{"self loop", "n\ta\ne\t0\t0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestReadTSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nn\ta\n\nn\tb\n# mid comment\ne\t0\t1\n"
	g, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %v, want 2 nodes 1 edge", g)
	}
}
