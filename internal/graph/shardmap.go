package graph

import (
	"fmt"
	"sort"
)

// This file is the fleet-ingest side of the root-based partitioner: a
// ShardMap tracks, for a mutating global graph, exactly the state
// PartitionByRoot derived once at partition time — which nodes belong
// to each shard's universe (owned roots plus their distance-<=HaloDepth
// halo) and the global<->local ID translation per shard — and keeps it
// current as mutations stream in. Apply resolves one validated batch
// into per-shard sub-batches with shard-local IDs, including the halo
// repair a new edge forces: when an edge addition pulls a node into a
// shard's fringe, the node (and its full adjacency among the shard's
// members) is shipped in that shard's sub-batch, so the shard graph
// stays the exact induced subgraph over its members.
//
// Distances never grow here. The mutation vocabulary has no
// remove_node, so shard membership is maintained as a monotone
// superset: an edge removal may lengthen a node's true distance to its
// nearest owned root, but the node stays a member at its recorded
// (now possibly optimistic) distance. That direction is the safe one —
// recorded distance <= true distance means membership is always a
// superset of the from-scratch partition, and a superset preserves
// census exactness: every node within HaloDepth (>= emax) hops of an
// owned root is present with its full induced adjacency, and extra
// fringe nodes beyond the census radius can never enter an owned
// root's counts. For add-only mutation streams the recorded distances
// are exact and membership equals the from-scratch partition
// node-for-node (shardmap_test.go pins both properties).
type ShardMap struct {
	numShards int
	haloDepth int

	alphabet *Alphabet
	labels   []Label
	names    []string
	adj      []map[NodeID]struct{}
	numEdges int

	shards []*shardMembers
}

// shardMembers is one shard's membership state: local-ID assignment in
// engine application order and each member's recorded distance to the
// nearest owned root (0 for owned nodes).
type shardMembers struct {
	g2l   map[NodeID]NodeID
	count NodeID
	dist  map[NodeID]int32
}

// ShardDelta is one shard's slice of an applied batch: the sub-batch in
// shard-local IDs (halo-repair add_node/add_edge mutations included)
// plus the global IDs of nodes the batch added to this shard, in
// local-ID assignment order — local IDs count up from the shard's
// pre-batch node count exactly as the shard engine's overlay assigns
// them, so NewNodes[i] receives local ID priorCount+i.
type ShardDelta struct {
	Shard    int
	Muts     []Mutation
	NewNodes []NodeID
}

// NewShardMap builds the mutable partition state for g under cfg. The
// initial per-shard membership and local-ID assignment are identical to
// PartitionByRoot + Induced over the same inputs (members ascending by
// global ID), so a ShardMap constructed from the partition-time graph
// speaks the same local IDs as the manifest written next to the shard
// snapshots.
func NewShardMap(g *Graph, cfg PartitionConfig) (*ShardMap, error) {
	if cfg.NumShards < 1 {
		return nil, fmt.Errorf("graph: NumShards must be >= 1, got %d", cfg.NumShards)
	}
	if cfg.HaloDepth < 1 {
		return nil, fmt.Errorf("graph: HaloDepth must be >= 1, got %d", cfg.HaloDepth)
	}
	n := g.NumNodes()
	sm := &ShardMap{
		numShards: cfg.NumShards,
		haloDepth: cfg.HaloDepth,
		alphabet:  g.Alphabet(),
		labels:    make([]Label, n),
		names:     make([]string, n),
		adj:       make([]map[NodeID]struct{}, n),
		numEdges:  g.NumEdges(),
	}
	for v := 0; v < n; v++ {
		sm.labels[v] = g.Label(NodeID(v))
		sm.names[v] = g.Name(NodeID(v))
		nbrs := g.Neighbors(NodeID(v))
		m := make(map[NodeID]struct{}, len(nbrs))
		for _, w := range nbrs {
			m[w] = struct{}{}
		}
		sm.adj[v] = m
	}

	owned := make([][]NodeID, cfg.NumShards)
	for v := NodeID(0); int(v) < n; v++ {
		owned[RootShard(v, cfg.NumShards)] = append(owned[RootShard(v, cfg.NumShards)], v)
	}
	sm.shards = make([]*shardMembers, cfg.NumShards)
	for s := 0; s < cfg.NumShards; s++ {
		sv := &shardMembers{
			g2l:  make(map[NodeID]NodeID, len(owned[s])*2),
			dist: make(map[NodeID]int32, len(owned[s])*2),
		}
		frontier := make([]NodeID, 0, len(owned[s]))
		for _, r := range owned[s] {
			sv.dist[r] = 0
			frontier = append(frontier, r)
		}
		for depth := int32(0); int(depth) < cfg.HaloDepth && len(frontier) > 0; depth++ {
			var next []NodeID
			for _, u := range frontier {
				for w := range sm.adj[u] {
					if _, ok := sv.dist[w]; !ok {
						sv.dist[w] = depth + 1
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		members := make([]NodeID, 0, len(sv.dist))
		for v := range sv.dist {
			members = append(members, v)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, v := range members {
			sv.g2l[v] = sv.count
			sv.count++
		}
		sm.shards[s] = sv
	}
	return sm, nil
}

// NumShards returns the shard count.
func (sm *ShardMap) NumShards() int { return sm.numShards }

// HaloDepth returns the maintained halo radius.
func (sm *ShardMap) HaloDepth() int { return sm.haloDepth }

// NumNodes returns the current global node count.
func (sm *ShardMap) NumNodes() int { return len(sm.labels) }

// NumEdges returns the current global edge count.
func (sm *ShardMap) NumEdges() int { return sm.numEdges }

// LocalID translates a global node ID into shard's local ID space,
// reporting whether the node is a member of that shard.
func (sm *ShardMap) LocalID(shard int, global NodeID) (NodeID, bool) {
	l, ok := sm.shards[shard].g2l[global]
	return l, ok
}

// ShardSize returns shard's current member count (== its local node
// count).
func (sm *ShardMap) ShardSize(shard int) int { return int(sm.shards[shard].count) }

// Members returns shard's member set as ascending global IDs.
func (sm *ShardMap) Members(shard int) []NodeID {
	sv := sm.shards[shard]
	out := make([]NodeID, 0, len(sv.g2l))
	for v := range sv.g2l {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hasEdge reports adjacency in the current global state.
func (sm *ShardMap) hasEdge(u, v NodeID) bool {
	_, ok := sm.adj[u][v]
	return ok
}

// sortedNeighbors returns v's neighbours ascending. Halo repair MUST
// traverse adjacency in a deterministic order: the local IDs a pull
// assigns depend on traversal order, and a router that crash-replays
// its sequencer log regenerates every sub-batch from scratch — if the
// regenerated pull order differed from the original, the replayed
// local IDs would disagree with what live replicas already applied.
func (sm *ShardMap) sortedNeighbors(v NodeID) []NodeID {
	out := make([]NodeID, 0, len(sm.adj[v]))
	for w := range sm.adj[v] {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks one batch against the current global state without
// mutating anything — the same invariants Overlay enforces (in-range
// endpoints, no self loops, no duplicate edges, no absent-edge
// removals, labels from the fixed alphabet), including references to
// nodes the batch itself adds. The router runs this before assigning a
// fleet sequence: once sequenced, a batch must apply cleanly on every
// shard, so nothing invalid may reach the sequencer log.
func (sm *ShardMap) Validate(muts []Mutation) error {
	next := NodeID(len(sm.labels))
	added := make(map[[2]NodeID]struct{})
	removed := make(map[[2]NodeID]struct{})
	has := func(u, v NodeID) bool {
		k := edgeKey(u, v)
		if _, ok := added[k]; ok {
			return true
		}
		if _, ok := removed[k]; ok {
			return false
		}
		if int(u) >= len(sm.adj) || int(v) >= len(sm.adj) {
			return false
		}
		return sm.hasEdge(u, v)
	}
	for i, m := range muts {
		switch m.Op {
		case OpAddNode:
			if _, ok := sm.alphabet.Lookup(m.Label); !ok {
				return fmt.Errorf("mutation %d: unknown label %q", i, m.Label)
			}
			next++
		case OpAddEdge, OpRemoveEdge:
			if m.U == m.V {
				return fmt.Errorf("mutation %d: self loop at node %d", i, m.U)
			}
			if m.U < 0 || m.V < 0 || m.U >= next || m.V >= next {
				return fmt.Errorf("mutation %d: edge %d-%d references unknown node (have %d nodes)", i, m.U, m.V, next)
			}
			if m.Op == OpAddEdge && has(m.U, m.V) {
				return fmt.Errorf("mutation %d: duplicate edge %d-%d", i, m.U, m.V)
			}
			if m.Op == OpRemoveEdge && !has(m.U, m.V) {
				return fmt.Errorf("mutation %d: edge %d-%d does not exist", i, m.U, m.V)
			}
			k := edgeKey(m.U, m.V)
			if m.Op == OpAddEdge {
				if _, ok := removed[k]; ok {
					delete(removed, k)
				} else {
					added[k] = struct{}{}
				}
			} else {
				if _, ok := added[k]; ok {
					delete(added, k)
				} else {
					removed[k] = struct{}{}
				}
			}
		case OpRelabel:
			if m.U < 0 || m.U >= next {
				return fmt.Errorf("mutation %d: relabel of unknown node %d (have %d nodes)", i, m.U, next)
			}
			if _, ok := sm.alphabet.Lookup(m.Label); !ok {
				return fmt.Errorf("mutation %d: unknown label %q", i, m.Label)
			}
		default:
			return fmt.Errorf("mutation %d: unknown op %d", i, uint8(m.Op))
		}
	}
	return nil
}

// smUndo journals the inverse of every state change one Apply makes,
// first-touch only: the first time the batch touches an edge, a label,
// or a (shard, node) distance, the pre-batch value is recorded, so
// rollback restores exactly the pre-batch state no matter how many
// times the batch revisits the same key (add-then-remove of one edge,
// repeated relaxation of one node). Node additions are journaled by
// the pre-batch node count alone: new nodes occupy the tail of
// labels/names/adj, so truncation removes them wholesale.
type smUndo struct {
	numNodes int
	numEdges int
	edges    map[[2]NodeID]bool // original presence
	labels   map[NodeID]Label   // original label
	shards   []*shardUndo       // nil for untouched shards
}

type shardUndo struct {
	count  NodeID   // pre-batch local-ID count
	pulled []NodeID // nodes admitted this batch (g2l entries to drop)
	dist   map[NodeID]distPrior
}

type distPrior struct {
	d   int32
	had bool
}

func newSMUndo(sm *ShardMap) *smUndo {
	return &smUndo{
		numNodes: len(sm.labels),
		numEdges: sm.numEdges,
		edges:    make(map[[2]NodeID]bool),
		labels:   make(map[NodeID]Label),
		shards:   make([]*shardUndo, sm.numShards),
	}
}

func (u *smUndo) shardState(sm *ShardMap, s int) *shardUndo {
	if u.shards[s] == nil {
		u.shards[s] = &shardUndo{count: sm.shards[s].count, dist: make(map[NodeID]distPrior)}
	}
	return u.shards[s]
}

func (u *smUndo) touchEdge(sm *ShardMap, a, b NodeID) {
	k := edgeKey(a, b)
	if _, ok := u.edges[k]; !ok {
		u.edges[k] = sm.hasEdge(a, b)
	}
}

func (u *smUndo) touchLabel(sm *ShardMap, v NodeID) {
	if _, ok := u.labels[v]; !ok {
		u.labels[v] = sm.labels[v]
	}
}

func (su *shardUndo) touchDist(sv *shardMembers, v NodeID) {
	if _, ok := su.dist[v]; !ok {
		d, had := sv.dist[v]
		su.dist[v] = distPrior{d: d, had: had}
	}
}

// rollback restores the pre-batch state recorded in u. Edge presence is
// restored before the node-tail truncation so that adjacency entries an
// old node gained toward a batch-added node are deleted while both maps
// still exist.
func (sm *ShardMap) rollback(u *smUndo) {
	for k, present := range u.edges {
		a, b := k[0], k[1]
		if present {
			sm.adj[a][b] = struct{}{}
			sm.adj[b][a] = struct{}{}
		} else {
			if int(a) < len(sm.adj) {
				delete(sm.adj[a], b)
			}
			if int(b) < len(sm.adj) {
				delete(sm.adj[b], a)
			}
		}
	}
	for i := u.numNodes; i < len(sm.adj); i++ {
		sm.adj[i] = nil
	}
	sm.labels = sm.labels[:u.numNodes]
	sm.names = sm.names[:u.numNodes]
	sm.adj = sm.adj[:u.numNodes]
	sm.numEdges = u.numEdges
	for v, l := range u.labels {
		if int(v) < u.numNodes {
			sm.labels[v] = l
		}
	}
	for s, su := range u.shards {
		if su == nil {
			continue
		}
		sv := sm.shards[s]
		for _, v := range su.pulled {
			delete(sv.g2l, v)
		}
		sv.count = su.count
		for v, p := range su.dist {
			if p.had {
				sv.dist[v] = p.d
			} else {
				delete(sv.dist, v)
			}
		}
	}
}

// deltaAcc accumulates one shard's sub-batch during Apply. emitted
// tracks edges already shipped this batch (by global key), so the halo
// repair of a pulled node and the triggering mutation never double-ship
// the same edge; a remove_edge clears the key so a later re-add in the
// same batch ships again.
type deltaAcc struct {
	muts     []Mutation
	newNodes []NodeID
	emitted  map[[2]NodeID]struct{}
}

// Apply resolves one batch: validates it whole (an invalid batch
// changes nothing), applies it to the global state, maintains every
// shard's membership/distances, and returns the per-shard sub-batches
// in shard-local IDs. Only shards the batch touches appear in the
// result. Mutation order within each sub-batch preserves the input
// order, with halo-repair mutations (pulled nodes + their adjacency)
// spliced in where the pulling edge occurs — so a shard engine applying
// the sub-batch through its overlay sees every referenced node before
// the edge that references it.
func (sm *ShardMap) Apply(muts []Mutation) ([]ShardDelta, error) {
	deltas, _, err := sm.ApplyStaged(muts)
	return deltas, err
}

// ApplyStaged is Apply plus an escape hatch: the returned rollback
// restores the ShardMap (membership, distances, local-ID assignment,
// global adjacency) to its exact pre-batch state. The router uses it to
// size-check the emitted sub-batches against follower limits before the
// batch takes a durable fleet sequence — an oversized batch must be
// refused as if it never happened, or the sequencer log would carry a
// batch no follower can accept. rollback is single-shot and only valid
// until the next mutation of the ShardMap; after calling it, re-staging
// the same batch regenerates byte-identical deltas (the emission is
// deterministic in the restored state).
func (sm *ShardMap) ApplyStaged(muts []Mutation) ([]ShardDelta, func(), error) {
	if err := sm.Validate(muts); err != nil {
		return nil, nil, err
	}
	undo := newSMUndo(sm)
	accs := make([]*deltaAcc, sm.numShards)
	acc := func(s int) *deltaAcc {
		if accs[s] == nil {
			accs[s] = &deltaAcc{emitted: make(map[[2]NodeID]struct{})}
		}
		return accs[s]
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			l, _ := sm.alphabet.Lookup(m.Label)
			gid := NodeID(len(sm.labels))
			sm.labels = append(sm.labels, l)
			sm.names = append(sm.names, m.Name)
			sm.adj = append(sm.adj, make(map[NodeID]struct{}))
			// A fresh node has no edges, so it enters exactly one
			// universe: its owner's, as an owned root at distance 0.
			owner := RootShard(gid, sm.numShards)
			a := acc(owner)
			sv := sm.shards[owner]
			su := undo.shardState(sm, owner)
			su.touchDist(sv, gid)
			su.pulled = append(su.pulled, gid)
			sv.dist[gid] = 0
			sv.g2l[gid] = sv.count
			sv.count++
			a.newNodes = append(a.newNodes, gid)
			a.muts = append(a.muts, Mutation{Op: OpAddNode, Label: m.Label, Name: m.Name})

		case OpAddEdge:
			undo.touchEdge(sm, m.U, m.V)
			sm.adj[m.U][m.V] = struct{}{}
			sm.adj[m.V][m.U] = struct{}{}
			sm.numEdges++
			for s := 0; s < sm.numShards; s++ {
				sv := sm.shards[s]
				du, uIn := sv.dist[m.U]
				dv, vIn := sv.dist[m.V]
				if !uIn && !vIn {
					continue
				}
				a := acc(s)
				// The new edge may shorten distances through either
				// endpoint; relax both directions to the halo bound,
				// pulling (and shipping) any node that newly qualifies.
				if uIn {
					sm.relax(s, a, undo, m.V, du+1)
				}
				if vIn {
					sm.relax(s, a, undo, m.U, dv+1)
				}
				lu, uIn := sv.g2l[m.U]
				lv, vIn := sv.g2l[m.V]
				if uIn && vIn {
					k := edgeKey(m.U, m.V)
					if _, done := a.emitted[k]; !done {
						a.emitted[k] = struct{}{}
						a.muts = append(a.muts, Mutation{Op: OpAddEdge, U: lu, V: lv})
					}
				}
			}

		case OpRemoveEdge:
			undo.touchEdge(sm, m.U, m.V)
			delete(sm.adj[m.U], m.V)
			delete(sm.adj[m.V], m.U)
			sm.numEdges--
			// Membership never shrinks (see the type comment); the removal
			// ships to every shard holding both endpoints — which, by the
			// induced-subgraph invariant, is every shard holding the edge.
			for s := 0; s < sm.numShards; s++ {
				sv := sm.shards[s]
				lu, uIn := sv.g2l[m.U]
				lv, vIn := sv.g2l[m.V]
				if uIn && vIn {
					a := acc(s)
					delete(a.emitted, edgeKey(m.U, m.V))
					a.muts = append(a.muts, Mutation{Op: OpRemoveEdge, U: lu, V: lv})
				}
			}

		case OpRelabel:
			l, _ := sm.alphabet.Lookup(m.Label)
			undo.touchLabel(sm, m.U)
			sm.labels[m.U] = l
			for s := 0; s < sm.numShards; s++ {
				if lu, ok := sm.shards[s].g2l[m.U]; ok {
					a := acc(s)
					a.muts = append(a.muts, Mutation{Op: OpRelabel, U: lu, Label: m.Label})
				}
			}
		}
	}

	var out []ShardDelta
	for s, a := range accs {
		if a != nil && len(a.muts) > 0 {
			out = append(out, ShardDelta{Shard: s, Muts: a.muts, NewNodes: a.newNodes})
		}
	}
	return out, func() { sm.rollback(undo) }, nil
}

// relax installs distance d for seed in shard s if it improves on the
// recorded value, then BFS-propagates the improvement outward up to the
// halo bound. A node entering the membership for the first time is
// pulled: its local ID is assigned, and an add_node plus its full
// adjacency among current members is appended to the sub-batch — the
// halo repair that keeps the shard graph an exact induced subgraph.
func (sm *ShardMap) relax(s int, a *deltaAcc, undo *smUndo, seed NodeID, d int32) {
	if int(d) > sm.haloDepth {
		return
	}
	sv := sm.shards[s]
	su := undo.shardState(sm, s)
	type cand struct {
		node NodeID
		d    int32
	}
	queue := []cand{{seed, d}}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		cur, member := sv.dist[c.node]
		if member && cur <= c.d {
			continue
		}
		if !member {
			sm.pull(s, sv, a, su, c.node)
		}
		su.touchDist(sv, c.node)
		sv.dist[c.node] = c.d
		if nd := c.d + 1; int(nd) <= sm.haloDepth {
			for _, x := range sm.sortedNeighbors(c.node) {
				if xd, ok := sv.dist[x]; !ok || xd > nd {
					queue = append(queue, cand{x, nd})
				}
			}
		}
	}
}

// pull admits global node v into shard s: assigns the next local ID and
// appends add_node plus every edge between v and an existing member to
// the sub-batch (deduplicated against edges the batch already shipped).
func (sm *ShardMap) pull(s int, sv *shardMembers, a *deltaAcc, su *shardUndo, v NodeID) {
	lv := sv.count
	sv.g2l[v] = lv
	sv.count++
	su.pulled = append(su.pulled, v)
	a.newNodes = append(a.newNodes, v)
	a.muts = append(a.muts, Mutation{
		Op:    OpAddNode,
		Label: sm.alphabet.Name(sm.labels[v]),
		Name:  sm.names[v],
	})
	for _, x := range sm.sortedNeighbors(v) {
		lx, ok := sv.g2l[x]
		if !ok {
			continue
		}
		k := edgeKey(v, x)
		if _, done := a.emitted[k]; done {
			continue
		}
		a.emitted[k] = struct{}{}
		a.muts = append(a.muts, Mutation{Op: OpAddEdge, U: lv, V: lx})
	}
}
