package graph

import (
	"math/rand"
	"testing"
)

// partitionTestGraph builds a connected labelled graph with hubs and
// periphery, the shape shard halos have to cope with.
func partitionTestGraph(t testing.TB, n int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilderWithAlphabet(MustAlphabet("a", "b", "c"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(NodeID(rng.Intn(v)), NodeID(v)); err != nil {
			t.Fatal(err)
		}
		u := rng.Intn(n)
		if u != v {
			if err := b.AddEdge(NodeID(v), NodeID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.MustBuild()
}

func TestRootShardDeterministicAndBounded(t *testing.T) {
	for _, nShards := range []int{1, 2, 4, 7} {
		counts := make([]int, nShards)
		for v := NodeID(0); v < 4096; v++ {
			s := RootShard(v, nShards)
			if s < 0 || s >= nShards {
				t.Fatalf("RootShard(%d, %d) = %d out of range", v, nShards, s)
			}
			if s != RootShard(v, nShards) {
				t.Fatalf("RootShard(%d, %d) not deterministic", v, nShards)
			}
			counts[s]++
		}
		// Rendezvous hashing should balance within a loose factor; a
		// pathological skew means the mixer is broken.
		for s, c := range counts {
			if nShards > 1 && (c < 4096/nShards/2 || c > 4096/nShards*2) {
				t.Errorf("shard %d/%d holds %d of 4096 roots; rendezvous weight badly skewed", s, nShards, c)
			}
		}
	}
}

// TestRootShardConsistency: growing the shard count only moves roots
// whose winner is the new shard — the rendezvous property that makes
// resharding cheap.
func TestRootShardConsistency(t *testing.T) {
	moved, kept := 0, 0
	for v := NodeID(0); v < 4096; v++ {
		before := RootShard(v, 4)
		after := RootShard(v, 5)
		if after != before {
			if after != 4 {
				t.Fatalf("root %d moved %d -> %d when shard 4 was added; rendezvous consistency violated", v, before, after)
			}
			moved++
		} else {
			kept++
		}
	}
	if moved == 0 {
		t.Error("no root moved to the new shard; weight function is degenerate")
	}
	t.Logf("adding shard 5: %d/%d roots moved", moved, moved+kept)
}

func TestPartitionByRootCoversEveryNodeOnce(t *testing.T) {
	g := partitionTestGraph(t, 300, 7)
	for _, nShards := range []int{1, 4, 6} {
		plans, err := PartitionByRoot(g, PartitionConfig{NumShards: nShards, HaloDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(plans) != nShards {
			t.Fatalf("%d plans, want %d", len(plans), nShards)
		}
		if err := ValidatePartition(g, plans); err != nil {
			t.Fatalf("nShards=%d: %v", nShards, err)
		}
		total := 0
		for _, p := range plans {
			total += len(p.OwnedRoots)
			if err := p.Graph.Validate(); err != nil {
				t.Fatalf("shard %d graph invalid: %v", p.Shard, err)
			}
		}
		if total != g.NumNodes() {
			t.Fatalf("nShards=%d: shards own %d roots, graph has %d nodes", nShards, total, g.NumNodes())
		}
	}
}

// TestPartitionHaloIsExactlyKHop: a shard's node set must be the union
// of the distance-<=HaloDepth balls of its owned roots — nothing
// missing (correctness) and nothing extra (snapshot bloat).
func TestPartitionHaloIsExactlyKHop(t *testing.T) {
	g := partitionTestGraph(t, 200, 3)
	const halo = 2
	plans, err := PartitionByRoot(g, PartitionConfig{NumShards: 4, HaloDepth: halo})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		want := map[NodeID]bool{}
		for _, r := range p.OwnedRoots {
			for _, v := range KHop(g, r, halo) {
				want[v] = true
			}
		}
		have := map[NodeID]bool{}
		for _, global := range p.LocalToGlobal {
			have[global] = true
		}
		if len(have) != len(want) {
			t.Fatalf("shard %d holds %d nodes, want %d", p.Shard, len(have), len(want))
		}
		for v := range want {
			if !have[v] {
				t.Fatalf("shard %d missing halo node %d", p.Shard, v)
			}
		}
	}
}

// TestPartitionHaloPreservesInteriorDegrees: every node strictly inside
// the halo (distance <= HaloDepth-1 of an owned root) must keep its
// full-graph degree in the shard graph — the property dmax pruning
// depends on.
func TestPartitionHaloPreservesInteriorDegrees(t *testing.T) {
	g := partitionTestGraph(t, 200, 11)
	const halo = 3
	plans, err := PartitionByRoot(g, PartitionConfig{NumShards: 4, HaloDepth: halo})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		interior := map[NodeID]bool{}
		for _, r := range p.OwnedRoots {
			for _, v := range KHop(g, r, halo-1) {
				interior[v] = true
			}
		}
		g2l := p.GlobalToLocal()
		for v := range interior {
			if p.Graph.Degree(g2l[v]) != g.Degree(v) {
				t.Fatalf("shard %d: interior node %d degree %d, full graph %d",
					p.Shard, v, p.Graph.Degree(g2l[v]), g.Degree(v))
			}
		}
	}
}

func TestPartitionRejectsBadConfig(t *testing.T) {
	g := partitionTestGraph(t, 10, 1)
	if _, err := PartitionByRoot(g, PartitionConfig{NumShards: 0, HaloDepth: 2}); err == nil {
		t.Error("NumShards=0 accepted")
	}
	if _, err := PartitionByRoot(g, PartitionConfig{NumShards: 2, HaloDepth: 0}); err == nil {
		t.Error("HaloDepth=0 accepted")
	}
}
