package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// randomGraph builds a seeded random heterogeneous graph, sometimes with
// node names and duplicate AddEdge calls, exercising the builder paths a
// snapshot must survive.
func randomSnapGraph(t *testing.T, rng *rand.Rand, n int) *Graph {
	t.Helper()
	labels := []string{"author", "paper", "venue", "term"}[:1+rng.Intn(4)]
	b := NewBuilderWithAlphabet(MustAlphabet(labels...))
	named := rng.Intn(2) == 0
	for i := 0; i < n; i++ {
		id, err := b.AddLabeledNode(Label(rng.Intn(len(labels))))
		if err != nil {
			t.Fatal(err)
		}
		if named && rng.Intn(4) == 0 {
			b.SetName(id, "node-"+string(rune('a'+rng.Intn(26)))+string(rune('0'+i%10)))
		}
	}
	edges := rng.Intn(4 * n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireGraphsEqual compares two graphs observation-by-observation:
// alphabet, labels, names, adjacency (with incident edge ids), endpoints,
// and full Edges iteration order.
func requireGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.NumLabels() != want.NumLabels() {
		t.Fatalf("shape mismatch: got %v, want %v", got, want)
	}
	wantNames := want.Alphabet().Names()
	gotNames := got.Alphabet().Names()
	for i := range wantNames {
		if wantNames[i] != gotNames[i] {
			t.Fatalf("alphabet[%d] = %q, want %q", i, gotNames[i], wantNames[i])
		}
		if l, ok := got.Alphabet().Lookup(wantNames[i]); !ok || l != Label(i) {
			t.Fatalf("alphabet lookup %q = (%d, %v)", wantNames[i], l, ok)
		}
	}
	for v := NodeID(0); int(v) < want.NumNodes(); v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("label(%d) = %d, want %d", v, got.Label(v), want.Label(v))
		}
		if got.Name(v) != want.Name(v) {
			t.Fatalf("name(%d) = %q, want %q", v, got.Name(v), want.Name(v))
		}
		wa, ga := want.Neighbors(v), got.Neighbors(v)
		we, ge := want.IncidentEdges(v), got.IncidentEdges(v)
		if len(wa) != len(ga) {
			t.Fatalf("degree(%d) = %d, want %d", v, len(ga), len(wa))
		}
		for i := range wa {
			if wa[i] != ga[i] || we[i] != ge[i] {
				t.Fatalf("adjacency(%d)[%d] = (%d, e%d), want (%d, e%d)", v, i, ga[i], ge[i], wa[i], we[i])
			}
		}
	}
	for e := EdgeID(0); int(e) < want.NumEdges(); e++ {
		wu, wv := want.EdgeEndpoints(e)
		gu, gv := got.EdgeEndpoints(e)
		if wu != gu || wv != gv {
			t.Fatalf("edge %d = (%d, %d), want (%d, %d)", e, gu, gv, wu, wv)
		}
	}
	var wantEdges, gotEdges [][2]NodeID
	want.Edges(func(u, v NodeID) bool { wantEdges = append(wantEdges, [2]NodeID{u, v}); return true })
	got.Edges(func(u, v NodeID) bool { gotEdges = append(gotEdges, [2]NodeID{u, v}); return true })
	if len(wantEdges) != len(gotEdges) {
		t.Fatalf("Edges yielded %d pairs, want %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, gotEdges[i], wantEdges[i])
		}
	}
}

// TestBinaryRoundTrip pins the binary codec against random graphs in both
// decode modes and at both aligned and misaligned base offsets.
func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randomSnapGraph(t, rng, 1+rng.Intn(120))
		base := rng.Intn(64) // arbitrary file offsets, aligned or not
		payload, err := EncodeBinary(g, base)
		if err != nil {
			t.Fatal(err)
		}
		// Re-create the promised file placement: the payload's first byte
		// sits at file offset base, so shift the buffer accordingly
		// before aliasing.
		file := append(make([]byte, base), payload...)
		view := file[base:]

		for _, alias := range []bool{false, true} {
			got, aliased, err := DecodeBinary(view, alias)
			if err != nil {
				t.Fatalf("trial %d alias=%v: %v", trial, alias, err)
			}
			if alias && g.NumNodes() > 0 && !aliased {
				// The encoder aligned sections for this base; aliasing
				// must engage whenever the slice lands on its promised
				// offset modulo 8 (true here: file starts at offset 0 of
				// a fresh allocation, which Go aligns to at least 8).
				t.Fatalf("trial %d: alias requested but decode copied", trial)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d alias=%v: decoded graph invalid: %v", trial, alias, err)
			}
			requireGraphsEqual(t, g, got)
		}
	}
}

// TestBinaryMisalignedFallsBackToCopy shifts the payload off its
// promised alignment; decode must transparently copy, never alias a
// misaligned pointer, and still produce an identical graph.
func TestBinaryMisalignedFallsBackToCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomSnapGraph(t, rng, 80)
	payload, err := EncodeBinary(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	shifted := append(make([]byte, 1), payload...) // everything now odd-aligned
	got, aliased, err := DecodeBinary(shifted[1:], true)
	if err != nil {
		t.Fatal(err)
	}
	if aliased {
		t.Fatal("decode aliased a misaligned payload")
	}
	requireGraphsEqual(t, g, got)
}

// TestBinaryEmptyGraph round-trips the degenerate shapes.
func TestBinaryEmptyGraph(t *testing.T) {
	for _, build := range []func() *Graph{
		func() *Graph { return NewBuilder().MustBuild() },
		func() *Graph { return NewBuilderWithAlphabet(MustAlphabet("only")).MustBuild() },
		func() *Graph {
			b := NewBuilderWithAlphabet(MustAlphabet("only"))
			b.AddLabeledNode(0)
			b.AddLabeledNode(0)
			return b.MustBuild()
		},
	} {
		g := build()
		payload, err := EncodeBinary(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecodeBinary(payload, true)
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsEqual(t, g, got)
	}
}

// TestBinaryDecodeRejectsCorruption flips bytes across the payload; the
// decoder must reject or — when the flip lands in dead padding — still
// produce a structurally valid graph. It must never panic.
func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomSnapGraph(t, rng, 60)
	payload, err := EncodeBinary(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte{}, payload...)
		mut[rng.Intn(len(mut))] ^= byte(1) << rng.Intn(8)
		got, _, err := DecodeBinary(mut, false)
		if err != nil {
			continue
		}
		// Accepted: the flip must not have produced an unsafe graph. The
		// decoder guarantees indexing safety; probe the hot accessors.
		for v := NodeID(0); int(v) < got.NumNodes(); v++ {
			got.Neighbors(v)
			got.NeighborLabelRuns(v)
		}
	}
	// Truncations at every prefix length must be rejected or safe too.
	for cut := 0; cut < len(payload); cut += 13 {
		if _, _, err := DecodeBinary(payload[:cut], false); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestBuildParallelMatchesSerial pins the parallel Build output bitwise
// against the one-worker path over random graphs large enough to engage
// every parallel stage.
func TestBuildParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		n := 500 + rng.Intn(1500)
		m := parallelBuildMin + rng.Intn(parallelBuildMin)
		labels := MustAlphabet("a", "b", "c")
		mk := func() *Builder {
			return NewBuilderWithAlphabet(labels)
		}
		seed := rng.Int63()
		fill := func(b *Builder) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				b.AddLabeledNode(Label(r.Intn(3)))
			}
			for i := 0; i < m; i++ {
				u, v := r.Intn(n), r.Intn(n)
				if u != v {
					b.AddEdge(NodeID(u), NodeID(v))
				}
			}
		}
		serial, parallel := mk(), mk()
		fill(serial)
		fill(parallel)
		gs, err := serial.build(1)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := parallel.build(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := gp.Validate(); err != nil {
			t.Fatalf("parallel build invalid: %v", err)
		}
		requireGraphsEqual(t, gs, gp)

		// The TSV rendering is a byte-level fingerprint of the whole
		// structure; require exact agreement there too.
		var bs, bp bytes.Buffer
		if err := WriteTSV(&bs, gs); err != nil {
			t.Fatal(err)
		}
		if err := WriteTSV(&bp, gp); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
			t.Fatal("parallel and serial builds render differently")
		}
	}
}

// TestEncodeBinaryRejectsOversizedBlob pins the blob-size bound: a name
// blob whose cumulative length exceeds int32 must be rejected up front,
// not written with silently wrapped offsets. The test shares one big
// string across many nodes so the check trips before any multi-GiB blob
// is materialised.
func TestEncodeBinaryRejectsOversizedBlob(t *testing.T) {
	big := strings.Repeat("x", 1<<27) // 128 MiB, shared backing
	names := make([]string, 17)       // 17 × 128 MiB > MaxInt32
	for i := range names {
		names[i] = big
	}
	if _, _, err := packStrings(names); err == nil {
		t.Fatal("packStrings accepted a >2GiB blob")
	}

	b := NewBuilderWithAlphabet(MustAlphabet("a"))
	for i := 0; i < len(names); i++ {
		id, err := b.AddLabeledNode(0)
		if err != nil {
			t.Fatal(err)
		}
		b.SetName(id, big)
	}
	g := b.MustBuild()
	if _, err := EncodeBinary(g, 0); err == nil {
		t.Fatal("EncodeBinary accepted >2GiB of node names")
	}
}

// TestBinaryDecodeRejectsMismatchedEnds swaps two edges' entries in the
// ends section: each entry stays individually in bounds and
// smaller-first, but the incidences' edge ids now resolve to the wrong
// node pairs. The decoder must reject the payload rather than let
// IncidentEdges→EdgeEndpoints silently contradict the adjacency.
func TestBinaryDecodeRejectsMismatchedEnds(t *testing.T) {
	b := NewBuilderWithAlphabet(MustAlphabet("a"))
	for i := 0; i < 4; i++ {
		b.AddLabeledNode(0)
	}
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	payload, err := EncodeBinary(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int(binary.LittleEndian.Uint64(payload[40+16*secEnds:]))
	var tmp [8]byte
	copy(tmp[:], payload[off:off+8])
	copy(payload[off:off+8], payload[off+8:off+16])
	copy(payload[off+8:off+16], tmp[:])
	for _, alias := range []bool{false, true} {
		if _, _, err := DecodeBinary(payload, alias); err == nil {
			t.Fatalf("alias=%v: ends/incidence mismatch accepted", alias)
		}
	}
}
