package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// Explicit coverage of Builder validation error paths that the rest of
// the suite only exercises implicitly (error text, negative IDs, the
// AddNamedNode path, alphabet construction failures).

func TestBuilderSelfLoopErrorText(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 0); err == nil {
		t.Fatal("self loop accepted")
	} else if !strings.Contains(err.Error(), "self loop") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBuilderRejectsNegativeEndpoints(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]NodeID{{2, 0}, {-1, 1}, {0, -1}} {
		if err := b.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("edge %d-%d accepted, want unknown-node error", e[0], e[1])
		}
	}
}

func TestBuilderAddNamedNodeRejectsUnknownLabel(t *testing.T) {
	b := NewBuilderWithAlphabet(MustAlphabet("loc", "org"))
	if _, err := b.AddNamedNode("loc", "n0"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNamedNode("ghost", "n1"); err == nil {
		t.Fatal("unknown label accepted by AddNamedNode")
	}
	if b.NumNodes() != 1 {
		t.Fatalf("failed AddNamedNode changed node count to %d", b.NumNodes())
	}
}

func TestBuilderAddLabeledNodeRejectsNegative(t *testing.T) {
	b := NewBuilderWithAlphabet(MustAlphabet("loc"))
	if _, err := b.AddLabeledNode(Label(-1)); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestBuilderDedupKeepsAdjacencySorted(t *testing.T) {
	// Duplicates across orientations plus a second edge: after dedup the
	// graph must still satisfy the full Validate contract (sorted
	// adjacency, symmetric incidences, aligned edge IDs).
	b := NewBuilder()
	for _, l := range []string{"b", "a", "a"} {
		if _, err := b.AddNode(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 0}, {0, 1}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAlphabetConstructionRejects(t *testing.T) {
	if _, err := NewAlphabet("a", "a"); err == nil {
		t.Fatal("duplicate label name accepted")
	}
	if _, err := NewAlphabet(""); err == nil {
		t.Fatal("empty label name accepted")
	}
}

// TestParallelSortChunkRounding covers worker/length combinations where
// ceil(L/ceil(L/chunks)) < chunks, i.e. chunk rounding produces fewer
// ranges than the nominal chunk count. A regression here panicked on
// high-GOMAXPROCS machines for edge counts just above parallelBuildMin
// (per-chunk count tables were sized to the nominal count, leaving nil
// tails the bucket-starts pass indexed into).
func TestParallelSortChunkRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ n, workers int }{
		{32769, 64}, // chunks=256, bounds=255: the reported crash shape
		{parallelBuildMin + 1, 46},
		{100001, 96},
		{1000, 7},
		{3, 64}, // fewer elements than workers
		{1, 2},
	} {
		s := make([]uint64, tc.n)
		for i := range s {
			s[i] = rng.Uint64()
		}
		want := append([]uint64(nil), s...)
		sortUint64(want)
		parallelSortUint64(s, tc.workers)
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("n=%d workers=%d: s[%d] = %d, want %d", tc.n, tc.workers, i, s[i], want[i])
			}
		}
	}
}

// TestBuildHighWorkerCounts runs the full build at worker counts past
// the chunk-rounding boundary and pins the output against the serial
// path.
func TestBuildHighWorkerCounts(t *testing.T) {
	mk := func() *Builder {
		b := NewBuilderWithAlphabet(MustAlphabet("a", "b"))
		r := rand.New(rand.NewSource(29))
		n := 400
		for i := 0; i < n; i++ {
			b.AddLabeledNode(Label(i % 2))
		}
		for len(b.edges) < parallelBuildMin+1 {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
		return b
	}
	gs, err := mk().build(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{46, 64, 128} {
		gp, err := mk().build(workers)
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsEqual(t, gs, gp)
	}
}
