package graph

import (
	"strings"
	"testing"
)

// Explicit coverage of Builder validation error paths that the rest of
// the suite only exercises implicitly (error text, negative IDs, the
// AddNamedNode path, alphabet construction failures).

func TestBuilderSelfLoopErrorText(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 0); err == nil {
		t.Fatal("self loop accepted")
	} else if !strings.Contains(err.Error(), "self loop") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBuilderRejectsNegativeEndpoints(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]NodeID{{2, 0}, {-1, 1}, {0, -1}} {
		if err := b.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("edge %d-%d accepted, want unknown-node error", e[0], e[1])
		}
	}
}

func TestBuilderAddNamedNodeRejectsUnknownLabel(t *testing.T) {
	b := NewBuilderWithAlphabet(MustAlphabet("loc", "org"))
	if _, err := b.AddNamedNode("loc", "n0"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNamedNode("ghost", "n1"); err == nil {
		t.Fatal("unknown label accepted by AddNamedNode")
	}
	if b.NumNodes() != 1 {
		t.Fatalf("failed AddNamedNode changed node count to %d", b.NumNodes())
	}
}

func TestBuilderAddLabeledNodeRejectsNegative(t *testing.T) {
	b := NewBuilderWithAlphabet(MustAlphabet("loc"))
	if _, err := b.AddLabeledNode(Label(-1)); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestBuilderDedupKeepsAdjacencySorted(t *testing.T) {
	// Duplicates across orientations plus a second edge: after dedup the
	// graph must still satisfy the full Validate contract (sorted
	// adjacency, symmetric incidences, aligned edge IDs).
	b := NewBuilder()
	for _, l := range []string{"b", "a", "a"} {
		if _, err := b.AddNode(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 0}, {0, 1}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAlphabetConstructionRejects(t *testing.T) {
	if _, err := NewAlphabet("a", "a"); err == nil {
		t.Fatal("duplicate label name accepted")
	}
	if _, err := NewAlphabet(""); err == nil {
		t.Fatal("empty label name accepted")
	}
}
