// Package graph provides the heterogeneous (node-labelled) undirected graph
// substrate used by the subgraph-feature framework.
//
// A Graph is an immutable compressed-sparse-row structure produced by a
// Builder. Adjacency lists are sorted by (neighbour label, neighbour id),
// which the census's label-grouping heuristic relies on: all neighbours that
// share a label form one contiguous run. Graphs carry a label alphabet that
// maps small integer Label values to human-readable names.
//
// Graphs are undirected and contain no self loops or parallel edges,
// matching the model of Spitz et al. (GRADES-NDA'18), §3.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within one Graph. IDs are dense: a graph with n
// nodes uses IDs 0..n-1.
type NodeID int32

// Label identifies a node type (class) within one Graph's alphabet. Labels
// are dense: a graph with k labels uses Labels 0..k-1.
type Label int32

// EdgeID identifies an undirected edge within one Graph. IDs are dense:
// a graph with m edges uses EdgeIDs 0..m-1. Both directed incidences of an
// undirected edge share one EdgeID, which lets algorithms keep per-edge
// state in flat arrays.
type EdgeID int32

// Graph is an immutable heterogeneous network: an undirected, loop-free,
// simple graph whose nodes carry exactly one label each.
//
// The zero value is an empty graph with no nodes and no labels.
type Graph struct {
	labels []Label  // labels[v] is the label of node v
	names  []string // names[v] is an optional node name ("" if unset)

	offsets []int32  // CSR offsets, len = numNodes+1
	adj     []NodeID // CSR adjacency, sorted by (label, id) per node
	adjEdge []EdgeID // adjEdge[i] is the EdgeID of the incidence adj[i]
	ends    []NodeID // ends[2*e], ends[2*e+1] are the endpoints of edge e, smaller first

	alphabet *Alphabet
	numEdges int

	// backing retains the memory that aliased CSR slices point into (the
	// read-only mapping on the zero-copy load path); see PinBacking.
	backing any
}

// PinBacking retains an opaque reference to the memory backing the
// graph's CSR slices — the read-only file mapping on the zero-copy load
// path. Accessors hand out sub-slices of those arrays (Neighbors,
// IncidentEdges) which do not keep the Graph itself reachable, so no
// finalizer can know when the backing is truly dead; pinning it here and
// never releasing it is the only sound lifetime. The pages are clean and
// file-backed, so an unreleased mapping costs address space, not
// resident memory.
func (g *Graph) PinBacking(backing any) { g.backing = backing }

// Alphabet maps between Label values and their string names. An Alphabet is
// immutable once its Graph is built.
type Alphabet struct {
	names []string
	index map[string]Label
}

// NewAlphabet returns an alphabet over the given label names, in order.
// Duplicate names are an error.
func NewAlphabet(names ...string) (*Alphabet, error) {
	a := &Alphabet{index: make(map[string]Label, len(names))}
	for _, n := range names {
		if _, err := a.add(n); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// MustAlphabet is like NewAlphabet but panics on error. It is intended for
// statically known label sets in tests and examples.
func MustAlphabet(names ...string) *Alphabet {
	a, err := NewAlphabet(names...)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Alphabet) add(name string) (Label, error) {
	if name == "" {
		return 0, fmt.Errorf("graph: empty label name")
	}
	if _, ok := a.index[name]; ok {
		return 0, fmt.Errorf("graph: duplicate label name %q", name)
	}
	l := Label(len(a.names))
	a.names = append(a.names, name)
	a.index[name] = l
	return l, nil
}

// Len returns the number of labels in the alphabet.
func (a *Alphabet) Len() int { return len(a.names) }

// Name returns the name of label l. It panics if l is out of range.
func (a *Alphabet) Name(l Label) string { return a.names[l] }

// Lookup returns the label with the given name and whether it exists.
func (a *Alphabet) Lookup(name string) (Label, bool) {
	l, ok := a.index[name]
	return l, ok
}

// Names returns a copy of all label names in label order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of undirected edges in the graph.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumLabels returns the size of the label alphabet.
func (g *Graph) NumLabels() int {
	if g.alphabet == nil {
		return 0
	}
	return g.alphabet.Len()
}

// Alphabet returns the graph's label alphabet.
func (g *Graph) Alphabet() *Alphabet { return g.alphabet }

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) Label { return g.labels[v] }

// Name returns the optional name of node v ("" if none was assigned).
func (g *Graph) Name(v NodeID) string {
	if g.names == nil {
		return ""
	}
	return g.names[v]
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v, sorted by (label, id).
// The returned slice aliases the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdges returns the EdgeIDs of v's incidences, aligned with
// Neighbors(v): IncidentEdges(v)[i] is the id of the edge between v and
// Neighbors(v)[i]. The returned slice aliases graph storage.
func (g *Graph) IncidentEdges(v NodeID) []EdgeID {
	return g.adjEdge[g.offsets[v]:g.offsets[v+1]]
}

// EdgeEndpoints returns the two endpoints of edge e, smaller NodeID first.
func (g *Graph) EdgeEndpoints(e EdgeID) (NodeID, NodeID) {
	return g.ends[2*e], g.ends[2*e+1]
}

// HasEdge reports whether nodes u and v are adjacent. It runs in
// O(log degree(u)) time.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	// Search within the label run of v's label, since adjacency is sorted
	// by (label, id).
	lv := g.labels[v]
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool {
		w := adj[i]
		lw := g.labels[w]
		if lw != lv {
			return lw > lv
		}
		return w >= v
	})
	return i < len(adj) && adj[i] == v
}

// LabelRun describes a maximal run of same-labelled neighbours in an
// adjacency list.
type LabelRun struct {
	Label Label
	Nodes []NodeID // aliases graph storage; do not modify
}

// NeighborLabelRuns returns the adjacency of v grouped into per-label runs,
// in ascending label order. The runs alias the graph's internal storage.
// This is the access path used by the census's heterogeneous optimization
// heuristic (§3.2), which processes all same-labelled neighbours at once.
func (g *Graph) NeighborLabelRuns(v NodeID) []LabelRun {
	adj := g.Neighbors(v)
	var runs []LabelRun
	for i := 0; i < len(adj); {
		l := g.labels[adj[i]]
		j := i + 1
		for j < len(adj) && g.labels[adj[j]] == l {
			j++
		}
		runs = append(runs, LabelRun{Label: l, Nodes: adj[i:j]})
		i = j
	}
	return runs
}

// CountLabels returns, for each label, the number of nodes carrying it.
func (g *Graph) CountLabels() []int {
	counts := make([]int, g.NumLabels())
	for _, l := range g.labels {
		counts[l]++
	}
	return counts
}

// NodesWithLabel returns all node IDs carrying label l, in ascending order.
func (g *Graph) NodesWithLabel(l Label) []NodeID {
	var out []NodeID
	for v, lv := range g.labels {
		if lv == l {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// MaxDegree returns the largest node degree in the graph (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// Edges calls fn for every undirected edge (u, v) with u < v. Iteration
// stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// Validate checks internal invariants: offset monotonicity, adjacency
// symmetry, absence of self loops, per-node (label, id) sort order, and
// absence of duplicate edges. It is intended for tests and for graphs
// deserialized from external input.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 || int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: offset bounds [%d,%d] do not cover adjacency of length %d",
			g.offsets[0], g.offsets[n], len(g.adj))
	}
	if len(g.adj) != 2*g.numEdges {
		return fmt.Errorf("graph: adjacency length %d inconsistent with %d edges", len(g.adj), g.numEdges)
	}
	for v := NodeID(0); int(v) < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
		adj := g.Neighbors(v)
		for i, w := range adj {
			if w == v {
				return fmt.Errorf("graph: self loop at node %d", v)
			}
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", v, w)
			}
			if i > 0 {
				p := adj[i-1]
				if g.labels[p] > g.labels[w] || (g.labels[p] == g.labels[w] && p >= w) {
					return fmt.Errorf("graph: adjacency of node %d not (label,id)-sorted or has duplicates", v)
				}
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric edge %d-%d", v, w)
			}
		}
	}
	for _, l := range g.labels {
		if int(l) < 0 || int(l) >= g.NumLabels() {
			return fmt.Errorf("graph: label %d out of alphabet range %d", l, g.NumLabels())
		}
	}
	return nil
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d, labels: %d}", g.NumNodes(), g.NumEdges(), g.NumLabels())
}
