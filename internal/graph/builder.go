package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Builder accumulates nodes and edges and freezes them into an immutable
// Graph. A Builder is not safe for concurrent use; Build may be called once.
//
// Builders either adopt a fixed alphabet up front (NewBuilderWithAlphabet)
// or grow one on demand as label names appear (NewBuilder).
//
// Build parallelises edge sorting, CSR construction and per-node adjacency
// sorting across GOMAXPROCS workers; the result is bitwise independent of
// the worker count, so graphs built on different machines stay identical.
type Builder struct {
	alphabet   *Alphabet
	fixedAlpha bool

	labels []Label
	// names holds only explicitly named nodes; most bulk-generated nodes
	// are anonymous, and a sparse map keeps a 10^7-node builder from
	// carrying 16 bytes of empty string header per node.
	names map[NodeID]string
	// edges packs each undirected edge as uint64(u)<<32 | uint64(v) with
	// u < v, so sorting the slice orders edges by (u, v) directly.
	edges []uint64

	built bool
}

// NewBuilder returns a Builder that discovers its label alphabet from the
// label names passed to AddNode.
func NewBuilder() *Builder {
	return &Builder{alphabet: &Alphabet{index: make(map[string]Label)}}
}

// NewBuilderWithAlphabet returns a Builder over a fixed, pre-declared
// alphabet. AddNode calls with unknown label names fail.
func NewBuilderWithAlphabet(a *Alphabet) *Builder {
	return &Builder{alphabet: a, fixedAlpha: true}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// AddNode adds a node with the given label name and returns its ID.
// With a discovered alphabet, new label names extend the alphabet; with a
// fixed alphabet, unknown names are an error.
func (b *Builder) AddNode(labelName string) (NodeID, error) {
	l, ok := b.alphabet.Lookup(labelName)
	if !ok {
		if b.fixedAlpha {
			return 0, fmt.Errorf("graph: unknown label %q", labelName)
		}
		var err error
		l, err = b.alphabet.add(labelName)
		if err != nil {
			return 0, err
		}
	}
	return b.AddLabeledNode(l)
}

// AddLabeledNode adds a node with the given label value and returns its ID.
func (b *Builder) AddLabeledNode(l Label) (NodeID, error) {
	if int(l) < 0 || int(l) >= b.alphabet.Len() {
		return 0, fmt.Errorf("graph: label %d outside alphabet of size %d", l, b.alphabet.Len())
	}
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, l)
	return id, nil
}

// AddNamedNode adds a node with a label name and a node name.
func (b *Builder) AddNamedNode(labelName, nodeName string) (NodeID, error) {
	id, err := b.AddNode(labelName)
	if err != nil {
		return 0, err
	}
	b.SetName(id, nodeName)
	return id, nil
}

// SetName assigns a display name to an already-added node. An empty name
// clears it.
func (b *Builder) SetName(id NodeID, name string) {
	if name == "" {
		delete(b.names, id)
		return
	}
	if b.names == nil {
		b.names = make(map[NodeID]string)
	}
	b.names[id] = name
}

// AddEdge records an undirected edge between u and v. Self loops are
// rejected; duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	n := NodeID(len(b.labels))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge %d-%d references unknown node (have %d nodes)", u, v, n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(uint32(u))<<32|uint64(uint32(v)))
	return nil
}

// parallelBuildMin is the edge count under which Build stays on one
// goroutine: below it, fan-out overhead dominates any speedup.
const parallelBuildMin = 1 << 15

// Build freezes the builder into an immutable Graph. Edges are
// deduplicated and adjacency lists are sorted by (label, id). Large
// graphs are built in parallel across GOMAXPROCS workers; the output is
// identical at any worker count.
func (b *Builder) Build() (*Graph, error) {
	return b.build(runtime.GOMAXPROCS(0))
}

// build is Build with an explicit worker count, kept unexported so the
// equivalence tests can pin parallel output against the serial path.
func (b *Builder) build(workers int) (*Graph, error) {
	if b.built {
		return nil, fmt.Errorf("graph: Build called twice")
	}
	b.built = true
	if workers < 1 || len(b.edges) < parallelBuildMin {
		workers = 1
	}

	// Sort and deduplicate edges by (u, v); the packed representation
	// makes both a plain uint64 problem.
	if workers == 1 {
		sortUint64(b.edges)
	} else {
		parallelSortUint64(b.edges, workers)
	}
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}

	n := len(b.labels)
	m := len(dedup)
	deg := make([]int32, n)
	eachChunk(m, workers, func(lo, hi int) {
		if workers == 1 {
			for _, e := range dedup[lo:hi] {
				deg[e>>32]++
				deg[uint32(e)]++
			}
			return
		}
		for _, e := range dedup[lo:hi] {
			atomic.AddInt32(&deg[e>>32], 1)
			atomic.AddInt32(&deg[uint32(e)], 1)
		}
	})
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}

	// Scatter both incidences of every edge through per-node cursors.
	// Within one adjacency segment the arrival order is scheduling-
	// dependent under parallel fill, but the per-node sort below imposes
	// a strict total order — neighbours are unique — so the final layout
	// is deterministic anyway.
	adj := make([]NodeID, offsets[n])
	adjEdge := make([]EdgeID, offsets[n])
	ends := make([]NodeID, 2*m)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	eachChunk(m, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := dedup[i]
			u, v := NodeID(e>>32), NodeID(uint32(e))
			var pu, pv int32
			if workers == 1 {
				pu = cursor[u]
				cursor[u]++
				pv = cursor[v]
				cursor[v]++
			} else {
				pu = atomic.AddInt32(&cursor[u], 1) - 1
				pv = atomic.AddInt32(&cursor[v], 1) - 1
			}
			adj[pu], adjEdge[pu] = v, EdgeID(i)
			adj[pv], adjEdge[pv] = u, EdgeID(i)
			ends[2*i], ends[2*i+1] = u, v
		}
	})

	g := &Graph{
		labels:   b.labels,
		names:    materializeNames(b.names, n),
		offsets:  offsets,
		adj:      adj,
		adjEdge:  adjEdge,
		ends:     ends,
		alphabet: b.alphabet,
		numEdges: m,
	}
	// Sort each adjacency list by (label, id), keeping edge ids aligned.
	eachChunk(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s, e := offsets[v], offsets[v+1]
			sortAdjSegment(g.labels, adj[s:e], adjEdge[s:e])
		}
	})
	return g, nil
}

// materializeNames expands the sparse name map into the dense slice the
// Graph indexes by node id; nil when no node was named.
func materializeNames(names map[NodeID]string, n int) []string {
	if len(names) == 0 {
		return nil
	}
	out := make([]string, n)
	for id, name := range names {
		out[id] = name
	}
	return out
}

// eachChunk runs fn over [0, n) split into one contiguous range per
// worker, blocking until all complete. workers == 1 runs inline.
func eachChunk(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortUint64 sorts in place (sort.Slice without the interface churn of
// adjSorter; the stdlib pdqsort on a concrete closure is fast enough for
// the serial path).
func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// parallelSortUint64 sorts s across workers: an MSB-radix scatter into
// 256 value-range buckets (so bucket order is global order), then an
// independent sort per bucket. Both passes parallelise over chunks; the
// scatter writes through precomputed per-(chunk, bucket) cursors, so no
// two goroutines ever touch the same output index.
func parallelSortUint64(s []uint64, workers int) {
	const bucketBits = 8
	nb := 1 << bucketBits
	shift := 64 - bucketBits

	chunks := workers * 4
	if chunks > len(s) {
		chunks = len(s)
	}
	chunk := (len(s) + chunks - 1) / chunks
	bounds := make([][2]int, 0, chunks)
	for lo := 0; lo < len(s); lo += chunk {
		hi := lo + chunk
		if hi > len(s) {
			hi = len(s)
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	// Rounding can leave fewer ranges than chunks (ceil(L/ceil(L/chunks))
	// < chunks for many L at high worker counts); bounds is the real
	// partition, so every per-chunk table is sized off it.
	counts := make([][]int, len(bounds))
	eachChunk(len(bounds), workers, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			cnt := make([]int, nb)
			for _, e := range s[bounds[c][0]:bounds[c][1]] {
				cnt[e>>uint(shift)]++
			}
			counts[c] = cnt
		}
	})

	// Global bucket starts, then per-chunk write cursors within each
	// bucket (chunks keep their relative order, though sorting erases it).
	starts := make([]int, nb+1)
	for bkt := 0; bkt < nb; bkt++ {
		total := 0
		for c := range counts {
			total += counts[c][bkt]
		}
		starts[bkt+1] = starts[bkt] + total
	}
	cursors := make([][]int, len(bounds))
	next := make([]int, nb)
	copy(next, starts[:nb])
	for c := range bounds {
		cur := make([]int, nb)
		copy(cur, next)
		for bkt := 0; bkt < nb; bkt++ {
			next[bkt] += counts[c][bkt]
		}
		cursors[c] = cur
	}

	out := make([]uint64, len(s))
	eachChunk(len(bounds), workers, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			cur := cursors[c]
			for _, e := range s[bounds[c][0]:bounds[c][1]] {
				bkt := e >> uint(shift)
				out[cur[bkt]] = e
				cur[bkt]++
			}
		}
	})
	copy(s, out)

	// Sort buckets independently; value ranges are disjoint and ordered.
	eachChunk(nb, workers, func(blo, bhi int) {
		for bkt := blo; bkt < bhi; bkt++ {
			sortUint64(s[starts[bkt]:starts[bkt+1]])
		}
	})
}

// sortAdjSegment orders one adjacency segment by (label, id), carrying
// edge ids. Neighbours are unique, so the order is strict and the result
// deterministic. Typical segments are short — insertion sort beats the
// sort.Sort interface machinery there — while hub segments fall through
// to the stdlib.
func sortAdjSegment(labels []Label, adj []NodeID, eids []EdgeID) {
	if len(adj) <= 24 {
		for i := 1; i < len(adj); i++ {
			v, e := adj[i], eids[i]
			lv := labels[v]
			j := i
			for j > 0 && (labels[adj[j-1]] > lv || (labels[adj[j-1]] == lv && adj[j-1] > v)) {
				adj[j], eids[j] = adj[j-1], eids[j-1]
				j--
			}
			adj[j], eids[j] = v, e
		}
		return
	}
	sort.Sort(&adjSorter{labels: labels, adj: adj, edges: eids})
}

// adjSorter sorts an adjacency segment by (label, id), carrying edge ids.
type adjSorter struct {
	labels []Label
	adj    []NodeID
	edges  []EdgeID
}

func (s *adjSorter) Len() int { return len(s.adj) }
func (s *adjSorter) Less(i, j int) bool {
	li, lj := s.labels[s.adj[i]], s.labels[s.adj[j]]
	if li != lj {
		return li < lj
	}
	return s.adj[i] < s.adj[j]
}
func (s *adjSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.edges[i], s.edges[j] = s.edges[j], s.edges[i]
}

// MustBuild is like Build but panics on error. Intended for tests and
// examples with statically valid input.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
