package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and freezes them into an immutable
// Graph. A Builder is not safe for concurrent use; Build may be called once.
//
// Builders either adopt a fixed alphabet up front (NewBuilderWithAlphabet)
// or grow one on demand as label names appear (NewBuilder).
type Builder struct {
	alphabet   *Alphabet
	fixedAlpha bool

	labels []Label
	names  []string
	edges  [][2]NodeID

	built bool
}

// NewBuilder returns a Builder that discovers its label alphabet from the
// label names passed to AddNode.
func NewBuilder() *Builder {
	return &Builder{alphabet: &Alphabet{index: make(map[string]Label)}}
}

// NewBuilderWithAlphabet returns a Builder over a fixed, pre-declared
// alphabet. AddNode calls with unknown label names fail.
func NewBuilderWithAlphabet(a *Alphabet) *Builder {
	return &Builder{alphabet: a, fixedAlpha: true}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// AddNode adds a node with the given label name and returns its ID.
// With a discovered alphabet, new label names extend the alphabet; with a
// fixed alphabet, unknown names are an error.
func (b *Builder) AddNode(labelName string) (NodeID, error) {
	l, ok := b.alphabet.Lookup(labelName)
	if !ok {
		if b.fixedAlpha {
			return 0, fmt.Errorf("graph: unknown label %q", labelName)
		}
		var err error
		l, err = b.alphabet.add(labelName)
		if err != nil {
			return 0, err
		}
	}
	return b.AddLabeledNode(l)
}

// AddLabeledNode adds a node with the given label value and returns its ID.
func (b *Builder) AddLabeledNode(l Label) (NodeID, error) {
	if int(l) < 0 || int(l) >= b.alphabet.Len() {
		return 0, fmt.Errorf("graph: label %d outside alphabet of size %d", l, b.alphabet.Len())
	}
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, l)
	b.names = append(b.names, "")
	return id, nil
}

// AddNamedNode adds a node with a label name and a node name.
func (b *Builder) AddNamedNode(labelName, nodeName string) (NodeID, error) {
	id, err := b.AddNode(labelName)
	if err != nil {
		return 0, err
	}
	b.names[id] = nodeName
	return id, nil
}

// AddEdge records an undirected edge between u and v. Self loops are
// rejected; duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	n := NodeID(len(b.labels))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge %d-%d references unknown node (have %d nodes)", u, v, n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]NodeID{u, v})
	return nil
}

// Build freezes the builder into an immutable Graph. Edges are
// deduplicated and adjacency lists are sorted by (label, id).
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, fmt.Errorf("graph: Build called twice")
	}
	b.built = true

	// Deduplicate edges.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}

	n := len(b.labels)
	deg := make([]int32, n)
	for _, e := range dedup {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]NodeID, offsets[n])
	adjEdge := make([]EdgeID, offsets[n])
	ends := make([]NodeID, 2*len(dedup))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i, e := range dedup {
		adj[cursor[e[0]]] = e[1]
		adjEdge[cursor[e[0]]] = EdgeID(i)
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		adjEdge[cursor[e[1]]] = EdgeID(i)
		cursor[e[1]]++
		ends[2*i] = e[0]
		ends[2*i+1] = e[1]
	}

	g := &Graph{
		labels:   b.labels,
		names:    b.names,
		offsets:  offsets,
		adj:      adj,
		adjEdge:  adjEdge,
		ends:     ends,
		alphabet: b.alphabet,
		numEdges: len(dedup),
	}
	// Sort each adjacency list by (label, id), keeping edge ids aligned.
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		seg := adj[lo:hi]
		eseg := adjEdge[lo:hi]
		sort.Sort(&adjSorter{labels: g.labels, adj: seg, edges: eseg})
	}
	return g, nil
}

// adjSorter sorts an adjacency segment by (label, id), carrying edge ids.
type adjSorter struct {
	labels []Label
	adj    []NodeID
	edges  []EdgeID
}

func (s *adjSorter) Len() int { return len(s.adj) }
func (s *adjSorter) Less(i, j int) bool {
	li, lj := s.labels[s.adj[i]], s.labels[s.adj[j]]
	if li != lj {
		return li < lj
	}
	return s.adj[i] < s.adj[j]
}
func (s *adjSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.edges[i], s.edges[j] = s.edges[j], s.edges[i]
}

// MustBuild is like Build but panics on error. Intended for tests and
// examples with statically valid input.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
