package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The TSV exchange format is line-oriented:
//
//	# comment
//	n <TAB> <label-name> [<TAB> <node-name>]
//	e <TAB> <u> <TAB> <v>
//
// Node IDs are assigned in order of appearance of "n" lines, starting at 0.
// Edge lines reference those implicit IDs. Blank lines are ignored.

// WriteTSV serializes g in the TSV exchange format.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hsgf graph: %d nodes, %d edges, %d labels\n",
		g.NumNodes(), g.NumEdges(), g.NumLabels())
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if name := g.Name(v); name != "" {
			fmt.Fprintf(bw, "n\t%s\t%s\n", g.Alphabet().Name(g.Label(v)), name)
		} else {
			fmt.Fprintf(bw, "n\t%s\n", g.Alphabet().Name(g.Label(v)))
		}
	}
	var err error
	g.Edges(func(u, v NodeID) bool {
		_, err = fmt.Fprintf(bw, "e\t%d\t%d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTSV parses a graph in the TSV exchange format.
func ReadTSV(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "n":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("graph: line %d: malformed node line", lineNo)
			}
			name := ""
			if len(fields) == 3 {
				name = fields[2]
			}
			if _, err := b.AddNamedNode(fields[1], name); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[2])
			}
			if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
