package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The TSV exchange format is line-oriented:
//
//	# comment
//	n <TAB> <label-name> [<TAB> <node-name>]
//	e <TAB> <u> <TAB> <v>
//
// Node IDs are assigned in order of appearance of "n" lines, starting at 0.
// Edge lines reference those implicit IDs. Blank lines are ignored.

// WriteTSV serializes g in the TSV exchange format. Write failures are
// surfaced at the line that hit them — "writing node 17" rather than a
// bare flush error after the damage — so a mid-stream I/O error on a
// large export names where the output ends.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# hsgf graph: %d nodes, %d edges, %d labels\n",
		g.NumNodes(), g.NumEdges(), g.NumLabels()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		var err error
		if name := g.Name(v); name != "" {
			_, err = fmt.Fprintf(bw, "n\t%s\t%s\n", g.Alphabet().Name(g.Label(v)), name)
		} else {
			_, err = fmt.Fprintf(bw, "n\t%s\n", g.Alphabet().Name(g.Label(v)))
		}
		if err != nil {
			return fmt.Errorf("graph: writing node %d: %w", v, err)
		}
	}
	var err error
	var failedEdge [2]NodeID
	g.Edges(func(u, v NodeID) bool {
		if _, err = fmt.Fprintf(bw, "e\t%d\t%d\n", u, v); err != nil {
			failedEdge = [2]NodeID{u, v}
			return false
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge %d-%d: %w", failedEdge[0], failedEdge[1], err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing output: %w", err)
	}
	return nil
}

// ReadTSV parses a graph in the TSV exchange format.
func ReadTSV(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "n":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("graph: line %d: malformed node line", lineNo)
			}
			name := ""
			if len(fields) == 3 {
				name = fields[2]
			}
			if _, err := b.AddNamedNode(fields[1], name); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[2])
			}
			if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		// A scanner failure is the input stream dying (I/O error,
		// oversized line), not a malformed record; name it as such so
		// it cannot be mistaken for a parse error in the data.
		return nil, fmt.Errorf("graph: reading input after line %d: %w", lineNo, err)
	}
	return b.Build()
}
