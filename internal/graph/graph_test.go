package graph

import (
	"math/rand"
	"testing"
)

// buildPath builds the 3-node path from the paper's Figure 1B:
// z - y - z over alphabet {x, y, z}.
func buildPath(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilderWithAlphabet(MustAlphabet("x", "y", "z"))
	z1, _ := b.AddNode("z")
	y, _ := b.AddNode("y")
	z2, _ := b.AddNode("z")
	if err := b.AddEdge(z1, y); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(y, z2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildPath(t)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.NumLabels() != 3 {
		t.Errorf("NumLabels = %d, want 3", g.NumLabels())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(y) = %d, want 2", g.Degree(1))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge 0-2")
	}
	if g.HasEdge(0, 0) {
		t.Error("HasEdge must be false for self loops")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder()
	v, _ := b.AddNode("a")
	if err := b.AddEdge(v, v); err == nil {
		t.Fatal("expected error adding self loop")
	}
}

func TestBuilderRejectsUnknownNode(t *testing.T) {
	b := NewBuilder()
	v, _ := b.AddNode("a")
	if err := b.AddEdge(v, v+1); err == nil {
		t.Fatal("expected error adding edge to unknown node")
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder()
	u, _ := b.AddNode("a")
	v, _ := b.AddNode("b")
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(v, u); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.Degree(u) != 1 || g.Degree(v) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(u), g.Degree(v))
	}
}

func TestBuilderBuildTwice(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a")
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build must fail")
	}
}

func TestFixedAlphabetRejectsUnknownLabel(t *testing.T) {
	b := NewBuilderWithAlphabet(MustAlphabet("a", "b"))
	if _, err := b.AddNode("c"); err == nil {
		t.Fatal("expected error for unknown label on fixed alphabet")
	}
	if _, err := b.AddLabeledNode(Label(7)); err == nil {
		t.Fatal("expected error for out-of-range label value")
	}
}

func TestAlphabet(t *testing.T) {
	a := MustAlphabet("paper", "author", "venue")
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	if a.Name(1) != "author" {
		t.Errorf("Name(1) = %q, want author", a.Name(1))
	}
	l, ok := a.Lookup("venue")
	if !ok || l != 2 {
		t.Errorf("Lookup(venue) = %d,%v, want 2,true", l, ok)
	}
	if _, ok := a.Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
	if _, err := NewAlphabet("a", "a"); err == nil {
		t.Error("duplicate label names must fail")
	}
	if _, err := NewAlphabet(""); err == nil {
		t.Error("empty label name must fail")
	}
	names := a.Names()
	names[0] = "mutated"
	if a.Name(0) != "paper" {
		t.Error("Names must return a copy")
	}
}

func TestAdjacencySortedByLabel(t *testing.T) {
	// Hub connected to nodes of interleaved labels; adjacency must come
	// back grouped by label, ascending id within a group.
	b := NewBuilderWithAlphabet(MustAlphabet("h", "a", "b"))
	hub, _ := b.AddNode("h")
	var ids []NodeID
	for i := 0; i < 6; i++ {
		var v NodeID
		if i%2 == 0 {
			v, _ = b.AddNode("b")
		} else {
			v, _ = b.AddNode("a")
		}
		ids = append(ids, v)
		if err := b.AddEdge(hub, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	adj := g.Neighbors(hub)
	if len(adj) != 6 {
		t.Fatalf("degree = %d, want 6", len(adj))
	}
	for i := 1; i < len(adj); i++ {
		lp, lc := g.Label(adj[i-1]), g.Label(adj[i])
		if lp > lc || (lp == lc && adj[i-1] >= adj[i]) {
			t.Fatalf("adjacency not (label,id)-sorted: %v", adj)
		}
	}
	runs := g.NeighborLabelRuns(hub)
	if len(runs) != 2 {
		t.Fatalf("NeighborLabelRuns = %d runs, want 2", len(runs))
	}
	if runs[0].Label != 1 || runs[1].Label != 2 {
		t.Errorf("run labels = %d,%d, want 1,2", runs[0].Label, runs[1].Label)
	}
	if len(runs[0].Nodes)+len(runs[1].Nodes) != 6 {
		t.Error("runs do not cover adjacency")
	}
	_ = ids
}

func TestCountLabelsAndNodesWithLabel(t *testing.T) {
	g := buildPath(t)
	counts := g.CountLabels()
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 2 {
		t.Errorf("CountLabels = %v, want [0 1 2]", counts)
	}
	zs := g.NodesWithLabel(2)
	if len(zs) != 2 || zs[0] != 0 || zs[1] != 2 {
		t.Errorf("NodesWithLabel(z) = %v, want [0 2]", zs)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := buildPath(t)
	var n int
	g.Edges(func(u, v NodeID) bool {
		if u >= v {
			t.Errorf("Edges yielded u >= v: %d, %d", u, v)
		}
		n++
		return true
	})
	if n != 2 {
		t.Errorf("Edges visited %d edges, want 2", n)
	}
	// Early stop.
	n = 0
	g.Edges(func(u, v NodeID) bool { n++; return false })
	if n != 1 {
		t.Errorf("Edges early stop visited %d, want 1", n)
	}
}

func TestEdgeIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 30, 3, 0.2)
	seen := make(map[EdgeID]int)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		adj := g.Neighbors(v)
		eids := g.IncidentEdges(v)
		if len(adj) != len(eids) {
			t.Fatalf("node %d: %d neighbours but %d edge ids", v, len(adj), len(eids))
		}
		for i, w := range adj {
			a, b := g.EdgeEndpoints(eids[i])
			if !(a == v && b == w) && !(a == w && b == v) {
				t.Fatalf("edge %d endpoints (%d,%d) do not match incidence %d-%d", eids[i], a, b, v, w)
			}
			if a >= b {
				t.Fatalf("edge %d endpoints not ordered: (%d,%d)", eids[i], a, b)
			}
			seen[eids[i]]++
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("saw %d distinct edge ids, want %d", len(seen), g.NumEdges())
	}
	for id, n := range seen {
		if n != 2 {
			t.Fatalf("edge %d appears in %d incidence lists, want 2", id, n)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	g := buildPath(t)
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	empty := NewBuilder().MustBuild()
	if empty.MaxDegree() != 0 {
		t.Error("empty graph MaxDegree should be 0")
	}
}

// randomGraph builds a random labelled graph for property tests.
func randomGraph(rng *rand.Rand, n, labels int, p float64) *Graph {
	b := NewBuilder()
	names := make([]string, labels)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for i := 0; i < n; i++ {
		b.AddNode(names[rng.Intn(labels)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 2+rng.Intn(40), 1+rng.Intn(5), rng.Float64()*0.5)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Handshake lemma.
		sum := 0
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Degree(NodeID(v))
		}
		if sum != 2*g.NumEdges() {
			t.Fatalf("trial %d: degree sum %d != 2*edges %d", trial, sum, 2*g.NumEdges())
		}
		// Label runs cover adjacency exactly.
		for v := 0; v < g.NumNodes(); v++ {
			total := 0
			var prev Label = -1
			for _, run := range g.NeighborLabelRuns(NodeID(v)) {
				if run.Label <= prev {
					t.Fatalf("trial %d: non-increasing run labels at node %d", trial, v)
				}
				prev = run.Label
				total += len(run.Nodes)
			}
			if total != g.Degree(NodeID(v)) {
				t.Fatalf("trial %d: runs cover %d of %d neighbours", trial, total, g.Degree(NodeID(v)))
			}
		}
	}
}
