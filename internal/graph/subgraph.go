package graph

import "sort"

// Induced returns the subgraph of g induced by the given node set, together
// with a mapping from new IDs to original IDs. Duplicate input nodes are
// collapsed. The induced graph shares g's alphabet.
func Induced(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	uniq := make([]NodeID, 0, len(nodes))
	seen := make(map[NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			uniq = append(uniq, v)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })

	remap := make(map[NodeID]NodeID, len(uniq))
	b := NewBuilderWithAlphabet(g.Alphabet())
	for i, v := range uniq {
		id, _ := b.AddLabeledNode(g.Label(v))
		if name := g.Name(v); name != "" {
			b.SetName(id, name)
		}
		remap[v] = NodeID(i)
	}
	for _, v := range uniq {
		for _, w := range g.Neighbors(v) {
			if v < w {
				if nw, ok := remap[w]; ok {
					// Safe: both endpoints exist, v != w.
					_ = b.AddEdge(remap[v], nw)
				}
			}
		}
	}
	sub := b.MustBuild()
	return sub, uniq
}

// KHop returns all nodes within distance k of v (including v itself),
// in BFS discovery order.
func KHop(g *Graph, v NodeID, k int) []NodeID {
	if k < 0 {
		return nil
	}
	visited := map[NodeID]struct{}{v: {}}
	frontier := []NodeID{v}
	order := []NodeID{v}
	for d := 0; d < k && len(frontier) > 0; d++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if _, ok := visited[w]; !ok {
					visited[w] = struct{}{}
					next = append(next, w)
					order = append(order, w)
				}
			}
		}
		frontier = next
	}
	return order
}

// ConnectedComponents returns the connected components of g as slices of
// node IDs, largest first.
func ConnectedComponents(g *Graph) [][]NodeID {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]NodeID
	for s := NodeID(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue := []NodeID{s}
		var members []NodeID
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			members = append(members, u)
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, members)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// DegreePercentile returns the smallest degree d such that at least
// fraction p (0 < p <= 1) of nodes have degree <= d. This implements the
// percentile interpretation of the paper's dmax parameter (Table 2): a
// "90% level" disables exploration beyond nodes whose degree exceeds the
// 90th-percentile degree.
func DegreePercentile(g *Graph, p float64) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if p >= 1 {
		return g.MaxDegree()
	}
	if p < 0 {
		p = 0
	}
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(NodeID(v))
	}
	sort.Ints(degs)
	idx := int(p*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return degs[idx]
}
