package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// testBase builds a small fixed-alphabet graph:
//
//	0(loc) - 1(org) - 2(act)
//	          |
//	         3(loc)
func testBase(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilderWithAlphabet(MustAlphabet("loc", "org", "act"))
	for _, l := range []string{"loc", "org", "act", "loc"} {
		if _, err := b.AddNode(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {1, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		{Op: OpAddNode, Label: "org", Name: "acme"},
		{Op: OpAddNode, Label: "loc"},
		{Op: OpAddEdge, U: 0, V: 4},
		{Op: OpRemoveEdge, U: 1, V: 2},
		{Op: OpRelabel, U: 3, Label: "act"},
	}
	payload, err := EncodeMutations("batch-001", muts)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	id, got, err := DecodeMutations(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id != "batch-001" {
		t.Fatalf("batch id = %q, want batch-001", id)
	}
	if len(got) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(got), len(muts))
	}
	for i := range muts {
		if got[i] != muts[i] {
			t.Errorf("mutation %d = %+v, want %+v", i, got[i], muts[i])
		}
	}
	// Canonical: re-encoding reproduces the bytes.
	again, err := EncodeMutations(id, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(again, payload) {
		t.Fatal("re-encoded payload differs from original")
	}
}

func TestMutationCodecEmptyBatch(t *testing.T) {
	payload, err := EncodeMutations("b", nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	id, muts, err := DecodeMutations(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id != "b" || len(muts) != 0 {
		t.Fatalf("got id=%q muts=%d", id, len(muts))
	}
}

func TestEncodeMutationsRejects(t *testing.T) {
	cases := []struct {
		name string
		id   string
		muts []Mutation
	}{
		{"empty batch id", "", nil},
		{"oversized batch id", strings.Repeat("x", MaxBatchID+1), nil},
		{"add_node without label", "b", []Mutation{{Op: OpAddNode}}},
		{"relabel without label", "b", []Mutation{{Op: OpRelabel, U: 0}}},
		{"negative endpoint", "b", []Mutation{{Op: OpAddEdge, U: -1, V: 2}}},
		{"negative relabel node", "b", []Mutation{{Op: OpRelabel, U: -1, Label: "loc"}}},
		{"unknown op", "b", []Mutation{{Op: 99}}},
		{"oversized label", "b", []Mutation{{Op: OpAddNode, Label: strings.Repeat("x", maxMutationString+1)}}},
	}
	for _, tc := range cases {
		if _, err := EncodeMutations(tc.id, tc.muts); err == nil {
			t.Errorf("%s: encode succeeded, want error", tc.name)
		}
	}
}

func TestDecodeMutationsRejects(t *testing.T) {
	valid, err := EncodeMutations("b", []Mutation{{Op: OpAddEdge, U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 0}},
		{"bad version", append([]byte{2}, valid[1:]...)},
		{"zero id length", []byte{1, 0, 0, 0, 0, 0, 0}},
		{"truncated frame", valid[:len(valid)-2]},
		{"trailing bytes", append(append([]byte{}, valid...), 0)},
		{"count exceeds bytes", func() []byte {
			d := append([]byte{}, valid...)
			// count field sits right after version+idLen+id = 1+2+1 bytes
			d[4] = 0xff
			d[5] = 0xff
			return d
		}()},
		{"unknown op byte", func() []byte {
			d := append([]byte{}, valid...)
			d[8] = 77 // op byte of the first mutation
			return d
		}()},
	}
	for _, tc := range cases {
		if _, _, err := DecodeMutations(tc.data); !errors.Is(err, ErrBadMutationBatch) {
			t.Errorf("%s: err = %v, want ErrBadMutationBatch", tc.name, err)
		}
	}
}

func TestMutationOpStrings(t *testing.T) {
	for _, op := range []MutationOp{OpAddNode, OpAddEdge, OpRemoveEdge, OpRelabel} {
		back, err := ParseMutationOp(op.String())
		if err != nil || back != op {
			t.Errorf("round trip of %v: got %v, %v", op, back, err)
		}
	}
	if _, err := ParseMutationOp("bogus"); err == nil {
		t.Error("ParseMutationOp accepted bogus op")
	}
}

func TestOverlayAddRemove(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(g)

	if o.Dirty() {
		t.Fatal("fresh overlay reports dirty")
	}
	id, err := o.AddNode("act", "n4")
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 || o.NumNodes() != 5 {
		t.Fatalf("AddNode gave id %d, overlay has %d nodes", id, o.NumNodes())
	}
	if err := o.AddEdge(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(0, 4) || o.HasEdge(1, 2) || !o.HasEdge(0, 1) {
		t.Fatal("overlay adjacency wrong after add/remove")
	}
	if o.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", o.NumEdges())
	}

	m, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	if m.NumNodes() != 5 || m.NumEdges() != 3 {
		t.Fatalf("materialized %s", m)
	}
	if !m.HasEdge(0, 4) || m.HasEdge(1, 2) {
		t.Fatal("materialized adjacency wrong")
	}
	if m.Name(4) != "n4" || m.Alphabet().Name(m.Label(4)) != "act" {
		t.Fatal("materialized node 4 metadata wrong")
	}
}

func TestOverlayReAddRemovedAndRemoveAdded(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(g)
	// Remove a base edge then add it back: net zero.
	if err := o.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	// Add a new edge then remove it: net zero.
	if err := o.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if o.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", o.NumEdges(), g.NumEdges())
	}
	m, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != g.NumEdges() || !m.HasEdge(0, 1) || m.HasEdge(0, 2) {
		t.Fatal("net-zero overlay did not materialize to the base edge set")
	}
}

func TestOverlayValidation(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(g)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"self loop", func() error { return o.AddEdge(1, 1) }},
		{"out-of-range endpoint", func() error { return o.AddEdge(0, 99) }},
		{"negative endpoint", func() error { return o.AddEdge(-1, 0) }},
		{"duplicate base edge", func() error { return o.AddEdge(0, 1) }},
		{"remove absent edge", func() error { return o.RemoveEdge(0, 2) }},
		{"remove out-of-range", func() error { return o.RemoveEdge(0, 99) }},
		{"unknown label add", func() error { _, err := o.AddNode("nope", ""); return err }},
		{"unknown label relabel", func() error { return o.Relabel(0, "nope") }},
		{"relabel unknown node", func() error { return o.Relabel(99, "loc") }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: succeeded, want error", tc.name)
		}
	}
	if o.Dirty() {
		t.Fatal("failed mutations left the overlay dirty")
	}
	// Duplicate of an overlay-added edge is also rejected.
	if err := o.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(2, 0); err == nil {
		t.Error("duplicate overlay edge accepted")
	}
}

func TestOverlayTouched(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(g)
	if err := o.Relabel(3, "org"); err != nil {
		t.Fatal(err)
	}
	if err := o.Relabel(0, "loc"); err != nil { // same label: no-op
		t.Fatal(err)
	}
	if err := o.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	id, err := o.AddNode("loc", "")
	if err != nil {
		t.Fatal(err)
	}
	got := o.Touched()
	want := []NodeID{1, 2, 3, id}
	if len(got) != len(want) {
		t.Fatalf("Touched() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Touched() = %v, want %v", got, want)
		}
	}
}

func TestOverlayApplyStream(t *testing.T) {
	g := testBase(t)
	o := NewOverlay(g)
	muts := []Mutation{
		{Op: OpAddNode, Label: "org", Name: "x"},
		{Op: OpAddEdge, U: 4, V: 2},
		{Op: OpRemoveEdge, U: 0, V: 1},
		{Op: OpRelabel, U: 0, Label: "act"},
	}
	for i, m := range muts {
		if err := o.Apply(m); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if err := o.Apply(Mutation{Op: 42}); err == nil {
		t.Fatal("unknown op applied")
	}
	m, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.HasEdge(2, 4) || m.HasEdge(0, 1) || m.Alphabet().Name(m.Label(0)) != "act" {
		t.Fatal("applied stream did not materialize as expected")
	}
}

func FuzzDecodeMutations(f *testing.F) {
	seed, err := EncodeMutations("batch", []Mutation{
		{Op: OpAddNode, Label: "loc", Name: "n"},
		{Op: OpAddEdge, U: 0, V: 1},
		{Op: OpRemoveEdge, U: 1, V: 2},
		{Op: OpRelabel, U: 0, Label: "org"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 'b', 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, muts, err := DecodeMutations(data)
		if err != nil {
			if !errors.Is(err, ErrBadMutationBatch) {
				t.Fatalf("decode error %v does not wrap ErrBadMutationBatch", err)
			}
			return
		}
		// Accepted payloads must re-encode to the identical bytes.
		again, err := EncodeMutations(id, muts)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("round trip mismatch: %x != %x", again, data)
		}
	})
}
