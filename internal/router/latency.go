package router

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is a fixed-size ring of recent successful shard-call
// latencies. The hedging policy derives its trigger delay from the p95
// of this window: a hedge fires only when the primary attempt is slower
// than 95% of recent calls, so steady-state hedge volume is ~5% of
// requests — enough to cut tail latency, cheap enough to leave on.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
}

// latencyWindowSize bounds memory and sort cost; 64 samples is plenty
// to estimate a p95 that tracks load shifts within a few seconds.
const latencyWindowSize = 64

// minHedgeSamples gates the estimator: below this, p95 of a handful of
// calls is noise and the configured default delay is used instead.
const minHedgeSamples = 8

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{samples: make([]time.Duration, latencyWindowSize)}
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.next] = d
	w.next++
	if w.next == len(w.samples) {
		w.next = 0
		w.filled = true
	}
	w.mu.Unlock()
}

// p95 returns the 95th-percentile latency and true, or 0 and false when
// fewer than minHedgeSamples observations exist.
func (w *latencyWindow) p95() (time.Duration, bool) {
	w.mu.Lock()
	n := w.next
	if w.filled {
		n = len(w.samples)
	}
	if n < minHedgeSamples {
		w.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()

	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	// Nearest-rank p95 on n samples.
	idx := (n*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return buf[idx], true
}
