package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/retry"
	"hsgf/internal/serve"
)

// Config tunes the routing tier. The zero value of every field selects
// a sane default so tests and small deployments can set only Manifest
// and Shards.
type Config struct {
	// Manifest is the partition's routing metadata (required).
	Manifest *Manifest
	// Shards lists the replica base URLs per shard, outer index ==
	// shard index (required; every shard needs >= 1 replica).
	Shards [][]string

	// ProbeInterval / ProbeTimeout drive the active /readyz health
	// probe loop per replica. Defaults: 500ms / 1s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter is the consecutive transport-failure count that marks a
	// replica down from passive traffic accounting alone. Default 2.
	FailAfter int32

	// Retry bounds re-attempts of a failed shard call (a hedged pair
	// counts as one attempt). Defaults: 3 attempts, 50ms base delay
	// capped at 2s, full jitter.
	Retry retry.Policy
	// ShardTimeout bounds one attempt (hedge included) against a shard.
	// Default 15s.
	ShardTimeout time.Duration

	// HedgeDelay is the hedge trigger before the latency window has
	// enough samples to derive a p95. Default 30ms. HedgeMinDelay /
	// HedgeMaxDelay clamp the p95-derived trigger (defaults 2ms / 2s).
	HedgeDelay    time.Duration
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration

	// Breaker configures the per-shard circuit breaker (same sliding-
	// window breaker the daemon uses for its extraction pool).
	Breaker serve.BreakerConfig

	// MaxRootsPerRequest bounds one batch. Default 512.
	MaxRootsPerRequest int

	// SeqLogPath and IngestGraph together enable fleet ingest: the
	// router sequences POST /v1/ingest batches through a CRC-framed
	// sequencer WAL at SeqLogPath and resolves shard fan-out against
	// IngestGraph (the same TSV the fleet was partitioned from). With
	// either unset the router keeps its explicit 501 for ingest.
	SeqLogPath  string
	IngestGraph *graph.Graph
	// IngestAckTimeout bounds how long a client waits for full-fleet
	// confirmation before getting 503 fleet_partial_apply (the batch
	// still converges in the background). Default 10s.
	IngestAckTimeout time.Duration
	// MaxSubBatchMutations / MaxSubBatchBytes bound one shard's
	// sub-batch of a sequenced fleet batch — mutation count (halo repair
	// included) and marshalled body size. They must not exceed the
	// follower fleet limits (ingest.FleetMaxBatchMutations /
	// serve.FleetMaxRequestBody, the defaults): a client batch whose
	// sub-batches would overflow them is refused with 400
	// batch_too_large BEFORE it takes a fleet sequence, because a
	// follower rejecting an already-sequenced sub-batch would latch
	// fleet ingest failed — and re-latch it on every boot replay.
	MaxSubBatchMutations int
	MaxSubBatchBytes     int
	// SequenceHook, when non-nil, runs after a batch's sequence is
	// durable but before fan-out — the smoke suite's crash seam.
	SequenceHook func(seq uint64)
	// ReloadTimeout bounds each per-replica call of the fleet reload
	// protocol. Default 2m.
	ReloadTimeout time.Duration
	// DrainGrace bounds shutdown: in-flight requests get this long to
	// finish after SIGTERM. Default 10s.
	DrainGrace time.Duration

	// Transport overrides the HTTP transport (tests inject failure
	// modes); nil selects a pooled default.
	Transport http.RoundTripper
	Log       *log.Logger
}

func (c *Config) withDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay == 0 {
		c.Retry.BaseDelay = 50 * time.Millisecond
	}
	if c.Retry.MaxDelay == 0 {
		c.Retry.MaxDelay = 2 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 15 * time.Second
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 30 * time.Millisecond
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 2 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 2 * time.Second
	}
	if c.MaxRootsPerRequest <= 0 {
		c.MaxRootsPerRequest = 512
	}
	if c.IngestAckTimeout <= 0 {
		c.IngestAckTimeout = 10 * time.Second
	}
	if c.MaxSubBatchMutations <= 0 {
		c.MaxSubBatchMutations = ingest.FleetMaxBatchMutations
	}
	if c.MaxSubBatchBytes <= 0 {
		c.MaxSubBatchBytes = serve.FleetMaxRequestBody
	}
	if c.ReloadTimeout <= 0 {
		c.ReloadTimeout = 2 * time.Minute
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
}

// Server is the routing tier: one process fronting NumShards replica
// sets of hsgfd shard workers.
type Server struct {
	cfg    Config
	m      *Manifest
	shards []*shard
	client *http.Client
	stats  routerStats

	// fleet is the ingest sequencer + fan-out state; nil when the
	// router was built without SeqLogPath/IngestGraph.
	fleet *fleetIngest
	// numNodes is the live fleet node count: the manifest's count plus
	// every node added through fleet ingest since boot. Root validation
	// reads it instead of the static manifest.
	numNodes atomic.Int64

	draining atomic.Bool
	reloadMu sync.Mutex // single-flight fleet reload

	probeOnce   sync.Once
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
}

// New builds a router over cfg.Manifest and cfg.Shards. The manifest is
// re-validated; replica counts may differ per shard but every shard
// needs at least one.
func New(cfg Config) (*Server, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("router: Config.Manifest is required")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Shards) != cfg.Manifest.NumShards {
		return nil, fmt.Errorf("router: %d replica sets for %d shards", len(cfg.Shards), cfg.Manifest.NumShards)
	}
	cfg.withDefaults()

	s := &Server{
		cfg: cfg,
		m:   cfg.Manifest,
		client: &http.Client{
			Transport: cfg.Transport,
			// Per-call contexts bound every request; no global timeout.
		},
	}
	s.shards = make([]*shard, s.m.NumShards)
	for i := range s.shards {
		if len(cfg.Shards[i]) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		sm := &s.m.Shards[i]
		g2l := make(map[int64]int64, len(sm.LocalToGlobal))
		for local, global := range sm.LocalToGlobal {
			g2l[global] = int64(local)
		}
		sh := &shard{
			idx: i,
			brk: serve.NewBreaker(cfg.Breaker),
			lat: newLatencyWindow(),
			l2g: sm.LocalToGlobal,
			g2l: g2l,
		}
		for _, url := range cfg.Shards[i] {
			sh.replicas = append(sh.replicas, newReplica(url))
		}
		s.shards[i] = sh
	}
	s.numNodes.Store(int64(s.m.NumNodes))
	if cfg.SeqLogPath != "" && cfg.IngestGraph != nil {
		fleet, err := newFleetIngest(s, cfg.IngestGraph, cfg.SeqLogPath)
		if err != nil {
			return nil, err
		}
		s.fleet = fleet
	}
	return s, nil
}

// Close releases background resources: fleet-ingest senders and the
// sequencer log. Idempotent; Serve's drain path calls it.
func (s *Server) Close() {
	if s.fleet != nil {
		s.fleet.stop()
	}
}

// StartProbes launches the per-replica health probe loops; idempotent.
// Serve calls it automatically; tests driving the handler directly call
// it (or skip it and rely on passive accounting).
func (s *Server) StartProbes() {
	s.probeOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		s.probeCancel = cancel
		n := 0
		for _, sh := range s.shards {
			n += len(sh.replicas)
		}
		i := 0
		for _, sh := range s.shards {
			for _, rep := range sh.replicas {
				s.probeWG.Add(1)
				// Phase-shift probes across the fleet so they never
				// arrive in lockstep.
				offset := time.Duration(i) * s.cfg.ProbeInterval / time.Duration(n)
				i++
				go func(rep *replica) {
					defer s.probeWG.Done()
					rep.probeLoop(ctx, s.client, s.cfg.ProbeInterval, s.cfg.ProbeTimeout, offset)
				}(rep)
			}
		}
	})
}

// StopProbes halts the probe loops (Serve's drain path).
func (s *Server) StopProbes() {
	if s.probeCancel != nil {
		s.probeCancel()
		s.probeWG.Wait()
	}
}

// Handler returns the router's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/features", s.handleFeatures)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/meta", s.handleMeta)
	mux.HandleFunc("/v1/admin/reload", s.handleFleetReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/stats", s.handleStats)
	return mux
}

// Serve runs the router on ln until ctx is cancelled, then drains:
// probes stop, the listener closes, and in-flight scatter/gathers get
// DrainGrace to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.StartProbes()
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		s.StopProbes()
		s.Close()
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.logf("router: draining (grace %v)", s.cfg.DrainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainGrace)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	<-errCh
	s.StopProbes()
	s.Close()
	if err != nil {
		return fmt.Errorf("router: drain incomplete after %v: %w", s.cfg.DrainGrace, err)
	}
	s.logf("router: drained cleanly")
	return nil
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("router: listening on %s (%d shards, halo depth %d)", ln.Addr(), s.m.NumShards, s.m.HaloDepth)
	return s.Serve(ctx, ln)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

func (s *Server) retryPolicy() retry.Policy { return s.cfg.Retry }

// FeaturesResponse is the router's batch response: daemon-shaped rows
// (bit-compatible with hsgfd's, so clients need not care which tier
// answered) plus the scatter/gather report.
type FeaturesResponse struct {
	Rows []serve.FeatureRow `json:"rows"`
	// Degraded is true when any row is flagged — including rows the
	// router itself degraded with shard-unavailable.
	Degraded  bool  `json:"degraded"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// Shards reports each contacted shard's outcome for this batch.
	Shards []ShardReport `json:"shards"`
}

// ShardReport is one shard's outcome within a batch.
type ShardReport struct {
	Shard int  `json:"shard"`
	Roots int  `json:"roots"`
	OK    bool `json:"ok"`
	// Error is the terminal failure that degraded this shard's rows.
	Error       string `json:"error,omitempty"`
	Generation  uint64 `json:"generation,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// handleFeatures is the scatter/gather path: partition the batch's
// roots by owning shard (consistent hash), call every involved shard
// concurrently (hedged, retried, breaker-guarded), and reassemble rows
// in request order. A shard that stays unreachable past retries
// degrades its rows — flagged shard-unavailable, truncated, zero counts
// — instead of failing the batch: partial answers with an honest
// taxonomy beat a 5xx that throws away every healthy shard's work.
func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "router is draining", time.Second)
		return
	}
	s.stats.requests.Add(1)

	var req serve.FeaturesRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "undecodable body: "+err.Error(), 0)
		return
	}
	if len(req.Roots) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "roots is required and non-empty", 0)
		return
	}
	if len(req.Roots) > s.cfg.MaxRootsPerRequest {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%d roots exceeds the per-request maximum %d", len(req.Roots), s.cfg.MaxRootsPerRequest), 0)
		return
	}
	numNodes := s.numNodes.Load()
	for _, root := range req.Roots {
		if root < 0 || root >= numNodes {
			s.writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("root %d out of range [0,%d)", root, numNodes), 0)
			return
		}
	}
	s.stats.rootsRouted.Add(int64(len(req.Roots)))

	// Scatter: group roots by owning shard, remembering each root's
	// position in the request so gather can place rows exactly.
	type shardBatch struct {
		roots     []int64
		positions []int
	}
	batches := make(map[int]*shardBatch)
	for pos, root := range req.Roots {
		si := graph.RootShard(graph.NodeID(root), s.m.NumShards)
		b := batches[si]
		if b == nil {
			b = &shardBatch{}
			batches[si] = b
		}
		b.roots = append(b.roots, root)
		b.positions = append(b.positions, pos)
	}

	start := time.Now()
	type shardOutcome struct {
		idx  int
		rows []serve.FeatureRow
		err  error
	}
	outcomes := make(chan shardOutcome, len(batches))
	for si, b := range batches {
		go func(si int, b *shardBatch) {
			rows, err := s.callShard(r.Context(), s.shards[si], b.roots, &req)
			outcomes <- shardOutcome{si, rows, err}
		}(si, b)
	}

	resp := FeaturesResponse{Rows: make([]serve.FeatureRow, len(req.Roots))}
	for range batches {
		out := <-outcomes
		b := batches[out.idx]
		report := ShardReport{Shard: out.idx, Roots: len(b.roots), OK: out.err == nil}
		if out.err != nil {
			// Partial-result degradation: every root owned by the
			// unreachable shard gets an honest placeholder row.
			s.logf("router: shard %d unavailable for %d roots: %v", out.idx, len(b.roots), out.err)
			s.stats.unavailableRows.Add(int64(len(b.roots)))
			report.Error = out.err.Error()
			for i, pos := range b.positions {
				resp.Rows[pos] = serve.FeatureRow{
					Root:      b.roots[i],
					Flags:     core.FlagShardUnavailable.String(),
					Truncated: true,
					Counts:    map[string]int64{},
				}
			}
			resp.Degraded = true
		} else {
			rep := s.shards[out.idx].newestReplicaMeta()
			report.Generation, report.Fingerprint = rep.generation.Load(), derefString(rep.fingerprint.Load())
			for i, pos := range b.positions {
				resp.Rows[pos] = out.rows[i]
				if out.rows[i].Flags != "ok" {
					resp.Degraded = true
				}
			}
		}
		resp.Shards = append(resp.Shards, report)
	}
	if resp.Degraded {
		s.stats.degradedResponses.Add(1)
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// newestReplicaMeta picks the replica with the highest observed
// generation, for batch reports.
func (sh *shard) newestReplicaMeta() *replica {
	best := sh.replicas[0]
	for _, r := range sh.replicas[1:] {
		if r.generation.Load() > best.generation.Load() {
			best = r
		}
	}
	return best
}

func derefString(p *string) string {
	if p == nil {
		return ""
	}
	return *p
}

// MetaResponse is the router's GET /v1/meta body: the fleet topology
// and per-replica health/generation view.
type MetaResponse struct {
	NumShards int              `json:"num_shards"`
	HaloDepth int              `json:"halo_depth"`
	NumNodes  int              `json:"num_nodes"`
	Shards    []ShardMetaEntry `json:"shards"`
}

type ShardMetaEntry struct {
	Shard    int           `json:"shard"`
	Breaker  string        `json:"breaker"`
	P95MS    float64       `json:"p95_ms,omitempty"`
	Replicas []ReplicaMeta `json:"replicas"`
}

type ReplicaMeta struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	Generation  uint64 `json:"generation,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	resp := MetaResponse{NumShards: s.m.NumShards, HaloDepth: s.m.HaloDepth, NumNodes: int(s.numNodes.Load())}
	for _, sh := range s.shards {
		entry := ShardMetaEntry{Shard: sh.idx, Breaker: sh.brk.State().String()}
		if p95, ok := sh.lat.p95(); ok {
			entry.P95MS = math.Round(float64(p95)/float64(time.Millisecond)*1000) / 1000
		}
		for _, rep := range sh.replicas {
			entry.Replicas = append(entry.Replicas, ReplicaMeta{
				URL:         rep.url,
				Healthy:     rep.healthy.Load(),
				Generation:  rep.generation.Load(),
				Fingerprint: derefString(rep.fingerprint.Load()),
				LastError:   derefString(rep.lastProbeErr.Load()),
			})
		}
		resp.Shards = append(resp.Shards, entry)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports the router's own readiness. The router stays
// ready while at least one shard is reachable — a single dead shard
// degrades answers but pulling the whole router out of rotation would
// turn a partial outage into a total one. Status: "ok" (all shards have
// a healthy replica), "degraded" (some do), 503 "unready"/"draining"
// (none do / shutting down).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	var down []int
	for _, sh := range s.shards {
		healthy := false
		for _, rep := range sh.replicas {
			if rep.healthy.Load() {
				healthy = true
				break
			}
		}
		if !healthy {
			down = append(down, sh.idx)
		}
	}
	switch {
	case len(down) == 0:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	case len(down) < len(s.shards):
		writeJSON(w, http.StatusOK, map[string]any{"status": "degraded", "down_shards": down})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unready", "down_shards": down})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the daemon's exact typed error shape (nested error
// object + stable top-level reason + retry hint) via the shared
// envelope helper so one client-side classifier handles both tiers.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	_ = serve.WriteJSONError(w, status, code, msg, retryAfter, nil)
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}
