// Package router is the sharded, replicated serving tier in front of a
// fleet of hsgfd shard workers. The graph is partitioned by root with a
// halo of distance-<=k neighbours per shard (internal/graph
// PartitionByRoot), so census extraction never crosses a shard
// boundary; the router owns everything distribution adds on top:
// consistent-hash root->shard routing, scatter/gather for mixed-root
// batches, per-replica health probing, per-shard circuit breakers,
// bounded retries with full-jitter backoff that honour server
// Retry-After hints, hedged requests against replicas after a
// p95-derived delay, partial-result degradation (a dead shard flags its
// rows shard-unavailable instead of failing the batch), and fleet-wide
// zero-downtime reload that verifies every shard before flipping any.
package router

import (
	"encoding/json"
	"fmt"
	"os"

	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// manifestVersion guards the manifest encoding; readers refuse files
// from the future.
const manifestVersion = 1

// Manifest is the partition's routing metadata: everything the router
// must know about how the graph was cut that it cannot recompute
// without loading the full graph. It is written by the partitioner next
// to the shard stores and loaded by the router at boot.
type Manifest struct {
	Version   int `json:"version"`
	NumShards int `json:"num_shards"`
	// HaloDepth records the neighbourhood radius the shards were cut
	// with; serving emax must not exceed it (emax-1 under dmax), which
	// the operator can audit from /v1/meta.
	HaloDepth int `json:"halo_depth"`
	// NumNodes is the full graph's node count; the router validates
	// request roots against it.
	NumNodes int             `json:"num_nodes"`
	Shards   []ShardManifest `json:"shards"`
}

// ShardManifest describes one shard's universe.
type ShardManifest struct {
	Shard int `json:"shard"`
	// OwnedRoots counts the globally-owned roots (for ops; ownership
	// itself is recomputed via graph.RootShard).
	OwnedRoots int `json:"owned_roots"`
	// LocalToGlobal maps the shard graph's dense local node IDs to
	// global IDs. Its inverse translates request roots into shard
	// requests.
	LocalToGlobal []int64 `json:"local_to_global"`
}

// BuildManifest assembles the routing manifest for a set of shard plans
// cut from a graph with numNodes nodes.
func BuildManifest(numNodes, haloDepth int, plans []*graph.ShardPlan) *Manifest {
	m := &Manifest{
		Version:   manifestVersion,
		NumShards: len(plans),
		HaloDepth: haloDepth,
		NumNodes:  numNodes,
		Shards:    make([]ShardManifest, len(plans)),
	}
	for i, p := range plans {
		l2g := make([]int64, len(p.LocalToGlobal))
		for local, global := range p.LocalToGlobal {
			l2g[local] = int64(global)
		}
		m.Shards[i] = ShardManifest{
			Shard:         p.Shard,
			OwnedRoots:    len(p.OwnedRoots),
			LocalToGlobal: l2g,
		}
	}
	return m
}

// Validate checks the manifest's internal consistency: version,
// shard count/order, in-range mappings, and that every global node is
// owned by the shard RootShard assigns it to.
func (m *Manifest) Validate() error {
	if m.Version > manifestVersion {
		return fmt.Errorf("router: manifest version %d, reader supports <= %d", m.Version, manifestVersion)
	}
	if m.NumShards < 1 || len(m.Shards) != m.NumShards {
		return fmt.Errorf("router: manifest has %d shard entries for num_shards %d", len(m.Shards), m.NumShards)
	}
	if m.NumNodes < 0 {
		return fmt.Errorf("router: negative num_nodes %d", m.NumNodes)
	}
	owned := make([]bool, m.NumNodes)
	for i, sh := range m.Shards {
		if sh.Shard != i {
			return fmt.Errorf("router: shard entry %d has index %d; entries must be ordered", i, sh.Shard)
		}
		seen := make(map[int64]bool, len(sh.LocalToGlobal))
		for local, global := range sh.LocalToGlobal {
			if global < 0 || global >= int64(m.NumNodes) {
				return fmt.Errorf("router: shard %d local %d maps to out-of-range global %d", i, local, global)
			}
			if seen[global] {
				return fmt.Errorf("router: shard %d maps global %d twice", i, global)
			}
			seen[global] = true
			if graph.RootShard(graph.NodeID(global), m.NumShards) == i {
				owned[global] = true
			}
		}
	}
	for v, ok := range owned {
		if !ok {
			return fmt.Errorf("router: global node %d absent from its owning shard %d",
				v, graph.RootShard(graph.NodeID(v), m.NumShards))
		}
	}
	return nil
}

// WriteManifest atomically persists m as JSON at path (temp + fsync +
// rename, like every other artifact).
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return store.AtomicWriteBytes(path, append(data, '\n'))
}

// LoadManifest reads and validates a manifest written by WriteManifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("router: undecodable manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
