package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hsgf/internal/retry"
	"hsgf/internal/serve"
)

// shard is the router's client-side view of one partition: its replica
// set, the ID translation tables from the manifest, a circuit breaker
// guarding the whole replica set, and the latency window feeding the
// hedging policy.
type shard struct {
	idx      int
	replicas []*replica
	brk      *serve.Breaker
	lat      *latencyWindow
	rr       atomic.Uint32 // round-robin replica cursor

	// idMu guards the translation tables: fleet ingest appends new
	// members as add_node mutations land while feature requests read
	// concurrently.
	idMu sync.RWMutex
	l2g  []int64         // local ID -> global ID (from the manifest)
	g2l  map[int64]int64 // global ID -> local ID
}

// localOf translates a global node ID to this shard's local ID.
func (sh *shard) localOf(global int64) (int64, bool) {
	sh.idMu.RLock()
	l, ok := sh.g2l[global]
	sh.idMu.RUnlock()
	return l, ok
}

// globalOf translates a shard-local ID back to the global ID.
func (sh *shard) globalOf(local int64) int64 {
	sh.idMu.RLock()
	g := sh.l2g[local]
	sh.idMu.RUnlock()
	return g
}

// growIDs appends newly ingested members: globals[i] becomes local ID
// len(l2g)+i, mirroring graph.ShardMap's deterministic assignment so
// the router's tables track every shard's own mapping exactly.
func (sh *shard) growIDs(globals []int64) {
	sh.idMu.Lock()
	for _, g := range globals {
		sh.g2l[g] = int64(len(sh.l2g))
		sh.l2g = append(sh.l2g, g)
	}
	sh.idMu.Unlock()
}

// healthyReplicas returns the currently-healthy replicas, excluding
// skip. When none are healthy it falls back to the full set (minus
// skip): probes lag real recovery, and sending a request to a
// possibly-dead replica is how passive accounting finds out it is back.
func (sh *shard) healthyReplicas(skip *replica) []*replica {
	out := make([]*replica, 0, len(sh.replicas))
	for _, r := range sh.replicas {
		if r != skip && r.healthy.Load() {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		for _, r := range sh.replicas {
			if r != skip {
				out = append(out, r)
			}
		}
	}
	return out
}

// shardError is a classified failure of one attempt against one
// replica. transport distinguishes connection-level failures (process
// unreachable: counts against replica health) from typed HTTP errors
// (process alive but refusing: 429/503).
type shardError struct {
	replica   string
	status    int
	reason    string
	err       error
	transport bool
}

func (e *shardError) Error() string {
	if e.err != nil {
		return fmt.Sprintf("replica %s: %v", e.replica, e.err)
	}
	return fmt.Sprintf("replica %s: %d %s", e.replica, e.status, e.reason)
}

func (e *shardError) Unwrap() error { return e.err }

// errAllReplicasDown is wrapped into the terminal error when a shard
// call exhausts its retries; callers key partial-result degradation on
// the wrapping shardError chain rather than this sentinel.
var errNoReplicas = errors.New("router: shard has no replicas")

// attemptOnce sends one POST /v1/features to one replica and classifies
// the outcome:
//   - 200: success; replica marked healthy, latency observed by caller.
//   - 400: permanent (retrying a malformed request cannot help).
//   - 429/503: retryable with the server's Retry-After hint attached, so
//     the backoff honours the hint instead of its own schedule. The
//     replica answered, so this does NOT count against its health.
//   - transport error / 5xx: retryable; counts toward the replica's
//     consecutive-failure trip wire.
func (s *Server) attemptOnce(ctx context.Context, rep *replica, body []byte) (*serve.FeaturesResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/features", bytes.NewReader(body))
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled or deadline: not the replica's fault.
			return nil, &shardError{replica: rep.url, err: err}
		}
		rep.reportFailure(s.cfg.FailAfter)
		return nil, &shardError{replica: rep.url, err: err, transport: true}
	}
	defer drainBody(resp)

	if resp.StatusCode == http.StatusOK {
		var fr serve.FeaturesResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxShardResponseBytes)).Decode(&fr); err != nil {
			rep.reportFailure(s.cfg.FailAfter)
			return nil, &shardError{replica: rep.url, err: fmt.Errorf("undecodable response: %w", err), transport: true}
		}
		rep.reportSuccess()
		if fr.Generation != 0 {
			rep.generation.Store(fr.Generation)
		}
		if fr.Fingerprint != "" {
			fp := fr.Fingerprint
			rep.fingerprint.Store(&fp)
		}
		return &fr, nil
	}

	reason, hint := parseTypedError(resp)
	se := &shardError{replica: rep.url, status: resp.StatusCode, reason: reason}
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		rep.reportSuccess()
		return nil, retry.Permanent(se)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// The process answered; alive, just refusing. Honour its hint.
		rep.reportSuccess()
		if hint > 0 {
			return nil, retry.WithHint(se, hint)
		}
		return nil, se
	default:
		rep.reportFailure(s.cfg.FailAfter)
		se.transport = true
		return nil, se
	}
}

// maxShardResponseBytes bounds a single shard response decode (64 MiB);
// a corrupted or adversarial body cannot OOM the router.
const maxShardResponseBytes = 64 << 20

// parseTypedError extracts the stable reason code and retry hint from a
// typed hsgfd error body, falling back to the Retry-After header.
func parseTypedError(resp *http.Response) (reason string, hint time.Duration) {
	var body struct {
		Reason       string `json:"reason"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil {
		reason = body.Reason
		if body.RetryAfterMS > 0 {
			hint = time.Duration(body.RetryAfterMS) * time.Millisecond
		}
	}
	if reason == "" {
		reason = http.StatusText(resp.StatusCode)
	}
	if hint == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			hint = time.Duration(secs) * time.Second
		}
	}
	return reason, hint
}

// hedgeDelay returns how long to wait on the primary before firing the
// hedge: the shard's observed p95 when enough samples exist (clamped to
// [HedgeMinDelay, HedgeMaxDelay]), else the configured default.
func (s *Server) hedgeDelay(sh *shard) time.Duration {
	d, ok := sh.lat.p95()
	if !ok {
		return s.cfg.HedgeDelay
	}
	if d < s.cfg.HedgeMinDelay {
		d = s.cfg.HedgeMinDelay
	}
	if d > s.cfg.HedgeMaxDelay {
		d = s.cfg.HedgeMaxDelay
	}
	return d
}

// hedgedCall runs one logical attempt against a shard: a primary
// request to one replica and — if the primary has not resolved within
// the p95-derived hedge delay and another replica exists — a hedge to a
// different replica. The first success wins and the loser's context is
// cancelled; if every leg fails, the primary's error is returned (it
// carries the most representative classification for the retry loop).
func (s *Server) hedgedCall(ctx context.Context, sh *shard, body []byte) (*serve.FeaturesResponse, error) {
	reps := sh.healthyReplicas(nil)
	if len(reps) == 0 {
		return nil, retry.Permanent(errNoReplicas)
	}
	primary := reps[int(sh.rrNext())%len(reps)]

	type legResult struct {
		fr  *serve.FeaturesResponse
		err error
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan legResult, 2)
	launch := func(rep *replica) {
		start := time.Now()
		fr, err := s.attemptOnce(ctx, rep, body)
		if err == nil {
			sh.lat.observe(time.Since(start))
		}
		results <- legResult{fr, err}
	}
	go launch(primary)

	legs := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if len(sh.replicas) > 1 {
		hedgeTimer = time.NewTimer(s.hedgeDelay(sh))
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			alts := sh.healthyReplicas(primary)
			if len(alts) == 0 {
				continue
			}
			s.stats.hedges.Add(1)
			legs++
			go launch(alts[int(sh.rrNext())%len(alts)])
		case res := <-results:
			if res.err == nil {
				if legs > 1 {
					s.stats.hedgeWins.Add(1)
				}
				return res.fr, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			legs--
			if legs == 0 {
				// Every in-flight leg failed. If the hedge never fired,
				// fire it now as an immediate failover rather than
				// waiting out the timer against a dead primary.
				if hedgeC != nil {
					hedgeC = nil
					if alts := sh.healthyReplicas(primary); len(alts) > 0 {
						s.stats.failovers.Add(1)
						legs++
						go launch(alts[int(sh.rrNext())%len(alts)])
						continue
					}
				}
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// callShard resolves one shard's slice of a batch: translate global
// roots to the shard's local IDs, run the hedged call under the shard's
// breaker with bounded full-jitter retries, and translate the rows
// back. The returned rows are ordered exactly as roots.
func (s *Server) callShard(ctx context.Context, sh *shard, roots []int64, req *serve.FeaturesRequest) ([]serve.FeatureRow, error) {
	done, ok := sh.brk.Acquire()
	if !ok {
		s.stats.breakerRejects.Add(1)
		return nil, fmt.Errorf("router: shard %d breaker open", sh.idx)
	}

	local := make([]int64, len(roots))
	for i, g := range roots {
		l, found := sh.localOf(g)
		if !found {
			// Validated at admission; a miss here is a manifest bug.
			done(false)
			return nil, fmt.Errorf("router: root %d not in shard %d manifest", g, sh.idx)
		}
		local[i] = l
	}
	body, err := json.Marshal(serve.FeaturesRequest{
		Roots:          local,
		DeadlineMS:     req.DeadlineMS,
		RootBudget:     req.RootBudget,
		RootDeadlineMS: req.RootDeadlineMS,
	})
	if err != nil {
		done(false)
		return nil, err
	}

	var fr *serve.FeaturesResponse
	pol := s.retryPolicy()
	err = pol.Do(ctx, func(ctx context.Context, attempt int) error {
		if attempt > 1 {
			s.stats.retries.Add(1)
		}
		ctx, cancel := context.WithTimeout(ctx, s.cfg.ShardTimeout)
		defer cancel()
		var aerr error
		fr, aerr = s.hedgedCall(ctx, sh, body)
		return aerr
	})
	if err != nil {
		done(true)
		return nil, err
	}
	if len(fr.Rows) != len(roots) {
		done(true)
		return nil, fmt.Errorf("router: shard %d returned %d rows for %d roots", sh.idx, len(fr.Rows), len(roots))
	}
	done(false)
	s.stats.shardCalls.Add(1)

	rows := make([]serve.FeatureRow, len(fr.Rows))
	for i, row := range fr.Rows {
		if row.Root != local[i] {
			return nil, fmt.Errorf("router: shard %d row %d is root %d, want %d", sh.idx, i, row.Root, local[i])
		}
		row.Root = sh.globalOf(local[i])
		rows[i] = row
	}
	return rows, nil
}

func (sh *shard) rrNext() uint32 { return sh.rr.Add(1) - 1 }
