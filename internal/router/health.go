package router

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// replica is one hsgfd process backing a shard. Health is the OR of two
// signals: an active /readyz probe loop (catches processes that died or
// started draining while idle) and passive accounting on live traffic
// (catches failures faster than the probe period). Either can mark the
// replica down; only a successful probe or a successful request marks
// it back up.
type replica struct {
	url string // base URL, e.g. http://127.0.0.1:9001

	healthy      atomic.Bool
	consecFails  atomic.Int32
	lastProbeErr atomic.Pointer[string]

	// Last observed generation/fingerprint, from probe or traffic; for
	// /v1/meta and the fleet reload report.
	generation  atomic.Uint64
	fingerprint atomic.Pointer[string]
}

func newReplica(url string) *replica {
	r := &replica{url: url}
	// Optimistic start: replicas are assumed up until a probe or a
	// request says otherwise, so the router serves immediately after
	// boot instead of waiting one probe period.
	r.healthy.Store(true)
	return r
}

// reportFailure records a transport-level failure observed on live
// traffic. After cfg.FailAfter consecutive failures the replica is
// marked down without waiting for the probe loop.
func (r *replica) reportFailure(failAfter int32) {
	if r.consecFails.Add(1) >= failAfter {
		r.healthy.Store(false)
	}
}

// reportSuccess records a successful request; any response from the
// process (including typed 429/503) proves it alive.
func (r *replica) reportSuccess() {
	r.consecFails.Store(0)
	r.healthy.Store(true)
}

// probeOnce performs one active /readyz check.
func (r *replica) probeOnce(ctx context.Context, client *http.Client, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		r.markProbeFailed(err.Error())
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		r.markProbeFailed(err.Error())
		return
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		// /readyz returns 503 while draining: the process is alive but
		// asked to be taken out of rotation.
		r.markProbeFailed("readyz " + resp.Status)
		return
	}
	r.lastProbeErr.Store(nil)
	r.reportSuccess()
}

func (r *replica) markProbeFailed(msg string) {
	r.lastProbeErr.Store(&msg)
	r.consecFails.Add(1)
	r.healthy.Store(false)
}

// probeLoop polls /readyz until ctx is cancelled. Probes are phase-
// shifted by a per-replica offset at the call site so a fleet of
// replicas does not probe in lockstep.
func (r *replica) probeLoop(ctx context.Context, client *http.Client, interval, timeout time.Duration, offset time.Duration) {
	select {
	case <-time.After(offset):
	case <-ctx.Done():
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	r.probeOnce(ctx, client, timeout)
	for {
		select {
		case <-ticker.C:
			r.probeOnce(ctx, client, timeout)
		case <-ctx.Done():
			return
		}
	}
}
