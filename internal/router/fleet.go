package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hsgf/internal/serve"
)

// Fleet-wide zero-downtime reload.
//
// POST /v1/admin/reload on the router upgrades every shard replica to
// its store's newest verified generation in two phases:
//
//  1. Verify: every replica of every shard runs a verify-only reload
//     (POST /v1/admin/reload?verify=1) — the next generation is built,
//     checksummed and validated off the request path, but NOT swapped
//     in. Replicas of one shard must also agree on what they verified
//     (same generation and fingerprint), since they share a store. If
//     anything fails, the protocol aborts here and NOTHING anywhere has
//     changed: a half-upgraded fleet is unrepresentable.
//
//  2. Flip: only after a fully green verify phase, replicas swap
//     shard-by-shard, one replica at a time, so each shard always has
//     replicas serving (the daemon-side swap is itself RCU — in-flight
//     requests finish on their old generation). A flip failure (a
//     replica crashed between phases) aborts the remaining flips and
//     the response reports exactly how far the fleet got.
//
// The whole protocol is single-flight; a concurrent trigger gets 409.

// FleetReloadResponse is the POST /v1/admin/reload body on the router.
type FleetReloadResponse struct {
	// Outcome: "ok", "verify_failed", or "flip_aborted".
	Outcome   string             `json:"outcome"`
	ElapsedMS int64              `json:"elapsed_ms"`
	Shards    []ShardReloadState `json:"shards"`
	// Error describes the first failure for non-ok outcomes.
	Error string `json:"error,omitempty"`
}

// ShardReloadState reports one shard's progress through the protocol.
type ShardReloadState struct {
	Shard    int                  `json:"shard"`
	Replicas []ReplicaReloadState `json:"replicas"`
}

// ReplicaReloadState reports one replica's verify and flip outcomes.
type ReplicaReloadState struct {
	URL string `json:"url"`
	// Verified generation/fingerprint from phase 1.
	Generation  uint64 `json:"generation,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Flipped is true once phase 2 swapped this replica.
	Flipped bool   `json:"flipped"`
	Error   string `json:"error,omitempty"`
}

// adminReload performs one reload call against one replica.
func (s *Server) adminReload(ctx context.Context, url string, verifyOnly bool) (*serve.ReloadResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ReloadTimeout)
	defer cancel()
	target := url + "/v1/admin/reload"
	if verifyOnly {
		target += "?verify=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(nil))
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		reason, _ := parseTypedError(resp)
		return nil, fmt.Errorf("%s: %d %s", target, resp.StatusCode, reason)
	}
	var rr serve.ReloadResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr); err != nil {
		return nil, fmt.Errorf("%s: undecodable response: %w", target, err)
	}
	return &rr, nil
}

func (s *Server) handleFleetReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "router is draining", time.Second)
		return
	}
	if !s.reloadMu.TryLock() {
		s.writeError(w, http.StatusConflict, "reload_in_progress", "a fleet reload is already running", time.Second)
		return
	}
	defer s.reloadMu.Unlock()

	s.stats.fleetReloads.Add(1)
	start := time.Now()
	resp := s.fleetReload(r.Context())
	resp.ElapsedMS = time.Since(start).Milliseconds()

	status := http.StatusOK
	if resp.Outcome != "ok" {
		s.stats.fleetReloadFailed.Add(1)
		status = http.StatusBadGateway
		s.logf("router: fleet reload %s after %dms: %s", resp.Outcome, resp.ElapsedMS, resp.Error)
	} else {
		s.stats.fleetReloadOK.Add(1)
		s.logf("router: fleet reload ok in %dms", resp.ElapsedMS)
	}
	writeJSON(w, status, resp)
}

// fleetReload runs the two-phase protocol and reports per-replica state.
func (s *Server) fleetReload(ctx context.Context) *FleetReloadResponse {
	resp := &FleetReloadResponse{Outcome: "ok"}
	resp.Shards = make([]ShardReloadState, len(s.shards))
	for i, sh := range s.shards {
		resp.Shards[i].Shard = i
		resp.Shards[i].Replicas = make([]ReplicaReloadState, len(sh.replicas))
		for j, rep := range sh.replicas {
			resp.Shards[i].Replicas[j].URL = rep.url
		}
	}

	// Phase 1: verify everywhere, in parallel across the whole fleet.
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		for j, rep := range sh.replicas {
			wg.Add(1)
			go func(i, j int, rep *replica) {
				defer wg.Done()
				st := &resp.Shards[i].Replicas[j]
				rr, err := s.adminReload(ctx, rep.url, true)
				if err != nil {
					st.Error = err.Error()
					return
				}
				st.Generation, st.Fingerprint = rr.Generation, rr.Fingerprint
			}(i, j, rep)
		}
	}
	wg.Wait()
	for i := range resp.Shards {
		for j := range resp.Shards[i].Replicas {
			if st := &resp.Shards[i].Replicas[j]; st.Error != "" {
				resp.Outcome = "verify_failed"
				resp.Error = fmt.Sprintf("shard %d replica %s failed verification: %s — nothing was flipped", i, st.URL, st.Error)
				return resp
			}
		}
		// Replicas of one shard share a store; disagreement on what the
		// next generation is means the stores diverged — refuse to flip.
		first := resp.Shards[i].Replicas[0]
		for _, st := range resp.Shards[i].Replicas[1:] {
			if st.Generation != first.Generation || st.Fingerprint != first.Fingerprint {
				resp.Outcome = "verify_failed"
				resp.Error = fmt.Sprintf(
					"shard %d replicas disagree on the next generation (%d/%s vs %d/%s) — nothing was flipped",
					i, first.Generation, first.Fingerprint, st.Generation, st.Fingerprint)
				return resp
			}
		}
	}

	// Phase 2: flip shard-by-shard, one replica at a time, so every
	// shard keeps serving replicas throughout.
	for i, sh := range s.shards {
		for j, rep := range sh.replicas {
			st := &resp.Shards[i].Replicas[j]
			rr, err := s.adminReload(ctx, rep.url, false)
			if err != nil {
				st.Error = err.Error()
				resp.Outcome = "flip_aborted"
				resp.Error = fmt.Sprintf("shard %d replica %s failed to flip after a green verify phase: %v — remaining flips aborted", i, rep.url, err)
				return resp
			}
			st.Flipped = true
			st.Generation, st.Fingerprint = rr.Generation, rr.Fingerprint
			rep.generation.Store(rr.Generation)
			fp := rr.Fingerprint
			rep.fingerprint.Store(&fp)
		}
	}
	return resp
}
