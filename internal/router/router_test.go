package router

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/retry"
	"hsgf/internal/serve"
)

// fleetTestGraph builds a connected labelled graph with hubs and
// periphery (same shape the partitioner tests use).
func fleetTestGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b", "c"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
		u := rng.Intn(n)
		if u != v {
			if err := b.AddEdge(graph.NodeID(v), graph.NodeID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.MustBuild()
}

// testFleet is an in-process shard fleet: real serve.Servers behind
// httptest listeners, one per replica, over halo-partitioned shard
// graphs.
type testFleet struct {
	manifest *Manifest
	urls     [][]string
	backends [][]*httptest.Server // [shard][replica]
	servers  [][]*serve.Server
}

// buildFleet partitions g into nShards shards with haloDepth and boots
// replicas serve.Servers per shard.
func buildFleet(t *testing.T, g *graph.Graph, opts core.Options, nShards, haloDepth, replicas int) *testFleet {
	t.Helper()
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: nShards, HaloDepth: haloDepth})
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{manifest: BuildManifest(g.NumNodes(), haloDepth, plans)}
	for _, p := range plans {
		var shardURLs []string
		var shardBackends []*httptest.Server
		var shardServers []*serve.Server
		for r := 0; r < replicas; r++ {
			ex, err := core.NewExtractor(p.Graph, opts)
			if err != nil {
				t.Fatal(err)
			}
			ss := serve.NewServer(ex, serve.Config{})
			ts := httptest.NewServer(ss.Handler())
			t.Cleanup(ts.Close)
			shardURLs = append(shardURLs, ts.URL)
			shardBackends = append(shardBackends, ts)
			shardServers = append(shardServers, ss)
		}
		f.urls = append(f.urls, shardURLs)
		f.backends = append(f.backends, shardBackends)
		f.servers = append(f.servers, shardServers)
	}
	return f
}

// fastConfig returns a router config with millisecond-scale retry
// timings so failure tests finish quickly.
func fastConfig(f *testFleet) Config {
	return Config{
		Manifest:  f.manifest,
		Shards:    f.urls,
		FailAfter: 1,
		Retry:     retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Breaker:   serve.BreakerConfig{Window: 128, MinSamples: 64, Cooldown: time.Minute},
	}
}

func newTestRouter(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func routerDo(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("undecodable %s response %q: %v", path, w.Body.String(), err)
		}
	}
	return w
}

func featuresBody(roots []int64) string {
	b, _ := json.Marshal(serve.FeaturesRequest{Roots: roots})
	return string(b)
}

// TestScatterGatherMatchesSingleProcess is the acceptance-criteria
// differential test: a mixed-root batch answered by the router over a
// halo-partitioned fleet must be byte-equivalent, row by row, to the
// same batch answered by one hsgfd over the full graph.
func TestScatterGatherMatchesSingleProcess(t *testing.T) {
	g := fleetTestGraph(t, 400, 7)
	opts := core.Options{MaxEdges: 3, MaskRootLabel: true}
	// Halo depth = emax is exact without dmax.
	f := buildFleet(t, g, opts, 4, opts.MaxEdges, 1)
	rt := newTestRouter(t, fastConfig(f))

	fullEx, err := core.NewExtractor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	full := serve.NewServer(fullEx, serve.Config{})
	fullTS := httptest.NewServer(full.Handler())
	defer fullTS.Close()

	// Every 3rd root: a mixed batch spanning all shards.
	var roots []int64
	for v := int64(0); v < int64(g.NumNodes()); v += 3 {
		roots = append(roots, v)
	}

	var got FeaturesResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody(roots), &got); w.Code != http.StatusOK {
		t.Fatalf("router status %d: %s", w.Code, w.Body.String())
	}
	if got.Degraded {
		t.Fatalf("healthy fleet answered degraded: %+v", got.Shards)
	}

	resp, err := http.Post(fullTS.URL+"/v1/features", "application/json", strings.NewReader(featuresBody(roots)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var want serve.FeaturesResponse
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}

	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("router returned %d rows, single process %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		gb, _ := json.Marshal(got.Rows[i])
		wb, _ := json.Marshal(want.Rows[i])
		if string(gb) != string(wb) {
			t.Errorf("row %d (root %d) diverges:\n router: %s\n single: %s", i, want.Rows[i].Root, gb, wb)
		}
	}
}

// TestScatterGatherMatchesWithDmax repeats the differential over a
// dmax-pruned extraction, where exactness needs halo depth emax+1.
func TestScatterGatherMatchesWithDmax(t *testing.T) {
	g := fleetTestGraph(t, 300, 11)
	opts := core.Options{MaxEdges: 3, MaxDegree: 8}
	f := buildFleet(t, g, opts, 3, opts.MaxEdges+1, 1)
	rt := newTestRouter(t, fastConfig(f))

	fullEx, err := core.NewExtractor(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	full := serve.NewServer(fullEx, serve.Config{})

	var roots []int64
	for v := int64(0); v < int64(g.NumNodes()); v += 5 {
		roots = append(roots, v)
	}
	var got FeaturesResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody(roots), &got); w.Code != http.StatusOK {
		t.Fatalf("router status %d: %s", w.Code, w.Body.String())
	}
	wReq := httptest.NewRequest(http.MethodPost, "/v1/features", strings.NewReader(featuresBody(roots)))
	wRec := httptest.NewRecorder()
	full.Handler().ServeHTTP(wRec, wReq)
	var want serve.FeaturesResponse
	if err := json.Unmarshal(wRec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	for i := range want.Rows {
		gb, _ := json.Marshal(got.Rows[i])
		wb, _ := json.Marshal(want.Rows[i])
		if string(gb) != string(wb) {
			t.Errorf("row %d diverges under dmax:\n router: %s\n single: %s", i, gb, wb)
		}
	}
}

// TestShardFailurePartialResults: killing every replica of one shard
// must not fail the batch — its rows come back flagged
// shard-unavailable on a 200 while other shards' rows stay exact.
func TestShardFailurePartialResults(t *testing.T) {
	g := fleetTestGraph(t, 200, 3)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 3, opts.MaxEdges, 1)
	rt := newTestRouter(t, fastConfig(f))

	const deadShard = 1
	f.backends[deadShard][0].Close()

	var roots []int64
	for v := int64(0); v < int64(g.NumNodes()); v += 2 {
		roots = append(roots, v)
	}
	var got FeaturesResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody(roots), &got); w.Code != http.StatusOK {
		t.Fatalf("batch failed with %d despite partial-result degradation: %s", w.Code, w.Body.String())
	}
	if !got.Degraded {
		t.Fatal("response not marked degraded with a dead shard")
	}
	deadRows, okRows := 0, 0
	for i, row := range got.Rows {
		if row.Root != roots[i] {
			t.Fatalf("row %d is root %d, want %d (order must be preserved)", i, row.Root, roots[i])
		}
		if graph.RootShard(graph.NodeID(row.Root), 3) == deadShard {
			deadRows++
			if row.Flags != "shard-unavailable" || !row.Truncated || row.Subgraphs != 0 {
				t.Errorf("dead-shard row %+v, want flagged shard-unavailable, truncated, empty", row)
			}
		} else {
			okRows++
			if row.Flags != "ok" {
				t.Errorf("healthy-shard row %d flagged %q", row.Root, row.Flags)
			}
		}
	}
	if deadRows == 0 || okRows == 0 {
		t.Fatalf("degenerate batch: %d dead rows, %d ok rows", deadRows, okRows)
	}
	for _, rep := range got.Shards {
		if rep.Shard == deadShard && (rep.OK || rep.Error == "") {
			t.Errorf("dead shard reported ok: %+v", rep)
		}
	}
	if n := rt.stats.unavailableRows.Load(); n != int64(deadRows) {
		t.Errorf("unavailableRows stat %d, want %d", n, deadRows)
	}
}

// TestFailoverToSecondReplica: with the first replica of a shard dead,
// requests fail over to the surviving replica with zero client-visible
// errors.
func TestFailoverToSecondReplica(t *testing.T) {
	g := fleetTestGraph(t, 120, 5)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 1, opts.MaxEdges, 2)
	rt := newTestRouter(t, fastConfig(f))

	f.backends[0][0].Close()

	for round := 0; round < 4; round++ {
		var got FeaturesResponse
		if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody([]int64{1, 2, 3}), &got); w.Code != http.StatusOK {
			t.Fatalf("round %d: status %d with a healthy replica up: %s", round, w.Code, w.Body.String())
		}
		if got.Degraded {
			t.Fatalf("round %d: degraded answer with a healthy replica up", round)
		}
	}
	if rt.stats.failovers.Load()+rt.stats.hedgeWins.Load()+rt.stats.retries.Load() == 0 {
		t.Error("no failover/hedge/retry recorded while primary replica was dead")
	}
	// Passive accounting must have marked the dead replica down.
	if rt.shards[0].replicas[0].healthy.Load() {
		t.Error("dead replica still marked healthy after FailAfter transport failures")
	}
}

// identityManifest maps a single shard over all n nodes (local == global).
func identityManifest(n int) *Manifest {
	l2g := make([]int64, n)
	for i := range l2g {
		l2g[i] = int64(i)
	}
	return &Manifest{
		Version:   manifestVersion,
		NumShards: 1,
		HaloDepth: 1,
		NumNodes:  n,
		Shards:    []ShardManifest{{Shard: 0, OwnedRoots: n, LocalToGlobal: l2g}},
	}
}

// echoBackend is a scripted shard replica: it answers /v1/features with
// ok rows after running each queued hook.
func echoBackend(t *testing.T, hook func(w http.ResponseWriter, call int) bool) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/features" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		mu.Lock()
		calls++
		call := calls
		mu.Unlock()
		if hook != nil && hook(w, call) {
			return
		}
		var req serve.FeaturesRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("backend got undecodable body: %v", err)
		}
		rows := make([]serve.FeatureRow, len(req.Roots))
		for i, root := range req.Roots {
			rows[i] = serve.FeatureRow{Root: root, Flags: "ok", Subgraphs: 1, Counts: map[string]int64{"x": 1}}
		}
		writeJSON(w, http.StatusOK, serve.FeaturesResponse{Rows: rows, Fingerprint: "f", Generation: 1})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRetryHonorsServerHint: a 503 with retry_after_ms must stretch the
// backoff to the server's hint rather than the (much smaller) computed
// delay.
func TestRetryHonorsServerHint(t *testing.T) {
	ts := echoBackend(t, func(w http.ResponseWriter, call int) bool {
		if call == 1 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":          serve.ErrorDetail{Code: "shed", Message: "full"},
				"reason":         "shed",
				"retry_after_ms": 500,
			})
			return true
		}
		return false
	})

	var mu sync.Mutex
	var sleeps []time.Duration
	cfg := Config{
		Manifest: identityManifest(10),
		Shards:   [][]string{{ts.URL}},
		Retry: retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			Sleep: func(ctx context.Context, d time.Duration) error {
				mu.Lock()
				sleeps = append(sleeps, d)
				mu.Unlock()
				return nil
			},
		},
	}
	rt := newTestRouter(t, cfg)
	var got FeaturesResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody([]int64{4}), &got); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got.Degraded {
		t.Fatal("degraded despite successful retry")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != 1 {
		t.Fatalf("%d backoff sleeps, want 1 (one retry)", len(sleeps))
	}
	if sleeps[0] != 500*time.Millisecond {
		t.Fatalf("backoff slept %v, want the server's 500ms hint to override the computed delay", sleeps[0])
	}
}

// TestHedgedRequestBeatsSlowReplica: a primary stuck well past the
// hedge delay is beaten by the hedge to the other replica; the client
// sees the fast answer.
func TestHedgedRequestBeatsSlowReplica(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := echoBackend(t, func(w http.ResponseWriter, call int) bool {
		<-release // park until the test ends
		w.WriteHeader(http.StatusInternalServerError)
		return true
	})
	fast := echoBackend(t, nil)

	cfg := Config{
		Manifest:      identityManifest(10),
		Shards:        [][]string{{slow.URL, fast.URL}},
		HedgeDelay:    5 * time.Millisecond,
		HedgeMinDelay: time.Millisecond,
		ShardTimeout:  10 * time.Second,
	}
	rt := newTestRouter(t, cfg)

	start := time.Now()
	var got FeaturesResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody([]int64{1, 2}), &got); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request took %v; hedge never rescued it", elapsed)
	}
	if got.Degraded {
		t.Fatal("hedged answer degraded")
	}
	if rt.stats.hedges.Load() == 0 || rt.stats.hedgeWins.Load() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both > 0", rt.stats.hedges.Load(), rt.stats.hedgeWins.Load())
	}
}

// TestBreakerShortCircuitsDeadShard: a shard failing every call trips
// its breaker; subsequent batches degrade immediately without burning
// retries against the dead replica set.
func TestBreakerShortCircuitsDeadShard(t *testing.T) {
	g := fleetTestGraph(t, 60, 9)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 1, opts.MaxEdges, 1)
	cfg := fastConfig(f)
	cfg.Breaker = serve.BreakerConfig{Window: 4, MinSamples: 2, Cooldown: time.Minute}
	rt := newTestRouter(t, cfg)
	f.backends[0][0].Close()

	for i := 0; i < 8; i++ {
		var got FeaturesResponse
		w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody([]int64{1}), &got)
		if w.Code != http.StatusOK {
			t.Fatalf("call %d: status %d, want degraded 200", i, w.Code)
		}
		if got.Rows[0].Flags != "shard-unavailable" {
			t.Fatalf("call %d: flags %q", i, got.Rows[0].Flags)
		}
	}
	if rt.stats.breakerRejects.Load() == 0 {
		t.Error("breaker never short-circuited a call to the dead shard")
	}
	if st := rt.shards[0].brk.State(); st != serve.BreakerOpen {
		t.Errorf("shard breaker %v after sustained failure, want open", st)
	}
}

// TestFleetReloadFlipsEveryReplica: the happy path — verify everywhere,
// then flip shard-by-shard; every replica serves the new generation.
func TestFleetReloadFlipsEveryReplica(t *testing.T) {
	g := fleetTestGraph(t, 100, 13)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 2, opts.MaxEdges, 2)
	rt := newTestRouter(t, fastConfig(f))

	for si := range f.servers {
		for _, ss := range f.servers[si] {
			ss := ss
			ss.SetReloader(func(ctx context.Context) (*serve.Snapshot, error) {
				next := serve.NewSnapshot(ss.Snapshot().Extractor)
				next.Generation = 7
				return next, nil
			})
		}
	}

	var resp FleetReloadResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/admin/reload", "", &resp); w.Code != http.StatusOK {
		t.Fatalf("fleet reload status %d: %s", w.Code, w.Body.String())
	}
	if resp.Outcome != "ok" {
		t.Fatalf("outcome %q: %s", resp.Outcome, resp.Error)
	}
	for _, shState := range resp.Shards {
		for _, repState := range shState.Replicas {
			if !repState.Flipped || repState.Generation != 7 {
				t.Errorf("replica %s: flipped=%v generation=%d, want flipped generation 7", repState.URL, repState.Flipped, repState.Generation)
			}
		}
	}
	for si := range f.servers {
		for ri, ss := range f.servers[si] {
			if gen := ss.Snapshot().Generation; gen != 7 {
				t.Errorf("shard %d replica %d serving generation %d after fleet reload, want 7", si, ri, gen)
			}
		}
	}
}

// TestFleetReloadVerifyFailureFlipsNothing: one replica failing
// verification aborts the whole protocol with zero flips anywhere.
func TestFleetReloadVerifyFailureFlipsNothing(t *testing.T) {
	g := fleetTestGraph(t, 100, 17)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 2, opts.MaxEdges, 2)
	rt := newTestRouter(t, fastConfig(f))

	for si := range f.servers {
		for ri, ss := range f.servers[si] {
			ss := ss
			if si == 1 && ri == 1 {
				ss.SetReloader(func(ctx context.Context) (*serve.Snapshot, error) {
					return nil, fmt.Errorf("store checksum mismatch")
				})
				continue
			}
			ss.SetReloader(func(ctx context.Context) (*serve.Snapshot, error) {
				next := serve.NewSnapshot(ss.Snapshot().Extractor)
				next.Generation = 7
				return next, nil
			})
		}
	}

	w := routerDo(t, rt, http.MethodPost, "/v1/admin/reload", "", nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 on verify failure", w.Code)
	}
	var resp FleetReloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != "verify_failed" {
		t.Fatalf("outcome %q, want verify_failed", resp.Outcome)
	}
	for si := range f.servers {
		for ri, ss := range f.servers[si] {
			if gen := ss.Snapshot().Generation; gen != 0 {
				t.Errorf("shard %d replica %d flipped to generation %d despite an aborted verify phase", si, ri, gen)
			}
		}
	}
}

// TestFleetReloadGenerationDisagreementAborts: replicas of one shard
// verifying different generations (diverged stores) must abort.
func TestFleetReloadGenerationDisagreementAborts(t *testing.T) {
	g := fleetTestGraph(t, 100, 19)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 1, opts.MaxEdges, 2)
	rt := newTestRouter(t, fastConfig(f))

	for ri, ss := range f.servers[0] {
		ss := ss
		gen := uint64(7 + ri) // replica 1 claims generation 8
		ss.SetReloader(func(ctx context.Context) (*serve.Snapshot, error) {
			next := serve.NewSnapshot(ss.Snapshot().Extractor)
			next.Generation = gen
			return next, nil
		})
	}
	w := routerDo(t, rt, http.MethodPost, "/v1/admin/reload", "", nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 on generation disagreement", w.Code)
	}
	var resp FleetReloadResponse
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Outcome != "verify_failed" || !strings.Contains(resp.Error, "disagree") {
		t.Fatalf("outcome %q (%s), want verify_failed on disagreement", resp.Outcome, resp.Error)
	}
	for ri, ss := range f.servers[0] {
		if gen := ss.Snapshot().Generation; gen != 0 {
			t.Errorf("replica %d flipped to %d despite disagreement abort", ri, gen)
		}
	}
}

// TestReadyzDegradedSemantics: ready while all shards have a healthy
// replica, degraded-but-200 when one shard is down, 503 when no shard
// is reachable.
func TestReadyzDegradedSemantics(t *testing.T) {
	g := fleetTestGraph(t, 80, 23)
	opts := core.Options{MaxEdges: 2}
	f := buildFleet(t, g, opts, 2, opts.MaxEdges, 1)
	rt := newTestRouter(t, fastConfig(f))

	if w := routerDo(t, rt, http.MethodGet, "/readyz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("healthy fleet readyz %d", w.Code)
	}
	rt.shards[0].replicas[0].healthy.Store(false)
	w := routerDo(t, rt, http.MethodGet, "/readyz", "", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "degraded") {
		t.Fatalf("one-shard-down readyz = %d %s, want 200 degraded", w.Code, w.Body.String())
	}
	rt.shards[1].replicas[0].healthy.Store(false)
	if w := routerDo(t, rt, http.MethodGet, "/readyz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-shards-down readyz = %d, want 503", w.Code)
	}
}

// TestRequestValidation: malformed batches are rejected with the typed
// error shape before any shard is contacted.
func TestRequestValidation(t *testing.T) {
	rt := newTestRouter(t, Config{Manifest: identityManifest(10), Shards: [][]string{{"http://127.0.0.1:1"}}})
	cases := []struct {
		body string
		want string
	}{
		{`{}`, "bad_request"},
		{`{"roots":[]}`, "bad_request"},
		{`{"roots":[99]}`, "bad_request"}, // out of range
		{`{"roots":[-1]}`, "bad_request"},
		{`{"roots":[1],"nope":true}`, "bad_request"},
	}
	for _, tc := range cases {
		w := routerDo(t, rt, http.MethodPost, "/v1/features", tc.body, nil)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.body, w.Code)
		}
		var body struct {
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(w.Body.Bytes(), &body)
		if body.Reason != tc.want {
			t.Errorf("%s: reason %q, want %q", tc.body, body.Reason, tc.want)
		}
	}
}

// TestProbeLoopDetectsDeath: the active /readyz probe marks a dead
// replica down without any traffic touching it.
func TestProbeLoopDetectsDeath(t *testing.T) {
	ts := echoBackend(t, nil)
	cfg := Config{
		Manifest:      identityManifest(10),
		Shards:        [][]string{{ts.URL}},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	}
	rt := newTestRouter(t, cfg)
	rt.StartProbes()
	defer rt.StopProbes()

	rep := rt.shards[0].replicas[0]
	deadline := time.Now().Add(5 * time.Second)
	ts.CloseClientConnections()
	ts.Close()
	for rep.healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never marked the dead replica down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
