package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/serve"
	"hsgf/internal/store"
)

// buildIngestFleet partitions g and boots replicas live follower-mode
// ingest daemons per shard: real serve.Servers over real ingest.Engines
// seeded with each shard's plan graph, behind httptest listeners.
func buildIngestFleet(t *testing.T, g *graph.Graph, opts core.Options, nShards, haloDepth, replicas int) *testFleet {
	t.Helper()
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: nShards, HaloDepth: haloDepth})
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{manifest: BuildManifest(g.NumNodes(), haloDepth, plans)}
	for si, p := range plans {
		var shardURLs []string
		var shardBackends []*httptest.Server
		var shardServers []*serve.Server
		for r := 0; r < replicas; r++ {
			st, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			seed := p.Graph
			// Follower-mode engines take the raised fleet mutation cap,
			// exactly as cmd/hsgfd wires -fleet-follower.
			eng, err := ingest.Open(ingest.Config{Store: st, Opts: opts, MaxBatchMutations: ingest.FleetMaxBatchMutations},
				func() (*graph.Graph, error) { return seed, nil })
			if err != nil {
				t.Fatalf("shard %d replica %d engine: %v", si, r, err)
			}
			t.Cleanup(func() { eng.Close() })
			_, ex, fs, gen, _ := eng.State()
			ss := serve.NewServerSnapshot(&serve.Snapshot{Extractor: ex, Features: fs, Generation: gen, Source: "ingest"}, serve.Config{})
			ss.SetIngestor(eng, "ingest")
			ss.SetFleetFollower(true)
			ts := httptest.NewServer(ss.Handler())
			t.Cleanup(ts.Close)
			shardURLs = append(shardURLs, ts.URL)
			shardBackends = append(shardBackends, ts)
			shardServers = append(shardServers, ss)
		}
		f.urls = append(f.urls, shardURLs)
		f.backends = append(f.backends, shardBackends)
		f.servers = append(f.servers, shardServers)
	}
	return f
}

// ingestConfig extends fastConfig with fleet sequencing over g.
func ingestConfig(t *testing.T, f *testFleet, g *graph.Graph) Config {
	cfg := fastConfig(f)
	cfg.SeqLogPath = filepath.Join(t.TempDir(), "seq.wal")
	cfg.IngestGraph = g
	return cfg
}

func ingestBody(batchID string, muts ...string) string {
	return fmt.Sprintf(`{"batch_id":%q,"mutations":[%s]}`, batchID, joinComma(muts))
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

func edgeMut(u, v int64) string { return fmt.Sprintf(`{"op":"add_edge","u":%d,"v":%d}`, u, v) }

// TestRouterIngestContract pins the endpoint's edge behaviour: 405 on
// GET, 501 with a machine-readable reason when the router runs without
// a sequencer, and 400s for malformed bodies — none of which may
// contact a shard or consume a fleet sequence.
func TestRouterIngestContract(t *testing.T) {
	// Without -seqlog/-ingest-graph the 501 contract survives.
	bare := newTestRouter(t, Config{Manifest: identityManifest(10), Shards: [][]string{{"http://127.0.0.1:1"}}})
	w := routerDo(t, bare, http.MethodPost, "/v1/ingest", ingestBody("x", edgeMut(0, 1)), nil)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("unconfigured ingest: status %d, want 501 (%s)", w.Code, w.Body.String())
	}
	var e501 struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e501); err != nil || e501.Reason != "ingest_unsupported" {
		t.Fatalf("501 reason = %q (err %v), want ingest_unsupported", e501.Reason, err)
	}

	g := fleetTestGraph(t, 60, 3)
	opts := core.Options{MaxEdges: 2}
	f := buildIngestFleet(t, g, opts, 2, opts.MaxEdges, 1)
	rt := newTestRouter(t, ingestConfig(t, f, g))
	defer rt.Close()

	if w := routerDo(t, rt, http.MethodGet, "/v1/ingest", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", w.Code)
	}
	bad := []struct {
		name, body string
	}{
		{"undecodable", `{"batch_id":`},
		{"unknown field", `{"batch_id":"b","mutations":[],"bogus":1}`},
		{"empty mutations", `{"batch_id":"b","mutations":[]}`},
		{"missing batch id", ingestBody("", edgeMut(0, 1))},
		{"pre-sequenced", `{"batch_id":"f1.c","fleet_seq":1,"mutations":[{"op":"add_edge","u":0,"v":1}]}`},
		{"bad op", `{"batch_id":"b","mutations":[{"op":"explode","u":0,"v":1}]}`},
		{"unknown node", ingestBody("b", edgeMut(0, 59000))},
	}
	for _, tc := range bad {
		if w := routerDo(t, rt, http.MethodPost, "/v1/ingest", tc.body, nil); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}
	// None of the rejects may have consumed a sequence.
	var stats StatsResponse
	routerDo(t, rt, http.MethodGet, "/debug/stats", "", &stats)
	if stats.FleetWatermark != 0 || stats.IngestBatches != 0 {
		t.Fatalf("rejected batches advanced fleet state: %+v", stats)
	}
}

// TestRouterIngestUnreachableShardAnswers503Watermark: when a shard's
// replicas never confirm, the client gets the machine-readable 503
// fleet_partial_apply carrying the fleet watermark rather than a hang
// or a false ack.
func TestRouterIngestUnreachableShardAnswers503Watermark(t *testing.T) {
	g := fleetTestGraph(t, 60, 3)
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: 2, HaloDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{
		manifest: BuildManifest(g.NumNodes(), 2, plans),
		urls:     [][]string{{"http://127.0.0.1:1"}, {"http://127.0.0.1:1"}},
	}
	cfg := ingestConfig(t, f, g)
	cfg.IngestAckTimeout = 50 * time.Millisecond
	rt := newTestRouter(t, cfg)
	defer rt.Close()

	w := routerDo(t, rt, http.MethodPost, "/v1/ingest", ingestBody("b1", `{"op":"add_node","label":"a"}`), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", w.Code, w.Body.String())
	}
	var body struct {
		Reason    string `json:"reason"`
		Watermark uint64 `json:"watermark"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "fleet_partial_apply" || body.Watermark != 0 {
		t.Fatalf("body = %+v, want fleet_partial_apply at watermark 0", body)
	}

	// Routing-table growth is deferred until the fleet confirms the
	// batch: the sequenced-but-unconfirmed add_node must NOT be admitted
	// as a /v1/features root, or the router would route it to replicas
	// that have not applied it.
	var meta MetaResponse
	routerDo(t, rt, http.MethodGet, "/v1/meta", "", &meta)
	if meta.NumNodes != 60 {
		t.Fatalf("meta num_nodes = %d after unconfirmed add_node, want 60", meta.NumNodes)
	}
	if w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody([]int64{60}), nil); w.Code != http.StatusBadRequest {
		t.Fatalf("features for unconfirmed root 60: status %d, want 400 (%s)", w.Code, w.Body.String())
	}
}

// TestRouterFleetIngestEndToEnd is the in-process acceptance check: a
// stream of mutation batches through the router must leave the fleet
// answering /v1/features byte-identically to a single ingest engine fed
// the same stream — including rows rooted at nodes that did not exist
// at partition time — while duplicate client batches ack idempotently.
func TestRouterFleetIngestEndToEnd(t *testing.T) {
	g := fleetTestGraph(t, 120, 11)
	opts := core.Options{MaxEdges: 2, MaskRootLabel: true}
	f := buildIngestFleet(t, g, opts, 3, opts.MaxEdges, 1)
	rt := newTestRouter(t, ingestConfig(t, f, g))
	defer rt.Close()

	// Oracle: one engine over the full graph, fed the identical stream.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ingest.Open(ingest.Config{Store: st, Opts: opts},
		func() (*graph.Graph, error) { return g, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	type batch struct {
		id   string
		muts []graph.Mutation
	}
	batches := []batch{
		{"b1", []graph.Mutation{{Op: graph.OpAddEdge, U: 0, V: 7}}},
		{"b2", []graph.Mutation{
			{Op: graph.OpAddNode, Label: "b", Name: "n-new"},
			{Op: graph.OpAddEdge, U: 120, V: 3},
		}},
		{"b3", []graph.Mutation{
			{Op: graph.OpAddEdge, U: 120, V: 55},
			{Op: graph.OpRelabel, U: 55, Label: "c"},
		}},
		{"b4", []graph.Mutation{{Op: graph.OpRemoveEdge, U: 0, V: 7}}},
	}
	for i, b := range batches {
		wire := make([]serve.IngestMutation, len(b.muts))
		for j, m := range b.muts {
			wire[j] = serve.IngestMutation{Op: m.Op.String(), U: int64(m.U), V: int64(m.V), Label: m.Label, Name: m.Name}
		}
		body, _ := json.Marshal(serve.IngestRequest{BatchID: b.id, Mutations: wire})
		var res IngestResponse
		w := routerDo(t, rt, http.MethodPost, "/v1/ingest", string(body), &res)
		if w.Code != http.StatusOK {
			t.Fatalf("batch %s: status %d (%s)", b.id, w.Code, w.Body.String())
		}
		if res.FleetSeq != uint64(i+1) || res.Watermark != uint64(i+1) {
			t.Fatalf("batch %s: seq %d watermark %d, want both %d", b.id, res.FleetSeq, res.Watermark, i+1)
		}
		if _, err := oracle.Apply(context.Background(), b.id, b.muts); err != nil {
			t.Fatalf("oracle %s: %v", b.id, err)
		}
	}

	// Duplicate retry of an already-acked batch: same sequence, no
	// re-application, replayed flag set.
	{
		body, _ := json.Marshal(serve.IngestRequest{BatchID: "b2", Mutations: []serve.IngestMutation{{Op: "add_edge", U: 0, V: 1}}})
		var res IngestResponse
		w := routerDo(t, rt, http.MethodPost, "/v1/ingest", string(body), &res)
		if w.Code != http.StatusOK || !res.Replayed || res.FleetSeq != 2 {
			t.Fatalf("duplicate b2: status %d %+v", w.Code, res)
		}
	}

	// Differential: rows via the router == rows from the oracle engine,
	// for a root mix that includes the ingested node 120.
	og, ex, fs, gen, _ := oracle.State()
	if og.NumNodes() != 121 {
		t.Fatalf("oracle has %d nodes, want 121", og.NumNodes())
	}
	full := serve.NewServerSnapshot(&serve.Snapshot{Extractor: ex, Features: fs, Generation: gen, Source: "ingest"}, serve.Config{})
	roots := []int64{0, 3, 7, 55, 119, 120}
	var want serve.FeaturesResponse
	wOracle := httptest.NewRecorder()
	reqOracle := httptest.NewRequest(http.MethodPost, "/v1/features", strings.NewReader(featuresBody(roots)))
	full.Handler().ServeHTTP(wOracle, reqOracle)
	if wOracle.Code != http.StatusOK {
		t.Fatalf("oracle features: %d %s", wOracle.Code, wOracle.Body.String())
	}
	if err := json.Unmarshal(wOracle.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	var got FeaturesResponse
	w := routerDo(t, rt, http.MethodPost, "/v1/features", featuresBody(roots), &got)
	if w.Code != http.StatusOK {
		t.Fatalf("router features: %d %s", w.Code, w.Body.String())
	}
	if got.Degraded {
		t.Fatalf("router degraded the batch: %+v", got.Shards)
	}
	for i := range roots {
		gr, wr := got.Rows[i], want.Rows[i]
		gj, _ := json.Marshal(gr)
		wj, _ := json.Marshal(wr)
		if string(gj) != string(wj) {
			t.Errorf("root %d: router row %s != oracle row %s", roots[i], gj, wj)
		}
	}

	// The fleet watermark survives in /debug/stats, and the retention
	// gauges show the sub-batch history fully trimmed: every replica of
	// every shard confirmed every chain item before its batch was acked,
	// so nothing remains replayable.
	var stats StatsResponse
	routerDo(t, rt, http.MethodGet, "/debug/stats", "", &stats)
	if stats.FleetWatermark != 4 || stats.IngestBatches != 4 || stats.IngestReplayed != 1 {
		t.Fatalf("stats = %+v, want watermark 4, 4 batches, 1 replayed", stats)
	}
	if stats.FleetHistoryItems != 0 || stats.FleetHistoryBytes != 0 {
		t.Fatalf("history not trimmed after full confirmation: %d items, %d bytes",
			stats.FleetHistoryItems, stats.FleetHistoryBytes)
	}
	if stats.FleetSeqlogBytes <= 0 || stats.FleetAckedIndex != 4 {
		t.Fatalf("retention gauges = seqlog %d bytes, acked index %d; want positive seqlog and 4 acked IDs",
			stats.FleetSeqlogBytes, stats.FleetAckedIndex)
	}
}

// TestRouterIngestSubBatchLimit: a client batch whose per-shard
// sub-batches (halo repair included) would exceed the follower limits
// is refused with 400 batch_too_large BEFORE taking a fleet sequence —
// a follower rejecting a sequenced sub-batch would latch fleet ingest
// failed on every boot. The refusal must roll the membership map back
// so the next admissible batch resolves exactly as if the oversized one
// never arrived.
func TestRouterIngestSubBatchLimit(t *testing.T) {
	g := fleetTestGraph(t, 60, 3)
	opts := core.Options{MaxEdges: 2}
	f := buildIngestFleet(t, g, opts, 2, opts.MaxEdges, 1)

	// Two relabels of the same node always land in the same sub-batch
	// (its owner shard carries both), so the mutation cap of 1 is
	// guaranteed to trip; an add_node whose name alone dwarfs the byte
	// cap trips that regardless of shard assignment. The admissible
	// retry is a single short relabel: it never triggers halo repair, so
	// every sub-batch carries exactly one small mutation.
	for _, tc := range []struct {
		name, body string
		tune       func(cfg *Config)
	}{
		{"mutation cap",
			ingestBody("big", `{"op":"relabel","u":0,"label":"b"}`, `{"op":"relabel","u":0,"label":"c"}`),
			func(cfg *Config) { cfg.MaxSubBatchMutations = 1 }},
		{"byte cap",
			ingestBody("big", fmt.Sprintf(`{"op":"add_node","label":"a","name":%q}`, strings.Repeat("n", 1000))),
			func(cfg *Config) { cfg.MaxSubBatchBytes = 256 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ingestConfig(t, f, g)
			tc.tune(&cfg)
			rt := newTestRouter(t, cfg)
			defer rt.Close()

			w := routerDo(t, rt, http.MethodPost, "/v1/ingest", tc.body, nil)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("oversized batch: status %d, want 400 (%s)", w.Code, w.Body.String())
			}
			var e struct {
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Reason != "batch_too_large" {
				t.Fatalf("reason = %q (err %v), want batch_too_large", e.Reason, err)
			}
			var stats StatsResponse
			routerDo(t, rt, http.MethodGet, "/debug/stats", "", &stats)
			if stats.IngestBatches != 0 || stats.FleetWatermark != 0 || stats.IngestRejected != 1 {
				t.Fatalf("refusal consumed fleet state: %+v", stats)
			}
			// A retry of the same client ID with an admissible batch is NOT
			// treated as a duplicate (nothing was sequenced), takes seq 1,
			// and applies cleanly against the rolled-back membership map.
			var res IngestResponse
			w = routerDo(t, rt, http.MethodPost, "/v1/ingest",
				ingestBody("big", `{"op":"relabel","u":0,"label":"a"}`), &res)
			if w.Code != http.StatusOK || res.Replayed || res.FleetSeq != 1 {
				t.Fatalf("admissible retry: status %d %+v (%s)", w.Code, res, w.Body.String())
			}
		})
	}
}

// TestRouterIngestBootReplayRecoversSequencedBatches: a router killed
// after sequencing but before fan-out must, on restart over the same
// sequencer log, replay the batch to the fleet — the durable sequence
// is a promise even though the client never got its ack.
func TestRouterIngestBootReplayRecoversSequencedBatches(t *testing.T) {
	g := fleetTestGraph(t, 80, 5)
	opts := core.Options{MaxEdges: 2}
	f := buildIngestFleet(t, g, opts, 2, opts.MaxEdges, 1)
	cfg := ingestConfig(t, f, g)

	// First router life: sequence two batches but crash (SequenceHook
	// panic, recovered here) before the second is fanned out. The dead
	// router is abandoned un-Closed, like a killed process: its mutex
	// died locked with it.
	crash := make(chan struct{})
	cfg.SequenceHook = func(seq uint64) {
		if seq == 2 {
			close(crash)
			panic("crash between sequencing and fan-out")
		}
	}
	rt := newTestRouter(t, cfg)
	var res IngestResponse
	if w := routerDo(t, rt, http.MethodPost, "/v1/ingest", ingestBody("b1", edgeMut(0, 9)), &res); w.Code != http.StatusOK {
		t.Fatalf("b1: %d %s", w.Code, w.Body.String())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("crash hook did not fire")
			}
		}()
		routerDo(t, rt, http.MethodPost, "/v1/ingest", ingestBody("b2", edgeMut(1, 9)), nil)
	}()
	<-crash

	// Second life over the same sequencer log: boot replay must push the
	// orphaned seq 2 to the shards and report watermark 2.
	cfg2 := ingestConfig(t, f, g)
	cfg2.SeqLogPath = cfg.SeqLogPath
	rt2 := newTestRouter(t, cfg2)
	defer rt2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats StatsResponse
		routerDo(t, rt2, http.MethodGet, "/debug/stats", "", &stats)
		if stats.FleetWatermark == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet watermark stuck at %d, want 2 after boot replay", stats.FleetWatermark)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A client retry of the orphaned batch acks idempotently.
	if w := routerDo(t, rt2, http.MethodPost, "/v1/ingest", ingestBody("b2", edgeMut(1, 9)), &res); w.Code != http.StatusOK || !res.Replayed || res.FleetSeq != 2 {
		t.Fatalf("b2 retry: status %d %+v", w.Code, res)
	}
}
