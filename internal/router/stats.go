package router

import (
	"net/http"
	"sync/atomic"
	"time"
)

// routerStats are the routing tier's live counters, exposed at
// /debug/stats. All monotonic; read with atomic loads.
type routerStats struct {
	requests          atomic.Int64 // batches admitted
	rootsRouted       atomic.Int64 // roots across all batches
	shardCalls        atomic.Int64 // successful shard calls
	retries           atomic.Int64 // shard-call re-attempts (attempt > 1)
	hedges            atomic.Int64 // hedge legs fired on the p95 timer
	hedgeWins         atomic.Int64 // batches resolved by a non-primary leg
	failovers         atomic.Int64 // immediate failover legs after primary failure
	breakerRejects    atomic.Int64 // shard calls short-circuited by an open breaker
	unavailableRows   atomic.Int64 // rows degraded shard-unavailable
	degradedResponses atomic.Int64 // 200s with any flagged row
	fleetReloads      atomic.Int64 // fleet reload attempts
	fleetReloadOK     atomic.Int64
	fleetReloadFailed atomic.Int64

	ingestBatches    atomic.Int64  // batches sequenced and fanned out
	ingestReplayed   atomic.Int64  // duplicate client batches acked idempotently
	ingestRejected   atomic.Int64  // batches refused at validation
	ingestPartial    atomic.Int64  // acks timed out into 503 fleet_partial_apply
	ingestGapReplays atomic.Int64  // replica chains repaired after a sequence_gap
	fleetWatermark   atomic.Uint64 // highest fully confirmed fleet sequence
}

// StatsResponse is the GET /debug/stats body.
type StatsResponse struct {
	Requests          int64 `json:"requests"`
	RootsRouted       int64 `json:"roots_routed"`
	ShardCalls        int64 `json:"shard_calls"`
	Retries           int64 `json:"retries"`
	Hedges            int64 `json:"hedges"`
	HedgeWins         int64 `json:"hedge_wins"`
	Failovers         int64 `json:"failovers"`
	BreakerRejects    int64 `json:"breaker_rejects"`
	UnavailableRows   int64 `json:"unavailable_rows"`
	DegradedResponses int64 `json:"degraded_responses"`
	FleetReloads      int64 `json:"fleet_reloads"`
	FleetReloadOK     int64 `json:"fleet_reload_ok"`
	FleetReloadFailed int64 `json:"fleet_reload_failed"`

	IngestBatches    int64  `json:"ingest_batches"`
	IngestReplayed   int64  `json:"ingest_replayed"`
	IngestRejected   int64  `json:"ingest_rejected"`
	IngestPartial    int64  `json:"ingest_partial"`
	IngestGapReplays int64  `json:"ingest_gap_replays"`
	FleetWatermark   uint64 `json:"fleet_watermark"`

	// Sequencer retention gauges, present only on ingest-enabled
	// routers: sequencer WAL bytes on disk, untrimmed sub-batch history
	// (items and body bytes), and client idempotency index entries.
	FleetSeqlogBytes  int64 `json:"fleet_seqlog_bytes,omitempty"`
	FleetHistoryItems int   `json:"fleet_history_items,omitempty"`
	FleetHistoryBytes int64 `json:"fleet_history_bytes,omitempty"`
	FleetAckedIndex   int   `json:"fleet_acked_index,omitempty"`

	Shards []ShardStats `json:"shards"`
}

// ShardStats is one shard's live client-side state.
type ShardStats struct {
	Shard           int     `json:"shard"`
	Breaker         string  `json:"breaker"`
	HealthyReplicas int     `json:"healthy_replicas"`
	Replicas        int     `json:"replicas"`
	P95MS           float64 `json:"p95_ms,omitempty"`
	HedgeDelayMS    float64 `json:"hedge_delay_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Requests:          s.stats.requests.Load(),
		RootsRouted:       s.stats.rootsRouted.Load(),
		ShardCalls:        s.stats.shardCalls.Load(),
		Retries:           s.stats.retries.Load(),
		Hedges:            s.stats.hedges.Load(),
		HedgeWins:         s.stats.hedgeWins.Load(),
		Failovers:         s.stats.failovers.Load(),
		BreakerRejects:    s.stats.breakerRejects.Load(),
		UnavailableRows:   s.stats.unavailableRows.Load(),
		DegradedResponses: s.stats.degradedResponses.Load(),
		FleetReloads:      s.stats.fleetReloads.Load(),
		FleetReloadOK:     s.stats.fleetReloadOK.Load(),
		FleetReloadFailed: s.stats.fleetReloadFailed.Load(),
		IngestBatches:     s.stats.ingestBatches.Load(),
		IngestReplayed:    s.stats.ingestReplayed.Load(),
		IngestRejected:    s.stats.ingestRejected.Load(),
		IngestPartial:     s.stats.ingestPartial.Load(),
		IngestGapReplays:  s.stats.ingestGapReplays.Load(),
		FleetWatermark:    s.stats.fleetWatermark.Load(),
	}
	if s.fleet != nil {
		resp.FleetSeqlogBytes, resp.FleetHistoryItems, resp.FleetHistoryBytes, resp.FleetAckedIndex = s.fleet.memStats()
	}
	for _, sh := range s.shards {
		st := ShardStats{
			Shard:        sh.idx,
			Breaker:      sh.brk.State().String(),
			Replicas:     len(sh.replicas),
			HedgeDelayMS: float64(s.hedgeDelay(sh)) / float64(time.Millisecond),
		}
		for _, rep := range sh.replicas {
			if rep.healthy.Load() {
				st.HealthyReplicas++
			}
		}
		if p95, ok := sh.lat.p95(); ok {
			st.P95MS = float64(p95) / float64(time.Millisecond)
		}
		resp.Shards = append(resp.Shards, st)
	}
	writeJSON(w, http.StatusOK, resp)
}
