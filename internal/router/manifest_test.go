package router

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hsgf/internal/graph"
)

func testManifest(t *testing.T) *Manifest {
	t.Helper()
	g := fleetTestGraph(t, 150, 29)
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: 3, HaloDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	return BuildManifest(g.NumNodes(), 2, plans)
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh manifest invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("manifest did not round-trip")
	}
}

func TestManifestValidateRejectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Manifest)
		want   string
	}{
		{"future version", func(m *Manifest) { m.Version = manifestVersion + 1 }, "version"},
		{"shard order", func(m *Manifest) { m.Shards[0].Shard = 2 }, "ordered"},
		{"out of range mapping", func(m *Manifest) { m.Shards[1].LocalToGlobal[0] = int64(m.NumNodes) }, "out-of-range"},
		{"duplicate mapping", func(m *Manifest) {
			m.Shards[1].LocalToGlobal[1] = m.Shards[1].LocalToGlobal[0]
		}, "twice"},
		{"missing owner", func(m *Manifest) {
			// Drop shard 0's entire universe: its owned roots go missing.
			m.Shards[0].LocalToGlobal = nil
		}, "absent"},
	}
	for _, tc := range cases {
		m := testManifest(t)
		tc.mutate(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}
