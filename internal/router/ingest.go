package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/serve"
	"hsgf/internal/store"
)

// Fleet ingest: the router is the fleet's single sequencer. Every
// mutation batch is validated against the router's authoritative
// membership map, assigned a monotone fleet sequence by a CRC-framed
// sequencer WAL (durability point), resolved into per-shard sub-batches
// (owner shard plus every shard whose halo the mutation touches, with
// halo repair woven in by graph.ShardMap), and fanned out to every
// replica of every affected shard. Replicas apply strictly in fleet
// order — the sub-batch carries (fleet_seq, prev_fleet_seq) and a shard
// at a different watermark refuses with 409 sequence_gap, which the
// sender repairs by replaying the missed suffix of that shard's chain
// from the in-memory history backed by the sequencer log.
//
// The client ack contract: 200 only after every replica of every
// affected shard confirmed the sub-batch; otherwise a machine-readable
// 503 fleet_partial_apply carrying the fleet watermark, while senders
// keep retrying in the background until stragglers converge. Duplicate
// client batch IDs ack idempotently at the router, and the composite
// fleet batch ID makes the fan-out idempotent at every shard.

// fanItem is one shard's sub-batch of one sequenced fleet batch: the
// fully marshalled follower request, shared by every replica sender of
// that shard and retained in the shard's chain history for gap replay.
type fanItem struct {
	seq   uint64
	prev  uint64 // previous fleet seq that touched this shard (0 = first)
	shard int
	body  []byte
}

// ackState tracks one sequenced batch's outstanding replica confirms.
type ackState struct {
	remaining int
	done      chan struct{}
}

// fleetError is a typed submit failure for the handler to translate
// into the shared error envelope.
type fleetError struct {
	status    int
	code      string
	msg       string
	watermark uint64
}

func (e *fleetError) Error() string { return e.msg }

type fleetIngest struct {
	s   *Server
	sm  *graph.ShardMap
	log *store.SeqLog

	ackTimeout time.Duration

	mu sync.Mutex
	// failed latches when fleet state can no longer be trusted to match
	// the sequencer log (sequencer IO failure after partial write, a
	// post-validate apply failure, or a shard rejecting a sequenced
	// sub-batch as malformed). Every later submit is refused; a restart
	// rebuilds from the log.
	failed     bool
	failReason string
	// lastTouched[s] is the newest fleet seq whose fan-out touched shard
	// s: the prev_fleet_seq link for the next sub-batch bound there.
	lastTouched []uint64
	// history[s] is shard s's sub-batch chain in ascending seq order —
	// the gap-repair replay source, rebuilt from the sequencer log on
	// boot. Items at or below every replica's confirmed watermark can
	// never be replayed again, so confirmThrough trims them as confirms
	// land; only the unconfirmed suffix is retained in memory.
	history [][]*fanItem
	// historyBytes tracks the retained sub-batch body bytes across all
	// shard chains (a /debug/stats gauge).
	historyBytes int64
	pending      map[uint64]*ackState
	complete     map[uint64]bool // fully confirmed but above the watermark
	// watermark is the highest seq with every seq at or below it fully
	// confirmed by all replicas of all affected shards.
	watermark uint64
	// acked maps every client batch ID ever sequenced to its fleet seq
	// — the router-level idempotency index. It is deliberately
	// unbounded: the sequencer log already retains every record (the
	// index is rebuilt from it on boot), so the index adds one small
	// entry per batch to state that grows anyway, and eviction would
	// re-open the double-apply hole — a retry of an evicted ID would be
	// re-sequenced under a new composite fleet batch ID that no shard's
	// replay index can match. Compacting the log (DESIGN.md §14) is the
	// operator lever that bounds both together.
	acked map[string]uint64
	// growth[seq] is the routing-table growth seq's batch produced
	// (new shard members and the fleet node count after the batch),
	// deferred until the fleet watermark passes seq: /v1/features must
	// not admit a root and route it to replicas that have not applied
	// the batch that created it.
	growth map[uint64]*pendingGrowth

	senders      []*replicaSender
	shardSenders [][]*replicaSender // senders grouped by shard index
	stopCh       chan struct{}
	stopped      bool
	wg           sync.WaitGroup
}

// pendingGrowth is one sequenced batch's deferred routing-table growth.
type pendingGrowth struct {
	numNodes int64           // fleet node count once this seq is confirmed
	perShard map[int][]int64 // shard -> new member globals, assignment order
}

// newFleetIngest builds the fleet ingest state: an authoritative
// ShardMap cross-checked against the manifest, the sequencer log, and
// one ordered sender per (shard, replica). Every record already in the
// log is replayed through the ShardMap (deterministically regenerating
// the exact sub-batches of the previous run) and each shard chain's
// tail is enqueued to its replicas: an up-to-date replica replay-acks
// the tail in one round trip — implicitly confirming its whole chain —
// while a replica that crashed mid-stream answers 409 with its
// watermark and gets the missed suffix replayed. That makes boot the
// same code path as steady-state gap repair, and it is what repairs a
// router killed between sequencing and fan-out.
func newFleetIngest(s *Server, g *graph.Graph, path string) (*fleetIngest, error) {
	sm, err := graph.NewShardMap(g, graph.PartitionConfig{
		NumShards: s.m.NumShards,
		HaloDepth: s.m.HaloDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("router: ingest shard map: %w", err)
	}
	// The ShardMap must agree with the manifest the shards were cut
	// from, or local-ID translation would silently corrupt mutations.
	for i := range s.shards {
		man := s.m.Shards[i].LocalToGlobal
		if sm.ShardSize(i) != len(man) {
			return nil, fmt.Errorf("router: ingest graph disagrees with manifest: shard %d has %d members, manifest %d (wrong -ingest-graph?)",
				i, sm.ShardSize(i), len(man))
		}
		for local, global := range man {
			if l, ok := sm.LocalID(i, graph.NodeID(global)); !ok || int(l) != local {
				return nil, fmt.Errorf("router: ingest graph disagrees with manifest: shard %d node %d", i, global)
			}
		}
	}

	log, err := store.OpenSeqLog(path)
	if err != nil {
		return nil, err
	}
	f := &fleetIngest{
		s:            s,
		sm:           sm,
		log:          log,
		ackTimeout:   s.cfg.IngestAckTimeout,
		lastTouched:  make([]uint64, s.m.NumShards),
		history:      make([][]*fanItem, s.m.NumShards),
		pending:      make(map[uint64]*ackState),
		complete:     make(map[uint64]bool),
		acked:        make(map[string]uint64),
		growth:       make(map[uint64]*pendingGrowth),
		shardSenders: make([][]*replicaSender, s.m.NumShards),
		stopCh:       make(chan struct{}),
	}

	for _, rec := range log.Records() {
		clientID, muts, err := graph.DecodeMutations(rec.Payload)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("router: sequencer record %d: %w", rec.Seq, err)
		}
		if _, err := f.sequencedApply(rec.Seq, clientID, muts); err != nil {
			log.Close()
			return nil, fmt.Errorf("router: replaying sequencer record %d: %w", rec.Seq, err)
		}
	}

	for _, sh := range s.shards {
		for _, rep := range sh.replicas {
			rs := &replicaSender{f: f, sh: sh, rep: rep}
			rs.cond = sync.NewCond(&rs.mu)
			// Catch-up entry point: the tail of this shard's chain. Its
			// ack confirms the whole chain; a gap answer pulls in the
			// missed middle.
			if chain := f.history[sh.idx]; len(chain) > 0 {
				rs.queue = append(rs.queue, chain[len(chain)-1])
			}
			f.senders = append(f.senders, rs)
			f.shardSenders[sh.idx] = append(f.shardSenders[sh.idx], rs)
		}
	}
	for _, rs := range f.senders {
		f.wg.Add(1)
		go rs.run()
	}
	return f, nil
}

// stop halts the senders and closes the sequencer log; idempotent.
func (f *fleetIngest) stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	close(f.stopCh)
	for _, rs := range f.senders {
		rs.mu.Lock()
		rs.cond.Broadcast()
		rs.mu.Unlock()
	}
	f.mu.Unlock()
	f.wg.Wait()
	_ = f.log.Close()
}

// stageBatch resolves one batch against the membership map and builds
// the per-shard sub-batch bodies for sequence seq WITHOUT committing
// any fleet bookkeeping: chain links, history, acks, and routing-table
// growth are installed by commitBatch once the sequence is durable. The
// returned undo rolls the membership map back to its pre-batch state —
// the refusal path for a batch whose sub-batches overflow the follower
// limits. Caller holds f.mu or is inside newFleetIngest before the
// state is shared. The emitted sub-batches are deterministic in the
// ShardMap state, so a boot-time replay regenerates byte-identical
// bodies to the run that crashed.
func (f *fleetIngest) stageBatch(seq uint64, clientID string, muts []graph.Mutation) (items []*fanItem, deltas []graph.ShardDelta, undo func(), err error) {
	deltas, undo, err = f.sm.ApplyStaged(muts)
	if err != nil {
		return nil, nil, nil, err
	}
	batchID := ingest.FleetBatchID(seq, clientID)
	items = make([]*fanItem, 0, len(deltas))
	for _, d := range deltas {
		wire := make([]serve.IngestMutation, len(d.Muts))
		for i, m := range d.Muts {
			wire[i] = serve.IngestMutation{Op: m.Op.String(), U: int64(m.U), V: int64(m.V), Label: m.Label, Name: m.Name}
		}
		body, merr := json.Marshal(serve.IngestRequest{
			BatchID:      batchID,
			FleetSeq:     seq,
			PrevFleetSeq: f.lastTouched[d.Shard],
			Mutations:    wire,
		})
		if merr != nil {
			undo()
			return nil, nil, nil, merr
		}
		items = append(items, &fanItem{seq: seq, prev: f.lastTouched[d.Shard], shard: d.Shard, body: body})
	}
	return items, deltas, undo, nil
}

// checkSubBatchLimits refuses a staged batch whose sub-batches the
// followers would reject: mutation count over the engine cap or body
// over the follower request bound. The check runs BEFORE the batch
// takes a durable sequence — a follower 400 on a sequenced sub-batch
// latches fleet ingest failed and, because boot replay regenerates the
// identical sub-batch from the sequencer log, would re-latch it on
// every restart. Refusing up front keeps oversized batches a plain
// client error.
func (f *fleetIngest) checkSubBatchLimits(items []*fanItem, deltas []graph.ShardDelta) *fleetError {
	maxMuts, maxBytes := f.s.cfg.MaxSubBatchMutations, f.s.cfg.MaxSubBatchBytes
	for i, item := range items {
		if n := len(deltas[i].Muts); n > maxMuts {
			return &fleetError{status: http.StatusBadRequest, code: "batch_too_large",
				msg: fmt.Sprintf("shard %d sub-batch would carry %d mutations (halo repair included), over the follower cap %d; split the batch — or, if one mutation's halo expansion alone overflows, raise the fleet limits on both tiers", item.shard, n, maxMuts)}
		}
		if len(item.body) > maxBytes {
			return &fleetError{status: http.StatusBadRequest, code: "batch_too_large",
				msg: fmt.Sprintf("shard %d sub-batch body would be %d bytes (halo repair included), over the follower cap %d; split the batch — or, if one mutation's halo expansion alone overflows, raise the fleet limits on both tiers", item.shard, len(item.body), maxBytes)}
		}
	}
	return nil
}

// commitBatch installs a staged batch's fleet bookkeeping: chain links,
// history, the pending ack state, the client idempotency index, and the
// deferred routing-table growth. Caller holds f.mu (or is inside
// newFleetIngest) and has made seq durable in the sequencer log.
func (f *fleetIngest) commitBatch(seq uint64, clientID string, items []*fanItem, deltas []graph.ShardDelta) {
	remaining := 0
	var grow *pendingGrowth
	for i, item := range items {
		f.lastTouched[item.shard] = seq
		f.history[item.shard] = append(f.history[item.shard], item)
		f.historyBytes += int64(len(item.body))
		remaining += len(f.s.shards[item.shard].replicas)

		if d := deltas[i]; len(d.NewNodes) > 0 {
			globals := make([]int64, len(d.NewNodes))
			for j, g := range d.NewNodes {
				globals[j] = int64(g)
			}
			if grow == nil {
				grow = &pendingGrowth{perShard: make(map[int][]int64)}
			}
			grow.perShard[d.Shard] = globals
		}
	}
	if grow != nil {
		grow.numNodes = int64(f.sm.NumNodes())
		f.growth[seq] = grow
	}

	f.acked[clientID] = seq
	st := &ackState{remaining: remaining, done: make(chan struct{})}
	f.pending[seq] = st
	if remaining == 0 {
		// Defensive: a batch that touches no shard (unreachable today —
		// every mutation has an owner) completes immediately.
		f.completeLocked(seq, st)
	}
}

// sequencedApply is the boot-replay path: stage plus commit for a
// record already durable in the sequencer log. Limits are deliberately
// NOT re-checked — the record passed them before it was appended, and
// regeneration is deterministic; refusing here would brick boot if an
// operator lowered the limits across a restart.
func (f *fleetIngest) sequencedApply(seq uint64, clientID string, muts []graph.Mutation) ([]*fanItem, error) {
	items, deltas, _, err := f.stageBatch(seq, clientID, muts)
	if err != nil {
		return nil, err
	}
	f.commitBatch(seq, clientID, items, deltas)
	return items, nil
}

// completeLocked marks seq fully confirmed and advances the fleet
// watermark over any now-contiguous prefix, applying each passed
// batch's deferred routing-table growth in sequence order. Caller
// holds f.mu.
func (f *fleetIngest) completeLocked(seq uint64, st *ackState) {
	delete(f.pending, seq)
	f.complete[seq] = true
	close(st.done)
	for f.complete[f.watermark+1] {
		delete(f.complete, f.watermark+1)
		f.watermark++
		f.applyGrowthLocked(f.watermark)
	}
	f.s.stats.fleetWatermark.Store(f.watermark)
}

// applyGrowthLocked installs the routing-table growth of a batch the
// fleet watermark just passed: new member globals on each grown
// shard's ID tables and the advanced fleet node count that /v1/features
// validates roots against. Growth is deferred to this point — not
// applied at sequencing — so the router never admits a root and routes
// it to a replica that has not yet applied the batch that created it.
// Watermark advance is contiguous, so growth applies in exact sequence
// order and the node-count monotonically rises. Caller holds f.mu.
func (f *fleetIngest) applyGrowthLocked(seq uint64) {
	grow, ok := f.growth[seq]
	if !ok {
		return
	}
	delete(f.growth, seq)
	for sh, globals := range grow.perShard {
		f.s.shards[sh].growIDs(globals)
	}
	f.s.numNodes.Store(grow.numNodes)
}

// latchFailed poisons fleet ingest; only a router restart (which
// rebuilds from the sequencer log) clears it.
func (f *fleetIngest) latchFailed(reason string) {
	f.mu.Lock()
	if !f.failed {
		f.failed = true
		f.failReason = reason
		f.s.logf("router: fleet ingest FAILED, restart required: %s", reason)
	}
	f.mu.Unlock()
}

// chainBetween returns shard sh's history items with seq in (after,
// upTo) — the gap-replay window between a replica's watermark and the
// item it refused. Caller holds f.mu.
func (f *fleetIngest) chainBetween(sh int, after, upTo uint64) []*fanItem {
	chain := f.history[sh]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].seq > after })
	var out []*fanItem
	for ; i < len(chain) && chain[i].seq < upTo; i++ {
		out = append(out, chain[i])
	}
	return out
}

// submit sequences and fans out one client batch, blocking until the
// fleet confirms it or ackTimeout passes. The *fleetError return is a
// typed protocol outcome; a 503 fleet_partial_apply leaves the senders
// repairing in the background so the batch still converges.
func (f *fleetIngest) submit(ctx context.Context, clientID string, muts []graph.Mutation) (seq uint64, replayed bool, shards int, wm uint64, ferr *fleetError) {
	f.mu.Lock()
	if f.failed {
		reason := f.failReason
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: "fleet ingest is latched failed and requires a router restart: " + reason}
	}
	if prior, dup := f.acked[clientID]; dup {
		// Idempotent client retry: never re-sequence. Wait out the
		// original fan-out if it is still pending.
		st := f.pending[prior]
		f.mu.Unlock()
		f.s.stats.ingestReplayed.Add(1)
		return f.awaitAck(ctx, prior, true, 0, st)
	}
	if err := f.sm.Validate(muts); err != nil {
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusBadRequest, code: "bad_mutation", msg: err.Error()}
	}
	payload, err := graph.EncodeMutations(clientID, muts)
	if err != nil {
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusBadRequest, code: "bad_mutation", msg: err.Error()}
	}
	// Stage against the next sequence BEFORE appending to the sequencer:
	// the sub-batch limit check must be able to refuse the batch with a
	// plain 400 and roll the membership map back, which is only possible
	// while nothing is durable yet. f.mu serialises every Append, so the
	// predicted sequence is exact (asserted below).
	seq = f.log.LastSeq() + 1
	items, deltas, undo, err := f.stageBatch(seq, clientID, muts)
	if err != nil {
		// Validate passed, so this is a bug or resource exhaustion.
		// Nothing is durable and the membership map was rolled back, so
		// refuse this batch without latching the fleet.
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: "batch failed to resolve against the membership map; not sequenced, safe to retry: " + err.Error()}
	}
	if ferr := f.checkSubBatchLimits(items, deltas); ferr != nil {
		undo()
		f.mu.Unlock()
		return 0, false, 0, 0, ferr
	}
	durableSeq, err := f.log.Append(payload)
	if err != nil {
		// The sequencer could not make the assignment durable; the WAL
		// layer has rolled back or poisoned itself, so nothing was
		// acked and nothing may proceed.
		undo()
		f.failed = true
		f.failReason = "sequencer append: " + err.Error()
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: "sequencer write failed; batch not acked, retry against a restarted router: " + err.Error()}
	}
	if durableSeq != seq {
		// Cannot happen while f.mu guards every Append; if it does, the
		// staged bodies carry the wrong sequence and must not fan out.
		f.failed = true
		f.failReason = fmt.Sprintf("sequencer skew: staged seq %d, durable seq %d", seq, durableSeq)
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: f.failReason}
	}
	if hook := f.s.cfg.SequenceHook; hook != nil {
		// Fault-injection seam: the smoke suite kills the router here,
		// in the window where the sequence is durable but nothing has
		// been fanned out. Boot replay must repair it.
		hook(seq)
	}
	f.commitBatch(seq, clientID, items, deltas)
	st := f.pending[seq] // may already be gone for a zero-shard batch
	for _, item := range items {
		for _, rs := range f.shardSenders[item.shard] {
			rs.enqueue(item)
		}
	}
	f.mu.Unlock()
	f.s.stats.ingestBatches.Add(1)
	return f.awaitAck(ctx, seq, false, len(items), st)
}

// awaitAck blocks until seq is fully confirmed, the context dies, or
// ackTimeout passes. st may be nil when the batch already completed.
func (f *fleetIngest) awaitAck(ctx context.Context, seq uint64, replayed bool, shards int, st *ackState) (uint64, bool, int, uint64, *fleetError) {
	if st != nil {
		timer := time.NewTimer(f.ackTimeout)
		defer timer.Stop()
		select {
		case <-st.done:
		case <-ctx.Done():
			return f.partialApply(seq, shards)
		case <-timer.C:
			return f.partialApply(seq, shards)
		case <-f.stopCh:
			return f.partialApply(seq, shards)
		}
	}
	f.mu.Lock()
	wm := f.watermark
	f.mu.Unlock()
	return seq, replayed, shards, wm, nil
}

func (f *fleetIngest) partialApply(seq uint64, shards int) (uint64, bool, int, uint64, *fleetError) {
	f.mu.Lock()
	wm := f.watermark
	f.mu.Unlock()
	f.s.stats.ingestPartial.Add(1)
	return 0, false, 0, 0, &fleetError{
		status: http.StatusServiceUnavailable, code: "fleet_partial_apply",
		msg:       fmt.Sprintf("batch %d is durably sequenced but not yet confirmed by every affected shard; the router is repairing stragglers in the background — do not re-submit under a new batch_id (fleet watermark %d)", seq, wm),
		watermark: wm,
	}
}

// watermarkNow returns the current fleet watermark.
func (f *fleetIngest) watermarkNow() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watermark
}

// memStats reports the fleet sequencer's retention footprint for
// /debug/stats: sequencer log bytes on disk, retained (untrimmed)
// history items and body bytes across all shard chains, and the size
// of the client idempotency index.
func (f *fleetIngest) memStats() (seqlogBytes int64, historyItems int, historyBytes int64, ackedIndex int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, chain := range f.history {
		historyItems += len(chain)
	}
	return f.log.Size(), historyItems, f.historyBytes, len(f.acked)
}

// replicaSender delivers one replica's sub-batch stream strictly in
// fleet order: a dedicated goroutine drains an ordered queue, retrying
// each item with backoff until the replica confirms it (or reports a
// gap, which splices the missed chain suffix in front). One slow or
// dead replica therefore never blocks the others — partial-failure
// recovery is per replica — while per-replica ordering keeps every
// follower's engine on the exact fleet sequence.
type replicaSender struct {
	f   *fleetIngest
	sh  *shard
	rep *replica

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*fanItem
	// confirmedSeq is the highest chain seq this replica has confirmed
	// (guarded by f.mu, not rs.mu: confirmation walks shared ack state).
	confirmedSeq uint64
}

func (rs *replicaSender) enqueue(item *fanItem) {
	rs.mu.Lock()
	rs.queue = append(rs.queue, item)
	rs.cond.Signal()
	rs.mu.Unlock()
}

// splice puts items (ascending seq, all below head's seq) in front of
// the queue — the gap-repair path.
func (rs *replicaSender) splice(items []*fanItem, head *fanItem) {
	rs.mu.Lock()
	rest := append([]*fanItem{head}, rs.queue...)
	rs.queue = append(append([]*fanItem{}, items...), rest...)
	rs.mu.Unlock()
}

func (rs *replicaSender) next() *fanItem {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for {
		select {
		case <-rs.f.stopCh:
			return nil
		default:
		}
		if len(rs.queue) > 0 {
			item := rs.queue[0]
			rs.queue[0] = nil
			rs.queue = rs.queue[1:]
			return item
		}
		rs.cond.Wait()
	}
}

func (rs *replicaSender) run() {
	defer rs.f.wg.Done()
	for {
		item := rs.next()
		if item == nil {
			return
		}
		rs.deliver(item)
	}
}

// deliver pushes one item at the replica until it is confirmed, a gap
// reroutes delivery, or the fleet stops. Backoff honours the replica's
// Retry-After hint and is capped; a dead replica is retried forever —
// this loop IS the background catch-up repair.
func (rs *replicaSender) deliver(item *fanItem) {
	f := rs.f
	f.mu.Lock()
	already := item.seq <= rs.confirmedSeq
	f.mu.Unlock()
	if already {
		// Confirmed implicitly by a later in-chain ack during gap
		// repair; nothing to send.
		return
	}
	backoff := 50 * time.Millisecond
	const maxBackoff = 3 * time.Second
	for {
		select {
		case <-f.stopCh:
			return
		default:
		}
		outcome, hint := rs.attempt(item)
		switch outcome {
		case deliverConfirmed:
			return
		case deliverGap:
			return // splice already rearranged the queue
		case deliverPoison:
			f.latchFailed(fmt.Sprintf("replica %s rejected sequenced sub-batch %d for shard %d as invalid", rs.rep.url, item.seq, item.shard))
			return
		}
		if hint > backoff {
			backoff = hint
		}
		select {
		case <-f.stopCh:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

type deliverOutcome int

const (
	deliverRetry deliverOutcome = iota
	deliverConfirmed
	deliverGap
	deliverPoison
)

// attempt sends item once and classifies the replica's answer.
func (rs *replicaSender) attempt(item *fanItem) (deliverOutcome, time.Duration) {
	f := rs.f
	ctx, cancel := context.WithTimeout(context.Background(), f.s.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rs.rep.url+"/v1/ingest", bytes.NewReader(item.body))
	if err != nil {
		return deliverRetry, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.s.client.Do(req)
	if err != nil {
		rs.rep.reportFailure(f.s.cfg.FailAfter)
		return deliverRetry, 0
	}
	defer drainBody(resp)

	switch {
	case resp.StatusCode == http.StatusOK:
		rs.rep.reportSuccess()
		rs.confirmThrough(item)
		return deliverConfirmed, 0
	case resp.StatusCode == http.StatusConflict:
		// Gap: the replica's watermark is behind this item's chain
		// predecessor. Splice the missed suffix of this shard's chain in
		// front and let the queue deliver it in order.
		rs.rep.reportSuccess()
		var body struct {
			Reason    string `json:"reason"`
			Watermark uint64 `json:"watermark"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
		if body.Reason != "sequence_gap" {
			return deliverRetry, 0
		}
		f.s.stats.ingestGapReplays.Add(1)
		f.mu.Lock()
		missed := f.chainBetween(item.shard, body.Watermark, item.seq)
		f.mu.Unlock()
		f.s.logf("router: replica %s shard %d at watermark %d needs %d-item replay before seq %d",
			rs.rep.url, item.shard, body.Watermark, len(missed), item.seq)
		rs.splice(missed, item)
		return deliverGap, 0
	case resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusForbidden:
		// The sub-batch was validated fleet-wide before sequencing; a
		// follower calling it malformed means state has diverged.
		rs.rep.reportSuccess()
		return deliverPoison, 0
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		rs.rep.reportSuccess()
		_, hint := parseTypedError(resp)
		return deliverRetry, hint
	default:
		rs.rep.reportFailure(f.s.cfg.FailAfter)
		return deliverRetry, 0
	}
}

// confirmThrough records that this replica confirmed item — and, by
// the follower's strict in-order application, every earlier item of
// this shard's chain too. Each newly confirmed (seq, replica) pair
// decrements the batch's outstanding count; the last replica of the
// last shard completes the batch and may advance the fleet watermark.
func (rs *replicaSender) confirmThrough(item *fanItem) {
	f := rs.f
	f.mu.Lock()
	for _, h := range f.chainBetween(item.shard, rs.confirmedSeq, item.seq+1) {
		if st := f.pending[h.seq]; st != nil {
			if st.remaining--; st.remaining == 0 {
				f.completeLocked(h.seq, st)
			}
		}
	}
	if item.seq > rs.confirmedSeq {
		rs.confirmedSeq = item.seq
	}
	f.trimHistoryLocked(item.shard)
	f.mu.Unlock()
}

// trimHistoryLocked drops the prefix of shard sh's chain that every
// replica of the shard has confirmed. A trimmed item can never be
// replayed again: a gap answer carries the replica's durable watermark,
// which is at least its confirmedSeq here, so every replay window
// chainBetween can be asked for starts above the trim point. The slice
// is copied so the dropped bodies are actually released. Caller holds
// f.mu.
func (f *fleetIngest) trimHistoryLocked(sh int) {
	min := uint64(0)
	for i, rs := range f.shardSenders[sh] {
		if i == 0 || rs.confirmedSeq < min {
			min = rs.confirmedSeq
		}
	}
	chain := f.history[sh]
	cut := 0
	for cut < len(chain) && chain[cut].seq <= min {
		f.historyBytes -= int64(len(chain[cut].body))
		cut++
	}
	if cut == 0 {
		return
	}
	f.history[sh] = append([]*fanItem(nil), chain[cut:]...)
}

// IngestResponse is the router's POST /v1/ingest ack: the fleet
// sequence, how many shards the batch touched, and the fleet watermark
// at ack time. Sent only once every replica of every affected shard
// has durably applied the batch.
type IngestResponse struct {
	FleetSeq  uint64 `json:"fleet_seq"`
	Replayed  bool   `json:"replayed,omitempty"`
	Shards    int    `json:"shards"`
	Watermark uint64 `json:"watermark"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// handleIngest serves POST /v1/ingest on the routing tier. A router
// started without -seqlog/-ingest-graph keeps the explicit 501.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.fleet == nil {
		s.writeError(w, http.StatusNotImplemented, "ingest_unsupported",
			"this router was started without fleet ingest (-seqlog and -ingest-graph); send mutations to an ingest-enabled daemon or restart the router with sequencing enabled", 0)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "router is draining", time.Second)
		return
	}

	var req serve.IngestRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "undecodable body: "+err.Error(), 0)
		return
	}
	if req.FleetSeq != 0 || req.PrevFleetSeq != 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			"fleet_seq is assigned by the router; clients must not pre-sequence batches", 0)
		return
	}
	if req.BatchID == "" || len(req.BatchID) > ingest.MaxFleetClientID {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch_id must be 1-%d bytes", ingest.MaxFleetClientID), 0)
		return
	}
	if len(req.Mutations) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "mutations must not be empty", 0)
		return
	}
	muts, err := decodeWireMutations(req.Mutations)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_mutation", err.Error(), 0)
		return
	}

	start := time.Now()
	seq, replayed, shards, wm, ferr := s.fleet.submit(r.Context(), req.BatchID, muts)
	if ferr != nil {
		if ferr.code == "bad_mutation" || ferr.code == "batch_too_large" {
			s.stats.ingestRejected.Add(1)
		}
		extra := map[string]any{}
		if ferr.code == "fleet_partial_apply" {
			extra["watermark"] = ferr.watermark
		}
		_ = serve.WriteJSONError(w, ferr.status, ferr.code, ferr.msg, 0, extra)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		FleetSeq:  seq,
		Replayed:  replayed,
		Shards:    shards,
		Watermark: wm,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// decodeWireMutations converts wire mutations to graph mutations with
// the same validation the daemon applies at its edge.
func decodeWireMutations(wire []serve.IngestMutation) ([]graph.Mutation, error) {
	muts := make([]graph.Mutation, len(wire))
	for i, m := range wire {
		op, err := graph.ParseMutationOp(m.Op)
		if err != nil {
			return nil, fmt.Errorf("mutation %d: %w", i, err)
		}
		if m.U < 0 || m.U > int64(int32max) || m.V < 0 || m.V > int64(int32max) {
			return nil, fmt.Errorf("mutation %d: node ids must be in [0, %d]", i, int32max)
		}
		muts[i] = graph.Mutation{Op: op, U: graph.NodeID(m.U), V: graph.NodeID(m.V), Label: m.Label, Name: m.Name}
	}
	return muts, nil
}

const int32max = 1<<31 - 1
