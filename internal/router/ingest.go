package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/serve"
	"hsgf/internal/store"
)

// Fleet ingest: the router is the fleet's single sequencer. Every
// mutation batch is validated against the router's authoritative
// membership map, assigned a monotone fleet sequence by a CRC-framed
// sequencer WAL (durability point), resolved into per-shard sub-batches
// (owner shard plus every shard whose halo the mutation touches, with
// halo repair woven in by graph.ShardMap), and fanned out to every
// replica of every affected shard. Replicas apply strictly in fleet
// order — the sub-batch carries (fleet_seq, prev_fleet_seq) and a shard
// at a different watermark refuses with 409 sequence_gap, which the
// sender repairs by replaying the missed suffix of that shard's chain
// from the in-memory history backed by the sequencer log.
//
// The client ack contract: 200 only after every replica of every
// affected shard confirmed the sub-batch; otherwise a machine-readable
// 503 fleet_partial_apply carrying the fleet watermark, while senders
// keep retrying in the background until stragglers converge. Duplicate
// client batch IDs ack idempotently at the router, and the composite
// fleet batch ID makes the fan-out idempotent at every shard.

// fanItem is one shard's sub-batch of one sequenced fleet batch: the
// fully marshalled follower request, shared by every replica sender of
// that shard and retained in the shard's chain history for gap replay.
type fanItem struct {
	seq   uint64
	prev  uint64 // previous fleet seq that touched this shard (0 = first)
	shard int
	body  []byte
}

// ackState tracks one sequenced batch's outstanding replica confirms.
type ackState struct {
	remaining int
	done      chan struct{}
}

// fleetError is a typed submit failure for the handler to translate
// into the shared error envelope.
type fleetError struct {
	status    int
	code      string
	msg       string
	watermark uint64
}

func (e *fleetError) Error() string { return e.msg }

type fleetIngest struct {
	s   *Server
	sm  *graph.ShardMap
	log *store.SeqLog

	ackTimeout time.Duration

	mu sync.Mutex
	// failed latches when fleet state can no longer be trusted to match
	// the sequencer log (sequencer IO failure after partial write, a
	// post-validate apply failure, or a shard rejecting a sequenced
	// sub-batch as malformed). Every later submit is refused; a restart
	// rebuilds from the log.
	failed     bool
	failReason string
	// lastTouched[s] is the newest fleet seq whose fan-out touched shard
	// s: the prev_fleet_seq link for the next sub-batch bound there.
	lastTouched []uint64
	// history[s] is shard s's full sub-batch chain in ascending seq
	// order — the gap-repair replay source. It grows with the sequencer
	// log and is rebuilt from it on boot; compacting both is the
	// operator-level lever documented in DESIGN.md §14.
	history  [][]*fanItem
	pending  map[uint64]*ackState
	complete map[uint64]bool // fully confirmed but above the watermark
	// watermark is the highest seq with every seq at or below it fully
	// confirmed by all replicas of all affected shards.
	watermark  uint64
	acked      map[string]uint64 // client batch ID -> fleet seq
	ackedOrder []string

	senders []*replicaSender
	stopCh  chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// maxAckedIndex bounds the router-level client idempotency index; the
// oldest entries are evicted first (their fleet batch IDs still dedupe
// at each shard via the engines' own indexes).
const maxAckedIndex = 1 << 16

// newFleetIngest builds the fleet ingest state: an authoritative
// ShardMap cross-checked against the manifest, the sequencer log, and
// one ordered sender per (shard, replica). Every record already in the
// log is replayed through the ShardMap (deterministically regenerating
// the exact sub-batches of the previous run) and each shard chain's
// tail is enqueued to its replicas: an up-to-date replica replay-acks
// the tail in one round trip — implicitly confirming its whole chain —
// while a replica that crashed mid-stream answers 409 with its
// watermark and gets the missed suffix replayed. That makes boot the
// same code path as steady-state gap repair, and it is what repairs a
// router killed between sequencing and fan-out.
func newFleetIngest(s *Server, g *graph.Graph, path string) (*fleetIngest, error) {
	sm, err := graph.NewShardMap(g, graph.PartitionConfig{
		NumShards: s.m.NumShards,
		HaloDepth: s.m.HaloDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("router: ingest shard map: %w", err)
	}
	// The ShardMap must agree with the manifest the shards were cut
	// from, or local-ID translation would silently corrupt mutations.
	for i := range s.shards {
		man := s.m.Shards[i].LocalToGlobal
		if sm.ShardSize(i) != len(man) {
			return nil, fmt.Errorf("router: ingest graph disagrees with manifest: shard %d has %d members, manifest %d (wrong -ingest-graph?)",
				i, sm.ShardSize(i), len(man))
		}
		for local, global := range man {
			if l, ok := sm.LocalID(i, graph.NodeID(global)); !ok || int(l) != local {
				return nil, fmt.Errorf("router: ingest graph disagrees with manifest: shard %d node %d", i, global)
			}
		}
	}

	log, err := store.OpenSeqLog(path)
	if err != nil {
		return nil, err
	}
	f := &fleetIngest{
		s:           s,
		sm:          sm,
		log:         log,
		ackTimeout:  s.cfg.IngestAckTimeout,
		lastTouched: make([]uint64, s.m.NumShards),
		history:     make([][]*fanItem, s.m.NumShards),
		pending:     make(map[uint64]*ackState),
		complete:    make(map[uint64]bool),
		acked:       make(map[string]uint64),
		stopCh:      make(chan struct{}),
	}

	for _, rec := range log.Records() {
		clientID, muts, err := graph.DecodeMutations(rec.Payload)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("router: sequencer record %d: %w", rec.Seq, err)
		}
		if _, err := f.sequencedApply(rec.Seq, clientID, muts); err != nil {
			log.Close()
			return nil, fmt.Errorf("router: replaying sequencer record %d: %w", rec.Seq, err)
		}
	}

	for _, sh := range s.shards {
		for _, rep := range sh.replicas {
			rs := &replicaSender{f: f, sh: sh, rep: rep}
			rs.cond = sync.NewCond(&rs.mu)
			// Catch-up entry point: the tail of this shard's chain. Its
			// ack confirms the whole chain; a gap answer pulls in the
			// missed middle.
			if chain := f.history[sh.idx]; len(chain) > 0 {
				rs.queue = append(rs.queue, chain[len(chain)-1])
			}
			f.senders = append(f.senders, rs)
		}
	}
	for _, rs := range f.senders {
		f.wg.Add(1)
		go rs.run()
	}
	return f, nil
}

// stop halts the senders and closes the sequencer log; idempotent.
func (f *fleetIngest) stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	close(f.stopCh)
	for _, rs := range f.senders {
		rs.mu.Lock()
		rs.cond.Broadcast()
		rs.mu.Unlock()
	}
	f.mu.Unlock()
	f.wg.Wait()
	_ = f.log.Close()
}

// sequencedApply applies one already-sequenced batch to the membership
// map and installs its bookkeeping (chain links, history, pending acks,
// client idempotency, router ID tables). Caller holds f.mu or is inside
// newFleetIngest before the state is shared. The emitted sub-batches
// are deterministic in the ShardMap state, so a boot-time replay
// regenerates byte-identical bodies to the run that crashed.
func (f *fleetIngest) sequencedApply(seq uint64, clientID string, muts []graph.Mutation) ([]*fanItem, error) {
	deltas, err := f.sm.Apply(muts)
	if err != nil {
		return nil, err
	}
	batchID := ingest.FleetBatchID(seq, clientID)
	items := make([]*fanItem, 0, len(deltas))
	remaining := 0
	for _, d := range deltas {
		wire := make([]serve.IngestMutation, len(d.Muts))
		for i, m := range d.Muts {
			wire[i] = serve.IngestMutation{Op: m.Op.String(), U: int64(m.U), V: int64(m.V), Label: m.Label, Name: m.Name}
		}
		body, err := json.Marshal(serve.IngestRequest{
			BatchID:      batchID,
			FleetSeq:     seq,
			PrevFleetSeq: f.lastTouched[d.Shard],
			Mutations:    wire,
		})
		if err != nil {
			return nil, err
		}
		item := &fanItem{seq: seq, prev: f.lastTouched[d.Shard], shard: d.Shard, body: body}
		f.lastTouched[d.Shard] = seq
		f.history[d.Shard] = append(f.history[d.Shard], item)
		items = append(items, item)
		remaining += len(f.s.shards[d.Shard].replicas)

		if len(d.NewNodes) > 0 {
			globals := make([]int64, len(d.NewNodes))
			for i, g := range d.NewNodes {
				globals[i] = int64(g)
			}
			f.s.shards[d.Shard].growIDs(globals)
		}
	}
	f.s.numNodes.Store(int64(f.sm.NumNodes()))

	st := &ackState{remaining: remaining, done: make(chan struct{})}
	f.pending[seq] = st
	if remaining == 0 {
		// Defensive: a batch that touches no shard (unreachable today —
		// every mutation has an owner) completes immediately.
		f.completeLocked(seq, st)
	}
	f.acked[clientID] = seq
	f.ackedOrder = append(f.ackedOrder, clientID)
	for len(f.acked) > maxAckedIndex && len(f.ackedOrder) > 0 {
		delete(f.acked, f.ackedOrder[0])
		f.ackedOrder[0] = ""
		f.ackedOrder = f.ackedOrder[1:]
	}
	return items, nil
}

// completeLocked marks seq fully confirmed and advances the fleet
// watermark over any now-contiguous prefix. Caller holds f.mu.
func (f *fleetIngest) completeLocked(seq uint64, st *ackState) {
	delete(f.pending, seq)
	f.complete[seq] = true
	close(st.done)
	for f.complete[f.watermark+1] {
		delete(f.complete, f.watermark+1)
		f.watermark++
	}
	f.s.stats.fleetWatermark.Store(f.watermark)
}

// latchFailed poisons fleet ingest; only a router restart (which
// rebuilds from the sequencer log) clears it.
func (f *fleetIngest) latchFailed(reason string) {
	f.mu.Lock()
	if !f.failed {
		f.failed = true
		f.failReason = reason
		f.s.logf("router: fleet ingest FAILED, restart required: %s", reason)
	}
	f.mu.Unlock()
}

// chainBetween returns shard sh's history items with seq in (after,
// upTo) — the gap-replay window between a replica's watermark and the
// item it refused. Caller holds f.mu.
func (f *fleetIngest) chainBetween(sh int, after, upTo uint64) []*fanItem {
	chain := f.history[sh]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].seq > after })
	var out []*fanItem
	for ; i < len(chain) && chain[i].seq < upTo; i++ {
		out = append(out, chain[i])
	}
	return out
}

// submit sequences and fans out one client batch, blocking until the
// fleet confirms it or ackTimeout passes. The *fleetError return is a
// typed protocol outcome; a 503 fleet_partial_apply leaves the senders
// repairing in the background so the batch still converges.
func (f *fleetIngest) submit(ctx context.Context, clientID string, muts []graph.Mutation) (seq uint64, replayed bool, shards int, wm uint64, ferr *fleetError) {
	f.mu.Lock()
	if f.failed {
		reason := f.failReason
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: "fleet ingest is latched failed and requires a router restart: " + reason}
	}
	if prior, dup := f.acked[clientID]; dup {
		// Idempotent client retry: never re-sequence. Wait out the
		// original fan-out if it is still pending.
		st := f.pending[prior]
		f.mu.Unlock()
		f.s.stats.ingestReplayed.Add(1)
		return f.awaitAck(ctx, prior, true, 0, st)
	}
	if err := f.sm.Validate(muts); err != nil {
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusBadRequest, code: "bad_mutation", msg: err.Error()}
	}
	payload, err := graph.EncodeMutations(clientID, muts)
	if err != nil {
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusBadRequest, code: "bad_mutation", msg: err.Error()}
	}
	seq, err = f.log.Append(payload)
	if err != nil {
		// The sequencer could not make the assignment durable; the WAL
		// layer has rolled back or poisoned itself, so nothing was
		// acked and nothing may proceed.
		f.failed = true
		f.failReason = "sequencer append: " + err.Error()
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: "sequencer write failed; batch not acked, retry against a restarted router: " + err.Error()}
	}
	if hook := f.s.cfg.SequenceHook; hook != nil {
		// Fault-injection seam: the smoke suite kills the router here,
		// in the window where the sequence is durable but nothing has
		// been fanned out. Boot replay must repair it.
		hook(seq)
	}
	items, err := f.sequencedApply(seq, clientID, muts)
	if err != nil {
		// Validate passed, so this is a bug or resource exhaustion; the
		// durable record and the membership map have diverged.
		f.failed = true
		f.failReason = fmt.Sprintf("apply of sequenced batch %d: %v", seq, err)
		f.mu.Unlock()
		return 0, false, 0, 0, &fleetError{status: http.StatusInternalServerError, code: "fleet_failed",
			msg: "sequenced batch failed to apply; router restart will replay it: " + err.Error()}
	}
	st := f.pending[seq] // may already be gone for a zero-shard batch
	for _, item := range items {
		for _, rs := range f.senders {
			if rs.sh.idx == item.shard {
				rs.enqueue(item)
			}
		}
	}
	f.mu.Unlock()
	f.s.stats.ingestBatches.Add(1)
	return f.awaitAck(ctx, seq, false, len(items), st)
}

// awaitAck blocks until seq is fully confirmed, the context dies, or
// ackTimeout passes. st may be nil when the batch already completed.
func (f *fleetIngest) awaitAck(ctx context.Context, seq uint64, replayed bool, shards int, st *ackState) (uint64, bool, int, uint64, *fleetError) {
	if st != nil {
		timer := time.NewTimer(f.ackTimeout)
		defer timer.Stop()
		select {
		case <-st.done:
		case <-ctx.Done():
			return f.partialApply(seq, shards)
		case <-timer.C:
			return f.partialApply(seq, shards)
		case <-f.stopCh:
			return f.partialApply(seq, shards)
		}
	}
	f.mu.Lock()
	wm := f.watermark
	f.mu.Unlock()
	return seq, replayed, shards, wm, nil
}

func (f *fleetIngest) partialApply(seq uint64, shards int) (uint64, bool, int, uint64, *fleetError) {
	f.mu.Lock()
	wm := f.watermark
	f.mu.Unlock()
	f.s.stats.ingestPartial.Add(1)
	return 0, false, 0, 0, &fleetError{
		status: http.StatusServiceUnavailable, code: "fleet_partial_apply",
		msg:       fmt.Sprintf("batch %d is durably sequenced but not yet confirmed by every affected shard; the router is repairing stragglers in the background — do not re-submit under a new batch_id (fleet watermark %d)", seq, wm),
		watermark: wm,
	}
}

// watermarkNow returns the current fleet watermark.
func (f *fleetIngest) watermarkNow() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watermark
}

// replicaSender delivers one replica's sub-batch stream strictly in
// fleet order: a dedicated goroutine drains an ordered queue, retrying
// each item with backoff until the replica confirms it (or reports a
// gap, which splices the missed chain suffix in front). One slow or
// dead replica therefore never blocks the others — partial-failure
// recovery is per replica — while per-replica ordering keeps every
// follower's engine on the exact fleet sequence.
type replicaSender struct {
	f   *fleetIngest
	sh  *shard
	rep *replica

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*fanItem
	// confirmedSeq is the highest chain seq this replica has confirmed
	// (guarded by f.mu, not rs.mu: confirmation walks shared ack state).
	confirmedSeq uint64
}

func (rs *replicaSender) enqueue(item *fanItem) {
	rs.mu.Lock()
	rs.queue = append(rs.queue, item)
	rs.cond.Signal()
	rs.mu.Unlock()
}

// splice puts items (ascending seq, all below head's seq) in front of
// the queue — the gap-repair path.
func (rs *replicaSender) splice(items []*fanItem, head *fanItem) {
	rs.mu.Lock()
	rest := append([]*fanItem{head}, rs.queue...)
	rs.queue = append(append([]*fanItem{}, items...), rest...)
	rs.mu.Unlock()
}

func (rs *replicaSender) next() *fanItem {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for {
		select {
		case <-rs.f.stopCh:
			return nil
		default:
		}
		if len(rs.queue) > 0 {
			item := rs.queue[0]
			rs.queue[0] = nil
			rs.queue = rs.queue[1:]
			return item
		}
		rs.cond.Wait()
	}
}

func (rs *replicaSender) run() {
	defer rs.f.wg.Done()
	for {
		item := rs.next()
		if item == nil {
			return
		}
		rs.deliver(item)
	}
}

// deliver pushes one item at the replica until it is confirmed, a gap
// reroutes delivery, or the fleet stops. Backoff honours the replica's
// Retry-After hint and is capped; a dead replica is retried forever —
// this loop IS the background catch-up repair.
func (rs *replicaSender) deliver(item *fanItem) {
	f := rs.f
	f.mu.Lock()
	already := item.seq <= rs.confirmedSeq
	f.mu.Unlock()
	if already {
		// Confirmed implicitly by a later in-chain ack during gap
		// repair; nothing to send.
		return
	}
	backoff := 50 * time.Millisecond
	const maxBackoff = 3 * time.Second
	for {
		select {
		case <-f.stopCh:
			return
		default:
		}
		outcome, hint := rs.attempt(item)
		switch outcome {
		case deliverConfirmed:
			return
		case deliverGap:
			return // splice already rearranged the queue
		case deliverPoison:
			f.latchFailed(fmt.Sprintf("replica %s rejected sequenced sub-batch %d for shard %d as invalid", rs.rep.url, item.seq, item.shard))
			return
		}
		if hint > backoff {
			backoff = hint
		}
		select {
		case <-f.stopCh:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

type deliverOutcome int

const (
	deliverRetry deliverOutcome = iota
	deliverConfirmed
	deliverGap
	deliverPoison
)

// attempt sends item once and classifies the replica's answer.
func (rs *replicaSender) attempt(item *fanItem) (deliverOutcome, time.Duration) {
	f := rs.f
	ctx, cancel := context.WithTimeout(context.Background(), f.s.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rs.rep.url+"/v1/ingest", bytes.NewReader(item.body))
	if err != nil {
		return deliverRetry, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.s.client.Do(req)
	if err != nil {
		rs.rep.reportFailure(f.s.cfg.FailAfter)
		return deliverRetry, 0
	}
	defer drainBody(resp)

	switch {
	case resp.StatusCode == http.StatusOK:
		rs.rep.reportSuccess()
		rs.confirmThrough(item)
		return deliverConfirmed, 0
	case resp.StatusCode == http.StatusConflict:
		// Gap: the replica's watermark is behind this item's chain
		// predecessor. Splice the missed suffix of this shard's chain in
		// front and let the queue deliver it in order.
		rs.rep.reportSuccess()
		var body struct {
			Reason    string `json:"reason"`
			Watermark uint64 `json:"watermark"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
		if body.Reason != "sequence_gap" {
			return deliverRetry, 0
		}
		f.s.stats.ingestGapReplays.Add(1)
		f.mu.Lock()
		missed := f.chainBetween(item.shard, body.Watermark, item.seq)
		f.mu.Unlock()
		f.s.logf("router: replica %s shard %d at watermark %d needs %d-item replay before seq %d",
			rs.rep.url, item.shard, body.Watermark, len(missed), item.seq)
		rs.splice(missed, item)
		return deliverGap, 0
	case resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusForbidden:
		// The sub-batch was validated fleet-wide before sequencing; a
		// follower calling it malformed means state has diverged.
		rs.rep.reportSuccess()
		return deliverPoison, 0
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		rs.rep.reportSuccess()
		_, hint := parseTypedError(resp)
		return deliverRetry, hint
	default:
		rs.rep.reportFailure(f.s.cfg.FailAfter)
		return deliverRetry, 0
	}
}

// confirmThrough records that this replica confirmed item — and, by
// the follower's strict in-order application, every earlier item of
// this shard's chain too. Each newly confirmed (seq, replica) pair
// decrements the batch's outstanding count; the last replica of the
// last shard completes the batch and may advance the fleet watermark.
func (rs *replicaSender) confirmThrough(item *fanItem) {
	f := rs.f
	f.mu.Lock()
	for _, h := range f.chainBetween(item.shard, rs.confirmedSeq, item.seq+1) {
		if st := f.pending[h.seq]; st != nil {
			if st.remaining--; st.remaining == 0 {
				f.completeLocked(h.seq, st)
			}
		}
	}
	if item.seq > rs.confirmedSeq {
		rs.confirmedSeq = item.seq
	}
	f.mu.Unlock()
}

// IngestResponse is the router's POST /v1/ingest ack: the fleet
// sequence, how many shards the batch touched, and the fleet watermark
// at ack time. Sent only once every replica of every affected shard
// has durably applied the batch.
type IngestResponse struct {
	FleetSeq  uint64 `json:"fleet_seq"`
	Replayed  bool   `json:"replayed,omitempty"`
	Shards    int    `json:"shards"`
	Watermark uint64 `json:"watermark"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// handleIngest serves POST /v1/ingest on the routing tier. A router
// started without -seqlog/-ingest-graph keeps the explicit 501.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.fleet == nil {
		s.writeError(w, http.StatusNotImplemented, "ingest_unsupported",
			"this router was started without fleet ingest (-seqlog and -ingest-graph); send mutations to an ingest-enabled daemon or restart the router with sequencing enabled", 0)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "router is draining", time.Second)
		return
	}

	var req serve.IngestRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "undecodable body: "+err.Error(), 0)
		return
	}
	if req.FleetSeq != 0 || req.PrevFleetSeq != 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			"fleet_seq is assigned by the router; clients must not pre-sequence batches", 0)
		return
	}
	if req.BatchID == "" || len(req.BatchID) > ingest.MaxFleetClientID {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch_id must be 1-%d bytes", ingest.MaxFleetClientID), 0)
		return
	}
	if len(req.Mutations) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "mutations must not be empty", 0)
		return
	}
	muts, err := decodeWireMutations(req.Mutations)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_mutation", err.Error(), 0)
		return
	}

	start := time.Now()
	seq, replayed, shards, wm, ferr := s.fleet.submit(r.Context(), req.BatchID, muts)
	if ferr != nil {
		if ferr.code == "bad_mutation" {
			s.stats.ingestRejected.Add(1)
		}
		extra := map[string]any{}
		if ferr.code == "fleet_partial_apply" {
			extra["watermark"] = ferr.watermark
		}
		_ = serve.WriteJSONError(w, ferr.status, ferr.code, ferr.msg, 0, extra)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		FleetSeq:  seq,
		Replayed:  replayed,
		Shards:    shards,
		Watermark: wm,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// decodeWireMutations converts wire mutations to graph mutations with
// the same validation the daemon applies at its edge.
func decodeWireMutations(wire []serve.IngestMutation) ([]graph.Mutation, error) {
	muts := make([]graph.Mutation, len(wire))
	for i, m := range wire {
		op, err := graph.ParseMutationOp(m.Op)
		if err != nil {
			return nil, fmt.Errorf("mutation %d: %w", i, err)
		}
		if m.U < 0 || m.U > int64(int32max) || m.V < 0 || m.V > int64(int32max) {
			return nil, fmt.Errorf("mutation %d: node ids must be in [0, %d]", i, int32max)
		}
		muts[i] = graph.Mutation{Op: op, U: graph.NodeID(m.U), V: graph.NodeID(m.V), Label: m.Label, Name: m.Name}
	}
	return muts, nil
}

const int32max = 1<<31 - 1
