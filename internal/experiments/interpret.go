package experiments

import (
	"math/rand"
	"sort"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/ml"
)

// ClassFeature is one subgraph feature with its (standardised) logistic
// weight for one class — positive weights indicate subgraph shapes whose
// abundance is evidence *for* the class.
type ClassFeature struct {
	Encoding string
	Weight   float64
}

// TopLabelFeatures trains the label-prediction classifier once on the
// full sample and reports, per class, the subgraph features with the
// largest positive weights — the label-task counterpart of the paper's
// Figure 4 interpretability analysis: which concrete neighbourhood
// shapes identify each entity type.
func TopLabelFeatures(g *graph.Graph, cfg LabelConfig, topK int) (map[string][]ClassFeature, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes, y := sampleNodes(g, cfg.PerLabel, rng)

	dmax := 0
	if cfg.DmaxLevel > 0 && cfg.DmaxLevel < 1 {
		dmax = graph.DegreePercentile(g, cfg.DmaxLevel)
	}
	ex, err := core.NewExtractor(g, core.Options{
		MaxEdges:      cfg.MaxEdges,
		MaxDegree:     dmax,
		MaskRootLabel: true,
	})
	if err != nil {
		return nil, err
	}
	censuses := ex.CensusAll(nodes, cfg.Workers)
	vocab := core.VocabularyOf(censuses)
	x := ml.Log1p(core.Matrix(censuses, vocab))
	var sc ml.StandardScaler
	xs, err := sc.FitTransform(x)
	if err != nil {
		return nil, err
	}
	clf := ml.OneVsRest{C: 1, MaxIter: 100}
	if err := clf.Fit(xs, y); err != nil {
		return nil, err
	}

	out := make(map[string][]ClassFeature, g.NumLabels())
	for class := 0; class < clf.NumClasses(); class++ {
		coef := clf.Coef(class)
		if coef == nil {
			continue
		}
		type col struct {
			idx int
			w   float64
		}
		cols := make([]col, len(coef))
		for i, w := range coef {
			cols[i] = col{i, w}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a].w > cols[b].w })
		k := topK
		if k > len(cols) {
			k = len(cols)
		}
		name := g.Alphabet().Name(graph.Label(class))
		for _, c := range cols[:k] {
			out[name] = append(out[name], ClassFeature{
				Encoding: ex.EncodingString(vocab.Key(c.idx)),
				Weight:   c.w,
			})
		}
	}
	return out, nil
}
