package experiments

import (
	"fmt"
	"math/rand"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/ml"
	"hsgf/internal/typed"
)

// DirectedConfig parameterises the directed-features experiment that
// tests the paper's §5 conjecture: "for denser directed networks,
// directed subgraph features may turn out to be more performant than the
// undirected variety".
type DirectedConfig struct {
	Citation datagen.CitationConfig
	PerRole  int // evaluation sample per role
	MaxEdges int
	Repeats  int
	Seed     int64
	Workers  int
}

// DefaultDirectedConfig returns a laptop-scale configuration.
func DefaultDirectedConfig() DirectedConfig {
	return DirectedConfig{
		Citation: datagen.DefaultCitationConfig(),
		PerRole:  60,
		MaxEdges: 3,
		Repeats:  10,
		Seed:     19,
	}
}

// DirectedResult reports Macro F1 of role prediction from directed
// (typed) versus undirected subgraph features on the same citation
// network, with 95% confidence half-widths over repeats.
type DirectedResult struct {
	DirectedF1   float64
	DirectedCI   float64
	UndirectedF1 float64
	UndirectedCI float64
	Roles        int
	SampleSize   int
	NetworkEdges int
}

// RunDirected generates the citation network, samples papers of each
// role, extracts both feature families and evaluates the shared
// logistic-regression protocol. Node labels are uniform ("paper"), so
// all class signal must come from topology — and the topology only
// separates the roles through edge directions.
func RunDirected(cfg DirectedConfig) (*DirectedResult, error) {
	net, err := datagen.GenerateCitation(cfg.Citation)
	if err != nil {
		return nil, err
	}
	undirected, err := net.Undirected()
	if err != nil {
		return nil, err
	}

	// Sample per role.
	rng := rand.New(rand.NewSource(cfg.Seed))
	byRole := make([][]graph.NodeID, datagen.NumRoles)
	for i, r := range net.Roles {
		byRole[r] = append(byRole[r], graph.NodeID(i))
	}
	var nodes []graph.NodeID
	var y []int
	for r, members := range byRole {
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		n := cfg.PerRole
		if n > len(members) {
			n = len(members)
		}
		for _, v := range members[:n] {
			nodes = append(nodes, v)
			y = append(y, r)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("experiments: empty role sample")
	}

	// Directed (typed) features.
	tex, err := typed.NewExtractor(net.Graph, typed.Options{MaxEdges: cfg.MaxEdges})
	if err != nil {
		return nil, err
	}
	typedCensuses := tex.CensusAll(nodes, cfg.Workers)

	// Undirected features on the collapsed graph.
	uex, err := core.NewExtractor(undirected, core.Options{MaxEdges: cfg.MaxEdges})
	if err != nil {
		return nil, err
	}
	plainCensuses := uex.CensusAll(nodes, cfg.Workers)

	evalFamily := func(rows func(trainIdx []int) [][]float64) ([]float64, error) {
		var scores []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			splitRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*5077))
			trainIdx, testIdx, err := ml.StratifiedSplit(y, 0.7, splitRng)
			if err != nil {
				return nil, err
			}
			x := rows(trainIdx)
			f1, err := evalSplit(x, y, trainIdx, testIdx, true, nil)
			if err != nil {
				return nil, err
			}
			scores = append(scores, f1)
		}
		return scores, nil
	}

	typedScores, err := evalFamily(func(trainIdx []int) [][]float64 {
		return typedRows(typedCensuses, trainIdx)
	})
	if err != nil {
		return nil, err
	}
	plainScores, err := evalFamily(func(trainIdx []int) [][]float64 {
		return subgraphRows(plainCensuses, trainIdx)
	})
	if err != nil {
		return nil, err
	}

	dm, _ := ml.MeanStd(typedScores)
	um, _ := ml.MeanStd(plainScores)
	return &DirectedResult{
		DirectedF1:   dm,
		DirectedCI:   ml.ConfidenceInterval95(typedScores),
		UndirectedF1: um,
		UndirectedCI: ml.ConfidenceInterval95(plainScores),
		Roles:        datagen.NumRoles,
		SampleSize:   len(nodes),
		NetworkEdges: net.Graph.NumEdges(),
	}, nil
}

// typedRows assembles the typed design matrix with a train-row
// vocabulary, mirroring subgraphRows for typed censuses.
func typedRows(censuses []*typed.Census, trainIdx []int) [][]float64 {
	index := make(map[uint64]int)
	for _, r := range trainIdx {
		if censuses[r] == nil {
			continue
		}
		keys := make([]uint64, 0, len(censuses[r].Counts))
		for k := range censuses[r].Counts {
			keys = append(keys, k)
		}
		// Deterministic insertion order.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			if _, ok := index[k]; !ok {
				index[k] = len(index)
			}
		}
	}
	rows := make([][]float64, len(censuses))
	for i, c := range censuses {
		row := make([]float64, len(index))
		if c != nil {
			for k, n := range c.Counts {
				if col, ok := index[k]; ok {
					row[col] = float64(n)
				}
			}
		}
		rows[i] = row
	}
	return rows
}
