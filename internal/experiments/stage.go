package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime/debug"
	"time"

	"hsgf/internal/retry"
	"hsgf/internal/store"
)

// StageStatus classifies how one reproduction stage ended.
type StageStatus int

const (
	// StageOK: the stage succeeded on its first attempt.
	StageOK StageStatus = iota
	// StageRecovered: the stage failed at least once but a retry
	// succeeded; the report section is complete.
	StageRecovered
	// StageSkipped: every attempt failed; the report carries a marked
	// gap instead of the stage's section.
	StageSkipped
	// StageResumed: the stage's section was spliced from a checkpoint
	// of an earlier run instead of being recomputed.
	StageResumed
)

func (s StageStatus) String() string {
	switch s {
	case StageOK:
		return "ok"
	case StageRecovered:
		return "recovered"
	case StageSkipped:
		return "SKIPPED"
	case StageResumed:
		return "resumed"
	default:
		return fmt.Sprintf("StageStatus(%d)", int(s))
	}
}

// StageResult records the outcome of one stage for the run summary.
type StageResult struct {
	Name     string
	Status   StageStatus
	Attempts int
	Err      string // last error message when Status == StageSkipped
	Elapsed  time.Duration
}

// StageRunner executes reproduction stages with panic recovery and
// retry-with-backoff, and accumulates per-stage outcomes so the final
// report can mark every gap explicitly. A failed stage never aborts the
// run: after MaxAttempts it is recorded as skipped and the pipeline
// moves on.
type StageRunner struct {
	// MaxAttempts per stage; <= 0 selects 2 (one retry).
	MaxAttempts int
	// Backoff before the first retry, doubling per further retry;
	// <= 0 selects one second.
	Backoff time.Duration
	// Sleep is the backoff clock, replaceable in tests; nil selects
	// time.Sleep.
	Sleep func(time.Duration)
	// Log receives progress and retry warnings; nil discards them.
	Log io.Writer

	Results []StageResult
}

func (r *StageRunner) attempts() int {
	if r.MaxAttempts <= 0 {
		return 2
	}
	return r.MaxAttempts
}

func (r *StageRunner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format, args...)
	}
}

// Run executes fn under panic isolation, retrying with exponential
// backoff through the shared retry policy (internal/retry). The
// schedule is deliberately jitter-free: a reproduction is one process
// retrying local work, so reproducible timing beats fleet
// decorrelation. It returns the recorded result; callers decide from
// res.Status whether the stage's output is usable.
func (r *StageRunner) Run(name string, fn func() error) StageResult {
	backoff := r.Backoff
	if backoff <= 0 {
		backoff = time.Second
	}
	policy := retry.Policy{
		MaxAttempts: r.attempts(),
		BaseDelay:   backoff,
		// Stages are minutes-long experiments; never let the default
		// delay cap flatten the deterministic doubling schedule.
		MaxDelay: 24 * time.Hour,
		Jitter:   retry.JitterNone,
	}
	if r.Sleep != nil {
		sleep := r.Sleep
		policy.Sleep = func(_ context.Context, d time.Duration) error { sleep(d); return nil }
	}

	res := StageResult{Name: name}
	start := time.Now()
	err := policy.Do(context.Background(), func(_ context.Context, attempt int) error {
		res.Attempts = attempt
		attemptErr := runIsolated(fn)
		if attemptErr != nil {
			r.logf("stage %q attempt %d/%d failed: %v\n", name, attempt, r.attempts(), attemptErr)
		}
		return attemptErr
	})
	if err == nil {
		if res.Attempts == 1 {
			res.Status = StageOK
		} else {
			res.Status = StageRecovered
		}
	} else {
		res.Status = StageSkipped
		res.Err = err.Error()
	}
	res.Elapsed = time.Since(start)
	r.Results = append(r.Results, res)
	return res
}

// RecordResumed notes a stage whose section was restored from an
// earlier run's checkpoint.
func (r *StageRunner) RecordResumed(name string) {
	r.Results = append(r.Results, StageResult{Name: name, Status: StageResumed})
}

// Skipped reports whether any stage exhausted its attempts.
func (r *StageRunner) Skipped() bool {
	for _, res := range r.Results {
		if res.Status == StageSkipped {
			return true
		}
	}
	return false
}

// WriteSummary renders the per-stage outcome table appended to the
// report, marking skipped and degraded stages explicitly.
func (r *StageRunner) WriteSummary(w io.Writer) {
	fmt.Fprintln(w, "stage summary")
	for _, res := range r.Results {
		switch res.Status {
		case StageSkipped:
			fmt.Fprintf(w, "  %-24s %s after %d attempts: %s\n", res.Name, res.Status, res.Attempts, res.Err)
		case StageRecovered:
			fmt.Fprintf(w, "  %-24s %s (attempt %d, %v)\n", res.Name, res.Status, res.Attempts, res.Elapsed.Round(time.Millisecond))
		case StageResumed:
			fmt.Fprintf(w, "  %-24s %s from checkpoint\n", res.Name, res.Status)
		default:
			fmt.Fprintf(w, "  %-24s %s (%v)\n", res.Name, res.Status, res.Elapsed.Round(time.Millisecond))
		}
	}
}

// runIsolated invokes fn, converting a panic into an error so one
// faulting stage cannot kill the whole reproduction.
func runIsolated(fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("stage panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	return fn()
}

// sectionFile restricts stage names to a safe file stem.
var sectionFile = regexp.MustCompile(`[^a-zA-Z0-9._-]+`)

// SectionStore persists rendered report sections under a directory, one
// text file per stage, so a resumed reproduction splices completed
// stages instead of recomputing them. A nil store disables persistence.
type SectionStore struct {
	// Dir holds one "<stage>.section" file per completed stage; it is
	// created on first save.
	Dir string
	// Resume enables Load: without it an existing directory is only
	// overwritten, never read (a fresh -checkpoint run).
	Resume bool
}

func (s *SectionStore) path(name string) string {
	return filepath.Join(s.Dir, sectionFile.ReplaceAllString(name, "_")+".section")
}

// Load returns the saved section for a stage, if resuming and present.
func (s *SectionStore) Load(name string) (string, bool) {
	if s == nil || !s.Resume {
		return "", false
	}
	b, err := os.ReadFile(s.path(name))
	if err != nil {
		return "", false
	}
	return string(b), true
}

// Save atomically persists a stage's rendered section: temp file,
// fsync, rename, parent-directory fsync — a crash mid-save leaves
// either the old section or the new one, never a torn file.
func (s *SectionStore) Save(name, content string) error {
	if s == nil {
		return nil
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	return store.AtomicWriteBytes(s.path(name), []byte(content))
}

// Stage is one named unit of the reproduction pipeline. Fn renders the
// stage's full report section to w; it must be self-contained so a
// resumed run can splice the saved text verbatim.
type Stage struct {
	Name string
	Fn   func(w io.Writer) error
}

// RunPipeline drives the stages in order through the runner and the
// optional section store: resumed stages are spliced from disk, fresh
// stages run with retry/backoff and panic isolation, exhausted stages
// leave an explicit gap marker in the report. The stage summary is
// appended at the end. Returns true when every stage produced output
// (none skipped).
func RunPipeline(w io.Writer, stages []Stage, runner *StageRunner, store *SectionStore) bool {
	for _, st := range stages {
		if text, ok := store.Load(st.Name); ok {
			runner.RecordResumed(st.Name)
			runner.logf("stage %q resumed from checkpoint\n", st.Name)
			io.WriteString(w, text)
			continue
		}
		var buf bytes.Buffer
		fn := st.Fn
		res := runner.Run(st.Name, func() error {
			buf.Reset() // a retried stage re-renders from scratch
			return fn(&buf)
		})
		if res.Status == StageSkipped {
			fmt.Fprintf(w, "!!! stage %q skipped after %d attempts: %s\n\n", st.Name, res.Attempts, res.Err)
			continue
		}
		io.WriteString(w, buf.String())
		if err := store.Save(st.Name, buf.String()); err != nil {
			runner.logf("stage %q: checkpoint save failed: %v\n", st.Name, err)
		}
	}
	runner.WriteSummary(w)
	return !runner.Skipped()
}
