package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func noSleepRunner() *StageRunner {
	return &StageRunner{MaxAttempts: 3, Backoff: time.Nanosecond, Sleep: func(time.Duration) {}}
}

func TestStageRunnerRetriesThenRecovers(t *testing.T) {
	r := noSleepRunner()
	calls := 0
	res := r.Run("flaky", func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if res.Status != StageRecovered || res.Attempts != 3 {
		t.Fatalf("res = %+v, want recovered on attempt 3", res)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestStageRunnerExponentialBackoff(t *testing.T) {
	var waits []time.Duration
	r := &StageRunner{
		MaxAttempts: 4,
		Backoff:     10 * time.Millisecond,
		Sleep:       func(d time.Duration) { waits = append(waits, d) },
	}
	r.Run("failing", func() error { return errors.New("always") })
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("slept %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("slept %v, want %v", waits, want)
		}
	}
}

func TestStageRunnerSkipsAfterExhaustion(t *testing.T) {
	r := noSleepRunner()
	res := r.Run("doomed", func() error { return errors.New("permanent damage") })
	if res.Status != StageSkipped || res.Attempts != 3 {
		t.Fatalf("res = %+v, want skipped after 3 attempts", res)
	}
	if !strings.Contains(res.Err, "permanent damage") {
		t.Fatalf("res.Err = %q, want the last error", res.Err)
	}
	if !r.Skipped() {
		t.Fatal("runner must report a skipped stage")
	}
}

func TestStageRunnerIsolatesPanics(t *testing.T) {
	r := noSleepRunner()
	res := r.Run("panicky", func() error { panic("boom at depth 3") })
	if res.Status != StageSkipped {
		t.Fatalf("res = %+v, want skipped", res)
	}
	if !strings.Contains(res.Err, "boom at depth 3") {
		t.Fatalf("res.Err = %q, want the panic value", res.Err)
	}
}

func TestRunPipelineMarksGapAndSummarises(t *testing.T) {
	var report bytes.Buffer
	stages := []Stage{
		{Name: "good", Fn: func(w io.Writer) error { fmt.Fprintln(w, "good section"); return nil }},
		{Name: "bad", Fn: func(w io.Writer) error {
			fmt.Fprintln(w, "partial output that must not leak")
			return errors.New("exploded")
		}},
		{Name: "after", Fn: func(w io.Writer) error { fmt.Fprintln(w, "after section"); return nil }},
	}
	ok := RunPipeline(&report, stages, noSleepRunner(), nil)
	out := report.String()
	if ok {
		t.Fatal("pipeline with a skipped stage must report failure")
	}
	if !strings.Contains(out, "good section") || !strings.Contains(out, "after section") {
		t.Fatalf("healthy sections missing from report:\n%s", out)
	}
	if strings.Contains(out, "must not leak") {
		t.Fatalf("failed stage's partial output leaked into the report:\n%s", out)
	}
	if !strings.Contains(out, `!!! stage "bad" skipped`) {
		t.Fatalf("report does not mark the gap:\n%s", out)
	}
	if !strings.Contains(out, "stage summary") || !strings.Contains(out, "SKIPPED") {
		t.Fatalf("report missing the stage summary:\n%s", out)
	}
}

func TestRunPipelineRetriedStageRendersOnce(t *testing.T) {
	var report bytes.Buffer
	attempt := 0
	stages := []Stage{{Name: "flaky", Fn: func(w io.Writer) error {
		attempt++
		fmt.Fprintf(w, "rendered on attempt %d\n", attempt)
		if attempt < 2 {
			return errors.New("first attempt dies after writing")
		}
		return nil
	}}}
	RunPipeline(&report, stages, noSleepRunner(), nil)
	if strings.Contains(report.String(), "attempt 1") {
		t.Fatalf("stale first-attempt output leaked:\n%s", report.String())
	}
	if !strings.Contains(report.String(), "rendered on attempt 2") {
		t.Fatalf("successful attempt's output missing:\n%s", report.String())
	}
}

// TestRunPipelineResume simulates the acceptance scenario: a run killed
// after its first stage completes, then re-run with -resume — the
// completed stage is spliced from disk and not recomputed, while the
// remaining stage runs.
func TestRunPipelineResume(t *testing.T) {
	dir := t.TempDir()

	// First run: stage "rank" completes, then the process "dies" before
	// stage "label" (modelled by a pipeline holding only the first
	// stage).
	rankRuns := 0
	first := []Stage{{Name: "rank", Fn: func(w io.Writer) error {
		rankRuns++
		fmt.Fprintln(w, "rank tables")
		return nil
	}}}
	var out1 bytes.Buffer
	if ok := RunPipeline(&out1, first, noSleepRunner(), &SectionStore{Dir: dir}); !ok {
		t.Fatal("first run failed")
	}

	// Second run resumes with the full pipeline.
	labelRuns := 0
	full := []Stage{
		{Name: "rank", Fn: func(w io.Writer) error {
			rankRuns++
			fmt.Fprintln(w, "rank tables")
			return nil
		}},
		{Name: "label", Fn: func(w io.Writer) error {
			labelRuns++
			fmt.Fprintln(w, "label curves")
			return nil
		}},
	}
	var out2 bytes.Buffer
	runner := noSleepRunner()
	if ok := RunPipeline(&out2, full, runner, &SectionStore{Dir: dir, Resume: true}); !ok {
		t.Fatal("resumed run failed")
	}
	if rankRuns != 1 {
		t.Fatalf("rank stage ran %d times, want 1 (resumed from checkpoint)", rankRuns)
	}
	if labelRuns != 1 {
		t.Fatalf("label stage ran %d times, want 1", labelRuns)
	}
	if !strings.Contains(out2.String(), "rank tables") || !strings.Contains(out2.String(), "label curves") {
		t.Fatalf("resumed report incomplete:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "resumed from checkpoint") {
		t.Fatalf("summary does not mark the resumed stage:\n%s", out2.String())
	}
}

func TestSectionStoreWithoutResumeIgnoresExisting(t *testing.T) {
	dir := t.TempDir()
	s := &SectionStore{Dir: dir}
	if err := s.Save("stage", "old content"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("stage"); ok {
		t.Fatal("store without Resume must not load sections")
	}
	rs := &SectionStore{Dir: dir, Resume: true}
	got, ok := rs.Load("stage")
	if !ok || got != "old content" {
		t.Fatalf("Load = %q, %v, want saved content", got, ok)
	}
}

func TestSectionStoreSanitisesNames(t *testing.T) {
	s := &SectionStore{Dir: t.TempDir()}
	if err := s.Save("label curves (LOAD)/x", "content"); err != nil {
		t.Fatal(err)
	}
	rs := &SectionStore{Dir: s.Dir, Resume: true}
	if _, ok := rs.Load("label curves (LOAD)/x"); !ok {
		t.Fatal("sanitised name did not round-trip")
	}
	// The file must live directly under Dir, not in a subdirectory.
	matches, _ := filepath.Glob(filepath.Join(s.Dir, "*.section"))
	if len(matches) != 1 {
		t.Fatalf("found %d section files in %s, want 1", len(matches), s.Dir)
	}
}
