package experiments

import (
	"context"
	"math/rand"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/embed"
	"hsgf/internal/graph"
	"hsgf/internal/ml"
)

// RuntimeRow is one dataset row of Table 3: the per-node subgraph
// extraction time distribution and the per-node cost of the embedding
// baselines.
type RuntimeRow struct {
	Dataset string
	Nodes   int // sampled roots

	SubgraphMean time.Duration
	SubgraphP75  time.Duration
	SubgraphP90  time.Duration
	SubgraphP95  time.Duration
	SubgraphMax  time.Duration

	Node2VecMean time.Duration // whole-graph embedding cost / |V|
	DeepWalkMean time.Duration
	LINEMean     time.Duration
}

// MeasureRuntime produces one Table 3 row for a dataset: subgraph census
// times over a node sample (per-node, serial, as the paper reports them)
// and amortised per-node embedding costs. ctx cancels the embedding
// timing runs.
func MeasureRuntime(ctx context.Context, name string, g *graph.Graph, cfg LabelConfig) (*RuntimeRow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes, _ := sampleNodes(g, cfg.PerLabel, rng)

	dmax := 0
	if cfg.DmaxLevel > 0 && cfg.DmaxLevel < 1 {
		dmax = graph.DegreePercentile(g, cfg.DmaxLevel)
	}
	ex, err := core.NewExtractor(g, core.Options{
		MaxEdges:      cfg.MaxEdges,
		MaxDegree:     dmax,
		MaskRootLabel: true,
	})
	if err != nil {
		return nil, err
	}
	_, times := ex.CensusAllTimed(nodes, 1)
	secs := make([]float64, len(times))
	var total float64
	for i, d := range times {
		secs[i] = d.Seconds()
		total += d.Seconds()
	}
	row := &RuntimeRow{Dataset: name, Nodes: len(nodes)}
	row.SubgraphMean = time.Duration(total / float64(len(times)) * float64(time.Second))
	row.SubgraphP75 = time.Duration(ml.Percentile(secs, 0.75) * float64(time.Second))
	row.SubgraphP90 = time.Duration(ml.Percentile(secs, 0.90) * float64(time.Second))
	row.SubgraphP95 = time.Duration(ml.Percentile(secs, 0.95) * float64(time.Second))
	row.SubgraphMax = time.Duration(ml.Percentile(secs, 1.0) * float64(time.Second))

	perNode := func(f func() error) (time.Duration, error) {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		return time.Since(start) / time.Duration(g.NumNodes()), nil
	}
	wcfg := cfg.Walks
	wcfg.Workers = cfg.EmbedWorkers
	scfg := cfg.SGNS
	scfg.Dim = cfg.EmbedDim
	scfg.Workers = cfg.EmbedWorkers
	row.DeepWalkMean, err = perNode(func() error {
		_, err := embed.DeepWalk(ctx, g, wcfg, scfg, rand.New(rand.NewSource(cfg.Seed)))
		return err
	})
	if err != nil {
		return nil, err
	}
	n2vW := wcfg
	n2vW.ReturnP, n2vW.InOutQ = 0.9, 1.1 // force the second-order path
	row.Node2VecMean, err = perNode(func() error {
		_, err := embed.Node2Vec(ctx, g, n2vW, scfg, rand.New(rand.NewSource(cfg.Seed+1)))
		return err
	})
	if err != nil {
		return nil, err
	}
	row.LINEMean, err = perNode(func() error {
		_, err := embed.LINE(ctx, g, embed.LINEConfig{Dim: cfg.EmbedDim / 2, Negatives: 5,
			Samples: cfg.LINESamplesX * g.NumEdges(), Workers: cfg.EmbedWorkers}, rand.New(rand.NewSource(cfg.Seed+2)))
		return err
	})
	if err != nil {
		return nil, err
	}
	return row, nil
}
