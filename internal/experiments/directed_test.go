package experiments

import (
	"testing"

	"hsgf/internal/datagen"
	"hsgf/internal/graph"
)

func TestRunDirectedTypedBeatsUndirected(t *testing.T) {
	cfg := DefaultDirectedConfig()
	cfg.Citation.Papers = 400
	cfg.PerRole = 40
	cfg.Repeats = 5
	res, err := RunDirected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize == 0 || res.Roles != datagen.NumRoles {
		t.Fatalf("bad result shape: %+v", res)
	}
	if res.DirectedF1 < 0 || res.DirectedF1 > 1 || res.UndirectedF1 < 0 || res.UndirectedF1 > 1 {
		t.Fatalf("F1 out of range: %+v", res)
	}
	// The §5 conjecture at work: roles are constructed so only edge
	// directions separate them; the typed census must clearly win.
	if res.DirectedF1 <= res.UndirectedF1+0.1 {
		t.Errorf("directed F1 %.3f does not clearly beat undirected %.3f",
			res.DirectedF1, res.UndirectedF1)
	}
	if res.DirectedF1 < 0.7 {
		t.Errorf("directed F1 %.3f unexpectedly weak", res.DirectedF1)
	}
}

func TestGenerateCitationValidation(t *testing.T) {
	bad := datagen.DefaultCitationConfig()
	bad.Papers = 5
	if _, err := datagen.GenerateCitation(bad); err == nil {
		t.Error("tiny network must fail")
	}
	bad = datagen.DefaultCitationConfig()
	bad.SurveyFrac = 0.7
	bad.ClassicFrac = 0.5
	if _, err := datagen.GenerateCitation(bad); err == nil {
		t.Error("role fractions >= 1 must fail")
	}
}

func TestCitationNetworkRoles(t *testing.T) {
	cfg := datagen.DefaultCitationConfig()
	cfg.Papers = 300
	net, err := datagen.GenerateCitation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Roles) != cfg.Papers {
		t.Fatalf("roles = %d, want %d", len(net.Roles), cfg.Papers)
	}
	counts := make([]int, datagen.NumRoles)
	for _, r := range net.Roles {
		counts[r]++
	}
	for r, c := range counts {
		if c == 0 {
			t.Errorf("role %s absent", datagen.RoleNames[r])
		}
	}
	if !net.Graph.Directed() {
		t.Fatal("citation network must be directed")
	}
	// Surveys must out-cite classics on average (out-degree signal).
	outDeg := func(role int) float64 {
		var sum, n float64
		for i, r := range net.Roles {
			if r != role {
				continue
			}
			for _, c := range net.Graph.IncidenceCodes(graph.NodeID(i)) {
				if c%2 == 0 { // outgoing
					sum++
				}
			}
			n++
		}
		return sum / n
	}
	if outDeg(datagen.RoleSurvey) <= outDeg(datagen.RoleClassic) {
		t.Error("surveys should out-cite classics")
	}

	und, err := net.Undirected()
	if err != nil {
		t.Fatal(err)
	}
	if und.NumNodes() != net.Graph.NumNodes() || und.NumEdges() != net.Graph.NumEdges() {
		t.Fatal("undirected collapse changes sizes")
	}
}
