package experiments

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/graph"
)

// tinyRankConfig shrinks everything so the full pipeline runs in seconds.
func tinyRankConfig() RankConfig {
	cfg := DefaultRankConfig()
	cfg.Publication.Institutions = 25
	cfg.Publication.Conferences = []string{"KDD", "FSE"}
	cfg.Publication.Years = []int{2011, 2012, 2013, 2014}
	cfg.Publication.PapersPerConfYear = 12
	cfg.Publication.ExternalPapers = 80
	cfg.MaxEdges = 3
	cfg.EmbedDim = 8
	cfg.Walks = embed.WalkConfig{WalksPerNode: 2, WalkLength: 8, ReturnP: 1, InOutQ: 1}
	cfg.SGNS = embed.SGNSConfig{Dim: 8, Window: 3, Negatives: 2, Epochs: 1}
	cfg.LINESamplesX = 3
	cfg.ForestTrees = 20
	return cfg
}

func tinyLabelConfig() LabelConfig {
	cfg := DefaultLabelConfig()
	cfg.PerLabel = 20
	cfg.MaxEdges = 3
	cfg.EmbedDim = 8
	cfg.Walks = embed.WalkConfig{WalksPerNode: 2, WalkLength: 8, ReturnP: 1, InOutQ: 1}
	cfg.SGNS = embed.SGNSConfig{Dim: 8, Window: 3, Negatives: 2, Epochs: 1}
	cfg.LINESamplesX = 3
	cfg.Repeats = 3
	cfg.TrainFracs = []float64{0.3, 0.7}
	cfg.Removals = []float64{0, 0.5}
	cfg.DmaxLevels = []float64{0.90, 1.00}
	return cfg
}

func tinyLabelGraph(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := datagen.DefaultCooccurrenceConfig()
	cfg.Locations, cfg.Organizations, cfg.Actors, cfg.Dates = 60, 50, 90, 40
	cfg.Documents = 500
	co, err := datagen.GenerateCooccurrence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return co.Graph
}

func TestClassicFeaturesShape(t *testing.T) {
	cfg := tinyRankConfig()
	pub, err := datagen.GeneratePublication(cfg.Publication)
	if err != nil {
		t.Fatal(err)
	}
	conf := cfg.Publication.Conferences[0]
	rows := ClassicFeatures(pub, conf, 2013, 2)
	if len(rows) != len(pub.Institutions) {
		t.Fatalf("rows = %d, want %d", len(rows), len(pub.Institutions))
	}
	topWords := topTitleWords(pub, conf, 2013, 20)
	names := ClassicFeatureNames(2, topWords)
	if len(rows[0]) != len(names) {
		t.Fatalf("feature width %d != name count %d", len(rows[0]), len(names))
	}
	// The relevance column must agree with ground truth.
	rel := pub.Relevance(conf, 2012)
	for i, inst := range pub.Institutions {
		if math.Abs(rows[i][0]-rel[inst]) > 1e-9 {
			t.Fatalf("relevance[t-1] mismatch for inst %d: %v vs %v", i, rows[i][0], rel[inst])
		}
	}
	// No feature may peek at the target year: computing features for the
	// first possible target year must not see later papers. Proxy check:
	// sums over full paper counts are monotone in the target year.
	early := ClassicFeatures(pub, conf, 2012, 2)
	late := ClassicFeatures(pub, conf, 2014, 2)
	var se, sl float64
	for i := range early {
		se += early[i][4] // full_papers_past
		sl += late[i][4]
	}
	if se > sl {
		t.Errorf("past paper counts shrank over time: %v > %v", se, sl)
	}
}

func TestTopTitleWords(t *testing.T) {
	cfg := tinyRankConfig()
	pub, err := datagen.GeneratePublication(cfg.Publication)
	if err != nil {
		t.Fatal(err)
	}
	words := topTitleWords(pub, cfg.Publication.Conferences[0], 2014, 20)
	if len(words) == 0 || len(words) > 20 {
		t.Fatalf("top words length %d", len(words))
	}
	seen := map[string]bool{}
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate top word %q", w)
		}
		seen[w] = true
	}
}

func TestRunRankEndToEnd(t *testing.T) {
	cfg := tinyRankConfig()
	res, err := RunRank(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conferences) != 2 {
		t.Fatalf("conferences = %v", res.Conferences)
	}
	for _, fam := range RankFamilies {
		for _, reg := range RankRegressors {
			for _, conf := range res.Conferences {
				v, ok := res.NDCG[fam][reg][conf]
				if !ok {
					t.Fatalf("missing NDCG for %s/%s/%s", fam, reg, conf)
				}
				if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
					t.Fatalf("NDCG %s/%s/%s = %v out of range", fam, reg, conf, v)
				}
			}
		}
	}
	for _, conf := range res.Conferences {
		tops := res.TopSubgraphs[conf]
		if len(tops) == 0 {
			t.Fatalf("no top subgraphs for %s", conf)
		}
		for _, si := range tops {
			if si.Encoding == "" || strings.HasPrefix(si.Encoding, "?") {
				t.Errorf("undecodable top subgraph for %s: %+v", conf, si)
			}
			if si.Importance < 0 {
				t.Errorf("negative importance: %+v", si)
			}
		}
	}
	// Table 1 aggregation agrees with the grid.
	avg := res.Average()
	var manual float64
	for _, conf := range res.Conferences {
		manual += res.NDCG[FamClassic][RegForest][conf]
	}
	manual /= float64(len(res.Conferences))
	if math.Abs(avg[FamClassic][RegForest]-manual) > 1e-12 {
		t.Error("Average() disagrees with manual aggregation")
	}

	// Rendering does not panic and mentions every family.
	var buf bytes.Buffer
	WriteFigure3(&buf, res)
	WriteTable1(&buf, res)
	WriteFigure4(&buf, res)
	out := buf.String()
	for _, fam := range RankFamilies {
		if !strings.Contains(out, fam) {
			t.Errorf("report missing family %s", fam)
		}
	}
}

func TestRankPredictionSignal(t *testing.T) {
	// The headline sanity check: with a real (if small) configuration,
	// subgraph features must carry genuine ranking signal for the
	// forest/ridge regressors — far better than random (~0.3 on this
	// label distribution).
	cfg := tinyRankConfig()
	cfg.Publication.Institutions = 40
	cfg.Publication.PapersPerConfYear = 25
	cfg.Publication.Years = []int{2010, 2011, 2012, 2013, 2014}
	cfg.Publication.Conferences = []string{"KDD"}
	res, err := RunRank(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.NDCG[FamSubgraph][RegForest]["KDD"]
	classic := res.NDCG[FamClassic][RegForest]["KDD"]
	if sub < 0.5 {
		t.Errorf("subgraph forest NDCG = %v, want > 0.5", sub)
	}
	if classic < 0.5 {
		t.Errorf("classic forest NDCG = %v, want > 0.5", classic)
	}
}

func TestSampleNodes(t *testing.T) {
	g := tinyLabelGraph(t)
	rng := rand.New(rand.NewSource(1))
	nodes, y := sampleNodes(g, 10, rng)
	if len(nodes) != len(y) {
		t.Fatal("nodes/labels misaligned")
	}
	perLabel := make(map[int]int)
	for i, v := range nodes {
		if int(g.Label(v)) != y[i] {
			t.Fatal("label mismatch")
		}
		perLabel[y[i]]++
	}
	for l, c := range perLabel {
		if c > 10 {
			t.Errorf("label %d sampled %d nodes, cap 10", l, c)
		}
	}
	if len(perLabel) != g.NumLabels() {
		t.Errorf("sampled %d labels, want %d", len(perLabel), g.NumLabels())
	}
}

func TestTrainingSizeCurves(t *testing.T) {
	g := tinyLabelGraph(t)
	cfg := tinyLabelConfig()
	curves, err := TrainingSizeCurves(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range LabelFamilies {
		pts, ok := curves[fam]
		if !ok {
			t.Fatalf("missing curve for %s", fam)
		}
		if len(pts) != len(cfg.TrainFracs) {
			t.Fatalf("%s: %d points, want %d", fam, len(pts), len(cfg.TrainFracs))
		}
		for _, p := range pts {
			if p.Mean < 0 || p.Mean > 1 || math.IsNaN(p.Mean) {
				t.Fatalf("%s: F1 %v out of range", fam, p.Mean)
			}
		}
	}
	// The paper's headline: subgraph features dominate embeddings. On
	// the co-occurrence network the gap is large even at tiny scale.
	last := len(cfg.TrainFracs) - 1
	sub := curves[FamSubgraph][last].Mean
	for _, fam := range []string{FamDeepWalk, FamNode2Vec} {
		if sub <= curves[fam][last].Mean {
			t.Errorf("subgraph F1 %v not above %s F1 %v", sub, fam, curves[fam][last].Mean)
		}
	}
	var buf bytes.Buffer
	WriteCurves(&buf, "Figure 5A — LOAD", "train", curves)
	if !strings.Contains(buf.String(), FamSubgraph) {
		t.Error("curve report missing subgraph family")
	}
}

func TestLabelRemovalCurves(t *testing.T) {
	g := tinyLabelGraph(t)
	cfg := tinyLabelConfig()
	curves, err := LabelRemovalCurves(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := curves[FamSubgraph]
	if len(sub) != len(cfg.Removals) {
		t.Fatalf("subgraph points = %d, want %d", len(sub), len(cfg.Removals))
	}
	// Embeddings are invariant: flat lines.
	for _, fam := range []string{FamDeepWalk, FamNode2Vec, FamLINE} {
		pts := curves[fam]
		for i := 1; i < len(pts); i++ {
			if pts[i].Mean != pts[0].Mean {
				t.Errorf("%s must be invariant to label removal", fam)
			}
		}
	}
}

func TestRelabelFraction(t *testing.T) {
	g := tinyLabelGraph(t)
	rng := rand.New(rand.NewSource(5))
	relabelled, err := relabelFraction(g, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if relabelled.NumNodes() != g.NumNodes() || relabelled.NumEdges() != g.NumEdges() {
		t.Fatal("relabelling must preserve structure")
	}
	if relabelled.NumLabels() != g.NumLabels()+1 {
		t.Fatalf("labels = %d, want %d", relabelled.NumLabels(), g.NumLabels()+1)
	}
	unl, ok := relabelled.Alphabet().Lookup(UnlabeledName)
	if !ok {
		t.Fatal("unlabeled label missing")
	}
	counts := relabelled.CountLabels()
	frac := float64(counts[unl]) / float64(relabelled.NumNodes())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("unlabeled fraction %v, want ≈ 0.5", frac)
	}
	// frac = 0 keeps everything.
	same, err := relabelFraction(g, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if same.CountLabels()[unl] != 0 {
		t.Error("frac 0 must not relabel")
	}
}

func TestDmaxSweep(t *testing.T) {
	g := tinyLabelGraph(t)
	cfg := tinyLabelConfig()
	pts, err := DmaxSweep(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cfg.DmaxLevels) {
		t.Fatalf("points = %d, want %d", len(pts), len(cfg.DmaxLevels))
	}
	for _, p := range pts {
		if p.Mean < 0 || p.Mean > 1 {
			t.Fatalf("F1 %v out of range", p.Mean)
		}
	}
	var buf bytes.Buffer
	WriteTable2(&buf, map[string][]CurvePoint{"LOAD": pts}, []string{"LOAD"})
	if !strings.Contains(buf.String(), "LOAD") {
		t.Error("table 2 rendering missing dataset")
	}
}

func TestMeasureRuntime(t *testing.T) {
	g := tinyLabelGraph(t)
	cfg := tinyLabelConfig()
	cfg.PerLabel = 8
	row, err := MeasureRuntime(context.Background(), "LOAD", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Nodes == 0 {
		t.Fatal("no nodes measured")
	}
	if row.SubgraphMax < row.SubgraphP75 {
		t.Error("max below p75")
	}
	if row.SubgraphMean <= 0 || row.DeepWalkMean <= 0 || row.Node2VecMean <= 0 || row.LINEMean <= 0 {
		t.Error("non-positive timings")
	}
	var buf bytes.Buffer
	WriteTable3(&buf, []*RuntimeRow{row})
	if !strings.Contains(buf.String(), "LOAD") {
		t.Error("table 3 rendering missing dataset")
	}
}

func TestLoadLabelDatasets(t *testing.T) {
	ds, err := LoadLabelDatasets(0.15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("datasets = %d, want 3", len(ds))
	}
	names := []string{"LOAD", "IMDB", "MAG"}
	for i, d := range ds {
		if d.Name != names[i] {
			t.Errorf("dataset %d = %s, want %s", i, d.Name, names[i])
		}
		if err := d.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	if _, err := LoadLabelDatasets(0, 1); err == nil {
		t.Error("scale 0 must fail")
	}
	if _, err := LoadLabelDatasets(1.5, 1); err == nil {
		t.Error("scale > 1 must fail")
	}
}

func TestTopLabelFeatures(t *testing.T) {
	g := tinyLabelGraph(t)
	cfg := tinyLabelConfig()
	tops, err := TopLabelFeatures(g, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != g.NumLabels() {
		t.Fatalf("classes = %d, want %d", len(tops), g.NumLabels())
	}
	for class, feats := range tops {
		if len(feats) == 0 || len(feats) > 3 {
			t.Fatalf("%s: %d features, want 1..3", class, len(feats))
		}
		for i, f := range feats {
			if f.Encoding == "" || strings.HasPrefix(f.Encoding, "?") {
				t.Errorf("%s: undecodable feature %q", class, f.Encoding)
			}
			if i > 0 && feats[i-1].Weight < f.Weight {
				t.Errorf("%s: features not sorted by weight", class)
			}
		}
	}
}

func TestWriteTable2UnionHeader(t *testing.T) {
	// Datasets covering different level sets (the dense ones skip the
	// unlimited level) must render against the union of levels with "–"
	// for missing cells.
	rows := map[string][]CurvePoint{
		"LOAD": {{X: 0.90, Mean: 0.5}, {X: 0.98, Mean: 0.51}},
		"IMDB": {{X: 0.90, Mean: 0.7}, {X: 0.98, Mean: 0.7}, {X: 1.00, Mean: 0.69}},
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows, []string{"LOAD", "IMDB"})
	out := buf.String()
	if !strings.Contains(out, "100%") {
		t.Error("header missing the 100% level")
	}
	if !strings.Contains(out, "–") {
		t.Error("missing cells must render as –")
	}
	if !strings.Contains(out, "0.69") {
		t.Error("IMDB's 100% cell missing")
	}
}
