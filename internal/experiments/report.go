package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// WriteFigure3 renders the rank-prediction NDCG grid (Figure 3) as one
// table per regressor: feature families down, conferences across.
func WriteFigure3(w io.Writer, r *RankResult) {
	for _, reg := range RankRegressors {
		fmt.Fprintf(w, "Figure 3 — %s (NDCG@20 per conference)\n", reg)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "feature\t%s\n", strings.Join(r.Conferences, "\t"))
		for _, fam := range RankFamilies {
			cells := make([]string, len(r.Conferences))
			for i, conf := range r.Conferences {
				cells[i] = fmt.Sprintf("%.2f", r.NDCG[fam][reg][conf])
			}
			fmt.Fprintf(tw, "%s\t%s\n", fam, strings.Join(cells, "\t"))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
}

// WriteTable1 renders the average NDCG table (Table 1): families down,
// regressors across.
func WriteTable1(w io.Writer, r *RankResult) {
	avg := r.Average()
	fmt.Fprintln(w, "Table 1 — average NDCG over all conferences")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "feature\t%s\n", strings.Join(RankRegressors, "\t"))
	for _, fam := range RankFamilies {
		cells := make([]string, len(RankRegressors))
		for i, reg := range RankRegressors {
			cells[i] = fmt.Sprintf("%.2f", avg[fam][reg])
		}
		fmt.Fprintf(tw, "%s\t%s\n", fam, strings.Join(cells, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteFigure4 renders the most discriminative subgraphs per conference
// (Figure 4).
func WriteFigure4(w io.Writer, r *RankResult) {
	fmt.Fprintln(w, "Figure 4 — most discriminative subgraph features (random forest)")
	confs := append([]string(nil), r.Conferences...)
	sort.Strings(confs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "conference\trank\timportance\tencoding")
	for _, conf := range confs {
		for i, si := range r.TopSubgraphs[conf] {
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%s\n", conf, i+1, si.Importance, si.Encoding)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteCurves renders a Figure 5 style family-by-x table.
func WriteCurves(w io.Writer, title, xlabel string, curves map[string][]CurvePoint) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	var fams []string
	for _, fam := range LabelFamilies {
		if _, ok := curves[fam]; ok {
			fams = append(fams, fam)
		}
	}
	var xs []float64
	if len(fams) > 0 {
		for _, p := range curves[fams[0]] {
			xs = append(xs, p.X)
		}
	}
	header := make([]string, len(xs))
	for i, x := range xs {
		header[i] = fmt.Sprintf("%s=%.0f%%", xlabel, x*100)
	}
	fmt.Fprintf(tw, "feature\t%s\n", strings.Join(header, "\t"))
	for _, fam := range fams {
		cells := make([]string, len(curves[fam]))
		for i, p := range curves[fam] {
			cells[i] = fmt.Sprintf("%.2f±%.2f", p.Mean, p.CI95)
		}
		fmt.Fprintf(tw, "%s\t%s\n", fam, strings.Join(cells, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteTable2 renders a dmax sweep row set (Table 2).
func WriteTable2(w io.Writer, rows map[string][]CurvePoint, order []string) {
	fmt.Fprintln(w, "Table 2 — Macro F1 vs maximum-degree percentile level")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// Datasets may cover different level sets (the unlimited level is
	// skipped on dense networks, as in the paper); the header is the
	// union of levels and missing cells render as "–".
	seen := map[float64]bool{}
	var xs []float64
	for _, name := range order {
		for _, p := range rows[name] {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	header := make([]string, len(xs))
	col := make(map[float64]int, len(xs))
	for i, x := range xs {
		header[i] = fmt.Sprintf("%.0f%%", x*100)
		col[x] = i
	}
	fmt.Fprintf(tw, "dataset\t%s\n", strings.Join(header, "\t"))
	for _, name := range order {
		cells := make([]string, len(xs))
		for i := range cells {
			cells[i] = "–"
		}
		for _, p := range rows[name] {
			cells[col[p.X]] = fmt.Sprintf("%.2f", p.Mean)
		}
		fmt.Fprintf(tw, "%s\t%s\n", name, strings.Join(cells, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteTable3 renders the runtime table (Table 3).
func WriteTable3(w io.Writer, rows []*RuntimeRow) {
	fmt.Fprintln(w, "Table 3 — per-node feature extraction time")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tsub mean\tsub p75\tsub p90\tsub p95\tsub max\tn2v\tDW\tLINE")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%v\t%v\t%v\t%v\n",
			r.Dataset,
			r.SubgraphMean.Round(10_000), r.SubgraphP75.Round(10_000),
			r.SubgraphP90.Round(10_000), r.SubgraphP95.Round(10_000),
			r.SubgraphMax.Round(10_000),
			r.Node2VecMean.Round(1_000), r.DeepWalkMean.Round(1_000), r.LINEMean.Round(1_000))
	}
	tw.Flush()
	fmt.Fprintln(w)
}
