// Package experiments implements the paper's evaluation pipelines
// (§4): the institution rank-prediction task (Figure 3, Table 1,
// Figure 4), the label-prediction task (Figure 5), the dmax stability
// sweep (Table 2), and the runtime evaluation (Table 3). Each pipeline is
// deterministic given its configuration seed and returns result structs
// the cmd/ tools and benchmarks render as the paper's tables and series.
package experiments

import (
	"fmt"
	"sort"

	"hsgf/internal/datagen"
	"hsgf/internal/graph"
)

// ClassicFeatureNames documents the engineered feature columns produced
// by ClassicFeatures, mirroring the paper's classic + linguistic feature
// catalogue (§4.2.2): per-year relevance history (absolute and
// normalised), paper and author counts, the authorship productivity
// feature, last-author occurrences, and the aggregated linguistic
// statistics including top-20 title-word usage.
func ClassicFeatureNames(history int, topWords []string) []string {
	var names []string
	for h := 1; h <= history; h++ {
		names = append(names,
			fmt.Sprintf("relevance[t-%d]", h),
			fmt.Sprintf("relevance_norm[t-%d]", h))
	}
	names = append(names,
		"full_papers_past", "all_papers_past", "authorship_score",
		"full_paper_authors", "short_paper_authors", "last_author_count",
		"avg_institutions", "avg_keywords", "avg_title_words", "avg_title_chars")
	for _, w := range topWords {
		names = append(names, "topword:"+w)
	}
	return names
}

// topTitleWords returns the k most frequent title words across the
// conference's papers up to and excluding year (the paper computes the
// "overall top-20 title words from accepted papers" per conference).
func topTitleWords(pub *datagen.Publication, conf string, before int, k int) []string {
	counts := make(map[string]int)
	for _, p := range pub.Papers {
		if p.Conference != conf || p.Year >= before {
			continue
		}
		for _, w := range p.Title {
			counts[w]++
		}
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	if len(words) > k {
		words = words[:k]
	}
	return words
}

// ClassicFeatures computes the engineered feature matrix for every
// institution of pub at one conference and target year, using only
// information from years strictly before targetYear. Row order follows
// pub.Institutions. history controls how many past years of relevance
// enter as explicit columns.
func ClassicFeatures(pub *datagen.Publication, conf string, targetYear, history int) [][]float64 {
	instIndex := make(map[graph.NodeID]int, len(pub.Institutions))
	for i, v := range pub.Institutions {
		instIndex[v] = i
	}
	n := len(pub.Institutions)

	topWords := topTitleWords(pub, conf, targetYear, 20)
	wordIdx := make(map[string]int, len(topWords))
	for i, w := range topWords {
		wordIdx[w] = i
	}

	// Relevance history columns.
	type yearRel struct {
		rel   map[graph.NodeID]float64
		total float64
	}
	rels := make([]yearRel, history)
	for h := 1; h <= history; h++ {
		rel := pub.Relevance(conf, targetYear-h)
		var total float64
		for _, v := range rel {
			total += v
		}
		rels[h-1] = yearRel{rel: rel, total: total}
	}

	base := 2 * history
	width := base + 10 + len(topWords)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, width)
	}
	for h, yr := range rels {
		for inst, v := range yr.rel {
			i := instIndex[inst]
			rows[i][2*h] = v
			if yr.total > 0 {
				rows[i][2*h+1] = v / yr.total
			}
		}
	}

	// Per-institution aggregates over papers before targetYear.
	type agg struct {
		fullPapers, allPapers     float64
		fullAuthors, shortAuthors map[graph.NodeID]bool
		lastAuthor                float64
		sumInstitutions           float64
		sumKeywords               float64
		sumTitleWords             float64
		sumTitleChars             float64
		papers                    float64
		topWordCounts             []float64
		authorYears               map[graph.NodeID]map[int]int // author -> year -> papers
	}
	aggs := make([]agg, n)
	for i := range aggs {
		aggs[i].fullAuthors = make(map[graph.NodeID]bool)
		aggs[i].shortAuthors = make(map[graph.NodeID]bool)
		aggs[i].topWordCounts = make([]float64, len(topWords))
		aggs[i].authorYears = make(map[graph.NodeID]map[int]int)
	}
	for _, p := range pub.Papers {
		if p.Conference != conf || p.Year >= targetYear {
			continue
		}
		// Institutions involved in the paper.
		instSet := make(map[graph.NodeID]bool)
		for _, a := range p.Authors {
			instSet[pub.AuthorInst[a]] = true
		}
		titleChars := 0
		for _, w := range p.Title {
			titleChars += len(w)
		}
		for inst := range instSet {
			i := instIndex[inst]
			a := &aggs[i]
			a.papers++
			a.allPapers++
			if p.Full {
				a.fullPapers++
			}
			a.sumInstitutions += float64(len(instSet))
			a.sumKeywords += float64(p.Keywords)
			a.sumTitleWords += float64(len(p.Title))
			a.sumTitleChars += float64(titleChars)
			for _, w := range p.Title {
				if j, ok := wordIdx[w]; ok {
					a.topWordCounts[j]++
				}
			}
		}
		for ai, author := range p.Authors {
			i := instIndex[pub.AuthorInst[author]]
			a := &aggs[i]
			if p.Full {
				a.fullAuthors[author] = true
			} else {
				a.shortAuthors[author] = true
			}
			if ai == len(p.Authors)-1 {
				a.lastAuthor++
			}
			ym := a.authorYears[author]
			if ym == nil {
				ym = make(map[int]int)
				a.authorYears[author] = ym
			}
			ym[p.Year]++
		}
	}
	for i := range aggs {
		a := &aggs[i]
		row := rows[i]
		row[base+0] = a.fullPapers
		row[base+1] = a.allPapers
		// Authorship: sum over authors of their average papers per
		// active year at this conference.
		var authorship float64
		for _, ym := range a.authorYears {
			var papers int
			for _, c := range ym {
				papers += c
			}
			authorship += float64(papers) / float64(len(ym))
		}
		row[base+2] = authorship
		row[base+3] = float64(len(a.fullAuthors))
		row[base+4] = float64(len(a.shortAuthors))
		row[base+5] = a.lastAuthor
		if a.papers > 0 {
			row[base+6] = a.sumInstitutions / a.papers
			row[base+7] = a.sumKeywords / a.papers
			row[base+8] = a.sumTitleWords / a.papers
			row[base+9] = a.sumTitleChars / a.papers
			for j, c := range a.topWordCounts {
				row[base+10+j] = c / a.papers
			}
		}
	}
	return rows
}
